// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, sub-benchmarks per series
// point), plus ablation benches for the design choices DESIGN.md
// calls out. Custom metrics carry the scientific outputs:
// latency_µs, cv and improvement_% — ns/op measures simulator speed,
// not the paper's quantities.
//
// Run everything:  go test -bench=. -benchmem
// One artifact:    go test -bench=BenchmarkFig1 -benchtime=1x
package wormsim_test

import (
	"fmt"
	"testing"

	"repro"
)

// fig1Sizes are the paper's Fig. 1 meshes (64–4096 nodes).
var fig1Sizes = [][]int{{4, 4, 4}, {8, 8, 8}, {10, 10, 10}, {16, 16, 16}}

// fig2Sizes are the paper's Fig. 2 / Tables 1–2 meshes (64–1024).
var fig2Sizes = [][]int{{4, 4, 4}, {4, 4, 16}, {8, 8, 8}, {8, 8, 16}}

// benchSingle measures single-source broadcast latency for one
// algorithm on one mesh, reporting the scientific output as a metric.
func benchSingle(b *testing.B, dims []int, algo wormsim.Algorithm, length int, ts float64) {
	m := wormsim.NewMesh(dims...)
	cfg := wormsim.DefaultConfig()
	cfg.Ts = ts
	var last float64
	for i := 0; i < b.N; i++ {
		src := wormsim.NodeID(i % m.Nodes())
		r, err := wormsim.RunBroadcast(m, algo, src, cfg, length)
		if err != nil {
			b.Fatal(err)
		}
		last = r.Latency()
	}
	b.ReportMetric(last, "latency_µs")
}

// BenchmarkFig1LatencyVsSize regenerates Fig. 1: broadcast latency of
// RD, EDN, DB and AB across 64–4096 node meshes (L=100, Ts=1.5 µs).
func BenchmarkFig1LatencyVsSize(b *testing.B) {
	for _, dims := range fig1Sizes {
		for _, algo := range wormsim.Algorithms() {
			m := wormsim.NewMesh(dims...)
			b.Run(fmt.Sprintf("%s/N=%d", algo.Name(), m.Nodes()), func(b *testing.B) {
				benchSingle(b, dims, algo, 100, 1.5)
			})
		}
	}
}

// BenchmarkFig1StartupLatency regenerates the §3.1 sensitivity sweep:
// the same experiment at Ts=0.15 µs.
func BenchmarkFig1StartupLatency(b *testing.B) {
	for _, dims := range fig1Sizes {
		for _, algo := range wormsim.Algorithms() {
			m := wormsim.NewMesh(dims...)
			b.Run(fmt.Sprintf("%s/N=%d", algo.Name(), m.Nodes()), func(b *testing.B) {
				benchSingle(b, dims, algo, 100, 0.15)
			})
		}
	}
}

// BenchmarkFig2CoefficientOfVariation regenerates Fig. 2: the
// arrival-time coefficient of variation under overlapping broadcasts
// (L=64 flits, 5 µs mean inter-arrival).
func BenchmarkFig2CoefficientOfVariation(b *testing.B) {
	for _, dims := range fig2Sizes {
		for _, algo := range wormsim.Algorithms() {
			m := wormsim.NewMesh(dims...)
			b.Run(fmt.Sprintf("%s/N=%d", algo.Name(), m.Nodes()), func(b *testing.B) {
				var cv float64
				for i := 0; i < b.N; i++ {
					st, err := wormsim.ContendedCVStudy(m, algo, wormsim.ContendedConfig{
						Net:          wormsim.DefaultConfig(),
						Length:       64,
						Broadcasts:   10,
						Interarrival: 5,
						Seed:         uint64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					cv = st.CV.Mean()
				}
				b.ReportMetric(cv, "cv")
			})
		}
	}
}

// BenchmarkFig2Saturation is the perf-trajectory workload: the Fig. 2
// study pushed past its knee (40 overlapping 64-flit broadcasts, 2 µs
// mean inter-arrival) on the 8×8×8 mesh under all four algorithms.
// Channel contention, wait-queue churn and worm turnover dominate, so
// allocs/op and ns/op here are the numbers BENCH_*.json tracks across
// PRs (see cmd/paperbench -benchjson). events/sec reports the raw
// discrete-event kernel throughput through the same workload.
func BenchmarkFig2Saturation(b *testing.B) {
	m := wormsim.NewMesh(wormsim.SaturationDims()...)
	for _, algo := range wormsim.Algorithms() {
		b.Run(algo.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				st, err := wormsim.ContendedCVStudy(m, algo, wormsim.SaturationConfig(2005))
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(events)*float64(b.N)/s, "events/sec")
			}
		})
	}
}

// BenchmarkFig2SaturationCalendar runs the saturation workload under
// each event-calendar implementation (the default ladder queue and
// the legacy binary heap) so the kernel data structures can be
// compared head to head: identical simulation, identical events/op,
// different events/sec. The committed heap-vs-ladder numbers live in
// BENCH_pr4.json (see cmd/paperbench -benchjson/-calendar). The torus
// cases run the same workload on the wraparound twin of the bench
// mesh with two dateline VCs — the torus bench phase of
// BENCH_pr5.json (paperbench -benchtopo torus) measures the same
// thing.
func BenchmarkFig2SaturationCalendar(b *testing.B) {
	defer wormsim.SetDefaultCalendar(wormsim.CalendarLadder)
	topos := []struct {
		name string
		m    *wormsim.Mesh
		vcs  int
	}{
		{"mesh", wormsim.NewMesh(wormsim.SaturationDims()...), 0},
		{"torus", wormsim.NewTorus(wormsim.SaturationDims()...), 2},
	}
	for _, cal := range []wormsim.Calendar{wormsim.CalendarHeap, wormsim.CalendarLadder} {
		for _, topo := range topos {
			for _, algo := range wormsim.Algorithms() {
				b.Run(fmt.Sprintf("%s/%s/%s", cal, topo.name, algo.Name()), func(b *testing.B) {
					wormsim.SetDefaultCalendar(cal)
					cfg := wormsim.SaturationConfig(2005)
					cfg.Net.VCs = topo.vcs
					b.ReportAllocs()
					var events uint64
					for i := 0; i < b.N; i++ {
						st, err := wormsim.ContendedCVStudy(topo.m, algo, cfg)
						if err != nil {
							b.Fatal(err)
						}
						events = st.Events
					}
					if s := b.Elapsed().Seconds(); s > 0 {
						b.ReportMetric(float64(events)*float64(b.N)/s, "events/sec")
					}
				})
			}
		}
	}
}

// benchImprovement measures the paper's Tables 1/2 improvement metric
// of a proposed algorithm over a baseline at one mesh size.
func benchImprovement(b *testing.B, dims []int, proposed, baseline wormsim.Algorithm) {
	m := wormsim.NewMesh(dims...)
	study := func(algo wormsim.Algorithm, seed uint64) float64 {
		st, err := wormsim.ContendedCVStudy(m, algo, wormsim.ContendedConfig{
			Net:          wormsim.DefaultConfig(),
			Length:       64,
			Broadcasts:   10,
			Interarrival: 5,
			Seed:         seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return st.CV.Mean()
	}
	var imp float64
	for i := 0; i < b.N; i++ {
		ours := study(proposed, uint64(i+1))
		base := study(baseline, uint64(i+1))
		if ours > 0 {
			imp = 100 * (base - ours) / ours
		}
	}
	b.ReportMetric(imp, "improvement_%")
}

// BenchmarkTable1DBImprovement regenerates Table 1: DB's CV
// improvement over RD and EDN per mesh size.
func BenchmarkTable1DBImprovement(b *testing.B) {
	for _, dims := range fig2Sizes {
		m := wormsim.NewMesh(dims...)
		for _, baseline := range []wormsim.Algorithm{wormsim.NewRD(), wormsim.NewEDN()} {
			b.Run(fmt.Sprintf("vs%s/N=%d", baseline.Name(), m.Nodes()), func(b *testing.B) {
				benchImprovement(b, dims, wormsim.NewDB(), baseline)
			})
		}
	}
}

// BenchmarkTable2ABImprovement regenerates Table 2: AB's CV
// improvement over RD and EDN per mesh size.
func BenchmarkTable2ABImprovement(b *testing.B) {
	for _, dims := range fig2Sizes {
		m := wormsim.NewMesh(dims...)
		for _, baseline := range []wormsim.Algorithm{wormsim.NewRD(), wormsim.NewEDN()} {
			b.Run(fmt.Sprintf("vs%s/N=%d", baseline.Name(), m.Nodes()), func(b *testing.B) {
				benchImprovement(b, dims, wormsim.NewAB(), baseline)
			})
		}
	}
}

// benchMixed measures the §3.3 mixed-traffic mean latency at one
// load point (the paper's axis value, scaled as in Fig34Config).
func benchMixed(b *testing.B, dims []int, algo wormsim.Algorithm, paperLoad float64) {
	m := wormsim.NewMesh(dims...)
	var lat float64
	for i := 0; i < b.N; i++ {
		cfg := wormsim.MixedConfig{
			Rate:              paperLoad * 320 / 1000,
			BroadcastFraction: 0.10,
			Length:            32,
			Algorithm:         algo,
			Seed:              uint64(i + 1),
			BatchSize:         40,
			Batches:           6,
			Warmup:            1,
		}
		if algo.Name() == "AB" {
			wf := wormsim.NewWestFirst(m)
			cfg.Unicast, cfg.Adaptive = wf, wf
		}
		res, err := wormsim.RunMixed(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		lat = res.MeanLatency
	}
	b.ReportMetric(lat, "latency_µs")
}

// BenchmarkFig3MixedTraffic8x8x8 regenerates Fig. 3: mean latency vs
// offered load on the 8×8×8 mesh under 90/10 unicast/broadcast
// traffic.
func BenchmarkFig3MixedTraffic8x8x8(b *testing.B) {
	for _, load := range []float64{0.005, 0.02, 0.05} {
		for _, algo := range wormsim.Algorithms() {
			b.Run(fmt.Sprintf("%s/load=%g", algo.Name(), load), func(b *testing.B) {
				benchMixed(b, []int{8, 8, 8}, algo, load)
			})
		}
	}
}

// BenchmarkFig4MixedTraffic16x16x8 regenerates Fig. 4: the same sweep
// on the 16×16×8 mesh, where AB's longer third-step paths erode its
// advantage.
func BenchmarkFig4MixedTraffic16x16x8(b *testing.B) {
	for _, load := range []float64{0.005, 0.02, 0.05} {
		for _, algo := range wormsim.Algorithms() {
			b.Run(fmt.Sprintf("%s/load=%g", algo.Name(), load), func(b *testing.B) {
				benchMixed(b, []int{16, 16, 8}, algo, load)
			})
		}
	}
}

// BenchmarkAblationMessageLength sweeps the paper's stated message
// length range (32–2048 flits) for DB on 8×8×8 — the latency should
// grow by L·β while the step structure stays fixed.
func BenchmarkAblationMessageLength(b *testing.B) {
	for _, length := range []int{32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("L=%d", length), func(b *testing.B) {
			benchSingle(b, []int{8, 8, 8}, wormsim.NewDB(), length, 1.5)
		})
	}
}

// BenchmarkAblationPortModel runs EDN with one and three ports: the
// three-port router is what lets its doubling phase fan out.
func BenchmarkAblationPortModel(b *testing.B) {
	m := wormsim.NewMesh(8, 8, 8)
	for _, ports := range []int{1, 3} {
		b.Run(fmt.Sprintf("ports=%d", ports), func(b *testing.B) {
			cfg := wormsim.DefaultConfig()
			cfg.Ports = ports
			var lat float64
			for i := 0; i < b.N; i++ {
				plan, err := wormsim.NewEDN().Plan(m, wormsim.NodeID(i%m.Nodes()))
				if err != nil {
					b.Fatal(err)
				}
				s := wormsim.NewSimulator()
				net, err := wormsim.NewNetwork(s, m, cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, err := wormsim.ExecuteBroadcast(net, plan, wormsim.ExecOptions{Length: 100})
				if err != nil {
					b.Fatal(err)
				}
				s.Run()
				if !r.Done {
					b.Fatal("broadcast incomplete")
				}
				lat = r.Latency()
			}
			b.ReportMetric(lat, "latency_µs")
		})
	}
}

// BenchmarkAblationHopDelay varies the header routing delay: the
// study's conclusions should be insensitive to it because Ts and L·β
// dominate (DESIGN.md §5).
func BenchmarkAblationHopDelay(b *testing.B) {
	for _, hop := range []float64{0.003, 0.03, 0.3} {
		b.Run(fmt.Sprintf("hop=%g", hop), func(b *testing.B) {
			m := wormsim.NewMesh(8, 8, 8)
			cfg := wormsim.DefaultConfig()
			cfg.HopDelay = hop
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := wormsim.RunBroadcast(m, wormsim.NewAB(), wormsim.NodeID(i%m.Nodes()), cfg, 100)
				if err != nil {
					b.Fatal(err)
				}
				lat = r.Latency()
			}
			b.ReportMetric(lat, "latency_µs")
		})
	}
}

// BenchmarkPlanConstruction measures pure planning cost (no
// simulation) for each algorithm on the largest paper mesh.
func BenchmarkPlanConstruction(b *testing.B) {
	m := wormsim.NewMesh(16, 16, 16)
	for _, algo := range wormsim.Algorithms() {
		b.Run(algo.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algo.Plan(m, wormsim.NodeID(i%m.Nodes())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorCore measures the raw event-processing rate of
// the discrete-event kernel through a broadcast workload.
func BenchmarkSimulatorCore(b *testing.B) {
	m := wormsim.NewMesh(8, 8, 8)
	for i := 0; i < b.N; i++ {
		if _, err := wormsim.RunBroadcast(m, wormsim.NewRD(), 0, wormsim.DefaultConfig(), 64); err != nil {
			b.Fatal(err)
		}
	}
}
