// Command meshsim runs a single broadcast scenario on the simulated
// wormhole mesh or torus and reports latency and arrival-time
// statistics.
//
// Examples:
//
//	meshsim -mesh 8x8x8 -algo AB -length 100
//	meshsim -mesh 16x16x8 -algo RD -mode cv -reps 40
//	meshsim -mesh 8x8x8 -algo DB -mode mixed -rate 2.5
//	meshsim -mesh 8x8x8 -topo torus -algo AB          # dateline VCs
//	meshsim -mesh 64x64x32 -store lazy -algo RD       # paged state
//	meshsim -mesh 8x8x8 -calendar heap -mode cv       # legacy kernel
//	meshsim -mesh 16x16x8 -mode cv -shards 8          # parallel kernel
//	meshsim -mesh 8x8x8 -mode cv -faults 8            # degraded study
//
// The -topo, -store, -calendar, -shards and -faults flags mirror
// cmd/sweep's: torus topologies run with two dateline virtual
// channels per physical channel, "lazy" pages network state in on
// first contention (with implicit adjacency, so huge shapes need no
// up-front allocation), the calendar selects the kernel's event
// queue, -shards partitions the one simulation across that many
// calendars of the conservative-parallel kernel, and -faults fails
// that many random undirected links before traffic starts (cv mode,
// reported as a coverage/drop study). Output is byte-identical across
// stores, calendars and shard counts at a fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		meshSpec = flag.String("mesh", "8x8x8", "mesh dimensions, e.g. 8x8x8 or 16x16")
		algoName = flag.String("algo", "AB", "broadcast algorithm: RD, EDN, DB or AB")
		mode     = flag.String("mode", "single", "single | cv | mixed")
		src      = flag.Int("src", -1, "source node for single mode (-1 = node 0)")
		length   = flag.Int("length", 100, "message length in flits")
		ts       = flag.Float64("ts", 1.5, "startup latency in µs")
		beta     = flag.Float64("beta", 0.003, "flit transfer time in µs")
		reps     = flag.Int("reps", 40, "replications / measured broadcasts (cv mode)")
		gap      = flag.Float64("gap", 5, "mean broadcast inter-arrival in µs (cv mode)")
		rate     = flag.Float64("rate", 1.0, "per-node message rate in msg/ms (mixed mode)")
		hotspot  = flag.Float64("hotspot", 0, "fraction of mixed-mode unicasts aimed at the center node (0 = uniform)")
		seed     = flag.Uint64("seed", 1, "random seed")
		topoKind = flag.String("topo", "mesh", "topology: mesh or torus (torus runs two dateline VCs)")
		storeN   = flag.String("store", "auto", "substrate memory model: auto, dense, or lazy")
		calName  = flag.String("calendar", "ladder", "event calendar backing the kernel: ladder or heap")
		shards   = flag.Int("shards", 0, "partition the simulation across this many shard calendars (0/1 = serial; output is byte-identical)")
		faults   = flag.Int("faults", 0, "fail this many random undirected links before traffic starts (cv mode only)")
	)
	flag.Parse()

	cal, err := wormsim.ParseCalendar(*calName)
	if err != nil {
		fatal(err)
	}
	wormsim.SetDefaultCalendar(cal)

	store, err := parseStore(*storeN)
	if err != nil {
		fatal(err)
	}
	m, err := buildTopo(*topoKind, *meshSpec, store)
	if err != nil {
		fatal(err)
	}
	algo, err := lookupAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	cfg := wormsim.DefaultConfig()
	cfg.Ts = *ts
	cfg.Beta = *beta
	cfg.Store = store
	cfg.Shards = *shards
	if m.Wrap() {
		cfg.VCs = 2 // dateline pair: deadlock freedom on wraparound rings
	}
	if *faults > 0 && *mode != "cv" {
		fatal(fmt.Errorf("-faults needs -mode cv (the degraded study), got %q", *mode))
	}

	switch *mode {
	case "single":
		source := wormsim.NodeID(0)
		if *src >= 0 {
			source = wormsim.NodeID(*src)
		}
		r, err := wormsim.RunBroadcast(m, algo, source, cfg, *length)
		if err != nil {
			fatal(err)
		}
		var acc wormsim.Accumulator
		acc.AddAll(r.DestinationLatencies())
		fmt.Printf("%s broadcast on %s from node %d (L=%d flits, Ts=%g µs)\n",
			algo.Name(), m.Name(), source, *length, *ts)
		fmt.Printf("  steps:            %d\n", r.Plan.Steps)
		fmt.Printf("  messages:         %d\n", r.Plan.MessageCount())
		fmt.Printf("  latency:          %.3f µs\n", r.Latency())
		fmt.Printf("  mean arrival:     %.3f µs\n", acc.Mean())
		fmt.Printf("  arrival CV:       %.4f\n", acc.CV())
		fmt.Printf("  earliest/latest:  %.3f / %.3f µs\n", acc.Min(), acc.Max())
		fmt.Println()
		fmt.Print(wormsim.FormatBreakdown(algo.Name(), wormsim.StepBreakdown(m, r)))

	case "cv":
		if *faults > 0 {
			plan, err := wormsim.RandomLinkFaults(m, *seed, *faults, 0)
			if err != nil {
				fatal(err)
			}
			st, err := wormsim.DegradedStudy(m, algo, wormsim.DegradedConfig{
				Net:          cfg,
				Length:       *length,
				Broadcasts:   *reps,
				Interarrival: *gap,
				Seed:         *seed,
				Faults:       plan,
			})
			if err != nil {
				fatal(err)
			}
			cov := st.Coverage.Confidence95()
			lat := st.Latency.Confidence95()
			fmt.Printf("%s on %s: %d broadcasts, gap %g µs, L=%d flits, %d failed links\n",
				algo.Name(), m.Name(), *reps, *gap, *length, *faults)
			fmt.Printf("  coverage: %.4f ± %.4f (95%% CI)\n", cov.Mean, cov.HalfWide)
			fmt.Printf("  latency:  %.3f ± %.3f µs (95%% CI, reached destinations)\n", lat.Mean, lat.HalfWide)
			fmt.Printf("  dropped:  %d worms\n", st.Dropped)
			return
		}
		st, err := wormsim.ContendedCVStudy(m, algo, wormsim.ContendedConfig{
			Net:          cfg,
			Length:       *length,
			Broadcasts:   *reps,
			Interarrival: *gap,
			Seed:         *seed,
		})
		if err != nil {
			fatal(err)
		}
		lat := st.Latency.Confidence95()
		cv := st.CV.Confidence95()
		fmt.Printf("%s on %s: %d broadcasts, gap %g µs, L=%d flits\n",
			algo.Name(), m.Name(), *reps, *gap, *length)
		fmt.Printf("  latency: %.3f ± %.3f µs (95%% CI)\n", lat.Mean, lat.HalfWide)
		fmt.Printf("  CV:      %.4f ± %.4f (95%% CI)\n", cv.Mean, cv.HalfWide)

	case "mixed":
		mcfg := wormsim.MixedConfig{
			Rate:              *rate / 1000,
			BroadcastFraction: 0.10,
			Length:            *length,
			Algorithm:         algo,
			Seed:              *seed,
		}
		if *hotspot > 0 {
			mcfg.HotspotFraction = *hotspot
			mcfg.Hotspot = wormsim.NodeID(m.Nodes() / 2)
		}
		ncfg := cfg
		ncfg.Ports = algo.Ports()
		res, err := wormsim.RunMixedWith(m, ncfg, mcfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s: mixed 90/10 traffic at %g msg/ms/node, L=%d flits\n",
			algo.Name(), m.Name(), *rate, *length)
		fmt.Printf("  mean latency:      %.3f µs (95%%CI ±%.3f)\n", res.MeanLatency, res.CI.HalfWide)
		fmt.Printf("  unicast latency:   %.3f µs over %d messages\n", res.Unicast.Mean(), res.Unicast.N())
		fmt.Printf("  broadcast latency: %.3f µs over %d messages\n", res.Broadcast.Mean(), res.Broadcast.N())
		fmt.Printf("  throughput:        %.4f msg/µs\n", res.Throughput)
		if res.Saturated {
			fmt.Printf("  SATURATED: the network could not sustain this load\n")
		}

	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// buildTopo constructs the requested topology, pairing the lazy
// store with implicit (computed-on-demand) adjacency so a huge shape
// costs nothing up front — the same resolution cmd/sweep's scenarios
// apply.
func buildTopo(kind, spec string, store wormsim.StoreMode) (*wormsim.Mesh, error) {
	parts := strings.Split(strings.ToLower(spec), "x")
	dims := make([]int, 0, len(parts))
	nodes := 1
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad mesh spec %q", spec)
		}
		dims = append(dims, v)
		nodes *= v
	}
	implicit := store.LazyFor(nodes)
	switch strings.ToLower(kind) {
	case "mesh":
		if implicit {
			return wormsim.NewMeshImplicit(dims...), nil
		}
		return wormsim.NewMesh(dims...), nil
	case "torus":
		if implicit {
			return wormsim.NewTorusImplicit(dims...), nil
		}
		return wormsim.NewTorus(dims...), nil
	}
	return nil, fmt.Errorf("unknown topology %q (want mesh or torus)", kind)
}

func parseStore(name string) (wormsim.StoreMode, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return wormsim.StoreAuto, nil
	case "dense":
		return wormsim.StoreDense, nil
	case "lazy":
		return wormsim.StoreLazy, nil
	}
	return wormsim.StoreAuto, fmt.Errorf("unknown store %q (want auto, dense or lazy)", name)
}

func lookupAlgorithm(name string) (wormsim.Algorithm, error) {
	for _, a := range wormsim.Algorithms() {
		if strings.EqualFold(a.Name(), name) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown algorithm %q (want RD, EDN, DB or AB)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshsim:", err)
	os.Exit(1)
}
