package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Benchmark-emission path: paperbench -benchjson FILE runs the Fig. 2
// saturation-load workload (see metrics.SaturationConfig) under all
// four algorithms through testing.Benchmark and records ns/op,
// allocs/op, B/op and events/sec into FILE, keyed by -benchphase.
// Re-running with a different phase merges into the same file, so one
// artifact carries the pre-PR baseline and the optimised numbers side
// by side; when both are present a summary with the per-algorithm and
// overall allocs/op reduction is recomputed. This is how the repo's
// perf trajectory (BENCH_pr2.json, BENCH_pr3.json, …) is produced.
// -benchtopo torus runs the same workload on the wraparound twin of
// the bench mesh (two dateline VCs) and records it as the "torus"
// phase, so BENCH_pr5.json carries the mesh trajectory point and the
// torus datapoint in one artifact.

// benchSchema identifies the artifact layout; bump on breaking change.
const benchSchema = "wormsim-bench/v1"

// benchResult is one (algorithm) measurement of the saturation workload.
type benchResult struct {
	// Name is the broadcast algorithm benchmarked.
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per saturation study.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per study.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// EventsPerOp is the number of discrete events one study fires.
	EventsPerOp uint64 `json:"events_per_op"`
	// EventsPerSec is kernel throughput: events fired per wall second.
	EventsPerSec float64 `json:"events_per_sec"`
	// MeanCV is the scientific output (arrival-time CV), recorded so a
	// perf regression that changes simulation results is caught at a
	// glance.
	MeanCV float64 `json:"mean_cv"`
}

// benchPhase is one measurement pass (e.g. "heap", "ladder",
// "torus"). Topo records the topology kind the phase ran on ("mesh"
// when empty); the torus phase runs the same saturation workload on
// the wraparound twin of the bench mesh with two dateline VCs, so one
// artifact carries the mesh trajectory and the torus datapoint side
// by side. Store records the substrate memory model of a scale-
// workload phase ("dense" or "lazy"; empty on the trajectory phases,
// which always measure the dense store). Shards and MaxProcs record a
// "shards" phase's conservative-parallel shard count and the
// GOMAXPROCS it was measured under: the parallel kernel can only beat
// the serial one when the machine has cores for its shards, so a
// speedup (or its absence) is meaningless without the core count.
type benchPhase struct {
	Recorded  string        `json:"recorded"`
	GoVersion string        `json:"go_version"`
	Calendar  string        `json:"calendar,omitempty"`
	Topo      string        `json:"topo,omitempty"`
	Store     string        `json:"store,omitempty"`
	Shards    int           `json:"shards,omitempty"`
	MaxProcs  int           `json:"max_procs,omitempty"`
	Results   []benchResult `json:"results"`
}

// benchSummary compares two phases of one artifact: "heap" vs
// "ladder" when both are present, else "baseline" vs "optimized".
type benchSummary struct {
	// Compared names the [from, to] phases the summary covers.
	Compared []string `json:"compared,omitempty"`
	// AllocsReductionPct is the overall percentage reduction in
	// allocs/op (summed across algorithms), to-phase vs from-phase.
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	// NsRatio is total to-phase ns/op over total from-phase ns/op;
	// below 1 is a speedup.
	NsRatio float64 `json:"ns_ratio"`
	// BytesReductionPct is the overall percentage reduction in
	// bytes/op, to-phase vs from-phase — the headline of a
	// dense-vs-lazy scale pair.
	BytesReductionPct float64 `json:"bytes_reduction_pct,omitempty"`
	// PerAlgorithm maps algorithm name to its allocs/op reduction %.
	PerAlgorithm map[string]float64 `json:"per_algorithm_allocs_reduction_pct"`
	// PerAlgorithmEventsSpeedup maps algorithm name to the to-phase
	// events/sec over the from-phase events/sec (above 1 is faster).
	PerAlgorithmEventsSpeedup map[string]float64 `json:"per_algorithm_events_speedup,omitempty"`
}

// benchWorkload identifies the measured workload; phases are only
// comparable within one workload, and -benchguard refuses artifacts
// whose workloads differ. Kind is empty for the Fig. 2 saturation
// trajectory (the historical artifacts) and "scale-multicast" for the
// million-node sparse-traffic workload; Dests is the multicast fanout
// of the latter.
type benchWorkload struct {
	Kind         string  `json:"kind,omitempty"`
	Mesh         []int   `json:"mesh"`
	Length       int     `json:"length_flits"`
	Broadcasts   int     `json:"broadcasts"`
	Interarrival float64 `json:"interarrival_us"`
	Dests        int     `json:"dests,omitempty"`
	Seed         uint64  `json:"seed"`
}

// benchFile is the whole BENCH_*.json artifact.
type benchFile struct {
	Schema   string                 `json:"schema"`
	Workload benchWorkload          `json:"workload"`
	Phases   map[string]*benchPhase `json:"phases"`
	Summary  *benchSummary          `json:"summary,omitempty"`
}

// runBenchJSON dispatches one benchmark-and-record pass. benchtime is
// forwarded to the testing package ("" keeps the 1s default; "1x"
// suits CI smoke). workload selects what is measured: "saturation"
// (the Fig. 2 trajectory workload the BENCH_* artifacts track) or
// "scale" (the million-node sparse-multicast workload whose dense and
// lazy phases measure the substrate memory models). topo selects the
// saturation topology: "mesh" or "torus" (the wraparound twin with two
// dateline VCs, recorded as its own phase). shards > 1 measures the
// workload on the conservative-parallel kernel and is recorded as the
// "shards" phase — the phase name and the kernel are locked together,
// exactly as the calendar-named phases are, so a mislabeled phase
// cannot corrupt the serial-vs-sharded summary.
func runBenchJSON(path, phase, benchtime, topo, workload string, shards int) error {
	if benchtime != "" {
		testing.Init()
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return fmt.Errorf("paperbench: bad -benchtime %q: %v", benchtime, err)
		}
	}
	if shards > 1 && phase != "shards" {
		return fmt.Errorf("paperbench: -benchshards %d must be recorded under -benchphase shards, not %q", shards, phase)
	}
	if phase == "shards" && shards <= 1 {
		return fmt.Errorf("paperbench: -benchphase shards needs -benchshards > 1")
	}
	switch workload {
	case "saturation":
		return runBenchSaturation(path, phase, topo, shards)
	case "scale":
		if topo != "mesh" {
			return fmt.Errorf("paperbench: the scale workload is mesh-only; drop -benchtopo %s", topo)
		}
		return runBenchScale(path, phase, shards)
	}
	return fmt.Errorf("paperbench: -benchworkload %q (want saturation or scale)", workload)
}

// runBenchSaturation executes the saturation benchmark and merges the
// results into path under the given phase.
func runBenchSaturation(path, phase, topo string, shards int) error {
	if topo != "mesh" && topo != "torus" {
		return fmt.Errorf("paperbench: -benchtopo %q (want mesh or torus)", topo)
	}
	if shards > 1 && topo != "mesh" {
		return fmt.Errorf("paperbench: the shards phase measures the mesh workload; drop -benchtopo %s", topo)
	}
	// dense/lazy name the scale workload's store phases; a saturation
	// measurement recorded under them would corrupt the dense-vs-lazy
	// summary of a scale artifact.
	if phase == "dense" || phase == "lazy" {
		return fmt.Errorf("paperbench: -benchphase %s is a scale-workload phase; pass -benchworkload scale", phase)
	}

	// A phase named after a calendar must be measured on that
	// calendar: a mislabeled phase would silently corrupt the
	// heap-vs-ladder summary and the regression guard.
	activeCal := wormsim.DefaultCalendar().String()
	for _, known := range []string{"heap", "ladder"} {
		if phase == known && activeCal != known {
			return fmt.Errorf("paperbench: -benchphase %s but -calendar %s; pass -calendar %s (or rename the phase)",
				phase, activeCal, known)
		}
	}
	// The trajectory phase names are reserved for the mesh workload:
	// recording a torus measurement under them would corrupt every
	// cross-PR comparison. The torus datapoint lives under "torus".
	if topo == "torus" {
		for _, reserved := range []string{"heap", "ladder", "baseline", "optimized"} {
			if phase == reserved {
				return fmt.Errorf("paperbench: -benchphase %s is a mesh trajectory phase; record the torus run under -benchphase torus", phase)
			}
		}
	}
	if phase == "torus" && topo != "torus" {
		return fmt.Errorf("paperbench: -benchphase torus needs -benchtopo torus")
	}

	file, err := loadOrInitBenchFile(path)
	if err != nil {
		return err
	}
	// Same-kernel phase pairs must stay same-kernel: refuse to record
	// a baseline/optimized (or ladder/torus) phase on a different
	// calendar than its already-recorded partner — the summary would
	// attribute the calendar's speedup to whatever the phase pair
	// claims to measure.
	for _, pair := range [][2]string{{"baseline", "optimized"}, {"optimized", "baseline"}, {"torus", "ladder"}, {"ladder", "torus"}, {"shards", "ladder"}, {"ladder", "shards"}} {
		if phase != pair[0] {
			continue
		}
		if partner := file.Phases[pair[1]]; partner != nil && partner.Calendar != "" && partner.Calendar != activeCal {
			return fmt.Errorf("paperbench: phase %q was recorded on the %s calendar but -calendar is %s; the %s/%s pair must share a kernel",
				pair[1], partner.Calendar, activeCal, pair[0], pair[1])
		}
	}

	seed := uint64(2005)
	cfg := wormsim.SaturationConfig(seed)
	if err := setBenchWorkload(file, path, benchWorkload{
		Mesh:         wormsim.SaturationDims(),
		Length:       cfg.Length,
		Broadcasts:   cfg.Broadcasts,
		Interarrival: cfg.Interarrival,
		Seed:         seed,
	}); err != nil {
		return err
	}

	m := wormsim.NewMesh(wormsim.SaturationDims()...)
	bcfg := wormsim.SaturationConfig(seed)
	if topo == "torus" {
		// The wraparound twin of the bench mesh, on the torus network
		// defaults: two dateline virtual channels per physical channel.
		m = wormsim.NewTorus(wormsim.SaturationDims()...)
		bcfg.Net.VCs = 2
	}
	bcfg.Net.Shards = shards
	p := &benchPhase{
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Calendar:  activeCal,
	}
	if topo == "torus" {
		p.Topo = topo
	}
	if shards > 1 {
		p.Shards = shards
		p.MaxProcs = runtime.GOMAXPROCS(0)
	}
	for _, algo := range wormsim.Algorithms() {
		var events uint64
		var cv float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := wormsim.ContendedCVStudy(m, algo, bcfg)
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
				cv = st.CV.Mean()
			}
		})
		if r.N == 0 {
			return fmt.Errorf("paperbench: %s saturation benchmark did not run", algo.Name())
		}
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := benchResult{
			Name:        algo.Name(),
			Iterations:  r.N,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			EventsPerOp: events,
			MeanCV:      cv,
		}
		if nsPerOp > 0 {
			res.EventsPerSec = float64(events) / (nsPerOp * 1e-9)
		}
		p.Results = append(p.Results, res)
		fmt.Fprintf(os.Stderr, "bench %s/%s: %.0f ns/op  %d allocs/op  %.0f events/sec\n",
			phase, res.Name, res.NsPerOp, res.AllocsPerOp, res.EventsPerSec)
	}
	file.Phases[phase] = p
	file.Summary = summarizeFile(file)
	return writeBenchFile(path, file)
}

// The scale workload: one 64-destination multicast on a million-node
// (2^20) mesh. Traffic touches a vanishing fraction of the substrate,
// so the dense store's up-front per-lane arrays dominate its per-run
// footprint while the lazy store allocates only the pages the worms
// actually cross — the dense-vs-lazy phase pair of a scale artifact
// measures exactly that gap. Destinations are spread evenly along the
// node-ID space, so the measurement is deterministic and no locality
// flatters the lazy store.
func scaleDims() []int { return []int{128, 128, 64} }

const (
	scaleDests  = 64  // multicast fanout
	scaleLength = 256 // message length in flits
	scaleChunk  = 8   // destinations carried per worm (Multicast.MaxPerPath)
)

// runBenchScale executes the scale benchmark on one substrate memory
// model (phase "dense" or "lazy") — or, for phase "shards", on the
// conservative-parallel kernel over the lazy store — and merges the
// result into path.
func runBenchScale(path, phase string, shards int) error {
	if phase != "dense" && phase != "lazy" && phase != "shards" {
		return fmt.Errorf("paperbench: the scale workload records store phases; -benchphase %q (want dense, lazy or shards)", phase)
	}
	file, err := loadOrInitBenchFile(path)
	if err != nil {
		return err
	}
	if err := setBenchWorkload(file, path, benchWorkload{
		Kind:       "scale-multicast",
		Mesh:       scaleDims(),
		Length:     scaleLength,
		Broadcasts: 1,
		Dests:      scaleDests,
	}); err != nil {
		return err
	}
	// The dense/lazy pair must share a kernel, or the pair's ns ratio
	// would attribute the calendar's speedup to the store. The shards
	// phase pairs with "lazy" (same store, serial kernel) under the
	// same rule.
	activeCal := wormsim.DefaultCalendar().String()
	partnerName := "lazy"
	if phase == "lazy" {
		partnerName = "dense"
	}
	if partner := file.Phases[partnerName]; partner != nil && partner.Calendar != "" && partner.Calendar != activeCal {
		return fmt.Errorf("paperbench: phase %q was recorded on the %s calendar but -calendar is %s; the %s/%s pair must share a kernel",
			partnerName, partner.Calendar, activeCal, partnerName, phase)
	}

	cfg := wormsim.DefaultConfig()
	var m *topology.Mesh
	if phase == "dense" {
		m = topology.NewMesh(scaleDims()...)
		cfg.Store = network.StoreDense
	} else {
		// "lazy" and "shards" both measure the paged store; the shards
		// phase adds the parallel kernel on top, so the lazy phase is
		// its serial reference.
		m = topology.NewMeshImplicit(scaleDims()...)
		cfg.Store = network.StoreLazy
		cfg.Shards = shards
	}
	dests := make([]topology.NodeID, 0, scaleDests)
	for i := 1; i <= scaleDests; i++ {
		dests = append(dests, topology.NodeID(i*(m.Nodes()/(scaleDests+1))))
	}
	mc := broadcast.NewMulticast(scaleChunk)

	p := &benchPhase{
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Calendar:  activeCal,
		Store:     phase,
	}
	if phase == "shards" {
		p.Store = "lazy"
		p.Shards = shards
		p.MaxProcs = runtime.GOMAXPROCS(0)
	}
	var events uint64
	var cv float64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			events, cv, err = runScaleOp(m, mc, dests, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if r.N == 0 {
		return fmt.Errorf("paperbench: scale benchmark did not run")
	}
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
	res := benchResult{
		Name:        mc.Name(),
		Iterations:  r.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		EventsPerOp: events,
		MeanCV:      cv,
	}
	if nsPerOp > 0 {
		res.EventsPerSec = float64(events) / (nsPerOp * 1e-9)
	}
	p.Results = []benchResult{res}
	fmt.Fprintf(os.Stderr, "bench %s/%s: %.0f ns/op  %d allocs/op  %d B/op  %.0f events/sec\n",
		phase, res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.EventsPerSec)

	file.Phases[phase] = p
	file.Summary = summarizeFile(file)
	return writeBenchFile(path, file)
}

// runScaleOp plans and executes one multicast on an idle network over
// m. It mirrors broadcast.RunMulticast but keeps the simulator handle,
// so the op can report kernel events alongside the CV of the
// destination arrival times.
func runScaleOp(m *topology.Mesh, mc broadcast.Multicast, dests []topology.NodeID, cfg network.Config) (uint64, float64, error) {
	plan, err := mc.PlanMulticast(m, 0, dests)
	if err != nil {
		return 0, 0, err
	}
	if err := broadcast.ValidateMulticast(m, plan, dests); err != nil {
		return 0, 0, err
	}
	s := sim.New()
	net, err := network.New(s, m, cfg)
	if err != nil {
		return 0, 0, err
	}
	r, err := broadcast.Execute(net, plan, broadcast.Options{Length: scaleLength, Tag: "multicast"})
	if err != nil {
		return 0, 0, err
	}
	s.Run()
	var acc stats.Accumulator
	for _, d := range dests {
		at := r.Arrival[d]
		if at < 0 {
			return 0, 0, fmt.Errorf("paperbench: multicast destination %d never received (stuck: %v)", d, net.Stuck())
		}
		acc.Add(float64(at - r.Start))
	}
	return s.Fired(), acc.CV(), nil
}

// setBenchWorkload records the workload an artifact measures. Phases
// are only comparable when measured on one workload, so merging into
// an artifact recorded under different parameters is refused rather
// than letting summarize report a "speedup" that is really a workload
// change.
func setBenchWorkload(file *benchFile, path string, cur benchWorkload) error {
	if len(file.Phases) > 0 {
		old, _ := json.Marshal(file.Workload)
		now, _ := json.Marshal(cur)
		if string(old) != string(now) {
			return fmt.Errorf("paperbench: %s was recorded on workload %s, current workload is %s; start a fresh artifact",
				path, old, now)
		}
	}
	file.Workload = cur
	return nil
}

// loadOrInitBenchFile reads one bench artifact, returning a fresh one
// when path does not exist yet.
func loadOrInitBenchFile(path string) (*benchFile, error) {
	file, err := loadBenchFile(path)
	switch {
	case os.IsNotExist(err):
		file = &benchFile{Schema: benchSchema}
	case err != nil:
		return nil, err
	}
	if file.Phases == nil {
		file.Phases = map[string]*benchPhase{}
	}
	return file, nil
}

// writeBenchFile persists one bench artifact.
func writeBenchFile(path string, file *benchFile) error {
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// summarizeFile picks the artifact's canonical phase pair — heap vs
// ladder when both exist, else baseline vs optimized — and compares
// them; nil when no pair is complete (e.g. a CI smoke artifact with
// only a "ci" phase).
func summarizeFile(file *benchFile) *benchSummary {
	// A pair is only summarized when its phases' recorded calendars
	// are coherent: heap/ladder phases must be measured on the
	// calendar they are named after, and a baseline/optimized pair
	// must share one kernel. (runBenchJSON refuses to record such
	// artifacts; this guards hand-edited or merged ones.)
	coherent := func(name string, p *benchPhase) bool {
		if p == nil {
			return false
		}
		// Only the "shards" phase runs the parallel kernel, and it must
		// actually be sharded: a serial phase hand-recorded with a shard
		// count (or vice versa) would masquerade as the kernel speedup.
		if (name == "shards") != (p.Shards > 1) {
			return false
		}
		if (name == "heap" || name == "ladder") && p.Calendar != "" && p.Calendar != name {
			return false
		}
		// A "torus" phase must be a torus measurement, and the mesh
		// trajectory phases must not be.
		if name == "torus" {
			return p.Topo == "torus"
		}
		// A store phase must measure the store it is named after.
		if name == "dense" || name == "lazy" {
			return p.Store == "" || p.Store == name
		}
		return p.Topo == "" || p.Topo == "mesh"
	}
	for _, pair := range [][2]string{{"heap", "ladder"}, {"ladder", "shards"}, {"ladder", "torus"}, {"baseline", "optimized"}, {"dense", "lazy"}, {"lazy", "shards"}} {
		a, b := file.Phases[pair[0]], file.Phases[pair[1]]
		if !coherent(pair[0], a) || !coherent(pair[1], b) {
			continue
		}
		// Every pair except heap/ladder (which differs by definition)
		// must share one kernel; a torus phase hand-recorded on the
		// heap would otherwise masquerade as the mesh-vs-torus cost.
		if pair[0] != "heap" && a.Calendar != "" && b.Calendar != "" && a.Calendar != b.Calendar {
			continue
		}
		if s := summarize(a, b); s != nil {
			s.Compared = []string{pair[0], pair[1]}
			return s
		}
	}
	return nil
}

// summarize compares the to phase against the from phase.
func summarize(from, to *benchPhase) *benchSummary {
	if from == nil || to == nil {
		return nil
	}
	base := map[string]benchResult{}
	for _, r := range from.Results {
		base[r.Name] = r
	}
	s := &benchSummary{
		PerAlgorithm:              map[string]float64{},
		PerAlgorithmEventsSpeedup: map[string]float64{},
	}
	var baseAllocs, optAllocs, baseBytes, optBytes int64
	var baseNs, optNs float64
	for _, r := range to.Results {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		baseAllocs += b.AllocsPerOp
		optAllocs += r.AllocsPerOp
		baseBytes += b.BytesPerOp
		optBytes += r.BytesPerOp
		baseNs += b.NsPerOp
		optNs += r.NsPerOp
		if b.AllocsPerOp > 0 {
			s.PerAlgorithm[r.Name] = 100 * float64(b.AllocsPerOp-r.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		if b.EventsPerSec > 0 {
			s.PerAlgorithmEventsSpeedup[r.Name] = r.EventsPerSec / b.EventsPerSec
		}
	}
	if baseAllocs > 0 {
		s.AllocsReductionPct = 100 * float64(baseAllocs-optAllocs) / float64(baseAllocs)
	}
	if baseBytes > 0 {
		s.BytesReductionPct = 100 * float64(baseBytes-optBytes) / float64(baseBytes)
	}
	if baseNs > 0 {
		s.NsRatio = optNs / baseNs
	}
	return s
}

// guardPhases orders phase labels from most to least preferred when
// picking an artifact's representative (best-engineered) phase. The
// store phases trail the trajectory phases: they only appear in scale
// artifacts, where "lazy" is the engineered store and "dense" the
// reference.
var guardPhases = []string{"ladder", "optimized", "baseline", "lazy", "dense"}

// loadBenchFile reads and schema-checks one bench artifact.
func loadBenchFile(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file := &benchFile{}
	if err := json.Unmarshal(raw, file); err != nil {
		return nil, fmt.Errorf("paperbench: %s is not a bench artifact: %v", path, err)
	}
	if file.Schema != benchSchema {
		return nil, fmt.Errorf("paperbench: %s has schema %q, want %q", path, file.Schema, benchSchema)
	}
	return file, nil
}

// runBenchGuard is the CI regression gate: it compares the
// representative phase of the artifact at newPath against the one at
// basePath — no benchmarks are run, both artifacts are committed
// measurements — and errors if any algorithm's events/sec dropped, or
// allocs/op or bytes/op rose, beyond the relative tolerance. Mode
// "alloc" skips the events/sec floor: allocation counts are
// machine-independent, so that mode suits guarding a freshly measured
// artifact against a committed one recorded on different hardware.
func runBenchGuard(newPath, basePath string, tol float64, mode string) error {
	if basePath == "" {
		return fmt.Errorf("paperbench: -benchguard needs -benchbaseline")
	}
	if mode != "full" && mode != "alloc" {
		return fmt.Errorf("paperbench: -benchguardmode %q (want full or alloc)", mode)
	}
	newFile, err := loadBenchFile(newPath)
	if err != nil {
		return err
	}
	baseFile, err := loadBenchFile(basePath)
	if err != nil {
		return err
	}
	oldW, _ := json.Marshal(baseFile.Workload)
	newW, _ := json.Marshal(newFile.Workload)
	if string(oldW) != string(newW) {
		return fmt.Errorf("paperbench: workloads differ (%s vs %s); the artifacts are not comparable", oldW, newW)
	}
	pick := func(f *benchFile, path string) (string, *benchPhase, error) {
		for _, name := range guardPhases {
			if p := f.Phases[name]; p != nil {
				return name, p, nil
			}
		}
		return "", nil, fmt.Errorf("paperbench: %s has no phase among %v", path, guardPhases)
	}
	newName, newPhase, err := pick(newFile, newPath)
	if err != nil {
		return err
	}
	baseName, basePhase, err := pick(baseFile, basePath)
	if err != nil {
		return err
	}
	base := map[string]benchResult{}
	for _, r := range basePhase.Results {
		base[r.Name] = r
	}
	fmt.Printf("bench guard: %s[%s] vs %s[%s], tolerance %.0f%%\n",
		newPath, newName, basePath, baseName, 100*tol)
	var failures []string
	compared := 0
	for _, r := range newPhase.Results {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		compared++
		evRatio, alRatio, byRatio := 0.0, 0.0, 0.0
		if b.EventsPerSec > 0 {
			evRatio = r.EventsPerSec / b.EventsPerSec
		}
		if b.AllocsPerOp > 0 {
			alRatio = float64(r.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		if b.BytesPerOp > 0 {
			byRatio = float64(r.BytesPerOp) / float64(b.BytesPerOp)
		}
		fmt.Printf("  %-4s events/sec %11.0f -> %11.0f (%.2fx)   allocs/op %7d -> %7d (%.2fx)   bytes/op %9d -> %9d (%.2fx)\n",
			r.Name, b.EventsPerSec, r.EventsPerSec, evRatio, b.AllocsPerOp, r.AllocsPerOp, alRatio, b.BytesPerOp, r.BytesPerOp, byRatio)
		if mode == "full" && r.EventsPerSec < b.EventsPerSec*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s events/sec regressed: %.0f -> %.0f", r.Name, b.EventsPerSec, r.EventsPerSec))
		}
		if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s allocs/op regressed: %d -> %d", r.Name, b.AllocsPerOp, r.AllocsPerOp))
		}
		// The bytes/op ceiling belongs to the allocation gate only:
		// historical trajectory pairs legitimately trade bytes for
		// speed (PR 4's ladder arena grew DB/AB bytes/op), so "full"
		// keeps its original events/sec + allocs/op contract.
		if mode == "alloc" && b.BytesPerOp > 0 && float64(r.BytesPerOp) > float64(b.BytesPerOp)*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s bytes/op regressed: %d -> %d", r.Name, b.BytesPerOp, r.BytesPerOp))
		}
	}
	if compared == 0 {
		return fmt.Errorf("paperbench: no common algorithms between %s and %s", newPath, basePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("paperbench: bench guard failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("bench guard: ok (%d algorithms)\n", compared)
	return nil
}
