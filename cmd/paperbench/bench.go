package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
)

// Benchmark-emission path: paperbench -benchjson FILE runs the Fig. 2
// saturation-load workload (see metrics.SaturationConfig) under all
// four algorithms through testing.Benchmark and records ns/op,
// allocs/op, B/op and events/sec into FILE, keyed by -benchphase.
// Re-running with a different phase merges into the same file, so one
// artifact carries the pre-PR baseline and the optimised numbers side
// by side; when both are present a summary with the per-algorithm and
// overall allocs/op reduction is recomputed. This is how the repo's
// perf trajectory (BENCH_pr2.json, BENCH_pr3.json, …) is produced.
// -benchtopo torus runs the same workload on the wraparound twin of
// the bench mesh (two dateline VCs) and records it as the "torus"
// phase, so BENCH_pr5.json carries the mesh trajectory point and the
// torus datapoint in one artifact.

// benchSchema identifies the artifact layout; bump on breaking change.
const benchSchema = "wormsim-bench/v1"

// benchResult is one (algorithm) measurement of the saturation workload.
type benchResult struct {
	// Name is the broadcast algorithm benchmarked.
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per saturation study.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per study.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// EventsPerOp is the number of discrete events one study fires.
	EventsPerOp uint64 `json:"events_per_op"`
	// EventsPerSec is kernel throughput: events fired per wall second.
	EventsPerSec float64 `json:"events_per_sec"`
	// MeanCV is the scientific output (arrival-time CV), recorded so a
	// perf regression that changes simulation results is caught at a
	// glance.
	MeanCV float64 `json:"mean_cv"`
}

// benchPhase is one measurement pass (e.g. "heap", "ladder",
// "torus"). Topo records the topology kind the phase ran on ("mesh"
// when empty); the torus phase runs the same saturation workload on
// the wraparound twin of the bench mesh with two dateline VCs, so one
// artifact carries the mesh trajectory and the torus datapoint side
// by side.
type benchPhase struct {
	Recorded  string        `json:"recorded"`
	GoVersion string        `json:"go_version"`
	Calendar  string        `json:"calendar,omitempty"`
	Topo      string        `json:"topo,omitempty"`
	Results   []benchResult `json:"results"`
}

// benchSummary compares two phases of one artifact: "heap" vs
// "ladder" when both are present, else "baseline" vs "optimized".
type benchSummary struct {
	// Compared names the [from, to] phases the summary covers.
	Compared []string `json:"compared,omitempty"`
	// AllocsReductionPct is the overall percentage reduction in
	// allocs/op (summed across algorithms), to-phase vs from-phase.
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	// NsRatio is total to-phase ns/op over total from-phase ns/op;
	// below 1 is a speedup.
	NsRatio float64 `json:"ns_ratio"`
	// PerAlgorithm maps algorithm name to its allocs/op reduction %.
	PerAlgorithm map[string]float64 `json:"per_algorithm_allocs_reduction_pct"`
	// PerAlgorithmEventsSpeedup maps algorithm name to the to-phase
	// events/sec over the from-phase events/sec (above 1 is faster).
	PerAlgorithmEventsSpeedup map[string]float64 `json:"per_algorithm_events_speedup,omitempty"`
}

// benchFile is the whole BENCH_*.json artifact.
type benchFile struct {
	Schema   string `json:"schema"`
	Workload struct {
		Mesh         []int   `json:"mesh"`
		Length       int     `json:"length_flits"`
		Broadcasts   int     `json:"broadcasts"`
		Interarrival float64 `json:"interarrival_us"`
		Seed         uint64  `json:"seed"`
	} `json:"workload"`
	Phases  map[string]*benchPhase `json:"phases"`
	Summary *benchSummary          `json:"summary,omitempty"`
}

// runBenchJSON executes the saturation benchmark and merges the
// results into path under the given phase. benchtime is forwarded to
// the testing package ("" keeps the 1s default; "1x" suits CI smoke).
// topo selects the topology the workload runs on: "mesh" (the
// trajectory the BENCH_* artifacts track) or "torus" (the wraparound
// twin with two dateline VCs, recorded as its own phase).
func runBenchJSON(path, phase, benchtime, topo string) error {
	if benchtime != "" {
		testing.Init()
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return fmt.Errorf("paperbench: bad -benchtime %q: %v", benchtime, err)
		}
	}
	if topo != "mesh" && topo != "torus" {
		return fmt.Errorf("paperbench: -benchtopo %q (want mesh or torus)", topo)
	}

	// A phase named after a calendar must be measured on that
	// calendar: a mislabeled phase would silently corrupt the
	// heap-vs-ladder summary and the regression guard.
	activeCal := wormsim.DefaultCalendar().String()
	for _, known := range []string{"heap", "ladder"} {
		if phase == known && activeCal != known {
			return fmt.Errorf("paperbench: -benchphase %s but -calendar %s; pass -calendar %s (or rename the phase)",
				phase, activeCal, known)
		}
	}
	// The trajectory phase names are reserved for the mesh workload:
	// recording a torus measurement under them would corrupt every
	// cross-PR comparison. The torus datapoint lives under "torus".
	if topo == "torus" {
		for _, reserved := range []string{"heap", "ladder", "baseline", "optimized"} {
			if phase == reserved {
				return fmt.Errorf("paperbench: -benchphase %s is a mesh trajectory phase; record the torus run under -benchphase torus", phase)
			}
		}
	}
	if phase == "torus" && topo != "torus" {
		return fmt.Errorf("paperbench: -benchphase torus needs -benchtopo torus")
	}

	file, err := loadBenchFile(path)
	switch {
	case os.IsNotExist(err):
		file = &benchFile{Schema: benchSchema}
	case err != nil:
		return err
	}
	if file.Phases == nil {
		file.Phases = map[string]*benchPhase{}
	}
	// Same-kernel phase pairs must stay same-kernel: refuse to record
	// a baseline/optimized (or ladder/torus) phase on a different
	// calendar than its already-recorded partner — the summary would
	// attribute the calendar's speedup to whatever the phase pair
	// claims to measure.
	for _, pair := range [][2]string{{"baseline", "optimized"}, {"optimized", "baseline"}, {"torus", "ladder"}, {"ladder", "torus"}} {
		if phase != pair[0] {
			continue
		}
		if partner := file.Phases[pair[1]]; partner != nil && partner.Calendar != "" && partner.Calendar != activeCal {
			return fmt.Errorf("paperbench: phase %q was recorded on the %s calendar but -calendar is %s; the %s/%s pair must share a kernel",
				pair[1], partner.Calendar, activeCal, pair[0], pair[1])
		}
	}

	seed := uint64(2005)
	cfg := wormsim.SaturationConfig(seed)
	var workload = file.Workload // zero value when the file is new
	workload.Mesh = wormsim.SaturationDims()
	workload.Length = cfg.Length
	workload.Broadcasts = cfg.Broadcasts
	workload.Interarrival = cfg.Interarrival
	workload.Seed = seed
	// Phases are only comparable when measured on the same workload:
	// refuse to merge into an artifact recorded under different
	// parameters rather than let summarize report a "speedup" that is
	// really a workload change.
	if len(file.Phases) > 0 {
		old, _ := json.Marshal(file.Workload)
		cur, _ := json.Marshal(workload)
		if string(old) != string(cur) {
			return fmt.Errorf("paperbench: %s was recorded on workload %s, current workload is %s; start a fresh artifact",
				path, old, cur)
		}
	}
	file.Workload = workload

	m := wormsim.NewMesh(wormsim.SaturationDims()...)
	bcfg := wormsim.SaturationConfig(seed)
	if topo == "torus" {
		// The wraparound twin of the bench mesh, on the torus network
		// defaults: two dateline virtual channels per physical channel.
		m = wormsim.NewTorus(wormsim.SaturationDims()...)
		bcfg.Net.VCs = 2
	}
	p := &benchPhase{
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Calendar:  activeCal,
	}
	if topo == "torus" {
		p.Topo = topo
	}
	for _, algo := range wormsim.Algorithms() {
		var events uint64
		var cv float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := wormsim.ContendedCVStudy(m, algo, bcfg)
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
				cv = st.CV.Mean()
			}
		})
		if r.N == 0 {
			return fmt.Errorf("paperbench: %s saturation benchmark did not run", algo.Name())
		}
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := benchResult{
			Name:        algo.Name(),
			Iterations:  r.N,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			EventsPerOp: events,
			MeanCV:      cv,
		}
		if nsPerOp > 0 {
			res.EventsPerSec = float64(events) / (nsPerOp * 1e-9)
		}
		p.Results = append(p.Results, res)
		fmt.Fprintf(os.Stderr, "bench %s/%s: %.0f ns/op  %d allocs/op  %.0f events/sec\n",
			phase, res.Name, res.NsPerOp, res.AllocsPerOp, res.EventsPerSec)
	}
	file.Phases[phase] = p
	file.Summary = summarizeFile(file)

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// summarizeFile picks the artifact's canonical phase pair — heap vs
// ladder when both exist, else baseline vs optimized — and compares
// them; nil when no pair is complete (e.g. a CI smoke artifact with
// only a "ci" phase).
func summarizeFile(file *benchFile) *benchSummary {
	// A pair is only summarized when its phases' recorded calendars
	// are coherent: heap/ladder phases must be measured on the
	// calendar they are named after, and a baseline/optimized pair
	// must share one kernel. (runBenchJSON refuses to record such
	// artifacts; this guards hand-edited or merged ones.)
	coherent := func(name string, p *benchPhase) bool {
		if p == nil {
			return false
		}
		if (name == "heap" || name == "ladder") && p.Calendar != "" && p.Calendar != name {
			return false
		}
		// A "torus" phase must be a torus measurement, and the mesh
		// trajectory phases must not be.
		if name == "torus" {
			return p.Topo == "torus"
		}
		return p.Topo == "" || p.Topo == "mesh"
	}
	for _, pair := range [][2]string{{"heap", "ladder"}, {"ladder", "torus"}, {"baseline", "optimized"}} {
		a, b := file.Phases[pair[0]], file.Phases[pair[1]]
		if !coherent(pair[0], a) || !coherent(pair[1], b) {
			continue
		}
		// Every pair except heap/ladder (which differs by definition)
		// must share one kernel; a torus phase hand-recorded on the
		// heap would otherwise masquerade as the mesh-vs-torus cost.
		if pair[0] != "heap" && a.Calendar != "" && b.Calendar != "" && a.Calendar != b.Calendar {
			continue
		}
		if s := summarize(a, b); s != nil {
			s.Compared = []string{pair[0], pair[1]}
			return s
		}
	}
	return nil
}

// summarize compares the to phase against the from phase.
func summarize(from, to *benchPhase) *benchSummary {
	if from == nil || to == nil {
		return nil
	}
	base := map[string]benchResult{}
	for _, r := range from.Results {
		base[r.Name] = r
	}
	s := &benchSummary{
		PerAlgorithm:              map[string]float64{},
		PerAlgorithmEventsSpeedup: map[string]float64{},
	}
	var baseAllocs, optAllocs int64
	var baseNs, optNs float64
	for _, r := range to.Results {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		baseAllocs += b.AllocsPerOp
		optAllocs += r.AllocsPerOp
		baseNs += b.NsPerOp
		optNs += r.NsPerOp
		if b.AllocsPerOp > 0 {
			s.PerAlgorithm[r.Name] = 100 * float64(b.AllocsPerOp-r.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		if b.EventsPerSec > 0 {
			s.PerAlgorithmEventsSpeedup[r.Name] = r.EventsPerSec / b.EventsPerSec
		}
	}
	if baseAllocs > 0 {
		s.AllocsReductionPct = 100 * float64(baseAllocs-optAllocs) / float64(baseAllocs)
	}
	if baseNs > 0 {
		s.NsRatio = optNs / baseNs
	}
	return s
}

// guardPhases orders phase labels from most to least preferred when
// picking an artifact's representative (best-engineered) phase.
var guardPhases = []string{"ladder", "optimized", "baseline"}

// loadBenchFile reads and schema-checks one bench artifact.
func loadBenchFile(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	file := &benchFile{}
	if err := json.Unmarshal(raw, file); err != nil {
		return nil, fmt.Errorf("paperbench: %s is not a bench artifact: %v", path, err)
	}
	if file.Schema != benchSchema {
		return nil, fmt.Errorf("paperbench: %s has schema %q, want %q", path, file.Schema, benchSchema)
	}
	return file, nil
}

// runBenchGuard is the CI regression gate: it compares the
// representative phase of the artifact at newPath against the one at
// basePath — no benchmarks are run, both artifacts are committed
// measurements — and errors if any algorithm's events/sec dropped, or
// allocs/op rose, beyond the relative tolerance.
func runBenchGuard(newPath, basePath string, tol float64) error {
	if basePath == "" {
		return fmt.Errorf("paperbench: -benchguard needs -benchbaseline")
	}
	newFile, err := loadBenchFile(newPath)
	if err != nil {
		return err
	}
	baseFile, err := loadBenchFile(basePath)
	if err != nil {
		return err
	}
	oldW, _ := json.Marshal(baseFile.Workload)
	newW, _ := json.Marshal(newFile.Workload)
	if string(oldW) != string(newW) {
		return fmt.Errorf("paperbench: workloads differ (%s vs %s); the artifacts are not comparable", oldW, newW)
	}
	pick := func(f *benchFile, path string) (string, *benchPhase, error) {
		for _, name := range guardPhases {
			if p := f.Phases[name]; p != nil {
				return name, p, nil
			}
		}
		return "", nil, fmt.Errorf("paperbench: %s has no phase among %v", path, guardPhases)
	}
	newName, newPhase, err := pick(newFile, newPath)
	if err != nil {
		return err
	}
	baseName, basePhase, err := pick(baseFile, basePath)
	if err != nil {
		return err
	}
	base := map[string]benchResult{}
	for _, r := range basePhase.Results {
		base[r.Name] = r
	}
	fmt.Printf("bench guard: %s[%s] vs %s[%s], tolerance %.0f%%\n",
		newPath, newName, basePath, baseName, 100*tol)
	var failures []string
	compared := 0
	for _, r := range newPhase.Results {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		compared++
		evRatio, alRatio := 0.0, 0.0
		if b.EventsPerSec > 0 {
			evRatio = r.EventsPerSec / b.EventsPerSec
		}
		if b.AllocsPerOp > 0 {
			alRatio = float64(r.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		fmt.Printf("  %-4s events/sec %11.0f -> %11.0f (%.2fx)   allocs/op %7d -> %7d (%.2fx)\n",
			r.Name, b.EventsPerSec, r.EventsPerSec, evRatio, b.AllocsPerOp, r.AllocsPerOp, alRatio)
		if r.EventsPerSec < b.EventsPerSec*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s events/sec regressed: %.0f -> %.0f", r.Name, b.EventsPerSec, r.EventsPerSec))
		}
		if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol) {
			failures = append(failures, fmt.Sprintf("%s allocs/op regressed: %d -> %d", r.Name, b.AllocsPerOp, r.AllocsPerOp))
		}
	}
	if compared == 0 {
		return fmt.Errorf("paperbench: no common algorithms between %s and %s", newPath, basePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("paperbench: bench guard failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("bench guard: ok (%d algorithms)\n", compared)
	return nil
}
