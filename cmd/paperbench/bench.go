package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
)

// Benchmark-emission path: paperbench -benchjson FILE runs the Fig. 2
// saturation-load workload (see metrics.SaturationConfig) under all
// four algorithms through testing.Benchmark and records ns/op,
// allocs/op, B/op and events/sec into FILE, keyed by -benchphase.
// Re-running with a different phase merges into the same file, so one
// artifact carries the pre-PR baseline and the optimised numbers side
// by side; when both are present a summary with the per-algorithm and
// overall allocs/op reduction is recomputed. This is how the repo's
// perf trajectory (BENCH_pr2.json, BENCH_pr3.json, …) is produced.

// benchSchema identifies the artifact layout; bump on breaking change.
const benchSchema = "wormsim-bench/v1"

// benchResult is one (algorithm) measurement of the saturation workload.
type benchResult struct {
	// Name is the broadcast algorithm benchmarked.
	Name string `json:"name"`
	// Iterations is the b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per saturation study.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap allocations per study.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// EventsPerOp is the number of discrete events one study fires.
	EventsPerOp uint64 `json:"events_per_op"`
	// EventsPerSec is kernel throughput: events fired per wall second.
	EventsPerSec float64 `json:"events_per_sec"`
	// MeanCV is the scientific output (arrival-time CV), recorded so a
	// perf regression that changes simulation results is caught at a
	// glance.
	MeanCV float64 `json:"mean_cv"`
}

// benchPhase is one measurement pass (e.g. "baseline", "optimized").
type benchPhase struct {
	Recorded  string        `json:"recorded"`
	GoVersion string        `json:"go_version"`
	Results   []benchResult `json:"results"`
}

// benchSummary compares the optimized phase against the baseline.
type benchSummary struct {
	// AllocsReductionPct is the overall percentage reduction in
	// allocs/op (summed across algorithms), optimized vs baseline.
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
	// NsRatio is total optimized ns/op over total baseline ns/op;
	// below 1 is a speedup.
	NsRatio float64 `json:"ns_ratio"`
	// PerAlgorithm maps algorithm name to its allocs/op reduction %.
	PerAlgorithm map[string]float64 `json:"per_algorithm_allocs_reduction_pct"`
}

// benchFile is the whole BENCH_*.json artifact.
type benchFile struct {
	Schema   string `json:"schema"`
	Workload struct {
		Mesh         []int   `json:"mesh"`
		Length       int     `json:"length_flits"`
		Broadcasts   int     `json:"broadcasts"`
		Interarrival float64 `json:"interarrival_us"`
		Seed         uint64  `json:"seed"`
	} `json:"workload"`
	Phases  map[string]*benchPhase `json:"phases"`
	Summary *benchSummary          `json:"summary,omitempty"`
}

// runBenchJSON executes the saturation benchmark and merges the
// results into path under the given phase. benchtime is forwarded to
// the testing package ("" keeps the 1s default; "1x" suits CI smoke).
func runBenchJSON(path, phase, benchtime string) error {
	if benchtime != "" {
		testing.Init()
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return fmt.Errorf("paperbench: bad -benchtime %q: %v", benchtime, err)
		}
	}

	file := &benchFile{Schema: benchSchema, Phases: map[string]*benchPhase{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, file); err != nil {
			return fmt.Errorf("paperbench: %s exists but is not a bench artifact: %v", path, err)
		}
		if file.Schema != benchSchema {
			return fmt.Errorf("paperbench: %s has schema %q, want %q", path, file.Schema, benchSchema)
		}
		if file.Phases == nil {
			file.Phases = map[string]*benchPhase{}
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	seed := uint64(2005)
	cfg := wormsim.SaturationConfig(seed)
	var workload = file.Workload // zero value when the file is new
	workload.Mesh = wormsim.SaturationDims()
	workload.Length = cfg.Length
	workload.Broadcasts = cfg.Broadcasts
	workload.Interarrival = cfg.Interarrival
	workload.Seed = seed
	// Phases are only comparable when measured on the same workload:
	// refuse to merge into an artifact recorded under different
	// parameters rather than let summarize report a "speedup" that is
	// really a workload change.
	if len(file.Phases) > 0 {
		old, _ := json.Marshal(file.Workload)
		cur, _ := json.Marshal(workload)
		if string(old) != string(cur) {
			return fmt.Errorf("paperbench: %s was recorded on workload %s, current workload is %s; start a fresh artifact",
				path, old, cur)
		}
	}
	file.Workload = workload

	m := wormsim.NewMesh(wormsim.SaturationDims()...)
	p := &benchPhase{
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	for _, algo := range wormsim.Algorithms() {
		var events uint64
		var cv float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := wormsim.ContendedCVStudy(m, algo, wormsim.SaturationConfig(seed))
				if err != nil {
					b.Fatal(err)
				}
				events = st.Events
				cv = st.CV.Mean()
			}
		})
		if r.N == 0 {
			return fmt.Errorf("paperbench: %s saturation benchmark did not run", algo.Name())
		}
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		res := benchResult{
			Name:        algo.Name(),
			Iterations:  r.N,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			EventsPerOp: events,
			MeanCV:      cv,
		}
		if nsPerOp > 0 {
			res.EventsPerSec = float64(events) / (nsPerOp * 1e-9)
		}
		p.Results = append(p.Results, res)
		fmt.Fprintf(os.Stderr, "bench %s/%s: %.0f ns/op  %d allocs/op  %.0f events/sec\n",
			phase, res.Name, res.NsPerOp, res.AllocsPerOp, res.EventsPerSec)
	}
	file.Phases[phase] = p
	file.Summary = summarize(file.Phases["baseline"], file.Phases["optimized"])

	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// summarize compares the two canonical phases; nil when either is
// missing (e.g. a CI smoke artifact with only a "ci" phase).
func summarize(baseline, optimized *benchPhase) *benchSummary {
	if baseline == nil || optimized == nil {
		return nil
	}
	base := map[string]benchResult{}
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	s := &benchSummary{PerAlgorithm: map[string]float64{}}
	var baseAllocs, optAllocs int64
	var baseNs, optNs float64
	for _, r := range optimized.Results {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		baseAllocs += b.AllocsPerOp
		optAllocs += r.AllocsPerOp
		baseNs += b.NsPerOp
		optNs += r.NsPerOp
		if b.AllocsPerOp > 0 {
			s.PerAlgorithm[r.Name] = 100 * float64(b.AllocsPerOp-r.AllocsPerOp) / float64(b.AllocsPerOp)
		}
	}
	if baseAllocs > 0 {
		s.AllocsReductionPct = 100 * float64(baseAllocs-optAllocs) / float64(baseAllocs)
	}
	if baseNs > 0 {
		s.NsRatio = optNs / baseNs
	}
	return s
}
