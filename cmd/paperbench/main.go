// Command paperbench regenerates every table and figure of the
// paper's evaluation section and prints them in the paper's layout.
//
//	paperbench            # full runs (paper-sized replication counts)
//	paperbench -quick     # reduced replication for a fast smoke run
//	paperbench -only fig1 # one artifact: fig1, fig1b, fig2, tables, fig3, fig4
//	paperbench -procs 8   # fan replications out over 8 workers
//
// Replications run in parallel on -procs workers (default: all
// cores). Output is bit-identical for any -procs value and a fixed
// -seed: per-replication randomness is derived from (seed,
// replication), never from scheduling. Live progress is reported on
// stderr; figures and tables go to stdout, so redirecting stdout
// captures exactly the artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/export"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced replication counts for a fast run")
		only     = flag.String("only", "", "comma-separated subset: fig1, fig1b, fig2, tables, fig3, fig4")
		seed     = flag.Uint64("seed", 2005, "random seed")
		csvDir   = flag.String("csv", "", "also write each artifact as CSV into this directory")
		batchesF = flag.Int("batches", 0, "override batch count for the traffic figures")
		batchSzF = flag.Int("batchsize", 0, "override batch size for the traffic figures")
		procs    = flag.Int("procs", 0, "max parallel replications (0 = all cores); output is identical for any value")
		repsF    = flag.Int("reps", 0, "override replication count for the replicated figures (0 = default)")
		progress = flag.Bool("progress", true, "report live progress on stderr")

		benchJSON  = flag.String("benchjson", "", "run the saturation-load benchmark and merge results into this JSON artifact (skips the figures)")
		benchPhase = flag.String("benchphase", "optimized", "phase label for -benchjson results (baseline, optimized, ci, ...)")
		benchTime  = flag.String("benchtime", "", "benchmark duration per algorithm for -benchjson, as for go test (e.g. 1s, 5x); empty = testing default")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchPhase, *benchTime); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err == nil {
			err = write(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: writing %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	reps := 40
	batches, batchSize := 21, 100
	if *quick {
		reps = 8
		batches, batchSize = 6, 40
	}
	if *repsF > 0 {
		reps = *repsF
	}
	if *batchesF > 0 {
		batches = *batchesF
	}
	if *batchSzF > 0 {
		batchSize = *batchSzF
	}

	// Live progress is a carriage-return-overwritten stderr line,
	// erased when the artifact completes so only stdout output
	// remains. It needs a terminal: into a pipe or log file the
	// control characters are garbage, so it is disabled there.
	progressOn := *progress && stderrIsTerminal()
	reporter := func(id string) func(done, total int) {
		if !progressOn {
			return nil
		}
		return func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d", id, done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		}
	}
	// clearProgress erases a partially drawn progress line so error
	// messages start on a clean line (a failed driver never reaches
	// done == total).
	clearProgress := func() {
		if progressOn {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
	}

	run := func(id string, fn func() (*experiments.Figure, error)) {
		if !selected(id) {
			return
		}
		start := time.Now()
		fig, err := fn()
		if err != nil {
			clearProgress()
			fmt.Fprintf(os.Stderr, "paperbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(fig)
		// Timing goes to stderr: stdout must stay byte-identical
		// across runs and -procs values for the determinism diff.
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v)\n", id, time.Since(start).Round(time.Millisecond))
		writeCSV(id+".csv", func(f *os.File) error { return export.FigureCSV(f, fig) })
	}

	run("fig1", func() (*experiments.Figure, error) {
		return wormsim.Fig1(wormsim.Fig1Config{
			Reps: reps, Seed: *seed, Procs: *procs, Progress: reporter("fig1"),
		})
	})
	run("fig1b", func() (*experiments.Figure, error) {
		return wormsim.Fig1StartupLatency(wormsim.Fig1Config{
			Reps: reps, Seed: *seed, Procs: *procs, Progress: reporter("fig1b"),
		})
	})
	// Fig. 2 and Tables 1–2 are projections of the same (algorithm,
	// mesh) study grid — when both are selected, compute the grid
	// once via Fig2AndTables instead of simulating it twice.
	switch {
	case selected("fig2") && selected("tables"):
		start := time.Now()
		fig, t1, t2, err := wormsim.Fig2AndTables(wormsim.Fig2Config{
			Reps: reps, Seed: *seed, Procs: *procs, Progress: reporter("fig2+tables"),
		})
		if err != nil {
			clearProgress()
			fmt.Fprintf(os.Stderr, "paperbench: fig2+tables failed: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Println(fig)
		fmt.Println(t1.Format())
		fmt.Println(t2.Format())
		fmt.Fprintf(os.Stderr, "(fig2+tables regenerated in %v, shared study grid)\n", elapsed)
		writeCSV("fig2.csv", func(f *os.File) error { return export.FigureCSV(f, fig) })
		writeCSV("table1.csv", func(f *os.File) error { return export.TableCSV(f, t1) })
		writeCSV("table2.csv", func(f *os.File) error { return export.TableCSV(f, t2) })
	case selected("fig2"):
		run("fig2", func() (*experiments.Figure, error) {
			return wormsim.Fig2(wormsim.Fig2Config{
				Reps: reps, Seed: *seed, Procs: *procs, Progress: reporter("fig2"),
			})
		})
	case selected("tables"):
		start := time.Now()
		t1, t2, err := wormsim.Tables(wormsim.Fig2Config{
			Reps: reps, Seed: *seed, Procs: *procs, Progress: reporter("tables"),
		})
		if err != nil {
			clearProgress()
			fmt.Fprintf(os.Stderr, "paperbench: tables failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t1.Format())
		fmt.Println(t2.Format())
		fmt.Fprintf(os.Stderr, "(tables regenerated in %v)\n", time.Since(start).Round(time.Millisecond))
		writeCSV("table1.csv", func(f *os.File) error { return export.TableCSV(f, t1) })
		writeCSV("table2.csv", func(f *os.File) error { return export.TableCSV(f, t2) })
	}
	run("fig3", func() (*experiments.Figure, error) {
		return wormsim.Fig34(wormsim.Fig34Config{
			Dims: []int{8, 8, 8}, Batches: batches, BatchSize: batchSize, Warmup: 1,
			Seed: *seed, Procs: *procs, Progress: reporter("fig3"),
		})
	})
	run("fig4", func() (*experiments.Figure, error) {
		return wormsim.Fig34(wormsim.Fig34Config{
			Dims: []int{16, 16, 8}, Batches: batches, BatchSize: batchSize, Warmup: 1,
			Seed: *seed, Procs: *procs, Progress: reporter("fig4"),
		})
	})
}

// stderrIsTerminal reports whether stderr is attached to a terminal
// (character device), the only place the \r progress line renders
// usefully.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
