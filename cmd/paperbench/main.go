// Command paperbench regenerates every table and figure of the
// paper's evaluation section and prints them in the paper's layout.
//
//	paperbench            # full runs (paper-sized replication counts)
//	paperbench -quick     # reduced replication for a fast smoke run
//	paperbench -only fig1 # one artifact: fig1, fig1b, fig2, tables,
//	                      # fig3, fig4, fig2-torus, faults
//	paperbench -procs 8   # fan replications out over 8 workers
//
// Every artifact is a registered scenario (internal/scenario) looked
// up by name; this command only sequences them in the paper's order
// and renders the results.
//
// The event-calendar knob (-calendar ladder|heap) selects the
// simulation kernel's calendar for everything the command runs. The
// ladder queue is the default; the legacy binary heap is kept for
// cross-checking and for measuring the ladder's speedup. Output is
// byte-identical either way — only wall time changes. The -shards
// knob likewise applies to everything the command runs: each
// simulation is partitioned across that many shard calendars of the
// conservative-parallel kernel, with byte-identical output at any
// count — `paperbench -shards 8` must diff empty against a serial
// run. The -wavefront knob (default on) selects batched execution of
// same-instant events; -wavefront=false pops one event at a time, and
// the output must again diff empty — CI pins both identities.
//
// The -cpuprofile and -memprofile flags write standard pprof
// profiles of the whole run, exactly as `go test` would.
//
// Benchmark flags (the perf-trajectory workflow; see EXPERIMENTS.md):
//
//	-benchjson FILE    run the Fig. 2 saturation-load benchmark under
//	                   all four algorithms and merge ns/op, allocs/op,
//	                   B/op and events/sec into FILE (skips figures)
//	-benchphase NAME   phase label recorded in FILE; pairs measured in
//	                   one artifact get a computed summary ("heap" vs
//	                   "ladder", or "baseline" vs "optimized")
//	-benchtime D       per-algorithm duration, as for go test (1s, 5x)
//	-benchtopo T       workload topology: mesh (default) or torus (the
//	                   wraparound twin with two dateline VCs, recorded
//	                   as the "torus" phase)
//	-benchworkload W   what to measure: saturation (default, the
//	                   trajectory above) or scale — one 64-destination
//	                   multicast on the 2^20-node mesh, recorded under
//	                   -benchphase dense or lazy so one artifact
//	                   carries both substrate memory models and a
//	                   bytes/op reduction summary
//	-benchshards K     measure the workload on the conservative-
//	                   parallel kernel with K shard calendars,
//	                   recorded as the "shards" phase; paired with the
//	                   artifact's serial phase ("ladder" for
//	                   saturation, "lazy" for scale) the summary
//	                   reports the per-algorithm events/sec speedup.
//	                   Phases record the GOMAXPROCS they were measured
//	                   under — shard speedup needs as many cores as
//	                   shards
//	-benchguard FILE   offline regression gate: compare FILE's best
//	                   phase against -benchbaseline's and fail if any
//	                   algorithm lost events/sec or gained allocs/op
//	                   beyond -benchtol (no benchmarks are run);
//	                   -benchguardmode alloc swaps the machine-bound
//	                   events/sec floor for a bytes/op ceiling, so
//	                   fresh measurements can be guarded against
//	                   committed artifacts on any machine
//
// The committed trajectory: BENCH_pr2.json (baseline vs optimized,
// both on the heap) and BENCH_pr4.json (heap vs ladder), produced by
//
//	paperbench -benchjson BENCH_pr4.json -benchphase heap   -calendar heap
//	paperbench -benchjson BENCH_pr4.json -benchphase ladder -calendar ladder
//	paperbench -benchguard BENCH_pr4.json -benchbaseline BENCH_pr2.json
//
// BENCH_pr9.json extends it with the parallel kernel: a fresh serial
// "ladder" phase plus the "shards" phase of the same workload, so
// the summary carries the shard speedup and the guard pins the
// serial path against BENCH_pr5:
//
//	paperbench -benchjson BENCH_pr9.json -benchphase ladder
//	paperbench -benchjson BENCH_pr9.json -benchphase shards -benchshards 8
//	paperbench -benchguard BENCH_pr9.json -benchbaseline BENCH_pr5.json
//
// Replications run in parallel on -procs workers (default: all
// cores). Output is bit-identical for any -procs value and a fixed
// -seed: per-replication randomness is derived from (seed,
// replication), never from scheduling. Live progress is reported on
// stderr; figures and tables go to stdout, so redirecting stdout
// captures exactly the artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/export"
	"repro/internal/prof"
	"repro/internal/scenario"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced replication counts for a fast run")
		only     = flag.String("only", "", "comma-separated subset: fig1, fig1b, fig2, tables, fig3, fig4, fig2-torus, faults")
		seed     = flag.Uint64("seed", 2005, "random seed")
		csvDir   = flag.String("csv", "", "also write each artifact as CSV into this directory")
		batchesF = flag.Int("batches", 0, "override batch count for the traffic figures")
		batchSzF = flag.Int("batchsize", 0, "override batch size for the traffic figures")
		procs    = flag.Int("procs", 0, "max parallel replications (0 = all cores); output is identical for any value")
		repsF    = flag.Int("reps", 0, "override replication count for the replicated figures (0 = default)")
		progress = flag.Bool("progress", true, "report live progress on stderr")
		shards   = flag.Int("shards", 0, "partition each simulation across this many shard calendars of the conservative-parallel kernel (0/1 = serial; output is byte-identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		calName   = flag.String("calendar", "ladder", "event calendar backing the simulation kernel: ladder or heap (byte-identical output, different speed)")
		wavefront = flag.Bool("wavefront", true, "execute same-instant event batches as wavefronts (byte-identical output; false pops one event at a time)")

		benchJSON     = flag.String("benchjson", "", "run the saturation-load benchmark and merge results into this JSON artifact (skips the figures)")
		benchPhase    = flag.String("benchphase", "optimized", "phase label for -benchjson results (heap, ladder, baseline, optimized, torus, ci, ...; dense or lazy with -benchworkload scale)")
		benchWork     = flag.String("benchworkload", "saturation", "workload for -benchjson: saturation (the Fig. 2 trajectory) or scale (64-destination multicast on the 2^20-node mesh; phases dense/lazy measure the substrate memory models)")
		benchTopo     = flag.String("benchtopo", "mesh", "topology for -benchjson: mesh (the trajectory workload) or torus (wraparound twin, two dateline VCs, phase \"torus\")")
		benchTime     = flag.String("benchtime", "", "benchmark duration per algorithm for -benchjson, as for go test (e.g. 1s, 5x); empty = testing default")
		benchGuard    = flag.String("benchguard", "", "compare this bench artifact against -benchbaseline and exit nonzero on regression (offline; skips the figures)")
		benchBaseline = flag.String("benchbaseline", "", "baseline bench artifact for -benchguard")
		benchTol      = flag.Float64("benchtol", 0.05, "relative tolerance for -benchguard (0.05 = 5%)")
		benchGdMode   = flag.String("benchguardmode", "full", "what -benchguard enforces: full (events/sec floor + allocs/op ceiling) or alloc (allocs/op + bytes/op ceilings — machine-independent, for guarding fresh measurements against committed artifacts)")
		benchShards   = flag.Int("benchshards", 0, "measure the -benchjson workload on the conservative-parallel kernel with this many shards, recorded as the \"shards\" phase (0 = serial)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	cal, err := wormsim.ParseCalendar(*calName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	wormsim.SetDefaultCalendar(cal)
	wormsim.SetDefaultWavefront(*wavefront)

	if *benchGuard != "" {
		if err := runBenchGuard(*benchGuard, *benchBaseline, *benchTol, *benchGdMode); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchPhase, *benchTime, *benchTopo, *benchWork, *benchShards); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err == nil {
			err = write(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: writing %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	reps := 40
	batches, batchSize := 21, 100
	if *quick {
		reps = 8
		batches, batchSize = 6, 40
	}
	if *repsF > 0 {
		reps = *repsF
	}
	if *batchesF > 0 {
		batches = *batchesF
	}
	if *batchSzF > 0 {
		batchSize = *batchSzF
	}

	// Live progress is a carriage-return-overwritten stderr line,
	// erased when the artifact completes so only stdout output
	// remains. It needs a terminal: into a pipe or log file the
	// control characters are garbage, so it is disabled there.
	progressOn := *progress && stderrIsTerminal()
	reporter := func(id string) func(done, total int) {
		if !progressOn {
			return nil
		}
		return func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d", id, done, total)
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		}
	}
	// clearProgress erases a partially drawn progress line so error
	// messages start on a clean line (a failed scenario never reaches
	// done == total).
	clearProgress := func() {
		if progressOn {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
	}

	// run executes the named registry scenario with the shared CLI
	// overrides plus any extra options, exiting on failure.
	run := func(name, label string, extra ...scenario.Option) *scenario.Result {
		opts := append([]scenario.Option{
			scenario.WithSeed(*seed),
			scenario.WithProcs(*procs),
			scenario.WithShards(*shards),
			scenario.WithProgress(reporter(label)),
		}, extra...)
		spec, err := scenario.Build(name, opts...)
		if err == nil {
			var res *scenario.Result
			res, err = scenario.Run(ctx, spec)
			if err == nil {
				return res
			}
		}
		clearProgress()
		fmt.Fprintf(os.Stderr, "paperbench: %s failed: %v\n", label, err)
		os.Exit(1)
		return nil
	}
	// timed prints one artifact's regeneration time on stderr: stdout
	// must stay byte-identical across runs and -procs values for the
	// determinism diff.
	timed := func(label string, start time.Time, notes ...string) {
		suffix := ""
		if len(notes) > 0 {
			suffix = ", " + strings.Join(notes, ", ")
		}
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v%s)\n", label, time.Since(start).Round(time.Millisecond), suffix)
	}

	if selected("fig1") {
		start := time.Now()
		res := run("fig1", "fig1", scenario.WithReps(reps))
		fmt.Println(res.Figure)
		timed("fig1", start)
		writeCSV("fig1.csv", func(f *os.File) error { return export.FigureCSV(f, res.Figure) })
	}
	if selected("fig1b") {
		start := time.Now()
		res := run("fig1b", "fig1b", scenario.WithReps(reps))
		fmt.Println(res.Figure)
		timed("fig1b", start)
		writeCSV("fig1b.csv", func(f *os.File) error { return export.FigureCSV(f, res.Figure) })
	}
	// Fig. 2 and Tables 1–2 are projections of the same (algorithm,
	// mesh) study grid — the scenario computes the grid once and its
	// result carries all three artifacts, so any combination of
	// selections costs one run.
	if selected("fig2") || selected("tables") {
		label := "fig2+tables"
		switch {
		case !selected("tables"):
			label = "fig2"
		case !selected("fig2"):
			label = "tables"
		}
		start := time.Now()
		res := run("fig2", label, scenario.WithReps(reps))
		elapsed := time.Since(start)
		if selected("fig2") {
			fmt.Println(res.Figure)
		}
		if selected("tables") {
			fmt.Println(res.Table1.Format())
			fmt.Println(res.Table2.Format())
		}
		if label == "fig2+tables" {
			fmt.Fprintf(os.Stderr, "(fig2+tables regenerated in %v, shared study grid)\n", elapsed.Round(time.Millisecond))
		} else {
			timed(label, start)
		}
		if selected("fig2") {
			writeCSV("fig2.csv", func(f *os.File) error { return export.FigureCSV(f, res.Figure) })
		}
		if selected("tables") {
			writeCSV("table1.csv", func(f *os.File) error { return export.TableCSV(f, res.Table1) })
			writeCSV("table2.csv", func(f *os.File) error { return export.TableCSV(f, res.Table2) })
		}
	}
	for _, name := range []string{"fig3", "fig4"} {
		if !selected(name) {
			continue
		}
		start := time.Now()
		res := run(name, name, scenario.WithBatches(batches, batchSize, 1))
		fmt.Println(res.Figure)
		timed(name, start)
		writeCSV(name+".csv", func(f *os.File) error { return export.FigureCSV(f, res.Figure) })
	}
	// The torus experiment family (beyond the paper): the Fig. 2 study
	// on wraparound networks with the full algorithm set over dateline
	// virtual channels.
	if selected("fig2-torus") {
		start := time.Now()
		res := run("fig2-torus", "fig2-torus", scenario.WithReps(reps))
		fmt.Println(res.Figure)
		timed("fig2-torus", start)
		writeCSV("fig2-torus.csv", func(f *os.File) error { return export.FigureCSV(f, res.Figure) })
	}
	// The fault-injection family (beyond the paper): delivery coverage
	// as links fail, for all four algorithms on mesh and torus, and
	// the adaptive-substrate comparison under the same fault plans.
	if selected("faults") {
		for _, name := range []string{"fig2-faults", "faults-adaptive"} {
			start := time.Now()
			res := run(name, name, scenario.WithReps(reps))
			fmt.Println(res.Figure)
			timed(name, start)
			writeCSV(name+".csv", func(f *os.File) error { return export.FigureCSV(f, res.Figure) })
		}
	}
}

// stderrIsTerminal reports whether stderr is attached to a terminal
// (character device), the only place the \r progress line renders
// usefully.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
