// Command paperbench regenerates every table and figure of the
// paper's evaluation section and prints them in the paper's layout.
//
//	paperbench            # full runs (paper-sized replication counts)
//	paperbench -quick     # reduced replication for a fast smoke run
//	paperbench -only fig1 # one artifact: fig1, fig1b, fig2, tables, fig3, fig4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/export"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced replication counts for a fast run")
		only     = flag.String("only", "", "comma-separated subset: fig1, fig1b, fig2, tables, fig3, fig4")
		seed     = flag.Uint64("seed", 2005, "random seed")
		csvDir   = flag.String("csv", "", "also write each artifact as CSV into this directory")
		batchesF = flag.Int("batches", 0, "override batch count for the traffic figures")
		batchSzF = flag.Int("batchsize", 0, "override batch size for the traffic figures")
	)
	flag.Parse()

	writeCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err == nil {
			err = write(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: writing %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	reps := 40
	batches, batchSize := 21, 100
	if *quick {
		reps = 8
		batches, batchSize = 6, 40
	}
	if *batchesF > 0 {
		batches = *batchesF
	}
	if *batchSzF > 0 {
		batchSize = *batchSzF
	}

	run := func(id string, fn func() (*experiments.Figure, error)) {
		if !selected(id) {
			return
		}
		start := time.Now()
		fig, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(fig)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		writeCSV(id+".csv", func(f *os.File) error { return export.FigureCSV(f, fig) })
	}

	run("fig1", func() (*experiments.Figure, error) {
		return wormsim.Fig1(wormsim.Fig1Config{Reps: reps, Seed: *seed})
	})
	run("fig1b", func() (*experiments.Figure, error) {
		return wormsim.Fig1StartupLatency(wormsim.Fig1Config{Reps: reps, Seed: *seed})
	})
	run("fig2", func() (*experiments.Figure, error) {
		return wormsim.Fig2(wormsim.Fig2Config{Reps: reps, Seed: *seed})
	})
	if selected("tables") {
		start := time.Now()
		t1, t2, err := wormsim.Tables(wormsim.Fig2Config{Reps: reps, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: tables failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t1.Format())
		fmt.Println(t2.Format())
		fmt.Printf("(tables regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		writeCSV("table1.csv", func(f *os.File) error { return export.TableCSV(f, t1) })
		writeCSV("table2.csv", func(f *os.File) error { return export.TableCSV(f, t2) })
	}
	run("fig3", func() (*experiments.Figure, error) {
		return wormsim.Fig34(wormsim.Fig34Config{
			Dims: []int{8, 8, 8}, Batches: batches, BatchSize: batchSize, Warmup: 1, Seed: *seed,
		})
	})
	run("fig4", func() (*experiments.Figure, error) {
		return wormsim.Fig34(wormsim.Fig34Config{
			Dims: []int{16, 16, 8}, Batches: batches, BatchSize: batchSize, Warmup: 1, Seed: *seed,
		})
	})
}
