// Command sweep runs any registered scenario by name, writing tidy
// CSV to stdout or a file for downstream plotting.
//
//	sweep -what list                          # available scenarios
//	sweep -what fig1 > fig1.csv
//	sweep -what ablation-length -mesh 8x8x8 -o length.csv
//	sweep -what fig2-torus -seed 7
//	sweep -what fig2 -calendar heap           # legacy-calendar cross-check
//	sweep -what fig2-faults                   # coverage vs failed links
//	sweep -what fig2 -faults 8                # Fig. 2 with 8 dead links
//
// The -faults flag fails that many random undirected links (both
// directions) in every cell of a contended scenario before traffic
// starts; the fault-axis scenarios (fig2-faults, faults-adaptive,
// faults-transient) sweep the count instead and ignore the flag.
//
// The -store flag forces the substrate memory model (dense up-front
// arrays or the paged lazy store); empty keeps the scenario's default,
// which is dense below 2^16 nodes and lazy at or above. Output is
// byte-identical either way.
//
// The -calendar flag selects the simulation kernel's event calendar
// (ladder, the default, or the legacy binary heap). Output is
// byte-identical either way — the knob exists for cross-checking and
// for measuring kernel speed, see cmd/paperbench's bench flags.
//
// The -shards flag partitions EACH simulation across that many shard
// calendars of the conservative-parallel kernel — parallelism inside
// one simulation, on top of the across-simulation parallelism -procs
// controls. Output is byte-identical at every shard count; the
// worker pool automatically narrows so shards × workers stays at one
// thread per core.
//
// The -wavefront flag (default on) selects batched execution of
// same-instant events in the kernel; -wavefront=false pops one event
// at a time. Output is byte-identical either way — the knob exists
// for the differential CI gate and for measuring the batching win.
//
// The -cpuprofile and -memprofile flags write standard pprof
// profiles of the whole run, exactly as `go test` would:
//
//	sweep -what fig2 -shards 8 -cpuprofile cpu.out
//	go tool pprof -top cpu.out
//
// The scenario names come from the process-wide registry
// (internal/scenario); registering a new scenario makes it runnable
// here with no changes to this command.
//
// Replications run in parallel on -procs workers (default: all
// cores); output is bit-identical for any -procs value at a fixed
// -seed. Interrupting the run (Ctrl-C) stops dispatching new
// simulations and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro"
	"repro/internal/export"
	"repro/internal/prof"
	"repro/internal/scenario"
)

func main() {
	var (
		what      = flag.String("what", "fig1", "which scenario to run, or 'list' for all names")
		meshSpec  = flag.String("mesh", "", "topology override, e.g. 8x8x8 (collapses size sweeps to one shape)")
		reps      = flag.Int("reps", 0, "replication override (0 = scenario default)")
		seed      = flag.Uint64("seed", 2005, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
		procs     = flag.Int("procs", 0, "max parallel replications (0 = all cores); output is identical for any value")
		faults    = flag.Int("faults", 0, "fail this many random undirected links in every cell of a contended scenario (0 = scenario default)")
		store     = flag.String("store", "", "substrate memory model: auto, dense, or lazy (empty = scenario default)")
		calName   = flag.String("calendar", "ladder", "event calendar backing the simulation kernel: ladder or heap (byte-identical output, different speed)")
		shards    = flag.Int("shards", 0, "partition each simulation across this many shard calendars of the conservative-parallel kernel (0/1 = serial; output is byte-identical)")
		wavefront = flag.Bool("wavefront", true, "execute same-instant event batches as wavefronts (byte-identical output; false pops one event at a time)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	cal, err := wormsim.ParseCalendar(*calName)
	if err != nil {
		fatal(err)
	}
	wormsim.SetDefaultCalendar(cal)
	wormsim.SetDefaultWavefront(*wavefront)

	name := strings.ToLower(*what)
	if name == "list" {
		for _, line := range scenario.Summaries() {
			fmt.Println(line)
		}
		return
	}

	opts := []scenario.Option{
		scenario.WithReps(*reps),
		scenario.WithSeed(*seed),
		scenario.WithProcs(*procs),
		scenario.WithFaults(*faults),
		scenario.WithStore(*store),
		scenario.WithShards(*shards),
	}
	if *meshSpec != "" {
		dims, err := parseDims(*meshSpec)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, scenario.WithMesh(dims...))
	}
	spec, err := scenario.Build(name, opts...)
	if err != nil {
		fatal(fmt.Errorf("%w\nrun 'sweep -what list' for summaries", err))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if _, err := scenario.RunTo(ctx, spec, export.NewCSVSink(w)); err != nil {
		fatal(err)
	}
}

func parseDims(spec string) ([]int, error) {
	parts := strings.Split(strings.ToLower(spec), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad mesh spec %q", spec)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
