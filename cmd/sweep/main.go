// Command sweep runs parameter sweeps and ablations, writing tidy CSV
// to stdout or a file for downstream plotting.
//
//	sweep -what fig1 > fig1.csv
//	sweep -what ablation-length -mesh 8x8x8 -o length.csv
//
// Available sweeps: fig1, fig1b, fig2, fig3, fig4, table1, table2,
// ablation-length, ablation-hop, ablation-substrate, ablation-ports.
//
// Replications run in parallel on -procs workers (default: all
// cores); output is bit-identical for any -procs value at a fixed
// -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/export"
)

func main() {
	var (
		what     = flag.String("what", "fig1", "which sweep to run")
		meshSpec = flag.String("mesh", "", "mesh override for ablations, e.g. 8x8x8")
		reps     = flag.Int("reps", 0, "replication override (0 = experiment default)")
		seed     = flag.Uint64("seed", 2005, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
		procs    = flag.Int("procs", 0, "max parallel replications (0 = all cores); output is identical for any value")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	dims, err := parseDims(*meshSpec)
	if err != nil {
		fatal(err)
	}
	abl := experiments.AblationConfig{Dims: dims, Reps: *reps, Seed: *seed, Procs: *procs}

	var fig *experiments.Figure
	switch strings.ToLower(*what) {
	case "fig1":
		fig, err = experiments.Fig1(experiments.Fig1Config{Reps: *reps, Seed: *seed, Procs: *procs})
	case "fig1b":
		fig, err = experiments.Fig1StartupLatency(experiments.Fig1Config{Reps: *reps, Seed: *seed, Procs: *procs})
	case "fig2":
		fig, err = experiments.Fig2(experiments.Fig2Config{Reps: *reps, Seed: *seed, Procs: *procs})
	case "fig3":
		fig, err = experiments.Fig34(experiments.Fig34Config{Dims: []int{8, 8, 8}, Seed: *seed, Procs: *procs})
	case "fig4":
		fig, err = experiments.Fig34(experiments.Fig34Config{Dims: []int{16, 16, 8}, Seed: *seed, Procs: *procs})
	case "table1", "table2":
		t1, t2, terr := experiments.Tables(experiments.Fig2Config{Reps: *reps, Seed: *seed, Procs: *procs})
		if terr != nil {
			fatal(terr)
		}
		tbl := t1
		if strings.ToLower(*what) == "table2" {
			tbl = t2
		}
		if err := export.TableCSV(w, tbl); err != nil {
			fatal(err)
		}
		return
	case "ablation-length":
		fig, err = experiments.AblationMessageLength(abl)
	case "ablation-hop":
		fig, err = experiments.AblationHopDelay(abl)
	case "ablation-substrate":
		fig, err = experiments.AblationAdaptiveSubstrate(abl)
	case "ablation-ports":
		fig, err = experiments.AblationPortModel(abl)
	default:
		fatal(fmt.Errorf("unknown sweep %q", *what))
	}
	if err != nil {
		fatal(err)
	}
	if err := export.FigureCSV(w, fig); err != nil {
		fatal(err)
	}
}

func parseDims(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(strings.ToLower(spec), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad mesh spec %q", spec)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
