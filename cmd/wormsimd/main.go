// Command wormsimd is the simulation service daemon: a long-running
// HTTP server that answers scenario run requests from a deterministic
// result cache, deduplicates identical concurrent misses, and sheds
// load explicitly when its admission queue fills (429 + Retry-After).
//
//	wormsimd serve -addr :8080                # start the daemon
//	wormsimd serve -queue 128 -cache 256      # bigger admission + 256 MiB cache
//	wormsimd loadgen -addr http://host:8080 \
//	    -scenario fig1 -mesh 4x4x4 -requests 500 -o BENCH_pr8.json
//
// The serve mode drains gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests and every already-admitted simulation complete before the
// process exits. The loadgen mode is the measurement client behind
// BENCH_pr8.json: it drives a cold miss phase (distinct seeds) and a
// hot hit phase (one spec hammered concurrently) and writes latency
// percentiles and sustained request rate as JSON.
//
// Endpoints: POST /v1/run (RunRequest JSON), GET /v1/scenarios,
// GET /healthz, GET /metrics (Prometheus text). See internal/service.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "loadgen":
		loadgen(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  wormsimd serve   [-addr :8080] [-procs N] [-queue N] [-cache MiB] [-calendar ladder|heap]
  wormsimd loadgen [-addr URL] [-scenario NAME] [-mesh AxBxC] [-reps N] [-seed S]
                   [-format csv|json|text] [-concurrency N] [-requests N] [-misses N] [-o FILE]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wormsimd:", err)
	os.Exit(1)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		procs   = fs.Int("procs", 0, "simulation workers (0 = all cores)")
		queue   = fs.Int("queue", 64, "admission queue bound: misses beyond running+queued are shed with 429")
		cache   = fs.Int("cache", 64, "result cache budget in MiB of rendered bodies (LRU; oversized bodies bypass)")
		calName = fs.String("calendar", "ladder", "event calendar backing the kernel: ladder or heap (part of the cache key)")
	)
	fs.Parse(args)

	cal, err := wormsim.ParseCalendar(*calName)
	if err != nil {
		fatal(err)
	}
	wormsim.SetDefaultCalendar(cal)

	s := service.New(service.Config{Procs: *procs, QueueCap: *queue, CacheBytes: int64(*cache) << 20})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("wormsimd: shutdown signal, draining")
		// Stop accepting, let in-flight HTTP requests finish (each may
		// be waiting on a simulation), then drain the executor.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("wormsimd: shutdown: %v", err)
		}
	}()

	log.Printf("wormsimd: serving on %s (queue=%d cache=%d calendar=%s)", *addr, *queue, *cache, cal)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	s.Close() // drain admitted simulations
	c := s.Counts()
	log.Printf("wormsimd: drained; served %d requests (%d hits, %d dedup, %d misses, %d shed)",
		c.Requests, c.Hits, c.Deduped, c.Misses, c.Rejected)
}

// phaseReport is one loadgen phase's measurement in BENCH_pr8.json.
type phaseReport struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Errors      int     `json:"errors"`
	Rejected    int     `json:"rejected_429"`
	Seconds     float64 `json:"wall_seconds"`
	RPS         float64 `json:"requests_per_sec"`
	Latency     struct {
		P50 float64 `json:"p50_seconds"`
		P90 float64 `json:"p90_seconds"`
		P99 float64 `json:"p99_seconds"`
		Max float64 `json:"max_seconds"`
	} `json:"latency"`
}

func loadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		scenarioN   = fs.String("scenario", "fig1", "registry scenario to request")
		meshSpec    = fs.String("mesh", "4x4x4", "topology override sent with every request")
		reps        = fs.Int("reps", 2, "replication override")
		seed        = fs.Uint64("seed", 2005, "seed of the hit-phase request; miss phase uses seed+1..seed+misses")
		format      = fs.String("format", "csv", "response format: csv, json or text")
		concurrency = fs.Int("concurrency", 8, "concurrent client connections")
		requests    = fs.Int("requests", 500, "hit-phase request count (one spec, hammered)")
		misses      = fs.Int("misses", 16, "miss-phase request count (distinct seeds)")
		out         = fs.String("o", "", "write the JSON report here (default stdout)")
	)
	fs.Parse(args)

	mesh, err := parseDims(*meshSpec)
	if err != nil {
		fatal(err)
	}
	reqFor := func(seed uint64) []byte {
		b, err := json.Marshal(&service.RunRequest{
			Scenario: *scenarioN, Mesh: mesh, Reps: *reps, Seed: &seed, Format: *format,
		})
		if err != nil {
			fatal(err)
		}
		return b
	}

	// Miss phase: every request a distinct seed, so each one pays for
	// a real simulation (modulo shed-and-retry under backpressure).
	missBodies := make([][]byte, *misses)
	for i := range missBodies {
		missBodies[i] = reqFor(*seed + 1 + uint64(i))
	}
	missReport := drive(*addr, missBodies, *concurrency)

	// Hit phase: warm the cache once, then hammer the identical
	// request — every timed request is a cache hit.
	warm := reqFor(*seed)
	if _, _, err := post(*addr, warm); err != nil {
		fatal(fmt.Errorf("hit-phase warmup: %w", err))
	}
	hitBodies := make([][]byte, *requests)
	for i := range hitBodies {
		hitBodies[i] = warm
	}
	hitReport := drive(*addr, hitBodies, *concurrency)

	report := map[string]any{
		"schema":     "wormsim-service-bench/v1",
		"recorded":   time.Now().UTC().Format(time.RFC3339),
		"go_version": runtime.Version(),
		"request": map[string]any{
			"scenario": *scenarioN, "mesh": mesh, "reps": *reps,
			"seed": *seed, "format": *format,
		},
		"phases": map[string]any{
			"service": map[string]any{
				"hit":  hitReport,
				"miss": missReport,
			},
		},
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	if hitReport.Latency.P50 >= 0.001 {
		fatal(fmt.Errorf("cache-hit p50 = %.6fs, want < 1ms", hitReport.Latency.P50))
	}
}

// client keeps one warm connection per loadgen worker — the default
// transport idles only 2 per host, and reconnect latency would swamp
// the microsecond hit path being measured.
var client = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 256,
}}

// post issues one run request and returns the HTTP status plus
// whether it was shed (429).
func post(addr string, body []byte) (status int, shed bool, err error) {
	resp, err := client.Post(addr+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests {
		return resp.StatusCode, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, false, fmt.Errorf("HTTP %s", resp.Status)
	}
	return resp.StatusCode, false, nil
}

// drive issues every body over `concurrency` workers, measuring
// per-request wall latency. 429 rejections back off briefly and retry
// the same request — the report counts them separately.
func drive(addr string, bodies [][]byte, concurrency int) phaseReport {
	if concurrency < 1 {
		concurrency = 1
	}
	var (
		mu        sync.Mutex
		latencies []float64
		errs      int
		rejected  int
	)
	next := make(chan []byte)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range next {
				for {
					t0 := time.Now()
					_, shed, err := post(addr, body)
					lat := time.Since(t0).Seconds()
					mu.Lock()
					switch {
					case err != nil:
						errs++
					case shed:
						rejected++
					default:
						latencies = append(latencies, lat)
					}
					mu.Unlock()
					if !shed {
						break
					}
					time.Sleep(50 * time.Millisecond)
				}
			}
		}()
	}
	for _, b := range bodies {
		next <- b
	}
	close(next)
	wg.Wait()
	wall := time.Since(start).Seconds()

	r := phaseReport{
		Requests:    len(bodies),
		Concurrency: concurrency,
		Errors:      errs,
		Rejected:    rejected,
		Seconds:     wall,
	}
	if wall > 0 {
		r.RPS = float64(len(latencies)) / wall
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		q := func(p float64) float64 {
			i := int(p * float64(n))
			if i >= n {
				i = n - 1
			}
			return latencies[i]
		}
		r.Latency.P50, r.Latency.P90, r.Latency.P99 = q(0.50), q(0.90), q(0.99)
		r.Latency.Max = latencies[n-1]
	}
	return r
}

func parseDims(spec string) ([]int, error) {
	parts := strings.Split(strings.ToLower(spec), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad mesh spec %q", spec)
		}
		dims = append(dims, v)
	}
	return dims, nil
}
