package wormsim_test

import (
	"fmt"

	"repro"
)

// ExampleRunBroadcast runs one AB broadcast on an idle 4×4×4 mesh and
// prints the schedule properties the paper reasons about.
func ExampleRunBroadcast() {
	mesh := wormsim.NewMesh(4, 4, 4)
	r, err := wormsim.RunBroadcast(mesh, wormsim.NewAB(), mesh.ID(0, 0, 0), wormsim.DefaultConfig(), 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("steps: %d\n", r.Plan.Steps)
	fmt.Printf("all 64 nodes informed: %v\n", r.Done)
	// Output:
	// steps: 3
	// all 64 nodes informed: true
}

// ExampleAlgorithm_Plan shows the published step counts on the
// paper's 8×8×8 mesh.
func ExampleAlgorithm_Plan() {
	mesh := wormsim.NewMesh(8, 8, 8)
	for _, algo := range wormsim.Algorithms() {
		plan, err := algo.Plan(mesh, 0)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-4s %d steps, %d messages\n", algo.Name(), plan.Steps, plan.MessageCount())
	}
	// Output:
	// RD   9 steps, 511 messages
	// EDN  6 steps, 511 messages
	// DB   4 steps, 131 messages
	// AB   3 steps, 19 messages
}

// ExampleNewWestFirst shows the turn-model discipline: a destination
// to the west forces the west hop first.
func ExampleNewWestFirst() {
	mesh := wormsim.NewMesh(4, 4)
	wf := wormsim.NewWestFirst(mesh)
	hops := wf.NextHops(mesh.ID(2, 0), mesh.ID(1, 3))
	fmt.Printf("candidates while west remains: %d\n", len(hops))
	hops = wf.NextHops(mesh.ID(1, 0), mesh.ID(3, 3))
	fmt.Printf("candidates going east+north:   %d\n", len(hops))
	// Output:
	// candidates while west remains: 1
	// candidates going east+north:   2
}
