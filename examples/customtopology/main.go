// Customtopology: the paper's §4 closes by suggesting broadcast
// support for other interconnects, "such as the k-ary n-cube and
// generalised hypercube". This example exercises both:
//
//   - RD and EDN run unchanged on a torus (their schedules only need
//     mesh coordinates), so the mesh-vs-torus comparison is two
//     declarative scenario runs — WithTopology("torus") is the whole
//     migration. Wormhole switching is distance-insensitive, so the
//     torus's shorter routes barely move the latency — the point the
//     paper makes about CPR.
//   - The generalised hypercube has no registered planner yet, so it
//     drives the low-level network API with a dimension-ordered
//     spanning broadcast: every row along every dimension is a
//     clique, so one multidestination worm covers a whole row per
//     step. This is the layer new scenarios build on.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

const lengthFlits = 64

func main() {
	cfg := wormsim.DefaultConfig()

	fmt.Println("Broadcast latency, mesh vs torus (L=64 flits, 6 random sources):")
	for _, kind := range []string{"mesh", "torus"} {
		res, err := wormsim.RunScenario(context.Background(), "fig1",
			wormsim.WithTopology(kind),
			wormsim.WithMesh(8, 8, 8),
			wormsim.WithAlgorithms("RD", "EDN"), // the planners that accept a torus
			wormsim.WithLength(lengthFlits),
			wormsim.WithReps(6), wormsim.WithSeed(11))
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		for _, s := range res.Figure.Series {
			fmt.Printf("  %-5s %-12s latency %7.3f µs\n", s.Label, kind+" 8x8x8", s.Points[0].Y)
		}
	}

	latency, cv, steps := hypercubeBroadcast(cfg)
	fmt.Printf("\nGeneralised hypercube GH(4,4,4): 64 nodes covered in %d steps,\n", steps)
	fmt.Printf("  latency %.3f µs, arrival CV %.4f\n", latency, cv)
	fmt.Println("\nEach GH row is a clique, so one multidestination worm per row")
	fmt.Println("covers a whole dimension in a single message-passing step —")
	fmt.Println("three steps for GH(4,4,4), the density the paper's future work")
	fmt.Println("points at.")
}

// hypercubeBroadcast runs a dimension-ordered spanning broadcast on
// GH(4,4,4): in stage d, every node already holding the message sends
// one worm that visits the rest of its dimension-d row.
func hypercubeBroadcast(cfg wormsim.Config) (latency wormsim.Time, cv float64, steps int) {
	g := wormsim.NewGeneralizedHypercube(4, 4, 4)
	s := wormsim.NewSimulator()
	net, err := wormsim.NewNetwork(s, g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	src := g.ID(1, 2, 3)
	arrival := map[wormsim.NodeID]wormsim.Time{src: 0}

	rowOf := func(n wormsim.NodeID, d int) []wormsim.NodeID {
		coord := g.Coord(n)
		row := make([]wormsim.NodeID, 0, g.Dim(d)-1)
		for v := 0; v < g.Dim(d); v++ {
			if v == coord[d] {
				continue
			}
			c := append([]int(nil), coord...)
			c[d] = v
			row = append(row, g.ID(c...))
		}
		return row
	}

	holders := []wormsim.NodeID{src}
	for d := 0; d < g.NDims(); d++ {
		for _, h := range holders {
			// Stages are drained with s.Run(), so the clock may sit
			// past a holder's arrival time; inject at the later of
			// the two.
			at := arrival[h]
			if now := s.Now(); now > at {
				at = now
			}
			err := net.Send(at, &wormsim.Transfer{
				Source:    h,
				Waypoints: rowOf(h, d),
				Length:    lengthFlits,
				Selector:  ghRowSelector{g},
				OnDeliver: func(node wormsim.NodeID, at wormsim.Time) {
					if old, ok := arrival[node]; !ok || at < old {
						arrival[node] = at
					}
				},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		s.Run() // drain this stage
		next := make([]wormsim.NodeID, 0, len(holders)*g.Dim(d))
		for _, h := range holders {
			next = append(next, h)
			next = append(next, rowOf(h, d)...)
		}
		holders = next
	}

	var acc wormsim.Accumulator
	for node := 0; node < g.Nodes(); node++ {
		at, ok := arrival[wormsim.NodeID(node)]
		if !ok {
			log.Fatalf("node %d never received the broadcast", node)
		}
		if at > latency {
			latency = at
		}
		if wormsim.NodeID(node) != src {
			acc.Add(at)
		}
	}
	return latency, acc.CV(), g.NDims()
}

// ghRowSelector routes within a generalised hypercube row: every pair
// of row members is adjacent, so the next hop is the target itself.
type ghRowSelector struct {
	g *wormsim.GeneralizedHypercube
}

func (r ghRowSelector) Name() string { return "gh-row" }

func (r ghRowSelector) NextHops(cur, dst wormsim.NodeID) []wormsim.NodeID {
	if cur == dst {
		return nil
	}
	return []wormsim.NodeID{dst}
}
