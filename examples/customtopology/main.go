// Customtopology: the paper's §4 closes by suggesting broadcast
// support for other interconnects, "such as the k-ary n-cube and
// generalised hypercube". This example exercises both through the
// public API:
//
//   - Recursive Doubling runs unchanged on a torus (its line-halving
//     schedule only needs mesh coordinates); wormhole switching is
//     distance-insensitive, so the torus's shorter routes barely move
//     the latency — the point the paper makes about CPR.
//   - On a generalised hypercube we drive the network layer with a
//     dimension-ordered spanning broadcast: every row along every
//     dimension is a clique, so one multidestination worm covers a
//     whole row per step.
package main

import (
	"fmt"
	"log"

	"repro"
)

const lengthFlits = 64

func main() {
	cfg := wormsim.DefaultConfig()

	fmt.Println("Recursive Doubling on mesh vs torus (L=64 flits, corner source):")
	for _, mesh := range []*wormsim.Mesh{
		wormsim.NewMesh(8, 8, 8),
		wormsim.NewTorus(8, 8, 8),
	} {
		r, err := wormsim.RunBroadcast(mesh, wormsim.NewRD(), 0, cfg, lengthFlits)
		if err != nil {
			log.Fatalf("RD on %s: %v", mesh.Name(), err)
		}
		fmt.Printf("  %-12s latency %7.3f µs over %d steps\n",
			mesh.Name(), r.Latency(), r.Plan.Steps)
	}

	latency, cv, steps := hypercubeBroadcast(cfg)
	fmt.Printf("\nGeneralised hypercube GH(4,4,4): 64 nodes covered in %d steps,\n", steps)
	fmt.Printf("  latency %.3f µs, arrival CV %.4f\n", latency, cv)
	fmt.Println("\nEach GH row is a clique, so one multidestination worm per row")
	fmt.Println("covers a whole dimension in a single message-passing step —")
	fmt.Println("three steps for GH(4,4,4), the density the paper's future work")
	fmt.Println("points at.")
}

// hypercubeBroadcast runs a dimension-ordered spanning broadcast on
// GH(4,4,4): in stage d, every node already holding the message sends
// one worm that visits the rest of its dimension-d row.
func hypercubeBroadcast(cfg wormsim.Config) (latency wormsim.Time, cv float64, steps int) {
	g := wormsim.NewGeneralizedHypercube(4, 4, 4)
	s := wormsim.NewSimulator()
	net, err := wormsim.NewNetwork(s, g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	src := g.ID(1, 2, 3)
	arrival := map[wormsim.NodeID]wormsim.Time{src: 0}

	rowOf := func(n wormsim.NodeID, d int) []wormsim.NodeID {
		coord := g.Coord(n)
		row := make([]wormsim.NodeID, 0, g.Dim(d)-1)
		for v := 0; v < g.Dim(d); v++ {
			if v == coord[d] {
				continue
			}
			c := append([]int(nil), coord...)
			c[d] = v
			row = append(row, g.ID(c...))
		}
		return row
	}

	holders := []wormsim.NodeID{src}
	for d := 0; d < g.NDims(); d++ {
		for _, h := range holders {
			// Stages are drained with s.Run(), so the clock may sit
			// past a holder's arrival time; inject at the later of
			// the two.
			at := arrival[h]
			if now := s.Now(); now > at {
				at = now
			}
			err := net.Send(at, &wormsim.Transfer{
				Source:    h,
				Waypoints: rowOf(h, d),
				Length:    lengthFlits,
				Selector:  ghRowSelector{g},
				OnDeliver: func(node wormsim.NodeID, at wormsim.Time) {
					if old, ok := arrival[node]; !ok || at < old {
						arrival[node] = at
					}
				},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		s.Run() // drain this stage
		next := make([]wormsim.NodeID, 0, len(holders)*g.Dim(d))
		for _, h := range holders {
			next = append(next, h)
			next = append(next, rowOf(h, d)...)
		}
		holders = next
	}

	var acc wormsim.Accumulator
	for node := 0; node < g.Nodes(); node++ {
		at, ok := arrival[wormsim.NodeID(node)]
		if !ok {
			log.Fatalf("node %d never received the broadcast", node)
		}
		if at > latency {
			latency = at
		}
		if wormsim.NodeID(node) != src {
			acc.Add(at)
		}
	}
	return latency, acc.CV(), g.NDims()
}

// ghRowSelector routes within a generalised hypercube row: every pair
// of row members is adjacent, so the next hop is the target itself.
type ghRowSelector struct {
	g *wormsim.GeneralizedHypercube
}

func (r ghRowSelector) Name() string { return "gh-row" }

func (r ghRowSelector) NextHops(cur, dst wormsim.NodeID) []wormsim.NodeID {
	if cur == dst {
		return nil
	}
	return []wormsim.NodeID{dst}
}
