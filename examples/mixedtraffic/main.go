// Mixedtraffic: the paper's §3.3 scenario through the public API —
// every node generates messages at exponential intervals, 90% unicast
// to uniform random destinations and 10% broadcast, and we sweep the
// offered load to find where each broadcast algorithm saturates the
// 8x8x8 mesh. AB is coupled with west-first adaptive routing, as in
// the paper; the others run over dimension-order routing.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	mesh := wormsim.NewMesh(8, 8, 8)
	loads := []float64{0.5, 1, 2, 4, 8, 16} // msg/ms per node
	const lengthFlits = 32

	fmt.Printf("Mean latency (µs) under 90/10 unicast/broadcast traffic on %s, L=%d flits\n\n",
		mesh.Name(), lengthFlits)
	fmt.Printf("%-16s", "load (msg/ms)")
	for _, algo := range wormsim.Algorithms() {
		fmt.Printf("%10s", algo.Name())
	}
	fmt.Println()

	for _, load := range loads {
		fmt.Printf("%-16g", load)
		for _, algo := range wormsim.Algorithms() {
			cfg := wormsim.MixedConfig{
				Rate:              load / 1000, // msg/ms -> msg/µs
				BroadcastFraction: 0.10,
				Length:            lengthFlits,
				Algorithm:         algo,
				Seed:              42,
				BatchSize:         50,
				Batches:           8,
				Warmup:            1,
			}
			if algo.Name() == "AB" {
				wf := wormsim.NewWestFirst(mesh)
				cfg.Unicast, cfg.Adaptive = wf, wf
			}
			res, err := wormsim.RunMixed(mesh, cfg)
			if err != nil {
				log.Fatalf("%s at %g msg/ms: %v", algo.Name(), load, err)
			}
			marker := ""
			if res.Saturated {
				marker = "*"
			}
			fmt.Printf("%9.2f%s", res.MeanLatency, marker)
			if marker == "" {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(* = offered load beyond the network's saturation point)")
	fmt.Println("RD floods the network with N-1 worms per broadcast and saturates")
	fmt.Println("first; the coded-path algorithms inject far fewer messages and AB's")
	fmt.Println("adaptive routing spreads them, keeping latency low the longest.")
}
