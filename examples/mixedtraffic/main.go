// Mixedtraffic: the paper's §3.3 scenario through the scenario API —
// every node generates messages at exponential intervals, 90% unicast
// to uniform random destinations and 10% broadcast, and we sweep the
// offered load to find where each broadcast algorithm saturates the
// 8x8x8 mesh. AB is coupled with west-first adaptive routing, as in
// the paper; the others run over dimension-order routing.
//
// Migration note: this example used to call wormsim.RunMixed once per
// (algorithm, load) cell. The registered "fig3" scenario is the same
// study; the options below swap the paper's scaled axis for literal
// per-node rates (WithLoadScale(1)) and shrink the batch-means window
// so the example stays fast.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	res, err := wormsim.RunScenario(context.Background(), "fig3",
		wormsim.WithLoadScale(1),               // literal msg/ms per node
		wormsim.WithLoads(0.5, 1, 2, 4, 8, 16), // msg/ms per node
		wormsim.WithBatches(8, 50, 1),          // 8 batches of 50, first discarded
		wormsim.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Figure.Format())

	fmt.Println("\nRD floods the network with N-1 worms per broadcast and saturates")
	fmt.Println("first (its mean latency diverges at the cut-off); the coded-path")
	fmt.Println("algorithms inject far fewer messages and AB's adaptive routing")
	fmt.Println("spreads them, keeping latency low the longest.")
}
