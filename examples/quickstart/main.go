// Quickstart: broadcast one message on an 8x8x8 wormhole mesh with
// each of the paper's four algorithms and print what the paper's
// Fig. 1 measures — network-level broadcast latency — plus the
// node-level arrival statistics behind its Fig. 2. Then the same
// study as a one-liner through the scenario registry.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	mesh := wormsim.NewMesh(8, 8, 8)
	cfg := wormsim.DefaultConfig() // Ts=1.5 µs, β=0.003 µs/flit (Cray T3D-like)
	source := mesh.ID(3, 4, 2)
	const lengthFlits = 100

	fmt.Printf("Broadcast of a %d-flit message from node %v on %s\n\n",
		lengthFlits, mesh.Coord(source), mesh.Name())
	fmt.Printf("%-5s %6s %9s %12s %11s\n", "algo", "steps", "messages", "latency(µs)", "arrival CV")

	for _, algo := range wormsim.Algorithms() {
		r, err := wormsim.RunBroadcast(mesh, algo, source, cfg, lengthFlits)
		if err != nil {
			log.Fatalf("%s: %v", algo.Name(), err)
		}
		var arrivals wormsim.Accumulator
		arrivals.AddAll(r.DestinationLatencies())
		fmt.Printf("%-5s %6d %9d %12.3f %11.4f\n",
			algo.Name(), r.Plan.Steps, r.Plan.MessageCount(), r.Latency(), arrivals.CV())
	}

	fmt.Println("\nThe coded-path algorithms (DB, AB) finish in a constant number of")
	fmt.Println("message-passing steps, so their latency stays flat as the mesh grows,")
	fmt.Println("while RD pays ceil(log2 N) startups and EDN k+m+4.")

	// The same comparison, replicated over random sources with 95%
	// confidence intervals, is one registered scenario away — every
	// figure, table and ablation of the paper is runnable like this
	// (`wormsim.Scenarios()` lists them).
	fmt.Println("\nAs a scenario (fig1 restricted to this mesh, 8 random sources):")
	res, err := wormsim.RunScenario(context.Background(), "fig1",
		wormsim.WithMesh(8, 8, 8), wormsim.WithReps(8), wormsim.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Figure.Format())
}
