// Scalability: the paper's headline experiment (Fig. 1) driven
// through the scenario API — single-source broadcast latency of RD,
// EDN, DB and AB as the 3D mesh grows from 64 to 4096 nodes, averaged
// over randomly chosen sources, at both of the paper's startup
// latencies (§3.1).
//
// Migration note: this example used to loop over meshes and call
// wormsim.SingleSourceStudy per (algorithm, size) cell. The registry
// expresses the whole sweep as one named scenario, fans every
// replication out over all cores, and renders the paper's layout.
package main

import (
	"context"
	"log"
	"os"

	"repro"
)

func main() {
	sink := wormsim.NewTextSink(os.Stdout)
	for _, name := range []string{"fig1", "fig1b"} {
		// WithReps(10) trades the paper's 40 replications for speed;
		// drop the option to reproduce the full artifact.
		if _, err := wormsim.RunScenarioTo(context.Background(), name,
			[]wormsim.ScenarioSink{sink},
			wormsim.WithReps(10), wormsim.WithSeed(7)); err != nil {
			log.Fatal(err)
		}
	}

	os.Stdout.WriteString(
		"Lowering Ts (Fig.1b) compresses every curve, but RD and EDN keep\n" +
			"their step-count slope while DB and AB remain size-independent —\n" +
			"the paper's §3.1 observation.\n")
}
