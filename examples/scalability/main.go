// Scalability: the paper's headline experiment (Fig. 1) driven
// through the public API — single-source broadcast latency of RD,
// EDN, DB and AB as the 3D mesh grows from 64 to 4096 nodes, averaged
// over randomly chosen sources, at both of the paper's startup
// latencies (§3.1).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sizes := [][]int{{4, 4, 4}, {8, 8, 8}, {10, 10, 10}, {16, 16, 16}}
	const (
		lengthFlits = 100
		reps        = 10
		seed        = 7
	)

	for _, ts := range []float64{1.5, 0.15} {
		cfg := wormsim.DefaultConfig()
		cfg.Ts = ts
		fmt.Printf("Broadcast latency vs network size (L=%d flits, Ts=%g µs, %d random sources)\n",
			lengthFlits, ts, reps)
		fmt.Printf("%-14s", "nodes")
		for _, algo := range wormsim.Algorithms() {
			fmt.Printf("%10s", algo.Name())
		}
		fmt.Println()

		for _, dims := range sizes {
			mesh := wormsim.NewMesh(dims...)
			fmt.Printf("%-14d", mesh.Nodes())
			for _, algo := range wormsim.Algorithms() {
				st, err := wormsim.SingleSourceStudy(mesh, algo, cfg, lengthFlits, reps, seed)
				if err != nil {
					log.Fatalf("%s on %s: %v", algo.Name(), mesh.Name(), err)
				}
				fmt.Printf("%10.3f", st.Latency.Mean())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("Lowering Ts compresses every curve, but RD and EDN keep their")
	fmt.Println("step-count slope while DB and AB remain size-independent — the")
	fmt.Println("paper's §3.1 observation.")
}
