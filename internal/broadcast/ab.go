package broadcast

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/topology"
)

// AB is the Adaptive Broadcast of Al-Dubai, Ould-Khaoua & Mackenzie
// [27]: a plane-based coded-path broadcast over west-first turn-model
// adaptive routing that completes in three message-passing steps.
//
//	step 1  the source routes one worm to the nearest corner of its
//	        own XY plane and on to the opposite corner (control field
//	        10); when the concatenated journey would violate the turn
//	        model, the two corners are reached by two worms instead.
//	step 2  each informed corner relays along its Z column to the
//	        corresponding corners of every other plane (control 11).
//	step 3  in every plane, the two informed corners each flood their
//	        half of the plane with one coded-path worm.
//
// AB deliberately bounds the destinations per path (each worm covers
// at most half a plane), trading slightly longer third-step paths for
// the three-step schedule.
type AB struct{}

// NewAB returns the Adaptive Broadcast planner.
func NewAB() AB { return AB{} }

// Name implements Algorithm.
func (AB) Name() string { return "AB" }

// Ports implements Algorithm: AB runs on a one-port CPR router.
func (AB) Ports() int { return 1 }

// StepsFor returns AB's step count: three, independent of size.
func (AB) StepsFor(m *topology.Mesh) int { return 3 }

// Plan implements Algorithm. On a torus the plane recursion runs in
// the source's unwrap frame (see planThroughFrame); mesh plans are
// unchanged.
func (ab AB) Plan(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	if m.NDims() != 2 && m.NDims() != 3 {
		return nil, fmt.Errorf("broadcast: AB requires a 2D or 3D mesh, got %s", m.Name())
	}
	return planThroughFrame(m, src, ab.planMesh)
}

// planMesh is the unwrapped-mesh construction.
func (ab AB) planMesh(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	p := &Plan{Algorithm: ab.Name(), Source: src, Steps: ab.StepsFor(m)}

	n0, n1 := m.NearestCornerInPlane(src, 0, 1)

	// Step 1: source to the plane's near and opposite corners.
	wf := routing.NewWestFirst(m)
	switch {
	case n0 == n1:
		// Degenerate 1xN or Nx1 plane: a single corner.
		if src != n0 {
			p.Sends = append(p.Sends, Send{Step: 1, Adaptive: true, Path: core.ChainPath(src, n0)})
		}
	case src == n0:
		p.Sends = append(p.Sends, Send{Step: 1, Adaptive: true, Path: core.ChainPath(src, n1)})
	case src == n1:
		p.Sends = append(p.Sends, Send{Step: 1, Adaptive: true, Path: core.ChainPath(src, n0)})
	case wf.SegmentLegal(src, n0, n1):
		path := core.ChainPath(src, n0, n1)
		path.Relays = map[int]bool{0: true}
		p.Sends = append(p.Sends, Send{Step: 1, Adaptive: true, Path: path})
	default:
		p.Sends = append(p.Sends,
			Send{Step: 1, Adaptive: true, Path: core.ChainPath(src, n0)},
			Send{Step: 1, Adaptive: true, Path: core.ChainPath(src, n1)},
		)
	}

	// Step 2 (3D only): corners relay along Z to every other plane.
	if m.NDims() == 3 && m.Dim(2) > 1 {
		sz := m.CoordAxis(src, 2)
		corners := []topology.NodeID{n0}
		if n1 != n0 {
			corners = append(corners, n1)
		}
		for _, corner := range corners {
			if sz < m.Dim(2)-1 {
				p.Sends = append(p.Sends, Send{Step: 2, Adaptive: true,
					Path: core.LinePath(m, corner, 2, m.Dim(2)-1)})
			}
			if sz > 0 {
				p.Sends = append(p.Sends, Send{Step: 2, Adaptive: true,
					Path: core.LinePath(m, corner, 2, 0)})
			}
		}
	}

	// Step 3: in every plane, each corner floods its half.
	planes := 1
	if m.NDims() == 3 {
		planes = m.Dim(2)
	}
	for z := 0; z < planes; z++ {
		cz0 := ab.inPlane(m, n0, z)
		cz1 := ab.inPlane(m, n1, z)
		ab.halfFlood(p, m, cz0)
		if cz1 != cz0 {
			ab.halfFlood(p, m, cz1)
		}
	}
	return p, nil
}

// inPlane returns the node with corner's XY coordinates in plane z.
func (AB) inPlane(m *topology.Mesh, corner topology.NodeID, z int) topology.NodeID {
	if m.NDims() == 2 {
		return corner
	}
	return m.ID(m.CoordAxis(corner, 0), m.CoordAxis(corner, 1), z)
}

// halfFlood plans the step-3 worm from a plane corner over its half
// of the plane (split along dimension 0, the corner's own side; the
// low side takes the ceil share). The paths are built to conform to
// the west-first turn model so concurrent broadcasts and west-first
// unicast traffic cannot form cyclic channel waits:
//
//   - the west-side corner snakes with ±y sweeps and +x slow steps
//     (no west move at all);
//   - the east-side corner first runs a pure-west leg along its own
//     row to the half's west edge, then snakes back east the same way
//     (all west hops precede every other hop).
func (AB) halfFlood(p *Plan, m *topology.Mesh, corner topology.NodeID) {
	X, Y := m.Dim(0), m.Dim(1)
	split := (X + 1) / 2 // low half is [0, split), high half [split, X)
	cx := m.CoordAxis(corner, 0)
	lo, hi := 0, split-1
	if cx >= split {
		lo, hi = split, X-1
	}
	if lo > hi {
		return
	}
	if lo == hi && Y == 1 {
		return // the half contains only the corner itself
	}

	var path *core.CodedPath
	switch {
	case Y == 1:
		stop := lo
		if cx == lo {
			stop = hi
		}
		path = core.LinePath(m, corner, 0, stop)
	case cx == lo:
		// West-side corner: ±y sweeps, +x steps — west-first legal.
		path = core.SnakePath(m, corner, 1, 0, 0, Y-1, lo, hi)
	default:
		// East-side corner: west leg to the half's west edge, then a
		// snake of ±y sweeps and +x steps, skipping the corner node.
		path = &core.CodedPath{Source: corner}
		coord := m.Coord(corner)
		for x := cx - 1; x >= lo; x-- {
			coord[0] = x
			path.Waypoints = append(path.Waypoints, m.ID(coord...))
		}
		coord[0] = lo
		edge := m.ID(coord...)
		snake := core.SnakePath(m, edge, 1, 0, 0, Y-1, lo, hi)
		for _, w := range snake.Waypoints {
			if w == corner {
				continue // the worm's own source needs no delivery
			}
			path.Waypoints = append(path.Waypoints, w)
		}
	}
	if path == nil || len(path.Waypoints) == 0 {
		return
	}
	p.Sends = append(p.Sends, Send{Step: 3, Adaptive: true, Path: path})
}
