package broadcast

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/topology"
)

// StepStats summarises the arrivals attributable to one
// message-passing step of an executed broadcast: how many nodes first
// received the message from a step-s worm and when.
type StepStats struct {
	Step     int
	Arrivals stats.Accumulator
}

// StepBreakdown attributes each node's first arrival to the plan step
// whose coded path covers it earliest, and aggregates arrival times
// (relative to the broadcast start) per step. It is the quantitative
// form of the paper's core argument: RD spreads arrivals over
// ceil(log2 N) steps while DB and AB concentrate them in their last
// one or two.
func StepBreakdown(m *topology.Mesh, r *Result) []StepStats {
	if r.Streaming() {
		// Per-node arrival times no longer exist; attribution is
		// impossible by design, not by accident.
		panic("broadcast: StepBreakdown needs a retained result (run below StreamThreshold or without Options.Stream)")
	}
	// earliest step covering each node.
	stepOf := make(map[topology.NodeID]int)
	for _, s := range r.Plan.Sends {
		for _, w := range s.Path.Waypoints {
			if cur, ok := stepOf[w]; !ok || s.Step < cur {
				stepOf[w] = s.Step
			}
		}
	}
	agg := make(map[int]*StepStats)
	for id, at := range r.Arrival {
		node := topology.NodeID(id)
		if node == r.Plan.Source || at < 0 {
			continue
		}
		step := stepOf[node]
		st, ok := agg[step]
		if !ok {
			st = &StepStats{Step: step}
			agg[step] = st
		}
		st.Arrivals.Add(at - r.Start)
	}
	out := make([]StepStats, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// FormatBreakdown renders a step breakdown as an aligned text table.
func FormatBreakdown(algo string, breakdown []StepStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s arrivals by message-passing step:\n", algo)
	fmt.Fprintf(&b, "%6s %8s %12s %12s %12s\n", "step", "nodes", "first (µs)", "mean (µs)", "last (µs)")
	for _, st := range breakdown {
		fmt.Fprintf(&b, "%6d %8d %12.3f %12.3f %12.3f\n",
			st.Step, st.Arrivals.N(), st.Arrivals.Min(), st.Arrivals.Mean(), st.Arrivals.Max())
	}
	return b.String()
}
