package broadcast

import (
	"strings"
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

func TestStepBreakdownRD(t *testing.T) {
	m := topology.NewMesh(8, 8, 8)
	r, err := RunSingle(m, NewRD(), 0, network.DefaultConfig(), 64)
	if err != nil {
		t.Fatal(err)
	}
	bd := StepBreakdown(m, r)
	if len(bd) != 9 {
		t.Fatalf("RD breakdown has %d steps, want 9", len(bd))
	}
	// Doubling: step s informs 2^(s-1) nodes, and step means rise
	// monotonically.
	total := 0
	for i, st := range bd {
		want := 1 << i
		if st.Arrivals.N() != want {
			t.Errorf("step %d informed %d nodes, want %d", st.Step, st.Arrivals.N(), want)
		}
		total += st.Arrivals.N()
		if i > 0 && st.Arrivals.Mean() <= bd[i-1].Arrivals.Mean() {
			t.Errorf("step %d mean %.3f not after step %d mean %.3f",
				st.Step, st.Arrivals.Mean(), bd[i-1].Step, bd[i-1].Arrivals.Mean())
		}
	}
	if total != m.Nodes()-1 {
		t.Errorf("breakdown covers %d nodes, want %d", total, m.Nodes()-1)
	}
}

func TestStepBreakdownAB(t *testing.T) {
	m := topology.NewMesh(8, 8, 8)
	r, err := RunSingle(m, NewAB(), m.ID(3, 4, 2), network.DefaultConfig(), 64)
	if err != nil {
		t.Fatal(err)
	}
	bd := StepBreakdown(m, r)
	if len(bd) != 3 {
		t.Fatalf("AB breakdown has %d steps, want 3", len(bd))
	}
	// The paper's parallelism argument: nearly all destinations
	// arrive in AB's final step.
	last := bd[len(bd)-1]
	if frac := float64(last.Arrivals.N()) / float64(m.Nodes()-1); frac < 0.9 {
		t.Errorf("final AB step informed only %.0f%% of destinations", 100*frac)
	}
}

func TestFormatBreakdown(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	r, err := RunSingle(m, NewDB(), 0, network.DefaultConfig(), 32)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatBreakdown("DB", StepBreakdown(m, r))
	for _, want := range []string{"DB arrivals", "step", "nodes", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
