package broadcast

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
)

// DB is the Deterministic Broadcast of Al-Dubai & Ould-Khaoua [28]:
// a coded-path (CPR) broadcast over deterministic routes that
// completes in four message-passing steps regardless of network size.
// The mesh is split into two partitioning sets anchored at a pair of
// opposite corners — the corner nearest the source and its opposite,
// so concurrent broadcasts from different sources spread over all
// corners. Each anchor corner floods its boundary face with one
// coded-path worm, and the two faces then sweep the interior from
// both sides in parallel, each sweep covering half of its line, so
// destinations receive the message in comparable, tightly clustered
// steps.
//
//	step 1  source -> nearest corner c0
//	step 2  source -> opposite corner c1; c0 -> snake over its x-face
//	step 3  c1 -> snake over its x-face; c0's face -> near-half rows
//	step 4  c1's face -> far-half rows
//
// DB is defined for 2D and 3D meshes (the paper's scope); the face
// "snake" degenerates to a line in 2D.
type DB struct{}

// NewDB returns the Deterministic Broadcast planner.
func NewDB() DB { return DB{} }

// Name implements Algorithm.
func (DB) Name() string { return "DB" }

// Ports implements Algorithm: DB runs on a one-port CPR router.
func (DB) Ports() int { return 1 }

// StepsFor returns DB's step count: four, independent of size.
func (DB) StepsFor(m *topology.Mesh) int { return 4 }

// Plan implements Algorithm. On a torus the partitioning runs in the
// source's unwrap frame (see planThroughFrame); mesh plans are
// unchanged.
func (db DB) Plan(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	if m.NDims() != 2 && m.NDims() != 3 {
		return nil, fmt.Errorf("broadcast: DB requires a 2D or 3D mesh, got %s", m.Name())
	}
	return planThroughFrame(m, src, db.planMesh)
}

// planMesh is the unwrapped-mesh construction.
func (db DB) planMesh(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	p := &Plan{Algorithm: db.Name(), Source: src, Steps: db.StepsFor(m)}

	X := m.Dim(0)
	c0, c1 := nearestAndOppositeCorner(m, src)

	// Corner delivery steps. The source's two corner sends occupy its
	// single port in consecutive steps; when the source already sits
	// on a corner the schedule compresses accordingly.
	c1Step := 0
	switch {
	case src == c0 && src == c1: // 1x…x1 mesh
	case src == c0:
		c1Step = 1
		p.Sends = append(p.Sends, Send{Step: 1, Path: core.ChainPath(src, c1)})
	case src == c1:
		p.Sends = append(p.Sends, Send{Step: 1, Path: core.ChainPath(src, c0)})
	default:
		c1Step = 2
		p.Sends = append(p.Sends,
			Send{Step: 1, Path: core.ChainPath(src, c0)},
			Send{Step: 2, Path: core.ChainPath(src, c1)},
		)
	}

	// Face floods: each anchor corner covers its own x-face the step
	// after it is informed, or the step after its previous send when
	// the source itself sits on the corner (one injection port).
	c0FaceStep := 2
	c1FaceStep := c1Step + 1
	if src == c1 {
		c1FaceStep = 2 // after the source's step-1 corner send
	}
	if face := db.facePath(m, c0); face != nil {
		p.Sends = append(p.Sends, Send{Step: c0FaceStep, Path: face})
	}
	if X > 1 {
		if face := db.facePath(m, c1); face != nil {
			p.Sends = append(p.Sends, Send{Step: c1FaceStep, Path: face})
		}
	}

	// Interior sweeps: each face covers the interior half nearer to
	// it; the near face takes the ceil share.
	if X > 2 {
		interior := X - 2
		nearCount := interior/2 + interior%2
		x0 := m.CoordAxis(c0, 0) // 0 or X-1
		var nearLo, nearHi, farLo, farHi int
		if x0 == 0 {
			nearLo, nearHi = 1, nearCount
			farLo, farHi = nearCount+1, X-2
		} else {
			nearLo, nearHi = X-1-nearCount, X-2
			farLo, farHi = 1, X-2-nearCount
		}
		for _, from := range m.Plane(0, x0) {
			p.Sends = append(p.Sends, Send{Step: c0FaceStep + 1, Path: core.SegmentPath(m, from, 0, nearLo, nearHi)})
		}
		if farLo <= farHi {
			x1 := m.CoordAxis(c1, 0)
			for _, from := range m.Plane(0, x1) {
				p.Sends = append(p.Sends, Send{Step: c1FaceStep + 1, Path: core.SegmentPath(m, from, 0, farLo, farHi)})
			}
		}
	}
	return p, nil
}

// nearestAndOppositeCorner returns DB's anchor corners for src: the
// corner on the source's own x-side and the one on the far x-side.
// Both anchors sit at the canonical (0, …, 0) position of their face
// so that every face is flooded by a worm of one single orientation
// regardless of source — concurrent broadcasts then share identical
// coded paths per face, queueing FIFO instead of interleaving.
//
// A four-corner variant (source-relative in y as well, with turn-safe
// south-leg floods from far-y corners) was evaluated to spread the
// anchor-port load under heavy broadcast rates; mixed-orientation
// worms on a shared face interfere worse than the port relief helps
// (top-load latency rose ~20% on 8×8×8), so the two canonical anchors
// stay.
func nearestAndOppositeCorner(m *topology.Mesh, src topology.NodeID) (near, opp topology.NodeID) {
	nearC := make([]int, m.NDims())
	oppC := make([]int, m.NDims())
	k := m.Dim(0)
	if m.CoordAxis(src, 0) <= (k-1)/2 {
		nearC[0], oppC[0] = 0, k-1
	} else {
		nearC[0], oppC[0] = k-1, 0
	}
	return m.ID(nearC...), m.ID(oppC...)
}

// facePath returns the coded path flooding the x-face containing
// corner, or nil when the face holds only the corner itself. In 3D
// the face is swept with ±z columns advancing in +y slow steps; a
// corner on the far y-side first runs a pure-south leg down its z=0
// row, so every face worm's south hops precede all its other hops
// (the same turn discipline AB's half-floods use), keeping the
// combined path set acyclic.
func (DB) facePath(m *topology.Mesh, corner topology.NodeID) *core.CodedPath {
	switch m.NDims() {
	case 2:
		if m.Dim(1) <= 1 {
			return nil
		}
		stop := m.Dim(1) - 1
		if m.CoordAxis(corner, 1) == stop {
			stop = 0
		}
		return core.LinePath(m, corner, 1, stop)
	default: // 3D: (y, z) face
		Y, Z := m.Dim(1), m.Dim(2)
		if Y <= 1 && Z <= 1 {
			return nil
		}
		cy := m.CoordAxis(corner, 1)
		if cy == 0 {
			path := core.SnakePath(m, corner, 2, 1, 0, Z-1, 0, Y-1)
			if len(path.Waypoints) == 0 {
				return nil
			}
			return path
		}
		// Far-y corner: south leg along z=0 to (x, 0, 0), then the
		// canonical +y snake, skipping the corner node itself.
		path := &core.CodedPath{Source: corner}
		coord := m.Coord(corner)
		coord[2] = 0
		for y := cy - 1; y >= 0; y-- {
			coord[1] = y
			path.Waypoints = append(path.Waypoints, m.ID(coord...))
		}
		coord[1] = 0
		edge := m.ID(coord...)
		snake := core.SnakePath(m, edge, 2, 1, 0, Z-1, 0, Y-1)
		for _, w := range snake.Waypoints {
			if w == corner {
				continue
			}
			path.Waypoints = append(path.Waypoints, w)
		}
		if len(path.Waypoints) == 0 {
			return nil
		}
		return path
	}
}
