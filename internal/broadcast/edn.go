package broadcast

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
)

// EDN is the Extended Dominating Node broadcast of Tsai & McKinley
// [20] for multiport wormhole meshes, reproduced here as a systematic
// construction with the published step count: on a
// (4·2^k)×(4·2^k)×(4·2^m) mesh it completes in k+m+4 message-passing
// steps using a three-port router.
//
// The construction has two phases. The doubling phase covers one
// "extended dominating node" (block leader) per 4×4×4 block: k rounds
// of quadrant doubling over the XY block grid (three sends per
// holder) followed by m rounds of recursive halving along the Z block
// column (one send per holder). The fill phase covers each block from
// its leader in exactly 4 steps: two rounds of three-port mirror
// doubling reach a representative in each octant of the block, and
// two more rounds repeat the pattern inside each octant.
//
// Meshes whose extents are not powers-of-two multiples of 4 (the
// paper's EDN requirement) are handled by the same construction with
// clamped block grids, giving ceil(log2(max(bx,by))) + ceil(log2 bz)
// + 4 steps for a bx×by×bz block grid.
type EDN struct{}

// NewEDN returns the Extended Dominating Node planner.
func NewEDN() EDN { return EDN{} }

// Name implements Algorithm.
func (EDN) Name() string { return "EDN" }

// Ports implements Algorithm: EDN assumes a three-port router.
func (EDN) Ports() int { return 3 }

const ednBlock = 4

// StepsFor returns the number of message-passing steps EDN uses on m.
func (EDN) StepsFor(m *topology.Mesh) int {
	if m.NDims() != 3 {
		return 0
	}
	bx := (m.Dim(0) + ednBlock - 1) / ednBlock
	by := (m.Dim(1) + ednBlock - 1) / ednBlock
	bz := (m.Dim(2) + ednBlock - 1) / ednBlock
	xy := ceilLog2(max(bx, by))
	return xy + ceilLog2(bz) + 4
}

// Plan implements Algorithm. EDN is defined for 3D meshes.
func (e EDN) Plan(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	if m.NDims() != 3 {
		return nil, fmt.Errorf("broadcast: EDN requires a 3D mesh, got %s", m.Name())
	}
	p := &Plan{Algorithm: e.Name(), Source: src, Steps: e.StepsFor(m)}

	sc := m.Coord(src)
	// Block-local offset of the source; leaders of other blocks sit
	// at the same offset, clamped into truncated edge blocks.
	off := [3]int{sc[0] % ednBlock, sc[1] % ednBlock, sc[2] % ednBlock}
	grid := [3]int{
		(m.Dim(0) + ednBlock - 1) / ednBlock,
		(m.Dim(1) + ednBlock - 1) / ednBlock,
		(m.Dim(2) + ednBlock - 1) / ednBlock,
	}
	srcBlock := [3]int{sc[0] / ednBlock, sc[1] / ednBlock, sc[2] / ednBlock}

	leader := func(bx, by, bz int) topology.NodeID {
		coord := [3]int{}
		for d, b := range [3]int{bx, by, bz} {
			lo := b * ednBlock
			hi := min(lo+ednBlock, m.Dim(d)) - 1
			c := lo + off[d]
			if c > hi {
				c = hi
			}
			coord[d] = c
		}
		return m.ID(coord[0], coord[1], coord[2])
	}

	// Phase 1a: quadrant doubling over the XY block grid at the
	// source's Z block.
	xyRounds := ceilLog2(max(grid[0], grid[1]))
	e.quadDouble(p, m, leader, srcBlock, grid, 1, xyRounds)

	// Phase 1b: recursive halving along Z for every XY block column.
	zRounds := ceilLog2(grid[2])
	zBase := 1 + xyRounds
	for bx := 0; bx < grid[0]; bx++ {
		for by := 0; by < grid[1]; by++ {
			e.zHalve(p, leader, bx, by, 0, grid[2], srcBlock[2], zBase)
		}
	}

	// Phase 2: 4-step fill of every block from its leader.
	fillBase := zBase + zRounds
	covered := make(map[topology.NodeID]bool)
	for bx := 0; bx < grid[0]; bx++ {
		for by := 0; by < grid[1]; by++ {
			for bz := 0; bz < grid[2]; bz++ {
				root := leader(bx, by, bz)
				lo := [3]int{bx * ednBlock, by * ednBlock, bz * ednBlock}
				hi := [3]int{
					min(lo[0]+ednBlock, m.Dim(0)),
					min(lo[1]+ednBlock, m.Dim(1)),
					min(lo[2]+ednBlock, m.Dim(2)),
				}
				e.fillBox(p, m, root, lo, hi, fillBase, 2, covered)
			}
		}
	}
	return p, nil
}

// quadDouble plans XY-plane quadrant doubling over the block grid:
// each round every holder sends to the leaders at its own relative
// position within the other quadrants of its rectangle (up to three
// sends, all in the same step), then recurses into the quadrants.
func (e EDN) quadDouble(p *Plan, m *topology.Mesh, leader func(bx, by, bz int) topology.NodeID,
	srcBlock, grid [3]int, step, rounds int) {

	bz := srcBlock[2]
	var rec func(x0, x1, y0, y1, hx, hy, step int)
	rec = func(x0, x1, y0, y1, hx, hy, step int) {
		sx, sy := x1-x0, y1-y0
		if sx <= 1 && sy <= 1 {
			return
		}
		mx := x0 + (sx+1)/2
		my := y0 + (sy+1)/2
		type quad struct{ qx0, qx1, qy0, qy1 int }
		quads := []quad{
			{x0, mx, y0, my}, {mx, x1, y0, my},
			{x0, mx, my, y1}, {mx, x1, my, y1},
		}
		holderQuad := -1
		for i, q := range quads {
			if hx >= q.qx0 && hx < q.qx1 && hy >= q.qy0 && hy < q.qy1 {
				holderQuad = i
			}
		}
		from := leader(hx, hy, bz)
		for i, q := range quads {
			if i == holderQuad || q.qx0 >= q.qx1 || q.qy0 >= q.qy1 {
				// Holder's own quadrant, or an empty quadrant.
				if i != holderQuad {
					continue
				}
				rec(q.qx0, q.qx1, q.qy0, q.qy1, hx, hy, step+1)
				continue
			}
			// Same relative position, clamped into the quadrant.
			px := q.qx0 + (hx - quads[holderQuad].qx0)
			py := q.qy0 + (hy - quads[holderQuad].qy0)
			if px >= q.qx1 {
				px = q.qx1 - 1
			}
			if py >= q.qy1 {
				py = q.qy1 - 1
			}
			to := leader(px, py, bz)
			if to != from {
				p.Sends = append(p.Sends, Send{Step: step, Path: core.ChainPath(from, to)})
			}
			rec(q.qx0, q.qx1, q.qy0, q.qy1, px, py, step+1)
		}
	}
	rec(0, grid[0], 0, grid[1], srcBlock[0], srcBlock[1], step)
}

// zHalve plans recursive halving along the Z block column (bx, by)
// over block range [lo, hi) with the holder at block zPos.
func (e EDN) zHalve(p *Plan, leader func(bx, by, bz int) topology.NodeID,
	bx, by, lo, hi, zPos, step int) {
	if hi-lo <= 1 {
		return
	}
	mid := lo + (hi-lo+1)/2
	var peer int
	if zPos < mid {
		peer = mid + (zPos - lo)
		if peer >= hi {
			peer = hi - 1
		}
	} else {
		peer = lo + (zPos - mid)
		if peer >= mid {
			peer = mid - 1
		}
	}
	// Note leader(srcBlock) == src by construction (the leader offset
	// is the source's block-local offset), so no special-casing of
	// the source's own column is needed.
	from := leader(bx, by, zPos)
	to := leader(bx, by, peer)
	if to != from {
		p.Sends = append(p.Sends, Send{Step: step, Path: core.ChainPath(from, to)})
	}
	if zPos < mid {
		e.zHalve(p, leader, bx, by, lo, mid, zPos, step+1)
		e.zHalve(p, leader, bx, by, mid, hi, peer, step+1)
	} else {
		e.zHalve(p, leader, bx, by, mid, hi, zPos, step+1)
		e.zHalve(p, leader, bx, by, lo, mid, peer, step+1)
	}
}

// fillBox plans the 4-step coverage of box [lo, hi) from root using
// two levels of three-port mirror doubling. level counts remaining
// levels (2 for a 4-wide box: halves of 2, then singletons).
func (e EDN) fillBox(p *Plan, m *topology.Mesh, root topology.NodeID, lo, hi [3]int, step, level int, covered map[topology.NodeID]bool) {
	if level == 0 {
		return
	}
	rc := m.Coord(root)
	// Split each dimension at its ceil midpoint; mirror the root's
	// position into the other half, clamped.
	var mids, mirror [3]int
	for d := 0; d < 3; d++ {
		size := hi[d] - lo[d]
		mids[d] = lo[d] + (size+1)/2
		if rc[d] < mids[d] {
			mv := rc[d] + (mids[d] - lo[d])
			if mv >= hi[d] {
				mv = hi[d] - 1
			}
			mirror[d] = mv
		} else {
			mirror[d] = rc[d] - (mids[d] - lo[d])
			if mirror[d] < lo[d] {
				mirror[d] = lo[d]
			}
		}
	}
	// Eight half-combination representatives; bit d set means the
	// mirrored half along dimension d.
	rep := func(mask int) topology.NodeID {
		c := [3]int{rc[0], rc[1], rc[2]}
		for d := 0; d < 3; d++ {
			if mask&(1<<d) != 0 {
				c[d] = mirror[d]
			}
		}
		return m.ID(c[0], c[1], c[2])
	}
	reps := make([]topology.NodeID, 8)
	for mask := 0; mask < 8; mask++ {
		reps[mask] = rep(mask)
	}
	// Step A: root -> single-bit reps. Step B: root -> triple-bit
	// rep; single-bit reps -> their double-bit completion.
	addSend := func(step int, from, to topology.NodeID) {
		if from == to || covered[to] {
			return
		}
		covered[to] = true
		p.Sends = append(p.Sends, Send{Step: step, Path: core.ChainPath(from, to)})
	}
	covered[root] = true
	addSend(step, root, reps[1])
	addSend(step, root, reps[2])
	addSend(step, root, reps[4])
	addSend(step+1, root, reps[7])
	addSend(step+1, reps[1], reps[3])
	addSend(step+1, reps[2], reps[6])
	addSend(step+1, reps[4], reps[5])

	// Recurse into each octant with its representative as root.
	seen := make(map[topology.NodeID]bool)
	for mask := 0; mask < 8; mask++ {
		r := reps[mask]
		if seen[r] {
			continue
		}
		seen[r] = true
		var olo, ohi [3]int
		for d := 0; d < 3; d++ {
			c := rc[d]
			if mask&(1<<d) != 0 {
				c = mirror[d]
			}
			if c < mids[d] {
				olo[d], ohi[d] = lo[d], mids[d]
			} else {
				olo[d], ohi[d] = mids[d], hi[d]
			}
		}
		e.fillBox(p, m, r, olo, ohi, step+2, level-1, covered)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
