package broadcast

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Options configures one execution of a plan on the network.
type Options struct {
	// Start is the simulated time the source initiates the broadcast.
	Start sim.Time
	// Length is the message length in flits.
	Length int
	// Adaptive is the routing function used by sends marked
	// Adaptive; nil falls back to dimension-order.
	Adaptive routing.Selector
	// Tag labels the broadcast's worms for tracing.
	Tag string
	// OnComplete, if set, fires when the last node receives the
	// message.
	OnComplete func(*Result)
}

// Result accumulates the outcome of one broadcast execution. Fields
// fill in as the simulation advances; Done reports completion.
type Result struct {
	// Plan is the executed schedule.
	Plan *Plan
	// Start is the initiation time.
	Start sim.Time
	// Arrival[n] is the absolute time node n received the message;
	// the source's entry equals Start. NaN-free: unreceived nodes
	// hold -1.
	Arrival []sim.Time
	// Informed counts nodes holding the message, including the source.
	Informed int
	// Done reports whether every node received the message.
	Done bool
	// Finish is the arrival time at the last node (valid when Done).
	Finish sim.Time
}

// Latency returns the network-level broadcast latency: time from
// initiation until the last node's arrival.
func (r *Result) Latency() sim.Time { return r.Finish - r.Start }

// DestinationLatencies returns the per-destination latencies (arrival
// minus start) for every node except the source — the sample the
// paper's node-level coefficient of variation is computed over.
func (r *Result) DestinationLatencies() []float64 {
	out := make([]float64, 0, len(r.Arrival)-1)
	for id, at := range r.Arrival {
		if topology.NodeID(id) == r.Plan.Source {
			continue
		}
		if at >= 0 {
			out = append(out, at-r.Start)
		}
	}
	return out
}

// Execute wires a plan into the network and returns its Result, which
// fills in as the caller advances the simulator. The plan should have
// been validated; Execute trusts it.
func Execute(net *network.Network, plan *Plan, opt Options) (*Result, error) {
	if opt.Length <= 0 {
		return nil, fmt.Errorf("broadcast: message length %d", opt.Length)
	}
	n := net.Topology().Nodes()
	r := &Result{
		Plan:    plan,
		Start:   opt.Start,
		Arrival: make([]sim.Time, n),
	}
	for i := range r.Arrival {
		r.Arrival[i] = -1
	}

	// Sends grouped by source and ordered by step, so the port FIFO
	// serialises them in step order. The grouping is precomputed on
	// the plan and shared read-only across executions; a node triggers
	// at most once per execution because deliver ignores duplicate
	// arrivals and the source starts informed.
	bySource := plan.sendIndex()

	// One backing array holds the execution's transfers: in-flight
	// worms reference entries until their tails drain, so the array
	// lives exactly as long as the broadcast — one allocation instead
	// of one per send.
	transfers := make([]network.Transfer, len(plan.Sends))
	nextTransfer := 0

	var deliver func(node topology.NodeID, at sim.Time)
	trigger := func(node topology.NodeID, at sim.Time) {
		if int(node) >= len(bySource) {
			return // node injects nothing
		}
		for _, s := range bySource[node] {
			sel := routing.Selector(nil)
			if s.Adaptive {
				sel = opt.Adaptive
			}
			t := &transfers[nextTransfer]
			nextTransfer++
			*t = network.Transfer{
				Source:    node,
				Waypoints: s.Path.Waypoints,
				Length:    opt.Length,
				Selector:  sel,
				OnDeliver: deliver,
				Tag:       opt.Tag,
			}
			if err := net.Send(at, t); err != nil {
				panic(fmt.Sprintf("broadcast: planned send rejected: %v", err))
			}
		}
	}

	deliver = func(node topology.NodeID, at sim.Time) {
		if r.Arrival[node] >= 0 {
			return // duplicate coverage; first arrival counts
		}
		r.Arrival[node] = at
		r.Informed++
		if r.Informed == n {
			r.Done = true
			r.Finish = at
			if opt.OnComplete != nil {
				opt.OnComplete(r)
			}
		}
		trigger(node, at)
	}

	// The source holds the message at Start.
	r.Arrival[plan.Source] = opt.Start
	r.Informed = 1
	if n == 1 {
		r.Done, r.Finish = true, opt.Start
		if opt.OnComplete != nil {
			opt.OnComplete(r)
		}
		return r, nil
	}
	net.Sim().At(opt.Start, func() { trigger(plan.Source, opt.Start) })
	return r, nil
}

// RunSingle is the convenience path used by the single-source
// experiments: build a fresh network over m, execute algo's plan from
// src, run the simulation to completion and return the result.
func RunSingle(m *topology.Mesh, algo Algorithm, src topology.NodeID, cfg network.Config, length int) (*Result, error) {
	plan, err := algo.Plan(m, src)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(m); err != nil {
		return nil, err
	}
	cfg.Ports = algo.Ports()
	s := sim.New()
	net, err := network.New(s, m, cfg)
	if err != nil {
		return nil, err
	}
	var adaptive routing.Selector
	if needsAdaptive(plan) {
		adaptive = routing.WestFirstFor(m)
	}
	r, err := Execute(net, plan, Options{Length: length, Adaptive: adaptive, Tag: "single"})
	if err != nil {
		return nil, err
	}
	s.Run()
	if !r.Done {
		return nil, fmt.Errorf("broadcast: %s from %d stalled with %d/%d informed (stuck: %v)",
			algo.Name(), src, r.Informed, m.Nodes(), net.Stuck())
	}
	return r, nil
}

func needsAdaptive(p *Plan) bool {
	for _, s := range p.Sends {
		if s.Adaptive {
			return true
		}
	}
	return false
}
