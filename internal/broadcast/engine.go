package broadcast

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Options configures one execution of a plan on the network.
type Options struct {
	// Start is the simulated time the source initiates the broadcast.
	Start sim.Time
	// Length is the message length in flits.
	Length int
	// Adaptive is the routing function used by sends marked
	// Adaptive; nil falls back to dimension-order.
	Adaptive routing.Selector
	// Tag labels the broadcast's worms for tracing.
	Tag string
	// OnComplete, if set, fires when the last node receives the
	// message.
	OnComplete func(*Result)
	// Stream, when set, keeps the Result's per-destination state
	// fixed-size: arrivals dedupe through a bitset and destination
	// latencies fold into a running accumulator instead of an
	// Arrival slice with one entry per node. Use it for very large
	// networks; see Result.Streaming for what changes observably.
	Stream bool
}

// Result accumulates the outcome of one broadcast execution. Fields
// fill in as the simulation advances; Done reports completion.
type Result struct {
	// Plan is the executed schedule.
	Plan *Plan
	// Start is the initiation time.
	Start sim.Time
	// Arrival[n] is the absolute time node n received the message;
	// the source's entry equals Start. NaN-free: unreceived nodes
	// hold -1. Nil in streaming mode — use the Destination* accessors,
	// which work in both modes.
	Arrival []sim.Time
	// informed is the streaming-mode arrival bitset (one bit per
	// node, 1/64th the footprint of Arrival), used only for duplicate
	// suppression.
	informed []uint64
	// destLat accumulates per-destination latencies in streaming
	// mode, in ARRIVAL order. A retained Result computes the same
	// moments in node-ID order (see DestinationCV), so the two modes
	// agree to floating-point summation order, not bit-for-bit —
	// which is why nothing golden-pinned streams.
	destLat stats.Accumulator
	// Informed counts nodes holding the message, including the source.
	Informed int
	// Done reports whether every node received the message.
	Done bool
	// Finish is the arrival time at the last node (valid when Done).
	Finish sim.Time
}

// Streaming reports whether the Result holds only fixed-size
// per-destination state (no Arrival slice).
func (r *Result) Streaming() bool { return r.Arrival == nil }

// Latency returns the network-level broadcast latency: time from
// initiation until the last node's arrival.
func (r *Result) Latency() sim.Time { return r.Finish - r.Start }

// DestinationLatencies returns the per-destination latencies (arrival
// minus start) for every node except the source — the sample the
// paper's node-level coefficient of variation is computed over.
func (r *Result) DestinationLatencies() []float64 {
	if r.Streaming() {
		panic("broadcast: DestinationLatencies on a streaming result; use the Destination* accessors")
	}
	out := make([]float64, 0, len(r.Arrival)-1)
	for id, at := range r.Arrival {
		if topology.NodeID(id) == r.Plan.Source {
			continue
		}
		if at >= 0 {
			out = append(out, at-r.Start)
		}
	}
	return out
}

// DestinationCount returns the number of destinations (nodes other
// than the source) that received the message. Works in both modes.
func (r *Result) DestinationCount() int { return r.Informed - 1 }

// destAcc returns an accumulator over the per-destination latencies.
// Retained results fold the sample in node-ID order — the exact
// floating-point op sequence stats.CVOf(DestinationLatencies())
// always performed, so existing outputs stay byte-identical —
// while streaming results hand back the accumulator that filled in
// arrival order.
func (r *Result) destAcc() *stats.Accumulator {
	if r.Streaming() {
		return &r.destLat
	}
	var a stats.Accumulator
	for id, at := range r.Arrival {
		if topology.NodeID(id) == r.Plan.Source || at < 0 {
			continue
		}
		a.Add(at - r.Start)
	}
	return &a
}

// DestinationMean returns the mean per-destination latency, equal to
// stats.MeanOf(DestinationLatencies()) on a retained result.
func (r *Result) DestinationMean() float64 { return r.destAcc().Mean() }

// DestinationCV returns the coefficient of variation of the
// per-destination latencies — the paper's node-level parallelism
// metric — equal to stats.CVOf(DestinationLatencies()) on a retained
// result.
func (r *Result) DestinationCV() float64 { return r.destAcc().CV() }

// Execute wires a plan into the network and returns its Result, which
// fills in as the caller advances the simulator. The plan should have
// been validated; Execute trusts it.
func Execute(net *network.Network, plan *Plan, opt Options) (*Result, error) {
	if opt.Length <= 0 {
		return nil, fmt.Errorf("broadcast: message length %d", opt.Length)
	}
	n := net.Topology().Nodes()
	r := &Result{
		Plan:  plan,
		Start: opt.Start,
	}
	if opt.Stream {
		r.informed = make([]uint64, (n+63)/64)
	} else {
		r.Arrival = make([]sim.Time, n)
		for i := range r.Arrival {
			r.Arrival[i] = -1
		}
	}

	// Sends grouped by source and ordered by step, so the port FIFO
	// serialises them in step order. The grouping is precomputed on
	// the plan and shared read-only across executions; a node triggers
	// at most once per execution because deliver ignores duplicate
	// arrivals and the source starts informed.
	bySource := plan.sendIndex()

	// One backing array holds the execution's transfers: in-flight
	// worms reference entries until their tails drain, so the array
	// lives exactly as long as the broadcast — one allocation instead
	// of one per send.
	transfers := make([]network.Transfer, len(plan.Sends))
	nextTransfer := 0

	var deliver func(node topology.NodeID, at sim.Time)
	trigger := func(node topology.NodeID, at sim.Time) {
		if int(node) >= len(bySource) {
			return // node injects nothing
		}
		for _, s := range bySource[node] {
			sel := routing.Selector(nil)
			if s.Adaptive {
				sel = opt.Adaptive
			}
			t := &transfers[nextTransfer]
			nextTransfer++
			*t = network.Transfer{
				Source:    node,
				Waypoints: s.Path.Waypoints,
				Length:    opt.Length,
				Selector:  sel,
				OnDeliver: deliver,
				Tag:       opt.Tag,
			}
			if err := net.Send(at, t); err != nil {
				panic(fmt.Sprintf("broadcast: planned send rejected: %v", err))
			}
		}
	}

	deliver = func(node topology.NodeID, at sim.Time) {
		if r.Arrival != nil {
			if r.Arrival[node] >= 0 {
				return // duplicate coverage; first arrival counts
			}
			r.Arrival[node] = at
		} else {
			w, bit := node>>6, uint64(1)<<(node&63)
			if r.informed[w]&bit != 0 {
				return // duplicate coverage; first arrival counts
			}
			r.informed[w] |= bit
			r.destLat.Add(at - r.Start)
		}
		r.Informed++
		if r.Informed == n {
			r.Done = true
			r.Finish = at
			if opt.OnComplete != nil {
				opt.OnComplete(r)
			}
		}
		trigger(node, at)
	}

	// The source holds the message at Start; it is never a
	// destination, so the streaming accumulator excludes it.
	if r.Arrival != nil {
		r.Arrival[plan.Source] = opt.Start
	} else {
		r.informed[plan.Source>>6] |= uint64(1) << (plan.Source & 63)
	}
	r.Informed = 1
	if n == 1 {
		r.Done, r.Finish = true, opt.Start
		if opt.OnComplete != nil {
			opt.OnComplete(r)
		}
		return r, nil
	}
	net.Sim().At(opt.Start, func() { trigger(plan.Source, opt.Start) })
	return r, nil
}

// StreamThreshold is the node count at which RunSingle switches its
// Result to streaming statistics. It matches the network layer's
// LazyStoreThreshold: below it every existing golden-pinned study
// keeps its retained, byte-identical Arrival path.
const StreamThreshold = 1 << 16

// RunSingle is the convenience path used by the single-source
// experiments: build a fresh network over m, execute algo's plan from
// src, run the simulation to completion and return the result. At or
// above StreamThreshold nodes the result streams (Result.Streaming).
func RunSingle(m *topology.Mesh, algo Algorithm, src topology.NodeID, cfg network.Config, length int) (*Result, error) {
	plan, err := PlanCached(m, algo, src)
	if err != nil {
		return nil, err
	}
	cfg.Ports = algo.Ports()
	s := sim.New()
	net, err := network.New(s, m, cfg)
	if err != nil {
		return nil, err
	}
	var adaptive routing.Selector
	if needsAdaptive(plan) {
		adaptive = routing.WestFirstFor(m)
	}
	r, err := Execute(net, plan, Options{
		Length:   length,
		Adaptive: adaptive,
		Tag:      "single",
		Stream:   m.Nodes() >= StreamThreshold,
	})
	if err != nil {
		return nil, err
	}
	s.Run()
	if !r.Done {
		return nil, fmt.Errorf("broadcast: %s from %d stalled with %d/%d informed (stuck: %v)",
			algo.Name(), src, r.Informed, m.Nodes(), net.Stuck())
	}
	return r, nil
}

func needsAdaptive(p *Plan) bool {
	for _, s := range p.Sends {
		if s.Adaptive {
			return true
		}
	}
	return false
}
