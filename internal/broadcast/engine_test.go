package broadcast

import (
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestExecuteRejectsBadLength(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := sim.New()
	net := network.MustNew(s, m, network.DefaultConfig())
	plan, err := NewDB().Plan(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(net, plan, Options{Length: 0}); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestExecuteSingleNodeMesh(t *testing.T) {
	m := topology.NewMesh(1, 1, 1)
	s := sim.New()
	net := network.MustNew(s, m, network.DefaultConfig())
	plan := &Plan{Algorithm: "trivial", Source: 0, Steps: 0}
	done := false
	r, err := Execute(net, plan, Options{Length: 8, OnComplete: func(*Result) { done = true }})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Done || !done || r.Latency() != 0 {
		t.Fatalf("single-node broadcast not trivially complete: %+v", r)
	}
}

func TestExecuteOnCompleteFiresOnce(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := sim.New()
	net := network.MustNew(s, m, network.DefaultConfig())
	plan, err := NewAB().Plan(m, m.ID(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(m); err != nil {
		t.Fatal(err)
	}
	fired := 0
	_, err = Execute(net, plan, Options{
		Length:     16,
		Adaptive:   nil, // AB worms fall back to dimension-order
		OnComplete: func(*Result) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("OnComplete fired %d times", fired)
	}
}

// TestExecuteDuplicateDeliveriesIgnored: a hand-built plan that
// covers one node twice must record the first arrival only.
func TestExecuteDuplicateDeliveriesIgnored(t *testing.T) {
	m := topology.NewMesh(4, 1)
	s := sim.New()
	net := network.MustNew(s, m, network.DefaultConfig())
	plan := &Plan{
		Algorithm: "dup",
		Source:    0,
		Steps:     2,
		Sends: []Send{
			{Step: 1, Path: core.ChainPath(0, 1, 2, 3)},
			{Step: 2, Path: core.ChainPath(3, 2)}, // covers 2 again, later
		},
	}
	if err := plan.Validate(m); err != nil {
		t.Fatal(err)
	}
	r, err := Execute(net, plan, Options{Length: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !r.Done {
		t.Fatal("incomplete")
	}
	if r.Arrival[2] >= r.Arrival[3] {
		t.Fatalf("node 2's recorded arrival (%v) not the first one (node 3 at %v)",
			r.Arrival[2], r.Arrival[3])
	}
}

func TestValidateCatchesBrokenPlans(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cases := []struct {
		name string
		plan *Plan
	}{
		{"uninformed sender", &Plan{Algorithm: "x", Source: 0, Steps: 2, Sends: []Send{
			{Step: 1, Path: core.ChainPath(5, 6)},
		}}},
		{"send before informed", &Plan{Algorithm: "x", Source: 0, Steps: 2, Sends: []Send{
			{Step: 1, Path: core.ChainPath(0, 5)},
			{Step: 1, Path: core.ChainPath(5, 6)},
		}}},
		{"step out of range", &Plan{Algorithm: "x", Source: 0, Steps: 1, Sends: []Send{
			{Step: 2, Path: core.ChainPath(0, 5)},
		}}},
		{"incomplete coverage", &Plan{Algorithm: "x", Source: 0, Steps: 1, Sends: []Send{
			{Step: 1, Path: core.ChainPath(0, 1)},
		}}},
		{"bad source", &Plan{Algorithm: "x", Source: topology.NodeID(99), Steps: 1}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(m); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPlanMetrics(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	plan, err := NewRD().Plan(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.MessageCount(); got != m.Nodes()-1 {
		t.Errorf("RD message count = %d, want %d", got, m.Nodes()-1)
	}
	if got := plan.TotalPathNodes(); got != m.Nodes()-1 {
		t.Errorf("RD path nodes = %d (unicasts deliver once each)", got)
	}
	if got := plan.MaxSendsPerNodeStep(); got != 1 {
		t.Errorf("RD sends per node-step = %d", got)
	}
	ab, err := NewAB().Plan(m, m.ID(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rd, abn := plan.MessageCount(), ab.MessageCount(); abn >= rd {
		t.Errorf("AB messages (%d) not below RD (%d)", abn, rd)
	}
}

// TestRunSingleReportsStall: an engine fed a plan whose sends can
// never complete coverage must report the stall instead of hanging.
func TestRunSingleReportsStall(t *testing.T) {
	m := topology.NewMesh(3, 1)
	// stallAlgo plans an intentionally incomplete broadcast.
	_, err := RunSingle(m, stallAlgo{}, 0, network.DefaultConfig(), 8)
	if err == nil {
		t.Fatal("incomplete plan not reported")
	}
}

type stallAlgo struct{}

func (stallAlgo) Name() string { return "stall" }
func (stallAlgo) Ports() int   { return 1 }
func (stallAlgo) Plan(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	// Covers only node 1 of 3 — Validate would reject it, so
	// RunSingle must fail at validation.
	return &Plan{Algorithm: "stall", Source: src, Steps: 1, Sends: []Send{
		{Step: 1, Path: core.ChainPath(src, 1)},
	}}, nil
}
