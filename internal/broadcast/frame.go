package broadcast

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// Wraparound support for the coded-path planners. The mesh recursions
// of DB, AB and the dual-path multicast partition a rectangle into
// corners, faces and halves — notions a torus does not have until a
// coordinate frame is fixed. planThroughFrame fixes one: the CANONICAL
// unwrap frame anchored at node zero (topology.Frame), in which the
// torus reads as an ordinary mesh and every source sees the SAME
// corner geometry.
//
// The anchor is deliberately shared by all sources rather than
// per-source. A per-source frame (source at the zero corner of its
// own unwrapping) was evaluated first: it shortens a single
// broadcast's corner legs, but concurrent broadcasts then flood the
// same rings with translated — mixed-orientation — coded paths, and
// their long channel holds close cycles the dateline virtual channels
// cannot cut (the dateline argument governs minimal unicast routes,
// not waypoint-to-waypoint snakes). Contended DB/AB studies on small
// tori deadlocked within a few overlapping broadcasts. This is the
// torus incarnation of the design rule already recorded at DB's
// anchor selection: concurrent broadcasts must share one coded-path
// orientation per face. With the canonical frame the snake worms are
// byte-identical to the mesh planner's output, so the mesh proof
// carries over, while the point-to-point legs between them (corner
// ChainPaths, RD/EDN unicasts) still ride the wraparound links via
// minimal dateline routing.
//
// On a plain mesh the frame is the identity and the planner runs on m
// itself: mesh plans are bit-for-bit what they were before tori were
// supported.

// planThroughFrame runs plan in the canonical unwrap frame of m and
// maps the result back to physical node IDs.
func planThroughFrame(m *topology.Mesh, src topology.NodeID,
	plan func(m *topology.Mesh, src topology.NodeID) (*Plan, error)) (*Plan, error) {

	if !m.Wrap() {
		return plan(m, src)
	}
	f := topology.NewFrame(m, 0)
	p, err := plan(f.Virtual(), f.ToVirtual(src))
	if err != nil {
		return nil, err
	}
	return remapPlan(p, f), nil
}

// remapPlan translates a virtual-frame plan onto the physical torus.
// When the frame is the identity (the canonical anchor) the plan is
// returned untouched; the general path keeps the machinery honest for
// non-zero anchors used in tests.
func remapPlan(p *Plan, f *topology.Frame) *Plan {
	if f.Identity() {
		return p
	}
	p.Source = f.ToPhysical(p.Source)
	for i := range p.Sends {
		old := p.Sends[i].Path
		path := &core.CodedPath{
			Source:    f.ToPhysical(old.Source),
			Waypoints: make([]topology.NodeID, len(old.Waypoints)),
			Relays:    old.Relays,
		}
		for j, w := range old.Waypoints {
			path.Waypoints[j] = f.ToPhysical(w)
		}
		p.Sends[i].Path = path
	}
	return p
}
