package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Multicast is the paper's §4 future-work extension: delivery of one
// message to an arbitrary destination subset using the same
// coded-path machinery as DB and AB. It implements dual-path
// multicast in the style of Lin & Ni [10]: nodes are ranked along a
// Hamiltonian snake through the mesh; destinations ranked above the
// source are visited by one worm in ascending rank order, the rest by
// a second worm in descending order. MaxPerPath bounds destinations
// per worm (AB's "limit the destinations of each path" strategy),
// splitting overloaded paths into chunks that serialise on the
// source's injection port.
type Multicast struct {
	// MaxPerPath bounds the destinations carried by one worm;
	// 0 means unbounded.
	MaxPerPath int
}

// NewMulticast returns a dual-path multicast planner.
func NewMulticast(maxPerPath int) Multicast { return Multicast{MaxPerPath: maxPerPath} }

// Name identifies the planner.
func (Multicast) Name() string { return "MC" }

// Ports returns the one-port CPR router assumption.
func (Multicast) Ports() int { return 1 }

// SnakeRank returns node id's position along the Hamiltonian snake
// through the mesh: the highest dimension is swept slice by slice and
// each slice's sub-snake is traversed forward or backward so that
// consecutive ranks are always mesh-adjacent (a reflected mixed-radix
// code). The reflection state toggles on the parity of each physical
// coordinate: entering an odd-indexed slice reverses the traversal of
// everything below it.
func SnakeRank(m *topology.Mesh, id topology.NodeID) int {
	rank := 0
	flipped := false
	for d := m.NDims() - 1; d >= 0; d-- {
		k := m.Dim(d)
		digit := m.CoordAxis(id, d)
		eff := digit
		if flipped {
			eff = k - 1 - digit
		}
		rank = rank*k + eff
		if digit%2 == 1 {
			flipped = !flipped
		}
	}
	return rank
}

// NodeAtRank inverts SnakeRank.
func NodeAtRank(m *topology.Mesh, rank int) topology.NodeID {
	if rank < 0 || rank >= m.Nodes() {
		panic(fmt.Sprintf("broadcast: snake rank %d out of range [0,%d)", rank, m.Nodes()))
	}
	coord := make([]int, m.NDims())
	divisors := make([]int, m.NDims())
	total := m.Nodes()
	for d := m.NDims() - 1; d >= 0; d-- {
		total /= m.Dim(d)
		divisors[d] = total
	}
	flipped := false
	rest := rank
	for d := m.NDims() - 1; d >= 0; d-- {
		eff := rest / divisors[d]
		rest %= divisors[d]
		digit := eff
		if flipped {
			digit = m.Dim(d) - 1 - eff
		}
		coord[d] = digit
		if digit%2 == 1 {
			flipped = !flipped
		}
	}
	return m.ID(coord...)
}

// PlanMulticast returns the dual-path schedule delivering to dests
// (duplicates and the source itself are ignored). The returned plan
// validates under a relaxed coverage rule — use ValidateMulticast.
// On a torus the snake ranking runs in the canonical unwrap frame
// (see planThroughFrame) and the worms' legs between ranked stops
// ride the wraparound links; mesh plans are unchanged.
func (mc Multicast) PlanMulticast(m *topology.Mesh, src topology.NodeID, dests []topology.NodeID) (*Plan, error) {
	if !m.Wrap() {
		return mc.planMesh(m, src, dests)
	}
	f := topology.NewFrame(m, 0)
	vdests := make([]topology.NodeID, len(dests))
	for i, d := range dests {
		if int(d) < 0 || int(d) >= m.Nodes() {
			return nil, fmt.Errorf("broadcast: multicast destination %d out of range", d)
		}
		vdests[i] = f.ToVirtual(d)
	}
	p, err := mc.planMesh(f.Virtual(), f.ToVirtual(src), vdests)
	if err != nil {
		return nil, err
	}
	return remapPlan(p, f), nil
}

// planMesh is the unwrapped-mesh construction.
func (mc Multicast) planMesh(m *topology.Mesh, src topology.NodeID, dests []topology.NodeID) (*Plan, error) {
	seen := make(map[topology.NodeID]bool, len(dests))
	var up, down []topology.NodeID
	srcRank := SnakeRank(m, src)
	for _, d := range dests {
		if d == src || seen[d] {
			continue
		}
		if int(d) < 0 || int(d) >= m.Nodes() {
			return nil, fmt.Errorf("broadcast: multicast destination %d out of range", d)
		}
		seen[d] = true
		if SnakeRank(m, d) > srcRank {
			up = append(up, d)
		} else {
			down = append(down, d)
		}
	}
	sort.Slice(up, func(i, j int) bool { return SnakeRank(m, up[i]) < SnakeRank(m, up[j]) })
	sort.Slice(down, func(i, j int) bool { return SnakeRank(m, down[i]) > SnakeRank(m, down[j]) })

	p := &Plan{Algorithm: mc.Name(), Source: src, Steps: 1}
	addChunks := func(ordered []topology.NodeID) {
		limit := mc.MaxPerPath
		if limit <= 0 {
			limit = len(ordered)
		}
		for len(ordered) > 0 {
			n := limit
			if n > len(ordered) {
				n = len(ordered)
			}
			chunk := ordered[:n]
			ordered = ordered[n:]
			p.Sends = append(p.Sends, Send{
				Step: 1,
				Path: core.ChainPath(src, chunk...),
			})
		}
	}
	addChunks(up)
	addChunks(down)
	return p, nil
}

// RunMulticast plans and executes one multicast on an idle network
// over m and returns each destination's arrival time (µs from start).
func RunMulticast(m *topology.Mesh, mc Multicast, src topology.NodeID, dests []topology.NodeID, cfg network.Config, length int) (map[topology.NodeID]float64, error) {
	plan, err := mc.PlanMulticast(m, src, dests)
	if err != nil {
		return nil, err
	}
	if err := ValidateMulticast(m, plan, dests); err != nil {
		return nil, err
	}
	s := sim.New()
	net, err := network.New(s, m, cfg)
	if err != nil {
		return nil, err
	}
	r, err := Execute(net, plan, Options{Length: length, Tag: "multicast"})
	if err != nil {
		return nil, err
	}
	s.Run()
	out := make(map[topology.NodeID]float64, len(dests))
	for _, d := range dests {
		if d == src {
			continue
		}
		at := r.Arrival[d]
		if at < 0 {
			return nil, fmt.Errorf("broadcast: multicast destination %d never received (stuck: %v)", d, net.Stuck())
		}
		out[d] = at
	}
	return out, nil
}

// ValidateMulticast checks that the plan delivers to exactly the
// requested destination set.
func ValidateMulticast(m *topology.Mesh, p *Plan, dests []topology.NodeID) error {
	want := make(map[topology.NodeID]bool)
	for _, d := range dests {
		if d != p.Source {
			want[d] = true
		}
	}
	got := make(map[topology.NodeID]bool)
	for _, s := range p.Sends {
		if err := s.Path.Validate(m); err != nil {
			return err
		}
		if s.Path.Source != p.Source {
			return fmt.Errorf("broadcast: multicast worm from %d, want source %d", s.Path.Source, p.Source)
		}
		for _, w := range s.Path.Waypoints {
			got[w] = true
		}
	}
	for d := range want {
		if !got[d] {
			return fmt.Errorf("broadcast: multicast misses destination %d", d)
		}
	}
	for d := range got {
		if !want[d] {
			return fmt.Errorf("broadcast: multicast visits non-destination %d", d)
		}
	}
	return nil
}
