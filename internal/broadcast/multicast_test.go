package broadcast

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestSnakeRankIsHamiltonian: consecutive ranks must be mesh-adjacent
// (distance 1) — the property dual-path multicast relies on.
func TestSnakeRankIsHamiltonian(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {5, 3}, {4, 3, 2}, {3, 3, 3}, {2, 2, 2, 2}} {
		m := topology.NewMesh(dims...)
		prev := NodeAtRank(m, 0)
		for r := 1; r < m.Nodes(); r++ {
			cur := NodeAtRank(m, r)
			if m.Distance(prev, cur) != 1 {
				t.Fatalf("%s: ranks %d,%d map to non-adjacent nodes %v,%v",
					m.Name(), r-1, r, m.Coord(prev), m.Coord(cur))
			}
			prev = cur
		}
	}
}

// TestSnakeRankRoundTrip: NodeAtRank inverts SnakeRank and ranks form
// a permutation of [0, N).
func TestSnakeRankRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {5, 3, 2}, {3, 4, 5}} {
		m := topology.NewMesh(dims...)
		seen := make([]bool, m.Nodes())
		for id := 0; id < m.Nodes(); id++ {
			r := SnakeRank(m, topology.NodeID(id))
			if r < 0 || r >= m.Nodes() {
				t.Fatalf("rank %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("rank %d duplicated", r)
			}
			seen[r] = true
			if NodeAtRank(m, r) != topology.NodeID(id) {
				t.Fatalf("round trip failed for node %d", id)
			}
		}
	}
}

// TestMulticastCoversExactlyDestinations property-checks arbitrary
// destination subsets.
func TestMulticastCoversExactlyDestinations(t *testing.T) {
	m := topology.NewMesh(6, 5, 4)
	rng := sim.NewRNG(3, 41)
	f := func(n uint8, maxPer uint8) bool {
		count := int(n%32) + 1
		dests := make([]topology.NodeID, count)
		for i := range dests {
			dests[i] = topology.NodeID(rng.Intn(m.Nodes()))
		}
		src := topology.NodeID(rng.Intn(m.Nodes()))
		mc := NewMulticast(int(maxPer % 8)) // 0..7, 0 = unbounded
		plan, err := mc.PlanMulticast(m, src, dests)
		if err != nil {
			return false
		}
		return ValidateMulticast(m, plan, dests) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMulticastDualPathOrdering: each worm's waypoints must have
// monotone snake ranks (ascending for the up worm, descending down).
func TestMulticastDualPathOrdering(t *testing.T) {
	m := topology.NewMesh(8, 8)
	src := m.ID(4, 4)
	dests := []topology.NodeID{m.ID(0, 0), m.ID(7, 7), m.ID(2, 5), m.ID(6, 1), m.ID(4, 5)}
	plan, err := NewMulticast(0).PlanMulticast(m, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sends) != 2 {
		t.Fatalf("sends = %d, want 2 (dual path)", len(plan.Sends))
	}
	srcRank := SnakeRank(m, src)
	for _, s := range plan.Sends {
		ranks := make([]int, len(s.Path.Waypoints))
		for i, w := range s.Path.Waypoints {
			ranks[i] = SnakeRank(m, w)
		}
		ascending := ranks[0] > srcRank
		for i := 1; i < len(ranks); i++ {
			if ascending && ranks[i] <= ranks[i-1] {
				t.Fatalf("up worm ranks not ascending: %v", ranks)
			}
			if !ascending && ranks[i] >= ranks[i-1] {
				t.Fatalf("down worm ranks not descending: %v", ranks)
			}
		}
	}
}

// TestMulticastMaxPerPathChunks: a path limit splits worms.
func TestMulticastMaxPerPathChunks(t *testing.T) {
	m := topology.NewMesh(8, 8)
	src := m.ID(0, 0)
	var dests []topology.NodeID
	for i := 1; i <= 10; i++ {
		dests = append(dests, topology.NodeID(i))
	}
	plan, err := NewMulticast(3).PlanMulticast(m, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sends) != 4 { // 10 destinations / 3 per path
		t.Fatalf("sends = %d, want 4", len(plan.Sends))
	}
	for _, s := range plan.Sends {
		if len(s.Path.Waypoints) > 3 {
			t.Fatalf("worm carries %d destinations, limit 3", len(s.Path.Waypoints))
		}
	}
}

// TestRunMulticastDelivers executes end to end on the simulator.
func TestRunMulticastDelivers(t *testing.T) {
	m := topology.NewMesh(6, 6, 3)
	src := m.ID(3, 3, 1)
	dests := []topology.NodeID{m.ID(0, 0, 0), m.ID(5, 5, 2), m.ID(1, 4, 2), m.ID(5, 0, 0), src}
	arrivals, err := RunMulticast(m, NewMulticast(2), src, dests, network.DefaultConfig(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 4 { // src excluded
		t.Fatalf("arrivals = %d, want 4", len(arrivals))
	}
	for d, at := range arrivals {
		if at <= 0 {
			t.Errorf("destination %d arrival %v", d, at)
		}
	}
}

// TestMulticastIgnoresDuplicatesAndSource.
func TestMulticastIgnoresDuplicatesAndSource(t *testing.T) {
	m := topology.NewMesh(4, 4)
	src := m.ID(1, 1)
	dests := []topology.NodeID{src, 3, 3, 3, 7}
	plan, err := NewMulticast(0).PlanMulticast(m, src, dests)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range plan.Sends {
		total += len(s.Path.Waypoints)
	}
	if total != 2 {
		t.Fatalf("waypoints = %d, want 2 (dedup + source skip)", total)
	}
}

// TestMulticastRejectsBadInput.
func TestMulticastRejectsBadInput(t *testing.T) {
	m := topology.NewMesh(4, 4)
	if _, err := NewMulticast(0).PlanMulticast(m, 0, []topology.NodeID{99}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := NewMulticast(0).PlanMulticast(topology.NewTorus(4, 4), 0, []topology.NodeID{99}); err == nil {
		t.Error("out-of-range destination accepted on torus")
	}
}
