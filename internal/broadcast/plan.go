// Package broadcast implements the four broadcast algorithms the
// paper compares — Recursive Doubling (RD), Extended Dominating Nodes
// (EDN), Deterministic Broadcast (DB) and Adaptive Broadcast (AB) —
// as planners that emit message-passing schedules, plus the engine
// that executes a schedule on the simulated wormhole network.
//
// A Plan is a set of Sends organised in message-passing steps. The
// engine is dependency-driven, like the paper's path processes: a
// node's step-s send is injected the moment the node holds the
// message, not at a global barrier, and the node's injection ports
// serialise its sends in step order.
package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/topology"
)

// Send is one planned message: a coded path injected by its source
// during a given message-passing step.
type Send struct {
	// Step is the 1-based message-passing step this send belongs to.
	Step int
	// Path is the coded path: source, ordered delivery waypoints.
	Path *core.CodedPath
	// Adaptive marks sends routed by the adaptive (turn-model)
	// routing function instead of dimension-order.
	Adaptive bool
}

// Plan is a complete broadcast schedule for one source.
type Plan struct {
	// Algorithm names the planner that produced the plan.
	Algorithm string
	// Source initiates the broadcast.
	Source topology.NodeID
	// Steps is the number of message-passing steps.
	Steps int
	// Sends lists every planned message, in no particular order.
	Sends []Send

	// bySource groups Sends by injecting node, each group sorted by
	// step — the order the node's ports serialise them in. A plan is
	// executed many times under contended and mixed workloads, so the
	// grouping is computed once (in Validate, or lazily on first
	// Execute) and shared read-only by every execution. Indexed by
	// node id (dense, so a slice beats a map lookup on the delivery
	// hot path); nodes that inject nothing hold nil.
	bySource [][]Send
}

// sendsBySourceStep stable-sorts sends by (source, step); within one
// source this yields the same sequence as grouping in Sends order and
// stable-sorting each group by step. A concrete sort.Interface keeps
// reflect (and its per-sort Swapper allocation) out of the path.
type sendsBySourceStep []Send

func (s sendsBySourceStep) Len() int      { return len(s) }
func (s sendsBySourceStep) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s sendsBySourceStep) Less(i, j int) bool {
	if s[i].Path.Source != s[j].Path.Source {
		return s[i].Path.Source < s[j].Path.Source
	}
	return s[i].Step < s[j].Step
}

// sendsByStep stable-sorts sends by step only, preserving plan order
// within a step — the causal-order walk Validate makes. A concrete
// sort.Interface keeps reflect's Swapper and its typed memmoves out
// of the per-plan path (stable sort output is unique, so the order is
// identical to the sort.SliceStable it replaces). It is the fallback
// for countingSortSends when a plan carries wild step values.
type sendsByStep []Send

func (s sendsByStep) Len() int           { return len(s) }
func (s sendsByStep) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s sendsByStep) Less(i, j int) bool { return s[i].Step < s[j].Step }

// countingSortSends stable-sorts src into dst (same length, distinct
// backing) by the integer key, using a counting scatter: steps and
// node ids are small dense integers, so one O(n+k) pass replaces
// sort.Stable's O(n log² n) symMerge on the per-plan path. Stable
// sort output is unique, so the order is identical to sort.Stable's.
// It reports false — dst untouched — when the key range is too wide
// for counting to pay (only pathological hand-built plans).
func countingSortSends(dst, src []Send, key func(*Send) int) bool {
	if len(src) == 0 {
		return true
	}
	lo, hi := key(&src[0]), key(&src[0])
	for i := 1; i < len(src); i++ {
		k := key(&src[i])
		if k < lo {
			lo = k
		} else if k > hi {
			hi = k
		}
	}
	width := hi - lo + 1
	if width < 0 || width > 8*len(src)+1024 {
		return false
	}
	counts := make([]int, width+1)
	for i := range src {
		counts[key(&src[i])-lo+1]++
	}
	for k := 1; k < len(counts); k++ {
		counts[k] += counts[k-1]
	}
	for i := range src {
		k := key(&src[i]) - lo
		dst[counts[k]] = src[i]
		counts[k]++
	}
	return true
}

func stepKey(s *Send) int   { return s.Step }
func sourceKey(s *Send) int { return int(s.Path.Source) }

// sendIndex returns the per-source step-sorted send grouping,
// building it on first use: one sorted backing array, with the index
// slicing windows out of it. Not safe for concurrent first call;
// executions on one network are single-threaded by design, and
// parallel replications build their own plans.
func (p *Plan) sendIndex() [][]Send {
	if p.bySource == nil {
		// Stable LSD sort by (source, step): scatter by the minor key,
		// then by the major one; fall back to comparison sorting for
		// key ranges counting cannot cover.
		sorted := make([]Send, len(p.Sends))
		tmp := make([]Send, len(p.Sends))
		if !countingSortSends(tmp, p.Sends, stepKey) || !countingSortSends(sorted, tmp, sourceKey) {
			copy(sorted, p.Sends)
			sort.Stable(sendsBySourceStep(sorted))
		}
		maxSrc := p.Source
		for i := range sorted {
			if s := sorted[i].Path.Source; s > maxSrc {
				maxSrc = s
			}
		}
		idx := make([][]Send, int(maxSrc)+1)
		for lo := 0; lo < len(sorted); {
			hi := lo + 1
			src := sorted[lo].Path.Source
			for hi < len(sorted) && sorted[hi].Path.Source == src {
				hi++
			}
			idx[src] = sorted[lo:hi:hi]
			lo = hi
		}
		p.bySource = idx
	}
	return p.bySource
}

// Algorithm plans broadcasts on a mesh.
type Algorithm interface {
	// Name returns the paper's abbreviation: "RD", "EDN", "DB", "AB".
	Name() string
	// Ports returns the router injection-port model the algorithm
	// assumes (1 for one-port, 3 for EDN's three-port router).
	Ports() int
	// Plan returns the broadcast schedule for source src on mesh m.
	Plan(m *topology.Mesh, src topology.NodeID) (*Plan, error)
}

// Validate checks the plan's structural and causal sanity:
// every coded path is well-formed, every send's source already holds
// the message strictly before the send's step, and after the final
// step every node of the mesh holds the message.
func (p *Plan) Validate(m *topology.Mesh) error {
	if p.Source < 0 || int(p.Source) >= m.Nodes() {
		return fmt.Errorf("broadcast: source %d out of range", p.Source)
	}
	informedAt := make([]int, m.Nodes())
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[p.Source] = 0

	sends := make([]Send, len(p.Sends))
	if !countingSortSends(sends, p.Sends, stepKey) {
		copy(sends, p.Sends)
		sort.Stable(sendsByStep(sends))
	}

	for _, s := range sends {
		if s.Step < 1 || s.Step > p.Steps {
			return fmt.Errorf("broadcast: %s send at step %d outside [1,%d]", p.Algorithm, s.Step, p.Steps)
		}
		if err := s.Path.Validate(m); err != nil {
			return fmt.Errorf("broadcast: %s step %d: %w", p.Algorithm, s.Step, err)
		}
		src := s.Path.Source
		at := informedAt[src]
		if at < 0 {
			return fmt.Errorf("broadcast: %s step %d: source %d never receives the message", p.Algorithm, s.Step, src)
		}
		if at >= s.Step {
			return fmt.Errorf("broadcast: %s step %d: source %d only informed at step %d", p.Algorithm, s.Step, src, at)
		}
		for _, w := range s.Path.Waypoints {
			if informedAt[w] < 0 {
				informedAt[w] = s.Step
			}
		}
	}
	for id, at := range informedAt {
		if at < 0 {
			return fmt.Errorf("broadcast: %s plan from %d never covers node %d", p.Algorithm, p.Source, id)
		}
	}
	// A validated plan is about to be executed, typically many times;
	// build the execution index once while still outside any hot loop.
	p.sendIndex()
	return nil
}

// MessageCount returns the number of worms the plan injects — the
// paper's "number of messages" resource metric.
func (p *Plan) MessageCount() int { return len(p.Sends) }

// TotalPathNodes returns the total number of delivery waypoints across
// all sends, a proxy for total path length / channel occupancy.
func (p *Plan) TotalPathNodes() int {
	total := 0
	for _, s := range p.Sends {
		total += len(s.Path.Waypoints)
	}
	return total
}

// MaxSendsPerNodeStep returns the maximum number of sends any single
// node injects within one step — it must not exceed the algorithm's
// port model for the step count to be honest.
func (p *Plan) MaxSendsPerNodeStep() int {
	type key struct {
		node topology.NodeID
		step int
	}
	counts := make(map[key]int)
	max := 0
	for _, s := range p.Sends {
		k := key{s.Path.Source, s.Step}
		counts[k]++
		if counts[k] > max {
			max = counts[k]
		}
	}
	return max
}
