package broadcast

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// paperMeshes are the 3D mesh sizes the paper's evaluation uses.
var paperMeshes = [][]int{
	{4, 4, 4},    // 64
	{4, 4, 16},   // 256
	{8, 8, 8},    // 512
	{8, 8, 16},   // 1024
	{10, 10, 10}, // 1000 (Fig. 1)
	{16, 16, 8},  // 2048 (Fig. 4)
	{16, 16, 16}, // 4096
}

// oddMeshes stress planners with non-power, truncated and degenerate
// extents.
var oddMeshes = [][]int{
	{2, 2, 2}, {3, 3, 3}, {5, 7, 3}, {6, 2, 9},
	{1, 4, 4}, {4, 1, 4}, {4, 4, 1}, {1, 1, 8}, {7, 1, 1},
	{3, 5, 2}, {9, 9, 9}, {2, 8, 5},
}

func allAlgorithms() []Algorithm {
	return []Algorithm{NewRD(), NewEDN(), NewDB(), NewAB()}
}

func sourcesFor(m *topology.Mesh, seed uint64) []topology.NodeID {
	srcs := []topology.NodeID{0, topology.NodeID(m.Nodes() - 1), topology.NodeID(m.Nodes() / 2)}
	rng := sim.NewRNG(seed, 7)
	for i := 0; i < 3; i++ {
		srcs = append(srcs, topology.NodeID(rng.Intn(m.Nodes())))
	}
	return srcs
}

// TestPlansValidate checks that every algorithm produces a valid plan
// (full coverage, causal step order) from corner, center and random
// sources on every paper mesh and a battery of odd-shaped meshes.
func TestPlansValidate(t *testing.T) {
	shapes := append(append([][]int{}, paperMeshes...), oddMeshes...)
	for _, dims := range shapes {
		m := topology.NewMesh(dims...)
		for _, algo := range allAlgorithms() {
			for _, src := range sourcesFor(m, 1) {
				plan, err := algo.Plan(m, src)
				if err != nil {
					t.Fatalf("%s on %s from %d: %v", algo.Name(), m.Name(), src, err)
				}
				if err := plan.Validate(m); err != nil {
					t.Errorf("%s on %s from %d: %v", algo.Name(), m.Name(), src, err)
				}
			}
		}
	}
}

// TestPlanStepCounts pins the published step counts: RD's ceil(log2 N)
// on power-of-two meshes, EDN's k+m+4, DB's 4 and AB's 3.
func TestPlanStepCounts(t *testing.T) {
	cases := []struct {
		dims []int
		rd   int
		edn  int
	}{
		{[]int{4, 4, 4}, 6, 4},
		{[]int{4, 4, 16}, 8, 6},
		{[]int{8, 8, 8}, 9, 6},
		{[]int{8, 8, 16}, 10, 7},
		{[]int{16, 16, 8}, 11, 7},
		{[]int{16, 16, 16}, 12, 8},
	}
	for _, tc := range cases {
		m := topology.NewMesh(tc.dims...)
		if got := NewRD().StepsFor(m); got != tc.rd {
			t.Errorf("RD steps on %s = %d, want %d", m.Name(), got, tc.rd)
		}
		if got := NewEDN().StepsFor(m); got != tc.edn {
			t.Errorf("EDN steps on %s = %d, want %d", m.Name(), got, tc.edn)
		}
		if got := NewDB().StepsFor(m); got != 4 {
			t.Errorf("DB steps on %s = %d, want 4", m.Name(), got)
		}
		if got := NewAB().StepsFor(m); got != 3 {
			t.Errorf("AB steps on %s = %d, want 3", m.Name(), got)
		}
	}
}

// TestPlanPortDiscipline verifies that no plan injects more
// simultaneous sends per node per step than its router model allows.
func TestPlanPortDiscipline(t *testing.T) {
	for _, dims := range paperMeshes {
		m := topology.NewMesh(dims...)
		for _, algo := range allAlgorithms() {
			limit := algo.Ports()
			if algo.Name() == "AB" {
				// AB serialises its corner relays on one port within
				// a step; up to two injections per labelled step.
				limit = 2
			}
			for _, src := range sourcesFor(m, 2) {
				plan, err := algo.Plan(m, src)
				if err != nil {
					t.Fatalf("%s: %v", algo.Name(), err)
				}
				if got := plan.MaxSendsPerNodeStep(); got > limit {
					t.Errorf("%s on %s from %d: %d sends per node-step, limit %d",
						algo.Name(), m.Name(), src, got, limit)
				}
			}
		}
	}
}

// TestExecuteCoversEveryNode runs each algorithm end to end on the
// simulator and checks every node receives the message exactly once,
// with sane arrival times.
func TestExecuteCoversEveryNode(t *testing.T) {
	for _, dims := range [][]int{{4, 4, 4}, {8, 8, 8}, {5, 7, 3}, {4, 4, 16}} {
		m := topology.NewMesh(dims...)
		for _, algo := range allAlgorithms() {
			for _, src := range sourcesFor(m, 3)[:4] {
				r, err := RunSingle(m, algo, src, network.DefaultConfig(), 64)
				if err != nil {
					t.Fatalf("%s on %s from %d: %v", algo.Name(), m.Name(), src, err)
				}
				if !r.Done {
					t.Fatalf("%s on %s from %d: incomplete", algo.Name(), m.Name(), src)
				}
				for id, at := range r.Arrival {
					if at < 0 {
						t.Errorf("%s on %s: node %d never received", algo.Name(), m.Name(), id)
					}
					if topology.NodeID(id) != src && at <= r.Start {
						t.Errorf("%s on %s: node %d arrival %v not after start", algo.Name(), m.Name(), id, at)
					}
				}
				if r.Latency() <= 0 {
					t.Errorf("%s on %s: non-positive latency %v", algo.Name(), m.Name(), r.Latency())
				}
			}
		}
	}
}
