package broadcast

import (
	"reflect"
	"sync"

	"repro/internal/topology"
)

// Plan memoization. Planning is deterministic — the same algorithm on
// the same mesh shape from the same source always yields the same
// plan — and plans are read-only once validated, so every layer that
// runs repeated studies over one substrate (a load sweep, a
// multi-seed CV experiment, the saturation benchmark) used to re-plan
// and re-validate identical schedules on every run. At saturation the
// planning layer was close to half of a study's allocation volume.
//
// The cache key is the mesh's name — which fully encodes shape: kind
// (mesh/torus) and per-dimension extents, the only topology inputs a
// planner sees — plus the algorithm VALUE (not just its name: a
// parameterised algorithm like Multicast{MaxPerPath: 2} must not
// share entries with Multicast{MaxPerPath: 4}) and the source.
// Cached plans are published with their send index prebuilt, so
// concurrent studies share them without synchronising.

// planCacheMax bounds the cache footprint. On overflow the whole map
// is dropped and re-warms — steady-state workloads cycle through a
// small working set of (shape, algorithm, source) triples, so the
// reset is rare and cheap compared to LRU bookkeeping.
const planCacheMax = 1024

type planKey struct {
	topo string
	algo Algorithm
	src  topology.NodeID
}

var (
	planMu    sync.Mutex
	planCache map[planKey]*Plan
)

// PlanCached returns algo's validated plan from src on m, memoized
// process-wide. Equivalent to algo.Plan + Plan.Validate, including
// errors (failures are never cached). Meshes at or above
// StreamThreshold bypass the cache: their plans are large, and the
// million-node studies run once per substrate anyway.
func PlanCached(m *topology.Mesh, algo Algorithm, src topology.NodeID) (*Plan, error) {
	if m.Nodes() >= StreamThreshold || !reflect.TypeOf(algo).Comparable() {
		return planFresh(m, algo, src)
	}
	key := planKey{topo: m.Name(), algo: algo, src: src}
	planMu.Lock()
	p, ok := planCache[key]
	planMu.Unlock()
	if ok {
		return p, nil
	}
	p, err := planFresh(m, algo, src)
	if err != nil {
		return nil, err
	}
	p.sendIndex() // prebuild: cached plans are shared read-only
	planMu.Lock()
	if len(planCache) >= planCacheMax {
		planCache = nil
	}
	if planCache == nil {
		planCache = make(map[planKey]*Plan)
	}
	if prev, ok := planCache[key]; ok {
		p = prev // lost a race; keep the published plan canonical
	} else {
		planCache[key] = p
	}
	planMu.Unlock()
	return p, nil
}

func planFresh(m *topology.Mesh, algo Algorithm, src topology.NodeID) (*Plan, error) {
	p, err := algo.Plan(m, src)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	return p, nil
}
