package broadcast

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestPlannersOnRandomMeshes property-checks every planner over
// random 3D mesh shapes and random sources: the plan must validate
// (full coverage, causal steps) without panicking.
func TestPlannersOnRandomMeshes(t *testing.T) {
	rng := sim.NewRNG(71, 3)
	f := func(a, b, c uint8, srcPick uint16) bool {
		dims := []int{int(a%8) + 1, int(b%8) + 1, int(c%8) + 1}
		m := topology.NewMesh(dims...)
		src := topology.NodeID(int(srcPick) % m.Nodes())
		for _, algo := range allAlgorithms() {
			plan, err := algo.Plan(m, src)
			if err != nil {
				return false
			}
			if err := plan.Validate(m); err != nil {
				return false
			}
			if plan.Steps < 1 && m.Nodes() > 1 {
				return false
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPlannersOn2DMeshes: DB and AB are defined for 2D as well.
func TestPlannersOn2DMeshes(t *testing.T) {
	f := func(a, b uint8, srcPick uint16) bool {
		dims := []int{int(a%10) + 1, int(b%10) + 1}
		m := topology.NewMesh(dims...)
		src := topology.NodeID(int(srcPick) % m.Nodes())
		for _, algo := range []Algorithm{NewRD(), NewDB(), NewAB()} {
			plan, err := algo.Plan(m, src)
			if err != nil {
				return false
			}
			if err := plan.Validate(m); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestABPathsAreWestFirstConforming walks every AB coded path and
// checks the turn discipline the deadlock-freedom argument needs:
// within a worm, no west (-x) hop after a non-west hop.
func TestABPathsAreWestFirstConforming(t *testing.T) {
	for _, dims := range [][]int{{8, 8, 8}, {5, 7, 3}, {8, 8}, {16, 16, 8}} {
		m := topology.NewMesh(dims...)
		wf := routing.NewWestFirst(m)
		rng := sim.NewRNG(5, 9)
		for rep := 0; rep < 10; rep++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			plan, err := NewAB().Plan(m, src)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range plan.Sends {
				cur := s.Path.Source
				leftWest := false
				for _, wp := range s.Path.Waypoints {
					// Expand the segment with the actual router.
					path := routing.Path(wf, m, cur, wp)
					for i := 1; i < len(path); i++ {
						west := m.CoordAxis(path[i], 0) < m.CoordAxis(path[i-1], 0)
						if west && leftWest {
							t.Fatalf("AB on %s from %d: worm %v turns back west at %v",
								m.Name(), src, s.Path.Waypoints, m.Coord(path[i]))
						}
						if !west {
							leftWest = true
						}
					}
					cur = wp
				}
			}
		}
	}
}

// TestDBPathsSingleOrientationPerFace: all DB face floods of one mesh
// use identical waypoint sequences per face regardless of source —
// the property that keeps concurrent DB broadcasts cycle-free.
func TestDBPathsSingleOrientationPerFace(t *testing.T) {
	m := topology.NewMesh(6, 5, 4)
	perFace := map[int]string{}
	rng := sim.NewRNG(31, 17)
	for rep := 0; rep < 20; rep++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		plan, err := NewDB().Plan(m, src)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range plan.Sends {
			// Face floods are the sends with more than X waypoints
			// launched from a corner.
			if len(s.Path.Waypoints) < m.Dim(1)*m.Dim(2)-1 {
				continue
			}
			face := m.CoordAxis(s.Path.Source, 0)
			sig := ""
			for _, w := range s.Path.Waypoints {
				sig += string(rune(w)) // cheap stable signature
			}
			if prev, ok := perFace[face]; ok && prev != sig {
				t.Fatalf("face x=%d flooded with two different paths", face)
			}
			perFace[face] = sig
		}
	}
	if len(perFace) != 2 {
		t.Fatalf("observed %d flooded faces, want 2", len(perFace))
	}
}

// TestEngineRespectsDependencies: no node's outgoing worm is injected
// before the node itself has received the message.
func TestEngineRespectsDependencies(t *testing.T) {
	m := topology.NewMesh(6, 6, 6)
	for _, algo := range allAlgorithms() {
		r, err := RunSingle(m, algo, m.ID(3, 2, 5), network.DefaultConfig(), 64)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		// Arrival times must respect plan step order loosely: a node
		// informed at step s cannot arrive before one Ts per step.
		for id, at := range r.Arrival {
			if topology.NodeID(id) == r.Plan.Source {
				continue
			}
			if at < r.Start+1.5 {
				t.Fatalf("%s: node %d arrived %.3f µs after start, before one startup", algo.Name(), id, at-r.Start)
			}
		}
	}
}

// TestSameSeedSameBroadcast: RunSingle is deterministic.
func TestSameSeedSameBroadcast(t *testing.T) {
	m := topology.NewMesh(5, 5, 5)
	for _, algo := range allAlgorithms() {
		a, err := RunSingle(m, algo, 7, network.DefaultConfig(), 64)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunSingle(m, algo, 7, network.DefaultConfig(), 64)
		if err != nil {
			t.Fatal(err)
		}
		if a.Finish != b.Finish {
			t.Fatalf("%s: nondeterministic finish %v vs %v", algo.Name(), a.Finish, b.Finish)
		}
		for i := range a.Arrival {
			if a.Arrival[i] != b.Arrival[i] {
				t.Fatalf("%s: nondeterministic arrival at node %d", algo.Name(), i)
			}
		}
	}
}
