package broadcast

import (
	"math"

	"repro/internal/core"
	"repro/internal/topology"
)

// RD is the Recursive Doubling broadcast of Barnett et al. [2]: the
// mesh is broadcast dimension by dimension; within each line the node
// holding the message repeatedly halves its partition and sends one
// unicast to the node at the same relative position in the other
// half. It needs ceil(log2 N) message-passing steps on an N-node mesh
// and assumes a one-port router with dimension-order routing.
type RD struct{}

// NewRD returns the Recursive Doubling planner.
func NewRD() RD { return RD{} }

// Name implements Algorithm.
func (RD) Name() string { return "RD" }

// Ports implements Algorithm: RD is a one-port algorithm.
func (RD) Ports() int { return 1 }

// StepsFor returns the number of message-passing steps RD uses on m:
// the sum over dimensions of ceil(log2 extent).
func (RD) StepsFor(m *topology.Mesh) int {
	total := 0
	for d := 0; d < m.NDims(); d++ {
		total += ceilLog2(m.Dim(d))
	}
	return total
}

func ceilLog2(k int) int {
	if k <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(k))))
}

// Plan implements Algorithm.
func (rd RD) Plan(m *topology.Mesh, src topology.NodeID) (*Plan, error) {
	p := &Plan{Algorithm: rd.Name(), Source: src, Steps: rd.StepsFor(m)}
	// RD is pure unicast doubling: exactly one send informs each of
	// the other N-1 nodes.
	p.Sends = make([]Send, 0, m.Nodes()-1)

	// informed tracks the coordinate sets already holding the
	// message; dimension phases expand it one dimension at a time.
	informed := []topology.NodeID{src}
	stepBase := 1
	for d := 0; d < m.NDims(); d++ {
		rounds := ceilLog2(m.Dim(d))
		if rounds == 0 {
			continue
		}
		next := make([]topology.NodeID, 0, len(informed)*m.Dim(d))
		for _, holder := range informed {
			line := m.Line(holder, d)
			pos := m.CoordAxis(holder, d)
			next = rd.halveLine(p, line, 0, len(line), pos, stepBase, next)
		}
		informed = next
		stepBase += rounds
	}
	return p, nil
}

// halveLine recursively plans the doubling on line[lo:hi] with the
// holder at index pos, starting at step. It appends every line node
// that ends up holding the message (the whole segment) to out — one
// shared accumulator rather than a slice per recursion level.
func (rd RD) halveLine(p *Plan, line []topology.NodeID, lo, hi, pos, step int, out []topology.NodeID) []topology.NodeID {
	if hi-lo <= 1 {
		return append(out, line[pos])
	}
	mid := lo + (hi-lo+1)/2 // lower half is the ceil half
	var peer int
	if pos < mid {
		peer = mid + (pos - lo)
		if peer >= hi {
			peer = hi - 1
		}
	} else {
		peer = lo + (pos - mid)
		if peer >= mid {
			peer = mid - 1
		}
	}
	p.Sends = append(p.Sends, Send{
		Step: step,
		Path: core.ChainPath(line[pos], line[peer]),
	})
	if pos < mid {
		out = rd.halveLine(p, line, lo, mid, pos, step+1, out)
		out = rd.halveLine(p, line, mid, hi, peer, step+1, out)
	} else {
		out = rd.halveLine(p, line, mid, hi, pos, step+1, out)
		out = rd.halveLine(p, line, lo, mid, peer, step+1, out)
	}
	return out
}
