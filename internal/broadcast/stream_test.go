package broadcast

import (
	"math"
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// runPlanned executes one planned broadcast on a fresh network and
// returns its result.
func runPlanned(t *testing.T, m *topology.Mesh, algo Algorithm, stream bool) *Result {
	t.Helper()
	plan, err := algo.Plan(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.Ports = algo.Ports()
	s := sim.New()
	net := network.MustNew(s, m, cfg)
	r, err := Execute(net, plan, Options{Length: 32, Stream: stream})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !r.Done {
		t.Fatalf("%s stream=%v: broadcast stalled at %d informed", algo.Name(), stream, r.Informed)
	}
	return r
}

// TestStreamingMatchesRetained pins the streaming accumulators
// against the retained arrays on every algorithm: identical coverage
// and completion, and destination mean/CV equal up to floating-point
// summation order (streaming accumulates in arrival order, retained
// in node-ID order — same multiset of samples).
func TestStreamingMatchesRetained(t *testing.T) {
	m := topology.NewMesh(5, 4, 3)
	for _, algo := range []Algorithm{NewRD(), NewEDN(), NewDB(), NewAB()} {
		ret := runPlanned(t, m, algo, false)
		str := runPlanned(t, m, algo, true)
		if ret.Streaming() || !str.Streaming() {
			t.Fatalf("%s: Streaming() flags wrong (retained %v, streaming %v)", algo.Name(), ret.Streaming(), str.Streaming())
		}
		if ret.Informed != str.Informed || ret.DestinationCount() != str.DestinationCount() {
			t.Fatalf("%s: coverage differs: retained %d/%d, streaming %d/%d",
				algo.Name(), ret.Informed, ret.DestinationCount(), str.Informed, str.DestinationCount())
		}
		if ret.Finish != str.Finish || ret.Start != str.Start {
			t.Fatalf("%s: timing differs: retained [%v,%v], streaming [%v,%v]",
				algo.Name(), ret.Start, ret.Finish, str.Start, str.Finish)
		}
		closeEnough := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		}
		if !closeEnough(ret.DestinationMean(), str.DestinationMean()) {
			t.Fatalf("%s: mean differs: retained %v, streaming %v", algo.Name(), ret.DestinationMean(), str.DestinationMean())
		}
		if !closeEnough(ret.DestinationCV(), str.DestinationCV()) {
			t.Fatalf("%s: CV differs: retained %v, streaming %v", algo.Name(), ret.DestinationCV(), str.DestinationCV())
		}
	}
}

// TestStreamingResultGuards pins the streaming result's contract:
// per-destination arrays are gone, and the accessors that need them
// say so loudly instead of returning garbage.
func TestStreamingResultGuards(t *testing.T) {
	m := topology.NewMesh(4, 4)
	r := runPlanned(t, m, NewDB(), true)
	if r.Arrival != nil {
		t.Fatal("streaming result retains the arrival array")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a streaming result did not panic", name)
			}
		}()
		f()
	}
	mustPanic("DestinationLatencies", func() { r.DestinationLatencies() })
	mustPanic("StepBreakdown", func() { StepBreakdown(m, r) })
}

// TestRunSingleStreamsAtThreshold pins the auto-streaming switchover:
// below StreamThreshold RunSingle retains per-destination arrays,
// keeping every golden-pinned scale bit-exactly on the historical
// path.
func TestRunSingleStreamsAtThreshold(t *testing.T) {
	m := topology.NewMesh(8, 4)
	r, err := RunSingle(m, NewDB(), 0, network.DefaultConfig(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Streaming() {
		t.Fatalf("RunSingle streams below the threshold (%d nodes < %d)", m.Nodes(), StreamThreshold)
	}
	if m.Nodes() >= StreamThreshold {
		t.Fatalf("test mesh unexpectedly at scale: %d nodes", m.Nodes())
	}
}
