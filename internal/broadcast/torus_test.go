package broadcast

import (
	"testing"

	"repro/internal/network"
	"repro/internal/topology"
)

// paperAlgos returns the four planners; EDN is skipped by callers on
// non-3D shapes.
func paperAlgos() []Algorithm {
	return []Algorithm{NewRD(), NewEDN(), NewDB(), NewAB()}
}

// TestTorusPlansValidateAndCover lifts the old Wrap() rejections: on
// tori every algorithm's plan must validate (causal sanity + full
// coverage) from every source.
func TestTorusPlansValidateAndCover(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {3, 3, 3}, {4, 4, 4}, {5, 3, 4}, {2, 2, 4}} {
		m := topology.NewTorus(dims...)
		for _, algo := range paperAlgos() {
			if algo.Name() == "EDN" && m.NDims() != 3 {
				continue
			}
			for src := 0; src < m.Nodes(); src++ {
				plan, err := algo.Plan(m, topology.NodeID(src))
				if err != nil {
					t.Fatalf("%s on %s src %d: %v", algo.Name(), m.Name(), src, err)
				}
				if err := plan.Validate(m); err != nil {
					t.Fatalf("%s on %s src %d: %v", algo.Name(), m.Name(), src, err)
				}
			}
		}
	}
}

// TestTorusPlansShareCanonicalOrientation pins the deadlock-critical
// design decision recorded in frame.go: the coded paths of DB and AB
// use ONE canonical unwrap frame for every source, so concurrent
// broadcasts share identical face-flood paths exactly as on the mesh.
// Structurally this means the torus plan from any source equals the
// plan the mesh construction produces on the unwrapped twin.
func TestTorusPlansShareCanonicalOrientation(t *testing.T) {
	m := topology.NewTorus(4, 4, 4)
	twin := m.Unwrapped()
	for _, algo := range []Algorithm{NewDB(), NewAB()} {
		for _, src := range []topology.NodeID{0, 17, 42, 63} {
			torusPlan, err := algo.Plan(m, src)
			if err != nil {
				t.Fatal(err)
			}
			meshPlan, err := algo.Plan(twin, src)
			if err != nil {
				t.Fatal(err)
			}
			if len(torusPlan.Sends) != len(meshPlan.Sends) {
				t.Fatalf("%s src %d: %d sends on torus, %d on mesh twin",
					algo.Name(), src, len(torusPlan.Sends), len(meshPlan.Sends))
			}
			for i := range torusPlan.Sends {
				ts, ms := torusPlan.Sends[i], meshPlan.Sends[i]
				if ts.Step != ms.Step || ts.Path.Source != ms.Path.Source ||
					len(ts.Path.Waypoints) != len(ms.Path.Waypoints) {
					t.Fatalf("%s src %d send %d differs between torus and mesh twin", algo.Name(), src, i)
				}
				for j := range ts.Path.Waypoints {
					if ts.Path.Waypoints[j] != ms.Path.Waypoints[j] {
						t.Fatalf("%s src %d send %d waypoint %d differs", algo.Name(), src, i, j)
					}
				}
			}
		}
	}
}

// TestRemapPlanTranslates exercises the non-identity frame path the
// canonical anchor never takes: a shifted frame must translate every
// node and keep the plan valid on the torus.
func TestRemapPlanTranslates(t *testing.T) {
	m := topology.NewTorus(4, 4)
	f := topology.NewFrame(m, m.ID(2, 3))
	virt := f.Virtual()
	src := f.ToVirtual(m.ID(2, 3))
	p, err := DB{}.planMesh(virt, src)
	if err != nil {
		t.Fatal(err)
	}
	remapped := remapPlan(p, f)
	if remapped.Source != m.ID(2, 3) {
		t.Errorf("source %d, want %d", remapped.Source, m.ID(2, 3))
	}
	if err := remapped.Validate(m); err != nil {
		t.Fatal(err)
	}
}

// TestRunSingleOnTorus runs every algorithm end to end on a torus
// network with the torus VC default and checks the broadcast
// completes — the "no baseline-only fallback" acceptance criterion at
// the engine level.
func TestRunSingleOnTorus(t *testing.T) {
	m := topology.NewTorus(4, 4, 4)
	cfg := network.DefaultConfig()
	cfg.VCs = 2
	mesh := topology.NewMesh(4, 4, 4)
	for _, algo := range paperAlgos() {
		for _, src := range []topology.NodeID{0, 21, 63} {
			r, err := RunSingle(m, algo, src, cfg, 64)
			if err != nil {
				t.Fatalf("%s from %d: %v", algo.Name(), src, err)
			}
			// The wraparound halves worst-case distances, so no torus
			// broadcast should be slower than its mesh counterpart by
			// more than scheduling noise; check the latency is sane and
			// positive rather than pinning exact numbers.
			if r.Latency() <= 0 {
				t.Errorf("%s from %d: non-positive latency %v", algo.Name(), src, r.Latency())
			}
			rm, err := RunSingle(mesh, algo, src, network.DefaultConfig(), 64)
			if err != nil {
				t.Fatal(err)
			}
			if r.Latency() > 2*rm.Latency() {
				t.Errorf("%s from %d: torus latency %v more than doubles mesh %v",
					algo.Name(), src, r.Latency(), rm.Latency())
			}
		}
	}
}

// TestMulticastOnTorus delivers to a scattered subset over wraparound
// routes.
func TestMulticastOnTorus(t *testing.T) {
	m := topology.NewTorus(4, 4)
	cfg := network.DefaultConfig()
	cfg.VCs = 2
	dests := []topology.NodeID{m.ID(3, 3), m.ID(0, 2), m.ID(2, 0), m.ID(1, 3)}
	arr, err := RunMulticast(m, NewMulticast(2), m.ID(1, 1), dests, cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != len(dests) {
		t.Fatalf("%d arrivals, want %d", len(arr), len(dests))
	}
	for d, at := range arr {
		if at <= 0 {
			t.Errorf("destination %d arrival %v", d, at)
		}
	}
}
