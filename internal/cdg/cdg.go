// Package cdg builds the channel dependency graph of a routing
// function over a topology and checks it for cycles — Dally & Seitz's
// classical deadlock-freedom criterion for wormhole routing. The
// broadcast study leans on deadlock-free substrates (dimension-order,
// west-first); this package lets the test suite verify that property
// mechanically instead of by citation.
//
// Selectors that implement routing.VCPolicy (the dateline routers on
// tori) are analysed at virtual-channel-class granularity: the graph
// node for a hop is channel·classes + class, so a wraparound ring
// whose physical channels form a cycle is still acyclic when the
// dateline splits it across two classes. Class-level acyclicity
// implies lane-level deadlock freedom for the network's partitioned
// lanes: lanes of one class on one physical channel are
// interchangeable, and a worm never requests the physical channel it
// is holding.
package cdg

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Graph is a channel dependency graph: nodes are directed channels,
// and an edge c1 -> c2 means some routed message can hold c1 while
// requesting c2.
type Graph struct {
	edges map[topology.ChannelID]map[topology.ChannelID]bool
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{edges: make(map[topology.ChannelID]map[topology.ChannelID]bool)}
}

// AddDependency records that a message can hold from while asking for to.
func (g *Graph) AddDependency(from, to topology.ChannelID) {
	m, ok := g.edges[from]
	if !ok {
		m = make(map[topology.ChannelID]bool)
		g.edges[from] = m
	}
	m[to] = true
}

// Edges returns the number of dependencies recorded.
func (g *Graph) Edges() int {
	n := 0
	for _, m := range g.edges {
		n += len(m)
	}
	return n
}

// Build explores every (source, destination) pair under the selector,
// following every adaptive branch, and records the channel
// dependencies a message could create. When the selector carries a
// routing.VCPolicy the dependencies are tracked per (channel, VC
// class); otherwise per physical channel. It is exponential in path
// length in the worst case, so call it on small meshes (tests use
// 4x4 and 3x3x3).
func Build(m *topology.Mesh, sel routing.Selector) *Graph {
	g := NewGraph()
	n := m.Nodes()
	pol, _ := sel.(routing.VCPolicy)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			explore(m, sel, pol, g, topology.NodeID(src), topology.NodeID(dst))
		}
	}
	return g
}

// explore walks all adaptive branches from src to dst, adding a
// dependency for every consecutive channel pair. Visited (node,
// holding-channel) states are pruned; since routing is minimal the
// walk terminates.
func explore(m *topology.Mesh, sel routing.Selector, pol routing.VCPolicy, g *Graph, src, dst topology.NodeID) {
	type state struct {
		cur     topology.NodeID
		holding topology.ChannelID
	}
	seen := make(map[state]bool)
	var walk func(cur topology.NodeID, holding topology.ChannelID)
	walk = func(cur topology.NodeID, holding topology.ChannelID) {
		if cur == dst {
			return
		}
		st := state{cur, holding}
		if seen[st] {
			return
		}
		seen[st] = true
		for _, next := range sel.NextHops(cur, dst) {
			ch := m.Channel(cur, next)
			if ch == topology.InvalidChannel {
				panic(fmt.Sprintf("cdg: %s proposed non-adjacent hop %d -> %d", sel.Name(), cur, next))
			}
			if pol != nil {
				// Virtual-channel-class granularity: one graph node
				// per (physical channel, class).
				ch = ch*topology.ChannelID(pol.VCClasses()) + topology.ChannelID(pol.VCClass(cur, next, dst))
			}
			if holding != topology.InvalidChannel {
				g.AddDependency(holding, ch)
			}
			walk(next, ch)
		}
	}
	walk(src, topology.InvalidChannel)
}

// FindCycle returns a cycle in the dependency graph as a channel
// sequence (first == last), or nil if the graph is acyclic — i.e. the
// routing function is deadlock-free by the Dally-Seitz criterion.
func (g *Graph) FindCycle() []topology.ChannelID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[topology.ChannelID]int)
	parent := make(map[topology.ChannelID]topology.ChannelID)

	var cycleStart, cycleEnd topology.ChannelID
	found := false

	var dfs func(c topology.ChannelID) bool
	dfs = func(c topology.ChannelID) bool {
		color[c] = grey
		for next := range g.edges[c] {
			switch color[next] {
			case white:
				parent[next] = c
				if dfs(next) {
					return true
				}
			case grey:
				cycleStart, cycleEnd = next, c
				found = true
				return true
			}
		}
		color[c] = black
		return false
	}

	for c := range g.edges {
		if color[c] == white && dfs(c) {
			break
		}
	}
	if !found {
		return nil
	}
	cycle := []topology.ChannelID{cycleStart}
	for c := cycleEnd; c != cycleStart; c = parent[c] {
		cycle = append(cycle, c)
	}
	cycle = append(cycle, cycleStart)
	// Reverse into forward order.
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}

// DeadlockFree reports whether the routing function's channel
// dependency graph over m is acyclic.
func DeadlockFree(m *topology.Mesh, sel routing.Selector) bool {
	return Build(m, sel).FindCycle() == nil
}
