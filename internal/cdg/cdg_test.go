package cdg

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestDORIsDeadlockFree(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {3, 3, 3}, {5, 2}} {
		m := topology.NewMesh(dims...)
		if !DeadlockFree(m, routing.NewDOR(m)) {
			t.Errorf("DOR has a dependency cycle on %s", m.Name())
		}
	}
}

func TestWestFirstIsDeadlockFree(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {3, 3, 3}} {
		m := topology.NewMesh(dims...)
		if !DeadlockFree(m, routing.NewWestFirst(m)) {
			t.Errorf("west-first has a dependency cycle on %s", m.Name())
		}
	}
}

func TestOddEvenIsDeadlockFree(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {5, 4}, {3, 3, 2}} {
		m := topology.NewMesh(dims...)
		if !DeadlockFree(m, routing.NewOddEven(m)) {
			t.Errorf("odd-even has a dependency cycle on %s", m.Name())
		}
	}
}

// fullyAdaptive is a deliberately deadlock-prone minimal routing
// function: every profitable direction is always allowed. Dally &
// Seitz's criterion must reject it on any mesh with a 2D sub-plane of
// extent >= 2, because unrestricted turns close dependency cycles.
type fullyAdaptive struct {
	m *topology.Mesh
}

func (r fullyAdaptive) Name() string { return "fully-adaptive" }

func (r fullyAdaptive) NextHops(cur, dst topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for d := 0; d < r.m.NDims(); d++ {
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		coord := r.m.Coord(cur)
		if dc > cc {
			coord[d]++
		} else {
			coord[d]--
		}
		out = append(out, r.m.ID(coord...))
	}
	return out
}

func TestFullyAdaptiveHasCycle(t *testing.T) {
	m := topology.NewMesh(3, 3)
	g := Build(m, fullyAdaptive{m})
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("unrestricted minimal adaptive routing reported deadlock-free")
	}
	if len(cycle) < 3 {
		t.Fatalf("cycle too short: %v", cycle)
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("cycle not closed: %v", cycle)
	}
	// Every consecutive pair must be a recorded dependency.
	for i := 0; i+1 < len(cycle); i++ {
		if !g.edges[cycle[i]][cycle[i+1]] {
			t.Fatalf("cycle edge %d->%d not in graph", cycle[i], cycle[i+1])
		}
	}
}

func TestGraphEdgeCounting(t *testing.T) {
	g := NewGraph()
	g.AddDependency(1, 2)
	g.AddDependency(1, 2) // duplicate
	g.AddDependency(2, 3)
	if g.Edges() != 2 {
		t.Fatalf("edges = %d, want 2", g.Edges())
	}
	if g.FindCycle() != nil {
		t.Fatal("acyclic graph reported a cycle")
	}
	g.AddDependency(3, 1)
	if g.FindCycle() == nil {
		t.Fatal("3-cycle not found")
	}
}

func TestDependencyCountsGrowWithAdaptivity(t *testing.T) {
	m := topology.NewMesh(4, 4)
	dor := Build(m, routing.NewDOR(m)).Edges()
	wf := Build(m, routing.NewWestFirst(m)).Edges()
	if wf <= dor {
		t.Errorf("west-first dependencies (%d) not above DOR (%d)", wf, dor)
	}
}
