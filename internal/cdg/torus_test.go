package cdg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/topology"
)

// randomDims draws 1–3 dimensions of extent 2–5 each, capped at a
// node count the exhaustive CDG exploration stays fast on.
func randomDims(r *rand.Rand) []int {
	for {
		dims := make([]int, 1+r.Intn(3))
		nodes := 1
		for i := range dims {
			dims[i] = 2 + r.Intn(4)
			nodes *= dims[i]
		}
		if nodes <= 80 {
			return dims
		}
	}
}

// TestDatelineSelectorsDeadlockFree is the property-based form of the
// torus deadlock argument: for random torus and mesh shapes, the
// channel dependency graph of every shipped dateline selector —
// explored at VC-class granularity — is acyclic. This is the
// mechanical proof obligation behind running the full algorithm set
// on wraparound networks.
func TestDatelineSelectorsDeadlockFree(t *testing.T) {
	prop := func(seed int64, torus bool) bool {
		r := rand.New(rand.NewSource(seed))
		dims := randomDims(r)
		var m *topology.Mesh
		if torus {
			m = topology.NewTorus(dims...)
		} else {
			m = topology.NewMesh(dims...)
		}
		if !DeadlockFree(m, routing.NewDatelineDOR(m)) {
			t.Logf("dateline-dor cyclic on %s", m.Name())
			return false
		}
		if !DeadlockFree(m, routing.NewTorusWestFirst(m)) {
			t.Logf("west-first-torus cyclic on %s", m.Name())
			return false
		}
		if m.NDims() >= 2 {
			if !DeadlockFree(m, routing.NewTorusOddEven(m)) {
				t.Logf("odd-even-torus cyclic on %s", m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMeshTurnModelsStayDeadlockFree extends the same property to the
// mesh-only selectors on random mesh shapes: the torus work must not
// have disturbed the turn models' acyclicity.
func TestMeshTurnModelsStayDeadlockFree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := topology.NewMesh(randomDims(r)...)
		if !DeadlockFree(m, routing.NewDOR(m)) || !DeadlockFree(m, routing.NewWestFirst(m)) {
			return false
		}
		if m.NDims() >= 2 && !DeadlockFree(m, routing.NewOddEven(m)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPlainDORTorusHasCycle pins the reason the datelines exist:
// plain dimension-order routing on a wraparound ring of extent >= 4
// has a cyclic channel dependency graph — four minimal two-hop routes
// chase each other around the ring — so a 1-VC torus is NOT
// deadlock-free by the Dally-Seitz criterion. (Extent 3 is vacuously
// acyclic: every minimal ring route is a single hop and holds nothing
// while requesting, which is why the pin uses extent 4.) The same
// build at VC-class granularity (dateline-dor) is acyclic, which is
// the whole point.
func TestPlainDORTorusHasCycle(t *testing.T) {
	for _, dims := range [][]int{{4}, {4, 4}, {5, 4}, {4, 2, 3}} {
		m := topology.NewTorus(dims...)
		if cyc := Build(m, routing.NewDOR(m)).FindCycle(); cyc == nil {
			t.Errorf("plain DOR on %s: no CDG cycle found, expected one", m.Name())
		}
		if !DeadlockFree(m, routing.NewDatelineDOR(m)) {
			t.Errorf("dateline-dor on %s: CDG cycle found, expected none", m.Name())
		}
	}
	// Extent-3 rings route in single hops: vacuously acyclic even for
	// plain DOR, documented here so nobody "fixes" the k>=4 pin.
	m := topology.NewTorus(3, 3)
	if cyc := Build(m, routing.NewDOR(m)).FindCycle(); cyc != nil {
		t.Errorf("plain DOR on %s: unexpected cycle %v (3-rings route in one hop)", m.Name(), cyc)
	}
}
