// Package core implements Coded-Path Routing (CPR), the substrate of
// the paper's DB and AB broadcast algorithms (Al-Dubai &
// Ould-Khaoua, IPCCC 2001). A CPR message is a wormhole worm whose
// header carries a 2-bit control field telling each router what to do
// when the worm passes: forward only, deliver a copy and keep
// forwarding (the multidestination capability borrowed from path-based
// multicast), or deliver and terminate. CPR exploits wormhole
// switching's distance insensitivity: all destinations on one coded
// path receive the message within a few flit times of each other,
// which is what gives DB and AB their low arrival-time variance.
package core

import (
	"fmt"

	"repro/internal/topology"
)

// ControlField is the 2-bit action code in a CPR header flit.
type ControlField uint8

const (
	// Pass tells the router to forward the worm without delivering.
	Pass ControlField = 0b00
	// Receive tells the router to consume the worm: it is the final
	// destination of the coded path.
	Receive ControlField = 0b01
	// ReceiveAndPass tells the router to deliver a local copy while
	// simultaneously forwarding the worm to the next router — the key
	// CPR capability (control value 10 in the paper's AB description).
	ReceiveAndPass ControlField = 0b10
	// ReceiveAndRelay marks a delivery point that also re-initiates
	// the broadcast in a later message-passing step (control value 11
	// in the paper: corners that act as new sources).
	ReceiveAndRelay ControlField = 0b11
)

// String returns the mnemonic for the control value.
func (c ControlField) String() string {
	switch c {
	case Pass:
		return "pass"
	case Receive:
		return "receive"
	case ReceiveAndPass:
		return "receive+pass"
	case ReceiveAndRelay:
		return "receive+relay"
	default:
		return fmt.Sprintf("control(%d)", uint8(c))
	}
}

// Delivers reports whether the control value delivers a local copy.
func (c ControlField) Delivers() bool { return c != Pass }

// Stop reports whether the control value terminates the worm.
func (c ControlField) Stop() bool { return c == Receive }

// CodedPath is one CPR worm: an ordered list of waypoint nodes the
// worm visits and delivers at. Routing between consecutive waypoints
// is delegated to the underlying routing function (deterministic
// dimension-order for DB, west-first adaptive for AB); routers strictly
// between waypoints see control value Pass.
type CodedPath struct {
	// Source injects the worm. It is not a delivery point.
	Source topology.NodeID
	// Waypoints are the delivery points in visit order. The final
	// waypoint receives control value Receive; earlier ones
	// ReceiveAndPass (or ReceiveAndRelay when marked).
	Waypoints []topology.NodeID
	// Relays marks waypoints (by index) that act as sources in a
	// later message-passing step; purely informational for analysis.
	Relays map[int]bool
}

// Control returns the control field presented to waypoint i.
func (p *CodedPath) Control(i int) ControlField {
	if i == len(p.Waypoints)-1 {
		return Receive
	}
	if p.Relays[i] {
		return ReceiveAndRelay
	}
	return ReceiveAndPass
}

// Validate checks structural sanity: at least one waypoint, no
// waypoint equal to the source, no immediate duplicates.
func (p *CodedPath) Validate(m *topology.Mesh) error {
	if len(p.Waypoints) == 0 {
		return fmt.Errorf("core: coded path from %d has no waypoints", p.Source)
	}
	prev := p.Source
	for i, w := range p.Waypoints {
		if w == prev {
			return fmt.Errorf("core: coded path from %d repeats node %d at waypoint %d", p.Source, w, i)
		}
		if int(w) < 0 || int(w) >= m.Nodes() {
			return fmt.Errorf("core: coded path waypoint %d out of range", w)
		}
		prev = w
	}
	return nil
}

// Destinations returns the delivery nodes of the path (the waypoints).
func (p *CodedPath) Destinations() []topology.NodeID {
	return append([]topology.NodeID(nil), p.Waypoints...)
}
