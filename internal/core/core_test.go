package core

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestControlFieldSemantics(t *testing.T) {
	cases := []struct {
		c        ControlField
		delivers bool
		stop     bool
		str      string
	}{
		{Pass, false, false, "pass"},
		{Receive, true, true, "receive"},
		{ReceiveAndPass, true, false, "receive+pass"},
		{ReceiveAndRelay, true, false, "receive+relay"},
	}
	for _, tc := range cases {
		if tc.c.Delivers() != tc.delivers {
			t.Errorf("%v.Delivers() = %v", tc.c, tc.c.Delivers())
		}
		if tc.c.Stop() != tc.stop {
			t.Errorf("%v.Stop() = %v", tc.c, tc.c.Stop())
		}
		if tc.c.String() != tc.str {
			t.Errorf("%v.String() = %q", tc.c, tc.c.String())
		}
	}
	if ControlField(9).String() != "control(9)" {
		t.Errorf("unknown control prints %q", ControlField(9).String())
	}
}

func TestCodedPathControls(t *testing.T) {
	p := &CodedPath{
		Source:    0,
		Waypoints: []topology.NodeID{1, 2, 3},
		Relays:    map[int]bool{0: true},
	}
	if p.Control(0) != ReceiveAndRelay {
		t.Errorf("waypoint 0 control = %v", p.Control(0))
	}
	if p.Control(1) != ReceiveAndPass {
		t.Errorf("waypoint 1 control = %v", p.Control(1))
	}
	if p.Control(2) != Receive {
		t.Errorf("final waypoint control = %v", p.Control(2))
	}
}

func TestValidate(t *testing.T) {
	m := topology.NewMesh(4, 4)
	good := ChainPath(0, 1, 2)
	if err := good.Validate(m); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (&CodedPath{Source: 0}).Validate(m); err == nil {
		t.Error("empty path accepted")
	}
	if err := ChainPath(0, 0).Validate(m); err == nil {
		t.Error("self-waypoint accepted")
	}
	if err := ChainPath(0, 1, 1).Validate(m); err == nil {
		t.Error("immediate duplicate accepted")
	}
	if err := ChainPath(0, topology.NodeID(99)).Validate(m); err == nil {
		t.Error("out-of-range waypoint accepted")
	}
}

func TestLinePath(t *testing.T) {
	m := topology.NewMesh(6, 4)
	p := LinePath(m, m.ID(1, 2), 0, 4)
	want := []topology.NodeID{m.ID(2, 2), m.ID(3, 2), m.ID(4, 2)}
	if len(p.Waypoints) != len(want) {
		t.Fatalf("waypoints = %v", p.Waypoints)
	}
	for i := range want {
		if p.Waypoints[i] != want[i] {
			t.Fatalf("waypoint %d = %d, want %d", i, p.Waypoints[i], want[i])
		}
	}
	// Downward direction.
	down := LinePath(m, m.ID(3, 1), 0, 0)
	if len(down.Waypoints) != 3 || down.Waypoints[2] != m.ID(0, 1) {
		t.Fatalf("down waypoints = %v", down.Waypoints)
	}
}

func TestLinePathPanicsOnZeroExtent(t *testing.T) {
	m := topology.NewMesh(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("zero-extent line did not panic")
		}
	}()
	LinePath(m, m.ID(2, 0), 0, 2)
}

func TestSegmentPath(t *testing.T) {
	m := topology.NewMesh(8, 2)
	// Source left of the segment.
	p := SegmentPath(m, m.ID(0, 1), 0, 2, 4)
	if len(p.Waypoints) != 4 {
		t.Fatalf("waypoints = %v", p.Waypoints)
	}
	last := p.Waypoints[len(p.Waypoints)-1]
	if m.CoordAxis(last, 0) != 4 {
		t.Fatalf("segment end = %d", m.CoordAxis(last, 0))
	}
	// Source right of the segment walks down to lo.
	q := SegmentPath(m, m.ID(7, 0), 0, 5, 6)
	qlast := q.Waypoints[len(q.Waypoints)-1]
	if m.CoordAxis(qlast, 0) != 5 {
		t.Fatalf("segment end = %d", m.CoordAxis(qlast, 0))
	}
}

func TestSegmentPathPanicsInsideSegment(t *testing.T) {
	m := topology.NewMesh(8, 2)
	defer func() {
		if recover() == nil {
			t.Error("inside-segment source did not panic")
		}
	}()
	SegmentPath(m, m.ID(3, 0), 0, 2, 4)
}

// TestSnakePathCoversRectangle property-checks that a snake from any
// corner covers the whole rectangle exactly once with adjacent steps.
func TestSnakePathCoversRectangle(t *testing.T) {
	m := topology.NewMesh(8, 8, 4)
	f := func(cornerPick uint8, w, h uint8) bool {
		fastHi := int(w%7) + 1 // 1..7
		slowHi := int(h%3) + 1 // 1..3
		cx, cz := 0, 0
		if cornerPick&1 != 0 {
			cx = fastHi
		}
		if cornerPick&2 != 0 {
			cz = slowHi
		}
		src := m.ID(0, cx, cz) // rectangle over dims (1, 2) at x=0
		p := SnakePath(m, src, 1, 2, 0, fastHi, 0, slowHi)

		total := (fastHi + 1) * (slowHi + 1)
		if len(p.Waypoints) != total-1 {
			return false
		}
		seen := map[topology.NodeID]bool{src: true}
		prev := src
		for _, wpt := range p.Waypoints {
			if seen[wpt] {
				return false // revisit
			}
			if m.Distance(prev, wpt) != 1 {
				return false // non-adjacent snake step
			}
			if m.CoordAxis(wpt, 0) != 0 {
				return false // left the rectangle plane
			}
			seen[wpt] = true
			prev = wpt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnakePathPanicsOffCorner(t *testing.T) {
	m := topology.NewMesh(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("non-corner snake source did not panic")
		}
	}()
	SnakePath(m, m.ID(1, 1), 0, 1, 0, 3, 0, 3)
}

func TestChainPathCopies(t *testing.T) {
	wps := []topology.NodeID{1, 2}
	p := ChainPath(0, wps...)
	wps[0] = 9
	if p.Waypoints[0] != 1 {
		t.Error("ChainPath aliases caller slice")
	}
}

func TestDestinationsCopies(t *testing.T) {
	p := ChainPath(0, 1, 2)
	d := p.Destinations()
	d[0] = 9
	if p.Waypoints[0] != 1 {
		t.Error("Destinations aliases internal slice")
	}
}
