package core

import (
	"fmt"

	"repro/internal/topology"
)

// Path builders used by the DB and AB planners. Each returns a
// CodedPath whose consecutive waypoints are mesh-adjacent or joined by
// a straight run along one dimension, so the underlying routing
// function has no freedom to wander off the intended coded path.

// LinePath returns a coded path from src straight along dimension d to
// coordinate stop (inclusive), delivering at every node after src.
// stop may be on either side of src's coordinate.
func LinePath(m *topology.Mesh, src topology.NodeID, d, stop int) *CodedPath {
	coord := m.Coord(src)
	start := coord[d]
	if stop == start {
		panic(fmt.Sprintf("core: LinePath with zero extent at dim %d coord %d", d, start))
	}
	step := 1
	if stop < start {
		step = -1
	}
	p := &CodedPath{Source: src}
	for v := start + step; ; v += step {
		coord[d] = v
		p.Waypoints = append(p.Waypoints, m.ID(coord...))
		if v == stop {
			break
		}
	}
	return p
}

// SegmentPath returns a coded path from src along dimension d covering
// coordinates from lo to hi inclusive (excluding src's own position if
// it lies inside). The worm first travels to the nearer end of the
// segment; src must sit adjacent to or inside [lo, hi].
func SegmentPath(m *topology.Mesh, src topology.NodeID, d, lo, hi int) *CodedPath {
	if lo > hi {
		panic(fmt.Sprintf("core: SegmentPath with lo %d > hi %d", lo, hi))
	}
	start := m.CoordAxis(src, d)
	switch {
	case start < lo:
		return LinePath(m, src, d, hi)
	case start > hi:
		return LinePath(m, src, d, lo)
	default:
		panic(fmt.Sprintf("core: SegmentPath source coordinate %d inside [%d,%d]; split the segment", start, lo, hi))
	}
}

// SnakePath returns a boustrophedon coded path covering every node of
// the rectangle spanned by dimensions dFast and dSlow at the other
// coordinates of src, starting from src's own position, which must be
// a corner of that rectangle. The worm sweeps dFast, steps one hop
// along dSlow, sweeps dFast back, and so on — the face- and
// half-plane-covering paths of DB's and AB's final steps.
func SnakePath(m *topology.Mesh, src topology.NodeID, dFast, dSlow int, fastLo, fastHi, slowLo, slowHi int) *CodedPath {
	if fastLo > fastHi || slowLo > slowHi {
		panic("core: SnakePath with empty rectangle")
	}
	coord := m.Coord(src)
	cf, cs := coord[dFast], coord[dSlow]
	if (cf != fastLo && cf != fastHi) || (cs != slowLo && cs != slowHi) {
		panic(fmt.Sprintf("core: SnakePath source (%d,%d) is not a corner of [%d,%d]x[%d,%d]",
			cf, cs, fastLo, fastHi, slowLo, slowHi))
	}
	sStep := 1
	if cs == slowHi {
		sStep = -1
	}
	fStep := 1
	if cf == fastHi {
		fStep = -1
	}
	p := &CodedPath{Source: src}
	first := true
	for s := cs; s >= slowLo && s <= slowHi; s += sStep {
		coord[dSlow] = s
		fFrom, fTo := fastLo, fastHi
		if fStep < 0 {
			fFrom, fTo = fastHi, fastLo
		}
		for f := fFrom; ; f += fStep {
			coord[dFast] = f
			id := m.ID(coord...)
			if first && id == src {
				first = false
				if f == fTo {
					break
				}
				continue
			}
			first = false
			p.Waypoints = append(p.Waypoints, id)
			if f == fTo {
				break
			}
		}
		fStep = -fStep
	}
	return p
}

// ChainPath returns a coded path visiting the given waypoints in
// order. Used when the planner has already computed the stops (e.g.
// AB's corner-to-corner first step).
func ChainPath(src topology.NodeID, waypoints ...topology.NodeID) *CodedPath {
	return &CodedPath{Source: src, Waypoints: append([]topology.NodeID(nil), waypoints...)}
}
