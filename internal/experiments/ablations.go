package experiments

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Ablation drivers for the design choices DESIGN.md calls out. They
// are not paper artifacts; they quantify how much each modelling
// decision matters. Like the figure drivers, every ablation fans its
// replications out over a runner.Pool with sim.Substream randomness,
// so results are bit-identical for any Procs value.

// AblationConfig parameterises the ablation sweeps.
type AblationConfig struct {
	// Dims is the mesh shape (default 8×8×8).
	Dims []int
	// Length is the message length in flits (default 100).
	Length int
	// Reps is the number of random-source replications (default 10).
	Reps int
	// Seed drives source selection; replication i draws from
	// sim.Substream(Seed, i).
	Seed uint64
	// Procs caps the worker count; 0 means one worker per core.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-
	// replication counts as the sweep advances.
	Progress func(done, total int)
}

func (c *AblationConfig) setDefaults() {
	if c.Dims == nil {
		c.Dims = []int{8, 8, 8}
	}
	if c.Length == 0 {
		c.Length = 100
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
}

// source returns the replication's broadcast source, a pure function
// of (Seed, rep) so any execution order reproduces it.
func (c *AblationConfig) source(m *topology.Mesh, rep int) topology.NodeID {
	return topology.NodeID(sim.Substream(c.Seed, uint64(rep)).Intn(m.Nodes()))
}

// cellSweep runs the common grid ablation: every (algorithm, x) cell
// of the sweep replicated Reps times, with the FULL algos×xs×reps
// index space submitted to the pool as one Map so parallelism is
// never capped by a single cell's replication count. run executes one
// replication of cell (algo, xs[xi]) with the given source and
// returns its latency; cells aggregate to mean + 95% CI in
// replication order.
func (c *AblationConfig) cellSweep(fig *Figure, m *topology.Mesh, xs []float64,
	run func(algo broadcast.Algorithm, xi int, src topology.NodeID) (float64, error)) error {
	algos := PaperAlgorithms()
	jobs := len(algos) * len(xs) * c.Reps
	p := pool(c.Procs, jobs, c.Progress)
	lats, err := runner.Map(p, jobs, func(k int) (float64, error) {
		algo := algos[k/(len(xs)*c.Reps)]
		xi := (k / c.Reps) % len(xs)
		return run(algo, xi, c.source(m, k%c.Reps))
	})
	if err != nil {
		return err
	}
	for a, algo := range algos {
		s := Series{Label: algo.Name()}
		for xi, x := range xs {
			var acc stats.Accumulator
			base := (a*len(xs) + xi) * c.Reps
			for i := 0; i < c.Reps; i++ {
				acc.Add(lats[base+i])
			}
			s.Points = append(s.Points, Point{X: x, Y: acc.Mean(), CI: acc.Confidence95()})
		}
		fig.Series = append(fig.Series, s)
	}
	return nil
}

// AblationMessageLength sweeps the paper's stated message-length
// range (32–2048 flits): latency should shift by L·β while the
// algorithm ordering is preserved (wormhole distance insensitivity).
func AblationMessageLength(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-L",
		Title:  fmt.Sprintf("Broadcast latency vs message length on %s", m.Name()),
		XLabel: "flits",
		YLabel: "latency (µs)",
	}
	lengths := []float64{32, 64, 128, 256, 512, 1024, 2048}
	err := cfg.cellSweep(fig, m, lengths, func(algo broadcast.Algorithm, xi int, src topology.NodeID) (float64, error) {
		r, err := broadcast.RunSingle(m, algo, src, baseConfig(1.5), int(lengths[xi]))
		if err != nil {
			return 0, fmt.Errorf("ablation-L %s at %g flits: %w", algo.Name(), lengths[xi], err)
		}
		return r.Latency(), nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationHopDelay sweeps the header per-hop routing delay across two
// orders of magnitude. DB and AB use long coded paths, so they are
// the algorithms a pessimistic router model would hurt; the sweep
// quantifies how far the paper's conclusions survive.
func AblationHopDelay(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-hop",
		Title:  fmt.Sprintf("Broadcast latency vs header hop delay on %s (L=%d)", m.Name(), cfg.Length),
		XLabel: "hop delay (µs)",
		YLabel: "latency (µs)",
	}
	hops := []float64{0.003, 0.01, 0.03, 0.1, 0.3}
	err := cfg.cellSweep(fig, m, hops, func(algo broadcast.Algorithm, xi int, src topology.NodeID) (float64, error) {
		ncfg := baseConfig(1.5)
		ncfg.HopDelay = hops[xi]
		r, err := broadcast.RunSingle(m, algo, src, ncfg, cfg.Length)
		if err != nil {
			return 0, fmt.Errorf("ablation-hop %s at %g µs: %w", algo.Name(), hops[xi], err)
		}
		return r.Latency(), nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// AblationAdaptiveSubstrate compares AB over its west-first turn
// model against AB over the odd-even turn model ([7], the alternative
// the paper names) and against plain dimension-order routing. All
// substrates replay the same Substream-derived source sequence, so
// the comparison is paired; the (substrate, replication) grid runs in
// parallel on the worker pool.
func AblationAdaptiveSubstrate(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-substrate",
		Title:  fmt.Sprintf("AB latency by routing substrate on %s (L=%d)", m.Name(), cfg.Length),
		XLabel: "replication",
		YLabel: "latency (µs)",
	}
	substrates := []struct {
		name string
		sel  routing.Selector
	}{
		{"west-first", routing.NewWestFirst(m)},
		{"odd-even", routing.NewOddEven(m)},
		{"dor", nil},
	}
	ab := broadcast.NewAB()
	jobs := len(substrates) * cfg.Reps
	p := pool(cfg.Procs, jobs, cfg.Progress)
	lats, err := runner.Map(p, jobs, func(k int) (float64, error) {
		sub, rep := substrates[k/cfg.Reps], k%cfg.Reps
		src := cfg.source(m, rep)
		plan, err := ab.Plan(m, src)
		if err != nil {
			return 0, err
		}
		if err := plan.Validate(m); err != nil {
			return 0, err
		}
		sm := sim.New()
		net, err := network.New(sm, m, baseConfig(1.5))
		if err != nil {
			return 0, err
		}
		r, err := broadcast.Execute(net, plan, broadcast.Options{
			Length:   cfg.Length,
			Adaptive: sub.sel,
			Tag:      "ablation",
		})
		if err != nil {
			return 0, err
		}
		sm.Run()
		if !r.Done {
			return 0, fmt.Errorf("ablation-substrate %s: broadcast stalled", sub.name)
		}
		return r.Latency(), nil
	})
	if err != nil {
		return nil, err
	}
	for si, sub := range substrates {
		s := Series{Label: sub.name}
		for i := 0; i < cfg.Reps; i++ {
			s.Points = append(s.Points, Point{X: float64(i), Y: lats[si*cfg.Reps+i]})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationPortModel runs every algorithm under one-port and
// three-port routers: EDN is the algorithm whose schedule needs the
// fan-out, so it should gain the most from the extra ports. Sources
// depend only on (Seed, replication), so the one-port and three-port
// runs of each algorithm are paired on identical source sequences.
func AblationPortModel(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-ports",
		Title:  fmt.Sprintf("Broadcast latency vs injection ports on %s (L=%d)", m.Name(), cfg.Length),
		XLabel: "ports",
		YLabel: "latency (µs)",
	}
	ports := []float64{1, 3}
	err := cfg.cellSweep(fig, m, ports, func(algo broadcast.Algorithm, xi int, src topology.NodeID) (float64, error) {
		ncfg := baseConfig(1.5)
		ncfg.Ports = int(ports[xi])
		plan, err := algo.Plan(m, src)
		if err != nil {
			return 0, err
		}
		sm := sim.New()
		net, err := network.New(sm, m, ncfg)
		if err != nil {
			return 0, err
		}
		var adaptive routing.Selector
		if algo.Name() == "AB" {
			adaptive = routing.NewWestFirst(m)
		}
		r, err := broadcast.Execute(net, plan, broadcast.Options{
			Length:   cfg.Length,
			Adaptive: adaptive,
			Tag:      "ablation",
		})
		if err != nil {
			return 0, err
		}
		sm.Run()
		if !r.Done {
			return 0, fmt.Errorf("ablation-ports %s: broadcast stalled", algo.Name())
		}
		return r.Latency(), nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
