package experiments

import (
	"context"

	"repro/internal/scenario"
)

// Ablation drivers for the design choices DESIGN.md calls out. They
// are not paper artifacts; they quantify how much each modelling
// decision matters. All four are registered scenarios now
// ("ablation-length", "ablation-hop", "ablation-substrate",
// "ablation-ports"); these wrappers only translate the legacy config.

// AblationConfig parameterises the ablation sweeps.
type AblationConfig struct {
	// Dims is the mesh shape (default 8×8×8).
	Dims []int
	// Length is the message length in flits (default 100).
	Length int
	// Reps is the number of random-source replications (default 10).
	Reps int
	// Seed drives source selection; replication i draws from
	// sim.Substream(Seed, i).
	Seed uint64
	// Procs caps the worker count; 0 means one worker per core.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-
	// replication counts as the sweep advances.
	Progress func(done, total int)
}

// run builds the registered ablation scenario with the legacy
// overrides applied and executes it.
func (c AblationConfig) run(name string) (*Figure, error) {
	spec, err := scenario.Build(name,
		scenario.WithReps(c.Reps),
		scenario.WithSeed(c.Seed),
		scenario.WithProcs(c.Procs),
		scenario.WithProgress(c.Progress),
	)
	if err != nil {
		return nil, err
	}
	if c.Dims != nil {
		spec.Dims = c.Dims
	}
	if c.Length != 0 {
		spec.Length = c.Length
	}
	res, err := scenario.Run(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return res.Figure, nil
}

// AblationMessageLength sweeps the paper's stated message-length
// range (32–2048 flits): latency should shift by L·β while the
// algorithm ordering is preserved (wormhole distance insensitivity).
//
// Deprecated: build the "ablation-length" scenario through
// scenario.Build.
func AblationMessageLength(cfg AblationConfig) (*Figure, error) {
	return cfg.run("ablation-length")
}

// AblationHopDelay sweeps the header per-hop routing delay across two
// orders of magnitude. DB and AB use long coded paths, so they are
// the algorithms a pessimistic router model would hurt; the sweep
// quantifies how far the paper's conclusions survive.
//
// Deprecated: build the "ablation-hop" scenario through
// scenario.Build.
func AblationHopDelay(cfg AblationConfig) (*Figure, error) {
	return cfg.run("ablation-hop")
}

// AblationAdaptiveSubstrate compares AB over its west-first turn
// model against AB over the odd-even turn model ([7], the alternative
// the paper names) and against plain dimension-order routing. All
// substrates replay the same Substream-derived source sequence, so
// the comparison is paired.
//
// Deprecated: build the "ablation-substrate" scenario through
// scenario.Build.
func AblationAdaptiveSubstrate(cfg AblationConfig) (*Figure, error) {
	return cfg.run("ablation-substrate")
}

// AblationPortModel runs every algorithm under one-port and
// three-port routers: EDN is the algorithm whose schedule needs the
// fan-out, so it should gain the most from the extra ports. Sources
// depend only on (Seed, replication), so the one-port and three-port
// runs of each algorithm are paired on identical source sequences.
//
// Deprecated: build the "ablation-ports" scenario through
// scenario.Build.
func AblationPortModel(cfg AblationConfig) (*Figure, error) {
	return cfg.run("ablation-ports")
}
