package experiments

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Ablation drivers for the design choices DESIGN.md calls out. They
// are not paper artifacts; they quantify how much each modelling
// decision matters.

// AblationConfig parameterises the ablation sweeps.
type AblationConfig struct {
	// Dims is the mesh shape (default 8×8×8).
	Dims []int
	// Length is the message length in flits (default 100).
	Length int
	// Reps is the number of random-source replications (default 10).
	Reps int
	// Seed drives source selection.
	Seed uint64
}

func (c *AblationConfig) setDefaults() {
	if c.Dims == nil {
		c.Dims = []int{8, 8, 8}
	}
	if c.Length == 0 {
		c.Length = 100
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
}

// AblationMessageLength sweeps the paper's stated message-length
// range (32–2048 flits): latency should shift by L·β while the
// algorithm ordering is preserved (wormhole distance insensitivity).
func AblationMessageLength(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-L",
		Title:  fmt.Sprintf("Broadcast latency vs message length on %s", m.Name()),
		XLabel: "flits",
		YLabel: "latency (µs)",
	}
	for _, algo := range PaperAlgorithms() {
		s := Series{Label: algo.Name()}
		for _, length := range []int{32, 64, 128, 256, 512, 1024, 2048} {
			st, err := metrics.SingleSourceStudy(m, algo, baseConfig(1.5), length, cfg.Reps, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("ablation-L %s: %w", algo.Name(), err)
			}
			s.Points = append(s.Points, Point{X: float64(length), Y: st.Latency.Mean()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationHopDelay sweeps the header per-hop routing delay across two
// orders of magnitude. DB and AB use long coded paths, so they are
// the algorithms a pessimistic router model would hurt; the sweep
// quantifies how far the paper's conclusions survive.
func AblationHopDelay(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-hop",
		Title:  fmt.Sprintf("Broadcast latency vs header hop delay on %s (L=%d)", m.Name(), cfg.Length),
		XLabel: "hop delay (µs)",
		YLabel: "latency (µs)",
	}
	for _, algo := range PaperAlgorithms() {
		s := Series{Label: algo.Name()}
		for _, hop := range []float64{0.003, 0.01, 0.03, 0.1, 0.3} {
			ncfg := baseConfig(1.5)
			ncfg.HopDelay = hop
			st, err := metrics.SingleSourceStudy(m, algo, ncfg, cfg.Length, cfg.Reps, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("ablation-hop %s: %w", algo.Name(), err)
			}
			s.Points = append(s.Points, Point{X: hop, Y: st.Latency.Mean()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationAdaptiveSubstrate compares AB over its west-first turn
// model against AB over the odd-even turn model ([7], the alternative
// the paper names) and against plain dimension-order routing.
func AblationAdaptiveSubstrate(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-substrate",
		Title:  fmt.Sprintf("AB latency by routing substrate on %s (L=%d)", m.Name(), cfg.Length),
		XLabel: "replication",
		YLabel: "latency (µs)",
	}
	substrates := []struct {
		name string
		sel  routing.Selector
	}{
		{"west-first", routing.NewWestFirst(m)},
		{"odd-even", routing.NewOddEven(m)},
		{"dor", nil},
	}
	ab := broadcast.NewAB()
	rng := sim.NewRNG(cfg.Seed, 53)
	sources := make([]topology.NodeID, cfg.Reps)
	for i := range sources {
		sources[i] = topology.NodeID(rng.Intn(m.Nodes()))
	}
	for _, sub := range substrates {
		s := Series{Label: sub.name}
		for i, src := range sources {
			plan, err := ab.Plan(m, src)
			if err != nil {
				return nil, err
			}
			if err := plan.Validate(m); err != nil {
				return nil, err
			}
			sm := sim.New()
			net, err := network.New(sm, m, baseConfig(1.5))
			if err != nil {
				return nil, err
			}
			r, err := broadcast.Execute(net, plan, broadcast.Options{
				Length:   cfg.Length,
				Adaptive: sub.sel,
				Tag:      "ablation",
			})
			if err != nil {
				return nil, err
			}
			sm.Run()
			if !r.Done {
				return nil, fmt.Errorf("ablation-substrate %s: broadcast stalled", sub.name)
			}
			s.Points = append(s.Points, Point{X: float64(i), Y: r.Latency()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationPortModel runs every algorithm under one-port and
// three-port routers: EDN is the algorithm whose schedule needs the
// fan-out, so it should gain the most from the extra ports.
func AblationPortModel(cfg AblationConfig) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	fig := &Figure{
		ID:     "Ablation-ports",
		Title:  fmt.Sprintf("Broadcast latency vs injection ports on %s (L=%d)", m.Name(), cfg.Length),
		XLabel: "ports",
		YLabel: "latency (µs)",
	}
	for _, algo := range PaperAlgorithms() {
		s := Series{Label: algo.Name()}
		for _, ports := range []int{1, 3} {
			ncfg := baseConfig(1.5)
			ncfg.Ports = ports
			var acc float64
			rng := sim.NewRNG(cfg.Seed, 59)
			for i := 0; i < cfg.Reps; i++ {
				src := topology.NodeID(rng.Intn(m.Nodes()))
				plan, err := algo.Plan(m, src)
				if err != nil {
					return nil, err
				}
				sm := sim.New()
				net, err := network.New(sm, m, ncfg)
				if err != nil {
					return nil, err
				}
				var adaptive routing.Selector
				if algo.Name() == "AB" {
					adaptive = routing.NewWestFirst(m)
				}
				r, err := broadcast.Execute(net, plan, broadcast.Options{
					Length:   cfg.Length,
					Adaptive: adaptive,
					Tag:      "ablation",
				})
				if err != nil {
					return nil, err
				}
				sm.Run()
				if !r.Done {
					return nil, fmt.Errorf("ablation-ports %s: broadcast stalled", algo.Name())
				}
				acc += r.Latency()
			}
			s.Points = append(s.Points, Point{X: float64(ports), Y: acc / float64(cfg.Reps)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
