package experiments

import "testing"

func quickAblation() AblationConfig {
	return AblationConfig{Dims: []int{4, 4, 4}, Length: 64, Reps: 3, Seed: 5}
}

func TestAblationMessageLength(t *testing.T) {
	fig, err := AblationMessageLength(quickAblation())
	if err != nil {
		t.Fatal(err)
	}
	// Latency must rise with message length for every algorithm
	// (each step pays L·β), and the rise from 32 to 2048 flits must
	// be close to the added serialisation of the extra flits.
	for _, s := range fig.Series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Y <= first.Y {
			t.Errorf("%s: latency did not grow with length (%.2f -> %.2f)", s.Label, first.Y, last.Y)
		}
	}
}

func TestAblationHopDelay(t *testing.T) {
	fig, err := AblationHopDelay(quickAblation())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y {
				t.Errorf("%s: latency fell as hop delay rose (%v)", s.Label, s.Points)
			}
		}
	}
}

func TestAblationAdaptiveSubstrate(t *testing.T) {
	fig, err := AblationAdaptiveSubstrate(quickAblation())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("substrates = %d, want 3", len(fig.Series))
	}
	// On an idle network all three substrates must complete with
	// comparable latency (adaptivity only matters under contention).
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s: non-positive latency", s.Label)
			}
		}
	}
}

func TestAblationPortModel(t *testing.T) {
	fig, err := AblationPortModel(quickAblation())
	if err != nil {
		t.Fatal(err)
	}
	series := seriesMap(fig)
	// EDN's doubling phase needs the three-port router: one port must
	// be slower or equal, and strictly slower for EDN.
	edn := series["EDN"]
	if len(edn.Points) != 2 {
		t.Fatalf("EDN points = %v", edn.Points)
	}
	onePort, threePort := edn.Points[0].Y, edn.Points[1].Y
	if threePort >= onePort {
		t.Errorf("EDN did not benefit from three ports (%.2f vs %.2f)", threePort, onePort)
	}
	// RD never uses more than one port per step, so extra ports must
	// not change its latency.
	rd := series["RD"]
	if rd.Points[0].Y != rd.Points[1].Y {
		t.Errorf("RD latency changed with ports (%v)", rd.Points)
	}
}
