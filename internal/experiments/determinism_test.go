package experiments

import "testing"

// The orchestration layer's core guarantee: every driver's output is
// bit-identical for any worker count, because replication randomness
// is keyed on (seed, replication) and aggregation happens in
// replication order. These tests render each artifact at -procs 1,
// -procs 4 and -procs 0 (GOMAXPROCS) and compare the bytes. Run with
// -race (the CI workflow does) and they double as a data-race probe
// over the whole fan-out path.

// procsMatrix is the set of worker counts every artifact is rendered
// under; 0 means one worker per core.
var procsMatrix = []int{1, 4, 0}

func formatsAgree(t *testing.T, name string, render func(procs int) (string, error)) {
	t.Helper()
	want, err := render(1)
	if err != nil {
		t.Fatalf("%s procs=1: %v", name, err)
	}
	if want == "" {
		t.Fatalf("%s rendered empty", name)
	}
	for _, procs := range procsMatrix[1:] {
		got, err := render(procs)
		if err != nil {
			t.Fatalf("%s procs=%d: %v", name, procs, err)
		}
		if got != want {
			t.Errorf("%s: procs=%d output differs from serial\n--- procs=1 ---\n%s\n--- procs=%d ---\n%s",
				name, procs, want, procs, got)
		}
	}
}

func TestFig1DeterministicAcrossProcs(t *testing.T) {
	formatsAgree(t, "fig1", func(procs int) (string, error) {
		fig, err := Fig1(Fig1Config{
			Sizes: [][]int{{4, 4, 4}, {6, 6, 6}},
			Reps:  6, Seed: 2005, Procs: procs,
		})
		if err != nil {
			return "", err
		}
		return fig.Format(), nil
	})
}

func TestFig2DeterministicAcrossProcs(t *testing.T) {
	formatsAgree(t, "fig2", func(procs int) (string, error) {
		fig, err := Fig2(Fig2Config{
			Sizes: [][]int{{4, 4, 4}, {4, 4, 8}},
			Reps:  8, Seed: 2005, Procs: procs,
		})
		if err != nil {
			return "", err
		}
		return fig.Format(), nil
	})
}

func TestTablesDeterministicAcrossProcs(t *testing.T) {
	formatsAgree(t, "tables", func(procs int) (string, error) {
		t1, t2, err := Tables(Fig2Config{
			Sizes: [][]int{{4, 4, 4}, {4, 4, 8}},
			Reps:  8, Seed: 2005, Procs: procs,
		})
		if err != nil {
			return "", err
		}
		return t1.Format() + t2.Format(), nil
	})
}

func TestFig34DeterministicAcrossProcs(t *testing.T) {
	formatsAgree(t, "fig34", func(procs int) (string, error) {
		fig, err := Fig34(Fig34Config{
			Dims:      []int{4, 4, 4},
			Loads:     []float64{0.005, 0.02},
			BatchSize: 20, Batches: 4, Warmup: 1,
			Seed: 2005, Procs: procs,
		})
		if err != nil {
			return "", err
		}
		return fig.Format(), nil
	})
}

func TestAblationsDeterministicAcrossProcs(t *testing.T) {
	cfg := func(procs int) AblationConfig {
		return AblationConfig{Dims: []int{4, 4, 4}, Length: 64, Reps: 4, Seed: 7, Procs: procs}
	}
	drivers := []struct {
		name string
		run  func(AblationConfig) (*Figure, error)
	}{
		{"length", AblationMessageLength},
		{"hop", AblationHopDelay},
		{"substrate", AblationAdaptiveSubstrate},
		{"ports", AblationPortModel},
	}
	for _, d := range drivers {
		formatsAgree(t, "ablation-"+d.name, func(procs int) (string, error) {
			fig, err := d.run(cfg(procs))
			if err != nil {
				return "", err
			}
			return fig.Format(), nil
		})
	}
}

// TestProgressReportsCompleteAndMonotone pins the live-progress
// contract the CLIs rely on: done counts arrive serialised, never
// regress, and end exactly at total.
func TestProgressReportsCompleteAndMonotone(t *testing.T) {
	last, calls := 0, 0
	_, err := Fig1(Fig1Config{
		Sizes: [][]int{{4, 4, 4}},
		Reps:  5, Seed: 3, Procs: 4,
		Progress: func(done, total int) {
			calls++
			if total != 4*1*5 {
				t.Errorf("total = %d, want 20", total)
			}
			if done <= last {
				t.Errorf("done went %d -> %d", last, done)
			}
			last = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 || last != 20 {
		t.Errorf("progress: %d calls ending at %d, want 20/20", calls, last)
	}
}
