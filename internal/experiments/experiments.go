// Package experiments reproduces every table and figure of the
// paper's evaluation section. Each driver returns a structured result
// that prints in the same rows/series the paper reports; cmd/paperbench
// runs them all and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/broadcast"
	"repro/internal/network"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is one algorithm's curve in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced paper figure: one series per algorithm.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String implements fmt.Stringer via Format.
func (f *Figure) String() string { return f.Format() }

// Format renders the figure as an aligned text table, x values as
// rows and algorithms as columns — the shape of the paper's plots.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%12s", s.Label)
	}
	b.WriteByte('\n')

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range f.Series {
			y, ok := lookup(s, x)
			if !ok {
				fmt.Fprintf(&b, "%12s", "-")
				continue
			}
			fmt.Fprintf(&b, "%12.4f", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// PaperAlgorithms returns the four algorithms in the paper's
// presentation order.
func PaperAlgorithms() []broadcast.Algorithm {
	return []broadcast.Algorithm{
		broadcast.NewRD(),
		broadcast.NewEDN(),
		broadcast.NewDB(),
		broadcast.NewAB(),
	}
}

// baseConfig returns the paper's network constants with the given
// startup latency.
func baseConfig(ts float64) network.Config {
	cfg := network.DefaultConfig()
	cfg.Ts = ts
	return cfg
}
