// Package experiments reproduces every table and figure of the
// paper's evaluation section. It is now a thin compatibility layer:
// the spec, registry and run loop live in internal/scenario, and each
// driver here translates its legacy config into a scenario spec and
// runs it. Output is byte-identical to the pre-redesign drivers
// (pinned by the golden tests in internal/scenario) — new code should
// build specs through the registry instead:
//
//	spec, _ := scenario.Build("fig1", scenario.WithReps(40))
//	res, _ := scenario.Run(ctx, spec)
//
// Every scenario fans its independent simulation replications out
// over a runner.Pool. Each config carries two orchestration knobs:
// Procs caps the worker count (0 = one worker per core) and Progress,
// when non-nil, receives live (done, total) completion counts.
// Replication randomness comes from sim.Substream keyed on (seed,
// replication), and samples are aggregated in replication order, so a
// driver's output is bit-identical for any Procs value.
//
// Each aggregated point records its mean and the 95% Student-t
// confidence interval over replications (Point.CI); cmd/paperbench
// and cmd/sweep surface the interval in text and CSV output.
package experiments

import (
	"repro/internal/broadcast"
	"repro/internal/scenario"
)

// Point is one (x, y) sample of a series.
type Point = scenario.Point

// Series is one algorithm's curve in a figure.
type Series = scenario.Series

// Figure is a reproduced paper figure: one series per algorithm.
type Figure = scenario.Figure

// CVTable is one of the paper's Tables 1/2.
type CVTable = scenario.CVTable

// CVColumn is one mesh-size column of a CVTable.
type CVColumn = scenario.CVColumn

// PaperAlgorithms returns the four algorithms in the paper's
// presentation order.
func PaperAlgorithms() []broadcast.Algorithm { return scenario.PaperAlgorithms() }
