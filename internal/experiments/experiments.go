// Package experiments reproduces every table and figure of the
// paper's evaluation section. Each driver returns a structured result
// that prints in the same rows/series the paper reports; cmd/paperbench
// runs them all and EXPERIMENTS.md records paper-vs-measured values.
//
// Every driver fans its independent simulation replications out over
// a runner.Pool. Each config carries two orchestration knobs: Procs
// caps the worker count (0 = one worker per core) and Progress, when
// non-nil, receives live (done, total) completion counts. Replication
// randomness comes from sim.Substream keyed on (seed, replication),
// and samples are aggregated in replication order, so a driver's
// output is bit-identical for any Procs value — run with -procs 1 to
// debug, -procs N to regenerate the paper quickly, and diff nothing.
//
// Each aggregated point records its mean and the 95% Student-t
// confidence interval over replications (Point.CI); cmd/paperbench
// and cmd/sweep surface the interval in text and CSV output.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
	// CI is the 95% confidence interval behind Y when the point
	// aggregates replications; the zero Interval means no interval
	// is available (single-shot points).
	CI stats.Interval
}

// Series is one algorithm's curve in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced paper figure: one series per algorithm.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String implements fmt.Stringer via Format.
func (f *Figure) String() string { return f.Format() }

// HasCI reports whether any point of the figure carries a finite
// confidence interval (at least two replications behind it).
func (f *Figure) HasCI() bool {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.CI.N > 1 && !math.IsInf(p.CI.HalfWide, 0) {
				return true
			}
		}
	}
	return false
}

// Format renders the figure as an aligned text table, x values as
// rows and algorithms as columns — the shape of the paper's plots.
// When the figure carries confidence intervals, each cell prints
// mean±half-width of the 95% interval.
func (f *Figure) Format() string {
	width, ci := 12, f.HasCI()
	if ci {
		width = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", width, s.Label)
	}
	b.WriteByte('\n')

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range f.Series {
			p, ok := lookupPoint(s, x)
			if !ok {
				fmt.Fprintf(&b, "%*s", width, "-")
				continue
			}
			if ci && p.CI.N > 1 && !math.IsInf(p.CI.HalfWide, 0) {
				fmt.Fprintf(&b, "%*s", width, fmt.Sprintf("%.4f±%.3f", p.Y, p.CI.HalfWide))
			} else {
				fmt.Fprintf(&b, "%*.4f", width, p.Y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookupPoint(s Series, x float64) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// PaperAlgorithms returns the four algorithms in the paper's
// presentation order.
func PaperAlgorithms() []broadcast.Algorithm {
	return []broadcast.Algorithm{
		broadcast.NewRD(),
		broadcast.NewEDN(),
		broadcast.NewDB(),
		broadcast.NewAB(),
	}
}

// baseConfig returns the paper's network constants with the given
// startup latency.
func baseConfig(ts float64) network.Config {
	cfg := network.DefaultConfig()
	cfg.Ts = ts
	return cfg
}

// pool builds the worker pool for one driver run: procs workers (0 =
// one per core) ticking a live progress counter that expects total
// completions and reports each to report (which may be nil).
func pool(procs, total int, report func(done, total int)) *runner.Pool {
	return runner.New(procs).NotifyEach(runner.NewProgress(total, report).Tick)
}
