package experiments

import (
	"strings"
	"testing"
)

// quick replication counts keep the shape tests fast; the full-size
// runs live in cmd/paperbench and the root benchmarks.
const quickReps = 6

// TestFig1Shape asserts the paper's Fig. 1 qualitative claims: DB and
// AB beat RD and EDN at every size, RD and EDN degrade as the network
// grows while DB and AB stay nearly flat, and EDN ≈ DB at 4×4×4.
func TestFig1Shape(t *testing.T) {
	fig, err := Fig1(Fig1Config{Reps: quickReps, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	series := seriesMap(fig)
	sizes := []float64{64, 512, 1000, 4096}
	for _, n := range sizes {
		rd, edn, db, ab := at(t, series, "RD", n), at(t, series, "EDN", n), at(t, series, "DB", n), at(t, series, "AB", n)
		if db >= rd || ab >= rd {
			t.Errorf("N=%g: proposed (DB %.2f, AB %.2f) not below RD %.2f", n, db, ab, rd)
		}
		if db >= edn && ab >= edn {
			t.Errorf("N=%g: neither DB %.2f nor AB %.2f below EDN %.2f", n, db, ab, edn)
		}
	}
	// Scalability: RD grows substantially from 64 to 4096; DB stays
	// within 25%.
	if at(t, series, "RD", 4096) < 1.5*at(t, series, "RD", 64) {
		t.Error("RD latency did not grow with network size")
	}
	if at(t, series, "DB", 4096) > 1.25*at(t, series, "DB", 64) {
		t.Error("DB latency not size-insensitive")
	}
	// EDN and DB comparable at 4x4x4 (paper: same step count there).
	edn64, db64 := at(t, series, "EDN", 64), at(t, series, "DB", 64)
	if edn64 > 1.6*db64 {
		t.Errorf("EDN (%.2f) not comparable to DB (%.2f) at N=64", edn64, db64)
	}
}

// TestFig1StartupLatencyCompresses asserts §3.1: a 10× smaller Ts
// shrinks every algorithm's latency.
func TestFig1StartupLatencyCompresses(t *testing.T) {
	cfg := Fig1Config{Sizes: [][]int{{8, 8, 8}}, Reps: quickReps, Seed: 11}
	big, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Fig1StartupLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bigS, smallS := seriesMap(big), seriesMap(small)
	for _, algo := range []string{"RD", "EDN", "DB", "AB"} {
		hi, lo := at(t, bigS, algo, 512), at(t, smallS, algo, 512)
		if lo >= hi {
			t.Errorf("%s: Ts=0.15 latency %.2f not below Ts=1.5 latency %.2f", algo, lo, hi)
		}
	}
	if small.ID != "Fig.1b" {
		t.Errorf("startup figure ID = %q", small.ID)
	}
}

// TestFig2Shape asserts the node-level claims: the coded-path
// algorithms have lower arrival-time CV than RD and EDN at every
// size.
func TestFig2Shape(t *testing.T) {
	fig, err := Fig2(Fig2Config{Reps: 12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	series := seriesMap(fig)
	for _, n := range []float64{64, 256, 512, 1024} {
		rd, edn := at(t, series, "RD", n), at(t, series, "EDN", n)
		db, ab := at(t, series, "DB", n), at(t, series, "AB", n)
		worstProposed := db
		if ab > worstProposed {
			worstProposed = ab
		}
		if worstProposed >= rd && worstProposed >= edn {
			t.Errorf("N=%g: proposed CVs (DB %.3f, AB %.3f) not below both baselines (RD %.3f, EDN %.3f)",
				n, db, ab, rd, edn)
		}
	}
}

// TestTablesImprovementsPositiveAndGrow asserts Tables 1–2: DB and AB
// improve over both baselines at every size, and the improvement over
// RD grows from the smallest to the largest network.
func TestTablesImprovementsPositiveAndGrow(t *testing.T) {
	// The growth comparison needs the paper's full 40 replications
	// and averaging over several independent experiment sets;
	// sampling noise at a single seed can flatten it.
	seeds := []uint64{13, 99, 2005}
	var firstDB, lastDB float64
	for _, seed := range seeds {
		t1, t2, err := Tables(Fig2Config{Reps: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range []*CVTable{t1, t2} {
			if len(tbl.Columns) != 4 {
				t.Fatalf("%s has %d columns", tbl.ID, len(tbl.Columns))
			}
			for _, col := range tbl.Columns {
				for _, row := range col.Rows {
					if row.Improvement <= 0 {
						t.Errorf("%s at %s (seed %d): %s improvement %.1f%% not positive",
							tbl.ID, col.Mesh, seed, row.Baseline, row.Improvement)
					}
				}
			}
		}
		firstDB += t1.Columns[0].Rows[0].Improvement
		lastDB += t1.Columns[3].Rows[0].Improvement
	}
	// Growth with size is asserted for DB only: the paper's own text
	// (§3.2) notes AB's longer third-step paths raise its CV in
	// larger networks, contradicting its Table 2; our reproduction
	// sides with the text (see EXPERIMENTS.md).
	n := float64(len(seeds))
	if lastDB/n <= firstDB/n {
		t.Errorf("Table 1: mean DB improvement over RD did not grow with size (%.1f%% -> %.1f%%)",
			firstDB/n, lastDB/n)
	}
}

// TestFig34Shape asserts §3.3 on a reduced sweep: latency rises with
// load, RD is worst at high load, and AB stays lowest.
func TestFig34Shape(t *testing.T) {
	fig, err := Fig34(Fig34Config{
		Dims:      []int{8, 8, 8},
		Loads:     []float64{0.005, 0.05},
		BatchSize: 40, Batches: 5, Warmup: 1,
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	series := seriesMap(fig)
	lo, hi := 0.005, 0.05
	for _, algo := range []string{"RD", "EDN", "DB", "AB"} {
		if at(t, series, algo, hi) <= at(t, series, algo, lo)*0.8 {
			t.Errorf("%s: latency fell with load (%.2f -> %.2f)",
				algo, at(t, series, algo, lo), at(t, series, algo, hi))
		}
	}
	rdHi := at(t, series, "RD", hi)
	for _, algo := range []string{"EDN", "DB", "AB"} {
		if at(t, series, algo, hi) >= rdHi {
			t.Errorf("%s (%.2f) not below RD (%.2f) at high load", algo, at(t, series, algo, hi), rdHi)
		}
	}
	abHi := at(t, series, "AB", hi)
	if abHi >= at(t, series, "DB", hi) || abHi >= at(t, series, "EDN", hi) {
		t.Errorf("AB (%.2f) not best at high load", abHi)
	}
	if fig.ID != "Fig.3" {
		t.Errorf("figure ID = %q", fig.ID)
	}
}

// TestFigureFormat checks the text rendering used by cmd/paperbench.
func TestFigureFormat(t *testing.T) {
	fig := &Figure{
		ID:     "Fig.X",
		Title:  "test",
		XLabel: "nodes",
		Series: []Series{
			{Label: "RD", Points: []Point{{X: 64, Y: 1.5}, {X: 512, Y: 2.5}}},
			{Label: "DB", Points: []Point{{X: 64, Y: 1.0}}},
		},
	}
	out := fig.Format()
	for _, want := range []string{"Fig.X", "RD", "DB", "64", "512", "1.5000", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
	if fig.String() != out {
		t.Error("String() != Format()")
	}
}

func seriesMap(f *Figure) map[string]Series {
	out := map[string]Series{}
	for _, s := range f.Series {
		out[s.Label] = s
	}
	return out
}

func at(t *testing.T, series map[string]Series, label string, x float64) float64 {
	t.Helper()
	s, ok := series[label]
	if !ok {
		t.Fatalf("no series %q", label)
	}
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	t.Fatalf("series %q has no point at %g", label, x)
	return 0
}
