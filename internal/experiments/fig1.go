package experiments

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Fig1Config parameterises the Fig. 1 sweep (broadcast latency vs
// network size) and the §3.1 startup-latency sensitivity study.
type Fig1Config struct {
	// Sizes lists the mesh shapes; nil means the paper's
	// 4³, 8³, 10³, 16³ (64–4096 nodes).
	Sizes [][]int
	// Length is the message length in flits (paper: 100).
	Length int
	// Ts is the startup latency in µs (paper: 1.5; §3.1 also 0.15).
	Ts float64
	// Reps is the number of random-source replications per point
	// (paper: at least 40).
	Reps int
	// Seed drives source selection; replication i of any point draws
	// from sim.Substream(Seed, i), so output is independent of Procs.
	Seed uint64
	// Procs caps the replication fan-out worker count; 0 means one
	// worker per available core.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-
	// replication counts as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

func (c *Fig1Config) setDefaults() {
	if c.Sizes == nil {
		c.Sizes = [][]int{{4, 4, 4}, {8, 8, 8}, {10, 10, 10}, {16, 16, 16}}
	}
	if c.Length == 0 {
		c.Length = 100
	}
	if c.Ts == 0 {
		c.Ts = 1.5
	}
	if c.Reps == 0 {
		c.Reps = 40
	}
}

// Fig1 reproduces Fig. 1: single-source broadcast latency of the four
// algorithms as a function of network size. Each (algorithm, size)
// point is the mean over Reps replications with a 95% confidence
// interval in Point.CI. The FULL algos×sizes×reps index space is
// submitted to the pool as one Map, so parallelism is never capped by
// a single point's replication count and there is no barrier between
// points; replication i of every cell draws its source from
// sim.Substream(Seed, i), and aggregation runs in replication order,
// so output is bit-identical for any Procs value.
func Fig1(cfg Fig1Config) (*Figure, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "Fig.1",
		Title:  fmt.Sprintf("Broadcast latency vs network size (L=%d flits, Ts=%g µs)", cfg.Length, cfg.Ts),
		XLabel: "nodes",
		YLabel: "latency (µs)",
	}
	algos := PaperAlgorithms()
	meshes := make([]*topology.Mesh, len(cfg.Sizes))
	for i, dims := range cfg.Sizes {
		meshes[i] = topology.NewMesh(dims...)
	}
	jobs := len(algos) * len(meshes) * cfg.Reps
	p := pool(cfg.Procs, jobs, cfg.Progress)
	lats, err := runner.Map(p, jobs, func(k int) (float64, error) {
		algo := algos[k/(len(meshes)*cfg.Reps)]
		m := meshes[(k/cfg.Reps)%len(meshes)]
		src := topology.NodeID(sim.Substream(cfg.Seed, uint64(k%cfg.Reps)).Intn(m.Nodes()))
		r, err := broadcast.RunSingle(m, algo, src, baseConfig(cfg.Ts), cfg.Length)
		if err != nil {
			return 0, fmt.Errorf("fig1 %s on %s: %w", algo.Name(), m.Name(), err)
		}
		return r.Latency(), nil
	})
	if err != nil {
		return nil, err
	}
	for a, algo := range algos {
		s := Series{Label: algo.Name()}
		for mi, m := range meshes {
			var acc stats.Accumulator
			base := (a*len(meshes) + mi) * cfg.Reps
			for i := 0; i < cfg.Reps; i++ {
				acc.Add(lats[base+i])
			}
			s.Points = append(s.Points, Point{
				X:  float64(m.Nodes()),
				Y:  acc.Mean(),
				CI: acc.Confidence95(),
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig1StartupLatency reproduces the §3.1 sensitivity study: the same
// sweep at the smaller startup latency Ts = 0.15 µs.
func Fig1StartupLatency(cfg Fig1Config) (*Figure, error) {
	cfg.setDefaults()
	cfg.Ts = 0.15
	fig, err := Fig1(cfg)
	if err != nil {
		return nil, err
	}
	fig.ID = "Fig.1b"
	return fig, nil
}
