package experiments

import (
	"context"

	"repro/internal/scenario"
)

// Fig1Config parameterises the Fig. 1 sweep (broadcast latency vs
// network size) and the §3.1 startup-latency sensitivity study.
type Fig1Config struct {
	// Sizes lists the mesh shapes; nil means the paper's
	// 4³, 8³, 10³, 16³ (64–4096 nodes).
	Sizes [][]int
	// Length is the message length in flits (paper: 100).
	Length int
	// Ts is the startup latency in µs (paper: 1.5; §3.1 also 0.15).
	Ts float64
	// Reps is the number of random-source replications per point
	// (paper: at least 40).
	Reps int
	// Seed drives source selection; replication i of any point draws
	// from sim.Substream(Seed, i), so output is independent of Procs.
	Seed uint64
	// Procs caps the replication fan-out worker count; 0 means one
	// worker per available core.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-
	// replication counts as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

// spec translates the legacy config into the registered scenario
// shape; unset knobs fall through to the spec defaults, which are
// the same paper values the legacy setDefaults applied.
func (c Fig1Config) spec(name, id string, ts float64) scenario.Spec {
	return scenario.Spec{
		Name: name, ID: id,
		Workload: scenario.Uncontended,
		Axis:     scenario.AxisSize,
		Sizes:    c.Sizes,
		Length:   c.Length,
		Ts:       ts,
		Reps:     c.Reps,
		Seed:     c.Seed,
		Procs:    c.Procs,
		Progress: c.Progress,
	}
}

// Fig1 reproduces Fig. 1: single-source broadcast latency of the four
// algorithms as a function of network size.
//
// Deprecated: build the "fig1" scenario through scenario.Build (or
// wormsim.NewScenario) and run it with scenario.Run.
func Fig1(cfg Fig1Config) (*Figure, error) {
	res, err := scenario.Run(context.Background(), cfg.spec("fig1", "Fig.1", cfg.Ts))
	if err != nil {
		return nil, err
	}
	return res.Figure, nil
}

// Fig1StartupLatency reproduces the §3.1 sensitivity study: the same
// sweep at the smaller startup latency Ts = 0.15 µs.
//
// Deprecated: build the "fig1b" scenario through scenario.Build.
func Fig1StartupLatency(cfg Fig1Config) (*Figure, error) {
	res, err := scenario.Run(context.Background(), cfg.spec("fig1b", "Fig.1b", 0.15))
	if err != nil {
		return nil, err
	}
	return res.Figure, nil
}
