package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// Fig1Config parameterises the Fig. 1 sweep (broadcast latency vs
// network size) and the §3.1 startup-latency sensitivity study.
type Fig1Config struct {
	// Sizes lists the mesh shapes; nil means the paper's
	// 4³, 8³, 10³, 16³ (64–4096 nodes).
	Sizes [][]int
	// Length is the message length in flits (paper: 100).
	Length int
	// Ts is the startup latency in µs (paper: 1.5; §3.1 also 0.15).
	Ts float64
	// Reps is the number of random-source replications per point
	// (paper: at least 40).
	Reps int
	// Seed drives source selection.
	Seed uint64
}

func (c *Fig1Config) setDefaults() {
	if c.Sizes == nil {
		c.Sizes = [][]int{{4, 4, 4}, {8, 8, 8}, {10, 10, 10}, {16, 16, 16}}
	}
	if c.Length == 0 {
		c.Length = 100
	}
	if c.Ts == 0 {
		c.Ts = 1.5
	}
	if c.Reps == 0 {
		c.Reps = 40
	}
}

// Fig1 reproduces Fig. 1: single-source broadcast latency of the four
// algorithms as a function of network size.
func Fig1(cfg Fig1Config) (*Figure, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "Fig.1",
		Title:  fmt.Sprintf("Broadcast latency vs network size (L=%d flits, Ts=%g µs)", cfg.Length, cfg.Ts),
		XLabel: "nodes",
		YLabel: "latency (µs)",
	}
	for _, algo := range PaperAlgorithms() {
		s := Series{Label: algo.Name()}
		for _, dims := range cfg.Sizes {
			m := topology.NewMesh(dims...)
			ncfg := baseConfig(cfg.Ts)
			st, err := metrics.SingleSourceStudy(m, algo, ncfg, cfg.Length, cfg.Reps, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig1 %s on %s: %w", algo.Name(), m.Name(), err)
			}
			s.Points = append(s.Points, Point{X: float64(m.Nodes()), Y: st.Latency.Mean()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig1StartupLatency reproduces the §3.1 sensitivity study: the same
// sweep at the smaller startup latency Ts = 0.15 µs.
func Fig1StartupLatency(cfg Fig1Config) (*Figure, error) {
	cfg.setDefaults()
	cfg.Ts = 0.15
	fig, err := Fig1(cfg)
	if err != nil {
		return nil, err
	}
	fig.ID = "Fig.1b"
	return fig, nil
}
