package experiments

import (
	"context"

	"repro/internal/scenario"
)

// Fig2Config parameterises the node-level study: Fig. 2 (coefficient
// of variation vs network size) and Tables 1 and 2 (CV plus
// improvement percentages).
//
// The paper measures arrival-time variation over "at least 40
// experiments" with randomly chosen sources; its §3.2 numbers (RD's
// CV growing with network size) are only consistent with broadcasts
// that overlap in the network and contend for channels, so the
// default study injects the measured broadcasts with exponential
// inter-arrival times into one shared network. Set Interarrival very
// large (or use metrics.SingleSourceStudy directly) for the
// uncontended ablation.
type Fig2Config struct {
	// Sizes lists the mesh shapes; nil means the paper's 4×4×4,
	// 4×4×16, 8×8×8, 8×8×16 (64–1024 nodes).
	Sizes [][]int
	// Length is the message length in flits (Fig. 2 caption: 100;
	// Tables: 64).
	Length int
	// Ts is the startup latency in µs (paper: 1.5).
	Ts float64
	// Reps is the number of measured broadcasts (paper: ≥40).
	Reps int
	// Interarrival is the mean gap between broadcast initiations in
	// µs. Zero means 5 µs — light overlapping load.
	Interarrival float64
	// PerNodeInterarrival, when set, overrides Interarrival with
	// PerNodeInterarrival/Nodes so the per-node broadcast rate is
	// constant across sizes (larger networks carry more concurrent
	// broadcasts, the regime in which RD's CV grows with size as in
	// the paper's tables).
	PerNodeInterarrival float64
	// Seed drives source selection.
	Seed uint64
	// Procs caps the worker count; 0 means one worker per core. One
	// contended study is a single shared-network simulation, so the
	// unit of parallelism here is the (algorithm, mesh) cell, not
	// the replication.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-cell
	// counts as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

func (c Fig2Config) spec() scenario.Spec {
	return scenario.Spec{
		Name: "fig2", ID: "Fig.2",
		Workload:            scenario.Contended,
		Axis:                scenario.AxisSize,
		Sizes:               c.Sizes,
		Length:              c.Length,
		Ts:                  c.Ts,
		Reps:                c.Reps,
		Interarrival:        c.Interarrival,
		PerNodeInterarrival: c.PerNodeInterarrival,
		Seed:                c.Seed,
		Procs:               c.Procs,
		Progress:            c.Progress,
	}
}

// Fig2 reproduces Fig. 2: the coefficient of variation of message
// arrival times at the destination nodes, per algorithm, vs size.
//
// Deprecated: build the "fig2" scenario through scenario.Build (or
// wormsim.NewScenario) and run it with scenario.Run.
func Fig2(cfg Fig2Config) (*Figure, error) {
	res, err := scenario.Run(context.Background(), cfg.spec())
	if err != nil {
		return nil, err
	}
	return res.Figure, nil
}

// Tables reproduces Tables 1 and 2: CV of RD and EDN with the
// improvement percentages of DB (Table 1) and AB (Table 2).
//
// Deprecated: run the "fig2" (or "table1"/"table2") scenario; every
// contended run over the paper's four algorithms carries both table
// projections in its Result.
func Tables(cfg Fig2Config) (*CVTable, *CVTable, error) {
	res, err := scenario.Run(context.Background(), cfg.spec())
	if err != nil {
		return nil, nil, err
	}
	return res.Table1, res.Table2, nil
}

// Fig2AndTables computes the shared (algorithm, mesh) study grid ONCE
// and projects it into Fig. 2 and Tables 1–2.
//
// Deprecated: run the "fig2" scenario; its Result carries the figure
// and both tables from one grid.
func Fig2AndTables(cfg Fig2Config) (*Figure, *CVTable, *CVTable, error) {
	res, err := scenario.Run(context.Background(), cfg.spec())
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Figure, res.Table1, res.Table2, nil
}
