package experiments

import (
	"fmt"
	"strings"

	"repro/internal/broadcast"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Fig2Config parameterises the node-level study: Fig. 2 (coefficient
// of variation vs network size) and Tables 1 and 2 (CV plus
// improvement percentages).
//
// The paper measures arrival-time variation over "at least 40
// experiments" with randomly chosen sources; its §3.2 numbers (RD's
// CV growing with network size) are only consistent with broadcasts
// that overlap in the network and contend for channels, so the
// default study injects the measured broadcasts with exponential
// inter-arrival times into one shared network. Set Interarrival very
// large (or use metrics.SingleSourceStudy directly) for the
// uncontended ablation.
type Fig2Config struct {
	// Sizes lists the mesh shapes; nil means the paper's 4×4×4,
	// 4×4×16, 8×8×8, 8×8×16 (64–1024 nodes).
	Sizes [][]int
	// Length is the message length in flits (Fig. 2 caption: 100;
	// Tables: 64).
	Length int
	// Ts is the startup latency in µs (paper: 1.5).
	Ts float64
	// Reps is the number of measured broadcasts (paper: ≥40).
	Reps int
	// Interarrival is the mean gap between broadcast initiations in
	// µs. Zero means 5 µs — light overlapping load.
	Interarrival float64
	// PerNodeInterarrival, when set, overrides Interarrival with
	// PerNodeInterarrival/Nodes so the per-node broadcast rate is
	// constant across sizes (larger networks carry more concurrent
	// broadcasts, the regime in which RD's CV grows with size as in
	// the paper's tables).
	PerNodeInterarrival float64
	// Seed drives source selection.
	Seed uint64
}

func (c *Fig2Config) setDefaults() {
	if c.Sizes == nil {
		c.Sizes = [][]int{{4, 4, 4}, {4, 4, 16}, {8, 8, 8}, {8, 8, 16}}
	}
	if c.Length == 0 {
		c.Length = 64
	}
	if c.Ts == 0 {
		c.Ts = 1.5
	}
	if c.Reps == 0 {
		c.Reps = 40
	}
	if c.Interarrival == 0 {
		c.Interarrival = 5
	}
}

func (c *Fig2Config) gapFor(nodes int) float64 {
	if c.PerNodeInterarrival > 0 {
		return c.PerNodeInterarrival / float64(nodes)
	}
	return c.Interarrival
}

// Fig2 reproduces Fig. 2: the coefficient of variation of message
// arrival times at the destination nodes, per algorithm, vs size.
func Fig2(cfg Fig2Config) (*Figure, error) {
	cfg.setDefaults()
	fig := &Figure{
		ID:     "Fig.2",
		Title:  fmt.Sprintf("Coefficient of variation of arrival times vs network size (L=%d, Ts=%g µs)", cfg.Length, cfg.Ts),
		XLabel: "nodes",
		YLabel: "CV",
	}
	for _, algo := range PaperAlgorithms() {
		s := Series{Label: algo.Name()}
		for _, dims := range cfg.Sizes {
			m := topology.NewMesh(dims...)
			st, err := metrics.ContendedCVStudy(m, algo, metrics.ContendedConfig{
				Net:          baseConfig(cfg.Ts),
				Length:       cfg.Length,
				Broadcasts:   cfg.Reps,
				Interarrival: cfg.gapFor(m.Nodes()),
				Seed:         cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig2 %s on %s: %w", algo.Name(), m.Name(), err)
			}
			s.Points = append(s.Points, Point{X: float64(m.Nodes()), Y: st.CV.Mean()})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// CVTable is one of the paper's Tables 1/2: per mesh size, the CV of
// the baselines and the improvement of the proposed algorithm.
type CVTable struct {
	ID       string
	Proposed string
	Columns  []CVColumn
}

// CVColumn is one mesh-size column of a CVTable.
type CVColumn struct {
	Mesh       string
	Nodes      int
	ProposedCV float64
	Rows       []metrics.ImprovementRow
}

// String implements fmt.Stringer via Format.
func (t *CVTable) String() string { return t.Format() }

// Format renders the table in the paper's layout: baselines as rows,
// sizes as columns, each cell CV and improvement%.
func (t *CVTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: CV of broadcast latencies with %s improvement (%sIMR%%)\n", t.ID, t.Proposed, t.Proposed)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%22s", fmt.Sprintf("%s (%d)", c.Mesh, c.Nodes))
	}
	b.WriteByte('\n')
	if len(t.Columns) == 0 {
		return b.String()
	}
	for i := range t.Columns[0].Rows {
		fmt.Fprintf(&b, "%-10s", t.Columns[0].Rows[i].Baseline)
		for _, c := range t.Columns {
			r := c.Rows[i]
			fmt.Fprintf(&b, "%22s", fmt.Sprintf("CV %.4f  +%.2f%%", r.BaselineCV, r.Improvement))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", t.Proposed)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%22s", fmt.Sprintf("CV %.4f", c.ProposedCV))
	}
	b.WriteByte('\n')
	return b.String()
}

// Tables reproduces Tables 1 and 2: CV of RD and EDN with the
// improvement percentages of DB (Table 1) and AB (Table 2).
func Tables(cfg Fig2Config) (*CVTable, *CVTable, error) {
	cfg.setDefaults()
	rd, edn, db, ab := broadcast.NewRD(), broadcast.NewEDN(), broadcast.NewDB(), broadcast.NewAB()

	t1 := &CVTable{ID: "Table 1", Proposed: "DB"}
	t2 := &CVTable{ID: "Table 2", Proposed: "AB"}
	for _, dims := range cfg.Sizes {
		m := topology.NewMesh(dims...)
		stats := map[string]*metrics.SingleSourceStats{}
		for _, algo := range []broadcast.Algorithm{rd, edn, db, ab} {
			st, err := metrics.ContendedCVStudy(m, algo, metrics.ContendedConfig{
				Net:          baseConfig(cfg.Ts),
				Length:       cfg.Length,
				Broadcasts:   cfg.Reps,
				Interarrival: cfg.gapFor(m.Nodes()),
				Seed:         cfg.Seed,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("tables %s on %s: %w", algo.Name(), m.Name(), err)
			}
			stats[algo.Name()] = st
		}
		t1.Columns = append(t1.Columns, CVColumn{
			Mesh:       m.Name(),
			Nodes:      m.Nodes(),
			ProposedCV: stats["DB"].CV.Mean(),
			Rows:       metrics.Improvements(stats["DB"], stats["RD"], stats["EDN"]),
		})
		t2.Columns = append(t2.Columns, CVColumn{
			Mesh:       m.Name(),
			Nodes:      m.Nodes(),
			ProposedCV: stats["AB"].CV.Mean(),
			Rows:       metrics.Improvements(stats["AB"], stats["RD"], stats["EDN"]),
		})
	}
	return t1, t2, nil
}
