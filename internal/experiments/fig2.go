package experiments

import (
	"fmt"
	"strings"

	"repro/internal/broadcast"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/topology"
)

// Fig2Config parameterises the node-level study: Fig. 2 (coefficient
// of variation vs network size) and Tables 1 and 2 (CV plus
// improvement percentages).
//
// The paper measures arrival-time variation over "at least 40
// experiments" with randomly chosen sources; its §3.2 numbers (RD's
// CV growing with network size) are only consistent with broadcasts
// that overlap in the network and contend for channels, so the
// default study injects the measured broadcasts with exponential
// inter-arrival times into one shared network. Set Interarrival very
// large (or use metrics.SingleSourceStudy directly) for the
// uncontended ablation.
type Fig2Config struct {
	// Sizes lists the mesh shapes; nil means the paper's 4×4×4,
	// 4×4×16, 8×8×8, 8×8×16 (64–1024 nodes).
	Sizes [][]int
	// Length is the message length in flits (Fig. 2 caption: 100;
	// Tables: 64).
	Length int
	// Ts is the startup latency in µs (paper: 1.5).
	Ts float64
	// Reps is the number of measured broadcasts (paper: ≥40).
	Reps int
	// Interarrival is the mean gap between broadcast initiations in
	// µs. Zero means 5 µs — light overlapping load.
	Interarrival float64
	// PerNodeInterarrival, when set, overrides Interarrival with
	// PerNodeInterarrival/Nodes so the per-node broadcast rate is
	// constant across sizes (larger networks carry more concurrent
	// broadcasts, the regime in which RD's CV grows with size as in
	// the paper's tables).
	PerNodeInterarrival float64
	// Seed drives source selection.
	Seed uint64
	// Procs caps the worker count; 0 means one worker per core. One
	// contended study is a single shared-network simulation, so the
	// unit of parallelism here is the (algorithm, mesh) cell, not
	// the replication.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-cell
	// counts as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

func (c *Fig2Config) setDefaults() {
	if c.Sizes == nil {
		c.Sizes = [][]int{{4, 4, 4}, {4, 4, 16}, {8, 8, 8}, {8, 8, 16}}
	}
	if c.Length == 0 {
		c.Length = 64
	}
	if c.Ts == 0 {
		c.Ts = 1.5
	}
	if c.Reps == 0 {
		c.Reps = 40
	}
	if c.Interarrival == 0 {
		c.Interarrival = 5
	}
}

func (c *Fig2Config) gapFor(nodes int) float64 {
	if c.PerNodeInterarrival > 0 {
		return c.PerNodeInterarrival / float64(nodes)
	}
	return c.Interarrival
}

// study runs the contended CV study for one (algorithm, mesh) cell.
func (c *Fig2Config) study(algo broadcast.Algorithm, dims []int) (*metrics.SingleSourceStats, error) {
	m := topology.NewMesh(dims...)
	st, err := metrics.ContendedCVStudy(m, algo, metrics.ContendedConfig{
		Net:          baseConfig(c.Ts),
		Length:       c.Length,
		Broadcasts:   c.Reps,
		Interarrival: c.gapFor(m.Nodes()),
		Seed:         c.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", algo.Name(), m.Name(), err)
	}
	return st, nil
}

// studyGrid runs the full (algorithm, mesh) study grid once, cells
// in parallel on the worker pool; cell (a, i) lands at index
// a*len(Sizes)+i. Fig. 2 and Tables 1–2 are different projections of
// this same grid, so callers wanting both should run it once (see
// Fig2AndTables).
func (c *Fig2Config) studyGrid() ([]broadcast.Algorithm, []*metrics.SingleSourceStats, error) {
	algos := PaperAlgorithms()
	cells := len(algos) * len(c.Sizes)
	p := pool(c.Procs, cells, c.Progress)
	grid, err := runner.Map(p, cells, func(k int) (*metrics.SingleSourceStats, error) {
		return c.study(algos[k/len(c.Sizes)], c.Sizes[k%len(c.Sizes)])
	})
	return algos, grid, err
}

// fig2From assembles the Fig. 2 figure from a computed study grid.
func (c *Fig2Config) fig2From(algos []broadcast.Algorithm, grid []*metrics.SingleSourceStats) *Figure {
	fig := &Figure{
		ID:     "Fig.2",
		Title:  fmt.Sprintf("Coefficient of variation of arrival times vs network size (L=%d, Ts=%g µs)", c.Length, c.Ts),
		XLabel: "nodes",
		YLabel: "CV",
	}
	for a, algo := range algos {
		s := Series{Label: algo.Name()}
		for i := range c.Sizes {
			st := grid[a*len(c.Sizes)+i]
			s.Points = append(s.Points, Point{
				X:  float64(st.Nodes),
				Y:  st.CV.Mean(),
				CI: st.CV.Confidence95(),
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig2 reproduces Fig. 2: the coefficient of variation of message
// arrival times at the destination nodes, per algorithm, vs size.
// The (algorithm, mesh) cells are independent simulations and run in
// parallel on the worker pool; each point carries the 95% confidence
// interval of the CV over the measured broadcasts.
func Fig2(cfg Fig2Config) (*Figure, error) {
	cfg.setDefaults()
	algos, grid, err := cfg.studyGrid()
	if err != nil {
		return nil, fmt.Errorf("fig2 %w", err)
	}
	return cfg.fig2From(algos, grid), nil
}

// CVTable is one of the paper's Tables 1/2: per mesh size, the CV of
// the baselines and the improvement of the proposed algorithm.
type CVTable struct {
	ID       string
	Proposed string
	Columns  []CVColumn
}

// CVColumn is one mesh-size column of a CVTable.
type CVColumn struct {
	Mesh       string
	Nodes      int
	ProposedCV float64
	Rows       []metrics.ImprovementRow
}

// String implements fmt.Stringer via Format.
func (t *CVTable) String() string { return t.Format() }

// Format renders the table in the paper's layout: baselines as rows,
// sizes as columns, each cell CV and improvement%.
func (t *CVTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: CV of broadcast latencies with %s improvement (%sIMR%%)\n", t.ID, t.Proposed, t.Proposed)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%22s", fmt.Sprintf("%s (%d)", c.Mesh, c.Nodes))
	}
	b.WriteByte('\n')
	if len(t.Columns) == 0 {
		return b.String()
	}
	for i := range t.Columns[0].Rows {
		fmt.Fprintf(&b, "%-10s", t.Columns[0].Rows[i].Baseline)
		for _, c := range t.Columns {
			r := c.Rows[i]
			fmt.Fprintf(&b, "%22s", fmt.Sprintf("CV %.4f  +%.2f%%", r.BaselineCV, r.Improvement))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", t.Proposed)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%22s", fmt.Sprintf("CV %.4f", c.ProposedCV))
	}
	b.WriteByte('\n')
	return b.String()
}

// tablesFrom assembles Tables 1 and 2 from a computed study grid.
func (c *Fig2Config) tablesFrom(algos []broadcast.Algorithm, grid []*metrics.SingleSourceStats) (*CVTable, *CVTable) {
	t1 := &CVTable{ID: "Table 1", Proposed: "DB"}
	t2 := &CVTable{ID: "Table 2", Proposed: "AB"}
	for i, dims := range c.Sizes {
		m := topology.NewMesh(dims...)
		stats := map[string]*metrics.SingleSourceStats{}
		for a, algo := range algos {
			stats[algo.Name()] = grid[a*len(c.Sizes)+i]
		}
		t1.Columns = append(t1.Columns, CVColumn{
			Mesh:       m.Name(),
			Nodes:      m.Nodes(),
			ProposedCV: stats["DB"].CV.Mean(),
			Rows:       metrics.Improvements(stats["DB"], stats["RD"], stats["EDN"]),
		})
		t2.Columns = append(t2.Columns, CVColumn{
			Mesh:       m.Name(),
			Nodes:      m.Nodes(),
			ProposedCV: stats["AB"].CV.Mean(),
			Rows:       metrics.Improvements(stats["AB"], stats["RD"], stats["EDN"]),
		})
	}
	return t1, t2
}

// Tables reproduces Tables 1 and 2: CV of RD and EDN with the
// improvement percentages of DB (Table 1) and AB (Table 2). All
// (algorithm, mesh) studies run in parallel on the worker pool; the
// tables are assembled from the results in the paper's fixed order,
// so output does not depend on scheduling.
func Tables(cfg Fig2Config) (*CVTable, *CVTable, error) {
	cfg.setDefaults()
	algos, grid, err := cfg.studyGrid()
	if err != nil {
		return nil, nil, fmt.Errorf("tables %w", err)
	}
	t1, t2 := cfg.tablesFrom(algos, grid)
	return t1, t2, nil
}

// Fig2AndTables computes the shared (algorithm, mesh) study grid ONCE
// and projects it into Fig. 2 and Tables 1–2 — the contended studies
// are among the most expensive artifacts, and running Fig2 and Tables
// separately would simulate the identical grid twice. cmd/paperbench
// uses this whenever both artifacts are selected.
func Fig2AndTables(cfg Fig2Config) (*Figure, *CVTable, *CVTable, error) {
	cfg.setDefaults()
	algos, grid, err := cfg.studyGrid()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fig2+tables %w", err)
	}
	t1, t2 := cfg.tablesFrom(algos, grid)
	return cfg.fig2From(algos, grid), t1, t2, nil
}
