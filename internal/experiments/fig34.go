package experiments

import (
	"context"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Fig34Config parameterises the mixed unicast/broadcast study of
// §3.3 (Figs. 3 and 4): every node generates messages at exponential
// intervals, 90% unicast to uniform destinations and 10% broadcast.
type Fig34Config struct {
	// Dims is the mesh shape: {8,8,8} for Fig. 3, {16,16,8} for Fig. 4.
	Dims []int
	// Loads are per-node generation rates in messages/ms on the
	// paper's axis (0.005 … 0.05); nil means the paper's seven
	// points.
	Loads []float64
	// LoadScale multiplies the injected rate. The paper's axis spans
	// its simulator's saturation region, whose service times are two
	// to three orders of magnitude above what its stated Cray-T3D
	// constants (Ts=1.5 µs, β=0.003 µs/flit) produce; with those
	// constants the same saturation region sits at roughly 320× the
	// paper's rates. The default keeps the paper's axis labels and
	// scales the injected rate by 320 so the reproduced curves
	// traverse the same regimes (see EXPERIMENTS.md). Set to 1 for
	// literal rates.
	LoadScale float64
	// Length is the message length in flits (paper: 32).
	Length int
	// BroadcastFraction defaults to the paper's 0.10.
	BroadcastFraction float64
	// BatchSize, Batches, Warmup configure batch means (paper: 21
	// batches, first discarded).
	BatchSize, Batches, Warmup int
	// Seed drives all randomness.
	Seed uint64
	// MaxTime bounds each run in simulated µs; a saturated run is cut
	// off and reported at its diverging floor estimate.
	MaxTime sim.Time
	// MaxInjected bounds the injected messages per run. Zero picks
	// 10× the measured window on meshes up to 1024 nodes and 3× above
	// — a saturated RD point on 16×16×8 otherwise simulates millions
	// of worms for no extra information.
	MaxInjected int
	// Procs caps the worker count; 0 means one worker per core. One
	// mixed-traffic run is a single closed simulation, so the unit
	// of parallelism is the (algorithm, load) point.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-point
	// counts as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

// Fig34 reproduces Fig. 3 (8×8×8) or Fig. 4 (16×16×8) depending on
// Dims: mean communication latency vs offered load per algorithm.
// RD, EDN and DB run over dimension-order unicast routing; AB couples
// with west-first adaptive routing, to which the paper attributes its
// advantage under load.
//
// Deprecated: build the "fig3" or "fig4" scenario through
// scenario.Build (or wormsim.NewScenario) and run it with
// scenario.Run.
func Fig34(cfg Fig34Config) (*Figure, error) {
	dims := cfg.Dims
	if dims == nil {
		dims = []int{8, 8, 8}
	}
	name, id := "fig3", "Fig.3"
	if topology.NewMesh(dims...).Nodes() != 512 {
		name, id = "fig4", "Fig.4"
	}
	res, err := scenario.Run(context.Background(), scenario.Spec{
		Name: name, ID: id,
		Workload:          scenario.Mixed,
		Axis:              scenario.AxisLoad,
		Dims:              dims,
		Xs:                cfg.Loads,
		LoadScale:         cfg.LoadScale,
		Length:            cfg.Length,
		BroadcastFraction: cfg.BroadcastFraction,
		BatchSize:         cfg.BatchSize,
		Batches:           cfg.Batches,
		Warmup:            cfg.Warmup,
		Seed:              cfg.Seed,
		MaxTime:           cfg.MaxTime,
		MaxInjected:       cfg.MaxInjected,
		Procs:             cfg.Procs,
		Progress:          cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	return res.Figure, nil
}
