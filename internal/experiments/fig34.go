package experiments

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig34Config parameterises the mixed unicast/broadcast study of
// §3.3 (Figs. 3 and 4): every node generates messages at exponential
// intervals, 90% unicast to uniform destinations and 10% broadcast.
type Fig34Config struct {
	// Dims is the mesh shape: {8,8,8} for Fig. 3, {16,16,8} for Fig. 4.
	Dims []int
	// Loads are per-node generation rates in messages/ms on the
	// paper's axis (0.005 … 0.05); nil means the paper's seven
	// points.
	Loads []float64
	// LoadScale multiplies the injected rate. The paper's axis spans
	// its simulator's saturation region, whose service times are two
	// to three orders of magnitude above what its stated Cray-T3D
	// constants (Ts=1.5 µs, β=0.003 µs/flit) produce; with those
	// constants the same saturation region sits at roughly 320× the
	// paper's rates. The default keeps the paper's axis labels and
	// scales the injected rate by 320 so the reproduced curves
	// traverse the same regimes (see EXPERIMENTS.md). Set to 1 for
	// literal rates.
	LoadScale float64
	// Length is the message length in flits (paper: 32).
	Length int
	// BroadcastFraction defaults to the paper's 0.10.
	BroadcastFraction float64
	// BatchSize, Batches, Warmup configure batch means (paper: 21
	// batches, first discarded).
	BatchSize, Batches, Warmup int
	// Seed drives all randomness.
	Seed uint64
	// MaxTime bounds each run in simulated µs; a saturated run is cut
	// off and reported at its diverging floor estimate.
	MaxTime sim.Time
	// MaxInjected bounds the injected messages per run. Zero picks
	// 10× the measured window on meshes up to 1024 nodes and 3× above
	// — a saturated RD point on 16×16×8 otherwise simulates millions
	// of worms for no extra information.
	MaxInjected int
	// Procs caps the worker count; 0 means one worker per core. One
	// mixed-traffic run is a single closed simulation, so the unit
	// of parallelism is the (algorithm, load) point.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-point
	// counts as the sweep advances. Calls are serialised.
	Progress func(done, total int)
}

func (c *Fig34Config) setDefaults() {
	if c.Dims == nil {
		c.Dims = []int{8, 8, 8}
	}
	if c.Loads == nil {
		c.Loads = []float64{0.005, 0.006, 0.01, 0.02, 0.025, 0.03, 0.05}
	}
	if c.Length == 0 {
		c.Length = 32
	}
	if c.BroadcastFraction == 0 {
		c.BroadcastFraction = 0.10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
	if c.Batches == 0 {
		c.Batches = 21
		c.Warmup = 1
	}
	if c.LoadScale == 0 {
		c.LoadScale = 320
	}
}

// Fig34 reproduces Fig. 3 (8×8×8) or Fig. 4 (16×16×8) depending on
// Dims: mean communication latency vs offered load per algorithm.
// RD, EDN and DB run over dimension-order unicast routing; AB couples
// with west-first adaptive routing, to which the paper attributes its
// advantage under load. The (algorithm, load) grid runs in parallel
// on the worker pool; each point's seed depends only on its load
// index, so the figure is bit-identical for any Procs value. Points
// carry the batch-means 95% confidence interval.
func Fig34(cfg Fig34Config) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	id := "Fig.3"
	if m.Nodes() != 512 {
		id = "Fig.4"
	}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Mean latency vs traffic load on %s (L=%d flits, 90%% unicast / 10%% broadcast)", m.Name(), cfg.Length),
		XLabel: "load (msg/ms)",
		YLabel: "latency (µs)",
	}
	maxInjected := cfg.MaxInjected
	if maxInjected <= 0 {
		window := cfg.Batches * cfg.BatchSize
		if m.Nodes() > 1024 {
			maxInjected = 3 * window
		} else {
			maxInjected = 10 * window
		}
	}
	algos := PaperAlgorithms()
	nl := len(cfg.Loads)
	points := len(algos) * nl
	p := pool(cfg.Procs, points, cfg.Progress)
	results, err := runner.Map(p, points, func(k int) (Point, error) {
		algo, load := algos[k/nl], cfg.Loads[k%nl]
		var unicast, adaptive routing.Selector
		if algo.Name() == "AB" {
			wf := routing.NewWestFirst(m)
			unicast, adaptive = wf, wf
		}
		tcfg := traffic.MixedConfig{
			Rate:              load * cfg.LoadScale / 1000, // messages/ms -> messages/µs
			BroadcastFraction: cfg.BroadcastFraction,
			Length:            cfg.Length,
			Algorithm:         algo,
			Unicast:           unicast,
			Adaptive:          adaptive,
			Seed:              cfg.Seed + uint64(k%nl)*1009,
			BatchSize:         cfg.BatchSize,
			Batches:           cfg.Batches,
			Warmup:            cfg.Warmup,
			MaxTime:           cfg.MaxTime,
			MaxInjected:       maxInjected,
		}
		r, err := traffic.RunMixed(m, tcfg)
		if err != nil {
			return Point{}, fmt.Errorf("%s %s at %g msg/ms: %w", id, algo.Name(), load, err)
		}
		return Point{X: load, Y: r.MeanLatency, CI: r.CI}, nil
	})
	if err != nil {
		return nil, err
	}
	for a, algo := range algos {
		// Three-index slices cap each series' capacity at its own
		// window so an append by a consumer can never clobber the
		// next series' points in the shared backing array.
		fig.Series = append(fig.Series, Series{
			Label:  algo.Name(),
			Points: results[a*nl : (a+1)*nl : (a+1)*nl],
		})
	}
	return fig, nil
}
