package experiments

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Fig34Config parameterises the mixed unicast/broadcast study of
// §3.3 (Figs. 3 and 4): every node generates messages at exponential
// intervals, 90% unicast to uniform destinations and 10% broadcast.
type Fig34Config struct {
	// Dims is the mesh shape: {8,8,8} for Fig. 3, {16,16,8} for Fig. 4.
	Dims []int
	// Loads are per-node generation rates in messages/ms on the
	// paper's axis (0.005 … 0.05); nil means the paper's seven
	// points.
	Loads []float64
	// LoadScale multiplies the injected rate. The paper's axis spans
	// its simulator's saturation region, whose service times are two
	// to three orders of magnitude above what its stated Cray-T3D
	// constants (Ts=1.5 µs, β=0.003 µs/flit) produce; with those
	// constants the same saturation region sits at roughly 320× the
	// paper's rates. The default keeps the paper's axis labels and
	// scales the injected rate by 320 so the reproduced curves
	// traverse the same regimes (see EXPERIMENTS.md). Set to 1 for
	// literal rates.
	LoadScale float64
	// Length is the message length in flits (paper: 32).
	Length int
	// BroadcastFraction defaults to the paper's 0.10.
	BroadcastFraction float64
	// BatchSize, Batches, Warmup configure batch means (paper: 21
	// batches, first discarded).
	BatchSize, Batches, Warmup int
	// Seed drives all randomness.
	Seed uint64
	// MaxTime bounds each run in simulated µs; a saturated run is cut
	// off and reported at its diverging floor estimate.
	MaxTime sim.Time
	// MaxInjected bounds the injected messages per run. Zero picks
	// 10× the measured window on meshes up to 1024 nodes and 3× above
	// — a saturated RD point on 16×16×8 otherwise simulates millions
	// of worms for no extra information.
	MaxInjected int
}

func (c *Fig34Config) setDefaults() {
	if c.Dims == nil {
		c.Dims = []int{8, 8, 8}
	}
	if c.Loads == nil {
		c.Loads = []float64{0.005, 0.006, 0.01, 0.02, 0.025, 0.03, 0.05}
	}
	if c.Length == 0 {
		c.Length = 32
	}
	if c.BroadcastFraction == 0 {
		c.BroadcastFraction = 0.10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
	if c.Batches == 0 {
		c.Batches = 21
		c.Warmup = 1
	}
	if c.LoadScale == 0 {
		c.LoadScale = 320
	}
}

// Fig34 reproduces Fig. 3 (8×8×8) or Fig. 4 (16×16×8) depending on
// Dims: mean communication latency vs offered load per algorithm.
// RD, EDN and DB run over dimension-order unicast routing; AB couples
// with west-first adaptive routing, to which the paper attributes its
// advantage under load.
func Fig34(cfg Fig34Config) (*Figure, error) {
	cfg.setDefaults()
	m := topology.NewMesh(cfg.Dims...)
	id := "Fig.3"
	if m.Nodes() != 512 {
		id = "Fig.4"
	}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Mean latency vs traffic load on %s (L=%d flits, 90%% unicast / 10%% broadcast)", m.Name(), cfg.Length),
		XLabel: "load (msg/ms)",
		YLabel: "latency (µs)",
	}
	maxInjected := cfg.MaxInjected
	if maxInjected <= 0 {
		window := cfg.Batches * cfg.BatchSize
		if m.Nodes() > 1024 {
			maxInjected = 3 * window
		} else {
			maxInjected = 10 * window
		}
	}
	for _, algo := range PaperAlgorithms() {
		s := Series{Label: algo.Name()}
		var unicast, adaptive routing.Selector
		if algo.Name() == "AB" {
			wf := routing.NewWestFirst(m)
			unicast, adaptive = wf, wf
		}
		for i, load := range cfg.Loads {
			tcfg := traffic.MixedConfig{
				Rate:              load * cfg.LoadScale / 1000, // messages/ms -> messages/µs
				BroadcastFraction: cfg.BroadcastFraction,
				Length:            cfg.Length,
				Algorithm:         algo,
				Unicast:           unicast,
				Adaptive:          adaptive,
				Seed:              cfg.Seed + uint64(i)*1009,
				BatchSize:         cfg.BatchSize,
				Batches:           cfg.Batches,
				Warmup:            cfg.Warmup,
				MaxTime:           cfg.MaxTime,
				MaxInjected:       maxInjected,
			}
			r, err := traffic.RunMixed(m, tcfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s at %g msg/ms: %w", id, algo.Name(), load, err)
			}
			s.Points = append(s.Points, Point{X: load, Y: r.MeanLatency})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
