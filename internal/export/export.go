// Package export serialises experiment results for downstream
// plotting: figures become tidy CSV (one row per series point) and
// tables become wide CSV matching the paper's layout. Everything goes
// through encoding/csv so quoting is always correct. NewCSVSink
// adapts the writers to the scenario.Sink interface, so a scenario
// run can stream straight to CSV.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/scenario"
)

// FigureCSV writes fig as tidy CSV: figure,series,x,y,ci95_half,n.
// ci95_half is the half-width of the point's 95% confidence interval
// over replications and n the replication count behind it; both are
// empty for single-shot points.
func FigureCSV(w io.Writer, fig *scenario.Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", fig.XLabel, fig.YLabel, "ci95_half", "n"}); err != nil {
		return err
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			ci, n := "", ""
			if p.CI.N > 1 && !math.IsInf(p.CI.HalfWide, 0) {
				ci = strconv.FormatFloat(p.CI.HalfWide, 'g', -1, 64)
				n = strconv.Itoa(p.CI.N)
			}
			rec := []string{
				fig.ID,
				s.Label,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
				ci,
				n,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// TableCSV writes a CV table as wide CSV: one column group per mesh
// size, rows for each baseline's CV and improvement plus the proposed
// algorithm's CV.
func TableCSV(w io.Writer, t *scenario.CVTable) error {
	cw := csv.NewWriter(w)
	header := []string{"row"}
	for _, c := range t.Columns {
		header = append(header,
			fmt.Sprintf("%s_cv", c.Mesh),
			fmt.Sprintf("%s_improvement_pct", c.Mesh))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(t.Columns) > 0 {
		for i := range t.Columns[0].Rows {
			rec := []string{t.Columns[0].Rows[i].Baseline}
			for _, c := range t.Columns {
				rec = append(rec,
					strconv.FormatFloat(c.Rows[i].BaselineCV, 'g', -1, 64),
					strconv.FormatFloat(c.Rows[i].Improvement, 'g', -1, 64))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	rec := []string{t.Proposed}
	for _, c := range t.Columns {
		rec = append(rec, strconv.FormatFloat(c.ProposedCV, 'g', -1, 64), "")
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Formats names the result encodings NewSink dispatches over — the
// envelope set shared by cmd/sweep (csv), cmd/paperbench (text) and
// the wormsimd service tier (all three, per request).
func Formats() []string { return []string{"json", "csv", "text"} }

// NewSink returns the sink rendering a scenario result in the named
// format: "csv" (the tidy per-point rows sweep emits), "json" (the
// full result envelope with figure and table projections), or "text"
// (the paper's aligned-table layout paperbench prints). The bytes a
// format produces for a given resolved spec are deterministic, which
// is what lets the service tier cache them by spec key.
func NewSink(format string, w io.Writer) (scenario.Sink, error) {
	switch format {
	case "csv":
		return NewCSVSink(w), nil
	case "json":
		return scenario.NewJSONSink(w), nil
	case "text":
		return scenario.NewTextSink(w), nil
	}
	return nil, fmt.Errorf("export: unknown format %q (want json, csv or text)", format)
}

// csvSink writes a scenario result's primary artifact as CSV.
type csvSink struct{ w io.Writer }

// NewCSVSink returns a scenario.Sink that writes the primary
// artifact — the figure, or the table a table1/table2 spec selects —
// as CSV to w. It is what `sweep` streams every scenario through.
func NewCSVSink(w io.Writer) scenario.Sink { return csvSink{w} }

func (s csvSink) Emit(r *scenario.Result) error {
	switch r.Spec.Artifact {
	case scenario.ArtifactTable1:
		return TableCSV(s.w, r.Table1)
	case scenario.ArtifactTable2:
		return TableCSV(s.w, r.Table2)
	default:
		return FigureCSV(s.w, r.Figure)
	}
}
