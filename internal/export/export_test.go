package export

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func sampleFigure() *experiments.Figure {
	return &experiments.Figure{
		ID:     "Fig.T",
		XLabel: "nodes",
		YLabel: "latency",
		Series: []experiments.Series{
			{Label: "RD", Points: []experiments.Point{{X: 64, Y: 10.5}, {X: 512, Y: 16.25}}},
			{Label: "DB", Points: []experiments.Point{{X: 64, Y: 7.25}}},
		},
	}
}

func TestFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := FigureCSV(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want header + 3", len(records))
	}
	if records[0][2] != "nodes" || records[0][3] != "latency" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "Fig.T" || records[1][1] != "RD" || records[1][2] != "64" || records[1][3] != "10.5" {
		t.Errorf("row 1 = %v", records[1])
	}
	if records[3][1] != "DB" {
		t.Errorf("row 3 = %v", records[3])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &experiments.CVTable{
		ID:       "Table T",
		Proposed: "DB",
		Columns: []experiments.CVColumn{
			{
				Mesh: "mesh 4x4x4", Nodes: 64, ProposedCV: 0.15,
				Rows: []metrics.ImprovementRow{
					{Baseline: "RD", BaselineCV: 0.25, ProposedCV: 0.15, Improvement: 66.7},
					{Baseline: "EDN", BaselineCV: 0.21, ProposedCV: 0.15, Improvement: 40},
				},
			},
			{
				Mesh: "mesh 8x8x8", Nodes: 512, ProposedCV: 0.2,
				Rows: []metrics.ImprovementRow{
					{Baseline: "RD", BaselineCV: 0.42, ProposedCV: 0.2, Improvement: 110},
					{Baseline: "EDN", BaselineCV: 0.39, ProposedCV: 0.2, Improvement: 95},
				},
			},
		},
	}
	var b strings.Builder
	if err := TableCSV(&b, tbl); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header, RD, EDN, DB
		t.Fatalf("records = %d", len(records))
	}
	if records[1][0] != "RD" || records[1][1] != "0.25" || records[1][2] != "66.7" {
		t.Errorf("RD row = %v", records[1])
	}
	if records[3][0] != "DB" || records[3][1] != "0.15" {
		t.Errorf("proposed row = %v", records[3])
	}
	if len(records[0]) != 5 {
		t.Errorf("header width = %d, want 5", len(records[0]))
	}
}
