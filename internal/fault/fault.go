// Package fault provides deterministic fault injection for the
// wormhole network. A Plan is a schedule of link/node down/up events,
// validated up front and applied through the simulation calendar —
// faults are ordinary (due, seq)-ordered events interleaving with
// worm traffic, so a faulted run is exactly as reproducible as a
// pristine one: bit-identical output for any worker count and for
// either calendar implementation.
//
// The generators (RandomLinks, RandomNodes, Churn) derive everything
// from an explicit seed, and the link generators share one canonical
// seed-determined permutation of the topology's undirected links:
// RandomLinks(m, seed, k) fails the FIRST k links of that
// permutation, so plans of the same (m, seed) nest — a larger k is a
// strict superset of a smaller one. That nesting is what makes
// delivery coverage provably monotone non-increasing along the
// failed-links axis for deterministic routing, and the robustness
// suite asserts exactly that.
package fault

import (
	"fmt"
	"math"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// LinkDown takes one directed physical channel down.
	LinkDown Kind = iota
	// LinkUp restores one directed physical channel.
	LinkUp
	// NodeDown takes a node down: nothing routes into or out of it.
	NodeDown
	// NodeUp restores a node.
	NodeUp
)

// String returns the kind's plan-notation name.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scheduled fault: a kind, a firing time and its target
// (Channel for link kinds, Node for node kinds).
type Event struct {
	Kind    Kind
	At      sim.Time
	Channel topology.ChannelID
	Node    topology.NodeID
}

// Plan is a schedule of fault events. The zero value is a valid empty
// plan; applying it schedules nothing and leaves the network's
// fault machinery entirely unengaged (pristine runs stay
// byte-identical). Same-time events fire in slice order.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate checks every event against topo: known kind, finite
// non-negative time, and a target inside the topology's ID spaces.
// Link events are range-checked against ChannelSlots; a slot that
// carries no physical link (a mesh edge) is accepted and harmless —
// nothing ever routes over it.
func (p *Plan) Validate(topo topology.Topology) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return fmt.Errorf("fault: event %d (%s) at invalid time %g", i, e.Kind, e.At)
		}
		switch e.Kind {
		case LinkDown, LinkUp:
			if int(e.Channel) < 0 || int(e.Channel) >= topo.ChannelSlots() {
				return fmt.Errorf("fault: event %d (%s) channel %d out of range [0,%d)",
					i, e.Kind, e.Channel, topo.ChannelSlots())
			}
		case NodeDown, NodeUp:
			if int(e.Node) < 0 || int(e.Node) >= topo.Nodes() {
				return fmt.Errorf("fault: event %d (%s) node %d out of range [0,%d)",
					i, e.Kind, e.Node, topo.Nodes())
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, uint8(e.Kind))
		}
	}
	return nil
}

// applied carries one scheduled event to its firing; the records are
// built once at Apply time, so firing allocates nothing.
type applied struct {
	n *network.Network
	e Event
}

func fire(_ *sim.Env, arg any) {
	a := arg.(*applied)
	switch a.e.Kind {
	case LinkDown:
		a.n.FailLink(a.e.Channel)
	case LinkUp:
		a.n.RestoreLink(a.e.Channel)
	case NodeDown:
		a.n.FailNode(a.e.Node)
	case NodeUp:
		a.n.RestoreNode(a.e.Node)
	}
}

// Apply validates the plan against n's topology and schedules every
// event on n's calendar. Call it before the simulation runs (events
// must not be in the simulator's past). An empty plan schedules
// nothing.
func (p *Plan) Apply(n *network.Network) error {
	if p.Empty() {
		return nil
	}
	if err := p.Validate(n.Topology()); err != nil {
		return err
	}
	s := n.Sim()
	for i := range p.Events {
		e := p.Events[i]
		if e.At < s.Now() {
			return fmt.Errorf("fault: event %d (%s) at %g is in the simulator's past (now %g)",
				i, e.Kind, e.At, s.Now())
		}
		s.AtCall(e.At, fire, &applied{n: n, e: e})
	}
	return nil
}

// Merge concatenates plans into one. Same-time events keep the
// argument order.
func Merge(plans ...*Plan) *Plan {
	out := &Plan{}
	for _, p := range plans {
		if p != nil {
			out.Events = append(out.Events, p.Events...)
		}
	}
	return out
}

// RestoredAfter returns a copy of p with, for every Down event, the
// matching Up event appended delay µs after it — turning a static
// fault set into a transient one.
func RestoredAfter(p *Plan, delay sim.Time) *Plan {
	out := &Plan{Events: append([]Event(nil), p.Events...)}
	for _, e := range p.Events {
		switch e.Kind {
		case LinkDown:
			out.Events = append(out.Events, Event{Kind: LinkUp, At: e.At + delay, Channel: e.Channel})
		case NodeDown:
			out.Events = append(out.Events, Event{Kind: NodeUp, At: e.At + delay, Node: e.Node})
		}
	}
	return out
}

// Link is one undirected physical link of a mesh or torus, identified
// by its endpoints with A < B.
type Link struct {
	A, B topology.NodeID
}

// Links enumerates the undirected physical links of m in canonical
// order: ascending by lower endpoint, then by that node's adjacency
// order. Wraparound links appear once, at their lower endpoint.
func Links(m *topology.Mesh) []Link {
	var out []Link
	buf := make([]topology.NodeID, 0, 2*m.NDims())
	for id := 0; id < m.Nodes(); id++ {
		from := topology.NodeID(id)
		// AppendNeighbors (same order as Adjacent) keeps implicit
		// meshes table-free and reuses one neighbor buffer either way.
		buf = m.AppendNeighbors(from, buf[:0])
		for _, to := range buf {
			if to > from {
				out = append(out, Link{A: from, B: to})
			}
		}
	}
	return out
}

// linkPerm returns the canonical seed-determined permutation of m's
// undirected links that every link generator draws from.
func linkPerm(m *topology.Mesh, seed uint64) []Link {
	links := Links(m)
	perm := sim.NewRNG(seed, 97).Perm(len(links))
	out := make([]Link, len(links))
	for i, j := range perm {
		out[i] = links[j]
	}
	return out
}

// downBoth appends LinkDown events for both directed channels of l.
func downBoth(p *Plan, m *topology.Mesh, l Link, at sim.Time) {
	p.Events = append(p.Events,
		Event{Kind: LinkDown, At: at, Channel: m.Channel(l.A, l.B)},
		Event{Kind: LinkDown, At: at, Channel: m.Channel(l.B, l.A)},
	)
}

// RandomLinks fails the first k links of the seed-determined
// permutation of m's undirected links (both directed channels) at
// time at. Plans of the same (m, seed) nest: a larger k yields a
// strict superset of a smaller k's fault set. k may be 0 (an empty
// plan); k beyond the link count errors.
func RandomLinks(m *topology.Mesh, seed uint64, k int, at sim.Time) (*Plan, error) {
	if k < 0 {
		return nil, fmt.Errorf("fault: negative link count %d", k)
	}
	perm := linkPerm(m, seed)
	if k > len(perm) {
		return nil, fmt.Errorf("fault: %d links requested, %s has %d", k, m.Name(), len(perm))
	}
	p := &Plan{}
	for _, l := range perm[:k] {
		downBoth(p, m, l, at)
	}
	return p, nil
}

// RandomNodes fails k distinct seed-chosen nodes of m at time at,
// never choosing a node in exclude (a broadcast source, say).
func RandomNodes(m *topology.Mesh, seed uint64, k int, at sim.Time, exclude ...topology.NodeID) (*Plan, error) {
	if k < 0 {
		return nil, fmt.Errorf("fault: negative node count %d", k)
	}
	excluded := make(map[topology.NodeID]bool, len(exclude))
	for _, id := range exclude {
		excluded[id] = true
	}
	if k > m.Nodes()-len(excluded) {
		return nil, fmt.Errorf("fault: %d nodes requested, %s has %d eligible", k, m.Name(), m.Nodes()-len(excluded))
	}
	perm := sim.NewRNG(seed, 131).Perm(m.Nodes())
	p := &Plan{}
	for _, j := range perm {
		if len(p.Events) == k {
			break
		}
		id := topology.NodeID(j)
		if excluded[id] {
			continue
		}
		p.Events = append(p.Events, Event{Kind: NodeDown, At: at, Node: id})
	}
	return p, nil
}

// Churn builds a transient-fault plan: strikes waves of k fresh link
// failures, wave i striking at time at+i·period and recovering
// upAfter µs later. Waves walk consecutive windows of the canonical
// link permutation (wrapping around), so no wave repeats a link
// within itself as long as k does not exceed the link count.
func Churn(m *topology.Mesh, seed uint64, k int, at, upAfter, period sim.Time, strikes int) (*Plan, error) {
	if k < 0 {
		return nil, fmt.Errorf("fault: negative link count %d", k)
	}
	if strikes < 1 {
		return nil, fmt.Errorf("fault: churn needs at least one strike, got %d", strikes)
	}
	if upAfter <= 0 || period <= 0 {
		return nil, fmt.Errorf("fault: churn needs positive up-after (%g) and period (%g)", upAfter, period)
	}
	perm := linkPerm(m, seed)
	if k > len(perm) {
		return nil, fmt.Errorf("fault: %d links per strike, %s has %d", k, m.Name(), len(perm))
	}
	p := &Plan{}
	for i := 0; i < strikes; i++ {
		t := at + sim.Time(i)*period
		wave := &Plan{}
		for j := 0; j < k; j++ {
			downBoth(wave, m, perm[(i*k+j)%len(perm)], t)
		}
		p = Merge(p, RestoredAfter(wave, upAfter))
	}
	return p, nil
}
