package fault

import (
	"testing"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestLinksEnumeration pins the canonical link enumeration: a 3x3
// mesh has 12 undirected links, a 3x3 torus 18 (each ring closes),
// and every entry maps to two valid directed channels with A < B.
func TestLinksEnumeration(t *testing.T) {
	cases := []struct {
		m    *topology.Mesh
		want int
	}{
		{topology.NewMesh(3, 3), 12},
		{topology.NewTorus(3, 3), 18},
		{topology.NewMesh(4, 1), 3},
	}
	for _, c := range cases {
		links := Links(c.m)
		if len(links) != c.want {
			t.Errorf("%s: %d links, want %d", c.m.Name(), len(links), c.want)
		}
		seen := map[Link]bool{}
		for _, l := range links {
			if l.A >= l.B {
				t.Errorf("%s: link %v not ordered", c.m.Name(), l)
			}
			if seen[l] {
				t.Errorf("%s: duplicate link %v", c.m.Name(), l)
			}
			seen[l] = true
			if c.m.Channel(l.A, l.B) == topology.InvalidChannel || c.m.Channel(l.B, l.A) == topology.InvalidChannel {
				t.Errorf("%s: link %v has no directed channel", c.m.Name(), l)
			}
		}
	}
}

// TestRandomLinksNest is the generator guarantee the monotonicity
// suite builds on: for one (mesh, seed), the k-link plan's fault set
// is a subset of the k+1-link plan's.
func TestRandomLinksNest(t *testing.T) {
	m := topology.NewMesh(4, 4)
	var prev map[topology.ChannelID]bool
	for k := 0; k <= 8; k++ {
		p, err := RandomLinks(m, 7, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Events) != 2*k {
			t.Fatalf("k=%d: %d events, want %d", k, len(p.Events), 2*k)
		}
		cur := map[topology.ChannelID]bool{}
		for _, e := range p.Events {
			if e.Kind != LinkDown {
				t.Fatalf("k=%d: unexpected %s event", k, e.Kind)
			}
			cur[e.Channel] = true
		}
		for ch := range prev {
			if !cur[ch] {
				t.Fatalf("k=%d lost channel %d from the k=%d plan", k, ch, k-1)
			}
		}
		prev = cur
	}
	// Different seeds must give different permutations (overwhelmingly).
	a, _ := RandomLinks(m, 1, 6, 0)
	b, _ := RandomLinks(m, 2, 6, 0)
	same := len(a.Events) == len(b.Events)
	for i := range a.Events {
		if same && a.Events[i].Channel != b.Events[i].Channel {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical link permutations")
	}
}

// TestRandomNodesExcludes: the node generator never fails an excluded
// node and errors when asked for more nodes than remain eligible.
func TestRandomNodesExcludes(t *testing.T) {
	m := topology.NewMesh(3, 3)
	src := m.ID(1, 1)
	p, err := RandomNodes(m, 3, 8, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 8 {
		t.Fatalf("%d events, want 8", len(p.Events))
	}
	for _, e := range p.Events {
		if e.Node == src {
			t.Fatal("generator failed the excluded node")
		}
	}
	if _, err := RandomNodes(m, 3, 9, 0, src); err == nil {
		t.Fatal("want error when k exceeds the eligible node count")
	}
}

// TestValidateRejects pins the up-front plan validation.
func TestValidateRejects(t *testing.T) {
	m := topology.NewMesh(3, 3)
	bad := []Plan{
		{Events: []Event{{Kind: LinkDown, At: -1, Channel: 0}}},
		{Events: []Event{{Kind: LinkDown, At: 0, Channel: topology.ChannelID(m.ChannelSlots())}}},
		{Events: []Event{{Kind: NodeDown, At: 0, Node: topology.NodeID(m.Nodes())}}},
		{Events: []Event{{Kind: Kind(99), At: 0}}},
	}
	for i := range bad {
		if err := bad[i].Validate(m); err == nil {
			t.Errorf("plan %d validated, want error", i)
		}
	}
	var empty *Plan
	if err := empty.Validate(m); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if !empty.Empty() || !(&Plan{}).Empty() {
		t.Error("nil/zero plans must report Empty")
	}
}

// TestApplySchedulesThroughCalendar: an applied plan's events fire in
// (due, seq) order interleaved with traffic — the link is up for a
// send before the down event and down for one after it.
func TestApplySchedulesThroughCalendar(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 1)
	n := network.MustNew(s, m, network.DefaultConfig())
	ch := m.Channel(m.ID(1, 0), m.ID(2, 0))
	p := &Plan{Events: []Event{
		{Kind: LinkDown, At: 10, Channel: ch},
		{Kind: LinkUp, At: 20, Channel: ch},
	}}
	if err := p.Apply(n); err != nil {
		t.Fatal(err)
	}
	checks := 0
	s.At(5, func() {
		checks++
		if !n.LinkAlive(ch) {
			t.Error("link dead before its down event")
		}
	})
	s.At(15, func() {
		checks++
		if n.LinkAlive(ch) {
			t.Error("link alive between down and up")
		}
	})
	s.At(25, func() {
		checks++
		if !n.LinkAlive(ch) {
			t.Error("link dead after its up event")
		}
	})
	s.Run()
	if checks != 3 {
		t.Fatalf("ran %d checks, want 3", checks)
	}
}

// TestEmptyPlanLeavesNetworkPristine: applying an empty plan must not
// engage the network's fault machinery at all (the golden identity
// tests depend on this being a guaranteed no-op).
func TestEmptyPlanLeavesNetworkPristine(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 4)
	n := network.MustNew(s, m, network.DefaultConfig())
	before := s.Pending()
	if err := (&Plan{}).Apply(n); err != nil {
		t.Fatal(err)
	}
	var nilPlan *Plan
	if err := nilPlan.Apply(n); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != before {
		t.Fatal("empty plan scheduled calendar events")
	}
}

// TestChurnWaves pins the churn generator: strikes waves of k links,
// each wave's downs at at+i·period and ups upAfter later, fresh links
// per wave while the permutation lasts.
func TestChurnWaves(t *testing.T) {
	m := topology.NewMesh(4, 4)
	const k, strikes = 3, 4
	p, err := Churn(m, 11, k, 2, 5, 10, strikes)
	if err != nil {
		t.Fatal(err)
	}
	// Each wave: k links × 2 directions × (down + up).
	if want := strikes * k * 2 * 2; len(p.Events) != want {
		t.Fatalf("%d events, want %d", len(p.Events), want)
	}
	downs := map[sim.Time]map[topology.ChannelID]bool{}
	for _, e := range p.Events {
		switch e.Kind {
		case LinkDown:
			if downs[e.At] == nil {
				downs[e.At] = map[topology.ChannelID]bool{}
			}
			downs[e.At][e.Channel] = true
		case LinkUp:
			// Every up pairs a down exactly upAfter earlier.
			if downs[e.At-5] == nil || !downs[e.At-5][e.Channel] {
				t.Fatalf("up of channel %d at %g has no down at %g", e.Channel, e.At, e.At-5)
			}
		}
	}
	for i := 0; i < strikes; i++ {
		at := sim.Time(2 + 10*i)
		if len(downs[at]) != 2*k {
			t.Fatalf("wave %d at %g downs %d channels, want %d", i, at, len(downs[at]), 2*k)
		}
	}
	// Consecutive waves use disjoint links while the permutation lasts.
	for ch := range downs[2] {
		if downs[12][ch] {
			t.Fatalf("waves 0 and 1 share channel %d", ch)
		}
	}
	if _, err := Churn(m, 11, 3, 0, 0, 10, 2); err == nil {
		t.Fatal("want error for non-positive up-after")
	}
}
