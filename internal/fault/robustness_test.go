package fault_test

// Differential robustness suite: randomized fault plans checked
// against the invariants the fault subsystem promises, independent of
// any expected-output golden —
//
//   - no delivered worm ever traversed a dead channel or node, and
//     every delivered route is minimal (the router only offers
//     one-hop-closer candidates, faulted or not);
//   - coverage is monotone non-increasing in the failed-link count
//     for deterministic routing under static fail-stop faults (the
//     nested fault sets of RandomLinks make this a real invariant,
//     not a statistical tendency);
//   - a DegradedStudy with the empty plan is bit-identical to the
//     plain ContendedCVStudy — the fault layer costs nothing when
//     unengaged;
//   - the ladder and heap calendars agree bit-for-bit on a faulted,
//     churning run, extending the kernel cross-check to the fault
//     paths.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/broadcast"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// randomTopo mirrors the routing property suite: 1–3 dimensions of
// size 2–5, mesh or torus.
func randomTopo(r *rand.Rand) *topology.Mesh {
	dims := make([]int, 1+r.Intn(3))
	for i := range dims {
		dims[i] = 2 + r.Intn(4)
	}
	if r.Intn(2) == 0 {
		return topology.NewTorus(dims...)
	}
	return topology.NewMesh(dims...)
}

type pathRecord struct {
	src, dst  topology.NodeID
	path      []topology.NodeID
	delivered bool
	retired   bool
}

// TestRandomFaultsNeverRouteDead drives unicasts across random
// topologies under random static fault sets and audits every realized
// route: a delivered worm's path is minimal and touches only live
// resources, an undelivered worm is an explicit drop, and on a
// fault-free draw everything delivers. Worms are spaced far apart in
// time so the property isolates routing from contention.
func TestRandomFaultsNeverRouteDead(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomTopo(r)
		cfg := network.DefaultConfig()
		if m.Wrap() {
			cfg.VCs = 2
		}
		cfg.DeadWait = float64(r.Intn(3)) // exercise both immediate and delayed drops

		links := fault.Links(m)
		k := r.Intn(len(links) + 1)
		plan, err := fault.RandomLinks(m, uint64(r.Int63()), k, 0)
		if err != nil {
			t.Fatal(err)
		}
		nodes := 0
		if r.Intn(2) == 0 && m.Nodes() > 2 {
			nodes = r.Intn(2) + 1
			np, err := fault.RandomNodes(m, uint64(r.Int63()), nodes, 0)
			if err != nil {
				t.Fatal(err)
			}
			plan = fault.Merge(plan, np)
		}

		s := sim.New()
		net := network.MustNew(s, m, cfg)
		if err := plan.Apply(net); err != nil {
			t.Fatal(err)
		}
		var sel routing.Selector
		if r.Intn(2) == 0 {
			sel = routing.WestFirstFor(m) // adaptive: the re-route path
		} // else nil: deterministic DOR, the drop path

		var recs []*pathRecord
		for j := 0; j < 6; j++ {
			src := topology.NodeID(r.Intn(m.Nodes()))
			dst := topology.NodeID(r.Intn(m.Nodes()))
			if src == dst {
				continue
			}
			rec := &pathRecord{src: src, dst: dst}
			recs = append(recs, rec)
			err := net.Send(sim.Time(1+10000*j), &network.Transfer{
				Source:    src,
				Waypoints: []topology.NodeID{dst},
				Length:    8,
				Selector:  sel,
				OnPath: func(path []topology.NodeID, delivered bool) {
					rec.path = append([]topology.NodeID(nil), path...)
					rec.delivered = delivered
					rec.retired = true
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		s.Run()

		ok := true
		for _, rec := range recs {
			if !rec.retired {
				t.Errorf("seed %d on %s: worm %d->%d neither delivered nor dropped",
					seed, m.Name(), rec.src, rec.dst)
				ok = false
				continue
			}
			if k == 0 && nodes == 0 && !rec.delivered {
				t.Errorf("seed %d on %s: fault-free worm %d->%d did not deliver",
					seed, m.Name(), rec.src, rec.dst)
				ok = false
			}
			if !rec.delivered {
				continue
			}
			if rec.path[0] != rec.src || rec.path[len(rec.path)-1] != rec.dst {
				t.Errorf("seed %d on %s: path %v does not join %d and %d",
					seed, m.Name(), rec.path, rec.src, rec.dst)
				ok = false
			}
			if got, want := len(rec.path)-1, m.Distance(rec.src, rec.dst); got != want {
				t.Errorf("seed %d on %s: %d->%d took %d hops, minimal is %d",
					seed, m.Name(), rec.src, rec.dst, got, want)
				ok = false
			}
			for i := 0; i+1 < len(rec.path); i++ {
				ch := m.Channel(rec.path[i], rec.path[i+1])
				if ch == topology.InvalidChannel {
					t.Errorf("seed %d on %s: hop %d->%d has no channel",
						seed, m.Name(), rec.path[i], rec.path[i+1])
					ok = false
					continue
				}
				if !net.LinkAlive(ch) {
					t.Errorf("seed %d on %s: delivered worm %d->%d traversed DEAD channel %d->%d",
						seed, m.Name(), rec.src, rec.dst, rec.path[i], rec.path[i+1])
					ok = false
				}
				if !net.NodeAlive(rec.path[i+1]) {
					t.Errorf("seed %d on %s: delivered worm %d->%d traversed DEAD node %d",
						seed, m.Name(), rec.src, rec.dst, rec.path[i+1])
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageMonotoneInFailedLinks pins the structural invariant the
// nested link generator buys: under deterministic routing (RD over
// DOR), static t=0 fail-stop faults and zero DeadWait, a broadcast
// delivers to a destination iff every hop of its fixed path is alive
// — timing plays no role — so coverage can only fall as the (nested)
// fault set grows. This does NOT hold for adaptive routing or
// transient faults, which is why the scenario layer's coverage curves
// restrict their monotonicity claims to this regime.
func TestCoverageMonotoneInFailedLinks(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	for seed := uint64(1); seed <= 4; seed++ {
		prev := 2.0
		last := 1.0
		for _, k := range []int{0, 4, 8, 16, 32} {
			plan, err := fault.RandomLinks(m, seed, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			st, err := metrics.DegradedStudy(m, broadcast.NewRD(), metrics.DegradedConfig{
				Net:          network.DefaultConfig(), // DeadWait 0: drops are immediate
				Length:       32,
				Broadcasts:   10,
				Interarrival: 4,
				Seed:         9,
				Faults:       plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			cov := st.Coverage.Mean()
			if cov > prev {
				t.Errorf("seed %d: coverage ROSE from %v to %v at k=%d under a nested fault set",
					seed, prev, cov, k)
			}
			prev, last = cov, cov
		}
		if last >= 1 {
			t.Errorf("seed %d: 32 dead links cost no coverage — the monotonicity check never bit", seed)
		}
	}
}

// TestEmptyPlanMatchesContendedStudy is the zero-cost guarantee at
// study granularity: a DegradedStudy with no fault plan replays
// ContendedCVStudy's exact traffic (same seed stream, same sources,
// same arrivals) and must agree bit-for-bit on every statistic the
// two studies share.
func TestEmptyPlanMatchesContendedStudy(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	for _, algo := range []broadcast.Algorithm{broadcast.NewRD(), broadcast.NewAB()} {
		deg, err := metrics.DegradedStudy(m, algo, metrics.DegradedConfig{
			Net: network.DefaultConfig(), Length: 32, Broadcasts: 12, Interarrival: 3, Seed: 9,
			Faults: &fault.Plan{},
		})
		if err != nil {
			t.Fatal(err)
		}
		cv, err := metrics.ContendedCVStudy(m, algo, metrics.ContendedConfig{
			Net: network.DefaultConfig(), Length: 32, Broadcasts: 12, Interarrival: 3, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if deg.CV.Mean() != cv.CV.Mean() {
			t.Errorf("%s: empty-plan CV %v != contended CV %v", algo.Name(), deg.CV.Mean(), cv.CV.Mean())
		}
		if deg.Events != cv.Events || deg.SimulatedTime != cv.SimulatedTime {
			t.Errorf("%s: empty-plan run (%d events, T=%v) != contended run (%d events, T=%v)",
				algo.Name(), deg.Events, deg.SimulatedTime, cv.Events, cv.SimulatedTime)
		}
		if deg.Dropped != 0 || deg.Coverage.Min() != 1 {
			t.Errorf("%s: empty plan dropped %d worms, min coverage %v",
				algo.Name(), deg.Dropped, deg.Coverage.Min())
		}
	}
}

// TestHeapLadderIdenticalUnderFaults extends the calendar cross-check
// to the fault paths: a churning, node-degraded adaptive run must
// produce bit-identical statistics on the ladder queue and the legacy
// binary heap. Fault events, park timeouts and drops all ride the
// calendar, so any (due, seq) ordering divergence shows up here.
func TestHeapLadderIdenticalUnderFaults(t *testing.T) {
	defer sim.SetDefaultCalendar(sim.Ladder)
	m := topology.NewMesh(4, 4, 4)
	study := func(cal sim.Calendar) *metrics.DegradationStats {
		sim.SetDefaultCalendar(cal)
		churn, err := fault.Churn(m, 5, 3, 5, 8, 20, 3)
		if err != nil {
			t.Fatal(err)
		}
		nodes, err := fault.RandomNodes(m, 6, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.DeadWait = 6
		st, err := metrics.DegradedStudy(m, broadcast.NewAB(), metrics.DegradedConfig{
			Net: cfg, Length: 32, Broadcasts: 12, Interarrival: 3, Seed: 11,
			Faults: fault.Merge(churn, nodes),
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	ladder := study(sim.Ladder)
	heap := study(sim.Heap)
	if ladder.Coverage.Mean() != heap.Coverage.Mean() ||
		ladder.Latency.Mean() != heap.Latency.Mean() ||
		ladder.CV.Mean() != heap.CV.Mean() ||
		ladder.Dropped != heap.Dropped ||
		ladder.Events != heap.Events ||
		ladder.SimulatedTime != heap.SimulatedTime {
		t.Errorf("ladder and heap disagree under faults:\nladder: cov=%v lat=%v drop=%d events=%d T=%v\nheap:   cov=%v lat=%v drop=%d events=%d T=%v",
			ladder.Coverage.Mean(), ladder.Latency.Mean(), ladder.Dropped, ladder.Events, ladder.SimulatedTime,
			heap.Coverage.Mean(), heap.Latency.Mean(), heap.Dropped, heap.Events, heap.SimulatedTime)
	}
}
