package metrics

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ContendedConfig parameterises the node-level (CV) study. The
// paper's §3.2 measures arrival-time variation over at least 40
// experiments with randomly chosen sources; broadcasts in flight
// overlap, so worms contend for channels, which is precisely what
// spreads arrival times in step-hungry algorithms (RD, EDN) far more
// than in the coded-path algorithms (DB, AB).
type ContendedConfig struct {
	// Net is the network timing configuration (ports are overridden
	// per algorithm).
	Net network.Config
	// Length is the message length in flits.
	Length int
	// Broadcasts is the number of measured broadcasts (paper: ≥40).
	Broadcasts int
	// Interarrival is the mean time between broadcast initiations in
	// µs (exponentially distributed). Zero means one broadcast
	// duration apart on average — light but overlapping load.
	Interarrival float64
	// Seed drives source selection and arrival times.
	Seed uint64
}

// ContendedCVStudy injects Broadcasts broadcasts from uniformly random
// sources with exponential inter-arrival times into one shared
// network, and aggregates each broadcast's destination arrival-time
// statistics.
//
// Unlike SingleSourceStudy, one study is a single discrete-event
// simulation whose broadcasts interact through channel contention, so
// it cannot be split across workers; callers parallelise at the next
// level up, running whole (algorithm, mesh) studies as independent
// runner jobs (see experiments.Fig2).
func ContendedCVStudy(m *topology.Mesh, algo broadcast.Algorithm, cfg ContendedConfig) (*SingleSourceStats, error) {
	if cfg.Broadcasts <= 0 {
		return nil, fmt.Errorf("metrics: non-positive broadcast count %d", cfg.Broadcasts)
	}
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("metrics: non-positive length %d", cfg.Length)
	}
	s := sim.New()
	ncfg := cfg.Net
	ncfg.Ports = algo.Ports()
	net, err := network.New(s, m, ncfg)
	if err != nil {
		return nil, err
	}
	var adaptive routing.Selector
	if algo.Name() == "AB" {
		adaptive = routing.WestFirstFor(m)
	}

	interarrival := cfg.Interarrival
	if interarrival <= 0 {
		// Default: mean gap of one uncontended broadcast duration,
		// estimated from a dry run.
		r, err := broadcast.RunSingle(m, algo, 0, ncfg, cfg.Length)
		if err != nil {
			return nil, err
		}
		interarrival = r.Latency()
	}

	rng := sim.NewRNG(cfg.Seed, 31)
	out := &SingleSourceStats{Algorithm: algo.Name(), Mesh: m.Name(), Nodes: m.Nodes()}

	at := sim.Time(0)
	results := make([]*broadcast.Result, 0, cfg.Broadcasts)
	for i := 0; i < cfg.Broadcasts; i++ {
		at += rng.Exp(interarrival)
		src := topology.NodeID(rng.Intn(m.Nodes()))
		plan, err := broadcast.PlanCached(m, algo, src)
		if err != nil {
			return nil, err
		}
		r, err := broadcast.Execute(net, plan, broadcast.Options{
			Start:    at,
			Length:   cfg.Length,
			Adaptive: adaptive,
			Tag:      fmt.Sprintf("cv%d", i),
		})
		if err != nil {
			return nil, err
		}
		results = append(results, r)
		if i == 0 {
			out.Steps = plan.Steps
			out.Messages = plan.MessageCount()
		}
	}

	s.Run()
	out.Events = s.Fired()
	out.SimulatedTime = s.Now()
	for _, r := range results {
		if !r.Done {
			return nil, fmt.Errorf("metrics: %s broadcast stalled with %d/%d informed",
				algo.Name(), r.Informed, m.Nodes())
		}
		out.Latency.Add(r.Latency())
		out.CV.Add(r.DestinationCV())
	}
	return out, nil
}
