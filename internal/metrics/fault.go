package metrics

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// DegradedConfig parameterises the graceful-degradation study: the
// contended workload of ContendedCVStudy run on a network with a
// fault plan applied. The zero Faults plan is the pristine twin — the
// same traffic on the same seeds with nothing failed — which is what
// latency inflation is measured against.
type DegradedConfig struct {
	// Net is the network timing configuration (ports are overridden
	// per algorithm). Net.DeadWait is the dead-ended worm's grace.
	Net network.Config
	// Length is the message length in flits.
	Length int
	// Broadcasts is the number of measured broadcasts.
	Broadcasts int
	// Interarrival is the mean time between broadcast initiations in
	// µs (exponentially distributed). Zero estimates one uncontended
	// broadcast duration, as in ContendedCVStudy.
	Interarrival float64
	// Seed drives source selection and arrival times. The same seed
	// with and without Faults yields the identical traffic schedule,
	// so faulted and pristine runs are paired twins.
	Seed uint64
	// Faults is applied to the shared network before traffic starts;
	// nil or empty runs pristine.
	Faults *fault.Plan
	// Adaptive, honoured when AdaptiveSet is true, overrides the
	// study's routing substrate for adaptive sends (nil = plain
	// dimension-order). When unset the study uses the algorithm's
	// paper default (west-first under AB).
	Adaptive    routing.Selector
	AdaptiveSet bool
}

// DegradationStats aggregates a degraded study's per-broadcast
// outcomes. Unlike SingleSourceStats it never assumes completion:
// every broadcast contributes a coverage sample, and only broadcasts
// that reached at least one destination contribute latency/CV
// samples.
type DegradationStats struct {
	Algorithm string
	Mesh      string
	Nodes     int
	// Coverage accumulates per-broadcast delivery coverage: reached
	// destinations / (Nodes-1). Exactly 1 everywhere on a pristine run.
	Coverage stats.Accumulator
	// Latency accumulates each broadcast's mean arrival latency over
	// the destinations it reached.
	Latency stats.Accumulator
	// CV accumulates each broadcast's arrival-time coefficient of
	// variation over the destinations it reached.
	CV stats.Accumulator
	// Dropped counts worms the network aborted on dead resources.
	Dropped uint64
	// Events and SimulatedTime describe the run's calendar.
	Events        uint64
	SimulatedTime sim.Time
}

// LatencyInflation returns the ratio of this study's mean reached-
// destination latency to the pristine twin's — 1.0 means faults cost
// nothing, 1.3 means surviving deliveries arrive 30% later. It
// returns 0 when the twin recorded no deliveries.
func (d *DegradationStats) LatencyInflation(pristine *DegradationStats) float64 {
	if pristine.Latency.Mean() == 0 {
		return 0
	}
	return d.Latency.Mean() / pristine.Latency.Mean()
}

// DegradedStudy injects Broadcasts broadcasts from uniformly random
// sources into one shared network degraded by cfg.Faults, and
// aggregates per-broadcast coverage, reached-destination latency and
// CV, and the network's drop count. Traffic is scheduled exactly as
// in ContendedCVStudy — same seed, same sources, same arrival times —
// so a faulted study and its pristine twin differ only in what the
// degraded network could deliver.
//
// The run always terminates: a worm on a degraded network either
// drains, or drops after its DeadWait grace, so the calendar empties
// without requiring completion the way ContendedCVStudy does.
func DegradedStudy(m *topology.Mesh, algo broadcast.Algorithm, cfg DegradedConfig) (*DegradationStats, error) {
	if cfg.Broadcasts <= 0 {
		return nil, fmt.Errorf("metrics: non-positive broadcast count %d", cfg.Broadcasts)
	}
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("metrics: non-positive length %d", cfg.Length)
	}
	s := sim.New()
	ncfg := cfg.Net
	ncfg.Ports = algo.Ports()
	net, err := network.New(s, m, ncfg)
	if err != nil {
		return nil, err
	}
	if err := cfg.Faults.Apply(net); err != nil {
		return nil, err
	}
	adaptive := cfg.Adaptive
	if !cfg.AdaptiveSet && algo.Name() == "AB" {
		adaptive = routing.WestFirstFor(m)
	}

	interarrival := cfg.Interarrival
	if interarrival <= 0 {
		// Default as in ContendedCVStudy: one uncontended (pristine)
		// broadcast duration, estimated from a dry run.
		r, err := broadcast.RunSingle(m, algo, 0, ncfg, cfg.Length)
		if err != nil {
			return nil, err
		}
		interarrival = r.Latency()
	}

	rng := sim.NewRNG(cfg.Seed, 31)
	out := &DegradationStats{Algorithm: algo.Name(), Mesh: m.Name(), Nodes: m.Nodes()}

	plans := make(map[topology.NodeID]*broadcast.Plan)
	at := sim.Time(0)
	results := make([]*broadcast.Result, 0, cfg.Broadcasts)
	for i := 0; i < cfg.Broadcasts; i++ {
		at += rng.Exp(interarrival)
		src := topology.NodeID(rng.Intn(m.Nodes()))
		plan, ok := plans[src]
		if !ok {
			plan, err = algo.Plan(m, src)
			if err != nil {
				return nil, err
			}
			if err := plan.Validate(m); err != nil {
				return nil, err
			}
			plans[src] = plan
		}
		r, err := broadcast.Execute(net, plan, broadcast.Options{
			Start:    at,
			Length:   cfg.Length,
			Adaptive: adaptive,
			Tag:      fmt.Sprintf("deg%d", i),
		})
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}

	s.Run()
	out.Events = s.Fired()
	out.SimulatedTime = s.Now()
	out.Dropped = net.Dropped()
	dests := float64(m.Nodes() - 1)
	for _, r := range results {
		// DestinationCount == len(DestinationLatencies()) — arrivals
		// minus the source — and the accessors reproduce MeanOf/CVOf's
		// exact accumulation on retained results, so this loop's output
		// is unchanged while streaming results need no arrival arrays.
		covered := r.DestinationCount()
		out.Coverage.Add(float64(covered) / dests)
		if covered > 0 {
			out.Latency.Add(r.DestinationMean())
			out.CV.Add(r.DestinationCV())
		}
	}
	return out, nil
}
