package metrics

import (
	"testing"

	"repro/internal/broadcast"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/topology"
)

func degradedCfg(seed uint64, plan *fault.Plan) DegradedConfig {
	cfg := network.DefaultConfig()
	cfg.DeadWait = 5
	return DegradedConfig{
		Net:          cfg,
		Length:       32,
		Broadcasts:   12,
		Interarrival: 3,
		Seed:         seed,
		Faults:       plan,
	}
}

// TestDegradedStudyPristineTwin: with no faults every broadcast
// covers every destination and nothing drops — and the same config
// rerun is bit-identical (the study is a pure function of its seed).
func TestDegradedStudyPristineTwin(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	for _, algo := range []broadcast.Algorithm{broadcast.NewRD(), broadcast.NewAB()} {
		a, err := DegradedStudy(m, algo, degradedCfg(9, nil))
		if err != nil {
			t.Fatal(err)
		}
		if a.Coverage.Mean() != 1 || a.Coverage.Min() != 1 {
			t.Errorf("%s: pristine coverage mean %v min %v, want 1", algo.Name(), a.Coverage.Mean(), a.Coverage.Min())
		}
		if a.Dropped != 0 {
			t.Errorf("%s: pristine run dropped %d worms", algo.Name(), a.Dropped)
		}
		b, err := DegradedStudy(m, algo, degradedCfg(9, nil))
		if err != nil {
			t.Fatal(err)
		}
		if a.Latency.Mean() != b.Latency.Mean() || a.Events != b.Events || a.SimulatedTime != b.SimulatedTime {
			t.Errorf("%s: rerun differs (latency %v vs %v, events %d vs %d)",
				algo.Name(), a.Latency.Mean(), b.Latency.Mean(), a.Events, b.Events)
		}
	}
}

// TestDegradedStudyDegrades: a heavy static link fault set on
// deterministic routing must cost coverage and record drops, and its
// latency-inflation ratio against the pristine twin is finite and
// positive.
func TestDegradedStudyDegrades(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	plan, err := fault.RandomLinks(m, 3, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	algo := broadcast.NewRD()
	faulted, err := DegradedStudy(m, algo, degradedCfg(9, plan))
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := DegradedStudy(m, algo, degradedCfg(9, nil))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Coverage.Mean() >= 1 {
		t.Errorf("24 dead links cost no coverage (mean %v)", faulted.Coverage.Mean())
	}
	if faulted.Dropped == 0 {
		t.Error("24 dead links dropped no worms")
	}
	if infl := faulted.LatencyInflation(pristine); infl <= 0 {
		t.Errorf("latency inflation %v, want positive", infl)
	}
}

// TestInterleavedDegradedStudiesNoStateBleed mirrors the contended
// bleed test for the fault path: a grid of degraded studies run
// serially and then interleaved on one pool must agree bit-for-bit.
// Under -race this also proves fault injection shares no mutable
// state across concurrent studies (plans are rebuilt per study; the
// topology is shared read-only).
func TestInterleavedDegradedStudiesNoStateBleed(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	type job struct {
		algo  broadcast.Algorithm
		seed  uint64
		links int
	}
	var jobs []job
	for _, algo := range []broadcast.Algorithm{
		broadcast.NewRD(), broadcast.NewEDN(), broadcast.NewDB(), broadcast.NewAB(),
	} {
		for _, links := range []int{0, 6, 18} {
			jobs = append(jobs, job{algo, uint64(2 + links), links})
		}
	}
	run := func(j job) *DegradationStats {
		plan, err := fault.RandomLinks(m, j.seed, j.links, 0)
		if err != nil {
			t.Errorf("%s links %d: %v", j.algo.Name(), j.links, err)
			return nil
		}
		st, err := DegradedStudy(m, j.algo, degradedCfg(j.seed, plan))
		if err != nil {
			t.Errorf("%s links %d: %v", j.algo.Name(), j.links, err)
			return nil
		}
		return st
	}

	serial := make([]*DegradationStats, len(jobs))
	for i, j := range jobs {
		serial[i] = run(j)
	}
	interleaved, err := runner.Map(runner.New(8), len(jobs), func(i int) (*DegradationStats, error) {
		return run(jobs[i]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		a, b := serial[i], interleaved[i]
		if a == nil || b == nil {
			continue // already reported
		}
		if a.Coverage.Mean() != b.Coverage.Mean() || a.Latency.Mean() != b.Latency.Mean() ||
			a.Dropped != b.Dropped || a.Events != b.Events || a.SimulatedTime != b.SimulatedTime {
			t.Errorf("%s links %d: interleaved differs from serial (coverage %v vs %v, dropped %d vs %d, events %d vs %d)",
				j.algo.Name(), j.links, a.Coverage.Mean(), b.Coverage.Mean(), a.Dropped, b.Dropped, a.Events, b.Events)
		}
	}
}
