package metrics

import (
	"testing"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/topology"
)

// TestInterleavedStudiesNoStateBleed runs a grid of contended studies
// twice — serially, then interleaved on one worker pool — and
// requires bit-identical statistics. Every study exercises the full
// pooled-object lifecycle (worm free lists, calendar records, ring
// queues, plan send indexes), so any cross-run bleed through shared
// or recycled state shows up as a numeric diff, and under -race (the
// CI default) as a data race.
func TestInterleavedStudiesNoStateBleed(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	type job struct {
		algo broadcast.Algorithm
		seed uint64
	}
	var jobs []job
	for _, algo := range []broadcast.Algorithm{
		broadcast.NewRD(), broadcast.NewEDN(), broadcast.NewDB(), broadcast.NewAB(),
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			jobs = append(jobs, job{algo, seed})
		}
	}
	run := func(j job) *SingleSourceStats {
		st, err := ContendedCVStudy(m, j.algo, ContendedConfig{
			Net:          network.DefaultConfig(),
			Length:       32,
			Broadcasts:   12,
			Interarrival: 3,
			Seed:         j.seed,
		})
		if err != nil {
			t.Errorf("%s seed %d: %v", j.algo.Name(), j.seed, err)
			return nil
		}
		return st
	}

	serial := make([]*SingleSourceStats, len(jobs))
	for i, j := range jobs {
		serial[i] = run(j)
	}
	interleaved, err := runner.Map(runner.New(8), len(jobs), func(i int) (*SingleSourceStats, error) {
		return run(jobs[i]), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, j := range jobs {
		a, b := serial[i], interleaved[i]
		if a == nil || b == nil {
			continue // already reported
		}
		if a.CV.Mean() != b.CV.Mean() || a.Latency.Mean() != b.Latency.Mean() ||
			a.Events != b.Events || a.SimulatedTime != b.SimulatedTime {
			t.Errorf("%s seed %d: interleaved run differs from serial (cv %v vs %v, latency %v vs %v, events %d vs %d)",
				j.algo.Name(), j.seed, a.CV.Mean(), b.CV.Mean(), a.Latency.Mean(), b.Latency.Mean(), a.Events, b.Events)
		}
	}
}
