// Package metrics turns raw broadcast results into the quantities the
// paper reports: network-level broadcast latency, the node-level
// coefficient of variation of arrival times, and the percentage
// improvement tables. Replicated single-source studies average over
// uniformly random sources, as the paper's experiments do ("different
// source nodes have been chosen randomly … at least 40 experiments").
package metrics

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// SingleSourceStats aggregates replicated single-source broadcasts of
// one algorithm on one mesh.
type SingleSourceStats struct {
	Algorithm string
	Mesh      string
	Nodes     int
	// Latency aggregates network-level broadcast latency (µs).
	Latency stats.Accumulator
	// CV aggregates the per-replication coefficient of variation of
	// destination arrival times.
	CV stats.Accumulator
	// Steps is the algorithm's message-passing step count on the mesh.
	Steps int
	// Messages is the worms injected per broadcast.
	Messages int
}

// SingleSourceStudy runs reps single-source broadcasts from uniformly
// random sources on an idle network and aggregates latency and CV.
func SingleSourceStudy(m *topology.Mesh, algo broadcast.Algorithm, cfg network.Config, length, reps int, seed uint64) (*SingleSourceStats, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("metrics: non-positive replication count %d", reps)
	}
	rng := sim.NewRNG(seed, 23)
	out := &SingleSourceStats{Algorithm: algo.Name(), Mesh: m.Name(), Nodes: m.Nodes()}
	for i := 0; i < reps; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		r, err := broadcast.RunSingle(m, algo, src, cfg, length)
		if err != nil {
			return nil, err
		}
		out.Latency.Add(r.Latency())
		out.CV.Add(stats.CVOf(r.DestinationLatencies()))
		if i == 0 {
			out.Steps = r.Plan.Steps
			out.Messages = r.Plan.MessageCount()
		}
	}
	return out, nil
}

// ImprovementRow is one cell group of the paper's Tables 1 and 2: a
// baseline algorithm's CV and the percentage improvement the proposed
// algorithm achieves over it.
type ImprovementRow struct {
	Baseline    string
	BaselineCV  float64
	ProposedCV  float64
	Improvement float64 // percent, 100·(baseline − proposed)/proposed
}

// Improvements computes the paper's improvement metric of proposed
// over each baseline.
func Improvements(proposed *SingleSourceStats, baselines ...*SingleSourceStats) []ImprovementRow {
	rows := make([]ImprovementRow, 0, len(baselines))
	for _, b := range baselines {
		rows = append(rows, ImprovementRow{
			Baseline:    b.Algorithm,
			BaselineCV:  b.CV.Mean(),
			ProposedCV:  proposed.CV.Mean(),
			Improvement: stats.Improvement(proposed.CV.Mean(), b.CV.Mean()),
		})
	}
	return rows
}
