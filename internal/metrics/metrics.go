// Package metrics turns raw broadcast results into the quantities the
// paper reports: network-level broadcast latency, the node-level
// coefficient of variation of arrival times, and the percentage
// improvement tables. Replicated single-source studies average over
// uniformly random sources, as the paper's experiments do ("different
// source nodes have been chosen randomly … at least 40 experiments").
//
// Replications are independent simulations, so the study drivers fan
// them out over a runner.Pool. Each replication draws its source from
// sim.Substream(seed, rep) — a pure function of the replication index
// — and results are aggregated in replication order, so a study's
// output is bit-identical for any worker count.
package metrics

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// SingleSourceStats aggregates replicated single-source broadcasts of
// one algorithm on one mesh.
type SingleSourceStats struct {
	Algorithm string
	Mesh      string
	Nodes     int
	// Latency aggregates network-level broadcast latency (µs).
	Latency stats.Accumulator
	// CV aggregates the per-replication coefficient of variation of
	// destination arrival times.
	CV stats.Accumulator
	// Steps is the algorithm's message-passing step count on the mesh.
	Steps int
	// Messages is the worms injected per broadcast.
	Messages int
	// Events counts the discrete events the study's simulation fired
	// (contended studies only — replicated single-source studies run
	// many independent simulations). It is the numerator of the
	// events/sec kernel-throughput metric the perf benchmarks track.
	Events uint64
	// SimulatedTime is the simulated clock at the end of the study
	// (contended studies only).
	SimulatedTime sim.Time
}

// SingleSourceStudy runs reps single-source broadcasts from uniformly
// random sources on an idle network and aggregates latency and CV. It
// uses one worker per available core; use SingleSourceStudyOn to
// bound or serialise execution. Output depends only on the arguments,
// never on the worker count.
func SingleSourceStudy(m *topology.Mesh, algo broadcast.Algorithm, cfg network.Config, length, reps int, seed uint64) (*SingleSourceStats, error) {
	return SingleSourceStudyOn(runner.New(0), m, algo, cfg, length, reps, seed)
}

// singleRep is the per-replication sample of a single-source study.
type singleRep struct {
	latency, cv     float64
	steps, messages int
}

// SingleSourceStudyOn is SingleSourceStudy on the caller's pool:
// replication i draws its source from sim.Substream(seed, i) and runs
// as an independent simulation on one of the pool's workers; samples
// are folded into the accumulators in replication order.
func SingleSourceStudyOn(p *runner.Pool, m *topology.Mesh, algo broadcast.Algorithm, cfg network.Config, length, reps int, seed uint64) (*SingleSourceStats, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("metrics: non-positive replication count %d", reps)
	}
	samples, err := runner.Map(p, reps, func(i int) (singleRep, error) {
		src := topology.NodeID(sim.Substream(seed, uint64(i)).Intn(m.Nodes()))
		r, err := broadcast.RunSingle(m, algo, src, cfg, length)
		if err != nil {
			return singleRep{}, err
		}
		return singleRep{
			latency:  r.Latency(),
			cv:       r.DestinationCV(),
			steps:    r.Plan.Steps,
			messages: r.Plan.MessageCount(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &SingleSourceStats{Algorithm: algo.Name(), Mesh: m.Name(), Nodes: m.Nodes()}
	for i, s := range samples {
		out.Latency.Add(s.latency)
		out.CV.Add(s.cv)
		if i == 0 {
			out.Steps = s.steps
			out.Messages = s.messages
		}
	}
	return out, nil
}

// ImprovementRow is one cell group of the paper's Tables 1 and 2: a
// baseline algorithm's CV and the percentage improvement the proposed
// algorithm achieves over it.
type ImprovementRow struct {
	Baseline    string
	BaselineCV  float64
	ProposedCV  float64
	Improvement float64 // percent, 100·(baseline − proposed)/proposed
}

// Improvements computes the paper's improvement metric of proposed
// over each baseline.
func Improvements(proposed *SingleSourceStats, baselines ...*SingleSourceStats) []ImprovementRow {
	rows := make([]ImprovementRow, 0, len(baselines))
	for _, b := range baselines {
		rows = append(rows, ImprovementRow{
			Baseline:    b.Algorithm,
			BaselineCV:  b.CV.Mean(),
			ProposedCV:  proposed.CV.Mean(),
			Improvement: stats.Improvement(proposed.CV.Mean(), b.CV.Mean()),
		})
	}
	return rows
}
