package metrics

import (
	"math"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestSingleSourceStudy(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	st, err := SingleSourceStudy(m, broadcast.NewDB(), network.DefaultConfig(), 64, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.N() != 10 || st.CV.N() != 10 {
		t.Fatalf("sample counts %d/%d", st.Latency.N(), st.CV.N())
	}
	if st.Latency.Mean() <= 0 {
		t.Errorf("latency mean = %v", st.Latency.Mean())
	}
	if st.CV.Mean() <= 0 || st.CV.Mean() > 1 {
		t.Errorf("CV mean = %v", st.CV.Mean())
	}
	if st.Steps != 4 {
		t.Errorf("DB steps = %d", st.Steps)
	}
	if st.Algorithm != "DB" || st.Nodes != 64 {
		t.Errorf("metadata: %q %d", st.Algorithm, st.Nodes)
	}
}

func TestSingleSourceStudyDeterminism(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	a, err := SingleSourceStudy(m, broadcast.NewAB(), network.DefaultConfig(), 64, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleSourceStudy(m, broadcast.NewAB(), network.DefaultConfig(), 64, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.CV.Mean() != b.CV.Mean() {
		t.Fatal("same-seed studies diverged")
	}
}

func TestSingleSourceStudyValidation(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	if _, err := SingleSourceStudy(m, broadcast.NewDB(), network.DefaultConfig(), 64, 0, 1); err == nil {
		t.Error("zero replications accepted")
	}
}

func TestContendedCVStudy(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	st, err := ContendedCVStudy(m, broadcast.NewRD(), ContendedConfig{
		Net:          network.DefaultConfig(),
		Length:       64,
		Broadcasts:   15,
		Interarrival: 5,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.CV.N() != 15 {
		t.Fatalf("CV samples = %d", st.CV.N())
	}
	if math.IsNaN(st.CV.Mean()) || st.CV.Mean() <= 0 {
		t.Errorf("CV mean = %v", st.CV.Mean())
	}
	// Contention must raise latency above the uncontended baseline.
	base, err := broadcast.RunSingle(m, broadcast.NewRD(), 0, network.DefaultConfig(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.Mean() < base.Latency() {
		t.Errorf("contended mean %v below uncontended %v", st.Latency.Mean(), base.Latency())
	}
}

func TestContendedCVStudyDefaultsInterarrival(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	st, err := ContendedCVStudy(m, broadcast.NewDB(), ContendedConfig{
		Net:        network.DefaultConfig(),
		Length:     32,
		Broadcasts: 5,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.N() != 5 {
		t.Fatalf("samples = %d", st.Latency.N())
	}
}

func TestContendedCVStudyValidation(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	if _, err := ContendedCVStudy(m, broadcast.NewDB(), ContendedConfig{Net: network.DefaultConfig(), Length: 32}); err == nil {
		t.Error("zero broadcasts accepted")
	}
	if _, err := ContendedCVStudy(m, broadcast.NewDB(), ContendedConfig{Net: network.DefaultConfig(), Broadcasts: 3}); err == nil {
		t.Error("zero length accepted")
	}
}

func TestImprovements(t *testing.T) {
	mk := func(name string, cv float64) *SingleSourceStats {
		st := &SingleSourceStats{Algorithm: name}
		st.CV.Add(cv)
		return st
	}
	rows := Improvements(mk("DB", 0.15), mk("RD", 0.30), mk("EDN", 0.225))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Baseline != "RD" || math.Abs(rows[0].Improvement-100) > 1e-9 {
		t.Errorf("RD row = %+v", rows[0])
	}
	if rows[1].Baseline != "EDN" || math.Abs(rows[1].Improvement-50) > 1e-9 {
		t.Errorf("EDN row = %+v", rows[1])
	}
	if rows[0].ProposedCV != 0.15 || rows[0].BaselineCV != 0.30 {
		t.Errorf("CV columns wrong: %+v", rows[0])
	}
	// Consistency with the stats helper.
	if got := stats.Improvement(0.15, 0.30); math.Abs(got-rows[0].Improvement) > 1e-12 {
		t.Error("Improvements disagrees with stats.Improvement")
	}
}

// TestContendedStudyIdenticalAcrossCalendars runs the full contended
// CV study — the workload behind Fig. 2, the tables and the perf
// trajectory — under the heap and ladder calendars and requires every
// scientific output to match to the last bit. This is the end-to-end
// complement of the kernel-level differential tests in internal/sim.
func TestContendedStudyIdenticalAcrossCalendars(t *testing.T) {
	defer sim.SetDefaultCalendar(sim.Ladder)
	m := topology.NewMesh(4, 4, 4)
	cfg := ContendedConfig{
		Net:          network.DefaultConfig(),
		Length:       64,
		Broadcasts:   12,
		Interarrival: 2,
		Seed:         2005,
	}
	type result struct {
		events                       uint64
		simTime, lat, cv             float64
		latVar, cvVar, latMax, cvMin float64
	}
	run := func(c sim.Calendar, algo broadcast.Algorithm) result {
		sim.SetDefaultCalendar(c)
		st, err := ContendedCVStudy(m, algo, cfg)
		if err != nil {
			t.Fatalf("%v/%s: %v", c, algo.Name(), err)
		}
		return result{
			events: st.Events, simTime: st.SimulatedTime,
			lat: st.Latency.Mean(), cv: st.CV.Mean(),
			latVar: st.Latency.Variance(), cvVar: st.CV.Variance(),
			latMax: st.Latency.Max(), cvMin: st.CV.Min(),
		}
	}
	for _, algo := range []broadcast.Algorithm{broadcast.NewRD(), broadcast.NewEDN(), broadcast.NewDB()} {
		h := run(sim.Heap, algo)
		l := run(sim.Ladder, algo)
		if h != l {
			t.Errorf("%s: heap %+v != ladder %+v", algo.Name(), h, l)
		}
	}
}
