package metrics

import "repro/internal/network"

// SaturationConfig returns the Fig. 2-style saturation-load workload
// the performance trajectory is benchmarked on: 64-flit broadcasts
// from random sources at a 2 µs mean inter-arrival — several
// broadcasts deep in flight on the paper's 8×8×8 mesh, so channel
// contention, wait-queue churn and worm turnover dominate, exactly
// the regime the hot-path optimisations target. The paper's §3.2
// replication count (40 experiments) is kept so one study is a
// representative unit of work.
//
// bench_test.go (BenchmarkFig2Saturation) and cmd/paperbench
// -benchjson both run this workload, so go-test benchmarks and the
// emitted BENCH_*.json trajectory measure the same thing.
func SaturationConfig(seed uint64) ContendedConfig {
	return ContendedConfig{
		Net:          network.DefaultConfig(),
		Length:       64,
		Broadcasts:   40,
		Interarrival: 2,
		Seed:         seed,
	}
}

// SaturationDims is the mesh the saturation benchmark runs on.
func SaturationDims() []int { return []int{8, 8, 8} }

// SaturationInterarrivals is the injection-gap sweep (µs) of the
// "saturation" registry scenario: from a relaxed 8 µs gap down past
// the benchmark's 2 µs operating point into overload, so the latency
// curve traverses the exact regime the perf trajectory is measured
// in.
func SaturationInterarrivals() []float64 { return []float64{8, 4, 2, 1, 0.5} }
