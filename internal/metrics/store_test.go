package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/broadcast"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/topology"
)

// The dense/lazy differential: the dense store with materialized
// adjacency and the lazy store with implicit adjacency are the same
// simulator. Every study below runs twice — once per substrate — and
// the results must be deeply equal: same accumulator internals (so
// same values in the same order, not just close means), same event
// counts, same drops and coverage. This is the observational-
// equivalence pin the store refactor rests on; the goldens only cover
// dense runs.

// storePair builds the two substrate flavours of one shape.
func storePair(dims []int, torus bool) (dense, lazy *topology.Mesh) {
	if torus {
		return topology.NewTorus(dims...), topology.NewTorusImplicit(dims...)
	}
	return topology.NewMesh(dims...), topology.NewMeshImplicit(dims...)
}

// quickShapes generates random 1–3-dim shapes with extents 3–5 (a
// torus extent below 3 has no wraparound channel), a topology kind,
// an algorithm, a seed and a fault budget.
func quickShapes(algos int) *quick.Config {
	return &quick.Config{
		MaxCount: 10,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			dims := make([]int, 1+r.Intn(3))
			for i := range dims {
				dims[i] = 3 + r.Intn(3)
			}
			vals[0] = reflect.ValueOf(dims)
			vals[1] = reflect.ValueOf(r.Intn(2) == 1)
			vals[2] = reflect.ValueOf(uint64(r.Int63()))
			vals[3] = reflect.ValueOf(uint8(r.Intn(algos)))
		},
	}
}

// diffAlgo picks an algorithm the shape admits: RD plans on any mesh,
// DB and AB need 2 or 3 dimensions, EDN exactly 3.
func diffAlgo(idx uint8, ndims int) broadcast.Algorithm {
	all := []broadcast.Algorithm{
		broadcast.NewRD(), broadcast.NewEDN(), broadcast.NewDB(), broadcast.NewAB(),
	}
	algo := all[int(idx)%len(all)]
	switch {
	case ndims < 2:
		return all[0]
	case ndims != 3 && algo.Name() == "EDN":
		return all[2]
	}
	return algo
}

func diffNetConfig(torus bool) network.Config {
	cfg := network.DefaultConfig()
	if torus {
		cfg.VCs = 2 // dateline discipline needs two lanes on wraparound rings
	}
	return cfg
}

// TestStoreDifferentialContended pins dense-vs-lazy equality under
// contended traffic on random meshes and tori.
func TestStoreDifferentialContended(t *testing.T) {
	check := func(dims []int, torus bool, seed uint64, algoIdx uint8) bool {
		md, ml := storePair(dims, torus)
		algo := diffAlgo(algoIdx, len(dims))
		run := func(m *topology.Mesh, store network.StoreMode) *SingleSourceStats {
			cfg := ContendedConfig{
				Net:          diffNetConfig(torus),
				Length:       32,
				Broadcasts:   8,
				Interarrival: 2,
				Seed:         seed,
			}
			cfg.Net.Store = store
			st, err := ContendedCVStudy(m, algo, cfg)
			if err != nil {
				t.Errorf("dims %v torus %v algo %s store %v: %v", dims, torus, algo.Name(), store, err)
				return nil
			}
			return st
		}
		a := run(md, network.StoreDense)
		b := run(ml, network.StoreLazy)
		if a == nil || b == nil {
			return false
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("dims %v torus %v algo %s seed %d: dense %+v, lazy %+v", dims, torus, algo.Name(), seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(check, quickShapes(4)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreDifferentialDegraded pins dense-vs-lazy equality under
// fault plans: identical coverage, drop counts and latency
// accumulators, and identical fault plans generated off either
// substrate (link enumeration order is part of the contract — fault
// plans are permutations of it).
func TestStoreDifferentialDegraded(t *testing.T) {
	check := func(dims []int, torus bool, seed uint64, algoIdx uint8) bool {
		md, ml := storePair(dims, torus)
		algo := diffAlgo(algoIdx, len(dims))
		k := 1 + int(seed%3)
		// A 1-dim extent-3 mesh has only 2 links; clamp so the random
		// budget never exceeds what the shape can supply.
		if avail := len(fault.Links(md)); k > avail {
			k = avail
		}
		planD, err := fault.RandomLinks(md, seed, k, 0)
		if err != nil {
			t.Errorf("dims %v torus %v: %v", dims, torus, err)
			return false
		}
		planL, err := fault.RandomLinks(ml, seed, k, 0)
		if err != nil {
			t.Errorf("dims %v torus %v: %v", dims, torus, err)
			return false
		}
		if !reflect.DeepEqual(planD, planL) {
			t.Errorf("dims %v torus %v seed %d: fault plans differ between substrates: %+v vs %+v", dims, torus, seed, planD, planL)
			return false
		}
		run := func(m *topology.Mesh, store network.StoreMode, plan *fault.Plan) *DegradationStats {
			cfg := DegradedConfig{
				Net:          diffNetConfig(torus),
				Length:       32,
				Broadcasts:   8,
				Interarrival: 2,
				Seed:         seed,
				Faults:       plan,
			}
			cfg.Net.Store = store
			cfg.Net.DeadWait = 5
			st, err := DegradedStudy(m, algo, cfg)
			if err != nil {
				t.Errorf("dims %v torus %v algo %s store %v: %v", dims, torus, algo.Name(), store, err)
				return nil
			}
			return st
		}
		a := run(md, network.StoreDense, planD)
		b := run(ml, network.StoreLazy, planL)
		if a == nil || b == nil {
			return false
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("dims %v torus %v algo %s seed %d faults %d: dense %+v, lazy %+v",
				dims, torus, algo.Name(), seed, k, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(check, quickShapes(4)); err != nil {
		t.Fatal(err)
	}
}
