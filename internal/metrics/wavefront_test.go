package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/broadcast"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Wavefront batch execution is an optimization, not a semantics
// change: draining the calendar one equal-due run at a time must be
// bit-for-bit identical to popping one event at a time — on any
// topology, either state store, contended or fault-degraded, at any
// shard count, on either calendar. These tests pin that contract the
// same way the sharded and heap/ladder differentials pin theirs.

// wfDiffCase is one random wavefront differential scenario.
type wfDiffCase struct {
	dims   []int
	torus  bool
	algoIx int
	seed   uint64
	shards int
	store  network.StoreMode
	links  int     // failed links (0 = pristine)
	grace  float64 // DeadWait when faulted
}

// Generate implements quick.Generator: 1–3 dimensions of extent 2–5,
// mesh or torus, an algorithm the dimensionality supports, dense or
// lazy store, 2–6 shards, 0–8 failed links.
func (wfDiffCase) Generate(r *rand.Rand, _ int) reflect.Value {
	nd := 1 + r.Intn(3)
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = 2 + r.Intn(4)
	}
	nAlgos := 1 // RD
	switch nd {
	case 2:
		nAlgos = 3 // +DB, AB
	case 3:
		nAlgos = 4 // +EDN
	}
	c := wfDiffCase{
		dims:   dims,
		torus:  r.Intn(2) == 1,
		algoIx: r.Intn(nAlgos),
		seed:   r.Uint64(),
		shards: 2 + r.Intn(5),
		store:  network.StoreMode(1 + r.Intn(2)), // StoreDense or StoreLazy
		links:  r.Intn(3) * 4,
		grace:  float64(r.Intn(2)) * 5,
	}
	return reflect.ValueOf(c)
}

func (c wfDiffCase) mesh() *topology.Mesh {
	if c.torus {
		return topology.NewTorus(c.dims...)
	}
	return topology.NewMesh(c.dims...)
}

func (c wfDiffCase) netConfig(shards int) network.Config {
	cfg := network.DefaultConfig()
	if c.torus {
		cfg.VCs = 2
	}
	cfg.Store = c.store
	cfg.Shards = shards
	return cfg
}

// contended runs the contended CV study under the given knobs.
func (c wfDiffCase) contended(wavefront bool, shards int) (*SingleSourceStats, error) {
	defer sim.SetDefaultWavefront(sim.DefaultWavefront())
	sim.SetDefaultWavefront(wavefront)
	return ContendedCVStudy(c.mesh(), shardDiffAlgos[c.algoIx], ContendedConfig{
		Net: c.netConfig(shards), Length: 16, Broadcasts: 8, Interarrival: 2, Seed: c.seed,
	})
}

// degraded runs the fault-degraded study under the given knobs.
func (c wfDiffCase) degraded(wavefront bool, shards int) (*DegradationStats, error) {
	defer sim.SetDefaultWavefront(sim.DefaultWavefront())
	sim.SetDefaultWavefront(wavefront)
	m := c.mesh()
	ncfg := c.netConfig(shards)
	ncfg.DeadWait = c.grace
	var plan *fault.Plan
	if c.links > 0 {
		k := c.links
		if avail := len(fault.Links(m)); k > avail {
			k = avail
		}
		var err error
		plan, err = fault.RandomLinks(m, c.seed, k, 0)
		if err != nil {
			return nil, err
		}
	}
	return DegradedStudy(m, shardDiffAlgos[c.algoIx], DegradedConfig{
		Net: ncfg, Length: 16, Broadcasts: 8, Interarrival: 2,
		Seed: c.seed, Faults: plan,
	})
}

// TestWavefrontContendedStudySmoke is the readable fixed-shape twin of
// the quick.Check suite: wavefront off must match wavefront on, on
// both calendars, at shards 1, 2 and 8.
func TestWavefrontContendedStudySmoke(t *testing.T) {
	m := topology.NewMesh(8, 8)
	run := func(cal sim.Calendar, wavefront bool, shards int) *SingleSourceStats {
		oldCal := sim.DefaultCalendar()
		sim.SetDefaultCalendar(cal)
		defer sim.SetDefaultCalendar(oldCal)
		oldWF := sim.DefaultWavefront()
		sim.SetDefaultWavefront(wavefront)
		defer sim.SetDefaultWavefront(oldWF)
		ncfg := network.DefaultConfig()
		ncfg.Shards = shards
		st, err := ContendedCVStudy(m, broadcast.NewRD(), ContendedConfig{
			Net: ncfg, Length: 32, Broadcasts: 24, Interarrival: 2, Seed: 7,
		})
		if err != nil {
			t.Fatalf("calendar=%v wavefront=%v shards=%d: %v", cal, wavefront, shards, err)
		}
		return st
	}
	base := run(sim.Ladder, true, 1)
	for _, cal := range []sim.Calendar{sim.Ladder, sim.Heap} {
		for _, wavefront := range []bool{true, false} {
			for _, shards := range []int{1, 2, 8} {
				if got := run(cal, wavefront, shards); !reflect.DeepEqual(base, got) {
					t.Errorf("calendar=%v wavefront=%v shards=%d diverges:\nbase: %+v\ngot:  %+v",
						cal, wavefront, shards, base, got)
				}
			}
		}
	}
}

// TestWavefrontStudiesIdenticalQuick is the differential suite: random
// meshes and tori × dense/lazy stores × fault plans × shard counts,
// contended and degraded workloads — wavefront on and off must be
// byte-identical at every point.
func TestWavefrontStudiesIdenticalQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is not short")
	}
	prop := func(c wfDiffCase) bool {
		for _, shards := range []int{1, c.shards} {
			on, err := c.contended(true, shards)
			if err != nil {
				t.Logf("case %+v: contended wavefront-on shards=%d: %v", c, shards, err)
				return false
			}
			off, err := c.contended(false, shards)
			if err != nil {
				t.Logf("case %+v: contended wavefront-off shards=%d: %v", c, shards, err)
				return false
			}
			if !reflect.DeepEqual(on, off) {
				t.Logf("case %+v: contended shards=%d diverges\non:  %+v\noff: %+v", c, shards, on, off)
				return false
			}
			dOn, err := c.degraded(true, shards)
			if err != nil {
				t.Logf("case %+v: degraded wavefront-on shards=%d: %v", c, shards, err)
				return false
			}
			dOff, err := c.degraded(false, shards)
			if err != nil {
				t.Logf("case %+v: degraded wavefront-off shards=%d: %v", c, shards, err)
				return false
			}
			if !reflect.DeepEqual(dOn, dOff) {
				t.Logf("case %+v: degraded shards=%d diverges\non:  %+v\noff: %+v", c, shards, dOn, dOff)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(20260809)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWavefrontStatsAccumulate sanity-checks the batch statistics the
// EXPERIMENTS.md distribution comes from: a contended study must
// observe multi-event batches, and the histogram totals must agree
// with the counters.
func TestWavefrontStatsAccumulate(t *testing.T) {
	m := topology.NewMesh(8, 8)
	s := sim.New()
	if !s.Wavefront() {
		t.Skip("wavefront disabled by default in this build")
	}
	net, err := network.New(s, m, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broadcast.Execute(net, mustPlan(t, m, broadcast.NewRD(), 0), broadcast.Options{Length: 32}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	st := s.WavefrontStats()
	if st.Batches == 0 || st.Events == 0 {
		t.Fatalf("no batches recorded: %+v", st)
	}
	if st.Events != s.Fired() {
		t.Errorf("batch events %d != fired %d", st.Events, s.Fired())
	}
	var hist uint64
	for _, n := range st.Hist {
		hist += n
	}
	if hist != st.Batches {
		t.Errorf("histogram total %d != batches %d", hist, st.Batches)
	}
	if st.Events <= st.Batches {
		t.Error("every batch was a single event; wavefronts never formed")
	}
}

func mustPlan(t *testing.T, m *topology.Mesh, algo broadcast.Algorithm, src topology.NodeID) *broadcast.Plan {
	t.Helper()
	p, err := broadcast.PlanCached(m, algo, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
