package network

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Fault model. The network is fail-stop at acquisition granularity: a
// failed channel or node stops granting resources the instant the
// failure event fires, but flits already in transit drain normally —
// a worm HOLDING a channel that fails keeps it until its tail passes,
// exactly like a router whose output queue empties after the cable is
// cut. What a failure does affect, immediately and deterministically:
//
//   - no worm acquires a lane of a dead channel, a lane into a dead
//     node, or a lane out of one (acquire enforces this with a panic,
//     the robustness suite's always-on invariant);
//   - worms queued FIFO on a lane that dies are kicked back through
//     advance, where an adaptive selector may offer a live detour;
//   - a worm none of whose admissible next hops is live parks for
//     Config.DeadWait µs awaiting a recovery, or — with a zero
//     DeadWait — is dropped on the spot: its held lanes release in
//     path order, its injection port frees, and Dropped() counts it.
//
// A dropped worm delivers NOTHING, even to waypoints its header
// already passed: in wormhole switching a waypoint consumes the
// message as the body streams by, and a killed worm's body never
// drains. Health state is allocated lazily on the first Fail call, so
// a network that never sees a fault is byte- and allocation-identical
// to the pre-fault implementation.
//
// Deadlock freedom on the degraded network: failing a channel only
// REMOVES edges from the channel dependence graph the routing
// substrate was certified on (internal/cdg), and every subgraph of an
// acyclic graph is acyclic — so faults can cause drops and stalls,
// never a circular wait. Parked worms are bounded by their DeadWait
// timers, so the calendar always drains.

// healthState tracks which physical channels and nodes are down. It
// is nil until the first failure is injected; every hot-path check is
// guarded by that nil test.
type healthState struct {
	linkDown []bool // indexed by physical topology.ChannelID
	nodeDown []bool // indexed by topology.NodeID
}

// parkToken guards a parked worm's timeout record. The calendar entry
// references the token, not the worm: by the time the timeout fires
// the worm may have been revived — or revived, drained and recycled —
// so the handler must no-op unless the worm still carries THIS token.
type parkToken struct{ w *worm }

func (n *Network) ensureHealth() *healthState {
	if n.health == nil {
		n.health = &healthState{
			linkDown: make([]bool, n.topo.ChannelSlots()),
			nodeDown: make([]bool, n.topo.Nodes()),
		}
		// A degraded network loses its lookahead: a dropped worm
		// releases its whole held chain instantly across shards, and
		// kicks/revivals re-route worms synchronously. The sharded
		// kernel falls back to coordinator-only execution for the rest
		// of the run (identical output, no parallel segments). Faults
		// are always injected from serial-class events, so this fires
		// on the coordinator between segments.
		n.sim.Degrade()
	}
	return n.health
}

// LinkAlive reports whether physical channel ch is up. Channels of a
// network that never saw a fault are always up.
func (n *Network) LinkAlive(ch topology.ChannelID) bool {
	return n.health == nil || !n.health.linkDown[ch]
}

// NodeAlive reports whether node id is up.
func (n *Network) NodeAlive(id topology.NodeID) bool {
	return n.health == nil || !n.health.nodeDown[id]
}

// Dropped returns the number of worms aborted because every
// admissible next hop was dead (and any DeadWait grace expired).
func (n *Network) Dropped() uint64 { return n.dropped }

// Parked returns the number of worms currently parked awaiting a
// recovery.
func (n *Network) Parked() int { return len(n.parked) }

func (n *Network) checkChannel(ch topology.ChannelID) {
	if int(ch) < 0 || int(ch) >= n.topo.ChannelSlots() {
		panic(fmt.Sprintf("network: channel %d out of range [0,%d)", ch, n.topo.ChannelSlots()))
	}
}

func (n *Network) checkNode(id topology.NodeID) {
	if int(id) < 0 || int(id) >= n.topo.Nodes() {
		panic(fmt.Sprintf("network: node %d out of range [0,%d)", id, n.topo.Nodes()))
	}
}

// FailLink takes physical channel ch down. Worms queued on its lanes
// are kicked back through advance in FIFO order per lane, so adaptive
// worms re-route and dead-ended ones park or drop. The current
// holders, if any, keep draining (fail-stop at acquisition). Failing
// a dead channel is a no-op.
func (n *Network) FailLink(ch topology.ChannelID) {
	n.checkChannel(ch)
	h := n.ensureHealth()
	if h.linkDown[ch] {
		return
	}
	h.linkDown[ch] = true
	n.kickWaiters(ch)
}

// RestoreLink brings physical channel ch back up and re-advances
// every parked worm (any recovery may have opened any parked worm's
// path; re-evaluating all of them is deterministic and cheap because
// parking is rare). Restoring a live channel is a no-op.
func (n *Network) RestoreLink(ch topology.ChannelID) {
	n.checkChannel(ch)
	if n.health == nil || !n.health.linkDown[ch] {
		return
	}
	n.health.linkDown[ch] = false
	n.reviveParked()
}

// FailNode takes node id down: nothing routes into or out of it any
// more. Worms queued on its adjacent channels (both directions) are
// kicked; worms whose header sits AT the node park or drop on their
// next advance. Failing a dead node is a no-op.
func (n *Network) FailNode(id topology.NodeID) {
	n.checkNode(id)
	h := n.ensureHealth()
	if h.nodeDown[id] {
		return
	}
	h.nodeDown[id] = true
	// AppendNeighborsOf keeps implicit topologies adjacency-table-free;
	// enumeration order matches Adjacent exactly (fault determinism).
	for _, nb := range topology.AppendNeighborsOf(n.topo, id, nil) {
		if out := n.topo.Channel(id, nb); out != topology.InvalidChannel {
			n.kickWaiters(out)
		}
		if in := n.topo.Channel(nb, id); in != topology.InvalidChannel {
			n.kickWaiters(in)
		}
	}
}

// RestoreNode brings node id back up and re-advances parked worms.
func (n *Network) RestoreNode(id topology.NodeID) {
	n.checkNode(id)
	if n.health == nil || !n.health.nodeDown[id] {
		return
	}
	n.health.nodeDown[id] = false
	n.reviveParked()
}

// kickWaiters drains the FIFO queues of every lane of physical
// channel ch and re-advances each worm: with the lane now dead,
// advance either finds a live detour, parks, or drops. Lane order
// then queue order keeps the kick deterministic.
func (n *Network) kickWaiters(ch topology.ChannelID) {
	base := int(ch) * n.vcs
	for l := 0; l < n.vcs; l++ {
		st := n.laneIfTouched(topology.ChannelID(base + l))
		if st == nil {
			// Untouched lazy lane: nothing ever queued on it.
			continue
		}
		for st.queue.Len() > 0 {
			w := st.queue.Pop()
			if w.waiting != topology.ChannelID(base+l) {
				panic("network: queued worm not waiting on this channel")
			}
			w.waiting = topology.InvalidChannel
			n.advance(n.sim.Env(), w)
		}
	}
}

// parkOrDrop handles a worm with no live admissible next hop: park it
// for DeadWait µs awaiting a recovery, or drop it immediately when no
// grace is configured.
func (n *Network) parkOrDrop(env *sim.Env, w *worm) {
	if n.deadWait > 0 {
		tk := &parkToken{w: w}
		w.parkToken = tk
		n.parked = append(n.parked, w)
		env.AfterCall(n.deadWait, parkTimeoutEvent, tk)
		return
	}
	n.dropWorm(env, w)
}

// parkTimeoutEvent fires DeadWait after a worm parked. The token
// check makes stale records harmless: a revived (or long recycled)
// worm no longer carries this token.
func parkTimeoutEvent(env *sim.Env, arg any) {
	tk := arg.(*parkToken)
	w := tk.w
	if w.parkToken != tk {
		return
	}
	w.parkToken = nil
	n := w.net
	n.unpark(w)
	n.dropWorm(env, w)
}

// unpark removes w from the parked list, preserving order.
func (n *Network) unpark(w *worm) {
	for i, p := range n.parked {
		if p == w {
			n.parked = append(n.parked[:i], n.parked[i+1:]...)
			return
		}
	}
	panic("network: unparking a worm that is not parked")
}

// reviveParked re-advances every parked worm in park order. A worm
// whose path is still dead re-parks with a fresh token and a fresh
// DeadWait deadline; its old timeout record no-ops on the token test.
func (n *Network) reviveParked() {
	if len(n.parked) == 0 {
		return
	}
	ws := n.parked
	n.parked = nil
	for _, w := range ws {
		w.parkToken = nil
		n.advance(n.sim.Env(), w)
	}
}

// dropWorm aborts w: the injection port frees, every held lane
// releases in path order (admitting its waiters), the drop is
// counted, the Transfer's OnPath/OnDrop hooks fire, and the worm
// returns to the pool. No delivery ever fires for a dropped worm —
// its body never drained past any waypoint.
func (n *Network) dropWorm(env *sim.Env, w *worm) {
	if w.waiting != topology.InvalidChannel {
		panic("network: dropping a queued worm")
	}
	if w.parkToken != nil {
		panic("network: dropping a parked worm without unparking it")
	}
	n.activeRemove(w)
	n.dropped++
	n.releasePort(env, w.t.Source)
	// w.chans survives intact through the releases (release indexes the
	// network's channel table, not the worm), so the path-order walk is
	// safe; putWorm truncates it afterwards.
	for _, lane := range w.chans {
		n.release(env, lane)
	}
	if w.t.OnPath != nil {
		w.t.OnPath(w.path, false)
	}
	if w.t.OnDrop != nil {
		w.t.OnDrop(env.Now())
	}
	n.putWorm(w)
}
