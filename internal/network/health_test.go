package network

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestFailedLinkDropsDeterministicWorm: a DOR worm has exactly one
// admissible next hop; with that hop dead and no DeadWait grace the
// worm drops — no delivery fires, the drop is counted, and the
// network is left clean enough for later traffic to flow.
func TestFailedLinkDropsDeterministicWorm(t *testing.T) {
	s, m, n := testNet(t, 4, 1)
	n.FailLink(m.Channel(m.ID(1, 0), m.ID(2, 0)))
	delivered, dropped := false, sim.Time(-1)
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    16,
		OnDeliver: func(topology.NodeID, sim.Time) { delivered = true },
		OnDrop:    func(at sim.Time) { dropped = at },
	})
	s.Run()
	if delivered {
		t.Fatal("worm delivered across a dead channel")
	}
	// The header reaches node 1 at Ts+hop and finds its only hop dead.
	cfg := n.Config()
	if want := cfg.Ts + cfg.Beta; !almost(dropped, want) {
		t.Fatalf("dropped at %v, want %v", dropped, want)
	}
	if n.Dropped() != 1 || n.InFlight() != 0 {
		t.Fatalf("dropped=%d inflight=%d, want 1/0", n.Dropped(), n.InFlight())
	}
	// The degraded network still carries traffic on its live links.
	ok := false
	n.MustSend(s.Now(), &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(1, 0)},
		Length:    16,
		OnDeliver: func(topology.NodeID, sim.Time) { ok = true },
	})
	s.Run()
	if !ok {
		t.Fatal("live link no longer delivers after a drop")
	}
}

// TestAdaptiveRoutesAroundDeadLink: west-first offers both the +x and
// +y hop in the NE quadrant, so killing the +x link out of the source
// must re-route the worm minimally through +y — delivered, minimal
// length, and never touching the dead channel.
func TestAdaptiveRoutesAroundDeadLink(t *testing.T) {
	s, m, n := testNet(t, 4, 4)
	src, dst := m.ID(0, 0), m.ID(2, 2)
	dead := m.Channel(src, m.ID(1, 0))
	n.FailLink(dead)
	var gotPath []topology.NodeID
	deliveredFlag := false
	n.MustSend(0, &Transfer{
		Source:    src,
		Waypoints: []topology.NodeID{dst},
		Length:    16,
		Selector:  routing.WestFirstFor(m),
		OnPath: func(path []topology.NodeID, delivered bool) {
			gotPath = append([]topology.NodeID(nil), path...)
			deliveredFlag = delivered
		},
	})
	s.Run()
	if !deliveredFlag {
		t.Fatalf("adaptive worm not delivered; dropped=%d", n.Dropped())
	}
	if got, want := len(gotPath)-1, m.Distance(src, dst); got != want {
		t.Fatalf("path length %d, want minimal %d (%v)", got, want, gotPath)
	}
	for i := 0; i+1 < len(gotPath); i++ {
		if m.Channel(gotPath[i], gotPath[i+1]) == dead {
			t.Fatalf("path %v traverses the dead channel", gotPath)
		}
	}
}

// TestDeadWaitTimesOut: with a DeadWait grace the dead-ended worm
// parks, and only after the grace expires does it drop.
func TestDeadWaitTimesOut(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 1)
	cfg := DefaultConfig()
	cfg.DeadWait = 10
	n := MustNew(s, m, cfg)
	n.FailLink(m.Channel(m.ID(1, 0), m.ID(2, 0)))
	dropped := sim.Time(-1)
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    16,
		OnDrop:    func(at sim.Time) { dropped = at },
	})
	if n.Parked() != 0 {
		t.Fatal("worm parked before the run")
	}
	s.Run()
	if want := cfg.Ts + cfg.Beta + cfg.DeadWait; !almost(dropped, want) {
		t.Fatalf("dropped at %v, want park at %v + grace %v", dropped, cfg.Ts+cfg.Beta, cfg.DeadWait)
	}
	if n.Parked() != 0 || n.InFlight() != 0 {
		t.Fatalf("parked=%d inflight=%d after drop, want 0/0", n.Parked(), n.InFlight())
	}
}

// TestDeadWaitRecoveryDelivers: a parked worm whose channel comes
// back inside the grace window resumes and delivers; its stale park
// timeout must fire harmlessly after the worm has long drained.
func TestDeadWaitRecoveryDelivers(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 1)
	cfg := DefaultConfig()
	cfg.DeadWait = 10
	n := MustNew(s, m, cfg)
	fwd, rev := m.Channel(m.ID(1, 0), m.ID(2, 0)), m.Channel(m.ID(2, 0), m.ID(1, 0))
	n.FailLink(fwd)
	n.FailLink(rev)
	s.At(5, func() { n.RestoreLink(fwd); n.RestoreLink(rev) })
	arrived := sim.Time(-1)
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    16,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { arrived = at },
		OnDrop:    func(sim.Time) { t.Error("worm dropped despite recovery inside the grace window") },
	})
	s.Run()
	if arrived < 0 {
		t.Fatal("worm never delivered")
	}
	// Parked at Ts+hop, revived at t=5, then two hops and the drain.
	cfg2 := n.Config()
	if want := 5 + 2*cfg2.Beta + 16*cfg2.Beta; !almost(arrived, want) {
		t.Fatalf("arrival %v, want %v", arrived, want)
	}
	if n.Dropped() != 0 || n.Parked() != 0 || n.InFlight() != 0 {
		t.Fatalf("dropped=%d parked=%d inflight=%d, want all 0", n.Dropped(), n.Parked(), n.InFlight())
	}
}

// TestFailNodeStopsDelivery: a destination that fails before the
// header's last hop cannot be reached — every minimal candidate leads
// into the dead node, so the worm drops regardless of selector.
func TestFailNodeStopsDelivery(t *testing.T) {
	s, m, n := testNet(t, 3, 3)
	dst := m.ID(2, 2)
	n.FailNode(dst)
	delivered := false
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{dst},
		Length:    16,
		Selector:  routing.WestFirstFor(m),
		OnDeliver: func(topology.NodeID, sim.Time) { delivered = true },
	})
	s.Run()
	if delivered {
		t.Fatal("delivered to a dead node")
	}
	if n.Dropped() != 1 {
		t.Fatalf("dropped=%d, want 1", n.Dropped())
	}
	if !n.NodeAlive(m.ID(0, 0)) || n.NodeAlive(dst) {
		t.Fatal("NodeAlive disagrees with the injected fault")
	}
}

// TestFailedLinkKicksWaiters: a worm queued FIFO on a channel that
// dies must be kicked immediately — here onto a dead end, so it
// drops — while the channel's current holder keeps draining
// (fail-stop at acquisition granularity).
func TestFailedLinkKicksWaiters(t *testing.T) {
	s, m, n := testNet(t, 4, 1)
	cfg := n.Config()
	contested := m.Channel(m.ID(1, 0), m.ID(2, 0))
	aDone, bDropped := false, sim.Time(-1)
	// A is long enough to still hold (1,0)->(2,0) when B arrives.
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    400,
		OnDone:    func(sim.Time) { aDone = true },
	})
	// B injects a beat later so A already holds the contested channel
	// when B's header reaches it and queues.
	n.MustSend(0.1, &Transfer{
		Source:    m.ID(1, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    16,
		OnDrop:    func(at sim.Time) { bDropped = at },
	})
	// The failure strikes while A still holds the channel and B still
	// queues on it.
	failAt := cfg.Ts + 1
	s.At(failAt, func() { n.FailLink(contested) })
	s.Run()
	if !aDone {
		t.Fatal("holder did not finish draining over its acquired channel")
	}
	if !almost(bDropped, failAt) {
		t.Fatalf("waiter dropped at %v, want kicked at the failure time %v", bDropped, failAt)
	}
	if n.InFlight() != 0 {
		t.Fatalf("%d worms still in flight", n.InFlight())
	}
}

// TestDropReleasesPortAndLanes: dropping a parked worm frees its
// injection port and held lanes, admitting the worms queued behind
// it. B (same one-port source) must inject after A's drop and then
// deliver over the lane A held.
func TestDropReleasesPortAndLanes(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 1)
	cfg := DefaultConfig()
	cfg.DeadWait = 10
	n := MustNew(s, m, cfg)
	n.FailLink(m.Channel(m.ID(2, 0), m.ID(3, 0)))
	arrived := sim.Time(-1)
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    16,
	})
	n.MustSend(1, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(2, 0)},
		Length:    16,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { arrived = at },
	})
	s.Run()
	if n.Dropped() != 1 {
		t.Fatalf("dropped=%d, want A dropped after its grace", n.Dropped())
	}
	if arrived < 0 {
		t.Fatal("B never delivered: drop did not free the port or lanes")
	}
	// A parks at Ts+2hops holding (0,1) and (1,2); it drops DeadWait
	// later, granting B the port; B then pays Ts and sails through.
	aDrop := cfg.Ts + 2*cfg.Beta + cfg.DeadWait
	want := aDrop + cfg.Ts + 2*cfg.Beta + 16*cfg.Beta
	if !almost(arrived, want) {
		t.Fatalf("B arrived at %v, want %v", arrived, want)
	}
}

// TestPristineNetworkNeverAllocatesHealth: fault state is engaged
// lazily; a network that never sees a Fail call must not even
// allocate the health tables.
func TestPristineNetworkNeverAllocatesHealth(t *testing.T) {
	s, m, n := testNet(t, 4, 4)
	n.MustSend(0, &Transfer{Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(3, 3)}, Length: 16})
	s.Run()
	if n.health != nil {
		t.Fatal("pristine run allocated health state")
	}
	if !n.LinkAlive(0) || !n.NodeAlive(0) {
		t.Fatal("pristine accessors must report everything alive")
	}
}

// TestDegradedHotPathAllocationBudget extends the warm-path pin to a
// network whose health state is engaged: the per-hop dead checks are
// nil-free but allocation-free, so a warm unicast around a dead link
// still performs zero heap allocations.
func TestDegradedHotPathAllocationBudget(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(8, 8)
	n := MustNew(s, m, DefaultConfig())
	n.FailLink(m.Channel(m.ID(0, 0), m.ID(1, 0)))
	tr := &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(7, 7)},
		Length:    64,
		Selector:  routing.WestFirstFor(m),
	}
	for i := 0; i < 32; i++ {
		n.MustSend(s.Now(), tr)
		s.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		n.MustSend(s.Now(), tr)
		s.Run()
	})
	if avg > 0 {
		t.Errorf("warm degraded unicast allocates %v per op, want 0", avg)
	}
	if n.Dropped() != 0 {
		t.Fatalf("adaptive worm dropped %d times on a routable degraded mesh", n.Dropped())
	}
}
