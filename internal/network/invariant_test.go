package network

import (
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestLatencyLowerBound: under arbitrary contention, a worm's
// delivery can never beat the contention-free bound
// Ts + distance·HopDelay + L·Beta.
func TestLatencyLowerBound(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		s := sim.New()
		m := topology.NewMesh(5, 4, 3)
		cfg := DefaultConfig()
		n := MustNew(s, m, cfg)
		rng := sim.NewRNG(seed, 61)
		type sent struct {
			src, dst topology.NodeID
			start    sim.Time
			length   int
			arrived  sim.Time
		}
		worms := make([]*sent, 0, int(count)%40+5)
		for i := 0; i < cap(worms); i++ {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes() - 1))
			if dst >= src {
				dst++
			}
			w := &sent{src: src, dst: dst, start: rng.Uniform(0, 20), length: 1 + rng.Intn(128)}
			worms = append(worms, w)
			n.MustSend(w.start, &Transfer{
				Source: src, Waypoints: []topology.NodeID{dst}, Length: w.length,
				OnDeliver: func(_ topology.NodeID, at sim.Time) { w.arrived = at },
			})
		}
		s.Run()
		for _, w := range worms {
			bound := w.start + cfg.Ts + float64(m.Distance(w.src, w.dst))*cfg.hopDelay() + float64(w.length)*cfg.Beta
			if w.arrived < bound-1e-9 {
				return false
			}
		}
		return n.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveContentionCompletes floods the mesh with west-first
// adaptive worms: everything must drain (no cyclic waits among
// turn-model-conforming traffic).
func TestAdaptiveContentionCompletes(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(5, 5, 4)
	n := MustNew(s, m, DefaultConfig())
	wf := routing.NewWestFirst(m)
	rng := sim.NewRNG(17, 3)
	const worms = 3000
	done := 0
	for i := 0; i < worms; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes() - 1))
		if dst >= src {
			dst++
		}
		n.MustSend(rng.Uniform(0, 30), &Transfer{
			Source: src, Waypoints: []topology.NodeID{dst}, Length: 1 + rng.Intn(64),
			Selector:  wf,
			OnDeliver: func(_ topology.NodeID, _ sim.Time) { done++ },
		})
	}
	s.Run()
	if done != worms || n.InFlight() != 0 {
		t.Fatalf("%d/%d delivered, %d in flight: %v", done, worms, n.InFlight(), n.Stuck())
	}
}

// TestMixedSelectorContentionCompletes mixes DOR, west-first and
// odd-even traffic in one network; the union of their turn sets must
// still drain on this workload.
func TestMixedSelectorContentionCompletes(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(6, 6)
	n := MustNew(s, m, DefaultConfig())
	sels := []routing.Selector{nil, routing.NewWestFirst(m), routing.NewOddEven(m)}
	rng := sim.NewRNG(23, 7)
	const worms = 2000
	done := 0
	for i := 0; i < worms; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes() - 1))
		if dst >= src {
			dst++
		}
		n.MustSend(rng.Uniform(0, 20), &Transfer{
			Source: src, Waypoints: []topology.NodeID{dst}, Length: 1 + rng.Intn(32),
			Selector:  sels[i%len(sels)],
			OnDeliver: func(_ topology.NodeID, _ sim.Time) { done++ },
		})
	}
	s.Run()
	if done != worms {
		t.Fatalf("%d/%d delivered: %v", done, worms, n.Stuck())
	}
}
