// Package network simulates a wormhole-switched direct network with a
// single FIFO queue per channel, the model the paper's VC++/CSIM
// simulator used. A message is a worm: after a startup latency Ts at
// the source, its header flit advances one channel per HopDelay,
// blocking in place (and holding every channel already acquired) when
// the next channel is busy. Once the header reaches the end of its
// coded path the body drains at Beta per flit and the held channels
// release in pipeline order. Multidestination (CPR) delivery, one-port
// and multi-port injection, and adaptive next-hop selection are all
// modelled here.
//
// With Config.VCs >= 2 each physical channel splits into independent
// virtual-channel lanes (own holder, own FIFO) — the substrate that
// makes minimal routing deadlock-free on tori when paired with a
// dateline routing.VCPolicy. The default of one VC reproduces the
// paper's mesh model exactly.
package network

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config carries the timing and port parameters of the network. The
// defaults mirror the paper's Cray T3D-derived constants.
type Config struct {
	// Ts is the communication startup latency in µs (paper: 0.15 or 1.5).
	Ts float64
	// Beta is the time to transmit one flit across a channel in µs
	// (paper: 0.003).
	Beta float64
	// HopDelay is the header's per-hop routing delay in µs. Zero
	// means "use Beta", matching a router that forwards the header in
	// one flit time.
	HopDelay float64
	// Ports is the number of simultaneous injections a node supports:
	// 1 for the one-port model (RD, DB, AB), 3 for EDN's three-port
	// router. Zero means 1.
	Ports int
	// DeadWait is how long a worm whose every admissible next hop is
	// dead waits for a recovery before it is dropped, in µs. Zero
	// drops such worms immediately. It is only ever consulted on a
	// network that has seen a fault (see health.go); pristine runs
	// never read it.
	DeadWait float64
	// Store selects the state-allocation model (see store.go). The
	// zero value StoreAuto keeps every network below LazyStoreThreshold
	// nodes on the historical dense slices and switches larger ones to
	// the paged lazy store; StoreDense/StoreLazy force a mode. The two
	// stores are observationally equivalent.
	Store StoreMode
	// VCs is the number of virtual channels multiplexed over each
	// physical channel. Zero means 1 — the paper's single-FIFO-queue
	// channel model, byte-identical in behaviour and allocation to the
	// pre-VC network. With VCs >= 2 each physical channel becomes VCs
	// independent lanes with their own wait queues; selectors that
	// implement routing.VCPolicy (the dateline routers) steer worms
	// into class-partitioned lanes, which is what makes minimal
	// routing deadlock-free on tori. Selectors without a policy may
	// use any free lane (plain head-of-line-blocking relief — safe on
	// meshes, NOT a deadlock guarantee on tori).
	VCs int
	// Shards asks for the conservative-parallel simulation kernel: the
	// mesh is slab-partitioned into Shards contiguous blocks
	// (topology.Partition), the driving simulator gains one event
	// calendar and one worker per shard, and header advances/channel
	// releases execute in parallel inside lookahead-bounded segments
	// (sim/shard.go). Output is byte-identical to the serial kernel at
	// any shard count. Zero or 1 keeps the serial kernel; values above
	// the node count are clamped. Requires a mesh/torus topology.
	Shards int
}

// DefaultConfig returns the paper's baseline parameters: Ts=1.5 µs,
// Beta=0.003 µs, one-port.
func DefaultConfig() Config {
	return Config{Ts: 1.5, Beta: 0.003, Ports: 1}
}

func (c Config) hopDelay() float64 {
	if c.HopDelay > 0 {
		return c.HopDelay
	}
	return c.Beta
}

func (c Config) ports() int {
	if c.Ports > 0 {
		return c.Ports
	}
	return 1
}

func (c Config) vcs() int {
	if c.VCs > 0 {
		return c.VCs
	}
	return 1
}

func (c Config) validate() error {
	if c.Ts < 0 || c.Beta <= 0 || c.HopDelay < 0 {
		return fmt.Errorf("network: invalid timing config %+v", c)
	}
	if c.VCs < 0 {
		return fmt.Errorf("network: negative virtual channel count %d", c.VCs)
	}
	if c.DeadWait < 0 {
		return fmt.Errorf("network: negative dead-hop wait %g", c.DeadWait)
	}
	if c.Store < StoreAuto || c.Store > StoreLazy {
		return fmt.Errorf("network: invalid store mode %d", c.Store)
	}
	if c.Shards < 0 {
		return fmt.Errorf("network: negative shard count %d", c.Shards)
	}
	if c.Shards > 1 {
		// The sharded kernel's correctness rests on the per-hop delay
		// being the minimum delay of ANY event a shard-class event can
		// schedule — the conservative lookahead. Besides the next hop
		// (exactly one hop delay out), a shard-class event can reach a
		// Ts-delayed injection grant (a release handing a port to a
		// queued worm) and a DeadWait-delayed park timeout, so both must
		// be at least the hop delay; a zero DeadWait schedules nothing
		// (such worms drop on the spot) and stays valid.
		hop := c.hopDelay()
		if c.Ts < hop {
			return fmt.Errorf("network: sharded kernel needs startup latency >= per-hop delay (the lookahead): Ts=%g < %g", c.Ts, hop)
		}
		if c.DeadWait > 0 && c.DeadWait < hop {
			return fmt.Errorf("network: sharded kernel needs dead-hop wait >= per-hop delay (the lookahead): DeadWait=%g < %g", c.DeadWait, hop)
		}
	}
	return nil
}

// Transfer describes one worm to inject. Exactly one routing mode is
// used: if Selector is nil the worm follows the unique dimension-order
// path between waypoints; otherwise the selector chooses among its
// candidates adaptively (first candidate with a free channel, else
// wait on the most preferred).
type Transfer struct {
	// Source is the injecting node.
	Source topology.NodeID
	// Waypoints are the delivery nodes in visit order; the worm
	// terminates at the last one. Must be non-empty.
	Waypoints []topology.NodeID
	// Length is the message length in flits (> 0).
	Length int
	// Selector routes between waypoints; nil means dimension-order.
	Selector routing.Selector
	// OnDeliver, if set, fires once per waypoint with the node and
	// the simulated time its tail flit arrived.
	OnDeliver func(node topology.NodeID, at sim.Time)
	// OnDone, if set, fires when the worm fully drains.
	OnDone func(at sim.Time)
	// OnDrop, if set, fires when the worm is aborted on a degraded
	// network (every admissible next hop dead and any DeadWait grace
	// expired). At most one of OnDone/OnDrop fires per transfer.
	OnDrop func(at sim.Time)
	// OnPath, if set, fires once when the worm retires — drained or
	// dropped — with the node sequence its header traversed and
	// whether the worm delivered. The slice is only valid during the
	// call (the worm recycles); copy it to retain it. The robustness
	// suite uses this to audit realized routes against fault sets.
	OnPath func(path []topology.NodeID, delivered bool)
	// Tag is free-form labelling for tracing and debugging.
	Tag string
}

// Network is the simulated interconnect. It is not safe for
// concurrent use; the discrete-event kernel is single-threaded by
// design.
type Network struct {
	topo topology.Topology
	mesh *topology.Mesh // non-nil when topo is a mesh
	sim  *sim.Simulator
	cfg  Config
	dor  routing.Selector
	// channels/ports are the dense store; nil when lazy is non-nil.
	// Accessor methods in store.go pick the live store, and the dense
	// hot paths pay only the accessors' nil test.
	channels []channelState
	ports    []portState
	lazy     *lazyStore
	lanes    int // lane count in either store
	// activeHead/activeCount track in-flight worms as an intrusive
	// list in send order (O(1) add/remove, no hashing; see worm).
	activeHead  *worm
	activeCount int
	injected    uint64
	finished    uint64

	// Hot-path caches of the Config accessors: hopDelay()/ports()
	// branch on every call, and the inner loops read them per hop.
	hop    float64
	beta   float64
	nports int
	// vcs is the virtual-channel lane count per physical channel; the
	// channel/statistics slices hold one entry per LANE, indexed
	// lane = channel·vcs + vc. With vcs == 1 (every mesh default) the
	// lane index IS the physical channel ID and nothing changes.
	vcs int

	// Fault state (health.go). health stays nil until the first
	// failure is injected, so the hot path pays one nil test and a
	// pristine network is byte- and allocation-identical to the
	// pre-fault implementation.
	health   *healthState
	deadWait float64
	parked   []*worm
	dropped  uint64

	// candScratch is the reusable next-hop candidate buffer advance
	// hands to HopAppender selectors. Safe to share across worms: each
	// advance call fully consumes the candidates before anything else
	// can route. On a sharded network every execution context gets its
	// own buffer (candScratchSh, indexed shard+1) because advances run
	// concurrently across shards.
	candScratch   []topology.NodeID
	candScratchSh [][]topology.NodeID

	// hopScratch is candScratch's channel-resolved twin: the buffer
	// advance hands to ChannelAppender selectors, with the same
	// per-context ownership rules.
	hopScratch   []routing.Hop
	hopScratchSh [][]routing.Hop

	// part is the shard partition of the conservative-parallel kernel;
	// nil on a serial network. ndims2 caches NDims·2 for the lane →
	// source-node arithmetic of shard classification.
	part   *topology.Partition
	ndims2 int

	// Occupancy accounting (see statistics.go).
	busyTime  []sim.Time
	busySince []sim.Time
	acquires  []uint64
}

type channelState struct {
	holder *worm
	queue  wormRing
}

type portState struct {
	inUse int
	queue wormRing
}

// New builds a network over topo driven by s. For mesh topologies a
// dimension-order selector is installed as the default router.
func New(s *sim.Simulator, topo topology.Topology, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lanes := topo.ChannelSlots() * cfg.vcs()
	n := &Network{
		topo:     topo,
		sim:      s,
		cfg:      cfg,
		lanes:    lanes,
		hop:      cfg.hopDelay(),
		deadWait: cfg.DeadWait,
		beta:     cfg.Beta,
		nports:   cfg.ports(),
		vcs:      cfg.vcs(),
	}
	if cfg.Store.LazyFor(topo.Nodes()) {
		n.lazy = newLazyStore(lanes, topo.Nodes())
	} else {
		n.channels = make([]channelState, lanes)
		n.ports = make([]portState, topo.Nodes())
		n.busyTime = make([]sim.Time, lanes)
		n.busySince = make([]sim.Time, lanes)
		n.acquires = make([]uint64, lanes)
	}
	if m, ok := topo.(*topology.Mesh); ok {
		n.mesh = m
		if m.HasWrapLinks() && n.vcs > 1 {
			// On a torus with virtual channels the default router is
			// dateline dimension-order: the same minimal modular routes
			// as plain DOR, deadlock-free via the dateline VC classes.
			// A torus without actual wrap links (every extent < 3) has
			// no rings to protect and keeps plain DOR, so its worms may
			// spread over ALL lanes instead of the class-0 share.
			n.dor = routing.NewDatelineDOR(m)
		} else {
			n.dor = routing.NewDOR(m)
		}
	}
	if cfg.Shards > 1 {
		if n.mesh == nil {
			return nil, fmt.Errorf("network: sharded kernel needs a mesh topology, got %s", topo.Name())
		}
		if s.Shards() > 1 {
			return nil, fmt.Errorf("network: simulator already sharded")
		}
		p := topology.NewPartition(n.mesh, cfg.Shards)
		if k := p.Shards(); k > 1 {
			s.EnableSharding(k)
			// The per-hop routing delay is the hard lookahead: it is
			// the minimum delay of any event a shard-class event can
			// schedule — the next header advance is exactly one hop
			// delay out, and validate() holds Ts and any positive
			// DeadWait at or above it.
			s.SetLookahead(n.hop)
			n.part = p
			n.ndims2 = n.mesh.NDims() * 2
			n.candScratchSh = make([][]topology.NodeID, k+1)
			n.hopScratchSh = make([][]routing.Hop, k+1)
		}
	}
	return n, nil
}

// Partition returns the shard partition of a sharded network, or nil.
func (n *Network) Partition() *topology.Partition { return n.part }

// ownerOf returns the shard owning node, or -1 on a serial network.
// Shard -1 is the serial class: the event executes on the coordinator
// in exact global order.
func (n *Network) ownerOf(node topology.NodeID) int32 {
	if n.part == nil {
		return -1
	}
	return int32(n.part.Owner(node))
}

// laneSrc recovers the source node of a channel lane from the mesh's
// channel encoding (from·NDims + dim)·2 + dir — pure arithmetic, so
// classification works on implicit topologies too.
func (n *Network) laneSrc(lane topology.ChannelID) topology.NodeID {
	return topology.NodeID(int(lane) / n.vcs / n.ndims2)
}

// laneOwner returns the shard owning a lane (its source node's shard),
// or -1 on a serial network.
func (n *Network) laneOwner(lane topology.ChannelID) int32 {
	if n.part == nil {
		return -1
	}
	return int32(n.part.Owner(n.laneSrc(lane)))
}

// scratch returns the next-hop candidate buffer for the executing
// context: the shared serial buffer, or the context's own slot on a
// sharded network.
func (n *Network) scratch(env *sim.Env) *[]topology.NodeID {
	if n.candScratchSh == nil {
		return &n.candScratch
	}
	return &n.candScratchSh[env.Shard()+1]
}

// hopScratchFor is scratch for the channel-resolved candidate buffer.
func (n *Network) hopScratchFor(env *sim.Env) *[]routing.Hop {
	if n.hopScratchSh == nil {
		return &n.hopScratch
	}
	return &n.hopScratchSh[env.Shard()+1]
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(s *sim.Simulator, topo topology.Topology, cfg Config) *Network {
	n, err := New(s, topo, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Sim returns the driving simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Topology returns the simulated topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Injected returns the number of transfers accepted so far.
func (n *Network) Injected() uint64 { return n.injected }

// Finished returns the number of transfers fully drained so far.
func (n *Network) Finished() uint64 { return n.finished }

// InFlight returns the number of transfers accepted but not drained.
func (n *Network) InFlight() int { return n.activeCount }

// activeAdd pushes w onto the in-flight list.
func (n *Network) activeAdd(w *worm) {
	w.activeNext = n.activeHead
	if n.activeHead != nil {
		n.activeHead.activePrev = w
	}
	n.activeHead = w
	n.activeCount++
}

// activeRemove unlinks w from the in-flight list.
func (n *Network) activeRemove(w *worm) {
	if w.activePrev != nil {
		w.activePrev.activeNext = w.activeNext
	} else {
		n.activeHead = w.activeNext
	}
	if w.activeNext != nil {
		w.activeNext.activePrev = w.activePrev
	}
	w.activePrev, w.activeNext = nil, nil
	n.activeCount--
}

// Stuck returns descriptions of worms still in flight; useful for
// diagnosing simulated deadlock when the calendar drains while
// transfers remain.
func (n *Network) Stuck() []string {
	var out []string
	for w := n.activeHead; w != nil; w = w.activeNext {
		out = append(out, w.describe())
	}
	return out
}
