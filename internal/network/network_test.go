package network

import (
	"math"
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t *testing.T, dims ...int) (*sim.Simulator, *topology.Mesh, *Network) {
	t.Helper()
	s := sim.New()
	m := topology.NewMesh(dims...)
	n, err := New(s, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, m, n
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestUncontendedUnicastLatency pins the wormhole timing model:
// latency = Ts + D*HopDelay + L*Beta for an uncontended worm.
func TestUncontendedUnicastLatency(t *testing.T) {
	s, m, n := testNet(t, 8, 8)
	cfg := n.Config()
	var arrived sim.Time
	src, dst := m.ID(0, 0), m.ID(3, 2)
	n.MustSend(0, &Transfer{
		Source:    src,
		Waypoints: []topology.NodeID{dst},
		Length:    64,
		OnDeliver: func(node topology.NodeID, at sim.Time) {
			if node != dst {
				t.Errorf("delivered at %d, want %d", node, dst)
			}
			arrived = at
		},
	})
	s.Run()
	want := cfg.Ts + 5*cfg.Beta + 64*cfg.Beta
	if !almost(arrived, want) {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if n.InFlight() != 0 {
		t.Fatal("worm still in flight")
	}
	if n.Finished() != 1 || n.Injected() != 1 {
		t.Fatalf("counts: injected %d finished %d", n.Injected(), n.Finished())
	}
}

// TestMultidestinationPipelining checks CPR distance insensitivity:
// consecutive waypoints on one path receive within one flit time of
// each other, far less than a per-hop store-and-forward would give.
func TestMultidestinationPipelining(t *testing.T) {
	s, m, n := testNet(t, 8, 1)
	arrivals := map[topology.NodeID]sim.Time{}
	wps := []topology.NodeID{m.ID(1, 0), m.ID(2, 0), m.ID(3, 0), m.ID(4, 0), m.ID(5, 0), m.ID(6, 0), m.ID(7, 0)}
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: wps,
		Length:    64,
		OnDeliver: func(node topology.NodeID, at sim.Time) { arrivals[node] = at },
	})
	s.Run()
	if len(arrivals) != len(wps) {
		t.Fatalf("delivered to %d nodes, want %d", len(arrivals), len(wps))
	}
	beta := n.Config().Beta
	for i := 1; i < len(wps); i++ {
		gap := arrivals[wps[i]] - arrivals[wps[i-1]]
		if !almost(gap, beta) {
			t.Fatalf("waypoint gap = %v, want %v (one flit time)", gap, beta)
		}
	}
}

// TestChannelBlocking verifies wormhole semantics: a second worm
// wanting a held channel waits until the first worm's tail clears it.
func TestChannelBlocking(t *testing.T) {
	s, m, n := testNet(t, 4, 1)
	var first, second sim.Time
	long := 1000
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    long,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { first = at },
	})
	// Second worm needs channel 1->2, which the first worm holds by
	// t=2 and keeps until its tail drains.
	n.MustSend(2, &Transfer{
		Source:    m.ID(1, 0),
		Waypoints: []topology.NodeID{m.ID(2, 0)},
		Length:    10,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { second = at },
	})
	s.Run()
	cfg := n.Config()
	firstDrain := cfg.Ts + 3*cfg.Beta + float64(long)*cfg.Beta
	if first > firstDrain+1e-9 {
		t.Fatalf("first worm arrived at %v, want <= %v", first, firstDrain)
	}
	// The second worm could not start crossing before the first's
	// tail cleared channel 1->2.
	if second < firstDrain-3*cfg.Beta {
		t.Fatalf("second worm (%v) did not wait for the first (tail ~%v)", second, firstDrain)
	}
}

// TestOnePortSerialisation: with one injection port, two sends from
// the same node serialise Ts apart at least.
func TestOnePortSerialisation(t *testing.T) {
	s, m, n := testNet(t, 4, 4)
	var a1, a2 sim.Time
	n.MustSend(0, &Transfer{
		Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(3, 0)}, Length: 100,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { a1 = at },
	})
	n.MustSend(0, &Transfer{
		Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(0, 3)}, Length: 100,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { a2 = at },
	})
	s.Run()
	if a2 <= a1 {
		t.Fatalf("second injection (%v) not after first (%v)", a2, a1)
	}
}

// TestMultiPortParallelism: with three ports the same two sends go
// out together.
func TestMultiPortParallelism(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 4)
	cfg := DefaultConfig()
	cfg.Ports = 3
	n := MustNew(s, m, cfg)
	var a1, a2 sim.Time
	n.MustSend(0, &Transfer{
		Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(3, 0)}, Length: 100,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { a1 = at },
	})
	n.MustSend(0, &Transfer{
		Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(0, 3)}, Length: 100,
		OnDeliver: func(_ topology.NodeID, at sim.Time) { a2 = at },
	})
	s.Run()
	if !almost(a1, a2) {
		t.Fatalf("multiport sends not parallel: %v vs %v", a1, a2)
	}
}

// TestAdaptiveRoutesAroundBusyChannel: a west-first worm offered two
// profitable directions takes the free one when its preferred channel
// is held.
func TestAdaptiveRoutesAroundBusyChannel(t *testing.T) {
	// A long coded-path worm from (0,1) occupies channel (1,1)->(2,1)
	// without touching the test worm's injection port at (1,1).
	blocker := func() *Transfer {
		return &Transfer{
			Source:    topology.NodeID(0), // placeholder; set below
			Waypoints: nil,
			Length:    100000,
		}
	}
	run := func(adaptive bool) sim.Time {
		s := sim.New()
		m := topology.NewMesh(4, 4)
		n := MustNew(s, m, DefaultConfig())
		b := blocker()
		b.Source = m.ID(0, 1)
		b.Waypoints = []topology.NodeID{m.ID(1, 1), m.ID(2, 1)}
		n.MustSend(0, b)
		var sel routing.Selector
		if adaptive {
			sel = routing.NewWestFirst(m)
		}
		var done sim.Time
		// Test worm (1,1) -> (2,2): may go +x (busy) or +y (free).
		n.MustSend(2, &Transfer{
			Source: m.ID(1, 1), Waypoints: []topology.NodeID{m.ID(2, 2)}, Length: 10,
			Selector:  sel,
			OnDeliver: func(_ topology.NodeID, at sim.Time) { done = at },
		})
		s.Run()
		return done
	}
	adaptiveDone := run(true)
	dorDone := run(false)
	if adaptiveDone >= dorDone {
		t.Fatalf("adaptive (%v) not faster than blocked DOR (%v)", adaptiveDone, dorDone)
	}
	if dorDone < 100000*DefaultConfig().Beta {
		t.Fatalf("DOR worm (%v) did not actually block", dorDone)
	}
}

func TestSendValidation(t *testing.T) {
	_, m, n := testNet(t, 4, 4)
	cases := []*Transfer{
		{Source: 0, Waypoints: []topology.NodeID{1}, Length: 0},
		{Source: 0, Waypoints: nil, Length: 10},
		{Source: 0, Waypoints: []topology.NodeID{0}, Length: 10},
		{Source: 0, Waypoints: []topology.NodeID{1, 1}, Length: 10},
		{Source: 0, Waypoints: []topology.NodeID{topology.NodeID(m.Nodes())}, Length: 10},
	}
	for i, tr := range cases {
		if err := n.Send(0, tr); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(2, 2)
	bad := []Config{
		{Ts: -1, Beta: 0.003},
		{Ts: 1, Beta: 0},
		{Ts: 1, Beta: 0.01, HopDelay: -2},
		// Sharded runs require every delay a shard-class event can
		// schedule — the Ts-delayed injection grant and any positive
		// DeadWait park timeout — to respect the per-hop lookahead.
		{Ts: 0.001, Beta: 0.003, Shards: 2},
		{Ts: 1, Beta: 0.003, DeadWait: 0.001, Shards: 2},
	}
	for i, cfg := range bad {
		if _, err := New(s, m, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	// A zero DeadWait schedules nothing (dead-ended worms drop on the
	// spot), so it stays valid under sharding.
	ok := Config{Ts: 1, Beta: 0.003, Shards: 2}
	if _, err := New(sim.New(), m, ok); err != nil {
		t.Errorf("valid sharded config rejected: %v", err)
	}
}

// TestFIFOChannelQueue: two worms blocked on the same channel acquire
// it in request order.
func TestFIFOChannelQueue(t *testing.T) {
	s, m, n := testNet(t, 4, 1)
	var order []int
	hold := &Transfer{Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(2, 0)}, Length: 5000}
	n.MustSend(0, hold)
	for i, from := range []topology.NodeID{m.ID(1, 0), m.ID(1, 0)} {
		i := i
		n.MustSend(sim.Time(1+i), &Transfer{
			Source: from, Waypoints: []topology.NodeID{m.ID(2, 0)}, Length: 10,
			OnDeliver: func(_ topology.NodeID, _ sim.Time) { order = append(order, i) },
		})
	}
	s.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("queue order = %v", order)
	}
}

// TestHighContentionCompletes floods a small mesh with random worms
// under DOR and checks everything drains (no simulated deadlock).
func TestHighContentionCompletes(t *testing.T) {
	s, m, n := testNet(t, 4, 4, 4)
	rng := sim.NewRNG(5, 77)
	const worms = 2000
	done := 0
	for i := 0; i < worms; i++ {
		src := topology.NodeID(rng.Intn(m.Nodes()))
		dst := topology.NodeID(rng.Intn(m.Nodes() - 1))
		if dst >= src {
			dst++
		}
		n.MustSend(rng.Uniform(0, 50), &Transfer{
			Source: src, Waypoints: []topology.NodeID{dst}, Length: 1 + rng.Intn(64),
			OnDeliver: func(_ topology.NodeID, _ sim.Time) { done++ },
		})
	}
	s.Run()
	if done != worms {
		t.Fatalf("only %d/%d worms delivered; stuck: %v", done, worms, n.Stuck())
	}
	if n.InFlight() != 0 {
		t.Fatalf("in flight: %d", n.InFlight())
	}
}

// TestHopDelayOverride checks the configurable header delay.
func TestHopDelayOverride(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(5, 1)
	cfg := DefaultConfig()
	cfg.HopDelay = 0.5
	n := MustNew(s, m, cfg)
	var at sim.Time
	n.MustSend(0, &Transfer{
		Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(4, 0)}, Length: 10,
		OnDeliver: func(_ topology.NodeID, a sim.Time) { at = a },
	})
	s.Run()
	want := cfg.Ts + 4*0.5 + 10*cfg.Beta
	if !almost(at, want) {
		t.Fatalf("arrival = %v, want %v", at, want)
	}
}
