package network

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestWaitQueuesBoundedUnderSustainedContention is the regression
// test for the seed's FIFO retention bug: release()/grantPort()
// drained waiters with queue = queue[1:], pinning every drained worm
// in the backing array's dead head. After a long saturated run every
// wait queue must be fully drained, hold no references to retired
// worms, and sit at a capacity bounded by its high-water mark — not
// by the total number of worms that ever queued.
func TestWaitQueuesBoundedUnderSustainedContention(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 1)
	n := MustNew(s, m, DefaultConfig())
	const waves, perWave = 60, 8
	delivered := 0
	at := sim.Time(0)
	for wave := 0; wave < waves; wave++ {
		// Each wave floods the line's shared channels from two
		// sources at one instant, then the next wave starts after the
		// backlog drains — sustained contention, bounded concurrency.
		for i := 0; i < perWave; i++ {
			for _, src := range []topology.NodeID{m.ID(0, 0), m.ID(1, 0)} {
				n.MustSend(at, &Transfer{
					Source:    src,
					Waypoints: []topology.NodeID{m.ID(3, 0)},
					Length:    40,
					OnDeliver: func(_ topology.NodeID, _ sim.Time) { delivered++ },
				})
			}
		}
		at += 2 * perWave * (DefaultConfig().Ts + 40*0.003 + 1)
	}
	s.Run()
	if want := waves * perWave * 2; delivered != want {
		t.Fatalf("delivered %d/%d worms; stuck: %v", delivered, want, n.Stuck())
	}
	if n.InFlight() != 0 {
		t.Fatalf("%d worms still in flight", n.InFlight())
	}
	checkRing := func(kind string, idx int, q *wormRing) {
		t.Helper()
		if q.Len() != 0 {
			t.Errorf("%s %d queue not drained: %d left", kind, idx, q.Len())
		}
		for slot, w := range q.buf {
			if w != nil {
				t.Errorf("%s %d slot %d retains a drained worm", kind, idx, slot)
			}
		}
		// perWave worms per source with two sources: no queue can
		// ever hold more than one wave, so capacity must stay at the
		// first wave's power-of-two high-water, not grow with the
		// 60-wave total.
		if q.Cap() > 2*perWave*2 {
			t.Errorf("%s %d queue capacity %d outlived the high-water mark", kind, idx, q.Cap())
		}
	}
	for i := range n.channels {
		checkRing("channel", i, &n.channels[i].queue)
	}
	for i := range n.ports {
		checkRing("port", i, &n.ports[i].queue)
	}
}

// TestUnicastHotPathAllocationBudget pins the hot-path overhaul: once
// the worm pool and calendar are warm, injecting and fully draining a
// unicast worm performs no heap allocation at all — no closures, no
// per-worm slices, no queue growth. The pin holds for both calendar
// implementations: the ladder may allocate only while its arena and
// rungs grow to the workload's high water, which the warm-up covers.
func TestUnicastHotPathAllocationBudget(t *testing.T) {
	for _, c := range []sim.Calendar{sim.Ladder, sim.Heap} {
		t.Run(c.String(), func(t *testing.T) {
			s := sim.NewWithCalendar(c)
			m := topology.NewMesh(8, 8)
			n := MustNew(s, m, DefaultConfig())
			tr := &Transfer{
				Source:    m.ID(0, 0),
				Waypoints: []topology.NodeID{m.ID(7, 7)},
				Length:    64,
			}
			for i := 0; i < 32; i++ { // warm pool, calendar and rings
				n.MustSend(s.Now(), tr)
				s.Run()
			}
			avg := testing.AllocsPerRun(200, func() {
				n.MustSend(s.Now(), tr)
				s.Run()
			})
			if avg > 0 {
				t.Errorf("warm unicast send+drain allocates %v per op, want 0", avg)
			}
			if n.InFlight() != 0 {
				t.Fatalf("%d worms still in flight", n.InFlight())
			}
		})
	}
}

// TestWormPoolRecyclesCleanly checks the pooled-object lifecycle at
// the unit level: putWorm must return a worm to the process-wide pool
// with empty per-hop state, no reference to its previous Transfer or
// network, and its grown slice capacity intact. The test retains the
// pointer across putWorm — the reset happens in place, so the
// invariant is checkable without depending on sync.Pool internals.
func TestWormPoolRecyclesCleanly(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 4)
	n := MustNew(s, m, DefaultConfig())
	w := n.getWorm()
	w.net = n
	w.t = &Transfer{Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(3, 3)}, Length: 16}
	w.cur = m.ID(1, 1)
	w.wpIdx = 1
	w.path = append(w.path, m.ID(0, 0), m.ID(1, 0))
	w.grants = append(w.grants, 1, 2)
	w.chans = append(w.chans, 3, 4)
	w.deliver = append(w.deliver, 2)
	w.relRecs = append(w.relRecs, laneRel{})
	w.relCur, w.delCur = 1, 1
	wantCap := cap(w.path)
	n.putWorm(w)
	if w.t != nil || w.net != nil {
		t.Error("recycled worm retains its transfer or network")
	}
	if len(w.path) != 0 || len(w.chans) != 0 || len(w.grants) != 0 || len(w.deliver) != 0 {
		t.Error("recycled worm retains per-hop state")
	}
	if len(w.relRecs) != 0 || w.relCur != 0 || w.delCur != 0 {
		t.Error("recycled worm retains drain cursors")
	}
	if cap(w.path) != wantCap || cap(w.chans) == 0 {
		t.Error("recycled worm lost its slice capacity")
	}
	if w.waiting != topology.InvalidChannel {
		t.Error("recycled worm still waits on a channel")
	}
	// A full send/drain cycle must leave nothing in flight and recycle
	// through the same code path.
	n.MustSend(0, &Transfer{Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(3, 3)}, Length: 16})
	s.Run()
	if n.InFlight() != 0 {
		t.Fatalf("%d worms still in flight", n.InFlight())
	}
}
