package network

// wormRing is a FIFO wait queue backed by a power-of-two ring buffer.
//
// The seed kept wait queues as plain slices popped with queue[1:],
// which retains every popped worm in the backing array's dead head
// until an append happens to reallocate — under sustained contention
// a busy channel's queue pinned an unbounded number of drained worms.
// The ring nils each slot as it pops and reuses its storage forever,
// so a queue's footprint is bounded by its high-water mark and
// push/pop never allocate in steady state.
type wormRing struct {
	buf  []*worm
	head int
	n    int
}

// ringMinCap is the capacity a ring starts with on its first push.
const ringMinCap = 8

// Len returns the number of queued worms.
func (r *wormRing) Len() int { return r.n }

// Cap returns the ring's current storage capacity.
func (r *wormRing) Cap() int { return len(r.buf) }

// Push appends w at the tail.
func (r *wormRing) Push(w *worm) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = w
	r.n++
}

// Pop removes and returns the head, clearing its slot so the ring
// never pins a drained worm.
func (r *wormRing) Pop() *worm {
	if r.n == 0 {
		panic("network: pop from empty wait queue")
	}
	w := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return w
}

// grow doubles the storage (or allocates the initial buffer) and
// unrolls the occupied window to the front.
func (r *wormRing) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = ringMinCap
	}
	buf := make([]*worm, newCap)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
