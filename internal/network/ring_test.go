package network

import "testing"

func TestRingFIFOAcrossWrap(t *testing.T) {
	var r wormRing
	worms := make([]*worm, 40)
	for i := range worms {
		worms[i] = &worm{}
	}
	// Push/pop in overlapping waves so the window wraps the buffer
	// repeatedly.
	next, out := 0, 0
	for out < len(worms) {
		for next < len(worms) && next-out < 5 {
			r.Push(worms[next])
			next++
		}
		if got := r.Pop(); got != worms[out] {
			t.Fatalf("pop %d returned the wrong worm", out)
		}
		out++
	}
	if r.Len() != 0 {
		t.Fatalf("ring not drained: %d left", r.Len())
	}
}

// TestRingReleasesPoppedSlots pins the memory-retention fix: a popped
// worm must not stay referenced by the ring's backing array, unlike
// the seed's queue[1:] slices which pinned every popped entry in the
// dead head until a lucky reallocation.
func TestRingReleasesPoppedSlots(t *testing.T) {
	var r wormRing
	for i := 0; i < 20; i++ {
		r.Push(&worm{})
		r.Pop()
	}
	if r.Len() != 0 {
		t.Fatalf("ring should be empty, has %d", r.Len())
	}
	for i, w := range r.buf {
		if w != nil {
			t.Fatalf("slot %d still references a popped worm", i)
		}
	}
}

// TestRingCapacityTracksHighWater: sustained traffic through a ring
// leaves its storage at the (power-of-two rounded) high-water mark,
// never growing with total throughput.
func TestRingCapacityTracksHighWater(t *testing.T) {
	var r wormRing
	w := &worm{}
	for wave := 0; wave < 1000; wave++ {
		for i := 0; i < 11; i++ { // high water 11 -> capacity 16
			r.Push(w)
		}
		for i := 0; i < 11; i++ {
			r.Pop()
		}
	}
	if r.Cap() != 16 {
		t.Fatalf("capacity = %d after 1000 waves of 11, want 16", r.Cap())
	}
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pop from empty ring did not panic")
		}
	}()
	var r wormRing
	r.Pop()
}
