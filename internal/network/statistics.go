package network

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Channel-occupancy accounting. Every acquire/release pair adds to a
// per-lane busy-time counter (one lane per virtual channel; exactly
// one lane per channel on the default 1-VC network), which turns into
// the utilization figures saturation analyses need (the paper reads
// saturation off latency curves; utilization exposes the cause). The
// exported views aggregate a channel's lanes, so callers keep seeing
// physical channels regardless of Config.VCs.

// ChannelStats reports one physical channel's occupancy, summed over
// its virtual-channel lanes.
type ChannelStats struct {
	Channel  topology.ChannelID
	BusyTime sim.Time
	Acquires uint64
}

// Utilization returns the fraction of simulated time the channel was
// held, given the observation window end (usually sim.Now()). On a
// multi-VC network the lane-summed busy time may exceed the window;
// the fraction saturates at 1.
func (c ChannelStats) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	u := c.BusyTime / now
	if u > 1 {
		u = 1
	}
	return u
}

// noteAcquire records the moment a channel lane is granted. The
// caller passes its context's clock: on a shard worker the
// simulator-wide clock is not readable mid-segment, and all counters
// here are lane-indexed, so concurrent shards write disjoint entries.
func (n *Network) noteAcquire(lane topology.ChannelID, now sim.Time) {
	if n.lazy == nil {
		n.busySince[lane] = now
		n.acquires[lane]++
		return
	}
	// The lane's page exists: acquire writes the holder before the
	// note, and the counters live in the same page.
	p := n.lazy.lanePageFor(int(lane))
	p.busySince[int(lane)&pageMask] = now
	p.acquires[int(lane)&pageMask]++
}

// noteRelease accumulates the busy interval that just ended.
func (n *Network) noteRelease(lane topology.ChannelID, now sim.Time) {
	if n.lazy == nil {
		n.busyTime[lane] += now - n.busySince[lane]
		return
	}
	p := n.lazy.lanePageFor(int(lane))
	p.busyTime[int(lane)&pageMask] += now - p.busySince[int(lane)&pageMask]
}

// laneBusy returns one lane's accumulated busy time and acquire
// count; an untouched lazy lane reports zeros without allocating.
func (n *Network) laneBusy(l int) (sim.Time, uint64) {
	if n.lazy == nil {
		return n.busyTime[l], n.acquires[l]
	}
	p := n.lazy.lanePages[l>>pageBits].Load()
	if p == nil {
		return 0, 0
	}
	return p.busyTime[l&pageMask], p.acquires[l&pageMask]
}

// ChannelStatsFor returns the occupancy record of one physical
// channel, aggregated over its lanes.
func (n *Network) ChannelStatsFor(ch topology.ChannelID) ChannelStats {
	st := ChannelStats{Channel: ch}
	for l := int(ch) * n.vcs; l < (int(ch)+1)*n.vcs; l++ {
		busy, acq := n.laneBusy(l)
		st.BusyTime += busy
		st.Acquires += acq
	}
	return st
}

// HottestChannels returns the k physical channels with the largest
// lane-summed busy time, most loaded first. It is the tool for
// locating bottlenecks such as the anchor-corner ports of the DB
// algorithm under heavy broadcast rates.
func (n *Network) HottestChannels(k int) []ChannelStats {
	pre := n.lanes / n.vcs
	if n.lazy != nil && pre > pageSize {
		// A sparse store yields few busy channels; don't pre-size for
		// millions.
		pre = pageSize
	}
	all := make([]ChannelStats, 0, pre)
	for ch := 0; ch < n.lanes/n.vcs; ch++ {
		st := n.ChannelStatsFor(topology.ChannelID(ch))
		if st.BusyTime > 0 {
			all = append(all, st)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].BusyTime != all[j].BusyTime {
			return all[i].BusyTime > all[j].BusyTime
		}
		return all[i].Channel < all[j].Channel
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// MeanUtilization returns the mean busy fraction across all channels
// that were ever used, measured against the current clock.
func (n *Network) MeanUtilization() float64 {
	now := n.sim.Now()
	if now <= 0 {
		return 0
	}
	total := sim.Time(0)
	used := 0
	if n.lazy == nil {
		for _, busy := range n.busyTime {
			if busy > 0 {
				total += busy
				used++
			}
		}
	} else {
		// Same lane order as the dense walk — untouched pages hold only
		// zeros, so skipping them changes nothing.
		for i := range n.lazy.lanePages {
			p := n.lazy.lanePages[i].Load()
			if p == nil {
				continue
			}
			for _, busy := range p.busyTime {
				if busy > 0 {
					total += busy
					used++
				}
			}
		}
	}
	if used == 0 {
		return 0
	}
	return (total / sim.Time(used)) / now
}
