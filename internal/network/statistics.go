package network

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Channel-occupancy accounting. Every acquire/release pair adds to a
// per-channel busy-time counter, which turns into the utilization
// figures saturation analyses need (the paper reads saturation off
// latency curves; utilization exposes the cause).

// ChannelStats reports one channel's occupancy.
type ChannelStats struct {
	Channel  topology.ChannelID
	BusyTime sim.Time
	Acquires uint64
}

// Utilization returns the fraction of simulated time the channel was
// held, given the observation window end (usually sim.Now()).
func (c ChannelStats) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	u := c.BusyTime / now
	if u > 1 {
		u = 1
	}
	return u
}

// noteAcquire records the moment a channel is granted.
func (n *Network) noteAcquire(ch topology.ChannelID) {
	n.busySince[ch] = n.sim.Now()
	n.acquires[ch]++
}

// noteRelease accumulates the busy interval that just ended.
func (n *Network) noteRelease(ch topology.ChannelID) {
	n.busyTime[ch] += n.sim.Now() - n.busySince[ch]
}

// ChannelStatsFor returns the occupancy record of one channel.
func (n *Network) ChannelStatsFor(ch topology.ChannelID) ChannelStats {
	return ChannelStats{Channel: ch, BusyTime: n.busyTime[ch], Acquires: n.acquires[ch]}
}

// HottestChannels returns the k channels with the largest busy time,
// most loaded first. It is the tool for locating bottlenecks such as
// the anchor-corner ports of the DB algorithm under heavy broadcast
// rates.
func (n *Network) HottestChannels(k int) []ChannelStats {
	all := make([]ChannelStats, 0, len(n.busyTime))
	for ch, busy := range n.busyTime {
		if busy > 0 {
			all = append(all, ChannelStats{Channel: topology.ChannelID(ch), BusyTime: busy, Acquires: n.acquires[ch]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].BusyTime != all[j].BusyTime {
			return all[i].BusyTime > all[j].BusyTime
		}
		return all[i].Channel < all[j].Channel
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// MeanUtilization returns the mean busy fraction across all channels
// that were ever used, measured against the current clock.
func (n *Network) MeanUtilization() float64 {
	now := n.sim.Now()
	if now <= 0 {
		return 0
	}
	total := sim.Time(0)
	used := 0
	for _, busy := range n.busyTime {
		if busy > 0 {
			total += busy
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return (total / sim.Time(used)) / now
}
