package network

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestChannelOccupancyAccounting(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 1)
	n := MustNew(s, m, DefaultConfig())
	n.MustSend(0, &Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []topology.NodeID{m.ID(3, 0)},
		Length:    100,
	})
	s.Run()

	cfg := n.Config()
	// Channel 0 (hop 0): held from Ts until the tail clears it at
	// tdone - 2β.
	ch := m.Channel(m.ID(0, 0), m.ID(1, 0))
	st := n.ChannelStatsFor(ch)
	if st.Acquires != 1 {
		t.Fatalf("acquires = %d", st.Acquires)
	}
	tdone := cfg.Ts + 3*cfg.Beta + 100*cfg.Beta
	wantBusy := (tdone - 2*cfg.Beta) - cfg.Ts
	if math.Abs(st.BusyTime-wantBusy) > 1e-9 {
		t.Fatalf("busy = %v, want %v", st.BusyTime, wantBusy)
	}
	if u := st.Utilization(s.Now()); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestHottestChannels(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 4)
	n := MustNew(s, m, DefaultConfig())
	// Two worms share channel (0,0)->(1,0); one uses (1,0)->(2,0) too.
	n.MustSend(0, &Transfer{Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(2, 0)}, Length: 50})
	n.MustSend(0, &Transfer{Source: m.ID(0, 0), Waypoints: []topology.NodeID{m.ID(1, 0)}, Length: 50})
	s.Run()

	hot := n.HottestChannels(10)
	if len(hot) < 2 {
		t.Fatalf("hot channels = %d", len(hot))
	}
	shared := m.Channel(m.ID(0, 0), m.ID(1, 0))
	if hot[0].Channel != shared {
		t.Fatalf("hottest channel = %d, want shared %d", hot[0].Channel, shared)
	}
	if hot[0].Acquires != 2 {
		t.Fatalf("shared channel acquires = %d", hot[0].Acquires)
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].BusyTime > hot[i-1].BusyTime {
			t.Fatal("hot channels not sorted")
		}
	}
	// Requesting fewer returns fewer.
	if got := len(n.HottestChannels(1)); got != 1 {
		t.Fatalf("HottestChannels(1) = %d entries", got)
	}
}

func TestMeanUtilizationIdleNetwork(t *testing.T) {
	s := sim.New()
	m := topology.NewMesh(4, 4)
	n := MustNew(s, m, DefaultConfig())
	if u := n.MeanUtilization(); u != 0 {
		t.Fatalf("idle utilization = %v", u)
	}
}

func TestUtilizationRisesWithLoad(t *testing.T) {
	util := func(gap sim.Time) float64 {
		s := sim.New()
		m := topology.NewMesh(4, 4)
		n := MustNew(s, m, DefaultConfig())
		rng := sim.NewRNG(9, 1)
		at := sim.Time(0)
		for i := 0; i < 200; i++ {
			at += gap
			src := topology.NodeID(rng.Intn(m.Nodes()))
			dst := topology.NodeID(rng.Intn(m.Nodes() - 1))
			if dst >= src {
				dst++
			}
			n.MustSend(at, &Transfer{Source: src, Waypoints: []topology.NodeID{dst}, Length: 64})
		}
		s.Run()
		return n.MeanUtilization()
	}
	light, heavy := util(10), util(0.5)
	if heavy <= light {
		t.Fatalf("utilization did not rise with load: light %v heavy %v", light, heavy)
	}
}
