package network

import (
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Storage model. The network's mutable state — one channelState per
// virtual-channel lane, one portState per node, and the per-lane
// occupancy counters — is indexed the same way in both modes, but
// lives in one of two stores:
//
//   - dense: flat slices sized lanes/nodes up front, exactly the
//     pre-PR-7 layout. Every access is a direct index; pristine runs
//     are byte- and allocation-identical to the historical network.
//   - lazy: page tables of fixed-size pages allocated on first write
//     intent. A light-load broadcast touches a vanishing fraction of
//     a million-node network's lanes, so memory tracks contention,
//     not topology size.
//
// The two stores are observationally equivalent — same grants, same
// queueing, same statistics — which the dense-vs-lazy differential
// tests pin on random shapes. Read-only probes (is this lane free?
// does this lane have waiters?) never allocate a page: an untouched
// lane is by definition free and queueless.

// StoreMode selects the network's state-allocation model.
type StoreMode int

const (
	// StoreAuto picks dense below LazyStoreThreshold nodes and lazy at
	// or above it. It is the zero value, so existing configurations
	// keep their historical dense behaviour at every existing scale.
	StoreAuto StoreMode = iota
	// StoreDense forces flat up-front slices.
	StoreDense
	// StoreLazy forces paged allocate-on-first-contention state.
	StoreLazy
)

// LazyStoreThreshold is the node count at which StoreAuto switches to
// the lazy store. No golden-pinned scenario reaches it: every network
// the goldens cover stays dense and byte-identical.
const LazyStoreThreshold = 1 << 16

func (m StoreMode) String() string {
	switch m {
	case StoreAuto:
		return "auto"
	case StoreDense:
		return "dense"
	case StoreLazy:
		return "lazy"
	}
	return "invalid"
}

// LazyFor reports whether the mode resolves to the lazy store on a
// network of nodes nodes.
func (m StoreMode) LazyFor(nodes int) bool {
	switch m {
	case StoreLazy:
		return true
	case StoreDense:
		return false
	}
	return nodes >= LazyStoreThreshold
}

const (
	pageBits = 9 // 512 entries per page
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// lanePage co-locates a page of lane state with the same lanes'
// occupancy counters, so an acquire touches one page, not four
// parallel tables.
type lanePage struct {
	ch        [pageSize]channelState
	busyTime  [pageSize]sim.Time
	busySince [pageSize]sim.Time
	acquires  [pageSize]uint64
}

type portPage struct {
	ports [pageSize]portState
}

// lazyStore is the paged store: page pointer tables sized at New
// (8 bytes per 512 lanes/nodes), pages allocated on first write
// intent.
//
// Lane pages install via compare-and-swap: on a sharded network two
// workers may first-touch lanes of the same page concurrently (a page
// spans several nodes and can straddle a shard boundary). The lanes
// themselves are disjoint per shard — only the page pointer and the
// live-page counter are shared, and losing the CAS just means using
// the winner's page. Port pages stay plain pointers: injection-port
// events are serial-class and only ever run on the coordinator.
type lazyStore struct {
	lanePages []atomic.Pointer[lanePage]
	portPages []*portPage
	// livePages counts allocated pages of both kinds; the scale tests
	// assert it stays far below the table lengths under light load.
	// The count is deterministic even under sharding: the set of
	// touched pages is a function of the simulation, and CAS losers do
	// not count.
	livePages atomic.Int64
}

func newLazyStore(lanes, nodes int) *lazyStore {
	return &lazyStore{
		lanePages: make([]atomic.Pointer[lanePage], (lanes+pageMask)>>pageBits),
		portPages: make([]*portPage, (nodes+pageMask)>>pageBits),
	}
}

func (s *lazyStore) lanePageFor(lane int) *lanePage {
	slot := &s.lanePages[lane>>pageBits]
	p := slot.Load()
	if p == nil {
		fresh := &lanePage{}
		if slot.CompareAndSwap(nil, fresh) {
			s.livePages.Add(1)
			p = fresh
		} else {
			p = slot.Load()
		}
	}
	return p
}

// port returns node's injection-port state, allocating its page in
// lazy mode. Callers always carry write intent (claiming or releasing
// a port), so allocation here is never wasted.
func (n *Network) port(node topology.NodeID) *portState {
	if n.lazy == nil {
		return &n.ports[node]
	}
	s := n.lazy
	p := s.portPages[int(node)>>pageBits]
	if p == nil {
		p = &portPage{}
		s.portPages[int(node)>>pageBits] = p
		s.livePages.Add(1)
	}
	return &p.ports[int(node)&pageMask]
}

// lane returns lane's channel state with write intent (acquire, queue
// push, release), allocating its page in lazy mode.
func (n *Network) lane(lane topology.ChannelID) *channelState {
	if n.lazy == nil {
		return &n.channels[lane]
	}
	return &n.lazy.lanePageFor(int(lane)).ch[int(lane)&pageMask]
}

// laneFree reports whether lane is unheld WITHOUT allocating: a lane
// whose page was never written cannot have a holder. This is the
// adaptive probe in advance — the one access that scans lanes a worm
// may never use, and the reason light-load lazy runs stay sparse.
func (n *Network) laneFree(lane topology.ChannelID) bool {
	if n.lazy == nil {
		return n.channels[lane].holder == nil
	}
	p := n.lazy.lanePages[int(lane)>>pageBits].Load()
	return p == nil || p.ch[int(lane)&pageMask].holder == nil
}

// laneIfTouched returns lane's state if its page exists and nil
// otherwise, never allocating. Fault kicks use it: an untouched lane
// has no waiters to kick.
func (n *Network) laneIfTouched(lane topology.ChannelID) *channelState {
	if n.lazy == nil {
		return &n.channels[lane]
	}
	p := n.lazy.lanePages[int(lane)>>pageBits].Load()
	if p == nil {
		return nil
	}
	return &p.ch[int(lane)&pageMask]
}

// LazyStore reports whether the network allocates state lazily, and
// how many pages are currently live (0 in dense mode).
func (n *Network) LazyStore() (lazy bool, livePages int) {
	if n.lazy == nil {
		return false, 0
	}
	return true, int(n.lazy.livePages.Load())
}
