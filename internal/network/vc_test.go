package network

import (
	"testing"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestTorusUnicastHotPathAllocationBudget extends the zero-alloc pin
// to the torus hot path: warm unicast over wraparound routes, with
// two dateline virtual channels and the torus default router
// (dateline-DOR via a VCPolicy), must not allocate — the lane
// indexing, VC-class computation and wrap stepping all stay on the
// stack.
func TestTorusUnicastHotPathAllocationBudget(t *testing.T) {
	for _, c := range []sim.Calendar{sim.Ladder, sim.Heap} {
		t.Run(c.String(), func(t *testing.T) {
			s := sim.NewWithCalendar(c)
			m := topology.NewTorus(8, 8)
			cfg := DefaultConfig()
			cfg.VCs = 2
			n := MustNew(s, m, cfg)
			// (1,1) -> (6,6) takes the wrap links in both dimensions
			// (modular distance 3+3 vs 5+5) and crosses both datelines.
			tr := &Transfer{
				Source:    m.ID(1, 1),
				Waypoints: []topology.NodeID{m.ID(6, 6)},
				Length:    64,
			}
			for i := 0; i < 32; i++ { // warm pool, calendar and rings
				n.MustSend(s.Now(), tr)
				s.Run()
			}
			avg := testing.AllocsPerRun(200, func() {
				n.MustSend(s.Now(), tr)
				s.Run()
			})
			if avg > 0 {
				t.Errorf("warm torus unicast send+drain allocates %v per op, want 0", avg)
			}
			if n.InFlight() != 0 {
				t.Fatalf("%d worms still in flight", n.InFlight())
			}
		})
	}
}

// TestHopAppenderWrapRoutesAllocationFree pins the routing side of
// the torus hot path: appending next hops into a reused buffer over
// wraparound routes costs nothing for every torus selector.
func TestHopAppenderWrapRoutesAllocationFree(t *testing.T) {
	m := topology.NewTorus(8, 8)
	appenders := map[string]routing.HopAppender{
		"dateline-dor":     routing.NewDatelineDOR(m),
		"west-first-torus": routing.NewTorusWestFirst(m),
		"odd-even-torus":   routing.NewTorusOddEven(m),
	}
	src, dst := m.ID(1, 1), m.ID(6, 6) // wraps in both dimensions
	buf := make([]topology.NodeID, 0, 8)
	for name, ap := range appenders {
		avg := testing.AllocsPerRun(200, func() {
			cur := src
			for cur != dst {
				buf = ap.AppendNextHops(buf[:0], cur, dst)
				cur = buf[0]
			}
		})
		if avg > 0 {
			t.Errorf("%s: walking a wrap route allocates %v per op, want 0", name, avg)
		}
	}
}

// TestVirtualChannelLanesAreIndependent checks the VC mechanism at
// the unit level: on a 1-VC ring two same-channel worms serialise,
// on a 2-VC ring the dateline classes put them on different lanes and
// they stream concurrently.
func TestVirtualChannelLanesAreIndependent(t *testing.T) {
	// Ring of 4: worm A runs 1->2->3, worm B runs 2->3->0 via the wrap
	// edge. Both need channel 2->3; B grabs it first (one hop in), so
	// on one VC worm A blocks behind B's 400-flit body. A's hop is
	// class 1 (no crossing ahead), B's is class 0 (wrap ahead): with
	// two lanes they stream concurrently.
	run := func(vcs int) (doneA, doneB sim.Time) {
		s := sim.New()
		m := topology.NewTorus(4)
		cfg := DefaultConfig()
		cfg.Ts = 0.1
		cfg.VCs = vcs
		n := MustNew(s, m, cfg)
		n.MustSend(0, &Transfer{Source: 1, Waypoints: []topology.NodeID{3}, Length: 400,
			OnDone: func(at sim.Time) { doneA = at }})
		n.MustSend(0, &Transfer{Source: 2, Waypoints: []topology.NodeID{0}, Length: 400,
			OnDone: func(at sim.Time) { doneB = at }})
		s.Run()
		return doneA, doneB
	}
	a1, b1 := run(1)
	a2, b2 := run(2)
	if b1 != b2 {
		t.Errorf("unblocked worm B changed with VCs: %v vs %v", b1, b2)
	}
	if a2 >= a1 {
		t.Errorf("worm A did not benefit from a second lane: 1 VC %v, 2 VCs %v", a1, a2)
	}
	if a2 != b2 {
		t.Errorf("with two lanes the worms should stream concurrently: A %v, B %v", a2, b2)
	}
}

// TestWraplessTorusKeepsPlainDOR pins the default-router choice: a
// torus whose every extent is below 3 has no wraparound links, so
// there is no ring to protect — it keeps plain DOR and its worms may
// use every lane adaptively instead of being parked in the dateline
// policy's class-0 share.
func TestWraplessTorusKeepsPlainDOR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCs = 2
	n := MustNew(sim.New(), topology.NewTorus(2, 2), cfg)
	if _, dateline := n.dor.(routing.VCPolicy); dateline {
		t.Error("wrapless torus installed a dateline router")
	}
	n = MustNew(sim.New(), topology.NewTorus(2, 4), cfg)
	if _, dateline := n.dor.(routing.VCPolicy); !dateline {
		t.Error("torus with a wrapped dimension did not install the dateline router")
	}
}

// TestSingleVCBehaviourUnchanged pins that VCs=1 is bit-identical to
// the pre-VC network: the field only resizes state when >= 2.
func TestSingleVCBehaviourUnchanged(t *testing.T) {
	run := func(cfg Config) []sim.Time {
		s := sim.New()
		m := topology.NewTorus(4, 4)
		n := MustNew(s, m, cfg)
		var times []sim.Time
		for i := 0; i < 8; i++ {
			src := m.ID(i%4, (i*3)%4)
			dst := m.ID((i+2)%4, i%4)
			if src == dst {
				continue
			}
			n.MustSend(sim.Time(i), &Transfer{Source: src, Waypoints: []topology.NodeID{dst}, Length: 32,
				OnDone: func(at sim.Time) { times = append(times, at) }})
		}
		s.Run()
		return times
	}
	base := run(DefaultConfig())
	cfg := DefaultConfig()
	cfg.VCs = 1
	got := run(cfg)
	if len(base) != len(got) {
		t.Fatalf("completion counts differ: %d vs %d", len(base), len(got))
	}
	for i := range base {
		if base[i] != got[i] {
			t.Errorf("completion %d: %v (unset) vs %v (VCs=1)", i, base[i], got[i])
		}
	}
}
