package network

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Wavefront batches hand the network every same-instant event in one
// run, so the hops inside a batch execute back to back against the
// lane state. For hops on disjoint resources that intra-batch order
// is arbitrary — the committed state must not depend on it. These
// tests pin that commutativity directly: inject a same-instant burst
// of worms on disjoint paths in every permuted order and require the
// committed state (per-destination delivery times, completion time,
// event count) to be identical, with wavefronts on and off.

// sameInstantBurst injects one row-confined worm per row of a 6×6
// mesh, all at t=0, in the given injection order, and returns the
// committed state after the calendar drains.
func sameInstantBurst(t *testing.T, order []int, wavefront bool) (map[topology.NodeID]sim.Time, sim.Time, uint64) {
	t.Helper()
	defer sim.SetDefaultWavefront(sim.DefaultWavefront())
	sim.SetDefaultWavefront(wavefront)

	s := sim.New()
	m := topology.NewMesh(6, 6)
	n, err := New(s, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Dimension-order routing keeps a worm from (0,r) to (5,r) inside
	// row r: the paths, and therefore every channel and port they
	// touch, are pairwise disjoint.
	delivered := make(map[topology.NodeID]sim.Time)
	for _, r := range order {
		dst := m.ID(5, r)
		n.MustSend(0, &Transfer{
			Source:    m.ID(0, r),
			Waypoints: []topology.NodeID{dst},
			Length:    16,
			OnDeliver: func(node topology.NodeID, at sim.Time) {
				delivered[node] = at
			},
		})
	}
	s.Run()
	if got := n.InFlight(); got != 0 {
		t.Fatalf("order %v wavefront=%v: %d worms still in flight", order, wavefront, got)
	}
	return delivered, s.Now(), s.Fired()
}

// TestInInstantCommutativity permutes the injection order of a
// same-instant burst on disjoint paths — the intra-batch hop order —
// and requires identical committed state for every permutation, under
// both execution modes.
func TestInInstantCommutativity(t *testing.T) {
	const rows = 6
	perms := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		perms = append(perms, rng.Perm(rows))
	}

	baseDel, baseNow, baseFired := sameInstantBurst(t, perms[0], true)
	if len(baseDel) != rows {
		t.Fatalf("baseline delivered %d of %d worms", len(baseDel), rows)
	}
	for _, wavefront := range []bool{true, false} {
		for _, p := range perms {
			del, now, fired := sameInstantBurst(t, p, wavefront)
			if !reflect.DeepEqual(del, baseDel) {
				t.Errorf("order %v wavefront=%v: deliveries diverge\ngot:  %v\nwant: %v", p, wavefront, del, baseDel)
			}
			if now != baseNow {
				t.Errorf("order %v wavefront=%v: completion time %v, want %v", p, wavefront, now, baseNow)
			}
			if fired != baseFired {
				t.Errorf("order %v wavefront=%v: fired %d events, want %d", p, wavefront, fired, baseFired)
			}
		}
	}
}

// TestSameInstantContentionIdenticalAcrossModes covers the other half
// of the in-instant contract: when same-instant worms DO contend (all
// six target one hotspot column), intra-batch order is no longer
// arbitrary — it is pinned by injection sequence — and batched
// execution must resolve the contention exactly as one-at-a-time
// execution does.
func TestSameInstantContentionIdenticalAcrossModes(t *testing.T) {
	run := func(wavefront bool) (map[topology.NodeID]sim.Time, sim.Time, uint64) {
		defer sim.SetDefaultWavefront(sim.DefaultWavefront())
		sim.SetDefaultWavefront(wavefront)

		s := sim.New()
		m := topology.NewMesh(6, 6)
		n, err := New(s, m, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Every worm crosses its row into column 5, then heads to the
		// corner: the column-5 lanes are a shared hotspot, so the
		// same-instant burst serializes on lane grants.
		delivered := make(map[topology.NodeID]sim.Time)
		for r := 0; r < 6; r++ {
			src := m.ID(0, r)
			n.MustSend(0, &Transfer{
				Source:    src,
				Waypoints: []topology.NodeID{m.ID(5, 5)},
				Length:    16,
				OnDeliver: func(_ topology.NodeID, at sim.Time) {
					delivered[src] = at
				},
			})
		}
		s.Run()
		if got := n.InFlight(); got != 0 {
			t.Fatalf("wavefront=%v: %d worms still in flight", wavefront, got)
		}
		return delivered, s.Now(), s.Fired()
	}

	onDel, onNow, onFired := run(true)
	offDel, offNow, offFired := run(false)
	if len(onDel) != 6 {
		t.Fatalf("delivered %d of 6 contending worms", len(onDel))
	}
	if !reflect.DeepEqual(onDel, offDel) {
		t.Errorf("contended deliveries diverge across modes\non:  %v\noff: %v", onDel, offDel)
	}
	if onNow != offNow || onFired != offFired {
		t.Errorf("contended run shape diverges: on (now=%v fired=%d) vs off (now=%v fired=%d)",
			onNow, onFired, offNow, offFired)
	}
}
