package network

import (
	"fmt"
	"sync"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// worm is the runtime state of one in-flight transfer.
//
// Worms are pooled process-wide: a drained worm returns to the free
// pool with its per-hop slices' capacity intact, so the saturation
// hot path recycles storage instead of re-growing it for every
// message. All of a worm's calendar entries are (Func, worm) records
// — the drain/deliver events consume their per-worm schedule through
// the rel/del cursors in fire order, which the calendar's (due, seq)
// ordering guarantees matches the order complete laid them out in.
type worm struct {
	net *Network
	t   *Transfer

	cur     topology.NodeID
	wpIdx   int // next waypoint to reach
	path    []topology.NodeID
	grants  []sim.Time           // grant time per hop (channel i = path[i]->path[i+1])
	chans   []topology.ChannelID // acquired channel LANES in order (channel·vcs + vc)
	deliver []int                // hop index (1-based node position) per waypoint
	relCur  int                  // next entry of chans to release (serial drain events)
	relRecs []laneRel            // sharded drain-event records, one per acquired lane
	delCur  int                  // next entry of deliver to fire (delivery events)
	waiting topology.ChannelID   // channel lane whose queue the worm sits in, or -1
	started sim.Time             // injection request time
	portAt  sim.Time             // port grant time

	// parkToken is non-nil while the worm is parked awaiting a fault
	// recovery; it guards the park-timeout calendar record (see
	// health.go).
	parkToken *parkToken

	// vcPol is the worm's virtual-channel class policy, resolved once
	// at Send from its selector — and only on networks with more than
	// one VC, so the single-VC hot path never pays the assertion.
	vcPol routing.VCPolicy

	// sel is the worm's routing function (the transfer's, or the
	// network default), with its fast-path interfaces resolved once at
	// Send instead of once per advance: chApp is the channel-resolved
	// form every in-package selector offers, hopApp the node-only
	// append form, either nil when unimplemented. advance consults
	// chApp, then hopApp, then plain NextHops.
	sel    routing.Selector
	chApp  routing.ChannelAppender
	hopApp routing.HopAppender

	// activePrev/activeNext thread the network's in-flight list: an
	// intrusive doubly-linked list replaces the old map[*worm]bool,
	// which paid a pointer hash on every send and every retirement.
	activePrev, activeNext *worm
}

func (w *worm) describe() string {
	return fmt.Sprintf("worm %q src=%d cur=%d wp=%d/%d hops=%d waiting=%d",
		w.t.Tag, w.t.Source, w.cur, w.wpIdx, len(w.t.Waypoints), len(w.chans), w.waiting)
}

// wormSliceCap pre-sizes a fresh worm's per-hop slices: deep enough
// for a typical coded-path traversal of the paper's meshes, and a
// pooled worm keeps whatever larger capacity it grew to.
const wormSliceCap = 16

// wormPool is the process-wide worm free pool. It used to be a
// per-network free list, but studies build a fresh network each —
// a sweep or a saturation benchmark pays the full worm allocation
// ramp-up on every run. putWorm clears every reference a worm holds,
// so recycling across networks is safe, and sync.Pool's per-P caches
// keep Get/Put off any shared lock.
var wormPool = sync.Pool{New: func() any {
	return &worm{
		path:    make([]topology.NodeID, 0, wormSliceCap),
		grants:  make([]sim.Time, 0, wormSliceCap),
		chans:   make([]topology.ChannelID, 0, wormSliceCap),
		deliver: make([]int, 0, wormSliceCap),
	}
}}

// getWorm takes a worm off the free pool, which builds one with
// pre-sized slices when dry.
func (n *Network) getWorm() *worm {
	return wormPool.Get().(*worm)
}

// putWorm resets w (dropping its Transfer reference, keeping slice
// capacity) and returns it to the free pool. Only finishWorm and
// dropWorm may call it: by then every calendar record referencing w
// has fired — park timeouts reference a token, not the worm, exactly
// so a drop cannot race a stale timeout.
func (n *Network) putWorm(w *worm) {
	w.net = nil
	w.t = nil
	w.cur = 0
	w.wpIdx = 0
	w.path = w.path[:0]
	w.grants = w.grants[:0]
	w.chans = w.chans[:0]
	w.deliver = w.deliver[:0]
	w.relRecs = w.relRecs[:0]
	w.relCur, w.delCur = 0, 0
	w.waiting = topology.InvalidChannel
	w.started, w.portAt = 0, 0
	w.parkToken = nil
	w.vcPol = nil
	w.sel, w.chApp, w.hopApp = nil, nil, nil
	w.activePrev, w.activeNext = nil, nil
	wormPool.Put(w)
}

// Prebuilt event bodies: the network schedules (func, worm) records,
// never closures, so the per-hop scheduling path does not allocate.
func requestPortEvent(env *sim.Env, arg any) { w := arg.(*worm); w.net.requestPort(env, w) }
func advanceEvent(env *sim.Env, arg any)     { w := arg.(*worm); w.net.advance(env, w) }

// laneRel is the sharded drain-event record for one acquired lane.
// The record names its lane explicitly (not a shared cursor): on a
// sharded network one worm's releases land on different shards and
// may execute concurrently within a segment, so they cannot share
// mutable per-worm state. Records live in the worm's pooled relRecs
// slice, so scheduling them stays allocation-free after pool warm-up
// — and a serial network never builds them at all (see complete), so
// its worms stay exactly as small as before the parallel kernel.
type laneRel struct {
	w    *worm
	lane topology.ChannelID
}

// releaseLaneEvent frees one of the worm's acquired channels as its
// tail passes.
func releaseLaneEvent(env *sim.Env, arg any) {
	r := arg.(*laneRel)
	r.w.net.release(env, r.lane)
}

// releaseNextEvent is the serial twin of releaseLaneEvent: it frees
// the worm's next acquired channel in pipeline order. complete
// schedules these at nondecreasing times in channel order on one
// calendar, so the cursor always names the channel this record meant.
func releaseNextEvent(env *sim.Env, arg any) {
	w := arg.(*worm)
	i := w.relCur
	w.relCur++
	w.net.release(env, w.chans[i])
}

// deliverNextEvent fires the worm's next waypoint delivery; the event
// fires at the scheduled (clamped) arrival time, so Now() is the
// delivery timestamp. Serial-class (coordinator-only), so the cursor
// needs no guard.
func deliverNextEvent(env *sim.Env, arg any) {
	w := arg.(*worm)
	i := w.delCur
	w.delCur++
	w.t.OnDeliver(w.t.Waypoints[i], env.Now())
}

func releasePortEvent(env *sim.Env, arg any) { w := arg.(*worm); w.net.releasePort(env, w.t.Source) }

// finishWorm retires the worm when its tail fully drains. It fires at
// tdone with the largest sequence number of the worm's records, so
// recycling here cannot race an unfired release/delivery; it is
// serial-class, and every release below its key has executed by the
// time the coordinator reaches it.
func finishWorm(env *sim.Env, arg any) {
	w := arg.(*worm)
	n := w.net
	n.activeRemove(w)
	n.finished++
	if w.t.OnDone != nil {
		w.t.OnDone(env.Now())
	}
	if w.t.OnPath != nil {
		w.t.OnPath(w.path, true)
	}
	n.putWorm(w)
}

// Send validates t and schedules its injection at absolute time start.
// The worm first waits for an injection port at the source (FIFO),
// then pays the startup latency Ts, then walks its coded path.
func (n *Network) Send(start sim.Time, t *Transfer) error {
	if t.Length <= 0 {
		return fmt.Errorf("network: transfer %q has length %d", t.Tag, t.Length)
	}
	if len(t.Waypoints) == 0 {
		return fmt.Errorf("network: transfer %q has no waypoints", t.Tag)
	}
	prev := t.Source
	for i, wp := range t.Waypoints {
		if wp == prev {
			return fmt.Errorf("network: transfer %q repeats node %d at waypoint %d", t.Tag, wp, i)
		}
		if int(wp) < 0 || int(wp) >= n.topo.Nodes() {
			return fmt.Errorf("network: transfer %q waypoint %d out of range", t.Tag, wp)
		}
		prev = wp
	}
	if t.Selector == nil && n.dor == nil {
		return fmt.Errorf("network: transfer %q needs a selector on topology %s", t.Tag, n.topo.Name())
	}
	w := n.getWorm()
	w.net = n
	w.t = t
	w.cur = t.Source
	w.path = append(w.path, t.Source)
	w.waiting = topology.InvalidChannel
	w.started = start
	sel := t.Selector
	if sel == nil {
		sel = n.dor
	}
	w.sel = sel
	w.chApp, _ = sel.(routing.ChannelAppender)
	if w.chApp == nil {
		w.hopApp, _ = sel.(routing.HopAppender)
	}
	if n.vcs > 1 {
		w.vcPol, _ = sel.(routing.VCPolicy)
	}
	n.injected++
	n.activeAdd(w)
	n.sim.AtCall(start, requestPortEvent, w)
	return nil
}

// MustSend is Send for statically valid transfers; it panics on error.
func (n *Network) MustSend(start sim.Time, t *Transfer) {
	if err := n.Send(start, t); err != nil {
		panic(err)
	}
}

// requestPort claims an injection port at the worm's source or queues
// for one. Serial-class: port state is coordinator-owned.
func (n *Network) requestPort(env *sim.Env, w *worm) {
	p := n.port(w.t.Source)
	if p.inUse < n.nports {
		p.inUse++
		n.grantPort(env, w)
		return
	}
	p.queue.Push(w)
}

// grantPort starts the startup latency; afterwards the header begins
// to walk. The first advance can never complete the worm (a transfer
// may not start at its own first waypoint), so it is shard-class on
// the source's owner.
func (n *Network) grantPort(env *sim.Env, w *worm) {
	w.portAt = env.Now()
	env.AfterCallShard(n.cfg.Ts, advanceEvent, w, n.ownerOf(w.t.Source))
}

// releasePort returns the source's injection port and admits the next
// queued worm, if any. Serial-class.
func (n *Network) releasePort(env *sim.Env, node topology.NodeID) {
	p := n.port(node)
	if p.queue.Len() > 0 {
		n.grantPort(env, p.queue.Pop())
		return
	}
	p.inUse--
	if p.inUse < 0 {
		panic("network: port underflow")
	}
}

// advance moves the worm's header one hop, or completes the worm when
// the final waypoint is reached. Called at the moment the header sits
// at w.cur ready to move. Shard-class on w.cur's owner: everything it
// touches — the candidate lanes out of w.cur, their wait queues, the
// worm's own record — belongs to that shard, except completion, which
// acquire routes to the coordinator (see the completing test there).
func (n *Network) advance(env *sim.Env, w *worm) {
	// Record any waypoint hit at the current node.
	for w.wpIdx < len(w.t.Waypoints) && w.cur == w.t.Waypoints[w.wpIdx] {
		w.deliver = append(w.deliver, len(w.chans))
		w.wpIdx++
	}
	if w.wpIdx == len(w.t.Waypoints) {
		n.complete(env, w)
		return
	}
	dst := w.t.Waypoints[w.wpIdx]
	h := n.health
	if h != nil && h.nodeDown[w.cur] {
		// The header sits at a node that failed under it: fail-stop.
		n.parkOrDrop(env, w)
		return
	}
	if w.chApp != nil {
		n.advanceChannels(env, w, dst, h)
		return
	}
	// Foreign selector: route through the node-append path when
	// offered (cached at Send), else the slice-returning form, and
	// resolve each candidate's channel from the endpoint pair. This
	// path keeps the non-adjacency guard — in-package selectors are
	// trusted (their coordinate walks cannot emit a non-neighbor).
	var cands []topology.NodeID
	if w.hopApp != nil {
		buf := n.scratch(env)
		*buf = w.hopApp.AppendNextHops((*buf)[:0], w.cur, dst)
		cands = *buf
	} else {
		cands = w.sel.NextHops(w.cur, dst)
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("network: no route from %d to %d for %s", w.cur, dst, w.describe()))
	}
	// Adaptive choice: first candidate with a free lane (its VC-class
	// lanes in order; the whole channel when there is no policy). On a
	// degraded network (health non-nil) a hop over a dead channel or
	// into a dead node is not a candidate at all — this filter is the
	// re-route: an adaptive selector's remaining candidates are its
	// live admissible detours.
	var pick topology.NodeID
	pickLane := topology.InvalidChannel
	firstLive := -1
	for i, cand := range cands {
		ch := n.topo.Channel(w.cur, cand)
		if ch == topology.InvalidChannel {
			panic(fmt.Sprintf("network: router proposed non-adjacent hop %d -> %d", w.cur, cand))
		}
		if h != nil && (h.linkDown[ch] || h.nodeDown[cand]) {
			continue
		}
		if firstLive < 0 {
			firstLive = i
		}
		lo, hi := n.laneRange(w, cand, dst)
		base := int(ch) * n.vcs
		for l := lo; l < hi; l++ {
			// laneFree is the read-only probe: in lazy mode an untouched
			// lane's page stays unallocated until a worm actually takes it.
			if n.laneFree(topology.ChannelID(base + l)) {
				pick, pickLane = cand, topology.ChannelID(base+l)
				break
			}
		}
		if pickLane != topology.InvalidChannel {
			break
		}
	}
	if pickLane == topology.InvalidChannel {
		if firstLive < 0 {
			// Every admissible hop is dead: the worm cannot make
			// progress on the degraded network.
			n.parkOrDrop(env, w)
			return
		}
		// All live candidates busy: wait FIFO on the most preferred
		// live candidate's first permitted lane.
		cand := cands[firstLive]
		ch := n.topo.Channel(w.cur, cand)
		lo, _ := n.laneRange(w, cand, dst)
		lane := topology.ChannelID(int(ch)*n.vcs + lo)
		w.waiting = lane
		n.lane(lane).queue.Push(w)
		return
	}
	n.acquire(env, w, pick, pickLane)
}

// advanceChannels is advance's candidate loop over channel-resolved
// hops: the selector emits each candidate's directed channel during
// the coordinate walk it already performs (routing.ChannelAppender),
// so no candidate pays the endpoint-pair channel derivation. Same
// preference order, same adaptive first-free-lane choice, same
// fault filtering and FIFO wait as the generic loop above.
func (n *Network) advanceChannels(env *sim.Env, w *worm, dst topology.NodeID, h *healthState) {
	buf := n.hopScratchFor(env)
	hops := w.chApp.AppendNextChannels((*buf)[:0], w.cur, dst)
	*buf = hops
	if len(hops) == 0 {
		panic(fmt.Sprintf("network: no route from %d to %d for %s", w.cur, dst, w.describe()))
	}
	firstLive := -1
	for i := range hops {
		cand, ch := hops[i].Node, hops[i].Ch
		if h != nil && (h.linkDown[ch] || h.nodeDown[cand]) {
			continue
		}
		if firstLive < 0 {
			firstLive = i
		}
		lo, hi := n.laneRange(w, cand, dst)
		base := int(ch) * n.vcs
		for l := lo; l < hi; l++ {
			if n.laneFree(topology.ChannelID(base + l)) {
				n.acquire(env, w, cand, topology.ChannelID(base+l))
				return
			}
		}
	}
	if firstLive < 0 {
		n.parkOrDrop(env, w)
		return
	}
	cand, ch := hops[firstLive].Node, hops[firstLive].Ch
	lo, _ := n.laneRange(w, cand, dst)
	lane := topology.ChannelID(int(ch)*n.vcs + lo)
	w.waiting = lane
	n.lane(lane).queue.Push(w)
}

// laneRange returns the half-open lane range [lo, hi) within one
// physical channel's n.vcs lanes that w may occupy for the hop to
// next. Without a VC policy every lane is permitted (adaptive
// head-of-line-blocking relief); with one, the policy's classes
// partition the lanes and the hop's class selects its share. Should
// the network carry fewer lanes than the policy has classes, the
// partition cannot be honoured and all lanes are permitted — the
// 1-VC torus configuration the deadlock regression test documents.
func (n *Network) laneRange(w *worm, next, dst topology.NodeID) (int, int) {
	if n.vcs == 1 || w.vcPol == nil {
		return 0, n.vcs
	}
	classes := w.vcPol.VCClasses()
	if n.vcs < classes {
		return 0, n.vcs
	}
	c := w.vcPol.VCClass(w.cur, next, dst)
	return c * n.vcs / classes, (c + 1) * n.vcs / classes
}

// acquire grants channel ch to w and schedules the header's arrival at
// the next node, one hop delay out — the event that carries the worm
// across a shard boundary, and the reason the hop delay is a hard
// lookahead bound.
func (n *Network) acquire(env *sim.Env, w *worm, next topology.NodeID, ch topology.ChannelID) {
	st := n.lane(ch)
	if st.holder != nil {
		panic("network: acquiring a held channel")
	}
	if h := n.health; h != nil {
		// The robustness suite's always-on invariant: no worm ever
		// acquires a lane of a dead channel or a lane into a dead node.
		if h.linkDown[int(ch)/n.vcs] || h.nodeDown[next] {
			panic(fmt.Sprintf("network: acquiring dead lane %d into node %d", ch, next))
		}
	}
	st.holder = w
	now := env.Now()
	n.noteAcquire(ch, now)
	w.waiting = topology.InvalidChannel
	w.grants = append(w.grants, now)
	w.chans = append(w.chans, ch)
	w.path = append(w.path, next)
	w.cur = next
	// Shard classification of the arrival. An arrival at the final
	// waypoint completes the worm, and complete schedules deliveries,
	// port release and retirement — callbacks that feed back into the
	// workload, and zero-lookahead records that may land on other
	// shards. Those must run at their exact serial position, so a
	// completing arrival is serial-class: the coordinator executes it
	// in global order. The test is exact because consecutive waypoints
	// are distinct (Send validates), so a non-final or non-waypoint
	// arrival can never reach complete.
	sh := int32(-1)
	if n.part != nil && !(w.wpIdx == len(w.t.Waypoints)-1 && next == w.t.Waypoints[w.wpIdx]) {
		sh = int32(n.part.Owner(next))
	}
	env.AfterCallShard(n.hop, advanceEvent, w, sh)
}

// release frees channel ch and grants it to the head of its queue.
// Shard-class on the lane's owner: its waiters are worms whose header
// sits at the lane's source node, so admitting them stays inside the
// shard.
func (n *Network) release(env *sim.Env, ch topology.ChannelID) {
	st := n.lane(ch)
	if st.holder == nil {
		panic("network: releasing a free channel")
	}
	st.holder = nil
	n.noteRelease(ch, env.Now())
	// Keep admitting waiters until one takes the channel or the queue
	// empties: an adaptive worm at the head may grab a different free
	// channel when re-routed, and the waiters behind it must not be
	// stranded on a free channel.
	for st.holder == nil && st.queue.Len() > 0 {
		next := st.queue.Pop()
		if next.waiting != ch {
			panic("network: queued worm not waiting on this channel")
		}
		next.waiting = topology.InvalidChannel
		n.advance(env, next)
	}
}

// complete fires when the header has arrived at the final waypoint.
// The body drains at Beta per flit; channel i releases and waypoint
// deliveries fire in pipeline order behind the tail.
//
// complete always executes on the coordinator: its releases clamp to
// "now" when the path is longer than the body (zero lookahead, any
// shard), and its delivery/retirement callbacks feed the workload's
// injection loop, so all of its records need exact global sequence
// numbers. acquire guarantees this by classifying completing arrivals
// serial-class; the panic pins that invariant.
func (n *Network) complete(env *sim.Env, w *worm) {
	if !env.Coordinator() {
		panic("network: complete on a shard worker")
	}
	now := env.Now()
	beta := n.beta
	drain := float64(w.t.Length) * beta
	tdone := now + drain
	hops := len(w.chans)

	// Tail leaves channel i at tdone - (hops-1-i)*Beta: once the last
	// channel is granted the body streams freely, one flit per Beta
	// per channel, and nothing drained earlier because wormhole
	// back-pressure held all flits in place while the header stalled.
	// Times are nondecreasing in i, matching acquisition order. On a
	// serial network the cursor-driven records fire against chans in
	// order and cost nothing; only a sharded network builds explicit
	// per-lane records, because the releases fan out to per-shard
	// calendars where a shared cursor would race. Build every record
	// before scheduling any: append may regrow the slice, and the
	// calendar must hold pointers into the final array.
	if n.part == nil {
		for i := range w.chans {
			at := tdone - float64(hops-1-i)*beta
			if at < now {
				at = now
			}
			env.AtCall(at, releaseNextEvent, w)
		}
	} else {
		w.relRecs = w.relRecs[:0]
		for _, lane := range w.chans {
			w.relRecs = append(w.relRecs, laneRel{w: w, lane: lane})
		}
		for i := range w.relRecs {
			at := tdone - float64(hops-1-i)*beta
			if at < now {
				at = now
			}
			env.AtCallShard(at, releaseLaneEvent, &w.relRecs[i], n.laneOwner(w.relRecs[i].lane))
		}
	}

	// A waypoint reached after hop h receives its tail when channel
	// h-1 finishes, i.e. at tdone - (hops-h)*Beta.
	if w.t.OnDeliver != nil {
		for _, h := range w.deliver {
			at := tdone - float64(hops-h)*beta
			if at < now {
				at = now
			}
			env.AtCall(at, deliverNextEvent, w)
		}
	}

	// The tail leaves the source when it enters the first channel.
	portFree := tdone - float64(hops-1)*beta
	if portFree < now {
		portFree = now
	}
	env.AtCall(portFree, releasePortEvent, w)

	env.AtCall(tdone, finishWorm, w)
}
