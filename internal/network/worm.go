package network

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// worm is the runtime state of one in-flight transfer.
type worm struct {
	net *Network
	t   *Transfer

	cur     topology.NodeID
	wpIdx   int // next waypoint to reach
	path    []topology.NodeID
	grants  []sim.Time           // grant time per hop (channel i = path[i]->path[i+1])
	chans   []topology.ChannelID // acquired channels in order
	deliver []int                // hop index (1-based node position) per waypoint
	waiting topology.ChannelID   // channel whose queue the worm sits in, or -1
	started sim.Time             // injection request time
	portAt  sim.Time             // port grant time
}

func (w *worm) describe() string {
	return fmt.Sprintf("worm %q src=%d cur=%d wp=%d/%d hops=%d waiting=%d",
		w.t.Tag, w.t.Source, w.cur, w.wpIdx, len(w.t.Waypoints), len(w.chans), w.waiting)
}

// Send validates t and schedules its injection at absolute time start.
// The worm first waits for an injection port at the source (FIFO),
// then pays the startup latency Ts, then walks its coded path.
func (n *Network) Send(start sim.Time, t *Transfer) error {
	if t.Length <= 0 {
		return fmt.Errorf("network: transfer %q has length %d", t.Tag, t.Length)
	}
	if len(t.Waypoints) == 0 {
		return fmt.Errorf("network: transfer %q has no waypoints", t.Tag)
	}
	prev := t.Source
	for i, wp := range t.Waypoints {
		if wp == prev {
			return fmt.Errorf("network: transfer %q repeats node %d at waypoint %d", t.Tag, wp, i)
		}
		if int(wp) < 0 || int(wp) >= n.topo.Nodes() {
			return fmt.Errorf("network: transfer %q waypoint %d out of range", t.Tag, wp)
		}
		prev = wp
	}
	if t.Selector == nil && n.dor == nil {
		return fmt.Errorf("network: transfer %q needs a selector on topology %s", t.Tag, n.topo.Name())
	}
	w := &worm{
		net:     n,
		t:       t,
		cur:     t.Source,
		path:    []topology.NodeID{t.Source},
		waiting: topology.InvalidChannel,
		started: start,
	}
	n.injected++
	n.active[w] = true
	n.sim.At(start, func() { n.requestPort(w) })
	return nil
}

// MustSend is Send for statically valid transfers; it panics on error.
func (n *Network) MustSend(start sim.Time, t *Transfer) {
	if err := n.Send(start, t); err != nil {
		panic(err)
	}
}

// requestPort claims an injection port at the worm's source or queues
// for one.
func (n *Network) requestPort(w *worm) {
	p := &n.ports[w.t.Source]
	if p.inUse < n.cfg.ports() {
		p.inUse++
		n.grantPort(w)
		return
	}
	p.queue = append(p.queue, w)
}

// grantPort starts the startup latency; afterwards the header begins
// to walk.
func (n *Network) grantPort(w *worm) {
	w.portAt = n.sim.Now()
	n.sim.After(n.cfg.Ts, func() { n.advance(w) })
}

// releasePort returns the source's injection port and admits the next
// queued worm, if any.
func (n *Network) releasePort(node topology.NodeID) {
	p := &n.ports[node]
	if len(p.queue) > 0 {
		next := p.queue[0]
		p.queue = p.queue[1:]
		n.grantPort(next)
		return
	}
	p.inUse--
	if p.inUse < 0 {
		panic("network: port underflow")
	}
}

// selector returns the routing function for w.
func (w *worm) selector() interface {
	NextHops(cur, dst topology.NodeID) []topology.NodeID
} {
	if w.t.Selector != nil {
		return w.t.Selector
	}
	return w.net.dor
}

// advance moves the worm's header one hop, or completes the worm when
// the final waypoint is reached. Called at the moment the header sits
// at w.cur ready to move.
func (n *Network) advance(w *worm) {
	// Record any waypoint hit at the current node.
	for w.wpIdx < len(w.t.Waypoints) && w.cur == w.t.Waypoints[w.wpIdx] {
		w.deliver = append(w.deliver, len(w.chans))
		w.wpIdx++
	}
	if w.wpIdx == len(w.t.Waypoints) {
		n.complete(w)
		return
	}
	dst := w.t.Waypoints[w.wpIdx]
	cands := w.selector().NextHops(w.cur, dst)
	if len(cands) == 0 {
		panic(fmt.Sprintf("network: no route from %d to %d for %s", w.cur, dst, w.describe()))
	}
	// Adaptive choice: first candidate whose channel is free.
	var pick topology.NodeID
	var pickCh topology.ChannelID = topology.InvalidChannel
	for _, cand := range cands {
		ch := n.topo.Channel(w.cur, cand)
		if ch == topology.InvalidChannel {
			panic(fmt.Sprintf("network: router proposed non-adjacent hop %d -> %d", w.cur, cand))
		}
		if n.channels[ch].holder == nil {
			pick, pickCh = cand, ch
			break
		}
	}
	if pickCh == topology.InvalidChannel {
		// All candidates busy: wait FIFO on the most preferred one.
		ch := n.topo.Channel(w.cur, cands[0])
		w.waiting = ch
		n.channels[ch].queue = append(n.channels[ch].queue, w)
		return
	}
	n.acquire(w, pick, pickCh)
}

// acquire grants channel ch to w and schedules the header's arrival at
// the next node.
func (n *Network) acquire(w *worm, next topology.NodeID, ch topology.ChannelID) {
	st := &n.channels[ch]
	if st.holder != nil {
		panic("network: acquiring a held channel")
	}
	st.holder = w
	n.noteAcquire(ch)
	w.waiting = topology.InvalidChannel
	w.grants = append(w.grants, n.sim.Now())
	w.chans = append(w.chans, ch)
	w.path = append(w.path, next)
	w.cur = next
	n.sim.After(n.cfg.hopDelay(), func() { n.advance(w) })
}

// release frees channel ch and grants it to the head of its queue.
func (n *Network) release(ch topology.ChannelID) {
	st := &n.channels[ch]
	if st.holder == nil {
		panic("network: releasing a free channel")
	}
	st.holder = nil
	n.noteRelease(ch)
	// Keep admitting waiters until one takes the channel or the queue
	// empties: an adaptive worm at the head may grab a different free
	// channel when re-routed, and the waiters behind it must not be
	// stranded on a free channel.
	for st.holder == nil && len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		if next.waiting != ch {
			panic("network: queued worm not waiting on this channel")
		}
		next.waiting = topology.InvalidChannel
		n.advance(next)
	}
}

// complete fires when the header has arrived at the final waypoint.
// The body drains at Beta per flit; channel i releases and waypoint
// deliveries fire in pipeline order behind the tail.
func (n *Network) complete(w *worm) {
	now := n.sim.Now()
	drain := float64(w.t.Length) * n.cfg.Beta
	tdone := now + drain
	hops := len(w.chans)

	// Tail leaves channel i at tdone - (hops-1-i)*Beta: once the last
	// channel is granted the body streams freely, one flit per Beta
	// per channel, and nothing drained earlier because wormhole
	// back-pressure held all flits in place while the header stalled.
	for i, ch := range w.chans {
		at := tdone - float64(hops-1-i)*n.cfg.Beta
		if at < now {
			at = now
		}
		ch := ch
		n.sim.At(at, func() { n.release(ch) })
	}

	// A waypoint reached after hop h receives its tail when channel
	// h-1 finishes, i.e. at tdone - (hops-h)*Beta.
	if w.t.OnDeliver != nil {
		for i, h := range w.deliver {
			node := w.t.Waypoints[i]
			at := tdone - float64(hops-h)*n.cfg.Beta
			if at < now {
				at = now
			}
			deliverAt := at
			n.sim.At(deliverAt, func() { w.t.OnDeliver(node, deliverAt) })
		}
	}

	// The tail leaves the source when it enters the first channel.
	portFree := tdone - float64(hops-1)*n.cfg.Beta
	if portFree < now {
		portFree = now
	}
	n.sim.At(portFree, func() { n.releasePort(w.t.Source) })

	n.sim.At(tdone, func() {
		delete(n.active, w)
		n.finished++
		if w.t.OnDone != nil {
			w.t.OnDone(tdone)
		}
	})
}
