// Package prof backs the CLIs' -cpuprofile/-memprofile flags with
// the standard runtime/pprof collectors, so every command exposes
// profiling the same way `go test` does:
//
//	sweep -what fig2 -shards 8 -cpuprofile cpu.out
//	go tool pprof cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile at cpuPath and schedules a heap profile
// at memPath; either may be empty to skip it. The returned stop
// function ends the CPU profile and writes the heap profile — call it
// exactly once, on the way out, AFTER the workload (a deferred call
// in main is the intended shape). Errors writing the heap profile at
// stop time are reported on stderr rather than returned: by then the
// command's real work has already succeeded.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing CPU profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			// Up-to-date allocation accounting, as `go test -memprofile`
			// arranges before its snapshot.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing heap profile:", err)
			}
		}
	}, nil
}
