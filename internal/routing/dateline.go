package routing

import (
	"repro/internal/topology"
)

// Virtual-channel policies. A torus ring is a cycle of channels, so
// any deterministic minimal routing function on it has a cyclic
// channel dependency graph — the classical reason plain dimension-
// order routing deadlocks on k-ary n-cubes. The classical fix (Dally
// & Seitz) is a dateline: split each physical channel into virtual
// channels, and let a worm switch VC class when its remaining route
// no longer crosses the ring's wraparound edge. The class-0 subgraph
// then misses the edge past the dateline and the class-1 subgraph
// never contains a wrap edge at all, so both are acyclic, and class
// transitions only ever go 0 → 1 within a dimension.

// VCPolicy is implemented by selectors that steer worms across
// virtual channels. VCClass maps one hop (cur → next, en route to
// dst) to a VC class in [0, VCClasses()); the network partitions its
// configured VC lanes among the classes and a worm only ever
// occupies lanes of its hop's class. The class must be a pure
// function of (cur, next, dst) so that the channel dependency graph
// (internal/cdg) can enumerate it without path history.
type VCPolicy interface {
	// VCClasses returns the number of VC classes the policy uses
	// (2 for dateline routing).
	VCClasses() int
	// VCClass returns the class of the hop cur → next toward dst.
	VCClass(cur, next, dst topology.NodeID) int
}

// datelineClass implements the dateline rule on mesh m: class 0
// while the remaining route in the hop's dimension still crosses the
// wraparound edge (the hop itself included), class 1 once it no
// longer does. Hops along dimensions without wrap links are class 0:
// they cannot close a ring, so either class is safe, and class 0
// keeps a pure mesh entirely in the first lane partition.
func datelineClass(m *topology.Mesh, cur, next, dst topology.NodeID) int {
	for d := 0; d < m.NDims(); d++ {
		cc := m.CoordAxis(cur, d)
		nc := m.CoordAxis(next, d)
		if cc == nc {
			continue
		}
		if !m.WrapDim(d) {
			return 0
		}
		k := m.Dim(d)
		// Hop direction, wrap steps normalised: k-1 → 0 is +1.
		dir := nc - cc
		if dir == k-1 {
			dir = -1
		} else if dir == -(k - 1) {
			dir = +1
		}
		dc := m.CoordAxis(dst, d)
		if dc == cc {
			return 0
		}
		// Travelling +1 the remaining route crosses the wrap edge
		// (k-1 → 0) iff the destination coordinate is below the
		// current one; travelling -1, iff it is above.
		if dir > 0 {
			if dc < cc {
				return 0
			}
			return 1
		}
		if dc > cc {
			return 0
		}
		return 1
	}
	return 0
}

// datelineStep returns the minimal next hop along wrap dimension d
// toward dst (shorter modular arc, ties positive) — the deterministic
// per-dimension substrate of the torus routing functions.
func datelineStep(m *topology.Mesh, cur topology.NodeID, d, cc, dc int) topology.NodeID {
	k := m.Dim(d)
	forward := dc - cc
	if forward < 0 {
		forward += k
	}
	if forward <= k-forward {
		return m.Step(cur, d, +1)
	}
	return m.Step(cur, d, -1)
}

// datelineHop is datelineStep with the hop's channel resolved in-walk.
func datelineHop(m *topology.Mesh, cur topology.NodeID, d, cc, dc int) Hop {
	k := m.Dim(d)
	forward := dc - cc
	if forward < 0 {
		forward += k
	}
	if forward <= k-forward {
		return Hop{Node: m.Step(cur, d, +1), Ch: m.DirChannel(cur, d, 0)}
	}
	return Hop{Node: m.Step(cur, d, -1), Ch: m.DirChannel(cur, d, 1)}
}

// DatelineDOR is dimension-order routing with dateline virtual
// channels: hop-for-hop the same minimal modular routes as DOR on a
// torus, plus the VC-class switch on wraparound crossings that makes
// it deadlock-free with two or more VCs per physical channel
// (verified mechanically by cdg.DeadlockFree). It is the default
// router the network installs on a torus with virtual channels.
type DatelineDOR struct {
	*DOR
}

// NewDatelineDOR returns dateline dimension-order routing over m.
// order is as for NewDOR.
func NewDatelineDOR(m *topology.Mesh, order ...int) *DatelineDOR {
	return &DatelineDOR{DOR: NewDOR(m, order...)}
}

// Name implements Selector.
func (r *DatelineDOR) Name() string { return "dateline-dor" }

// VCClasses implements VCPolicy.
func (r *DatelineDOR) VCClasses() int { return 2 }

// VCClass implements VCPolicy.
func (r *DatelineDOR) VCClass(cur, next, dst topology.NodeID) int {
	return datelineClass(r.m, cur, next, dst)
}

var (
	_ Selector    = (*DatelineDOR)(nil)
	_ HopAppender = (*DatelineDOR)(nil)
	_ VCPolicy    = (*DatelineDOR)(nil)
)
