package routing_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Route-validity property suite: for every selector on random mesh
// and torus shapes, every produced route (a) reaches its destination,
// (b) is minimal — every offered candidate is one hop closer under
// the topology's wrap-aware Distance, so wrap dimensions take the
// shorter modular arc, (c) never revisits a channel, and (d) respects
// its structural rules (west hops first for west-first; wrap
// dimensions before residual dimensions for the torus models).

// selectorsFor returns every selector constructible on m, keyed by a
// short label.
func selectorsFor(m *topology.Mesh) map[string]routing.Selector {
	sels := map[string]routing.Selector{
		"dor":          routing.NewDOR(m),
		"dateline-dor": routing.NewDatelineDOR(m),
	}
	if m.Wrap() {
		sels["west-first-torus"] = routing.NewTorusWestFirst(m)
		if m.NDims() >= 2 {
			sels["odd-even-torus"] = routing.NewTorusOddEven(m)
		}
	} else {
		sels["west-first"] = routing.NewWestFirst(m)
		if m.NDims() >= 2 {
			sels["odd-even"] = routing.NewOddEven(m)
		}
	}
	return sels
}

func randomTopo(r *rand.Rand) *topology.Mesh {
	dims := make([]int, 1+r.Intn(3))
	for i := range dims {
		dims[i] = 2 + r.Intn(4)
	}
	if r.Intn(2) == 0 {
		return topology.NewTorus(dims...)
	}
	return topology.NewMesh(dims...)
}

// hopDim returns the dimension the hop cur→next moves along.
func hopDim(t *testing.T, m *topology.Mesh, cur, next topology.NodeID) int {
	t.Helper()
	for d := 0; d < m.NDims(); d++ {
		if m.CoordAxis(cur, d) != m.CoordAxis(next, d) {
			return d
		}
	}
	t.Fatalf("hop %d -> %d moves along no dimension", cur, next)
	return -1
}

// checkRoute follows the selector's first candidates from src to dst,
// validating every offered candidate along the way.
func checkRoute(t *testing.T, m *topology.Mesh, label string, sel routing.Selector, src, dst topology.NodeID) {
	t.Helper()
	cur := src
	dist := m.Distance(src, dst)
	usedCh := make(map[topology.ChannelID]bool)
	sawWest := false     // west-first: a non-west hop happened
	sawResidual := false // torus models: a non-wrap-dim hop happened
	for steps := 0; cur != dst; steps++ {
		if steps > dist {
			t.Fatalf("%s on %s: route %d->%d exceeded minimal length %d", label, m.Name(), src, dst, dist)
		}
		cands := sel.NextHops(cur, dst)
		if len(cands) == 0 {
			t.Fatalf("%s on %s: stalled at %d short of %d", label, m.Name(), cur, dst)
		}
		for _, cand := range cands {
			if m.Channel(cur, cand) == topology.InvalidChannel {
				t.Fatalf("%s on %s: non-adjacent candidate %d -> %d", label, m.Name(), cur, cand)
			}
			if got, want := m.Distance(cand, dst), m.Distance(cur, dst)-1; got != want {
				t.Fatalf("%s on %s: candidate %d -> %d not minimal toward %d (distance %d, want %d)",
					label, m.Name(), cur, cand, dst, got, want)
			}
		}
		next := cands[0]
		ch := m.Channel(cur, next)
		if usedCh[ch] {
			t.Fatalf("%s on %s: route %d->%d revisits channel %d", label, m.Name(), src, dst, ch)
		}
		usedCh[ch] = true

		d := hopDim(t, m, cur, next)
		switch label {
		case "west-first":
			west := d == 0 && m.CoordAxis(next, 0) == m.CoordAxis(cur, 0)-1
			if west && sawWest {
				t.Fatalf("%s on %s: west hop at %d after a non-west hop (route %d->%d)", label, m.Name(), cur, src, dst)
			}
			if !west {
				sawWest = true
			}
		case "west-first-torus", "odd-even-torus":
			if m.WrapDim(d) && sawResidual {
				t.Fatalf("%s on %s: wrap-dim hop at %d after a residual hop (route %d->%d)", label, m.Name(), cur, src, dst)
			}
			if !m.WrapDim(d) {
				sawResidual = true
			}
		}
		cur = next
	}
	if len(usedCh) != dist {
		t.Fatalf("%s on %s: route %d->%d took %d hops, want minimal %d", label, m.Name(), src, dst, len(usedCh), dist)
	}
}

func TestRouteValidityQuick(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomTopo(r)
		for label, sel := range selectorsFor(m) {
			for trial := 0; trial < 8; trial++ {
				src := topology.NodeID(r.Intn(m.Nodes()))
				dst := topology.NodeID(r.Intn(m.Nodes()))
				if src == dst {
					continue
				}
				checkRoute(t, m, label, sel, src, dst)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDatelineDORWrapPathGoldens pins the 4x4 torus's wraparound
// routes and their VC classes hop by hop: the shorter modular arc is
// taken (ties positive), the hop that crosses the wrap edge and every
// hop before it ride class 0, and the route switches to class 1 once
// the crossing is behind it.
func TestDatelineDORWrapPathGoldens(t *testing.T) {
	m := topology.NewTorus(4, 4)
	sel := routing.NewDatelineDOR(m)
	id := func(x, y int) topology.NodeID { return m.ID(x, y) }
	cases := []struct {
		name     string
		src, dst topology.NodeID
		path     []topology.NodeID
		classes  []int // VC class per hop
	}{
		{"one-hop wrap east", id(3, 0), id(0, 0),
			[]topology.NodeID{id(3, 0), id(0, 0)}, []int{0}},
		{"one-hop wrap west", id(0, 0), id(3, 0),
			[]topology.NodeID{id(0, 0), id(3, 0)}, []int{0}},
		{"tie goes positive, no crossing", id(1, 1), id(3, 3),
			[]topology.NodeID{id(1, 1), id(2, 1), id(3, 1), id(3, 2), id(3, 3)},
			[]int{1, 1, 1, 1}},
		{"crossing then switch", id(3, 1), id(1, 1),
			[]topology.NodeID{id(3, 1), id(0, 1), id(1, 1)}, []int{0, 1}},
		{"pre-wrap hops stay class 0", id(2, 0), id(0, 0),
			[]topology.NodeID{id(2, 0), id(3, 0), id(0, 0)}, []int{0, 0}},
		{"both dims wrap", id(3, 3), id(0, 0),
			[]topology.NodeID{id(3, 3), id(0, 3), id(0, 0)}, []int{0, 0}},
		{"wrap west then plain north", id(0, 1), id(3, 2),
			[]topology.NodeID{id(0, 1), id(3, 1), id(3, 2)}, []int{0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := routing.Path(sel, m, tc.src, tc.dst)
			if len(got) != len(tc.path) {
				t.Fatalf("path %v, want %v", got, tc.path)
			}
			for i := range got {
				if got[i] != tc.path[i] {
					t.Fatalf("path %v, want %v", got, tc.path)
				}
			}
			for i := 0; i+1 < len(got); i++ {
				if c := sel.VCClass(got[i], got[i+1], tc.dst); c != tc.classes[i] {
					t.Errorf("hop %d (%d->%d): class %d, want %d", i, got[i], got[i+1], c, tc.classes[i])
				}
			}
		})
	}
}

// TestTurnModelPanicsShareTheCapabilityMessage pins the deduped
// topology-level rejection: the genuinely mesh-only entry points all
// refuse a torus with the same message shape.
func TestTurnModelPanicsShareTheCapabilityMessage(t *testing.T) {
	m := topology.NewTorus(4, 4)
	expectPanic := func(want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("no panic, want %q", want)
				return
			}
			if msg, ok := r.(string); !ok || msg != want {
				t.Errorf("panic %v, want %q", r, want)
			}
		}()
		fn()
	}
	expectPanic("topology: the west-first turn model requires a mesh without wraparound links, got torus 4x4",
		func() { routing.NewWestFirst(m) })
	expectPanic("topology: the odd-even turn model requires a mesh without wraparound links, got torus 4x4",
		func() { routing.NewOddEven(m) })
}
