// Package routing implements the unicast routing functions underneath
// the broadcast algorithms: dimension-order routing (used by RD and
// EDN), the west-first turn model family (used by AB), and the
// odd-even turn model as an alternative adaptive substrate. A routing
// function is a Selector that, at each node, returns the candidate
// next hops toward a destination in preference order; deterministic
// functions return exactly one candidate.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Selector is a minimal routing function bound to a mesh. NextHops
// returns the permitted next nodes from cur toward dst in preference
// order; it returns nil only when cur == dst. Every candidate must be
// one hop closer to dst (minimal routing).
type Selector interface {
	Name() string
	NextHops(cur, dst topology.NodeID) []topology.NodeID
}

// HopAppender is the allocation-free fast path of a Selector: the
// candidates are appended to a caller-provided buffer instead of a
// fresh slice. The network's header-advance loop asks for this
// interface and reuses one scratch buffer per network, so routing a
// hop costs no allocation; NextHops remains the simple portable form
// (and is equivalent to AppendNextHops(nil, …)). All selectors in
// this package implement it.
type HopAppender interface {
	AppendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID
}

// Hop is one routing candidate with its directed channel already
// resolved: the next node plus the channel cur → next. Resolving the
// channel inside the routing function is nearly free — the coordinate
// walk already knows the hop's dimension and direction — where the
// network would otherwise re-derive both from the endpoint pair
// (Mesh.Channel) for every candidate of every header advance.
type Hop struct {
	Node topology.NodeID
	Ch   topology.ChannelID
}

// ChannelAppender is the channel-resolved fast path of a Selector:
// AppendNextChannels appends exactly the candidates AppendNextHops
// returns, in the same preference order, each with its directed
// channel attached. All selectors in this package implement it.
type ChannelAppender interface {
	AppendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop
}

// Path expands a selector into a concrete path from src to dst by
// always taking the first candidate. The returned path includes both
// endpoints. It panics if the selector stalls or wanders, which would
// be a routing-function bug.
func Path(s Selector, m *topology.Mesh, src, dst topology.NodeID) []topology.NodeID {
	path := []topology.NodeID{src}
	cur := src
	for steps := 0; cur != dst; steps++ {
		if steps > m.Nodes() {
			panic(fmt.Sprintf("routing: %s looping from %d to %d", s.Name(), src, dst))
		}
		cands := s.NextHops(cur, dst)
		if len(cands) == 0 {
			panic(fmt.Sprintf("routing: %s stalled at %d short of %d", s.Name(), cur, dst))
		}
		cur = cands[0]
		path = append(path, cur)
	}
	return path
}

// DOR is deterministic dimension-order routing: the message corrects
// its coordinate offsets one dimension at a time in a fixed order
// (XYZ by default). It is the substrate of RD and EDN in the paper.
type DOR struct {
	m     *topology.Mesh
	order []int
}

// NewDOR returns dimension-order routing over m. order lists the
// dimensions in correction order; empty means 0,1,2,…
func NewDOR(m *topology.Mesh, order ...int) *DOR {
	if len(order) == 0 {
		order = make([]int, m.NDims())
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != m.NDims() {
		panic(fmt.Sprintf("routing: DOR order has %d dims, mesh has %d", len(order), m.NDims()))
	}
	seen := make([]bool, m.NDims())
	for _, d := range order {
		if d < 0 || d >= m.NDims() || seen[d] {
			panic("routing: DOR order must be a permutation of the dimensions")
		}
		seen[d] = true
	}
	return &DOR{m: m, order: append([]int(nil), order...)}
}

// Name implements Selector.
func (r *DOR) Name() string { return "dor" }

// NextHops implements Selector. The single candidate corrects the
// first out-of-place dimension in the configured order. On a torus
// the shorter modular direction is taken (ties go positive).
func (r *DOR) NextHops(cur, dst topology.NodeID) []topology.NodeID {
	return r.AppendNextHops(nil, cur, dst)
}

// AppendNextHops implements HopAppender.
func (r *DOR) AppendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID {
	for _, d := range r.order {
		cc := r.m.CoordAxis(cur, d)
		dc := r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		k := r.m.Dim(d)
		step := 1
		if dc < cc {
			step = -1
		}
		if r.m.Wrap() && k >= 3 {
			forward := ((dc - cc) + k) % k
			if forward <= k-forward {
				step = 1
			} else {
				step = -1
			}
		}
		return append(buf, r.m.Step(cur, d, step))
	}
	return buf
}

// AppendNextChannels implements ChannelAppender: the same single
// candidate as AppendNextHops, with its channel emitted from the
// (dimension, direction) pair the walk just computed.
func (r *DOR) AppendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop {
	for _, d := range r.order {
		cc := r.m.CoordAxis(cur, d)
		dc := r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		k := r.m.Dim(d)
		step := 1
		if dc < cc {
			step = -1
		}
		if r.m.Wrap() && k >= 3 {
			forward := ((dc - cc) + k) % k
			if forward <= k-forward {
				step = 1
			} else {
				step = -1
			}
		}
		dir := 0
		if step < 0 {
			dir = 1
		}
		return append(buf, Hop{Node: r.m.Step(cur, d, step), Ch: r.m.DirChannel(cur, d, dir)})
	}
	return buf
}
