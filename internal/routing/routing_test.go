package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// checkMinimal verifies every candidate returned by the selector is
// one hop closer to the destination, for every (src, dst) pair.
func checkMinimal(t *testing.T, m *topology.Mesh, s Selector) {
	t.Helper()
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			a, b := topology.NodeID(src), topology.NodeID(dst)
			if a == b {
				if got := s.NextHops(a, b); got != nil {
					t.Fatalf("%s: NextHops(self) = %v", s.Name(), got)
				}
				continue
			}
			cands := s.NextHops(a, b)
			if len(cands) == 0 {
				t.Fatalf("%s: no candidates %d -> %d", s.Name(), a, b)
			}
			for _, c := range cands {
				if m.Channel(a, c) == topology.InvalidChannel {
					t.Fatalf("%s: non-adjacent hop %d -> %d", s.Name(), a, c)
				}
				if m.Distance(c, b) != m.Distance(a, b)-1 {
					t.Fatalf("%s: non-minimal hop %d -> %d toward %d", s.Name(), a, c, b)
				}
			}
		}
	}
}

func TestDORMinimal(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {3, 4, 2}, {5, 1, 3}} {
		m := topology.NewMesh(dims...)
		checkMinimal(t, m, NewDOR(m))
	}
}

func TestDORIsDeterministicAndDimensionOrdered(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	r := NewDOR(m)
	path := Path(r, m, m.ID(3, 2, 1), m.ID(0, 0, 0))
	// Dimension 0 must be fully corrected before dimension 1 moves.
	lastDim := -1
	for i := 1; i < len(path); i++ {
		var dim int
		for d := 0; d < 3; d++ {
			if m.CoordAxis(path[i], d) != m.CoordAxis(path[i-1], d) {
				dim = d
			}
		}
		if dim < lastDim {
			t.Fatalf("path corrected dim %d after dim %d", dim, lastDim)
		}
		lastDim = dim
	}
	if len(path) != 7 {
		t.Fatalf("path length = %d, want 7 nodes", len(path))
	}
}

func TestDORCustomOrder(t *testing.T) {
	m := topology.NewMesh(4, 4)
	r := NewDOR(m, 1, 0) // y first
	hops := r.NextHops(m.ID(0, 0), m.ID(2, 2))
	if len(hops) != 1 || hops[0] != m.ID(0, 1) {
		t.Fatalf("y-first DOR first hop = %v", hops)
	}
}

func TestDORPanicsOnBadOrder(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for _, order := range [][]int{{0}, {0, 0}, {0, 5}} {
		order := order
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v did not panic", order)
				}
			}()
			NewDOR(m, order...)
		}()
	}
}

func TestWestFirstMinimal(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {3, 4, 2}, {5, 3, 3}} {
		m := topology.NewMesh(dims...)
		checkMinimal(t, m, NewWestFirst(m))
	}
}

// TestWestFirstTurnDiscipline verifies the turn-model phase rules on
// every adaptive branch: no west (-x) move ever follows a non-west
// move, and no x/y move ever follows a z move (Z is routed last and
// never left).
func TestWestFirstTurnDiscipline(t *testing.T) {
	m := topology.NewMesh(6, 6, 6)
	r := NewWestFirst(m)
	f := func(sa, sb, sc, da, db, dc uint8) bool {
		src := m.ID(int(sa)%6, int(sb)%6, int(sc)%6)
		dst := m.ID(int(da)%6, int(db)%6, int(dc)%6)
		if src == dst {
			return true
		}
		type state struct {
			cur          topology.NodeID
			leftWest     bool
			enteredThird bool
		}
		seen := map[state]bool{}
		ok := true
		var walk func(cur topology.NodeID, leftWest, enteredThird bool)
		walk = func(cur topology.NodeID, leftWest, enteredThird bool) {
			if cur == dst || !ok {
				return
			}
			st := state{cur, leftWest, enteredThird}
			if seen[st] {
				return
			}
			seen[st] = true
			for _, next := range r.NextHops(cur, dst) {
				west := m.CoordAxis(next, 0) < m.CoordAxis(cur, 0)
				third := m.CoordAxis(next, 2) != m.CoordAxis(cur, 2)
				if west && leftWest {
					ok = false // a turn back into west
					return
				}
				if !third && enteredThird {
					ok = false // left the Z sink layer
					return
				}
				walk(next, leftWest || !west, enteredThird || third)
			}
		}
		walk(src, false, false)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWestFirstAdaptivityOffersAlternatives(t *testing.T) {
	m := topology.NewMesh(4, 4)
	r := NewWestFirst(m)
	// Pure-positive offsets in two dims: both positive moves offered.
	hops := r.NextHops(m.ID(0, 0), m.ID(3, 3))
	if len(hops) != 2 {
		t.Fatalf("adaptive candidates = %d, want 2", len(hops))
	}
}

func TestWestFirstRejectsTorus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("west-first on torus did not panic")
		}
	}()
	NewWestFirst(topology.NewTorus(4, 4))
}

func TestSegmentLegal(t *testing.T) {
	m := topology.NewMesh(8, 8)
	r := NewWestFirst(m)
	src := m.ID(2, 3)
	low, high := m.ID(0, 0), m.ID(7, 7)
	if !r.SegmentLegal(src, low, high) {
		t.Error("all-negative then all-positive journey reported illegal")
	}
	if r.SegmentLegal(src, m.ID(7, 0), m.ID(0, 7)) {
		t.Error("positive-then-negative journey reported legal")
	}
}

func TestOddEvenMinimal(t *testing.T) {
	for _, dims := range [][]int{{4, 4}, {5, 3}, {4, 4, 3}} {
		m := topology.NewMesh(dims...)
		checkMinimal(t, m, NewOddEven(m))
	}
}

// TestOddEvenTurnRules walks every pair under odd-even routing and
// checks the prohibited turns never occur: EN/ES at even columns,
// NW/SW at odd columns.
func TestOddEvenTurnRules(t *testing.T) {
	m := topology.NewMesh(6, 6)
	r := NewOddEven(m)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			// Walk every branch.
			type state struct{ cur, prev topology.NodeID }
			var walk func(cur, prev topology.NodeID)
			seen := map[state]bool{}
			walk = func(cur, prev topology.NodeID) {
				if cur == topology.NodeID(dst) {
					return
				}
				st := state{cur, prev}
				if seen[st] {
					return
				}
				seen[st] = true
				for _, next := range r.NextHops(cur, topology.NodeID(dst)) {
					if prev != topology.NodeID(-1) {
						checkTurn(t, m, prev, cur, next)
					}
					walk(next, cur)
				}
			}
			walk(topology.NodeID(src), topology.NodeID(-1))
		}
	}
}

func checkTurn(t *testing.T, m *topology.Mesh, a, b, c topology.NodeID) {
	t.Helper()
	dx1 := m.CoordAxis(b, 0) - m.CoordAxis(a, 0)
	dy1 := m.CoordAxis(b, 1) - m.CoordAxis(a, 1)
	dx2 := m.CoordAxis(c, 0) - m.CoordAxis(b, 0)
	dy2 := m.CoordAxis(c, 1) - m.CoordAxis(b, 1)
	col := m.CoordAxis(b, 0)
	eastThenVertical := dx1 > 0 && dy2 != 0
	verticalThenWest := dy1 != 0 && dx2 < 0
	if eastThenVertical && col%2 == 0 {
		t.Fatalf("EN/ES turn at even column %d (%d->%d->%d)", col, a, b, c)
	}
	if verticalThenWest && col%2 == 1 {
		t.Fatalf("NW/SW turn at odd column %d (%d->%d->%d)", col, a, b, c)
	}
}

func TestOddEvenRejectsBadMeshes(t *testing.T) {
	for i, fn := range []func(){
		func() { NewOddEven(topology.NewMesh(8)) },
		func() { NewOddEven(topology.NewTorus(4, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestPathReachesDestination property-checks full path expansion for
// all three selectors.
func TestPathReachesDestination(t *testing.T) {
	m := topology.NewMesh(5, 4, 3)
	sels := []Selector{NewDOR(m), NewWestFirst(m), NewOddEven(m)}
	n := m.Nodes()
	f := func(a, b uint16, which uint8) bool {
		src, dst := topology.NodeID(int(a)%n), topology.NodeID(int(b)%n)
		s := sels[int(which)%len(sels)]
		path := Path(s, m, src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		// Minimal: path length equals distance + 1.
		return len(path) == m.Distance(src, dst)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
