package routing

import (
	"repro/internal/topology"
)

// Torus-capable turn models. The mesh turn models' deadlock proofs
// break the moment a dimension carries wraparound links (the ring
// closes the very cycles the turn prohibitions cut), so the torus
// variants route wrap dimensions FIRST, deterministically, with
// minimal dateline steps — acyclic per ring under the dateline VC
// classes, ordered across rings by dimension index — and only then
// hand the residual non-wrap dimensions to the unchanged mesh turn
// model. Dependencies therefore flow wrap-subnetwork → mesh-
// subnetwork and never back, so the combined channel dependency
// graph stays acyclic; cdg.DeadlockFree verifies this mechanically
// for every shipped shape. On a fully wrapped torus no residual
// dimensions remain and both variants reduce to minimal dateline
// routing — exactly the "fall back to dateline routing along wrap
// dimensions" contract.

// meshFastPath is what the residual-dimension mesh turn model must
// offer the torus scaffolding: both allocation-free candidate forms.
type meshFastPath interface {
	HopAppender
	ChannelAppender
}

// torusTurnModel is the shared wrap-first scaffolding of the torus
// turn models.
type torusTurnModel struct {
	m    *topology.Mesh
	mesh meshFastPath // the mesh turn model for the residual dimensions
}

// appendNextHops corrects wrap dimensions in increasing order with
// one deterministic dateline step, then delegates to the mesh model
// (which sees every wrap dimension already aligned).
func (r *torusTurnModel) appendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID {
	for d := 0; d < r.m.NDims(); d++ {
		if !r.m.WrapDim(d) {
			continue
		}
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		return append(buf, datelineStep(r.m, cur, d, cc, dc))
	}
	return r.mesh.AppendNextHops(buf, cur, dst)
}

// appendNextChannels is appendNextHops with channels resolved in-walk.
func (r *torusTurnModel) appendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop {
	for d := 0; d < r.m.NDims(); d++ {
		if !r.m.WrapDim(d) {
			continue
		}
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		return append(buf, datelineHop(r.m, cur, d, cc, dc))
	}
	return r.mesh.AppendNextChannels(buf, cur, dst)
}

// TorusWestFirst is the torus-capable west-first turn model: minimal
// dateline routing along wraparound dimensions, the ordinary
// west-first adaptive model on whatever dimensions have no wrap
// links. Deadlock-free with two or more virtual channels under its
// dateline VC classes.
type TorusWestFirst struct {
	torusTurnModel
}

// NewTorusWestFirst returns the torus-capable west-first routing
// function over m. It accepts any mesh; without wrap links it
// behaves exactly like NewWestFirst.
func NewTorusWestFirst(m *topology.Mesh) *TorusWestFirst {
	return &TorusWestFirst{torusTurnModel{m: m, mesh: &WestFirst{m: m}}}
}

// Name implements Selector.
func (r *TorusWestFirst) Name() string { return "west-first-torus" }

// NextHops implements Selector.
func (r *TorusWestFirst) NextHops(cur, dst topology.NodeID) []topology.NodeID {
	return r.appendNextHops(nil, cur, dst)
}

// AppendNextHops implements HopAppender.
func (r *TorusWestFirst) AppendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID {
	return r.appendNextHops(buf, cur, dst)
}

// AppendNextChannels implements ChannelAppender.
func (r *TorusWestFirst) AppendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop {
	return r.appendNextChannels(buf, cur, dst)
}

// VCClasses implements VCPolicy.
func (r *TorusWestFirst) VCClasses() int { return 2 }

// VCClass implements VCPolicy.
func (r *TorusWestFirst) VCClass(cur, next, dst topology.NodeID) int {
	return datelineClass(r.m, cur, next, dst)
}

// TorusOddEven is the torus-capable odd-even turn model: minimal
// dateline routing along wraparound dimensions, Chiu's odd-even
// model on the residual mesh dimensions.
type TorusOddEven struct {
	torusTurnModel
}

// NewTorusOddEven returns the torus-capable odd-even routing function
// over m, which must have at least two dimensions.
func NewTorusOddEven(m *topology.Mesh) *TorusOddEven {
	if m.NDims() < 2 {
		panic("routing: odd-even needs at least two dimensions")
	}
	return &TorusOddEven{torusTurnModel{m: m, mesh: &OddEven{m: m}}}
}

// Name implements Selector.
func (r *TorusOddEven) Name() string { return "odd-even-torus" }

// NextHops implements Selector.
func (r *TorusOddEven) NextHops(cur, dst topology.NodeID) []topology.NodeID {
	return r.appendNextHops(nil, cur, dst)
}

// AppendNextHops implements HopAppender.
func (r *TorusOddEven) AppendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID {
	return r.appendNextHops(buf, cur, dst)
}

// AppendNextChannels implements ChannelAppender.
func (r *TorusOddEven) AppendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop {
	return r.appendNextChannels(buf, cur, dst)
}

// VCClasses implements VCPolicy.
func (r *TorusOddEven) VCClasses() int { return 2 }

// VCClass implements VCPolicy.
func (r *TorusOddEven) VCClass(cur, next, dst topology.NodeID) int {
	return datelineClass(r.m, cur, next, dst)
}

// WestFirstFor returns the west-first routing function appropriate
// for m: the mesh turn model on a mesh, the torus-capable variant on
// a torus. The engine, metrics and scenario layers route AB's
// adaptive sends through this, so one algorithm set runs unchanged on
// both substrates.
func WestFirstFor(m *topology.Mesh) Selector {
	if m.Wrap() {
		return NewTorusWestFirst(m)
	}
	return NewWestFirst(m)
}

// OddEvenFor returns the odd-even routing function appropriate for m.
func OddEvenFor(m *topology.Mesh) Selector {
	if m.Wrap() {
		return NewTorusOddEven(m)
	}
	return NewOddEven(m)
}

var (
	_ Selector        = (*TorusWestFirst)(nil)
	_ HopAppender     = (*TorusWestFirst)(nil)
	_ ChannelAppender = (*TorusWestFirst)(nil)
	_ VCPolicy        = (*TorusWestFirst)(nil)
	_ Selector        = (*TorusOddEven)(nil)
	_ HopAppender     = (*TorusOddEven)(nil)
	_ ChannelAppender = (*TorusOddEven)(nil)
	_ VCPolicy        = (*TorusOddEven)(nil)
)
