package routing

import (
	"fmt"

	"repro/internal/topology"
)

// WestFirst implements the west-first turn model (Glass & Ni) the AB
// algorithm runs on: within the XY plane a message performs all its
// west (-x) hops first and afterwards routes fully adaptively among
// east and north/south — exactly the prohibition of the (south,west)
// and (north,west) turns the paper cites. Dimensions beyond the
// second are corrected last, deterministically, after XY alignment.
//
// The 3D extension keeps the turn-model proof intact: no worm ever
// turns into a westward channel (the 2D argument), and Z channels are
// a sink layer — entered from X/Y but never left back into them — so
// the combined channel dependency graph stays acyclic. This matters
// beyond unicast: AB's coded-path snakes take (east,south) and
// (east,north) turns that a stricter "negative-first" rule would
// forbid, and mixing the two turn sets is what produces cyclic waits.
type WestFirst struct {
	m *topology.Mesh
}

// NewWestFirst returns the west-first/negative-first adaptive routing
// function over m. It panics on a wrapped mesh: the turn model's
// deadlock-freedom argument requires a mesh without wraparound links
// (use NewTorusWestFirst or WestFirstFor on a torus).
func NewWestFirst(m *topology.Mesh) *WestFirst {
	if err := m.MeshOnly("the west-first turn model"); err != nil {
		panic(err.Error())
	}
	return &WestFirst{m: m}
}

// Name implements Selector.
func (r *WestFirst) Name() string { return "west-first" }

// NextHops implements Selector. West hops come first; then east and
// north/south adaptively (largest remaining offset preferred); then
// the remaining dimensions in order.
func (r *WestFirst) NextHops(cur, dst topology.NodeID) []topology.NodeID {
	return r.AppendNextHops(nil, cur, dst)
}

// AppendNextHops implements HopAppender. Phase 2 offers at most two
// candidates (east and one vertical), so the "largest remaining
// offset first, stable on ties" preference of the original sort is a
// single comparison with east winning ties.
func (r *WestFirst) AppendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID {
	// Phase 1: all west hops.
	cx, dx := r.m.CoordAxis(cur, 0), r.m.CoordAxis(dst, 0)
	if dx < cx {
		return append(buf, r.m.Step(cur, 0, -1))
	}
	// Phase 2: adaptive among east and the second dimension.
	var east, vert topology.NodeID
	eastOff, vertOff := 0, 0
	if dx > cx {
		east, eastOff = r.m.Step(cur, 0, +1), dx-cx
	}
	if r.m.NDims() >= 2 {
		cy, dy := r.m.CoordAxis(cur, 1), r.m.CoordAxis(dst, 1)
		switch {
		case dy > cy:
			vert, vertOff = r.m.Step(cur, 1, +1), dy-cy
		case dy < cy:
			vert, vertOff = r.m.Step(cur, 1, -1), cy-dy
		}
	}
	switch {
	case eastOff > 0 && vertOff > 0:
		if vertOff > eastOff {
			return append(buf, vert, east)
		}
		return append(buf, east, vert)
	case eastOff > 0:
		return append(buf, east)
	case vertOff > 0:
		return append(buf, vert)
	}
	// Phase 3: remaining dimensions, dimension-ordered.
	for d := 2; d < r.m.NDims(); d++ {
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		switch {
		case dc > cc:
			return append(buf, r.m.Step(cur, d, +1))
		case dc < cc:
			return append(buf, r.m.Step(cur, d, -1))
		}
	}
	return buf
}

// AppendNextChannels implements ChannelAppender: the same candidates
// as AppendNextHops in the same order, channels resolved in-walk.
func (r *WestFirst) AppendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop {
	// Phase 1: all west hops.
	cx, dx := r.m.CoordAxis(cur, 0), r.m.CoordAxis(dst, 0)
	if dx < cx {
		return append(buf, Hop{Node: r.m.Step(cur, 0, -1), Ch: r.m.DirChannel(cur, 0, 1)})
	}
	// Phase 2: adaptive among east and the second dimension.
	var east, vert Hop
	eastOff, vertOff := 0, 0
	if dx > cx {
		east = Hop{Node: r.m.Step(cur, 0, +1), Ch: r.m.DirChannel(cur, 0, 0)}
		eastOff = dx - cx
	}
	if r.m.NDims() >= 2 {
		cy, dy := r.m.CoordAxis(cur, 1), r.m.CoordAxis(dst, 1)
		switch {
		case dy > cy:
			vert = Hop{Node: r.m.Step(cur, 1, +1), Ch: r.m.DirChannel(cur, 1, 0)}
			vertOff = dy - cy
		case dy < cy:
			vert = Hop{Node: r.m.Step(cur, 1, -1), Ch: r.m.DirChannel(cur, 1, 1)}
			vertOff = cy - dy
		}
	}
	switch {
	case eastOff > 0 && vertOff > 0:
		if vertOff > eastOff {
			return append(buf, vert, east)
		}
		return append(buf, east, vert)
	case eastOff > 0:
		return append(buf, east)
	case vertOff > 0:
		return append(buf, vert)
	}
	// Phase 3: remaining dimensions, dimension-ordered.
	for d := 2; d < r.m.NDims(); d++ {
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		switch {
		case dc > cc:
			return append(buf, Hop{Node: r.m.Step(cur, d, +1), Ch: r.m.DirChannel(cur, d, 0)})
		case dc < cc:
			return append(buf, Hop{Node: r.m.Step(cur, d, -1), Ch: r.m.DirChannel(cur, d, 1)})
		}
	}
	return buf
}

// SegmentLegal reports whether a worm travelling from a to b and then
// from b to c can be routed as a single west-first worm: the
// concatenated journey must still be "all negative hops before all
// positive hops". The AB algorithm uses this to decide whether its
// first step can visit the near corner and the opposite corner with
// one coded-path message (control field 10) or needs two messages.
func (r *WestFirst) SegmentLegal(a, b, c topology.NodeID) bool {
	// Segment a->b may order hops freely, as may b->c; a single worm
	// is legal iff a->b needs no positive hop or b->c needs no
	// negative hop is too weak: the safe sufficient condition used
	// here is that a->b is all-negative and b->c is all-positive.
	for d := 0; d < r.m.NDims(); d++ {
		if r.m.CoordAxis(b, d) > r.m.CoordAxis(a, d) {
			return false
		}
		if r.m.CoordAxis(c, d) < r.m.CoordAxis(b, d) {
			return false
		}
	}
	return true
}

// OddEven implements Chiu's odd-even turn model in the first two
// dimensions of a mesh (remaining dimensions, if any, are corrected
// first, dimension-ordered, which preserves deadlock freedom: the
// z-subnetwork is acyclic and feeds the 2D odd-even subnetwork).
// Rules (columns are x values): an east-north or east-south turn is
// forbidden at even columns; a north-west or south-west turn is
// forbidden at odd columns. The package offers it as the alternative
// adaptive substrate the paper mentions ([7]) for the AB algorithm.
type OddEven struct {
	m *topology.Mesh
}

// NewOddEven returns odd-even adaptive routing over m, which must have
// at least two dimensions and no wraparound (use NewTorusOddEven or
// OddEvenFor on a torus).
func NewOddEven(m *topology.Mesh) *OddEven {
	if m.NDims() < 2 {
		panic("routing: odd-even needs at least two dimensions")
	}
	if err := m.MeshOnly("the odd-even turn model"); err != nil {
		panic(err.Error())
	}
	return &OddEven{m: m}
}

// Name implements Selector.
func (r *OddEven) Name() string { return "odd-even" }

// NextHops implements Selector.
func (r *OddEven) NextHops(cur, dst topology.NodeID) []topology.NodeID {
	return r.AppendNextHops(nil, cur, dst)
}

// AppendNextHops implements HopAppender.
func (r *OddEven) AppendNextHops(buf []topology.NodeID, cur, dst topology.NodeID) []topology.NodeID {
	// Correct dimensions >= 2 first (dimension-ordered).
	for d := r.m.NDims() - 1; d >= 2; d-- {
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		delta := 1
		if dc < cc {
			delta = -1
		}
		return append(buf, r.m.Step(cur, d, delta))
	}

	cx, cy := r.m.CoordAxis(cur, 0), r.m.CoordAxis(cur, 1)
	dx, dy := r.m.CoordAxis(dst, 0), r.m.CoordAxis(dst, 1)
	ex, ey := dx-cx, dy-cy
	if ex == 0 && ey == 0 {
		return buf
	}

	n := len(buf)
	if ex > 0 {
		// Heading east. EN/ES turns are forbidden at even columns, so
		// vertical moves are offered only at odd columns, and a packet
		// that still needs vertical correction must not step into an
		// even destination column (it could never legally turn there).
		mustTurnHere := ey != 0 && cx+1 == dx && dx%2 == 0
		if !mustTurnHere {
			buf = append(buf, r.m.Step(cur, 0, +1))
		}
		if ey != 0 && cx%2 == 1 {
			buf = append(buf, r.vstep(cur, ey))
		}
	} else if ex < 0 {
		// Heading west: NW/SW turns are forbidden at odd columns, so
		// go vertical only at even columns; west moves always allowed.
		if ey != 0 && cx%2 == 0 {
			buf = append(buf, r.vstep(cur, ey))
		}
		buf = append(buf, r.m.Step(cur, 0, -1))
	} else {
		// Aligned in x: finish the column.
		buf = append(buf, r.vstep(cur, ey))
	}
	if len(buf) == n {
		panic(fmt.Sprintf("routing: odd-even stalled at %d toward %d", cur, dst))
	}
	return buf
}

func (r *OddEven) vstep(cur topology.NodeID, ey int) topology.NodeID {
	if ey > 0 {
		return r.m.Step(cur, 1, +1)
	}
	return r.m.Step(cur, 1, -1)
}

// AppendNextChannels implements ChannelAppender: the same candidates
// as AppendNextHops in the same order, channels resolved in-walk.
func (r *OddEven) AppendNextChannels(buf []Hop, cur, dst topology.NodeID) []Hop {
	// Correct dimensions >= 2 first (dimension-ordered).
	for d := r.m.NDims() - 1; d >= 2; d-- {
		cc, dc := r.m.CoordAxis(cur, d), r.m.CoordAxis(dst, d)
		if cc == dc {
			continue
		}
		if dc > cc {
			return append(buf, Hop{Node: r.m.Step(cur, d, +1), Ch: r.m.DirChannel(cur, d, 0)})
		}
		return append(buf, Hop{Node: r.m.Step(cur, d, -1), Ch: r.m.DirChannel(cur, d, 1)})
	}

	cx, cy := r.m.CoordAxis(cur, 0), r.m.CoordAxis(cur, 1)
	dx, dy := r.m.CoordAxis(dst, 0), r.m.CoordAxis(dst, 1)
	ex, ey := dx-cx, dy-cy
	if ex == 0 && ey == 0 {
		return buf
	}

	n := len(buf)
	if ex > 0 {
		// See AppendNextHops for the turn rules.
		mustTurnHere := ey != 0 && cx+1 == dx && dx%2 == 0
		if !mustTurnHere {
			buf = append(buf, Hop{Node: r.m.Step(cur, 0, +1), Ch: r.m.DirChannel(cur, 0, 0)})
		}
		if ey != 0 && cx%2 == 1 {
			buf = append(buf, r.vhop(cur, ey))
		}
	} else if ex < 0 {
		if ey != 0 && cx%2 == 0 {
			buf = append(buf, r.vhop(cur, ey))
		}
		buf = append(buf, Hop{Node: r.m.Step(cur, 0, -1), Ch: r.m.DirChannel(cur, 0, 1)})
	} else {
		buf = append(buf, r.vhop(cur, ey))
	}
	if len(buf) == n {
		panic(fmt.Sprintf("routing: odd-even stalled at %d toward %d", cur, dst))
	}
	return buf
}

func (r *OddEven) vhop(cur topology.NodeID, ey int) Hop {
	if ey > 0 {
		return Hop{Node: r.m.Step(cur, 1, +1), Ch: r.m.DirChannel(cur, 1, 0)}
	}
	return Hop{Node: r.m.Step(cur, 1, -1), Ch: r.m.DirChannel(cur, 1, 1)}
}

var (
	_ Selector        = (*DOR)(nil)
	_ Selector        = (*WestFirst)(nil)
	_ Selector        = (*OddEven)(nil)
	_ HopAppender     = (*DOR)(nil)
	_ HopAppender     = (*WestFirst)(nil)
	_ HopAppender     = (*OddEven)(nil)
	_ ChannelAppender = (*DOR)(nil)
	_ ChannelAppender = (*WestFirst)(nil)
	_ ChannelAppender = (*OddEven)(nil)
	_ ChannelAppender = (*DatelineDOR)(nil)
)
