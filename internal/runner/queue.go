package runner

// Executor is the serving-tier counterpart to Map/ForEach: a
// LONG-LIVED priority work queue over a Pool's concurrency bound.
// Where Map orchestrates one batch whose size is known up front, an
// always-on service (cmd/wormsimd) receives work forever, one request
// at a time, with callers of different urgency sharing the same
// workers — so the executor adds the three things a batch map never
// needs:
//
//   - per-task priority: higher-priority submissions overtake queued
//     lower-priority ones (FIFO among equals, so equal-priority work
//     is never starved or reordered);
//   - a bounded admission queue: Submit never blocks and never buffers
//     unboundedly — when the queue is full it fails fast with
//     ErrQueueFull, which the service turns into explicit backpressure
//     (HTTP 429 + Retry-After) instead of collapsing under load;
//   - graceful draining: Close stops admission, runs everything
//     already accepted to completion, and only then returns — the
//     SIGTERM contract of a daemon that must not drop accepted work.
//
// Determinism is unaffected: the executor decides only WHEN a task
// runs, and every task is itself a deterministic simulation whose
// output is pinned by its spec key.

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Submit when the bounded admission queue
// is at capacity. Callers should shed load (retry later), not spin.
var ErrQueueFull = errors.New("runner: admission queue full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("runner: executor closed")

// Executor runs submitted tasks on a fixed set of workers with
// priority-ordered dispatch and a bounded admission queue. Construct
// with NewExecutor; all methods are safe for concurrent use.
type Executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   taskHeap
	cap     int
	seq     uint64
	running int
	closed  bool
	wg      sync.WaitGroup
}

// task is one queued unit of work.
type task struct {
	prio int
	seq  uint64 // admission order; ties break FIFO
	fn   func()
}

// taskHeap is a max-heap by (priority, then admission order).
type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = task{} // release the closure
	*h = old[:n-1]
	return t
}

// NewExecutor starts p.Procs() workers serving a queue that admits at
// most queueCap waiting tasks (queueCap <= 0 means 1). Tasks already
// handed to a worker do not count against the queue bound.
func NewExecutor(p *Pool, queueCap int) *Executor {
	if queueCap <= 0 {
		queueCap = 1
	}
	e := &Executor{cap: queueCap}
	e.cond = sync.NewCond(&e.mu)
	workers := p.Procs()
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.work()
	}
	return e
}

func (e *Executor) work() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		t := heap.Pop(&e.queue).(task)
		e.running++
		e.mu.Unlock()
		t.fn()
		e.mu.Lock()
		e.running--
		e.mu.Unlock()
	}
}

// Submit enqueues fn at the given priority (higher runs first; equal
// priorities run in admission order). It never blocks: when the
// admission queue is full it returns ErrQueueFull immediately, and
// after Close it returns ErrClosed. fn must not panic; a panicking
// task takes its worker down.
func (e *Executor) Submit(priority int, fn func()) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if len(e.queue) >= e.cap {
		return ErrQueueFull
	}
	e.seq++
	heap.Push(&e.queue, task{prio: priority, seq: e.seq, fn: fn})
	e.cond.Signal()
	return nil
}

// QueueDepth reports the number of admitted tasks not yet handed to a
// worker.
func (e *Executor) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// InFlight reports the number of tasks currently executing.
func (e *Executor) InFlight() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.running
}

// Close stops admission, lets every already-admitted task run to
// completion, and returns once all workers have exited. It is
// idempotent.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
