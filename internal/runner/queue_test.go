package runner

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateExecutor returns a single-worker executor whose worker is
// parked inside a task until release is called — the setup every
// ordering and admission test needs: with the one worker busy,
// everything submitted afterwards stays queued.
func gateExecutor(t *testing.T, queueCap int) (e *Executor, release func()) {
	t.Helper()
	e = NewExecutor(New(1), queueCap)
	started := make(chan struct{})
	gate := make(chan struct{})
	if err := e.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	var once sync.Once
	return e, func() { once.Do(func() { close(gate) }) }
}

func TestExecutorRunsEverythingSubmitted(t *testing.T) {
	e := NewExecutor(New(4), 128)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		for e.Submit(i%3, func() { ran.Add(1) }) == ErrQueueFull {
			time.Sleep(time.Millisecond)
		}
	}
	e.Close()
	if got := ran.Load(); got != 100 {
		t.Errorf("ran %d of 100 submitted tasks", got)
	}
}

func TestExecutorDispatchesByPriorityThenFIFO(t *testing.T) {
	e, release := gateExecutor(t, 16)
	var mu sync.Mutex
	var order []int
	submit := func(prio, id int) {
		t.Helper()
		if err := e.Submit(prio, func() {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Admitted while the worker is parked: dispatch order is pure
	// (priority, admission) order, untouched by scheduling races.
	submit(1, 10)
	submit(5, 50)
	submit(3, 30)
	submit(5, 51) // equal priority: FIFO after 50
	submit(1, 11)
	release()
	e.Close()
	want := []int{50, 51, 30, 10, 11}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

func TestExecutorBoundedAdmission(t *testing.T) {
	e, release := gateExecutor(t, 2)
	defer func() { release(); e.Close() }()
	if err := e.Submit(0, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(0, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(0, func() {}); err != ErrQueueFull {
		t.Errorf("third queued submit: got %v, want ErrQueueFull", err)
	}
	if got := e.QueueDepth(); got != 2 {
		t.Errorf("QueueDepth = %d, want 2", got)
	}
	if got := e.InFlight(); got != 1 {
		t.Errorf("InFlight = %d, want 1 (the parked gate task)", got)
	}
}

func TestExecutorCloseDrainsAdmittedWork(t *testing.T) {
	e, release := gateExecutor(t, 16)
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		if err := e.Submit(0, func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	release()
	e.Close() // must not return before the 10 queued tasks finish
	if got := ran.Load(); got != 10 {
		t.Errorf("Close returned with %d of 10 admitted tasks run", got)
	}
	if err := e.Submit(0, func() {}); err != ErrClosed {
		t.Errorf("submit after Close: got %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}
