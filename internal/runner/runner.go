// Package runner is the parallel experiment orchestration layer: a
// deterministic worker pool that fans independent simulation
// replications out across CPU cores.
//
// Every figure and table of the reproduction is an aggregate over
// replications that share nothing but read-only inputs (the mesh, the
// planner, the timing config) — each replication builds its own
// discrete-event simulator, so they are embarrassingly parallel. The
// pool exploits that: [Map] runs n index-addressed jobs on up to
// Procs goroutines and returns the results in index order, so the
// caller's aggregation sees exactly the sequence a serial loop would
// have produced. Combined with [sim.Substream] — which derives each
// replication's RNG purely from (seed, replication) — the output of
// every experiment is bit-identical for any worker count.
//
// The package deliberately has no dependency on the simulation
// layers; it orchestrates arbitrary jobs and is the seam future
// scaling work (sharded sweeps, multi-backend dispatch) plugs into.
//
// Typical use:
//
//	pool := runner.New(procs).NotifyEach(progress.Tick)
//	results, err := runner.Map(pool, reps, func(i int) (float64, error) {
//	    rng := sim.Substream(seed, uint64(i))
//	    return runOneReplication(rng)
//	})
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool bounds the concurrency of experiment execution. The zero value
// is not useful; construct pools with New. A Pool is stateless across
// calls and safe for concurrent use by multiple goroutines.
type Pool struct {
	procs  int
	notify func()
}

// New returns a pool that runs at most procs jobs concurrently.
// procs <= 0 means runtime.GOMAXPROCS(0), i.e. one worker per
// available core — the right default for CPU-bound simulation.
func New(procs int) *Pool {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	return &Pool{procs: procs}
}

// Serial returns a single-worker pool. Map over a serial pool is an
// ordinary loop; it exists so callers can switch between serial and
// parallel execution without two code paths.
func Serial() *Pool { return New(1) }

// Procs returns the pool's concurrency bound.
func (p *Pool) Procs() int { return p.procs }

// NotifyEach returns a copy of p that calls fn after every completed
// job, from whichever worker finished it. fn must be safe for
// concurrent use ([Progress.Tick] is); a nil fn disables notification.
// The receiver is not modified, so one base pool can serve several
// sweeps with different progress sinks.
func (p *Pool) NotifyEach(fn func()) *Pool {
	q := *p
	q.notify = fn
	return &q
}

// Map runs job(0) … job(n-1) on up to p.Procs() workers and returns
// the n results in index order. It is MapCtx without cancellation.
func Map[T any](p *Pool, n int, job func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), p, n, job)
}

// MapCtx runs job(0) … job(n-1) on up to p.Procs() workers and
// returns the n results in index order. Which worker runs which index
// is scheduling-dependent, but the returned slice is not: job i's
// result always lands in slot i, so aggregating the slice front to
// back is bit-identical to running a serial loop.
//
// If any job returns an error, MapCtx stops handing out new indices,
// waits for in-flight jobs, and returns the error of the
// lowest-indexed failed job (deterministic when the failure does not
// race the shutdown). A panicking job propagates its panic to the
// caller.
//
// Cancelling ctx stops the dispatch of new indices; jobs already in
// flight run to completion (the pool cannot interrupt a simulation
// mid-event) and the workers are drained before MapCtx returns. When
// the run was cut short by cancellation and no job failed, the
// returned error is ctx.Err().
func MapCtx[T any](ctx context.Context, p *Pool, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]T, n)
	errs := make([]error, n)
	done := ctx.Done()

	workers := p.procs
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Fast path: no goroutines, no channels — identical
		// semantics, and keeps -procs 1 runs trivially debuggable.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := job(i)
			results[i] = r
			errs[i] = err
			if p.notify != nil {
				p.notify()
			}
			if err != nil {
				return nil, firstError(errs)
			}
		}
		return results, nil
	}

	var (
		next      atomic.Int64 // next index to hand out
		failed    atomic.Bool  // stop handing out new indices
		cancelled atomic.Bool  // ctx fired before the run completed
		panicMu   sync.Mutex
		panics    []any
		wg        sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					failed.Store(true)
					panicMu.Lock()
					// The re-panic below happens on the caller's
					// goroutine, so the faulting job's stack would
					// be lost — capture it here, where it is live.
					panics = append(panics, fmt.Sprintf("%v\n\njob goroutine stack:\n%s", v, debug.Stack()))
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				// Check cancellation only after confirming there is
				// still work to hand out: a cancel that lands once
				// the index space is exhausted must not discard a
				// fully computed result set.
				select {
				case <-done:
					cancelled.Store(true)
					return
				default:
				}
				r, err := job(i)
				results[i] = r
				errs[i] = err
				if err != nil {
					failed.Store(true)
				}
				if p.notify != nil {
					p.notify()
				}
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		panic(panics[0])
	}
	if failed.Load() {
		return nil, firstError(errs)
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return results, nil
}

// ForEach runs job(0) … job(n-1) on the pool for side effects only.
// Error semantics match Map.
func ForEach(p *Pool, n int, job func(i int) error) error {
	return ForEachCtx(context.Background(), p, n, job)
}

// ForEachCtx runs job(0) … job(n-1) on the pool for side effects
// only, with the cancellation semantics of MapCtx.
func ForEachCtx(ctx context.Context, p *Pool, n int, job func(i int) error) error {
	_, err := MapCtx(ctx, p, n, func(i int) (struct{}, error) {
		return struct{}{}, job(i)
	})
	return err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Progress is a concurrency-safe completed-of-total counter that
// forwards every advance to a reporting callback — the bridge between
// the pool's per-job notifications and a CLI's live progress line.
type Progress struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

// NewProgress returns a counter expecting total completions that
// reports each one to fn. A nil fn is allowed and merely counts.
func NewProgress(total int, fn func(done, total int)) *Progress {
	return &Progress{total: total, fn: fn}
}

// Tick records one completion and reports the new count. It is safe
// to call from multiple workers; reports are serialised and done
// never exceeds an observer's view out of order.
func (p *Progress) Tick() {
	p.mu.Lock()
	p.done++
	d := p.done
	if p.fn != nil {
		p.fn(d, p.total)
	}
	p.mu.Unlock()
}

// Done returns the number of completions recorded so far.
func (p *Progress) Done() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}
