package runner

// Cancellation with work still QUEUED — indices the pool has not yet
// handed to any worker. The pre-existing cancellation tests cancel
// mid-execution with every index already dispatched; the service tier
// (internal/service) relies on the stronger property tested here: once
// ctx fires, no queued index is ever started, on either the parallel
// or the single-worker fast path.

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestMapCtxCancelWhileJobsStillQueued(t *testing.T) {
	for _, procs := range []int{1, 3} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 64
		var ran [n]atomic.Bool
		started := make(chan int, procs)
		gate := make(chan struct{})
		finished := make(chan struct{})
		var res []int
		var err error
		go func() {
			defer close(finished)
			res, err = MapCtx(ctx, New(procs), n, func(i int) (int, error) {
				ran[i].Store(true)
				started <- i
				<-gate
				return i, nil
			})
		}()
		// Exactly procs jobs are in flight; the other n-procs indices
		// are still queued. Cancel, then let the in-flight jobs finish.
		for i := 0; i < procs; i++ {
			<-started
		}
		cancel()
		close(gate)
		<-finished

		if err != context.Canceled {
			t.Errorf("procs=%d: err = %v, want context.Canceled", procs, err)
		}
		if res != nil {
			t.Errorf("procs=%d: cancelled run returned results", procs)
		}
		count := 0
		for i := range ran {
			if ran[i].Load() {
				count++
			}
		}
		if count != procs {
			t.Errorf("procs=%d: %d jobs ran, want exactly the %d in flight at cancel — a queued index was dispatched after ctx fired",
				procs, count, procs)
		}
	}
}

func TestForEachCtxCancelWhileJobsStillQueued(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n, procs = 48, 2
	var ran atomic.Int64
	started := make(chan struct{}, procs)
	gate := make(chan struct{})
	finished := make(chan struct{})
	var err error
	go func() {
		defer close(finished)
		err = ForEachCtx(ctx, New(procs), n, func(i int) error {
			ran.Add(1)
			started <- struct{}{}
			<-gate
			return nil
		})
	}()
	for i := 0; i < procs; i++ {
		<-started
	}
	cancel()
	close(gate)
	<-finished
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != procs {
		t.Errorf("%d jobs ran, want exactly the %d in flight at cancel", got, procs)
	}
}
