package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, procs := range []int{1, 2, 7, 64} {
		p := New(procs)
		got, err := Map(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if len(got) != 100 {
			t.Fatalf("procs=%d: %d results", procs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("procs=%d: result[%d] = %d, want %d", procs, i, v, i*i)
			}
		}
	}
}

func TestMapIsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(procs int) []float64 {
		out, err := Map(New(procs), 64, func(i int) (float64, error) {
			return float64(i) * 1.5, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, procs := range []int{2, 4, 0} {
		got := run(procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d differs from serial at %d", procs, i)
			}
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, procs := range []int{1, 4} {
		_, err := Map(New(procs), 50, func(i int) (int, error) {
			if i == 17 {
				return 0, fmt.Errorf("job %d: %w", i, sentinel)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("procs=%d: err = %v, want wrapped sentinel", procs, err)
		}
	}
}

func TestMapStopsIssuingAfterError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(New(2), 10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// In-flight jobs may finish, but the pool must not chew through
	// anywhere near the full index space after the failure.
	if n := ran.Load(); n > 1000 {
		t.Fatalf("ran %d jobs after early failure", n)
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	for _, procs := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("procs=%d: panic did not propagate", procs)
				}
			}()
			Map(New(procs), 8, func(i int) (int, error) {
				if i == 3 {
					panic("job panic")
				}
				return i, nil
			})
		}()
	}
}

func TestMapZeroAndNegativeN(t *testing.T) {
	for _, n := range []int{0, -5} {
		got, err := Map(New(4), n, func(i int) (int, error) { return i, nil })
		if err != nil || got != nil {
			t.Fatalf("n=%d: got %v, %v", n, got, err)
		}
	}
}

func TestForEach(t *testing.T) {
	sums := make([]int64, 257)
	err := ForEach(New(8), len(sums), func(i int) error {
		sums[i] = int64(i) // per-index slot writes must be race-free
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sums {
		if v != int64(i) {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestMapCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, procs := range []int{1, 4} {
		var ran atomic.Int64
		_, err := MapCtx(ctx, New(procs), 100, func(i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if err != context.Canceled {
			t.Fatalf("procs=%d: err = %v, want context.Canceled", procs, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("procs=%d: %d jobs ran under a pre-cancelled context", procs, n)
		}
	}
}

func TestMapCtxCancellationStopsDispatch(t *testing.T) {
	for _, procs := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_, err := MapCtx(ctx, New(procs), 10_000, func(i int) (int, error) {
			if ran.Add(1) == 5 {
				cancel()
			}
			return i, nil
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("procs=%d: err = %v, want context.Canceled", procs, err)
		}
		// In-flight jobs finish, but the pool must stop dispatching:
		// nowhere near the full index space runs after the cancel.
		if n := ran.Load(); n > 1000 {
			t.Fatalf("procs=%d: ran %d jobs after cancellation", procs, n)
		}
	}
}

func TestMapCtxKeepsCompletedResultsOnLateCancel(t *testing.T) {
	// A cancel that lands once every index has been handed out must
	// not discard the fully computed result set (regression: workers
	// used to check ctx before noticing the index space was done).
	for _, procs := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		got, err := MapCtx(ctx, New(procs), 20, func(i int) (int, error) {
			if i == 19 {
				cancel()
			}
			return i, nil
		})
		cancel()
		if err != nil {
			t.Fatalf("procs=%d: err = %v, want nil for a completed run", procs, err)
		}
		if len(got) != 20 || got[19] != 19 {
			t.Fatalf("procs=%d: results discarded: %v", procs, got)
		}
	}
}

func TestMapCtxJobErrorWinsOverLaterCancel(t *testing.T) {
	sentinel := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := MapCtx(ctx, New(4), 50, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the job error", err)
	}
}

func TestForEachCtx(t *testing.T) {
	var n atomic.Int64
	if err := ForEachCtx(context.Background(), New(4), 64, func(i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 64 {
		t.Fatalf("ran %d jobs, want 64", n.Load())
	}
}

func TestNewDefaultsAndSerial(t *testing.T) {
	if New(0).Procs() < 1 {
		t.Error("New(0) pool has no workers")
	}
	if got := Serial().Procs(); got != 1 {
		t.Errorf("Serial().Procs() = %d", got)
	}
	if got := New(-3).Procs(); got < 1 {
		t.Errorf("New(-3).Procs() = %d", got)
	}
}

// TestNotifyEachAndProgress exercises the pool→progress bridge under
// concurrency; run with -race to verify the counter is data-race
// free (the CI workflow does).
func TestNotifyEachAndProgress(t *testing.T) {
	const n = 500
	var maxSeen atomic.Int64
	prog := NewProgress(n, func(done, total int) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		if int64(done) > maxSeen.Load() {
			maxSeen.Store(int64(done))
		}
	})
	p := New(8).NotifyEach(prog.Tick)
	if _, err := Map(p, n, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if prog.Done() != n {
		t.Errorf("Done() = %d, want %d", prog.Done(), n)
	}
	if maxSeen.Load() != n {
		t.Errorf("max reported done = %d, want %d", maxSeen.Load(), n)
	}
}

func TestNotifyEachDoesNotMutateReceiver(t *testing.T) {
	base := New(2)
	derived := base.NotifyEach(func() {})
	if base.notify != nil {
		t.Error("NotifyEach mutated the base pool")
	}
	if derived.notify == nil {
		t.Error("derived pool lost its notify hook")
	}
}
