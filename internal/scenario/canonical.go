package scenario

// Canonicalization and cache keying. Every simulation in this repo is
// deterministic — output is a pure function of the resolved spec, the
// seed it carries, and nothing else — so a stable hash of the resolved
// spec is a complete cache key: two requests with equal keys are
// guaranteed byte-identical results. internal/service builds its
// result cache and its concurrent-request dedupe on exactly this
// property.
//
// The canonical form is the spec AFTER applyDefaults and validate,
// with the orchestration-only knobs removed: Procs, Progress and
// Shards change how fast a run executes, never what it produces
// (Procs pinned since PR 1; Shards pinned by the PR 9 sharded
// differential suite and golden identity tests), so they must not
// split the cache. Everything else — headings included, since they
// appear in the rendered artifact — is part of the key.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// CanonicalVersion identifies the canonical spec encoding. It is
// folded into every key, so bumping it — on any change to the
// encoding, to a workload default, or to simulation semantics that
// alters output bytes — invalidates all previously cached results at
// once.
const CanonicalVersion = "wormsim-spec/v1"

// canonicalSpec is the deterministic wire form of a resolved spec:
// fixed field order, orchestration knobs (Procs, Progress) omitted,
// empty-vs-default spellings normalised. encoding/json marshals struct
// fields in declaration order, so the bytes are stable across runs
// and processes.
type canonicalSpec struct {
	Version  string   `json:"version"`
	Name     string   `json:"name"`
	ID       string   `json:"id"`
	Title    string   `json:"title,omitempty"`
	XLabel   string   `json:"xlabel,omitempty"`
	YLabel   string   `json:"ylabel,omitempty"`
	Artifact Artifact `json:"artifact"`

	Workload   Workload  `json:"workload"`
	Axis       Axis      `json:"axis"`
	Topo       string    `json:"topo"`
	Topos      []string  `json:"topos,omitempty"`
	Dims       []int     `json:"dims,omitempty"`
	Sizes      [][]int   `json:"sizes,omitempty"`
	Xs         []float64 `json:"xs,omitempty"`
	Algorithms []string  `json:"algorithms"`
	Substrates []string  `json:"substrates,omitempty"`

	Length int     `json:"length"`
	Ts     float64 `json:"ts"`
	VCs    int     `json:"vcs"`
	Metric Metric  `json:"metric"`
	Store  string  `json:"store"`

	Interarrival        float64    `json:"interarrival,omitempty"`
	Faults              *FaultSpec `json:"faults,omitempty"`
	PerNodeInterarrival float64    `json:"per_node_interarrival,omitempty"`

	LoadScale         float64  `json:"load_scale,omitempty"`
	BroadcastFraction float64  `json:"broadcast_fraction,omitempty"`
	Pattern           string   `json:"pattern,omitempty"`
	HotspotFraction   float64  `json:"hotspot_fraction,omitempty"`
	BatchSize         int      `json:"batch_size,omitempty"`
	Batches           int      `json:"batches,omitempty"`
	Warmup            int      `json:"warmup,omitempty"`
	MaxTime           sim.Time `json:"max_time,omitempty"`
	MaxInjected       int      `json:"max_injected,omitempty"`

	Reps int    `json:"reps"`
	Seed uint64 `json:"seed"`
}

// Canonical resolves the spec's defaults, validates it, and returns
// its deterministic canonical encoding. Two specs canonicalise to the
// same bytes exactly when they run the same simulations and render
// the same artifact bytes — modulo the worker count, which is
// excluded because output never depends on it.
func (s Spec) Canonical() ([]byte, error) {
	rs := s.applyDefaults()
	if err := rs.validate(); err != nil {
		return nil, err
	}
	store := rs.Store
	if store == "" {
		store = "auto"
	}
	pattern := rs.Pattern
	if pattern == PatternUniform {
		// Uniform is the implicit default everywhere; spelling it out
		// must not split the cache against specs that leave it empty.
		pattern = ""
	}
	c := canonicalSpec{
		Version:  CanonicalVersion,
		Name:     rs.Name,
		ID:       rs.ID,
		Title:    rs.Title,
		XLabel:   rs.XLabel,
		YLabel:   rs.YLabel,
		Artifact: rs.Artifact,

		Workload:   rs.Workload,
		Axis:       rs.Axis,
		Topo:       rs.Topo,
		Topos:      rs.Topos,
		Dims:       rs.Dims,
		Sizes:      rs.Sizes,
		Xs:         rs.Xs,
		Algorithms: rs.Algorithms,
		Substrates: rs.Substrates,

		Length: rs.Length,
		Ts:     rs.Ts,
		VCs:    rs.VCs,
		Metric: rs.Metric,
		Store:  store,

		Interarrival:        rs.Interarrival,
		Faults:              rs.Faults,
		PerNodeInterarrival: rs.PerNodeInterarrival,

		LoadScale:         rs.LoadScale,
		BroadcastFraction: rs.BroadcastFraction,
		Pattern:           pattern,
		HotspotFraction:   rs.HotspotFraction,
		BatchSize:         rs.BatchSize,
		Batches:           rs.Batches,
		Warmup:            rs.Warmup,
		MaxTime:           rs.MaxTime,
		MaxInjected:       rs.MaxInjected,

		Reps: rs.Reps,
		Seed: rs.Seed,
	}
	return json.Marshal(c)
}

// Key returns the spec's cache key: the hex SHA-256 of the canonical
// encoding and the process-default event calendar. Determinism makes
// the key a complete identity for the result bytes — equal keys imply
// byte-identical output for any worker count.
//
// The calendar is folded in even though both calendars execute every
// schedule identically (pinned by the PR 4 differential suite): a
// cache key must not encode a cross-implementation equivalence claim,
// only the configuration that produced the bytes. Callers that switch
// calendars mid-process (none of the CLIs do) get distinct keys, not
// stale entries.
func (s Spec) Key() (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(canon)
	fmt.Fprintf(h, "|calendar=%s", sim.DefaultCalendar())
	return hex.EncodeToString(h.Sum(nil)), nil
}
