package scenario

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// The cache key must be a pure function of what a run produces:
// identical for orchestration-only differences, distinct for anything
// that changes the artifact bytes.

func mustKey(t *testing.T, s Spec) string {
	t.Helper()
	k, err := s.Key()
	if err != nil {
		t.Fatalf("Key(%s): %v", s.Name, err)
	}
	return k
}

func TestCanonicalIsDeterministic(t *testing.T) {
	s := Spec{Name: "fig2", Workload: Contended}
	a, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("canonical encoding not deterministic:\n%s\n%s", a, b)
	}
}

func TestKeyIgnoresOrchestrationKnobs(t *testing.T) {
	base := Spec{Name: "fig1", Workload: Uncontended, Seed: 2005}
	withProcs := base
	withProcs.Procs = 7
	withProgress := base
	withProgress.Progress = func(done, total int) {}
	k := mustKey(t, base)
	if got := mustKey(t, withProcs); got != k {
		t.Errorf("Procs changed the key: %s vs %s", k, got)
	}
	if got := mustKey(t, withProgress); got != k {
		t.Errorf("Progress changed the key: %s vs %s", k, got)
	}
}

func TestKeyNormalisesDefaultSpellings(t *testing.T) {
	implicit := Spec{Name: "fig1", Workload: Uncontended}
	explicit := implicit
	explicit.Store = "auto"
	if a, b := mustKey(t, implicit), mustKey(t, explicit); a != b {
		t.Errorf(`Store "" and "auto" keyed differently: %s vs %s`, a, b)
	}
	// A fully spelled-out resolved spec must key like its shorthand:
	// applyDefaults is part of canonicalisation.
	resolved := implicit.applyDefaults()
	resolved.Progress = nil
	if a, b := mustKey(t, implicit), mustKey(t, resolved); a != b {
		t.Errorf("resolved spec keyed differently from its shorthand: %s vs %s", a, b)
	}
	uniform := Spec{Name: "fig3", Workload: Mixed, Pattern: PatternUniform}
	unset := Spec{Name: "fig3", Workload: Mixed}
	if a, b := mustKey(t, uniform), mustKey(t, unset); a != b {
		t.Errorf(`Pattern "" and "uniform" keyed differently: %s vs %s`, a, b)
	}
}

func TestKeySeparatesSemanticChanges(t *testing.T) {
	base := Spec{Name: "fig2", Workload: Contended, Seed: 2005}
	seen := map[string]string{mustKey(t, base): "base"}
	for label, mutate := range map[string]func(*Spec){
		"seed":     func(s *Spec) { s.Seed = 7 },
		"reps":     func(s *Spec) { s.Reps = 6 },
		"length":   func(s *Spec) { s.Length = 32 },
		"topo":     func(s *Spec) { s.Topo = TopoTorus },
		"store":    func(s *Spec) { s.Store = "lazy" },
		"metric":   func(s *Spec) { s.Metric = MetricLatency },
		"name":     func(s *Spec) { s.Name = "fig2x" },
		"algos":    func(s *Spec) { s.Algorithms = []string{"RD", "EDN"} },
		"faults":   func(s *Spec) { s.Faults = &FaultSpec{Links: 4} },
		"artifact": func(s *Spec) { s.Artifact = ArtifactTable1 },
	} {
		s := base
		mutate(&s)
		k := mustKey(t, s)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collided with %q on key %s", label, prev, k)
		}
		seen[k] = label
	}
}

func TestKeyFoldsInCalendar(t *testing.T) {
	orig := sim.DefaultCalendar()
	defer sim.SetDefaultCalendar(orig)
	s := Spec{Name: "fig1", Workload: Uncontended}
	sim.SetDefaultCalendar(sim.Ladder)
	ladder := mustKey(t, s)
	sim.SetDefaultCalendar(sim.Heap)
	heap := mustKey(t, s)
	if ladder == heap {
		t.Errorf("ladder and heap calendars share key %s", ladder)
	}
}

func TestCanonicalRejectsInvalidSpecs(t *testing.T) {
	bad := Spec{Name: "bad", Workload: "levitating"}
	if _, err := bad.Canonical(); err == nil {
		t.Error("Canonical accepted an invalid workload")
	}
	if _, err := bad.Key(); err == nil {
		t.Error("Key accepted an invalid workload")
	}
}

func TestRegistryKeysAreDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, name := range Names() {
		spec, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		k := mustKey(t, spec)
		if prev, dup := seen[k]; dup {
			t.Errorf("scenarios %q and %q share key %s", name, prev, k)
		}
		seen[k] = name
	}
}
