package scenario

import (
	"context"
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// FaultSpec declares a scenario's fault injection declaratively; the
// run loop expands it into a concrete fault.Plan per cell. All
// randomness derives from (Spec.Seed, FaultSpec.Seed) only — never
// from the series — so every algorithm, substrate and calendar sees
// the identical fault plan and the comparison is paired.
//
// On the faults axis the failed-link count comes from the sweep value
// x and Links is ignored; on every other axis Links is the fixed
// count. The zero FaultSpec is a no-op on any workload: it builds the
// empty plan, engages none of the network's fault machinery, and
// leaves output byte-identical to a nil-Faults run.
type FaultSpec struct {
	// Links is the failed undirected-link count (ignored on the
	// faults axis, where the sweep value supplies it). Link sets nest
	// across counts for one seed: see fault.RandomLinks.
	Links int
	// Nodes is the failed-node count (fault.RandomNodes; static even
	// when links churn).
	Nodes int
	// At is the failure onset time in µs (default 0: faults precede
	// all traffic).
	At float64
	// UpAfter, when positive, restores every failed resource UpAfter
	// µs after it went down (transient faults). Zero means fail-stop.
	UpAfter float64
	// Period and Strikes switch link failures to churn waves: Strikes
	// waves of fresh links at At, At+Period, …, each healing after
	// UpAfter (fault.Churn; needs positive UpAfter and Period).
	Period  float64
	Strikes int
	// Wait is the network's DeadWait: how long a dead-ended worm may
	// stay parked awaiting recovery before it is dropped. Zero drops
	// immediately.
	Wait float64
	// Seed perturbs which links/nodes fail without touching the
	// traffic seed.
	Seed uint64
}

// active reports whether the spec would actually fail anything.
func (f *FaultSpec) active() bool {
	return f != nil && (f.Links > 0 || f.Nodes > 0)
}

// plan expands the spec into a validated fault plan for m with the
// given failed-link count. A nil receiver or zero counts yield the
// empty plan.
func (f *FaultSpec) plan(m *topology.Mesh, seed uint64, links int) (*fault.Plan, error) {
	if f == nil {
		return &fault.Plan{}, nil
	}
	fseed := seed + 1000003*f.Seed
	at := sim.Time(f.At)
	var plans []*fault.Plan
	if links > 0 {
		if f.Strikes > 0 {
			p, err := fault.Churn(m, fseed, links, at, sim.Time(f.UpAfter), sim.Time(f.Period), f.Strikes)
			if err != nil {
				return nil, err
			}
			plans = append(plans, p)
		} else {
			p, err := fault.RandomLinks(m, fseed, links, at)
			if err != nil {
				return nil, err
			}
			if f.UpAfter > 0 {
				p = fault.RestoredAfter(p, sim.Time(f.UpAfter))
			}
			plans = append(plans, p)
		}
	}
	if f.Nodes > 0 {
		// Node faults are static even under churn: the waves model
		// flaky links, not rebooting routers.
		p, err := fault.RandomNodes(m, fseed+7919, f.Nodes, at)
		if err != nil {
			return nil, err
		}
		if f.UpAfter > 0 && f.Strikes == 0 {
			p = fault.RestoredAfter(p, sim.Time(f.UpAfter))
		}
		plans = append(plans, p)
	}
	return fault.Merge(plans...), nil
}

// vcsFor resolves the virtual-channel count for one topology kind:
// the explicit VCs if set, else the kind's default (2 on tori for the
// dateline pair, 1 on meshes).
func (s *Spec) vcsFor(kind string) int {
	if s.VCs > 0 {
		return s.VCs
	}
	if kind == TopoTorus {
		return 2
	}
	return 1
}

// buildTopoKind constructs one topology of the named kind.
func buildTopoKind(kind string, dims []int) *topology.Mesh {
	if kind == TopoTorus {
		return topology.NewTorus(dims...)
	}
	return topology.NewMesh(dims...)
}

// faultedCell runs one degraded study cell: the spec's contended
// traffic on a network with links failed links (plus the FaultSpec's
// node faults), under the given substrate when subSet.
func (s *Spec) faultedCell(m *topology.Mesh, algo broadcast.Algorithm, gap float64,
	vcs, links int, sub string, subSet bool) (*metrics.DegradationStats, error) {
	plan, err := s.Faults.plan(m, s.Seed, links)
	if err != nil {
		return nil, err
	}
	ncfg := s.netConfig()
	ncfg.VCs = vcs
	if s.Faults != nil {
		ncfg.DeadWait = s.Faults.Wait
	}
	if s.PerNodeInterarrival > 0 {
		gap = s.PerNodeInterarrival / float64(m.Nodes())
	}
	dcfg := metrics.DegradedConfig{
		Net:          ncfg,
		Length:       s.Length,
		Broadcasts:   s.Reps,
		Interarrival: gap,
		Seed:         s.Seed,
		Faults:       plan,
	}
	if subSet {
		dcfg.Adaptive, dcfg.AdaptiveSet = substrateFor(sub, m), true
	}
	return metrics.DegradedStudy(m, algo, dcfg)
}

// degradedPoint projects one degraded cell into a figure point. base
// is the series' pristine (x=0) cell, consulted only by the inflation
// metric.
func (s *Spec) degradedPoint(st *metrics.DegradationStats, x float64, base *metrics.DegradationStats) Point {
	pt := Point{X: x}
	switch s.Metric {
	case MetricLatency:
		pt.Y, pt.CI = st.Latency.Mean(), st.Latency.Confidence95()
	case MetricInflation:
		pt.Y = st.LatencyInflation(base)
		ci := st.Latency.Confidence95()
		pt.CI = stats.Interval{Mean: pt.Y, N: ci.N}
		if bm := base.Latency.Mean(); bm != 0 {
			pt.CI.HalfWide = ci.HalfWide / bm
		}
	case MetricCV:
		pt.Y, pt.CI = st.CV.Mean(), st.CV.Confidence95()
	default: // MetricCoverage, the faults-axis default
		pt.Y, pt.CI = st.Coverage.Mean(), st.Coverage.Confidence95()
	}
	return pt
}

// faultSeries is one line of a faults-axis figure: an algorithm on a
// topology kind, or one routing substrate.
type faultSeries struct {
	label  string
	algo   broadcast.Algorithm
	m      *topology.Mesh
	vcs    int
	sub    string
	subSet bool
}

// runFaults executes the failed-links sweep: every series replays the
// same traffic under the same nested fault plan family while x failed
// links accumulate. Series are substrates (one algorithm) when
// Substrates is set, else algorithms × topology kinds.
func runFaults(ctx context.Context, s *Spec, algos []broadcast.Algorithm, res *Result) error {
	var series []faultSeries
	var fixed *topology.Mesh
	if len(s.Substrates) > 0 {
		fixed = s.buildTopo(s.Dims)
		vcs := s.vcsFor(s.Topo)
		for _, sub := range s.Substrates {
			series = append(series, faultSeries{label: sub, algo: algos[0], m: fixed, vcs: vcs, sub: sub, subSet: true})
		}
	} else {
		kinds := s.Topos
		if len(kinds) == 0 {
			kinds = []string{s.Topo}
		}
		meshes := make(map[string]*topology.Mesh, len(kinds))
		for _, kind := range kinds {
			if _, ok := meshes[kind]; !ok {
				meshes[kind] = buildTopoKind(kind, s.Dims)
			}
		}
		if len(kinds) == 1 {
			fixed = meshes[kinds[0]]
		}
		for _, algo := range algos {
			for _, kind := range kinds {
				label := algo.Name()
				if len(kinds) > 1 {
					label += "/" + kind
				}
				series = append(series, faultSeries{label: label, algo: algo, m: meshes[kind], vcs: s.vcsFor(kind)})
			}
		}
	}
	title, xl, yl := s.headings(fixed)
	fig := &Figure{ID: s.ID, Title: title, XLabel: xl, YLabel: yl}

	xs := s.Xs
	nx := len(xs)
	cells := len(series) * nx
	p := s.pool(cells)
	grid, err := runner.MapCtx(ctx, p, cells, func(k int) (*metrics.DegradationStats, error) {
		se := series[k/nx]
		x := xs[k%nx]
		st, err := s.faultedCell(se.m, se.algo, s.Interarrival, se.vcs, int(x), se.sub, se.subSet)
		if err != nil {
			return nil, fmt.Errorf("%s %s on %s at %g failed links: %w", s.Name, se.label, se.m.Name(), x, err)
		}
		return st, nil
	})
	if err != nil {
		return err
	}
	for si, se := range series {
		sr := Series{Label: se.label}
		base := grid[si*nx] // x=0 when the sweep starts at 0 (inflation validates this)
		for xi, x := range xs {
			sr.Points = append(sr.Points, s.degradedPoint(grid[si*nx+xi], x, base))
		}
		fig.Series = append(fig.Series, sr)
	}
	res.Figure = fig
	return nil
}

// runContendedFaulted executes a contended sweep (size, interarrival
// or VCs axis) with a fixed active fault set applied to every cell —
// the -faults CLI path. The fault plan is rebuilt per topology so a
// size sweep fails Links links of each shape.
func runContendedFaulted(ctx context.Context, s *Spec, algos []broadcast.Algorithm, res *Result) error {
	topos, xs, fixed := s.sweepCells()
	title, xl, yl := s.headings(fixed)
	fig := &Figure{ID: s.ID, Title: title, XLabel: xl, YLabel: yl}

	cells := len(algos) * len(xs)
	p := s.pool(cells)
	grid, err := runner.MapCtx(ctx, p, cells, func(k int) (*metrics.DegradationStats, error) {
		algo, xi := algos[k/len(xs)], k%len(xs)
		m := topos[xi]
		gap := s.Interarrival
		if s.Axis == AxisInterarrival {
			gap = xs[xi]
		}
		vcs := s.VCs
		if s.Axis == AxisVCs {
			vcs = int(xs[xi])
		}
		st, err := s.faultedCell(m, algo, gap, vcs, s.Faults.Links, "", false)
		if err != nil {
			return nil, fmt.Errorf("%s %s on %s: %w", s.Name, algo.Name(), m.Name(), err)
		}
		return st, nil
	})
	if err != nil {
		return err
	}
	for a, algo := range algos {
		sr := Series{Label: algo.Name()}
		for xi, x := range xs {
			sr.Points = append(sr.Points, s.degradedPoint(grid[a*len(xs)+xi], x, nil))
		}
		fig.Series = append(fig.Series, sr)
	}
	res.Figure = fig
	return nil
}
