package scenario_test

// Fault-scenario goldens and the empty-plan identity matrix.
//
// The goldens pin the OUTPUT OF the fault-injection subsystem at its
// introduction — coverage curves for the three registered fault
// scenarios, each rendered at three worker counts so determinism and
// results are pinned together. Regenerate only for an intentional
// behaviour change:
//
//	UPDATE_FAULT_GOLDENS=1 go test ./internal/scenario -run FaultGolden
//
// The identity matrix is the subsystem's zero-cost guarantee: adding
// an EMPTY FaultSpec to any pre-existing scenario must leave its
// output byte-identical to the goldens those scenarios were pinned
// against — the fault machinery is provably unengaged until a fault
// actually fires.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/export"
	"repro/internal/scenario"
)

// faultGoldenCases shrink the three fault scenarios to a 4×4×4 shape
// and a short failed-link sweep that still crosses from full coverage
// into real degradation.
func faultGoldenCases() map[string][]scenario.Option {
	return map[string][]scenario.Option{
		"fig2-faults": {
			scenario.WithMesh(4, 4, 4),
			scenario.WithXs(0, 2, 6),
			scenario.WithReps(6), scenario.WithSeed(2005),
		},
		"faults-adaptive": {
			scenario.WithMesh(4, 4, 4),
			scenario.WithXs(0, 2, 6),
			scenario.WithReps(6), scenario.WithSeed(2005),
		},
		"faults-transient": {
			scenario.WithMesh(4, 4, 4),
			scenario.WithXs(0, 2, 4),
			scenario.WithReps(6), scenario.WithSeed(2005),
		},
	}
}

func TestFaultGoldens(t *testing.T) {
	update := os.Getenv("UPDATE_FAULT_GOLDENS") != ""
	for name, opts := range faultGoldenCases() {
		for _, procs := range []int{1, 4, 0} {
			res := runScenario(t, name, append(opts, scenario.WithProcs(procs))...)
			var csv bytes.Buffer
			if err := export.NewCSVSink(&csv).Emit(res); err != nil {
				t.Fatal(err)
			}
			if update && procs == 1 {
				if err := os.WriteFile(filepath.Join("testdata", name+".txt"),
					[]byte(res.Figure.Format()), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join("testdata", name+".csv"),
					csv.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := res.Figure.Format(), golden(t, name+".txt"); got != want {
				t.Errorf("%s at procs=%d: text differs from golden\n--- want ---\n%s\n--- got ---\n%s",
					name, procs, want, got)
			}
			if got, want := csv.String(), golden(t, name+".csv"); got != want {
				t.Errorf("%s at procs=%d: CSV differs from golden", name, procs)
			}
		}
	}
}

// TestEmptyFaultPlanGoldenIdentity re-runs every golden-pinned
// scenario with an explicit empty FaultSpec and compares against the
// SAME goldens the fault-free runs are pinned to.
func TestEmptyFaultPlanGoldenIdentity(t *testing.T) {
	withEmptyFaults := func(s *scenario.Spec) { s.Faults = &scenario.FaultSpec{} }
	cases := map[string][]scenario.Option{
		"fig1":  {scenario.WithSizes([]int{4, 4, 4}, []int{6, 6, 6}), scenario.WithReps(5), scenario.WithSeed(2005)},
		"fig1b": {scenario.WithSizes([]int{4, 4, 4}, []int{6, 6, 6}), scenario.WithReps(5), scenario.WithSeed(2005)},
		"fig2": {
			scenario.WithSizes([]int{4, 4, 4}, []int{4, 4, 8}),
			scenario.WithReps(6), scenario.WithSeed(2005),
		},
		"fig3": {
			scenario.WithLoads(0.005, 0.02), scenario.WithBatches(4, 20, 1), scenario.WithSeed(2005),
		},
		"fig4": {
			scenario.WithMesh(6, 6, 8),
			scenario.WithLoads(0.005, 0.02), scenario.WithBatches(4, 20, 1), scenario.WithSeed(2005),
		},
	}
	for _, name := range []string{"ablation-length", "ablation-hop", "ablation-substrate", "ablation-ports"} {
		cases[name] = []scenario.Option{
			scenario.WithMesh(4, 4, 4), scenario.WithLength(64),
			scenario.WithReps(3), scenario.WithSeed(5),
		}
	}
	for name, opts := range torusGoldenCases() {
		cases[name] = opts
	}
	for name, opts := range cases {
		res := runScenario(t, name, append(opts, withEmptyFaults)...)
		checkText(t, name+".txt", res.Figure)
		checkCSV(t, name+".csv", res)
		if name == "fig2" {
			checkText(t, "table1.txt", res.Table1)
			checkText(t, "table2.txt", res.Table2)
		}
	}
}
