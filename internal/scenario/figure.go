// Package scenario is the unified experiment API of the reproduction:
// one declarative [Spec] describes a study — topology, algorithm set,
// workload, sweep axis, replication and orchestration knobs — a
// process-wide [Registry] names every figure, table and ablation of
// the paper (plus scenarios the paper never ran), and one [Run] loop
// executes any spec by fanning its independent simulations out over a
// [runner.Pool] with context cancellation.
//
// The package deliberately separates the specification from the
// executor, in the spirit of interpreted discrete-event control
// models: adding a scenario means registering a spec, never writing a
// driver. The legacy drivers in internal/experiments are now thin
// deprecated wrappers over this package, and their output is
// byte-identical to the pre-redesign code (pinned by golden tests in
// testdata/).
//
// Results stream into pluggable [Sink]s: [NewTextSink] renders the
// paper's aligned tables, [NewJSONSink] emits machine-readable JSON,
// and internal/export provides the CSV sink.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Interval is the 95% confidence interval type points carry.
type Interval = stats.Interval

// ImprovementRow is one cell group of the paper's Tables 1 and 2.
type ImprovementRow = metrics.ImprovementRow

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
	// CI is the 95% confidence interval behind Y when the point
	// aggregates replications; the zero Interval means no interval
	// is available (single-shot points).
	CI Interval
}

// Series is one algorithm's curve in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced paper figure: one series per algorithm.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String implements fmt.Stringer via Format.
func (f *Figure) String() string { return f.Format() }

// HasCI reports whether any point of the figure carries a finite
// confidence interval (at least two replications behind it).
func (f *Figure) HasCI() bool {
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.CI.N > 1 && !math.IsInf(p.CI.HalfWide, 0) {
				return true
			}
		}
	}
	return false
}

// Format renders the figure as an aligned text table, x values as
// rows and algorithms as columns — the shape of the paper's plots.
// When the figure carries confidence intervals, each cell prints
// mean±half-width of the 95% interval.
func (f *Figure) Format() string {
	width, ci := 12, f.HasCI()
	if ci {
		width = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", width, s.Label)
	}
	b.WriteByte('\n')

	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14g", x)
		for _, s := range f.Series {
			p, ok := lookupPoint(s, x)
			if !ok {
				fmt.Fprintf(&b, "%*s", width, "-")
				continue
			}
			if ci && p.CI.N > 1 && !math.IsInf(p.CI.HalfWide, 0) {
				fmt.Fprintf(&b, "%*s", width, fmt.Sprintf("%.4f±%.3f", p.Y, p.CI.HalfWide))
			} else {
				fmt.Fprintf(&b, "%*.4f", width, p.Y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookupPoint(s Series, x float64) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// CVTable is one of the paper's Tables 1/2: per mesh size, the CV of
// the baselines and the improvement of the proposed algorithm.
type CVTable struct {
	ID       string
	Proposed string
	Columns  []CVColumn
}

// CVColumn is one mesh-size column of a CVTable.
type CVColumn struct {
	Mesh       string
	Nodes      int
	ProposedCV float64
	Rows       []ImprovementRow
}

// String implements fmt.Stringer via Format.
func (t *CVTable) String() string { return t.Format() }

// Format renders the table in the paper's layout: baselines as rows,
// sizes as columns, each cell CV and improvement%.
func (t *CVTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: CV of broadcast latencies with %s improvement (%sIMR%%)\n", t.ID, t.Proposed, t.Proposed)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%22s", fmt.Sprintf("%s (%d)", c.Mesh, c.Nodes))
	}
	b.WriteByte('\n')
	if len(t.Columns) == 0 {
		return b.String()
	}
	for i := range t.Columns[0].Rows {
		fmt.Fprintf(&b, "%-10s", t.Columns[0].Rows[i].Baseline)
		for _, c := range t.Columns {
			r := c.Rows[i]
			fmt.Fprintf(&b, "%22s", fmt.Sprintf("CV %.4f  +%.2f%%", r.BaselineCV, r.Improvement))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", t.Proposed)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%22s", fmt.Sprintf("CV %.4f", c.ProposedCV))
	}
	b.WriteByte('\n')
	return b.String()
}
