package scenario_test

// Hotspot-pattern goldens and the uniform-identity check.
//
// The goldens pin fig4-hotspot's output at the pattern's
// introduction, at three worker counts so determinism and results
// are pinned together. Regenerate only for an intentional behaviour
// change:
//
//	UPDATE_HOTSPOT_GOLDENS=1 go test ./internal/scenario -run HotspotGolden
//
// The identity check is the pattern's zero-cost guarantee: spelling
// the default pattern explicitly ("uniform") on a pre-existing mixed
// scenario leaves its output byte-identical to the goldens that
// scenario was pinned against — the hotspot draw provably never
// touches the random stream until the pattern is engaged.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/export"
	"repro/internal/scenario"
)

// hotspotGoldenCases shrink fig4-hotspot to fig4's golden shape and
// load points, so the two fixtures differ ONLY in traffic pattern.
func hotspotGoldenCases() map[string][]scenario.Option {
	return map[string][]scenario.Option{
		"fig4-hotspot": {
			scenario.WithMesh(6, 6, 8),
			scenario.WithLoads(0.005, 0.02),
			scenario.WithBatches(4, 20, 1),
			scenario.WithSeed(2005),
		},
	}
}

func TestHotspotGoldens(t *testing.T) {
	update := os.Getenv("UPDATE_HOTSPOT_GOLDENS") != ""
	for name, opts := range hotspotGoldenCases() {
		for _, procs := range []int{1, 4, 0} {
			res := runScenario(t, name, append(opts, scenario.WithProcs(procs))...)
			var csv bytes.Buffer
			if err := export.NewCSVSink(&csv).Emit(res); err != nil {
				t.Fatal(err)
			}
			if update && procs == 1 {
				if err := os.WriteFile(filepath.Join("testdata", name+".txt"),
					[]byte(res.Figure.Format()), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join("testdata", name+".csv"),
					csv.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := res.Figure.Format(), golden(t, name+".txt"); got != want {
				t.Errorf("%s at procs=%d: text differs from golden\n--- want ---\n%s\n--- got ---\n%s",
					name, procs, want, got)
			}
			if got, want := csv.String(), golden(t, name+".csv"); got != want {
				t.Errorf("%s at procs=%d: CSV differs from golden", name, procs)
			}
		}
	}
}

// TestUniformPatternGoldenIdentity re-runs the golden-pinned mixed
// scenarios with the default pattern spelled explicitly and compares
// against the SAME goldens the implicit runs are pinned to.
func TestUniformPatternGoldenIdentity(t *testing.T) {
	explicitUniform := func(s *scenario.Spec) { s.Pattern = scenario.PatternUniform }
	cases := map[string][]scenario.Option{
		"fig3": {
			scenario.WithLoads(0.005, 0.02), scenario.WithBatches(4, 20, 1), scenario.WithSeed(2005),
		},
		"fig4": {
			scenario.WithMesh(6, 6, 8),
			scenario.WithLoads(0.005, 0.02), scenario.WithBatches(4, 20, 1), scenario.WithSeed(2005),
		},
	}
	for name, opts := range cases {
		res := runScenario(t, name, append(opts, explicitUniform)...)
		checkText(t, name+".txt", res.Figure)
		checkCSV(t, name+".csv", res)
	}
}

// TestHotspotDivergesFromUniform guards against the opposite failure:
// the hotspot golden silently matching uniform traffic (pattern wired
// up but never applied). At the golden config the two patterns must
// produce different bytes.
func TestHotspotDivergesFromUniform(t *testing.T) {
	opts := hotspotGoldenCases()["fig4-hotspot"]
	hot := runScenario(t, "fig4-hotspot", opts...)
	uni := runScenario(t, "fig4", opts...)

	var hotCSV, uniCSV bytes.Buffer
	if err := export.NewCSVSink(&hotCSV).Emit(hot); err != nil {
		t.Fatal(err)
	}
	if err := export.NewCSVSink(&uniCSV).Emit(uni); err != nil {
		t.Fatal(err)
	}
	if hotCSV.String() == uniCSV.String() {
		t.Error("fig4-hotspot produced byte-identical output to uniform fig4 — the hotspot pattern never engaged")
	}
}
