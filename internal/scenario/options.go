package scenario

// Functional options for Build and the wormsim facade: each mutates
// one knob of a registered base spec, so callers compose exactly the
// overrides they need —
//
//	spec, err := scenario.Build("fig2", scenario.WithMesh(16, 16, 8), scenario.WithReps(40))

// WithMesh fixes the scenario to one topology shape: it sets the
// fixed Dims and collapses a size sweep to the single shape.
func WithMesh(dims ...int) Option {
	return func(s *Spec) {
		s.Dims = dims
		if s.Axis == AxisSize {
			s.Sizes = [][]int{dims}
		}
	}
}

// WithSizes replaces the size-axis sweep shapes.
func WithSizes(sizes ...[]int) Option {
	return func(s *Spec) { s.Sizes = sizes }
}

// WithTopology selects the topology kind: TopoMesh or TopoTorus.
func WithTopology(kind string) Option {
	return func(s *Spec) { s.Topo = kind }
}

// WithVCs sets the virtual-channel count per physical channel
// (n <= 0 keeps the topology default: 1 on meshes, 2 on tori).
func WithVCs(n int) Option {
	return func(s *Spec) {
		if n > 0 {
			s.VCs = n
		}
	}
}

// WithAlgorithms replaces the algorithm set (names RD, EDN, DB, AB).
func WithAlgorithms(names ...string) Option {
	return func(s *Spec) { s.Algorithms = names }
}

// WithReps sets the replication count; n <= 0 keeps the scenario's
// default, so CLI "0 = default" flags can pass through unchanged.
func WithReps(n int) Option {
	return func(s *Spec) {
		if n > 0 {
			s.Reps = n
		}
	}
}

// WithSeed sets the root random seed.
func WithSeed(seed uint64) Option {
	return func(s *Spec) { s.Seed = seed }
}

// WithProcs caps the worker count (0 = one worker per core). Output
// never depends on it.
func WithProcs(procs int) Option {
	return func(s *Spec) { s.Procs = procs }
}

// WithShards partitions each simulation across k shard calendars of
// the conservative-parallel kernel (k <= 1 keeps the serial kernel).
// Output never depends on it — the kernel is bit-deterministic at
// every shard count.
func WithShards(k int) Option {
	return func(s *Spec) {
		if k > 1 {
			s.Shards = k
		}
	}
}

// WithProgress wires a live (done, total) completion reporter.
func WithProgress(fn func(done, total int)) Option {
	return func(s *Spec) { s.Progress = fn }
}

// WithLength sets the message length in flits.
func WithLength(flits int) Option {
	return func(s *Spec) { s.Length = flits }
}

// WithTs sets the startup latency in µs.
func WithTs(ts float64) Option {
	return func(s *Spec) { s.Ts = ts }
}

// WithXs replaces the scalar sweep values of the spec's axis
// (lengths, hop delays, ports, Ts values, loads, injection gaps).
func WithXs(xs ...float64) Option {
	return func(s *Spec) { s.Xs = xs }
}

// WithLoads replaces the offered-load sweep of a mixed scenario —
// WithXs under the name the paper's axis uses.
func WithLoads(loads ...float64) Option { return WithXs(loads...) }

// WithLoadScale sets the mixed-traffic injected-rate multiplier
// (1 = the paper's literal axis values; default 320, see
// EXPERIMENTS.md).
func WithLoadScale(scale float64) Option {
	return func(s *Spec) { s.LoadScale = scale }
}

// WithBatches configures the mixed batch-means estimator.
func WithBatches(batches, batchSize, warmup int) Option {
	return func(s *Spec) {
		s.Batches, s.BatchSize, s.Warmup = batches, batchSize, warmup
	}
}

// WithInterarrival sets the contended mean injection gap in µs.
func WithInterarrival(gap float64) Option {
	return func(s *Spec) { s.Interarrival = gap }
}

// WithMetric selects the contended y value (MetricCV, MetricLatency,
// or — under fault injection — MetricCoverage / MetricInflation).
func WithMetric(m Metric) Option {
	return func(s *Spec) { s.Metric = m }
}

// WithStore selects the substrate memory model: "auto" (default),
// "dense", or "lazy". Empty keeps the scenario's registered mode.
func WithStore(mode string) Option {
	return func(s *Spec) {
		if mode != "" {
			s.Store = mode
		}
	}
}

// WithHotspot switches a mixed scenario's unicast background to the
// hotspot pattern: fraction of the unicasts target the topology's
// center node (fraction <= 0 keeps the registered pattern; the
// registered hotspot scenarios default to 0.1).
func WithHotspot(fraction float64) Option {
	return func(s *Spec) {
		if fraction <= 0 {
			return
		}
		s.Pattern = PatternHotspot
		s.HotspotFraction = fraction
	}
}

// WithFaults fails n random undirected links in every cell of a
// contended scenario (n <= 0 keeps the scenario's registered fault
// plan, typically none). On the faults axis the sweep value supplies
// the count instead, so this option is a no-op there.
func WithFaults(links int) Option {
	return func(s *Spec) {
		if links <= 0 {
			return
		}
		if s.Faults == nil {
			s.Faults = &FaultSpec{}
		}
		s.Faults.Links = links
	}
}
