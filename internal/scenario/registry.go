package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Definition is one registry entry: a named scenario with a base
// spec. New returns a fresh copy so callers can mutate freely.
type Definition struct {
	// Name is the registry key, e.g. "fig2" or "ablation-hop".
	Name string
	// Summary is the one-line description `sweep -what list` prints.
	Summary string
	// New returns the scenario's base spec with the paper's knobs.
	New func() Spec
}

var (
	regMu sync.RWMutex
	reg   = map[string]Definition{}
)

// Register adds a scenario definition to the process-wide registry.
// It panics on an empty name, a nil spec factory, or a duplicate —
// registration happens at init time, where failing loudly is the
// only useful behaviour.
func Register(d Definition) {
	if d.Name == "" || d.New == nil {
		panic("scenario: Register needs a name and a spec factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[d.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", d.Name))
	}
	reg[d.Name] = d
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := reg[name]
	return d, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Summaries returns "name — summary" lines for every registered
// scenario, sorted by name — what `sweep -what list` prints.
func Summaries() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := make([]string, len(names))
	for i, name := range names {
		lines[i] = fmt.Sprintf("%-20s %s", name, reg[name].Summary)
	}
	return lines
}

// Build resolves a registered scenario and applies the options over
// its base spec. An unknown name errors with the available names.
func Build(name string, opts ...Option) (Spec, error) {
	d, ok := Lookup(name)
	if !ok {
		return Spec{}, fmt.Errorf("unknown scenario %q (available: %v)", name, Names())
	}
	spec := d.New()
	for _, opt := range opts {
		opt(&spec)
	}
	return spec, nil
}

// The paper's artifacts and the reproduction's ablations, each as a
// declarative spec. Adding a scenario here — or via Register from
// any other package — is ALL it takes to make it runnable by name
// through wormsim.Run, cmd/sweep and the round-trip tests.
func init() {
	Register(Definition{
		Name:    "fig1",
		Summary: "Fig. 1: broadcast latency vs network size (uncontended, Ts=1.5 µs)",
		New: func() Spec {
			return Spec{Name: "fig1", ID: "Fig.1", Workload: Uncontended, Axis: AxisSize}
		},
	})
	Register(Definition{
		Name:    "fig1b",
		Summary: "§3.1 sensitivity: Fig. 1 at startup latency Ts=0.15 µs",
		New: func() Spec {
			return Spec{Name: "fig1b", ID: "Fig.1b", Workload: Uncontended, Axis: AxisSize, Ts: 0.15}
		},
	})
	Register(Definition{
		Name:    "fig1-million",
		Summary: "NEW: Fig. 1's latency-vs-size curve extended to 2^20 nodes (lazy store, streaming stats)",
		New: func() Spec {
			return Spec{
				Name: "fig1-million", ID: "Fig.1-million",
				Workload: Uncontended, Axis: AxisSize,
				// Picks up where fig1's 16×16×16 point stops and grows by
				// 4x per point to a 128×128×64 = 2^20-node mesh. The
				// 2^16+ shapes resolve to the lazy store and implicit
				// adjacency under "auto" already; pinning "lazy" makes
				// the scenario exercise the paged store at EVERY size, so
				// a regression to eager allocation cannot hide in the
				// small points.
				Sizes: [][]int{
					{16, 16, 16},   // 4096 — fig1's largest, the overlap point
					{32, 32, 16},   // 2^14
					{64, 64, 16},   // 2^16
					{128, 64, 32},  // 2^18
					{128, 128, 64}, // 2^20
				},
				Store: "lazy",
				// Replications are expensive at a million nodes (every
				// algorithm's plan covers every destination); three per
				// point keeps the full curve under a few minutes while
				// still averaging over source placement.
				Reps: 3,
			}
		},
	})
	Register(Definition{
		Name:    "fig2",
		Summary: "Fig. 2: arrival-time CV vs network size (contended broadcasts)",
		New:     fig2Spec,
	})
	Register(Definition{
		Name:    "table1",
		Summary: "Table 1: baseline CVs with DB improvement percentages",
		New: func() Spec {
			s := fig2Spec()
			s.Name, s.Artifact = "table1", ArtifactTable1
			return s
		},
	})
	Register(Definition{
		Name:    "table2",
		Summary: "Table 2: baseline CVs with AB improvement percentages",
		New: func() Spec {
			s := fig2Spec()
			s.Name, s.Artifact = "table2", ArtifactTable2
			return s
		},
	})
	Register(Definition{
		Name:    "fig3",
		Summary: "Fig. 3: mean latency vs offered load, 90/10 mixed traffic on 8×8×8",
		New: func() Spec {
			return Spec{Name: "fig3", ID: "Fig.3", Workload: Mixed, Axis: AxisLoad, Dims: []int{8, 8, 8}}
		},
	})
	Register(Definition{
		Name:    "fig4",
		Summary: "Fig. 4: mean latency vs offered load, 90/10 mixed traffic on 16×16×8",
		New: func() Spec {
			return Spec{Name: "fig4", ID: "Fig.4", Workload: Mixed, Axis: AxisLoad, Dims: []int{16, 16, 8}}
		},
	})
	Register(Definition{
		Name:    "ablation-length",
		Summary: "ablation: latency vs message length 32–2048 flits (wormhole distance insensitivity)",
		New: func() Spec {
			return ablationSpec("ablation-length", "Ablation-L", AxisLength,
				[]float64{32, 64, 128, 256, 512, 1024, 2048})
		},
	})
	Register(Definition{
		Name:    "ablation-hop",
		Summary: "ablation: latency vs per-hop header routing delay (router pessimism)",
		New: func() Spec {
			return ablationSpec("ablation-hop", "Ablation-hop", AxisHopDelay,
				[]float64{0.003, 0.01, 0.03, 0.1, 0.3})
		},
	})
	Register(Definition{
		Name:    "ablation-substrate",
		Summary: "ablation: AB over west-first vs odd-even vs DOR substrates (paired sources)",
		New: func() Spec {
			s := ablationSpec("ablation-substrate", "Ablation-substrate", AxisSubstrate, nil)
			s.Algorithms = []string{"AB"}
			return s
		},
	})
	Register(Definition{
		Name:    "ablation-ports",
		Summary: "ablation: one-port vs three-port routers (EDN needs the fan-out)",
		New: func() Spec {
			return ablationSpec("ablation-ports", "Ablation-ports", AxisPorts, []float64{1, 3})
		},
	})

	// Scenarios the paper never ran — pure specs, no driver code.
	Register(Definition{
		Name:    "fig1-ts",
		Summary: "NEW: broadcast latency vs startup latency Ts on 8×8×8 (continuous §3.1 sweep)",
		New: func() Spec {
			return Spec{
				Name: "fig1-ts", ID: "Fig.1-Ts",
				Workload: Uncontended, Axis: AxisTs,
				Dims: []int{8, 8, 8},
				Xs:   []float64{0.15, 0.5, 1, 1.5, 3, 6},
				Reps: 10,
			}
		},
	})
	Register(Definition{
		Name:    "fig2-torus",
		Summary: "NEW: Fig. 2's CV study on tori — full RD/EDN/DB/AB set over dateline VCs",
		New: func() Spec {
			s := fig2Spec()
			s.Name, s.ID = "fig2-torus", "Fig.2-torus"
			s.Topo = TopoTorus
			// All four algorithms: RD/EDN route over dateline-DOR, DB's
			// and AB's coded paths plan in the canonical unwrap frame
			// and AB's adaptive sends run the torus west-first model.
			// Two dateline VCs per channel (the torus default).
			s.Title = "Coefficient of variation of arrival times vs torus size (L=64, Ts=1.5 µs)"
			return s
		},
	})
	Register(Definition{
		Name:    "fig2-torus-vc",
		Summary: "NEW: contended CV on an 8×8×8 torus vs virtual-channel count 1–4",
		New: func() Spec {
			return Spec{
				Name: "fig2-torus-vc", ID: "Fig.2-torus-VC",
				Workload: Contended, Axis: AxisVCs,
				Topo: TopoTorus,
				Dims: []int{8, 8, 8},
				// The x=1 point is the unsafe baseline on purpose: one
				// VC means plain DOR, whose torus CDG is cyclic (see
				// cdg's plain-DOR regression test). It completes at
				// this spec's pinned seed and load — a circular wait
				// never materialises — and documents what the dateline
				// pair costs (nothing) next to what it buys (the
				// deadlock-freedom proof). Raising the load or
				// reseeding MAY legitimately deadlock that point, in
				// which case ContendedCVStudy errors with "broadcast
				// stalled"; drop x=1 rather than chasing the seed.
				Xs: []float64{1, 2, 3, 4},
			}
		},
	})
	Register(Definition{
		Name:    "saturation-torus",
		Summary: "NEW: the saturation latency sweep on an 8×8×8 torus (dateline VCs)",
		New: func() Spec {
			sat := metrics.SaturationConfig(0)
			return Spec{
				Name: "saturation-torus", ID: "Saturation-torus",
				Workload: Contended, Axis: AxisInterarrival,
				Metric: MetricLatency,
				Topo:   TopoTorus,
				Dims:   metrics.SaturationDims(),
				Xs:     metrics.SaturationInterarrivals(),
				Length: sat.Length,
				Reps:   sat.Broadcasts,
			}
		},
	})
	Register(Definition{
		Name:    "fig2-faults",
		Summary: "NEW: delivery coverage vs failed links — RD/EDN/DB/AB on an 8×8×8 mesh and torus",
		New: func() Spec {
			return Spec{
				Name: "fig2-faults", ID: "Fig.2-faults",
				Workload: Contended, Axis: AxisFaults,
				Dims:  []int{8, 8, 8},
				Topos: []string{TopoMesh, TopoTorus},
				Xs:    []float64{0, 4, 8, 16, 32, 64},
				// Static fail-stop faults from t=0: nothing ever heals,
				// so dead-ended worms drop immediately (Wait 0).
				Faults: &FaultSpec{},
				Title:  "Broadcast delivery coverage vs failed links on mesh and torus (L=64, Ts=1.5 µs)",
			}
		},
	})
	Register(Definition{
		Name:    "faults-adaptive",
		Summary: "NEW: AB coverage under failed links — west-first adaptivity vs plain DOR",
		New: func() Spec {
			return Spec{
				Name: "faults-adaptive", ID: "Faults-adaptive",
				Workload: Contended, Axis: AxisFaults,
				Dims:       []int{8, 8, 8},
				Algorithms: []string{"AB"},
				Substrates: []string{"west-first", "dor"},
				Xs:         []float64{0, 4, 8, 16, 32, 64},
				Faults:     &FaultSpec{},
				Title:      "AB delivery coverage vs failed links: west-first vs DOR (L=64, Ts=1.5 µs)",
			}
		},
	})
	Register(Definition{
		Name:    "faults-transient",
		Summary: "NEW: coverage under link churn — waves of transient failures with parked-worm recovery",
		New: func() Spec {
			return Spec{
				Name: "faults-transient", ID: "Faults-transient",
				Workload: Contended, Axis: AxisFaults,
				Dims: []int{8, 8, 8},
				Xs:   []float64{0, 4, 8, 16, 32},
				// Four waves of x links, each healing after 25 µs; a
				// dead-ended worm may park up to 15 µs awaiting the heal,
				// so recovery — not just loss — shapes the curve.
				Faults: &FaultSpec{At: 10, UpAfter: 25, Period: 50, Strikes: 4, Wait: 15},
				Title:  "Broadcast delivery coverage under link churn (L=64, Ts=1.5 µs)",
			}
		},
	})
	Register(Definition{
		Name:    "fig4-hotspot",
		Summary: "NEW: Fig. 4's mixed workload with 10% of unicasts aimed at one hotspot node",
		New: func() Spec {
			return Spec{
				Name: "fig4-hotspot", ID: "Fig.4-hotspot",
				Workload: Mixed, Axis: AxisLoad,
				Dims: []int{16, 16, 8},
				// 10% of the unicast background converges on the center
				// node (node 1024 of 2048), so the hotspot's injection
				// ports and surrounding channels saturate far below the
				// uniform pattern's knee — the first entry of the
				// traffic-pattern zoo beyond the paper's uniform model.
				Pattern: PatternHotspot,
			}
		},
	})
	Register(Definition{
		Name:    "fig4-transpose",
		Summary: "NEW: Fig. 4's mixed workload with matrix-transpose unicast destinations",
		New: func() Spec {
			return Spec{
				Name: "fig4-transpose", ID: "Fig.4-transpose",
				Workload: Mixed, Axis: AxisLoad,
				// A palindromic 16×8×16 shape: every unicast crosses to
				// its coordinate reversal, so the background is a fixed
				// permutation with long deterministic paths instead of
				// the uniform cloud — adversarial for dimension-order
				// routing, which funnels the whole permutation through a
				// predictable set of turning channels.
				Dims:    []int{16, 8, 16},
				Pattern: PatternTranspose,
			}
		},
	})
	Register(Definition{
		Name:    "saturation",
		Summary: "NEW: mean broadcast latency vs injection gap on 8×8×8 (the perf benchmark's workload as a sweep)",
		New: func() Spec {
			sat := metrics.SaturationConfig(0)
			return Spec{
				Name: "saturation", ID: "Saturation",
				Workload: Contended, Axis: AxisInterarrival,
				Metric: MetricLatency,
				Dims:   metrics.SaturationDims(),
				Xs:     metrics.SaturationInterarrivals(),
				Length: sat.Length,
				Reps:   sat.Broadcasts,
			}
		},
	})
}

// fig2Spec is the shared contended grid behind fig2, table1 and
// table2 — one spec, three projections.
func fig2Spec() Spec {
	return Spec{Name: "fig2", ID: "Fig.2", Workload: Contended, Axis: AxisSize}
}

// ablationSpec is the common shape of the DESIGN.md ablations: an
// 8×8×8 mesh, 10 replications, Ts=1.5 µs.
func ablationSpec(name, id string, axis Axis, xs []float64) Spec {
	return Spec{
		Name: name, ID: id,
		Workload: Uncontended, Axis: axis,
		Dims: []int{8, 8, 8},
		Xs:   xs,
		Reps: 10,
	}
}
