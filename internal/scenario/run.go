package scenario

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/broadcast"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Result is what running a scenario produces. Figure is always set;
// Table1 and Table2 are set for contended runs whose algorithm set
// contains the paper's four (they are free projections of the same
// study grid, so they are always computed together — running the
// "fig2", "table1" and "table2" scenarios costs one grid, not three).
type Result struct {
	// Spec is the fully resolved spec the run executed — every
	// default filled in.
	Spec   Spec
	Figure *Figure
	// Table1 is the DB-improvement projection (paper Table 1).
	Table1 *CVTable
	// Table2 is the AB-improvement projection (paper Table 2).
	Table2 *CVTable
}

// Primary returns the artifact the spec selects: one of the tables
// for table1/table2 specs, the figure otherwise.
func (r *Result) Primary() interface{ Format() string } {
	switch r.Spec.Artifact {
	case ArtifactTable1:
		return r.Table1
	case ArtifactTable2:
		return r.Table2
	default:
		return r.Figure
	}
}

// PaperAlgorithms returns the four algorithms in the paper's
// presentation order.
func PaperAlgorithms() []broadcast.Algorithm {
	return []broadcast.Algorithm{
		broadcast.NewRD(),
		broadcast.NewEDN(),
		broadcast.NewDB(),
		broadcast.NewAB(),
	}
}

// algorithmsFor resolves algorithm names to planners.
func algorithmsFor(names []string) ([]broadcast.Algorithm, error) {
	algos := make([]broadcast.Algorithm, 0, len(names))
	for _, name := range names {
		switch name {
		case "RD":
			algos = append(algos, broadcast.NewRD())
		case "EDN":
			algos = append(algos, broadcast.NewEDN())
		case "DB":
			algos = append(algos, broadcast.NewDB())
		case "AB":
			algos = append(algos, broadcast.NewAB())
		default:
			return nil, fmt.Errorf("unknown algorithm %q (want RD, EDN, DB or AB)", name)
		}
	}
	return algos, nil
}

// substrateFor resolves a substrate name to a routing selector on m
// (nil for deterministic dimension-order). The turn-model names
// resolve to their torus-capable variants on a wrapped mesh, so the
// substrate ablation runs on either topology kind.
func substrateFor(name string, m *topology.Mesh) routing.Selector {
	switch name {
	case "west-first":
		return routing.WestFirstFor(m)
	case "odd-even":
		return routing.OddEvenFor(m)
	case "dateline-dor":
		return routing.NewDatelineDOR(m)
	default: // "dor": Execute's default path
		return nil
	}
}

// Run executes one scenario: it resolves the spec's defaults, fans
// the workload's independent simulations out over a runner.Pool, and
// aggregates the results into a Figure (and, for contended runs over
// the paper's algorithms, Tables 1–2) in replication order — so the
// output is bit-identical for any Procs value, and byte-identical to
// the legacy per-figure drivers this run loop replaced.
//
// Cancelling ctx stops the dispatch of new simulations and drains
// in-flight workers; Run then returns ctx.Err().
func Run(ctx context.Context, spec Spec) (*Result, error) {
	rs := spec.applyDefaults()
	if err := rs.validate(); err != nil {
		return nil, err
	}
	algos, err := algorithmsFor(rs.Algorithms)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", rs.Name, err)
	}
	res := &Result{Spec: rs}
	switch rs.Workload {
	case Contended:
		switch {
		case rs.Axis == AxisFaults:
			err = runFaults(ctx, &rs, algos, res)
		case rs.Faults.active():
			err = runContendedFaulted(ctx, &rs, algos, res)
		default:
			err = runContended(ctx, &rs, algos, res)
		}
	case Mixed:
		err = runMixed(ctx, &rs, algos, res)
	default:
		if rs.Axis == AxisSubstrate {
			err = runSubstrate(ctx, &rs, algos[0], res)
		} else {
			err = runUncontended(ctx, &rs, algos, res)
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// pool builds the worker pool for one run: Procs workers (0 = one per
// core) ticking a live progress counter expecting total completions.
// A sharded run multiplies threads per simulation, so the default
// width shrinks to GOMAXPROCS/Shards — an explicit Procs is honoured
// as given.
func (s *Spec) pool(total int) *runner.Pool {
	procs := s.Procs
	if procs <= 0 && s.Shards > 1 {
		procs = runtime.GOMAXPROCS(0) / s.Shards
		if procs < 1 {
			procs = 1
		}
	}
	return runner.New(procs).NotifyEach(runner.NewProgress(total, s.Progress).Tick)
}

// netConfig returns the paper's network constants with the spec's
// startup latency, virtual-channel count and shard count.
func (s *Spec) netConfig() network.Config {
	cfg := network.DefaultConfig()
	cfg.Ts = s.Ts
	cfg.VCs = s.VCs
	cfg.Store = s.storeMode()
	cfg.Shards = s.Shards
	return cfg
}

// source returns the replication's broadcast source, a pure function
// of (Seed, rep) so any execution order reproduces it.
func (s *Spec) source(m *topology.Mesh, rep int) topology.NodeID {
	return topology.NodeID(sim.Substream(s.Seed, uint64(rep)).Intn(m.Nodes()))
}

// sweepCells resolves the sweep into (topology, x) cells: one mesh
// per size on the size axis, the fixed topology with scalar xs
// otherwise. fixed is non-nil only for non-size axes.
func (s *Spec) sweepCells() (topos []*topology.Mesh, xs []float64, fixed *topology.Mesh) {
	if s.Axis == AxisSize {
		topos = make([]*topology.Mesh, len(s.Sizes))
		xs = make([]float64, len(s.Sizes))
		for i, dims := range s.Sizes {
			topos[i] = s.buildTopo(dims)
			xs[i] = float64(topos[i].Nodes())
		}
		return topos, xs, nil
	}
	fixed = s.buildTopo(s.Dims)
	xs = s.Xs
	topos = make([]*topology.Mesh, len(xs))
	for i := range topos {
		topos[i] = fixed
	}
	return topos, xs, fixed
}

// runUncontended executes the replicated single-source workload: the
// FULL algos×xs×reps index space is submitted to the pool as one map,
// so parallelism is never capped by a single cell's replication count
// and there is no barrier between cells. Replication i of every cell
// draws its source from sim.Substream(Seed, i) and aggregation runs
// in replication order.
func runUncontended(ctx context.Context, s *Spec, algos []broadcast.Algorithm, res *Result) error {
	topos, xs, fixed := s.sweepCells()
	title, xl, yl := s.headings(fixed)
	fig := &Figure{ID: s.ID, Title: title, XLabel: xl, YLabel: yl}

	reps := s.Reps
	jobs := len(algos) * len(xs) * reps
	p := s.pool(jobs)
	lats, err := runner.MapCtx(ctx, p, jobs, func(k int) (float64, error) {
		algo := algos[k/(len(xs)*reps)]
		xi := (k / reps) % len(xs)
		m := topos[xi]
		src := s.source(m, k%reps)
		lat, err := s.runOneBroadcast(m, algo, src, xs[xi])
		if err != nil {
			return 0, fmt.Errorf("%s %s on %s at x=%g: %w", s.Name, algo.Name(), m.Name(), xs[xi], err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	for a, algo := range algos {
		series := Series{Label: algo.Name()}
		for xi, x := range xs {
			var acc stats.Accumulator
			base := (a*len(xs) + xi) * reps
			for i := 0; i < reps; i++ {
				acc.Add(lats[base+i])
			}
			series.Points = append(series.Points, Point{X: x, Y: acc.Mean(), CI: acc.Confidence95()})
		}
		fig.Series = append(fig.Series, series)
	}
	res.Figure = fig
	return nil
}

// runOneBroadcast executes one uncontended replication with the
// spec's axis applied. The ports axis bypasses RunSingle because
// RunSingle pins the port count to the algorithm's own model.
func (s *Spec) runOneBroadcast(m *topology.Mesh, algo broadcast.Algorithm, src topology.NodeID, x float64) (float64, error) {
	ncfg := s.netConfig()
	length := s.Length
	switch s.Axis {
	case AxisLength:
		length = int(x)
	case AxisHopDelay:
		ncfg.HopDelay = x
	case AxisTs:
		ncfg.Ts = x
	case AxisVCs:
		ncfg.VCs = int(x)
	case AxisPorts:
		// The ports axis overrides the router model RunSingle would
		// pin to the algorithm, so it plans and executes explicitly —
		// with the paper's west-first substrate under AB.
		ncfg.Ports = int(x)
		var adaptive routing.Selector
		if algo.Name() == "AB" {
			adaptive = routing.WestFirstFor(m)
		}
		return executePlanned(m, algo, src, ncfg, length, adaptive)
	}
	r, err := broadcast.RunSingle(m, algo, src, ncfg, length)
	if err != nil {
		return 0, err
	}
	return r.Latency(), nil
}

// executePlanned plans and executes one broadcast on a fresh network
// without RunSingle's config rewriting; the selector — nil (plain
// DOR) included — is used as-is.
func executePlanned(m *topology.Mesh, algo broadcast.Algorithm, src topology.NodeID,
	ncfg network.Config, length int, adaptive routing.Selector) (float64, error) {
	plan, err := algo.Plan(m, src)
	if err != nil {
		return 0, err
	}
	if err := plan.Validate(m); err != nil {
		return 0, err
	}
	sm := sim.New()
	net, err := network.New(sm, m, ncfg)
	if err != nil {
		return 0, err
	}
	r, err := broadcast.Execute(net, plan, broadcast.Options{
		Length:   length,
		Adaptive: adaptive,
		Tag:      "scenario",
	})
	if err != nil {
		return 0, err
	}
	sm.Run()
	if !r.Done {
		return 0, fmt.Errorf("broadcast stalled with %d/%d informed", r.Informed, m.Nodes())
	}
	return r.Latency(), nil
}

// runSubstrate executes the substrate-comparison sweep: one series
// per routing substrate, x the replication index, all substrates
// replaying the same Substream-derived source sequence so the
// comparison is paired.
func runSubstrate(ctx context.Context, s *Spec, algo broadcast.Algorithm, res *Result) error {
	m := s.buildTopo(s.Dims)
	title, xl, yl := s.headings(m)
	fig := &Figure{ID: s.ID, Title: title, XLabel: xl, YLabel: yl}

	reps := s.Reps
	jobs := len(s.Substrates) * reps
	p := s.pool(jobs)
	lats, err := runner.MapCtx(ctx, p, jobs, func(k int) (float64, error) {
		sub, rep := s.Substrates[k/reps], k%reps
		lat, err := executePlanned(m, algo, s.source(m, rep), s.netConfig(), s.Length, substrateFor(sub, m))
		if err != nil {
			return 0, fmt.Errorf("%s %s: %w", s.Name, sub, err)
		}
		return lat, nil
	})
	if err != nil {
		return err
	}
	for si, sub := range s.Substrates {
		series := Series{Label: sub}
		for i := 0; i < reps; i++ {
			series.Points = append(series.Points, Point{X: float64(i), Y: lats[si*reps+i]})
		}
		fig.Series = append(fig.Series, series)
	}
	res.Figure = fig
	return nil
}

// runContended executes the shared-network CV/latency study grid: one
// (algorithm, x) cell is a single discrete-event simulation, so the
// cell — not the replication — is the unit of parallelism. The grid
// always projects into the figure; when the algorithm set carries the
// paper's four, it also projects into Tables 1–2.
func runContended(ctx context.Context, s *Spec, algos []broadcast.Algorithm, res *Result) error {
	topos, xs, fixed := s.sweepCells()
	title, xl, yl := s.headings(fixed)
	fig := &Figure{ID: s.ID, Title: title, XLabel: xl, YLabel: yl}

	cells := len(algos) * len(xs)
	p := s.pool(cells)
	grid, err := runner.MapCtx(ctx, p, cells, func(k int) (*metrics.SingleSourceStats, error) {
		algo, xi := algos[k/len(xs)], k%len(xs)
		m := topos[xi]
		gap := s.Interarrival
		if s.PerNodeInterarrival > 0 {
			gap = s.PerNodeInterarrival / float64(m.Nodes())
		}
		if s.Axis == AxisInterarrival {
			gap = xs[xi]
		}
		ncfg := s.netConfig()
		if s.Axis == AxisVCs {
			ncfg.VCs = int(xs[xi])
		}
		st, err := metrics.ContendedCVStudy(m, algo, metrics.ContendedConfig{
			Net:          ncfg,
			Length:       s.Length,
			Broadcasts:   s.Reps,
			Interarrival: gap,
			Seed:         s.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s %s on %s: %w", s.Name, algo.Name(), m.Name(), err)
		}
		return st, nil
	})
	if err != nil {
		return err
	}
	for a, algo := range algos {
		series := Series{Label: algo.Name()}
		for xi, x := range xs {
			st := grid[a*len(xs)+xi]
			point := Point{X: x}
			if s.Metric == MetricLatency {
				point.Y, point.CI = st.Latency.Mean(), st.Latency.Confidence95()
			} else {
				point.Y, point.CI = st.CV.Mean(), st.CV.Confidence95()
			}
			series.Points = append(series.Points, point)
		}
		fig.Series = append(fig.Series, series)
	}
	res.Figure = fig
	res.Table1, res.Table2 = tablesFrom(s, algos, topos, grid)
	return nil
}

// tablesFrom projects a contended study grid into the paper's Tables
// 1 (DB improvement) and 2 (AB improvement). It returns nils unless
// the grid covers the paper's four algorithms.
func tablesFrom(s *Spec, algos []broadcast.Algorithm, topos []*topology.Mesh, grid []*metrics.SingleSourceStats) (*CVTable, *CVTable) {
	index := map[string]int{}
	for a, algo := range algos {
		index[algo.Name()] = a
	}
	for _, need := range []string{"RD", "EDN", "DB", "AB"} {
		if _, ok := index[need]; !ok {
			return nil, nil
		}
	}
	nx := len(topos)
	t1 := &CVTable{ID: "Table 1", Proposed: "DB"}
	t2 := &CVTable{ID: "Table 2", Proposed: "AB"}
	for xi, m := range topos {
		cell := func(name string) *metrics.SingleSourceStats { return grid[index[name]*nx+xi] }
		t1.Columns = append(t1.Columns, CVColumn{
			Mesh:       m.Name(),
			Nodes:      m.Nodes(),
			ProposedCV: cell("DB").CV.Mean(),
			Rows:       metrics.Improvements(cell("DB"), cell("RD"), cell("EDN")),
		})
		t2.Columns = append(t2.Columns, CVColumn{
			Mesh:       m.Name(),
			Nodes:      m.Nodes(),
			ProposedCV: cell("AB").CV.Mean(),
			Rows:       metrics.Improvements(cell("AB"), cell("RD"), cell("EDN")),
		})
	}
	return t1, t2
}

// runMixed executes the §3.3 open-loop workload over the load axis:
// one (algorithm, load) point is a single closed simulation. Each
// point's seed depends only on its load index, so the figure is
// bit-identical for any Procs value.
func runMixed(ctx context.Context, s *Spec, algos []broadcast.Algorithm, res *Result) error {
	m := s.buildTopo(s.Dims)
	title, xl, yl := s.headings(m)
	fig := &Figure{ID: s.ID, Title: title, XLabel: xl, YLabel: yl}

	maxInjected := s.MaxInjected
	if maxInjected <= 0 {
		maxInjected = traffic.DefaultMaxInjected(m.Nodes(), s.Batches*s.BatchSize)
	}
	nl := len(s.Xs)
	points := len(algos) * nl
	p := s.pool(points)
	results, err := runner.MapCtx(ctx, p, points, func(k int) (Point, error) {
		algo, load := algos[k/nl], s.Xs[k%nl]
		var unicast, adaptive routing.Selector
		if algo.Name() == "AB" {
			wf := routing.WestFirstFor(m)
			unicast, adaptive = wf, wf
		}
		ncfg := s.netConfig()
		ncfg.Ports = algo.Ports()
		tcfg := traffic.MixedConfig{
			Rate:              load * s.LoadScale / 1000, // messages/ms -> messages/µs
			BroadcastFraction: s.BroadcastFraction,
			Length:            s.Length,
			Algorithm:         algo,
			Unicast:           unicast,
			Adaptive:          adaptive,
			Seed:              s.Seed + uint64(k%nl)*1009,
			BatchSize:         s.BatchSize,
			Batches:           s.Batches,
			Warmup:            s.Warmup,
			MaxTime:           s.MaxTime,
			MaxInjected:       maxInjected,
		}
		switch s.Pattern {
		case PatternHotspot:
			tcfg.HotspotFraction = s.HotspotFraction
			tcfg.Hotspot = topology.NodeID(m.Nodes() / 2)
		case PatternTranspose, PatternBitReversal:
			// The traffic layer uses the same spellings.
			tcfg.Pattern = s.Pattern
		}
		r, err := traffic.RunMixedWith(m, ncfg, tcfg)
		if err != nil {
			return Point{}, fmt.Errorf("%s %s at %g msg/ms: %w", s.ID, algo.Name(), load, err)
		}
		return Point{X: load, Y: r.MeanLatency, CI: r.CI}, nil
	})
	if err != nil {
		return err
	}
	for a, algo := range algos {
		// Three-index slices cap each series' capacity at its own
		// window so an append by a consumer can never clobber the
		// next series' points in the shared backing array.
		fig.Series = append(fig.Series, Series{
			Label:  algo.Name(),
			Points: results[a*nl : (a+1)*nl : (a+1)*nl],
		})
	}
	res.Figure = fig
	return nil
}
