package scenario_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// shrink returns run options that make any registered scenario cheap
// enough for the round-trip matrix: tiny meshes, two sweep values,
// minimal replication.
func shrink(spec *scenario.Spec) {
	spec.Reps = 2
	spec.Seed = 7
	if spec.Axis == scenario.AxisSize {
		spec.Sizes = [][]int{{3, 3, 3}, {4, 4, 4}}
	} else {
		spec.Dims = []int{4, 4, 4}
		if len(spec.Xs) > 2 {
			spec.Xs = spec.Xs[:2]
		}
	}
	if spec.Workload == scenario.Contended {
		spec.Reps = 4
	}
	if spec.Workload == scenario.Mixed {
		spec.Xs = []float64{0.005, 0.02}
		spec.Batches, spec.BatchSize, spec.Warmup = 2, 10, 1
	}
}

// TestRegistryRoundTrip runs EVERY registered scenario at tiny
// replication — the guarantee that registration alone makes a
// scenario executable. Run under -race (CI does) this doubles as a
// data-race probe over every workload's fan-out path.
func TestRegistryRoundTrip(t *testing.T) {
	names := scenario.Names()
	if len(names) < 14 {
		t.Fatalf("registry has %d scenarios (%v), want the 11 legacy + new ones", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec, err := scenario.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			shrink(&spec)
			res, err := scenario.Run(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Figure == nil || len(res.Figure.Series) == 0 {
				t.Fatalf("%s: empty figure", name)
			}
			for _, s := range res.Figure.Series {
				if len(s.Points) == 0 {
					t.Errorf("%s: series %s has no points", name, s.Label)
				}
			}
			if res.Figure.Format() == "" {
				t.Errorf("%s: empty rendering", name)
			}
			switch res.Spec.Artifact {
			case scenario.ArtifactTable1, scenario.ArtifactTable2:
				if res.Table1 == nil || res.Table2 == nil {
					t.Errorf("%s: table artifact without tables", name)
				}
			}
		})
	}
}

// TestRunDeterministicAcrossProcs pins the orchestration guarantee
// for the scenarios that did NOT exist before the redesign (the
// legacy ones are covered by the experiments determinism tests):
// Run's output is byte-identical for any worker count.
func TestRunDeterministicAcrossProcs(t *testing.T) {
	for _, name := range []string{
		"fig1-ts", "fig2-torus", "fig2-torus-vc", "saturation", "saturation-torus",
		"fig2-faults", "faults-adaptive", "faults-transient",
	} {
		t.Run(name, func(t *testing.T) {
			render := func(procs int) string {
				spec, err := scenario.Build(name, scenario.WithProcs(procs))
				if err != nil {
					t.Fatal(err)
				}
				shrink(&spec)
				spec.Procs = procs
				res, err := scenario.Run(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				return res.Figure.Format()
			}
			want := render(1)
			for _, procs := range []int{4, 0} {
				if got := render(procs); got != want {
					t.Errorf("procs=%d output differs from serial\n--- procs=1 ---\n%s\n--- procs=%d ---\n%s",
						procs, want, procs, got)
				}
			}
		})
	}
}

// TestZeroValueSpecsRunnable pins the Spec doc contract: the zero
// value plus a Workload resolves to a runnable paper-default spec
// (shrunk here only to keep the test fast).
func TestZeroValueSpecsRunnable(t *testing.T) {
	for _, w := range []scenario.Workload{scenario.Uncontended, scenario.Contended, scenario.Mixed} {
		spec := scenario.Spec{Workload: w}
		shrink(&spec)
		if _, err := scenario.Run(context.Background(), spec); err != nil {
			t.Errorf("zero-value %s spec failed: %v", w, err)
		}
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, err := scenario.Build("fig1")
	if err != nil {
		t.Fatal(err)
	}
	shrink(&spec)
	if _, err := scenario.Run(ctx, spec); err != context.Canceled {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
}

func TestBuildUnknownNameListsAvailable(t *testing.T) {
	_, err := scenario.Build("fig99")
	if err == nil {
		t.Fatal("expected error for unknown scenario")
	}
	for _, name := range []string{"fig1", "fig2", "ablation-hop"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestValidateRejectsContradictorySpecs(t *testing.T) {
	bad := []scenario.Spec{
		{Workload: "quantum"},
		{Workload: scenario.Mixed, Axis: scenario.AxisPorts},
		{Algorithms: []string{"XYZ"}},
		{Axis: scenario.AxisSubstrate, Algorithms: []string{"AB", "DB"}},
		{Workload: scenario.Uncontended, Artifact: scenario.ArtifactTable1},
		// Table projections need the paper's four algorithms; with a
		// subset the run would emit nil tables into every sink.
		{Workload: scenario.Contended, Artifact: scenario.ArtifactTable1, Algorithms: []string{"RD", "EDN", "DB"}},
		{Topo: "hyperloop"},
		// VC sweep values must be integers >= 1: the run loop
		// truncates to int and the network reads 0 as 1, so these
		// would silently mislabel their points.
		{Workload: scenario.Contended, Axis: scenario.AxisVCs, Xs: []float64{0.5, 1}},
		{Workload: scenario.Uncontended, Axis: scenario.AxisVCs, Dims: []int{3, 3}, Xs: []float64{1.5}},
		// Active faults need the contended workload; the faults axis
		// sweeps integer link counts; churn needs heal timings; Topos
		// and the degradation metrics are fault-axis-only.
		{Workload: scenario.Uncontended, Faults: &scenario.FaultSpec{Links: 4}},
		{Workload: scenario.Contended, Axis: scenario.AxisFaults, Xs: []float64{0, 2.5}},
		{Workload: scenario.Contended, Axis: scenario.AxisFaults, Faults: &scenario.FaultSpec{Strikes: 2}},
		{Workload: scenario.Contended, Topos: []string{scenario.TopoMesh, scenario.TopoTorus}},
		{Workload: scenario.Contended, Axis: scenario.AxisFaults, Topos: []string{"hyperloop"}},
		{Workload: scenario.Contended, Metric: scenario.MetricCoverage},
		{Workload: scenario.Contended, Metric: scenario.MetricInflation, Axis: scenario.AxisFaults, Xs: []float64{2, 4}},
		{Workload: scenario.Contended, Axis: scenario.AxisFaults, Artifact: scenario.ArtifactTable1},
	}
	for i, spec := range bad {
		if _, err := scenario.Run(context.Background(), spec); err == nil {
			t.Errorf("spec %d: invalid spec ran without error", i)
		}
	}
}

func TestWithMeshCollapsesSizeSweep(t *testing.T) {
	spec, err := scenario.Build("fig2", scenario.WithMesh(4, 4, 8), scenario.WithReps(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Sizes) != 1 || spec.Sizes[0][2] != 8 {
		t.Fatalf("WithMesh did not collapse the size sweep: %v", spec.Sizes)
	}
	if spec.Reps != 40 {
		t.Fatalf("WithReps not applied: %d", spec.Reps)
	}
}

func TestSinksEmitPrimaryArtifact(t *testing.T) {
	spec, err := scenario.Build("fig2",
		scenario.WithSizes([]int{3, 3, 3}), scenario.WithReps(4), scenario.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var text, js bytes.Buffer
	res, err := scenario.RunTo(context.Background(), spec,
		scenario.NewTextSink(&text), scenario.NewJSONSink(&js))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text.String(), "Fig.2: ") {
		t.Errorf("text sink output %q does not start with the figure heading", text.String())
	}
	var doc struct {
		Name   string           `json:"name"`
		Figure *scenario.Figure `json:"figure"`
		Table1 *scenario.CVTable
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("JSON sink produced invalid JSON: %v", err)
	}
	if doc.Name != "fig2" || doc.Figure == nil || len(doc.Figure.Series) != 4 {
		t.Errorf("JSON sink round-trip lost data: %+v", doc)
	}
	if doc.Table1 == nil {
		t.Error("JSON sink dropped the table projection")
	}
	if res.Table1 == nil || res.Table2 == nil {
		t.Error("contended run over the paper's algorithms missing table projections")
	}
}
