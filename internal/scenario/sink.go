package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// Sink receives a finished scenario result. Sinks are how run output
// leaves the library: text for the paper's layout, JSON for machines,
// and internal/export's CSV sink for plotting pipelines.
type Sink interface {
	Emit(r *Result) error
}

// RunTo runs the spec and streams the result into every sink in
// order. The result is still returned, so callers can both persist
// and inspect it.
func RunTo(ctx context.Context, spec Spec, sinks ...Sink) (*Result, error) {
	r, err := Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	for _, s := range sinks {
		if err := s.Emit(r); err != nil {
			return nil, fmt.Errorf("scenario %s: sink: %w", r.Spec.Name, err)
		}
	}
	return r, nil
}

// textSink renders the primary artifact in the paper's aligned-table
// layout — the format cmd/paperbench prints.
type textSink struct{ w io.Writer }

// NewTextSink returns a sink that writes the primary artifact's
// Format() to w, followed by a blank line.
func NewTextSink(w io.Writer) Sink { return textSink{w} }

func (s textSink) Emit(r *Result) error {
	_, err := fmt.Fprintln(s.w, r.Primary().Format())
	return err
}

// jsonSink emits the structured result as one JSON document.
type jsonSink struct{ w io.Writer }

// NewJSONSink returns a sink that writes the full result — name,
// figure, and (for contended runs) both tables — as indented JSON.
func NewJSONSink(w io.Writer) Sink { return jsonSink{w} }

func (s jsonSink) Emit(r *Result) error {
	doc := struct {
		Name     string   `json:"name"`
		Workload Workload `json:"workload"`
		Axis     Axis     `json:"axis"`
		Seed     uint64   `json:"seed"`
		Reps     int      `json:"reps"`
		Figure   *Figure  `json:"figure"`
		Table1   *CVTable `json:"table1,omitempty"`
		Table2   *CVTable `json:"table2,omitempty"`
	}{
		Name:     r.Spec.Name,
		Workload: r.Spec.Workload,
		Axis:     r.Spec.Axis,
		Seed:     r.Spec.Seed,
		Reps:     r.Spec.Reps,
		Figure:   r.Figure,
		Table1:   r.Table1,
		Table2:   r.Table2,
	}
	enc := json.NewEncoder(s.w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
