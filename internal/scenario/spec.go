package scenario

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Workload selects the traffic pattern a scenario simulates.
type Workload string

const (
	// Uncontended replicates single-source broadcasts on an idle
	// network (Fig. 1 and the ablations): the unit of parallelism is
	// one replication.
	Uncontended Workload = "uncontended"
	// Contended injects overlapping broadcasts with exponential
	// inter-arrival times into one shared network (Fig. 2, Tables
	// 1–2, the saturation sweeps): the unit of parallelism is one
	// (algorithm, x) study cell.
	Contended Workload = "contended"
	// Mixed is the §3.3 open-loop workload: every node generates
	// messages at exponential intervals, split between unicast and
	// broadcast (Figs. 3–4): the unit of parallelism is one
	// (algorithm, load) point.
	Mixed Workload = "mixed"
)

// Axis selects what a scenario sweeps — the meaning of the figure's
// x values.
type Axis string

const (
	// AxisSize sweeps over topology shapes (Spec.Sizes); x is the
	// node count.
	AxisSize Axis = "size"
	// AxisLength sweeps the message length in flits (Spec.Xs).
	AxisLength Axis = "length"
	// AxisHopDelay sweeps the per-hop header routing delay in µs.
	AxisHopDelay Axis = "hop-delay"
	// AxisPorts sweeps the router injection-port count.
	AxisPorts Axis = "ports"
	// AxisTs sweeps the startup latency in µs.
	AxisTs Axis = "ts"
	// AxisSubstrate compares routing substrates (Spec.Substrates);
	// x is the replication index and each substrate is a series.
	AxisSubstrate Axis = "substrate"
	// AxisLoad sweeps the per-node offered load in msg/ms (mixed
	// workload).
	AxisLoad Axis = "load"
	// AxisInterarrival sweeps the mean broadcast injection gap in µs
	// (contended workload).
	AxisInterarrival Axis = "interarrival"
	// AxisVCs sweeps the virtual-channel count per physical channel
	// (uncontended or contended workloads; primarily a torus study —
	// on meshes extra VCs only relieve head-of-line blocking).
	AxisVCs Axis = "vcs"
	// AxisFaults sweeps the number of failed undirected links
	// (contended workload); x is the failed-link count and the fault
	// sets nest along the axis — a larger x fails a strict superset
	// of a smaller x's links (see internal/fault.RandomLinks).
	AxisFaults Axis = "faults"
)

// Metric selects the y value a contended scenario reports.
type Metric string

const (
	// MetricCV reports the coefficient of variation of destination
	// arrival times — the paper's node-level metric.
	MetricCV Metric = "cv"
	// MetricLatency reports the mean broadcast latency.
	MetricLatency Metric = "latency"
	// MetricCoverage reports delivery coverage — the fraction of
	// destinations each broadcast reached. Only meaningful with fault
	// injection (it is identically 1 on a pristine network).
	MetricCoverage Metric = "coverage"
	// MetricInflation reports latency inflation: each faulted cell's
	// mean reached-destination latency over the pristine (x=0) cell's
	// of the same series. Faults axis only; the sweep must start at 0.
	MetricInflation Metric = "inflation"
)

// Artifact names the primary output of a scenario — what a CSV sink
// exports and what `sweep` prints.
type Artifact string

const (
	// ArtifactFigure is the scenario's figure (the default).
	ArtifactFigure Artifact = "figure"
	// ArtifactTable1 is the DB-improvement table projection of a
	// contended grid (paper Table 1).
	ArtifactTable1 Artifact = "table1"
	// ArtifactTable2 is the AB-improvement table projection (Table 2).
	ArtifactTable2 Artifact = "table2"
)

// Topology kinds a spec can name.
const (
	TopoMesh  = "mesh"
	TopoTorus = "torus"
)

// Unicast destination patterns of the mixed workload.
const (
	// PatternUniform is the paper's pattern: every unicast targets a
	// uniformly random destination (the default).
	PatternUniform = "uniform"
	// PatternHotspot sends a fraction of unicasts to one hotspot
	// node — the topology's center, node Nodes()/2 — and the rest
	// uniformly. The classic contended-memory-module pattern.
	PatternHotspot = "hotspot"
	// PatternTranspose sends every unicast to the source's coordinate
	// reversal — the matrix-transpose permutation; needs a
	// palindromic shape (see internal/traffic).
	PatternTranspose = "transpose"
	// PatternBitReversal sends node i's unicasts to the node indexed
	// by i's bit reversal — the FFT permutation.
	PatternBitReversal = "bit-reversal"
)

// Spec is the declarative description of one experiment scenario.
// The zero value plus a Workload is runnable: every unset knob
// defaults to the paper's value for that workload. Specs are plain
// data (Progress aside) — build them literally, through the
// [Registry], or with [Option]s via Build.
type Spec struct {
	// Name identifies the scenario (the registry key). Defaults to
	// the workload name for anonymous specs.
	Name string
	// ID is the figure/table heading, e.g. "Fig.1". Defaults to Name.
	ID string
	// Title, XLabel and YLabel override the derived figure headings;
	// empty means derive them from Workload and Axis exactly as the
	// legacy drivers did.
	Title, XLabel, YLabel string
	// Artifact is the primary output (figure by default). Contended
	// runs with the paper's four algorithms always compute Tables
	// 1–2 as well; table1/table2 merely select which one sinks emit.
	Artifact Artifact

	// Workload selects the traffic pattern (default Uncontended).
	Workload Workload
	// Axis selects the sweep (default AxisSize).
	Axis Axis
	// Topo is the topology kind: TopoMesh (default) or TopoTorus.
	Topo string
	// Topos, on the faults axis only, compares topology kinds side by
	// side: every (algorithm, kind) pair becomes one series under the
	// same fault plan family. nil means just Topo.
	Topos []string
	// Dims is the fixed topology shape for non-size axes (default
	// 8×8×8).
	Dims []int
	// Sizes lists the topology shapes of an AxisSize sweep; nil
	// means the paper's sizes for the workload.
	Sizes [][]int
	// Xs lists the sweep values for the scalar axes (length,
	// hop-delay, ports, ts, load, interarrival); nil means the
	// paper's values where the axis has one.
	Xs []float64

	// Algorithms names the broadcast algorithms to compare; nil
	// means the paper's four (RD, EDN, DB, AB) in its order.
	Algorithms []string
	// Substrates names the routing substrates of an AxisSubstrate
	// sweep; nil means west-first, odd-even, dor.
	Substrates []string

	// Length is the message length in flits (workload default: 100
	// uncontended, 64 contended, 32 mixed).
	Length int
	// Ts is the startup latency in µs (default 1.5).
	Ts float64
	// VCs is the virtual-channel count per physical channel. Zero
	// defaults to 1 on meshes (the paper's single-queue channel,
	// byte-identical to the pre-VC goldens) and 2 on tori (the
	// dateline pair that makes minimal routing deadlock-free there).
	VCs int
	// Metric is the contended y value (default MetricCV).
	Metric Metric
	// Store selects the substrate memory model: "" or "auto" (dense
	// below 2^16 nodes, lazy at and above — the default every golden
	// scenario resolves to dense), "dense", or "lazy". Lazy pairs a
	// paged allocate-on-first-contention network store with implicit
	// (table-free) topology adjacency; the two models are
	// observationally equivalent (see internal/network/store.go).
	Store string

	// Interarrival is the contended mean injection gap in µs
	// (default 5, Fig. 2's light overlapping load).
	Interarrival float64
	// Faults configures deterministic fault injection (faults.go).
	// nil leaves the fault machinery entirely unengaged. The empty
	// FaultSpec is valid on ANY workload and is a guaranteed no-op:
	// output stays byte-identical to a nil-Faults run. An active
	// fault set (links, nodes or churn strikes) needs the contended
	// workload.
	Faults *FaultSpec
	// PerNodeInterarrival, when set, overrides Interarrival with
	// PerNodeInterarrival/Nodes so the per-node broadcast rate is
	// constant across sizes.
	PerNodeInterarrival float64

	// LoadScale multiplies the mixed injected rate (default 320; see
	// Fig34Config in internal/experiments and EXPERIMENTS.md).
	LoadScale float64
	// BroadcastFraction is the mixed broadcast share (default 0.10).
	BroadcastFraction float64
	// Pattern selects the mixed unicast destination distribution:
	// "" or PatternUniform (the paper's uniform random destinations)
	// or PatternHotspot.
	Pattern string
	// HotspotFraction is the probability a unicast targets the
	// hotspot node under PatternHotspot (default 0.1). Ignored — and
	// rejected if set — under the uniform pattern.
	HotspotFraction float64
	// BatchSize, Batches, Warmup configure the mixed batch-means
	// estimator (default 100×21, first discarded).
	BatchSize, Batches, Warmup int
	// MaxTime bounds each mixed run in simulated µs (0 = driver
	// default).
	MaxTime sim.Time
	// MaxInjected bounds the injected messages per mixed run (0 =
	// 10× the measured window, 3× on meshes above 1024 nodes).
	MaxInjected int

	// Shards partitions EACH simulation across this many shard
	// calendars of the conservative-parallel kernel (internal/sim).
	// 0 or 1 is the serial kernel. Like Procs, Shards is an
	// orchestration knob: output is bit-identical at every shard
	// count (the kernel's core guarantee), so it is excluded from the
	// canonical cache key. Shards multiply threads per simulation, so
	// the run loop divides the default worker-pool width by Shards to
	// keep total thread count at one per core.
	Shards int
	// Reps is the replication count: replications per point
	// (uncontended), measured broadcasts per study (contended).
	// Default 40; the ablations register 10.
	Reps int
	// Seed drives all randomness; replication i of any cell draws
	// from sim.Substream(Seed, i), so output is independent of Procs.
	Seed uint64
	// Procs caps the worker count; 0 means one worker per core.
	Procs int
	// Progress, when non-nil, receives (done, total) completed-job
	// counts as the run advances. Calls are serialised.
	Progress func(done, total int)
}

// Option mutates a Spec; the facade's functional options (WithMesh,
// WithReps, …) and Build compose them over a registered base spec.
type Option func(*Spec)

// applyDefaults fills every unset knob with the workload's paper
// default, returning the resolved copy Run executes.
func (s Spec) applyDefaults() Spec {
	if s.Workload == "" {
		s.Workload = Uncontended
	}
	if s.Axis == "" {
		if s.Workload == Mixed {
			s.Axis = AxisLoad
		} else {
			s.Axis = AxisSize
		}
	}
	if s.Name == "" {
		s.Name = string(s.Workload)
	}
	if s.ID == "" {
		s.ID = s.Name
	}
	if s.Artifact == "" {
		s.Artifact = ArtifactFigure
	}
	if s.Topo == "" {
		s.Topo = TopoMesh
	}
	if s.Algorithms == nil {
		s.Algorithms = []string{"RD", "EDN", "DB", "AB"}
	}
	if s.Axis == AxisSubstrate && s.Substrates == nil {
		s.Substrates = []string{"west-first", "odd-even", "dor"}
	}
	if s.Ts == 0 {
		s.Ts = 1.5
	}
	if s.VCs == 0 && len(s.Topos) == 0 {
		// A multi-kind faults sweep resolves VCs per series instead
		// (vcsFor), so a mesh/torus comparison gets each kind's default.
		if s.Topo == TopoTorus {
			s.VCs = 2
		} else {
			s.VCs = 1
		}
	}
	if s.Metric == "" {
		if s.Axis == AxisFaults {
			s.Metric = MetricCoverage
		} else {
			s.Metric = MetricCV
		}
	}
	if s.Axis == AxisFaults {
		if s.Xs == nil {
			s.Xs = []float64{0, 4, 8, 16, 32, 64}
		}
		if s.Faults == nil {
			s.Faults = &FaultSpec{}
		}
	}
	if s.Length == 0 {
		switch s.Workload {
		case Contended:
			s.Length = 64
		case Mixed:
			s.Length = 32
		default:
			s.Length = 100
		}
	}
	if s.Reps == 0 {
		s.Reps = 40
	}
	if s.Axis == AxisSize && s.Sizes == nil {
		switch s.Workload {
		case Contended:
			s.Sizes = [][]int{{4, 4, 4}, {4, 4, 16}, {8, 8, 8}, {8, 8, 16}}
		default:
			s.Sizes = [][]int{{4, 4, 4}, {8, 8, 8}, {10, 10, 10}, {16, 16, 16}}
		}
	}
	if s.Axis != AxisSize && s.Dims == nil {
		s.Dims = []int{8, 8, 8}
	}
	if s.Workload == Contended && s.Interarrival == 0 {
		s.Interarrival = 5
	}
	if s.Workload == Mixed {
		if s.Axis == AxisLoad && s.Xs == nil {
			s.Xs = []float64{0.005, 0.006, 0.01, 0.02, 0.025, 0.03, 0.05}
		}
		if s.LoadScale == 0 {
			s.LoadScale = 320
		}
		if s.BroadcastFraction == 0 {
			s.BroadcastFraction = 0.10
		}
		if s.Pattern == "" {
			s.Pattern = PatternUniform
		}
		if s.Pattern == PatternHotspot && s.HotspotFraction == 0 {
			s.HotspotFraction = 0.1
		}
		if s.BatchSize == 0 {
			s.BatchSize = 100
		}
		if s.Batches == 0 {
			s.Batches = 21
			s.Warmup = 1
		}
	}
	return s
}

// validate rejects specs Run cannot execute. It runs after
// applyDefaults, so only genuinely contradictory specs fail.
func (s *Spec) validate() error {
	switch s.Workload {
	case Uncontended, Contended, Mixed:
	default:
		return fmt.Errorf("scenario %s: unknown workload %q", s.Name, s.Workload)
	}
	valid := map[Workload][]Axis{
		Uncontended: {AxisSize, AxisLength, AxisHopDelay, AxisPorts, AxisTs, AxisSubstrate, AxisVCs},
		Contended:   {AxisSize, AxisInterarrival, AxisVCs, AxisFaults},
		Mixed:       {AxisLoad},
	}
	ok := false
	for _, a := range valid[s.Workload] {
		if a == s.Axis {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("scenario %s: axis %q is not valid for the %s workload", s.Name, s.Axis, s.Workload)
	}
	if s.Topo != TopoMesh && s.Topo != TopoTorus {
		return fmt.Errorf("scenario %s: unknown topology kind %q", s.Name, s.Topo)
	}
	switch s.Store {
	case "", "auto", "dense", "lazy":
	default:
		return fmt.Errorf("scenario %s: unknown store mode %q (want auto, dense or lazy)", s.Name, s.Store)
	}
	switch s.Pattern {
	case "", PatternUniform:
		if s.HotspotFraction != 0 {
			return fmt.Errorf("scenario %s: hotspot fraction %g needs the %s pattern", s.Name, s.HotspotFraction, PatternHotspot)
		}
	case PatternHotspot:
		if s.Workload != Mixed {
			return fmt.Errorf("scenario %s: pattern %q needs the mixed workload", s.Name, s.Pattern)
		}
		if s.HotspotFraction < 0 || s.HotspotFraction > 1 {
			return fmt.Errorf("scenario %s: hotspot fraction %g outside [0,1]", s.Name, s.HotspotFraction)
		}
	case PatternTranspose, PatternBitReversal:
		if s.Workload != Mixed {
			return fmt.Errorf("scenario %s: pattern %q needs the mixed workload", s.Name, s.Pattern)
		}
		if s.HotspotFraction != 0 {
			return fmt.Errorf("scenario %s: pattern %q cannot combine with a hotspot fraction", s.Name, s.Pattern)
		}
	default:
		return fmt.Errorf("scenario %s: unknown pattern %q (want %s, %s, %s or %s)",
			s.Name, s.Pattern, PatternUniform, PatternHotspot, PatternTranspose, PatternBitReversal)
	}
	if s.Axis == AxisSize {
		if len(s.Sizes) == 0 {
			return fmt.Errorf("scenario %s: size axis with no sizes", s.Name)
		}
	} else if len(s.Xs) == 0 && s.Axis != AxisSubstrate {
		return fmt.Errorf("scenario %s: axis %q with no sweep values", s.Name, s.Axis)
	}
	if s.Axis == AxisVCs {
		// The run loop truncates x to an int and the network treats 0
		// as 1, so a fractional or sub-1 sweep value would emit a
		// point labeled with a VC count it never ran.
		for _, x := range s.Xs {
			if x < 1 || x != float64(int(x)) {
				return fmt.Errorf("scenario %s: VC sweep value %g is not an integer >= 1", s.Name, x)
			}
		}
	}
	if s.Axis == AxisFaults {
		// The run loop truncates x to a failed-link count.
		for _, x := range s.Xs {
			if x < 0 || x != float64(int(x)) {
				return fmt.Errorf("scenario %s: failed-link sweep value %g is not an integer >= 0", s.Name, x)
			}
		}
		for _, kind := range s.Topos {
			if kind != TopoMesh && kind != TopoTorus {
				return fmt.Errorf("scenario %s: unknown topology kind %q in Topos", s.Name, kind)
			}
		}
		if len(s.Substrates) > 0 {
			if len(s.Algorithms) != 1 {
				return fmt.Errorf("scenario %s: a substrate comparison under faults needs ONE algorithm, got %v",
					s.Name, s.Algorithms)
			}
			if len(s.Topos) > 1 {
				return fmt.Errorf("scenario %s: Substrates and multiple Topos cannot combine", s.Name)
			}
			for _, sub := range s.Substrates {
				switch sub {
				case "west-first", "odd-even", "dor", "dateline-dor":
				default:
					return fmt.Errorf("scenario %s: unknown substrate %q", s.Name, sub)
				}
			}
		}
	} else if len(s.Topos) > 0 {
		return fmt.Errorf("scenario %s: Topos is only valid on the faults axis", s.Name)
	}
	switch s.Metric {
	case MetricCV, MetricLatency:
	case MetricCoverage:
		if s.Axis != AxisFaults && !s.Faults.active() {
			return fmt.Errorf("scenario %s: metric %q needs fault injection", s.Name, s.Metric)
		}
	case MetricInflation:
		if s.Axis != AxisFaults {
			return fmt.Errorf("scenario %s: metric %q needs the faults axis", s.Name, s.Metric)
		}
		if len(s.Xs) == 0 || s.Xs[0] != 0 {
			return fmt.Errorf("scenario %s: the inflation metric needs x=0 (its pristine twin) as the first sweep value", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: unknown metric %q", s.Name, s.Metric)
	}
	if f := s.Faults; f != nil {
		if f.Links < 0 || f.Nodes < 0 || f.Strikes < 0 {
			return fmt.Errorf("scenario %s: negative fault count (links %d, nodes %d, strikes %d)",
				s.Name, f.Links, f.Nodes, f.Strikes)
		}
		if f.At < 0 || f.UpAfter < 0 || f.Period < 0 || f.Wait < 0 {
			return fmt.Errorf("scenario %s: negative fault timing", s.Name)
		}
		if f.Strikes > 0 && (f.UpAfter <= 0 || f.Period <= 0) {
			return fmt.Errorf("scenario %s: churn (Strikes=%d) needs positive UpAfter and Period", s.Name, f.Strikes)
		}
		if (f.active() || s.Axis == AxisFaults) && s.Workload != Contended {
			return fmt.Errorf("scenario %s: fault injection needs the contended workload", s.Name)
		}
	}
	if (s.Faults.active() || s.Axis == AxisFaults) && s.Artifact != ArtifactFigure {
		return fmt.Errorf("scenario %s: artifact %q cannot combine with fault injection (tables assume full delivery)",
			s.Name, s.Artifact)
	}
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("scenario %s: no algorithms", s.Name)
	}
	if _, err := algorithmsFor(s.Algorithms); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Axis == AxisSubstrate {
		if len(s.Algorithms) != 1 {
			return fmt.Errorf("scenario %s: the substrate axis compares substrates under ONE algorithm, got %v",
				s.Name, s.Algorithms)
		}
		for _, sub := range s.Substrates {
			switch sub {
			case "west-first", "odd-even", "dor", "dateline-dor":
			default:
				return fmt.Errorf("scenario %s: unknown substrate %q", s.Name, sub)
			}
		}
	}
	if s.Reps <= 0 {
		return fmt.Errorf("scenario %s: non-positive replication count %d", s.Name, s.Reps)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario %s: negative shard count %d", s.Name, s.Shards)
	}
	switch s.Artifact {
	case ArtifactFigure:
	case ArtifactTable1, ArtifactTable2:
		if s.Workload != Contended {
			return fmt.Errorf("scenario %s: artifact %q needs the contended workload", s.Name, s.Artifact)
		}
		// The table projections compare the paper's proposed
		// algorithms against its baselines; without all four the run
		// would produce no tables and the artifact would be empty.
		have := map[string]bool{}
		for _, a := range s.Algorithms {
			have[a] = true
		}
		for _, need := range []string{"RD", "EDN", "DB", "AB"} {
			if !have[need] {
				return fmt.Errorf("scenario %s: artifact %q needs algorithms RD, EDN, DB and AB, got %v",
					s.Name, s.Artifact, s.Algorithms)
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown artifact %q", s.Name, s.Artifact)
	}
	return nil
}

// storeMode resolves the spec's Store knob to the network layer's
// mode.
func (s *Spec) storeMode() network.StoreMode {
	switch s.Store {
	case "dense":
		return network.StoreDense
	case "lazy":
		return network.StoreLazy
	}
	return network.StoreAuto
}

// buildTopo constructs the topology for one set of dims. A shape the
// store mode resolves to lazy gets implicit (on-demand) adjacency —
// same IDs, channels, routes and neighbor order as the dense table,
// without the O(nodes) construction.
func (s *Spec) buildTopo(dims []int) *topology.Mesh {
	n := 1
	for _, k := range dims {
		n *= k
	}
	implicit := s.storeMode().LazyFor(n)
	if s.Topo == TopoTorus {
		if implicit {
			return topology.NewTorusImplicit(dims...)
		}
		return topology.NewTorus(dims...)
	}
	if implicit {
		return topology.NewMeshImplicit(dims...)
	}
	return topology.NewMesh(dims...)
}

// headings derives the legacy title and axis labels for the resolved
// spec on topology m (the fixed topology, or nil for size sweeps),
// honouring explicit overrides. The derived strings are byte-for-byte
// the ones the pre-redesign drivers printed.
func (s *Spec) headings(m *topology.Mesh) (title, xlabel, ylabel string) {
	title, xlabel, ylabel = s.Title, s.XLabel, s.YLabel
	name := ""
	if m != nil {
		name = m.Name()
	}
	var dTitle, dX, dY string
	switch s.Workload {
	case Uncontended:
		dY = "latency (µs)"
		switch s.Axis {
		case AxisSize:
			dTitle = fmt.Sprintf("Broadcast latency vs network size (L=%d flits, Ts=%g µs)", s.Length, s.Ts)
			dX = "nodes"
		case AxisLength:
			dTitle = fmt.Sprintf("Broadcast latency vs message length on %s", name)
			dX = "flits"
		case AxisHopDelay:
			dTitle = fmt.Sprintf("Broadcast latency vs header hop delay on %s (L=%d)", name, s.Length)
			dX = "hop delay (µs)"
		case AxisPorts:
			dTitle = fmt.Sprintf("Broadcast latency vs injection ports on %s (L=%d)", name, s.Length)
			dX = "ports"
		case AxisTs:
			dTitle = fmt.Sprintf("Broadcast latency vs startup latency on %s (L=%d)", name, s.Length)
			dX = "Ts (µs)"
		case AxisSubstrate:
			dTitle = fmt.Sprintf("%s latency by routing substrate on %s (L=%d)", s.Algorithms[0], name, s.Length)
			dX = "replication"
		case AxisVCs:
			dTitle = fmt.Sprintf("Broadcast latency vs virtual channels on %s (L=%d)", name, s.Length)
			dX = "virtual channels"
		}
	case Contended:
		switch s.Metric {
		case MetricLatency:
			dY = "latency (µs)"
		case MetricCoverage:
			dY = "coverage"
		case MetricInflation:
			dY = "latency inflation"
		default:
			dY = "CV"
		}
		switch s.Axis {
		case AxisSize:
			if s.Metric == MetricLatency {
				dTitle = fmt.Sprintf("Mean broadcast latency vs network size (L=%d, Ts=%g µs)", s.Length, s.Ts)
			} else {
				dTitle = fmt.Sprintf("Coefficient of variation of arrival times vs network size (L=%d, Ts=%g µs)", s.Length, s.Ts)
			}
			dX = "nodes"
		case AxisInterarrival:
			dTitle = fmt.Sprintf("Broadcast performance vs injection gap on %s (L=%d, Ts=%g µs)", name, s.Length, s.Ts)
			dX = "interarrival (µs)"
		case AxisVCs:
			dTitle = fmt.Sprintf("Broadcast performance vs virtual channels on %s (L=%d, Ts=%g µs)", name, s.Length, s.Ts)
			dX = "virtual channels"
		case AxisFaults:
			where := name
			if where == "" {
				where = "degraded networks"
			}
			dTitle = fmt.Sprintf("Broadcast degradation vs failed links on %s (L=%d, Ts=%g µs)", where, s.Length, s.Ts)
			dX = "failed links"
		}
	case Mixed:
		dTitle = fmt.Sprintf("Mean latency vs traffic load on %s (L=%d flits, %g%% unicast / %g%% broadcast)",
			name, s.Length, 100*(1-s.BroadcastFraction), 100*s.BroadcastFraction)
		switch s.Pattern {
		case PatternHotspot:
			dTitle = fmt.Sprintf("Mean latency vs traffic load on %s (L=%d flits, %g%% unicast / %g%% broadcast, %g%% hotspot)",
				name, s.Length, 100*(1-s.BroadcastFraction), 100*s.BroadcastFraction, 100*s.HotspotFraction)
		case PatternTranspose, PatternBitReversal:
			dTitle = fmt.Sprintf("Mean latency vs traffic load on %s (L=%d flits, %g%% unicast / %g%% broadcast, %s unicast)",
				name, s.Length, 100*(1-s.BroadcastFraction), 100*s.BroadcastFraction, s.Pattern)
		}
		dX = "load (msg/ms)"
		dY = "latency (µs)"
	}
	if title == "" {
		title = dTitle
	}
	if xlabel == "" {
		xlabel = dX
	}
	if ylabel == "" {
		ylabel = dY
	}
	return title, xlabel, ylabel
}
