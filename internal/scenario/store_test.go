package scenario

import (
	"context"
	"strings"
	"testing"
)

// TestStoreByteIdenticalOutput runs one contended scenario end to end
// under each substrate memory model and requires the rendered figure
// to match byte for byte: the store is an allocation strategy, never a
// result. (The dense twin of every golden is pinned separately by the
// golden tests; this pins lazy against dense through the full
// scenario pipeline — registry, fault plans, metrics, rendering.)
func TestStoreByteIdenticalOutput(t *testing.T) {
	render := func(store string) string {
		spec, err := Build("fig2",
			WithMesh(4, 4, 2),
			WithReps(3),
			WithSeed(7),
			WithFaults(2),
			WithStore(store),
		)
		if err != nil {
			t.Fatalf("store %q: %v", store, err)
		}
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("store %q: %v", store, err)
		}
		return res.Figure.String()
	}
	dense := render("dense")
	lazy := render("lazy")
	if dense != lazy {
		t.Fatalf("store changes scenario output\ndense:\n%s\nlazy:\n%s", dense, lazy)
	}
	if strings.TrimSpace(dense) == "" {
		t.Fatal("scenario rendered an empty figure")
	}
}

// TestStoreSpecValidation pins the Spec.Store knob's vocabulary
// (validation runs at Run, after defaults are applied).
func TestStoreSpecValidation(t *testing.T) {
	ctx := context.Background()
	for _, ok := range []string{"", "auto", "dense", "lazy"} {
		spec, err := Build("fig1", WithMesh(3, 3, 2), WithReps(1), WithStore(ok))
		if err == nil {
			_, err = Run(ctx, spec)
		}
		if err != nil {
			t.Errorf("store %q rejected: %v", ok, err)
		}
	}
	spec, err := Build("fig1", WithMesh(3, 3, 2), WithReps(1))
	if err != nil {
		t.Fatal(err)
	}
	spec.Store = "paged"
	if _, err := Run(ctx, spec); err == nil || !strings.Contains(err.Error(), "store mode") {
		t.Errorf("store \"paged\": got %v, want a store-mode validation error", err)
	}
}
