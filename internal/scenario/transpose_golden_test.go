package scenario_test

// Transpose-pattern golden. Pins the OUTPUT OF the deterministic-
// permutation traffic patterns at their introduction, rendered at
// three worker counts so determinism and results are pinned together.
// Regenerate only for an intentional behaviour change:
//
//	UPDATE_TRANSPOSE_GOLDENS=1 go test ./internal/scenario -run TransposeGolden
//
// The uniform pattern's own fixtures (fig3/fig4) prove the gating: a
// pattern that is not active draws no extra random numbers, so every
// pre-existing mixed golden stays byte-identical.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/export"
	"repro/internal/scenario"
)

// transposeGoldenCases shrink fig4-transpose to a palindromic 6×8×6
// and fig4's golden load points and batch windows.
func transposeGoldenCases() map[string][]scenario.Option {
	return map[string][]scenario.Option{
		"fig4-transpose": {
			scenario.WithMesh(6, 8, 6),
			scenario.WithLoads(0.005, 0.02),
			scenario.WithBatches(4, 20, 1),
			scenario.WithSeed(2005),
		},
	}
}

func TestTransposeGoldens(t *testing.T) {
	update := os.Getenv("UPDATE_TRANSPOSE_GOLDENS") != ""
	for name, opts := range transposeGoldenCases() {
		for _, procs := range []int{1, 4, 0} {
			res := runScenario(t, name, append(opts, scenario.WithProcs(procs))...)
			var csv bytes.Buffer
			if err := export.NewCSVSink(&csv).Emit(res); err != nil {
				t.Fatal(err)
			}
			if update && procs == 1 {
				if err := os.WriteFile(filepath.Join("testdata", name+".txt"),
					[]byte(res.Figure.Format()), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join("testdata", name+".csv"),
					csv.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := res.Figure.Format(), golden(t, name+".txt"); got != want {
				t.Errorf("%s at procs=%d: text differs from golden\n--- want ---\n%s\n--- got ---\n%s",
					name, procs, want, got)
			}
			if got, want := csv.String(), golden(t, name+".csv"); got != want {
				t.Errorf("%s at procs=%d: CSV differs from golden", name, procs)
			}
		}
	}
}

// TestTransposeDiffersFromUniform guards the fixture against the
// silent failure mode of the pattern being a no-op: at the same seed
// and shape, the transpose background must move the latency numbers.
func TestTransposeDiffersFromUniform(t *testing.T) {
	opts := []scenario.Option{
		scenario.WithMesh(6, 8, 6),
		scenario.WithLoads(0.02),
		scenario.WithBatches(4, 20, 1),
		scenario.WithSeed(2005),
		scenario.WithAlgorithms("RD"),
	}
	tr := runScenario(t, "fig4-transpose", opts...)
	uni := runScenario(t, "fig4", opts...)
	if tr.Figure.Format() == uni.Figure.Format() {
		t.Error("transpose pattern produced byte-identical output to the uniform pattern")
	}
}
