package service

// Backpressure, deterministically: the external tests can't hold the
// worker busy on demand (simulations are fast by design), so this
// internal test parks the executor's only worker on a gate task and
// drives the admission queue to a known state before every assertion.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestBackpressureShedsWithErrBusy(t *testing.T) {
	s := New(Config{Procs: 1, QueueCap: 1})
	defer s.Close()

	started := make(chan struct{})
	gate := make(chan struct{})
	if err := s.exec.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started // the one worker is now parked

	seedA, seedB := uint64(1), uint64(2)
	admitted := make(chan error, 1)
	go func() {
		_, _, _, err := s.Run(context.Background(),
			&RunRequest{Scenario: "fig1", Mesh: []int{4, 4, 4}, Reps: 2, Seed: &seedA, Format: "csv"})
		admitted <- err
	}()
	// Wait for the admitted miss to occupy the queue's single slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.exec.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("admitted request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Worker parked + queue full: a distinct miss must be shed NOW,
	// synchronously, with ErrBusy.
	_, _, _, err := s.Run(context.Background(),
		&RunRequest{Scenario: "fig1", Mesh: []int{4, 4, 4}, Reps: 2, Seed: &seedB, Format: "csv"})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("distinct miss against a full queue: err = %v, want ErrBusy", err)
	}
	if got := s.Counts().Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// A shed key must not be poisoned: releasing the worker lets the
	// admitted request finish, and the previously shed spec succeeds
	// on retry.
	close(gate)
	if err := <-admitted; err != nil {
		t.Fatalf("admitted request: %v", err)
	}
	if _, outcome, _, err := s.Run(context.Background(),
		&RunRequest{Scenario: "fig1", Mesh: []int{4, 4, 4}, Reps: 2, Seed: &seedB, Format: "csv"}); err != nil || outcome != OutcomeMiss {
		t.Errorf("retry of shed request: outcome=%s err=%v, want a clean miss", outcome, err)
	}
}

func TestBackpressureHTTP429WithRetryAfter(t *testing.T) {
	s := New(Config{Procs: 1, QueueCap: 1, RetryAfter: 3 * time.Second})
	defer s.Close()

	started := make(chan struct{})
	gate := make(chan struct{})
	defer func() { close(gate) }()
	if err := s.exec.Submit(0, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	seedA := uint64(1)
	go s.Run(context.Background(),
		&RunRequest{Scenario: "fig1", Mesh: []int{4, 4, 4}, Reps: 2, Seed: &seedA, Format: "csv"})
	deadline := time.Now().Add(5 * time.Second)
	for s.exec.QueueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("admitted request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/run", "application/json",
		strings.NewReader(`{"scenario":"fig1","mesh":[4,4,4],"reps":2,"seed":2,"format":"csv"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
}

// TestShedResolvesRacingDedupWaiters pins the singleflight/shed
// interaction: a waiter that joined an inflight call between
// registration and a failed Submit must be woken with the rejection,
// not left hanging on a call that will never run.
func TestShedResolvesRacingDedupWaiters(t *testing.T) {
	s := New(Config{Procs: 1, QueueCap: 1})
	defer s.Close()

	c := &call{done: make(chan struct{})}
	s.mu.Lock()
	s.inflight["k"] = c
	s.mu.Unlock()

	waited := make(chan error, 1)
	go func() {
		_, _, _, err := s.wait(context.Background(), c, time.Now(), OutcomeDedup, "k")
		waited <- err
	}()

	s.finish("k", c, nil, ErrBusy)
	select {
	case err := <-waited:
		if !errors.Is(err, ErrBusy) {
			t.Errorf("racing waiter got %v, want ErrBusy", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("racing waiter never woken after shed")
	}
	s.mu.Lock()
	_, stillThere := s.inflight["k"]
	s.mu.Unlock()
	if stillThere {
		t.Error("shed call left registered in the inflight map")
	}
}
