package service

import "container/list"

// resultCache is a fixed-capacity LRU of rendered result bodies keyed
// by (spec key, format). Determinism makes entries immortal — a cached
// body can never go stale, only cold — so eviction is purely a memory
// bound, and recency is the right victim order for a serving workload
// with popular scenarios.
//
// The cache is not concurrency-safe; the Server guards it with its
// own mutex so a lookup shares the lock acquisition singleflight
// registration already needs.
type resultCache struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body and refreshes its recency. The returned
// slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]byte, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add inserts or refreshes key, evicting the least recently used
// entry when over capacity.
func (c *resultCache) add(key string, body []byte) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the resident entry count.
func (c *resultCache) len() int { return c.ll.Len() }
