package service

import "container/list"

// resultCache is a byte-budgeted LRU of rendered result bodies keyed
// by (spec key, format). Determinism makes entries immortal — a cached
// body can never go stale, only cold — so eviction is purely a memory
// bound, and recency is the right victim order for a serving workload
// with popular scenarios.
//
// The budget counts body bytes, not entries: an entry-count bound is
// meaningless when one million-node CSV weighs five orders of
// magnitude more than a small JSON summary — a 1024-entry cache could
// sit anywhere between a few hundred kilobytes and tens of gigabytes.
// Bodies larger than the whole budget bypass the cache entirely: they
// are served to their requester but never stored, since admitting one
// would evict everything else for a single entry.
//
// The cache is not concurrency-safe; the Server guards it with its
// own mutex so a lookup shares the lock acquisition singleflight
// registration already needs.
type resultCache struct {
	budget int64      // resident body-byte bound
	bytes  int64      // resident body bytes
	ll     *list.List // front = most recently used
	m      map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(budget int64) *resultCache {
	if budget < 1 {
		budget = 1
	}
	return &resultCache{budget: budget, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached body and refreshes its recency. The returned
// slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]byte, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// add inserts or refreshes key, evicting least recently used entries
// until the resident bytes fit the budget again. A body larger than
// the whole budget is not cached (and drops any stale entry under the
// same key rather than leave a smaller body shadowing it).
func (c *resultCache) add(key string, body []byte) {
	if int64(len(body)) > c.budget {
		if el, ok := c.m[key]; ok {
			c.remove(el)
		}
		return
	}
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.bytes > c.budget {
		c.remove(c.ll.Back())
	}
}

// remove drops one resident entry and its byte accounting.
func (c *resultCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.bytes -= int64(len(e.body))
}

// len reports the resident entry count.
func (c *resultCache) len() int { return c.ll.Len() }

// resident reports the resident body bytes.
func (c *resultCache) resident() int64 { return c.bytes }
