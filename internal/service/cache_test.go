package service

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestCacheByteBudget drives the result cache with a mixed small/large
// body workload and checks the budget invariants after every
// operation: resident bytes never exceed the budget, the byte
// accounting matches the entries actually resident, and bodies larger
// than the whole budget are never admitted.
func TestCacheByteBudget(t *testing.T) {
	const budget = 10_000
	c := newResultCache(budget)
	rng := rand.New(rand.NewSource(1))
	sizes := []int{1, 100, 1_000, 4_000, 9_999, 10_001, 60_000}
	for i := 0; i < 2_000; i++ {
		size := sizes[rng.Intn(len(sizes))]
		key := fmt.Sprintf("k%d-%d", size, rng.Intn(50))
		c.add(key, bytes.Repeat([]byte{byte(i)}, size))
		if c.resident() > budget {
			t.Fatalf("op %d: resident %d bytes exceeds budget %d", i, c.resident(), budget)
		}
		var sum int64
		for el := c.ll.Front(); el != nil; el = el.Next() {
			sum += int64(len(el.Value.(*cacheEntry).body))
		}
		if sum != c.resident() {
			t.Fatalf("op %d: accounting drift: resident()=%d, entries hold %d", i, c.resident(), sum)
		}
		if size > budget {
			if _, ok := c.get(key); ok {
				t.Fatalf("op %d: oversized body (%d > %d) was cached", i, size, budget)
			}
		}
		if c.len() != len(c.m) {
			t.Fatalf("op %d: list/map length drift: %d vs %d", i, c.len(), len(c.m))
		}
	}
	if c.len() == 0 {
		t.Fatal("workload left the cache empty; budget test exercised nothing")
	}
}

// TestCacheOversizedDropsStaleEntry pins the refresh corner: when a
// key's body grows past the budget, add must not leave the old,
// smaller body resident to shadow the new result.
func TestCacheOversizedDropsStaleEntry(t *testing.T) {
	c := newResultCache(100)
	c.add("k", make([]byte, 50))
	if _, ok := c.get("k"); !ok {
		t.Fatal("small body not cached")
	}
	c.add("k", make([]byte, 200))
	if _, ok := c.get("k"); ok {
		t.Fatal("stale small body still resident after oversized refresh")
	}
	if c.resident() != 0 {
		t.Fatalf("resident %d bytes after dropping the only entry", c.resident())
	}
}

// TestCacheLRUVictimOrder checks recency-ordered eviction under the
// byte budget: touching an entry via get protects it, and the least
// recently used entry is the one that makes room.
func TestCacheLRUVictimOrder(t *testing.T) {
	c := newResultCache(300)
	c.add("a", make([]byte, 100))
	c.add("b", make([]byte, 100))
	c.add("c", make([]byte, 100))
	c.get("a") // a is now most recent; b is LRU
	c.add("d", make([]byte, 100))
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("entry %s evicted out of recency order", k)
		}
	}
}
