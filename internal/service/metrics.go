package service

// Service observability: lock-free counters and fixed-bucket latency
// histograms, rendered in the Prometheus text exposition format by
// hand — the format is plain text and the repo takes no dependencies,
// so a scraper (or curl | grep in CI) reads it directly.

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// latencyBuckets are the histogram upper bounds in seconds. The low
// end resolves the hit path (tens of microseconds); the high end
// covers multi-minute simulation misses.
var latencyBuckets = [...]float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation. sumMicros accumulates in integer microseconds so the
// hot path needs no float CAS loop.
type histogram struct {
	counts    [len(latencyBuckets) + 1]atomic.Uint64 // +1: the +Inf bucket
	sumMicros atomic.Uint64
	n         atomic.Uint64
}

// observe records one latency in seconds.
func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(latencyBuckets) && seconds > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumMicros.Add(uint64(seconds * 1e6))
	h.n.Add(1)
}

// quantile returns the q-quantile estimate (bucket upper bound), or 0
// with no observations. Used by tests and the status endpoint, not by
// the exposition format (Prometheus computes quantiles server-side).
func (h *histogram) quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// writeProm renders the histogram under name in Prometheus text
// format.
func (h *histogram) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, le := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(le), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMicros.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// serviceMetrics aggregates every counter the service exposes.
type serviceMetrics struct {
	requests atomic.Uint64 // all /v1/run requests
	hits     atomic.Uint64 // served from cache
	deduped  atomic.Uint64 // coalesced onto an identical in-flight miss
	misses   atomic.Uint64 // simulations actually executed
	rejected atomic.Uint64 // 429 backpressure rejections
	failures atomic.Uint64 // requests answered 4xx/5xx (backpressure aside)

	hitLatency  histogram // cache-hit request latency
	missLatency histogram // miss request latency (queue wait + simulation)
}

// writeProm renders every metric plus the caller-sampled gauges.
func (m *serviceMetrics) writeProm(w io.Writer, queueDepth, inflight, cacheLen int, cacheBytes int64) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("wormsimd_requests_total", "run requests received", m.requests.Load())
	counter("wormsimd_cache_hits_total", "requests served from the result cache", m.hits.Load())
	counter("wormsimd_dedup_total", "requests coalesced onto an identical in-flight simulation", m.deduped.Load())
	counter("wormsimd_misses_total", "simulations executed", m.misses.Load())
	counter("wormsimd_rejected_total", "requests shed with 429 (admission queue full)", m.rejected.Load())
	counter("wormsimd_failures_total", "requests answered with an error", m.failures.Load())
	gauge("wormsimd_queue_depth", "admitted simulations awaiting a worker", queueDepth)
	gauge("wormsimd_inflight", "simulations currently executing", inflight)
	gauge("wormsimd_cache_entries", "resident result-cache entries", cacheLen)
	gauge("wormsimd_cache_bytes", "resident result-cache body bytes", int(cacheBytes))
	m.hitLatency.writeProm(w, "wormsimd_hit_latency_seconds")
	m.missLatency.writeProm(w, "wormsimd_miss_latency_seconds")
}
