// Package service is the serving tier over the deterministic
// simulator: a Server accepts run requests (a registry scenario name
// or an inline spec), canonicalizes them to a stable cache key
// (scenario.Spec.Key), and answers from a bounded LRU of rendered
// result bodies. Because output is byte-identical for any worker
// count and any calendar at a fixed spec × seed, a cached body is
// never stale — the cache turns repeat requests from minutes of
// simulation into microseconds of memcpy.
//
// Misses are deduplicated singleflight-style: concurrent identical
// requests execute exactly one simulation and all wait on its result.
// Distinct misses go through a bounded priority admission queue
// (runner.Executor); when the queue is full the server sheds load
// explicitly with ErrBusy, which the HTTP layer maps to
// 429 + Retry-After rather than letting latency collapse for
// everyone admitted.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/export"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// DefaultSeed is the seed applied when a request names a registry
// scenario without one — the same default cmd/sweep uses, so a bare
// service request and a bare sweep invocation produce identical bytes.
const DefaultSeed = 2005

// ErrBusy is returned when the admission queue is full. The HTTP
// layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrBusy = errors.New("service: admission queue full, retry later")

// DefaultCacheBytes is the result cache's default byte budget.
const DefaultCacheBytes = 64 << 20 // 64 MiB

// Config sizes the server. Zero values pick serving defaults.
type Config struct {
	// Procs is the simulation worker count (0 = one per core). Each
	// worker runs one admitted request's scenario at a time.
	Procs int
	// QueueCap bounds how many admitted misses may wait for a worker
	// (default 64). Beyond it, requests are shed with ErrBusy.
	QueueCap int
	// CacheBytes bounds the result LRU by total cached body bytes
	// (default 64 MiB). Bodies larger than the whole budget are served
	// but never cached.
	CacheBytes int64
	// RetryAfter is the hint returned with 429 responses
	// (default 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
}

// call is one in-flight simulation all identical requests wait on.
type call struct {
	done chan struct{} // closed when body/err are final
	body []byte
	err  error
}

// Server canonicalizes, caches, deduplicates and schedules run
// requests. Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg     Config
	pool    *runner.Pool
	exec    *runner.Executor
	metrics serviceMetrics

	mu       sync.Mutex
	cache    *resultCache
	inflight map[string]*call
}

// New returns a started server: its workers are live and Handler can
// be served immediately.
func New(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	pool := runner.New(cfg.Procs)
	return &Server{
		cfg:      cfg,
		pool:     pool,
		exec:     runner.NewExecutor(pool, cfg.QueueCap),
		cache:    newResultCache(cfg.CacheBytes),
		inflight: make(map[string]*call),
	}
}

// Close stops admission and drains: every already-admitted simulation
// completes (and its waiters are answered) before Close returns. New
// submissions fail with runner.ErrClosed → ErrBusy.
func (s *Server) Close() { s.exec.Close() }

// RunRequest is the JSON body of POST /v1/run. Exactly one of
// Scenario (a registry name) or Spec (an inline scenario.Spec) names
// the work; the remaining fields mirror cmd/sweep's flags and
// override the resolved spec the same way.
type RunRequest struct {
	Scenario string         `json:"scenario,omitempty"`
	Spec     *scenario.Spec `json:"spec,omitempty"`

	Seed   *uint64 `json:"seed,omitempty"` // nil = DefaultSeed for registry scenarios
	Reps   int     `json:"reps,omitempty"`
	Mesh   []int   `json:"mesh,omitempty"`
	Store  string  `json:"store,omitempty"`
	Faults int     `json:"faults,omitempty"`

	// Procs caps the replication workers of THIS run (0 = all cores).
	// Orchestration only: it never enters the cache key, because
	// output is byte-identical for any value.
	Procs int `json:"procs,omitempty"`
	// Priority orders admitted misses (higher first, FIFO within a
	// priority). Hits and dedup joins ignore it — they never queue.
	Priority int `json:"priority,omitempty"`
	// Format selects the response body encoding: "json" (default),
	// "csv" (byte-identical to cmd/sweep), or "text".
	Format string `json:"format,omitempty"`
}

// resolve turns a request into the spec to run plus its cache
// identity. Errors are client errors (bad name, invalid spec).
func (s *Server) resolve(req *RunRequest) (spec scenario.Spec, specKey, format string, err error) {
	format = req.Format
	if format == "" {
		format = "json"
	}
	if _, err = export.NewSink(format, nil); err != nil {
		return spec, "", "", err
	}

	switch {
	case req.Scenario != "" && req.Spec != nil:
		return spec, "", "", errors.New("request names both a scenario and an inline spec; send one")
	case req.Scenario != "":
		seed := uint64(DefaultSeed)
		if req.Seed != nil {
			seed = *req.Seed
		}
		opts := []scenario.Option{
			scenario.WithReps(req.Reps),
			scenario.WithSeed(seed),
			scenario.WithFaults(req.Faults),
			scenario.WithStore(req.Store),
		}
		if len(req.Mesh) > 0 {
			opts = append(opts, scenario.WithMesh(req.Mesh...))
		}
		if spec, err = scenario.Build(req.Scenario, opts...); err != nil {
			return spec, "", "", err
		}
	case req.Spec != nil:
		spec = *req.Spec
		if req.Seed != nil {
			spec.Seed = *req.Seed
		}
		scenario.WithReps(req.Reps)(&spec)
		scenario.WithFaults(req.Faults)(&spec)
		scenario.WithStore(req.Store)(&spec)
		if len(req.Mesh) > 0 {
			scenario.WithMesh(req.Mesh...)(&spec)
		}
	default:
		return spec, "", "", errors.New("request needs a scenario name or an inline spec")
	}
	spec.Procs = req.Procs
	spec.Progress = nil

	if specKey, err = spec.Key(); err != nil {
		return spec, "", "", err
	}
	return spec, specKey, format, nil
}

// Outcome classifies how a request was answered.
type Outcome string

const (
	OutcomeHit   Outcome = "hit"   // served from the result cache
	OutcomeMiss  Outcome = "miss"  // this request executed the simulation
	OutcomeDedup Outcome = "dedup" // joined an identical in-flight miss
)

// Run resolves and answers one request. The returned body is shared
// with the cache — callers must not mutate it. key identifies the
// resolved spec (format-independent) for response headers and logs.
func (s *Server) Run(ctx context.Context, req *RunRequest) (body []byte, outcome Outcome, key string, err error) {
	s.metrics.requests.Add(1)
	start := time.Now()

	spec, specKey, format, err := s.resolve(req)
	if err != nil {
		s.metrics.failures.Add(1)
		return nil, "", "", err
	}
	cacheKey := specKey + "/" + format

	s.mu.Lock()
	if body, ok := s.cache.get(cacheKey); ok {
		s.mu.Unlock()
		s.metrics.hits.Add(1)
		s.metrics.hitLatency.observe(time.Since(start).Seconds())
		return body, OutcomeHit, specKey, nil
	}
	if c, ok := s.inflight[cacheKey]; ok {
		s.mu.Unlock()
		s.metrics.deduped.Add(1)
		return s.wait(ctx, c, start, OutcomeDedup, specKey)
	}
	c := &call{done: make(chan struct{})}
	s.inflight[cacheKey] = c
	s.mu.Unlock()

	err = s.exec.Submit(req.Priority, func() {
		var buf bytes.Buffer
		sink, err := export.NewSink(format, &buf)
		if err == nil {
			_, err = scenario.RunTo(context.Background(), spec, sink)
		}
		s.finish(cacheKey, c, buf.Bytes(), err)
	})
	if err != nil {
		// Shed: resolve the call with the rejection so any waiter
		// that raced onto it while we were unlocked is answered too.
		if errors.Is(err, runner.ErrQueueFull) || errors.Is(err, runner.ErrClosed) {
			err = ErrBusy
		}
		s.finish(cacheKey, c, nil, err)
		s.metrics.rejected.Add(1)
		return nil, "", "", err
	}
	return s.wait(ctx, c, start, OutcomeMiss, specKey)
}

// finish publishes a call's result, fills the cache on success, and
// wakes every waiter.
func (s *Server) finish(cacheKey string, c *call, body []byte, err error) {
	s.mu.Lock()
	delete(s.inflight, cacheKey)
	if err == nil {
		s.cache.add(cacheKey, body)
	}
	s.mu.Unlock()
	c.body, c.err = body, err
	close(c.done)
}

// wait blocks until c resolves or ctx fires. The simulation itself is
// NOT cancelled on ctx — other requests may be waiting on the same
// call, and a deterministic result is always worth caching.
func (s *Server) wait(ctx context.Context, c *call, start time.Time, outcome Outcome, specKey string) ([]byte, Outcome, string, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		return nil, "", "", ctx.Err()
	}
	if c.err != nil {
		if !errors.Is(c.err, ErrBusy) {
			s.metrics.failures.Add(1)
		}
		return nil, "", "", c.err
	}
	if outcome == OutcomeMiss {
		s.metrics.misses.Add(1)
	}
	s.metrics.missLatency.observe(time.Since(start).Seconds())
	return c.body, outcome, specKey, nil
}

// Counts is a point-in-time snapshot of the request counters, for
// tests and the loadgen report. The /metrics endpoint is the wire
// format; this is the programmatic one.
type Counts struct {
	Requests, Hits, Deduped, Misses, Rejected, Failures uint64
}

// Counts snapshots the request counters.
func (s *Server) Counts() Counts {
	return Counts{
		Requests: s.metrics.requests.Load(),
		Hits:     s.metrics.hits.Load(),
		Deduped:  s.metrics.deduped.Load(),
		Misses:   s.metrics.misses.Load(),
		Rejected: s.metrics.rejected.Load(),
		Failures: s.metrics.failures.Load(),
	}
}

// HitQuantile and MissQuantile report latency quantiles (seconds)
// observed on each path since start; 0 with no observations.
func (s *Server) HitQuantile(q float64) float64  { return s.metrics.hitLatency.quantile(q) }
func (s *Server) MissQuantile(q float64) float64 { return s.metrics.missLatency.quantile(q) }

// Handler returns the service's HTTP surface:
//
//	POST /v1/run       run (or fetch) a scenario; body is a RunRequest
//	GET  /v1/scenarios list registry scenarios with summaries
//	GET  /healthz      liveness probe
//	GET  /metrics      Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a RunRequest JSON body", http.StatusMethodNotAllowed)
		return
	}
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.failures.Add(1)
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}

	body, outcome, key, err := s.Run(r.Context(), &req)
	switch {
	case err == nil:
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client went away; status is cosmetic but 499-style close.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// The body bytes are identical whether this was a hit, a miss or
	// a dedup join; only headers tell the paths apart, so caching can
	// never change what a client parses.
	w.Header().Set("Content-Type", contentType(req.Format))
	w.Header().Set("X-Wormsim-Cache", string(outcome))
	w.Header().Set("X-Wormsim-Key", key)
	w.Write(body)
}

func contentType(format string) string {
	switch format {
	case "csv":
		return "text/csv; charset=utf-8"
	case "text":
		return "text/plain; charset=utf-8"
	default:
		return "application/json; charset=utf-8"
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type entry struct {
		Name    string `json:"name"`
		Summary string `json:"summary"`
	}
	list := make([]entry, 0)
	for _, name := range scenario.Names() {
		d, _ := scenario.Lookup(name)
		list = append(list, entry{Name: name, Summary: d.Summary})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(list)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	cacheLen := s.cache.len()
	cacheBytes := s.cache.resident()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w, s.exec.QueueDepth(), s.exec.InFlight(), cacheLen, cacheBytes)
}
