package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/export"
	"repro/internal/scenario"
	"repro/internal/service"
)

// smallReq is a fast registry request the tests hammer: fig1 collapsed
// to one tiny mesh, two replications.
func smallReq(seed uint64, format string) *service.RunRequest {
	return &service.RunRequest{
		Scenario: "fig1",
		Mesh:     []int{4, 4, 4},
		Reps:     2,
		Seed:     &seed,
		Format:   format,
	}
}

// TestConcurrentIdenticalRequestsExecuteOneSimulation is the ISSUE's
// dedupe acceptance criterion: N identical requests in flight at once
// run the simulation exactly once, and every caller gets the same
// bytes.
func TestConcurrentIdenticalRequestsExecuteOneSimulation(t *testing.T) {
	s := service.New(service.Config{Procs: 2, QueueCap: 16})
	defer s.Close()

	const n = 8
	bodies := make([][]byte, n)
	outcomes := make([]service.Outcome, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			body, outcome, _, err := s.Run(context.Background(), smallReq(2005, "csv"))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			bodies[i], outcomes[i] = body, outcome
		}(i)
	}
	close(start)
	wg.Wait()

	if got := s.Counts().Misses; got != 1 {
		t.Errorf("%d identical concurrent requests executed %d simulations, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from request 0 (%s vs %s)", i, outcomes[i], outcomes[0])
		}
	}
}

func TestCacheHitReturnsIdenticalBytes(t *testing.T) {
	s := service.New(service.Config{Procs: 2, QueueCap: 16})
	defer s.Close()

	first, outcome, key, err := s.Run(context.Background(), smallReq(2005, "json"))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != service.OutcomeMiss {
		t.Fatalf("cold request outcome = %s, want miss", outcome)
	}
	second, outcome, key2, err := s.Run(context.Background(), smallReq(2005, "json"))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != service.OutcomeHit {
		t.Errorf("repeat request outcome = %s, want hit", outcome)
	}
	if key != key2 {
		t.Errorf("same request resolved to different keys: %s vs %s", key, key2)
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit returned different bytes than the miss that filled it")
	}
	if c := s.Counts(); c.Misses != 1 || c.Hits != 1 {
		t.Errorf("counts = %+v, want 1 miss and 1 hit", c)
	}
}

// TestServiceCSVMatchesSweep is the byte-identity acceptance
// criterion: the service's CSV body for a registry spec equals what
// cmd/sweep's pipeline (Build → RunTo → CSVSink) writes for the same
// spec, seed, and procs.
func TestServiceCSVMatchesSweep(t *testing.T) {
	spec, err := scenario.Build("fig1",
		scenario.WithMesh(4, 4, 4), scenario.WithReps(2), scenario.WithSeed(2005))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := scenario.RunTo(context.Background(), spec, export.NewCSVSink(&want)); err != nil {
		t.Fatal(err)
	}

	s := service.New(service.Config{Procs: 2, QueueCap: 16})
	defer s.Close()
	got, _, _, err := s.Run(context.Background(), smallReq(2005, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("service CSV differs from sweep output:\nservice:\n%s\nsweep:\n%s", got, want.Bytes())
	}
}

func TestInlineSpecMatchesRegistrySpec(t *testing.T) {
	s := service.New(service.Config{Procs: 2, QueueCap: 16})
	defer s.Close()

	viaName, _, keyName, err := s.Run(context.Background(), smallReq(7, "csv"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Build("fig1", scenario.WithMesh(4, 4, 4), scenario.WithReps(2))
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(7)
	viaSpec, outcome, keySpec, err := s.Run(context.Background(),
		&service.RunRequest{Spec: &spec, Seed: &seed, Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	if keyName != keySpec {
		t.Errorf("registry and inline keys differ: %s vs %s", keyName, keySpec)
	}
	if outcome != service.OutcomeHit {
		t.Errorf("inline spec equivalent to a cached registry run: outcome = %s, want hit", outcome)
	}
	if !bytes.Equal(viaName, viaSpec) {
		t.Error("inline spec body differs from registry body")
	}
}

func TestBadRequestsAreClientErrors(t *testing.T) {
	s := service.New(service.Config{Procs: 1, QueueCap: 4})
	defer s.Close()
	ctx := context.Background()

	cases := []struct {
		name string
		req  *service.RunRequest
	}{
		{"unknown scenario", &service.RunRequest{Scenario: "no-such-fig"}},
		{"no work named", &service.RunRequest{}},
		{"both forms", &service.RunRequest{Scenario: "fig1", Spec: &scenario.Spec{}}},
		{"unknown format", &service.RunRequest{Scenario: "fig1", Format: "yaml"}},
	}
	for _, tc := range cases {
		if _, _, _, err := s.Run(ctx, tc.req); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
	if got := s.Counts().Misses; got != 0 {
		t.Errorf("bad requests executed %d simulations", got)
	}
}

// TestHTTPSurface exercises the wire layer end to end: miss then hit
// with identical bodies and truthful cache headers, the scenario
// listing, liveness, and the metrics exposition.
func TestHTTPSurface(t *testing.T) {
	s := service.New(service.Config{Procs: 2, QueueCap: 16})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func() (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(smallReq(2005, "csv"))
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	r1, b1 := post()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %s: %s", r1.Status, b1)
	}
	if got := r1.Header.Get("X-Wormsim-Cache"); got != "miss" {
		t.Errorf("first POST X-Wormsim-Cache = %q, want miss", got)
	}
	r2, b2 := post()
	if got := r2.Header.Get("X-Wormsim-Cache"); got != "hit" {
		t.Errorf("second POST X-Wormsim-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("hit body differs from miss body over HTTP")
	}
	if k1, k2 := r1.Header.Get("X-Wormsim-Key"), r2.Header.Get("X-Wormsim-Key"); k1 == "" || k1 != k2 {
		t.Errorf("X-Wormsim-Key mismatch: %q vs %q", k1, k2)
	}

	resp, err := http.Get(srv.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct{ Name, Summary string }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != len(scenario.Names()) {
		t.Errorf("/v1/scenarios listed %d scenarios, registry has %d", len(list), len(scenario.Names()))
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"wormsimd_requests_total 2",
		"wormsimd_cache_hits_total 1",
		"wormsimd_misses_total 1",
		"wormsimd_queue_depth",
		"wormsimd_cache_bytes",
		"wormsimd_hit_latency_seconds_count 1",
		"wormsimd_miss_latency_seconds_count 1",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics.String())
		}
	}
}

func TestCacheEviction(t *testing.T) {
	// Learn one rendered body's size, then budget the cache for two
	// bodies so the third insertion must evict the LRU entry.
	probe := service.New(service.Config{Procs: 2, QueueCap: 16})
	body, _, _, err := probe.Run(context.Background(), smallReq(1, "csv"))
	probe.Close()
	if err != nil {
		t.Fatal(err)
	}
	s := service.New(service.Config{Procs: 2, QueueCap: 16, CacheBytes: int64(2*len(body) + len(body)/2)})
	defer s.Close()
	ctx := context.Background()

	for seed := uint64(1); seed <= 3; seed++ {
		if _, _, _, err := s.Run(ctx, smallReq(seed, "csv")); err != nil {
			t.Fatal(err)
		}
	}
	// Seed 1 is the LRU victim: re-requesting it is a fresh miss,
	// while seed 3 is still resident.
	if _, outcome, _, err := s.Run(ctx, smallReq(3, "csv")); err != nil || outcome != service.OutcomeHit {
		t.Errorf("seed 3: outcome=%s err=%v, want resident hit", outcome, err)
	}
	if _, outcome, _, err := s.Run(ctx, smallReq(1, "csv")); err != nil || outcome != service.OutcomeMiss {
		t.Errorf("seed 1: outcome=%s err=%v, want evicted miss", outcome, err)
	}
}

func TestCloseDrainsInFlightRequests(t *testing.T) {
	s := service.New(service.Config{Procs: 1, QueueCap: 4})
	done := make(chan error, 1)
	go func() {
		_, _, _, err := s.Run(context.Background(), smallReq(42, "csv"))
		done <- err
	}()
	// Close must block until the admitted request completes; after it
	// returns, the waiter must already have its answer.
	s.Close()
	if err := <-done; err != nil && !errors.Is(err, service.ErrBusy) {
		t.Errorf("request during shutdown: %v", err)
	}
	if _, _, _, err := s.Run(context.Background(), smallReq(43, "csv")); !errors.Is(err, service.ErrBusy) {
		t.Errorf("request after Close: err=%v, want ErrBusy", err)
	}
}

func ExampleServer() {
	s := service.New(service.Config{Procs: 1, QueueCap: 4})
	defer s.Close()
	seed := uint64(2005)
	_, outcome1, _, _ := s.Run(context.Background(), &service.RunRequest{
		Scenario: "fig1", Mesh: []int{4, 4, 4}, Reps: 2, Seed: &seed, Format: "csv"})
	_, outcome2, _, _ := s.Run(context.Background(), &service.RunRequest{
		Scenario: "fig1", Mesh: []int{4, 4, 4}, Reps: 2, Seed: &seed, Format: "csv"})
	fmt.Println(outcome1, outcome2)
	// Output: miss hit
}
