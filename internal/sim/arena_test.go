package sim

import (
	"math"
	"testing"
)

// TestLadderArenaIndexBoundary pins the int32 arena-link overflow
// guard at its exact boundary. The arena itself cannot be grown to
// 2^31 slots in a test (that is ~80 GB), so the predicate alloc
// consults is tested directly: index 2^31-1 is the last
// representable link, so an arena already holding 2^31-1 slots must
// refuse to grow.
func TestLadderArenaIndexBoundary(t *testing.T) {
	if arenaFull(math.MaxInt32 - 1) {
		t.Fatal("arena of 2^31-2 slots reported full; last valid index unusable")
	}
	if !arenaFull(math.MaxInt32) {
		t.Fatal("arena of 2^31-1 slots not reported full; next index would wrap int32")
	}
	// A million-node broadcast's worth of concurrently pending events
	// must sit far inside the guard.
	if arenaFull(16 << 20) {
		t.Fatal("16M pending events rejected; guard is far too tight")
	}
}
