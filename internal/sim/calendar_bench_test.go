package sim

import (
	"fmt"
	"testing"
)

// Classic hold-model benchmark: the queue is prefilled to a steady
// pending size n, then every operation pops the earliest event and
// pushes a replacement at popped.due + increment — the standard way
// to measure a simulation event calendar at constant occupancy.
//
//	go test ./internal/sim -bench BenchmarkHold -benchmem
//
// The increments mirror the wormhole workload's mix (hop delay, flit
// drain, startup latency) including same-instant repeats, which is
// exactly the shape the ladder's deferred-sort fast path targets.

// holdDeltas is the increment mix; index with a cheap counter so heap
// and ladder see identical schedules.
var holdDeltas = [8]Time{0.003, 0.003, 0, 0.192, 0.003, 1.5, 0, 0.06}

// holdQueue builds a calendar of the given kind prefilled with n
// events using a deterministic schedule.
func holdQueue(kind Calendar, n int) (calendar, uint64) {
	var q calendar
	switch kind {
	case Heap:
		q = &eventQueue{}
	default:
		q = newLadderQueue()
	}
	rng := xorshift64(2005)
	var seq uint64
	for i := 0; i < n; i++ {
		q.push(event{due: rng.float01() * 4, seq: seq, fn: func(*Env, any) {}})
		seq++
	}
	return q, seq
}

// holdOps runs k hold operations (pop one, push one) on q.
func holdOps(q calendar, seq *uint64, k int) {
	for i := 0; i < k; i++ {
		e := q.pop()
		q.push(event{due: e.due + holdDeltas[*seq%uint64(len(holdDeltas))], seq: *seq, fn: e.fn})
		*seq++
	}
}

// BenchmarkHold measures steady-state push+pop cost per event for the
// heap and ladder calendars at the paper workloads' pending sizes
// (10² is an uncontended broadcast, 10³–10⁴ the saturation studies)
// plus 10⁵ as the scaling stress the heap's O(log n) sift feels most.
func BenchmarkHold(b *testing.B) {
	for _, kind := range []Calendar{Heap, Ladder} {
		for _, n := range []int{100, 10000, 100000} {
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				q, seq := holdQueue(kind, n)
				holdOps(q, &seq, n) // reach steady state
				b.ReportAllocs()
				b.ResetTimer()
				holdOps(q, &seq, b.N)
			})
		}
	}
}

// TestHoldSteadyStateAllocationFree pins the ladder's allocation
// contract: once the arena and tier storage have grown to the
// workload's high-water mark (rung growth included), steady-state
// scheduling performs zero heap allocations — matching the warm heap.
func TestHoldSteadyStateAllocationFree(t *testing.T) {
	for _, kind := range []Calendar{Heap, Ladder} {
		t.Run(kind.String(), func(t *testing.T) {
			q, seq := holdQueue(kind, 10000)
			holdOps(q, &seq, 30000) // grow every tier to high water
			avg := testing.AllocsPerRun(50, func() {
				holdOps(q, &seq, 200)
			})
			if avg != 0 {
				t.Errorf("%s calendar allocates %v per 200 warm hold ops, want 0", kind, avg)
			}
		})
	}
}
