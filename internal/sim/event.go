// Package sim provides a deterministic discrete-event simulation kernel.
//
// It plays the role CSIM-18/MultiSim played in the original study: a
// virtual clock, an event calendar, and seeded random-number streams.
// Events scheduled for the same instant fire in scheduling order, so a
// simulation run is reproducible bit-for-bit given the same seed.
package sim

// Time is simulated time. The broadcast study measures everything in
// microseconds (Ts = 1.5 µs, β = 0.003 µs/flit), so all packages in
// this module treat one Time unit as one microsecond.
type Time = float64

// Action is the body of a scheduled event. It runs with the simulator
// clock set to the event's due time.
type Action func()

// Func is an event body that receives its state explicitly. Hot paths
// schedule a prebuilt (Func, arg) record instead of closing over their
// state: a Func plus an arg already in hand costs no allocation per
// event, where a closure costs one. arg is typically a pointer (the
// worm, the injector) so boxing it into the interface is free too.
// The Env names the executing context — current time plus the
// scheduling entry points; on a sharded simulator (shard.go) it is how
// an event body running on a worker thread schedules follow-up events
// without touching shared calendar state.
type Func func(env *Env, arg any)

// event is a calendar entry: an action record (fn, arg) due at a
// time. seq breaks ties between events due at the same instant so
// execution order is deterministic. Entries are stored by value in
// the calendar's backing array, which is reused as the heap grows and
// shrinks — the calendar itself allocates only on capacity growth.
type event struct {
	due Time
	seq uint64
	fn  Func
	arg any
}

// calendar is the event-calendar contract the simulator runs on: a
// priority queue over (due, seq). Two implementations exist — the
// default ladderQueue and the legacy eventQueue binary heap, kept as a
// debugging reference — and they must drain any schedule in the same
// order (pinned by the differential tests in ladder_test.go).
//
// popWavefront appends to dst the maximal front run of events that
// share the earliest due time, bounded exclusively by (limDue,
// limSeq), and removes them from the calendar. The run is returned in
// (due, seq) order — exactly the order repeated pop calls would yield
// — so executing it front to back is indistinguishable from popping
// one event at a time. An empty append means the front event is at or
// past the bound. dst is caller-owned scratch: the returned events
// are copies, never views into calendar storage. Pass limDue =
// +Inf, limSeq = MaxUint64 for an unbounded wavefront.
type calendar interface {
	Len() int
	push(event)
	pop() event
	peek() event
	popWavefront(dst []event, limDue Time, limSeq uint64) []event
}

// eventBefore reports whether a fires before b: earlier due first,
// ties broken by scheduling order.
func eventBefore(a, b *event) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.seq < b.seq
}

// eventQueue is a binary min-heap ordered by (due, seq).
type eventQueue struct {
	items []event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	return eventBefore(&q.items[i], &q.items[j])
}

func (q *eventQueue) push(e event) {
	q.items = append(q.items, e)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	if len(q.items) == 0 {
		panic("sim: pop from empty calendar")
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = event{} // release the record's arg reference
	q.items = q.items[:last]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}

// peek returns the earliest event without removing it.
func (q *eventQueue) peek() event {
	if len(q.items) == 0 {
		panic("sim: peek at empty calendar")
	}
	return q.items[0]
}

// popWavefront pops the front equal-due run under the bound. On the
// heap this is a loop of ordinary O(log n) pops — the heap gains no
// speed from batching, it exists so wavefront execution produces
// byte-identical output on either calendar.
func (q *eventQueue) popWavefront(dst []event, limDue Time, limSeq uint64) []event {
	if len(q.items) == 0 {
		panic("sim: pop from empty calendar")
	}
	due := q.items[0].due
	if due > limDue || (due == limDue && q.items[0].seq >= limSeq) {
		return dst
	}
	for len(q.items) > 0 {
		f := &q.items[0]
		if f.due != due || (due == limDue && f.seq >= limSeq) {
			break
		}
		dst = append(dst, q.pop())
	}
	return dst
}
