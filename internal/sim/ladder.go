package sim

import (
	"math"
	"slices"
)

// ladderQueue is a ladder queue (multi-tier calendar queue): the
// default event calendar since PR 4, replacing the binary heap's
// O(log n) sift with amortized-O(1) scheduling.
//
// Events live in one of three tiers:
//
//   - top: an unsorted FIFO for events at or beyond topStart, the
//     far-future boundary.
//   - rungs: a stack of bucketed time windows. rungs[0] is the
//     coarsest; each finer rung subdivides one over-full span of the
//     rung above it. Pushing picks a bucket by time — O(1), no sift.
//   - bottom: the sorted working window events pop from, consumed
//     front to back with a cursor.
//
// The layout is built around Go's write barriers: an event's action
// record (fn, arg) — the only pointer-carrying part — is written once
// into its arena slot at push and read once at pop. Everything the
// tiers move around is either an int32 link or a pointer-free
// itemNode (due, seq, ref), so tier transfers, sorts and memmoves
// never trigger a barrier and the garbage collector never scans
// rungs or bottom. Top and bucket membership is link surgery through
// the arena; no event data is copied when a tier subdivides. The
// arena is the queue's only growing allocation (high-water = peak
// pending, exactly like the heap's backing array), and freed slots
// are reused LIFO so the hot working set stays cache-resident — a
// simulator is created per study, so per-instance warm-up cost
// matters as much as steady state.
//
// Sorting is deferred until a bucket becomes the working window, and
// is skipped when the bucket drains already in (due, seq) order —
// which it does for the workload's same-instant bursts: wormhole hop
// timing schedules whole wavefronts of events at identical
// now+hopDelay instants, and because seq is assigned in push order, a
// bucket holding one instant is born sorted. The heap paid a full
// O(log n) sift for every one of those events; the ladder absorbs the
// burst with O(1) appends and one linear drain.
//
// Execution order is bit-for-bit identical to the heap: ties are
// still broken by seq, and bucket routing uses a monotone time→bucket
// map per rung, so floating-point rounding at a bucket boundary can
// never reorder two events — a monotone map keeps earlier-due events
// in earlier-or-equal buckets, and equal dues always share a bucket.
type ladderQueue struct {
	n int // total pending events across all tiers

	// nodes is the arena: slot i holds an event's scalar ordering
	// data, FIFO link, and action record in one 48-byte entry, so a
	// push touches one cache line. free heads the reuse list threaded
	// through next (nilIdx-terminated); slots are freed at pop.
	nodes []arenaSlot
	free  int32

	// bottom is sorted ascending by (due, seq); botIdx is the
	// consumption cursor. Bottom items are scalar copies whose ref
	// points back at the arena slot.
	bottom []itemNode
	botIdx int

	// rungs[:active] is the rung stack, coarsest first. Entries past
	// active are drained rungs kept for reuse.
	rungs  []*rung
	active int

	// top collects events due at or after topStart in push (seq)
	// order.
	top      bucketList
	topLen   int
	topStart Time

	// Same-instant placement cache: the workload pushes long runs of
	// events at one instant (a broadcast wavefront all scheduling
	// now+hopDelay), and equal dues always map to the same bucket, so
	// after the first of a run the rung scan and its divisions are
	// skipped. gen invalidates the cache whenever the rung stack
	// changes shape (spawn, drain, top conversion); a consumed bucket
	// is caught by the cur check on use.
	lastDue  Time
	lastRung *rung
	lastBkt  int32
	gen      uint32
	lastGen  uint32
}

// Tuning constants, sized for the study workloads: peak pending is on
// the order of 10³ events (so rungs stay shallow) and bottom batches
// average a few dozen events. Buckets per rung is deliberately small —
// every bucket slot that warms up is per-simulator state, and
// simulators are created per study.
const (
	ladderBuckets   = 16  // buckets per rung
	ladderThreshold = 96  // bucket size at or below which it is sorted into bottom
	ladderMaxRungs  = 16  // rung-stack depth bound; beyond it buckets sort wholesale
	ladderBottomMax = 512 // live bottom size that spills into a fresh rung

	nilIdx = -1 // list terminator for next/head/tail indices
)

// arenaSlot is one arena entry: the scalar ordering key and FIFO
// link first (written and rewritten barrier-free), then the
// pointer-carrying action record (written once at push, cleared at
// pop).
type arenaSlot struct {
	due  Time
	seq  uint64
	next int32
	_    int32 // padding; keeps fn pointer-aligned
	fn   Func
	arg  any
}

// itemNode is the element type of bottom: the ordering key plus the
// arena slot (ref) of the full event. No pointers, so bottom copies,
// sorts and memmoves never trigger a write barrier.
type itemNode struct {
	due  Time
	seq  uint64
	ref  int32
	next int32 // unused in bottom; kept for layout parity
}

// bucketList is a FIFO of arena indices; head == nilIdx means empty.
type bucketList struct {
	head, tail int32
}

// rung is one bucketed time window: bucket i spans
// [start+width·i, start+width·(i+1)), except the last bucket, which
// also absorbs any later stragglers (the clamp is monotone, so order
// is safe). cur is the first unconsumed bucket. The struct carries no
// pointers: bucket contents are links through the nodes arena.
type rung struct {
	start Time
	width Time
	cur   int
	count int
	bkt   [ladderBuckets]bucketList
	blen  [ladderBuckets]int32
}

func newLadderQueue() *ladderQueue {
	return &ladderQueue{
		free:     nilIdx,
		top:      bucketList{head: nilIdx, tail: nilIdx},
		topStart: math.Inf(-1),
	}
}

func (q *ladderQueue) Len() int { return q.n }

// alloc claims an arena slot for e and returns its index.
func (q *ladderQueue) alloc(e event) int32 {
	i := q.free
	if i >= 0 {
		q.free = q.nodes[i].next
	} else {
		// The arena links are int32 to halve the slot size; its
		// capacity is therefore 2^31-1 LIVE events. A million-node
		// broadcast keeps well under ten million in flight, so the
		// guard exists to turn a hypothetical silent index wrap into a
		// loud failure, not because any workload approaches it.
		if arenaFull(len(q.nodes)) {
			panic("sim: ladder event arena full (2^31-1 pending events)")
		}
		q.nodes = append(q.nodes, arenaSlot{})
		i = int32(len(q.nodes) - 1)
	}
	q.nodes[i] = arenaSlot{due: e.due, seq: e.seq, next: nilIdx, fn: e.fn, arg: e.arg}
	return i
}

// arenaFull reports whether an arena of n slots cannot grow: the next
// slot's index would not fit the int32 links.
func arenaFull(n int) bool { return n >= math.MaxInt32 }

// link appends arena slot i to the FIFO l.
func (q *ladderQueue) link(l *bucketList, i int32) {
	if l.head < 0 {
		l.head, l.tail = i, i
		return
	}
	q.nodes[l.tail].next = i
	l.tail = i
}

func (q *ladderQueue) push(e event) {
	q.n++
	i := q.alloc(e)
	if e.due >= q.topStart {
		q.link(&q.top, i)
		q.topLen++
		return
	}
	if e.due == q.lastDue && q.lastGen == q.gen {
		if r := q.lastRung; r != nil && int(q.lastBkt) >= r.cur {
			q.link(&r.bkt[q.lastBkt], i)
			r.blen[q.lastBkt]++
			r.count++
			return
		}
	}
	q.route(i, e.due)
}

// route places slot i (due before topStart) into the outermost rung
// whose unconsumed range covers it, or failing all rungs, into bottom.
func (q *ladderQueue) route(i int32, due Time) {
	for k := 0; k < q.active; k++ {
		r := q.rungs[k]
		f := (due - r.start) / r.width
		if f < 0 {
			continue // before this rung entirely (int() would truncate toward 0)
		}
		b := ladderBuckets - 1
		if f < float64(ladderBuckets-1) {
			b = int(f)
		}
		if b < r.cur {
			// The slot's bucket is already consumed (or, for the
			// clamped last bucket, the whole rung is positionally
			// exhausted): it belongs to a finer rung or the bottom,
			// both of which drain before the rest of this rung.
			continue
		}
		q.link(&r.bkt[b], i)
		r.blen[b]++
		r.count++
		q.lastDue, q.lastRung, q.lastBkt, q.lastGen = due, r, int32(b), q.gen
		return
	}
	nd := &q.nodes[i]
	q.pushBottom(itemNode{due: nd.due, seq: nd.seq, ref: i})
}

// pushBottom inserts into the sorted working window. The new item
// carries the largest seq yet issued, so whenever its due is at or
// past the current last element, a plain append keeps bottom sorted —
// the O(1) fast path same-instant bursts and in-order arrivals take.
func (q *ladderQueue) pushBottom(it itemNode) {
	if len(q.bottom) == q.botIdx {
		q.bottom = append(q.bottom[:0], it)
		q.botIdx = 0
		return
	}
	if it.due >= q.bottom[len(q.bottom)-1].due {
		q.bottom = append(q.bottom, it)
		return
	}
	// Out of order. If bottom has grown past its budget, spill it into
	// a fresh rung so inserts stay amortized O(1); otherwise binary-
	// insert into the live span.
	if len(q.bottom)-q.botIdx >= ladderBottomMax && q.spillBottom() {
		q.nodes[it.ref].next = nilIdx // stale from its last list membership
		q.route(it.ref, it.due)
		return
	}
	// First live index whose due exceeds the item's. Pending seqs are
	// all smaller, so this is the (due, seq) upper bound.
	lo, hi := q.botIdx, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.bottom[mid].due > it.due {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.bottom = append(q.bottom, itemNode{})
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = it
}

// spillBottom converts the live span of an oversized bottom into a new
// innermost rung by relinking the items' arena slots (their nodes
// still hold due and seq from push). It reports whether the spill
// happened: a span of one instant (or at max rung depth) stays put.
func (q *ladderQueue) spillBottom() bool {
	live := q.bottom[q.botIdx:]
	minD, maxD := live[0].due, live[len(live)-1].due
	r := q.spawnRung(minD, maxD)
	if r == nil {
		return false
	}
	for k := range live {
		q.rungAdd(r, live[k].due, live[k].ref)
	}
	q.bottom = q.bottom[:0]
	q.botIdx = 0
	return true
}

// spawnRung pushes a fresh innermost rung covering [minD, maxD] onto
// the stack, or returns nil when the stack is full or the span is too
// narrow (or not finite) for bucket boundaries to make progress.
func (q *ladderQueue) spawnRung(minD, maxD Time) *rung {
	if q.active >= ladderMaxRungs || !(maxD > minD) {
		return nil
	}
	w := (maxD - minD) / ladderBuckets
	if !(w > 0) || math.IsInf(w, 1) || minD+w == minD {
		return nil
	}
	var r *rung
	if q.active < len(q.rungs) {
		r = q.rungs[q.active]
	} else {
		r = &rung{}
		q.rungs = append(q.rungs, r)
	}
	q.active++
	q.gen++
	r.start, r.width, r.cur, r.count = minD, w, 0, 0
	for i := range r.bkt {
		r.bkt[i] = bucketList{head: nilIdx, tail: nilIdx}
		r.blen[i] = 0
	}
	return r
}

// rungAdd links arena slot i into r's bucket for due.
func (q *ladderQueue) rungAdd(r *rung, due Time, i int32) {
	f := (due - r.start) / r.width
	b := ladderBuckets - 1
	if f < float64(ladderBuckets-1) {
		b = int(f)
	}
	q.nodes[i].next = nilIdx
	q.link(&r.bkt[b], i)
	r.blen[b]++
	r.count++
}

// listRange walks a FIFO for its minimum and maximum due.
func (q *ladderQueue) listRange(head int32) (minD, maxD Time) {
	minD = q.nodes[head].due
	maxD = minD
	for i := q.nodes[head].next; i >= 0; i = q.nodes[i].next {
		if d := q.nodes[i].due; d < minD {
			minD = d
		} else if d > maxD {
			maxD = d
		}
	}
	return minD, maxD
}

// drainToBottom empties the FIFO into bottom in link (seq) order,
// sorting only when the items are not already in (due, seq) order. A
// bucket holding one same-instant burst — or any run linked in
// nondecreasing due order — transfers without a sort.
func (q *ladderQueue) drainToBottom(head int32) {
	dst := q.bottom[:0]
	sorted := true
	for i := head; i >= 0; {
		nd := &q.nodes[i]
		if sorted && len(dst) > 0 {
			if last := &dst[len(dst)-1]; nd.due < last.due || (nd.due == last.due && nd.seq < last.seq) {
				sorted = false
			}
		}
		dst = append(dst, itemNode{due: nd.due, seq: nd.seq, ref: i})
		i = nd.next
	}
	q.bottom = dst
	q.botIdx = 0
	if !sorted {
		slices.SortFunc(q.bottom, compareItems)
	}
}

// compareItems orders by (due, seq) — a total order, seq being
// unique, so the sort is deterministic without needing stability.
func compareItems(a, b itemNode) int {
	switch {
	case a.due < b.due:
		return -1
	case a.due > b.due:
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// subdivide spreads the FIFO at head — an over-full bucket or the
// converted top — into a fresh finer rung by relinking its nodes. It
// reports false (list untouched) when the rung stack is full or the
// span [minD, maxD] is one instant or too narrow to split, in which
// case the caller sorts the list wholesale instead.
func (q *ladderQueue) subdivide(head int32, minD, maxD Time) bool {
	nr := q.spawnRung(minD, maxD)
	if nr == nil {
		return false
	}
	for i := head; i >= 0; {
		next := q.nodes[i].next
		q.rungAdd(nr, q.nodes[i].due, i)
		i = next
	}
	return true
}

// refill loads the next batch of events into the exhausted bottom:
// the next nonempty bucket of the innermost rung, recursively
// subdivided while it stays over the sort threshold, or — once every
// rung is drained — the accumulated top. Caller guarantees q.n > 0.
func (q *ladderQueue) refill() {
	for {
		if q.active > 0 {
			r := q.rungs[q.active-1]
			if r.count == 0 {
				q.active-- // drained; keep the rung allocated for reuse
				q.gen++
				continue
			}
			for r.bkt[r.cur].head < 0 {
				r.cur++
			}
			head := r.bkt[r.cur].head
			cnt := int(r.blen[r.cur])
			r.count -= cnt
			r.bkt[r.cur] = bucketList{head: nilIdx, tail: nilIdx}
			r.blen[r.cur] = 0
			r.cur++
			if cnt > ladderThreshold {
				minD, maxD := q.listRange(head)
				if q.subdivide(head, minD, maxD) {
					continue
				}
			}
			q.drainToBottom(head)
			return
		}
		// Every rung is drained: the earliest events now live in top.
		head := q.top.head
		cnt := q.topLen
		minD, maxD := q.listRange(head)
		q.topStart = maxD
		q.top = bucketList{head: nilIdx, tail: nilIdx}
		q.topLen = 0
		q.gen++
		if cnt > ladderThreshold && q.subdivide(head, minD, maxD) {
			continue
		}
		q.drainToBottom(head)
		return
	}
}

func (q *ladderQueue) pop() event {
	if q.n == 0 {
		panic("sim: pop from empty calendar")
	}
	if q.botIdx == len(q.bottom) {
		q.refill()
	}
	it := q.bottom[q.botIdx]
	q.botIdx++
	q.n--
	i := it.ref
	nd := &q.nodes[i]
	e := event{due: it.due, seq: it.seq, fn: nd.fn, arg: nd.arg}
	nd.fn, nd.arg = nil, nil // release the record's arg reference
	nd.next = q.free
	q.free = i
	return e
}

// popWavefront pops the front equal-due run under the bound in one
// sweep of the bottom window. This is where batching pays: the refill
// check, cursor advance and free-list bookkeeping are done once per
// run instead of once per event, and the run is read straight out of
// the already-sorted bottom span.
//
// The run never needs to look past bottom: equal dues always route to
// the same bucket and drain together, so when bottom's front holds
// due T every pending due-T event is already in bottom — any due-T
// event still in top was pushed after topStart rose past T and
// carries a larger seq, and events pushed during the caller's batch
// carry larger seqs still. If a run is ever split by an exhausted
// bottom, the next call simply returns the remainder; a wavefront is
// an optimization batch, not a semantic unit.
func (q *ladderQueue) popWavefront(dst []event, limDue Time, limSeq uint64) []event {
	if q.n == 0 {
		panic("sim: pop from empty calendar")
	}
	if q.botIdx == len(q.bottom) {
		q.refill()
	}
	due := q.bottom[q.botIdx].due
	if due > limDue || (due == limDue && q.bottom[q.botIdx].seq >= limSeq) {
		return dst
	}
	end := q.botIdx + 1
	if due == limDue {
		for end < len(q.bottom) && q.bottom[end].due == due && q.bottom[end].seq < limSeq {
			end++
		}
	} else {
		for end < len(q.bottom) && q.bottom[end].due == due {
			end++
		}
	}
	for k := q.botIdx; k < end; k++ {
		it := q.bottom[k]
		nd := &q.nodes[it.ref]
		dst = append(dst, event{due: it.due, seq: it.seq, fn: nd.fn, arg: nd.arg})
		nd.fn, nd.arg = nil, nil // release the record's arg reference
		nd.next = q.free
		q.free = it.ref
	}
	q.n -= end - q.botIdx
	q.botIdx = end
	return dst
}

func (q *ladderQueue) peek() event {
	if q.n == 0 {
		panic("sim: peek at empty calendar")
	}
	if q.botIdx == len(q.bottom) {
		q.refill()
	}
	it := q.bottom[q.botIdx]
	nd := &q.nodes[it.ref]
	return event{due: it.due, seq: it.seq, fn: nd.fn, arg: nd.arg}
}
