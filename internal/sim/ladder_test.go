package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// xorshift64 is a tiny deterministic generator for the differential
// drivers — test behavior must not depend on the seed corpus of the
// standard library's rand.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// float01 returns a uniform float in [0, 1).
func (x *xorshift64) float01() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// drainMatches pops both calendars dry, asserting every event emerges
// in the identical (due, seq) order.
func drainMatches(t *testing.T, heap, ladder calendar) {
	t.Helper()
	for heap.Len() > 0 {
		if ladder.Len() != heap.Len() {
			t.Fatalf("Len mismatch: heap %d, ladder %d", heap.Len(), ladder.Len())
		}
		hp, lp := heap.peek(), ladder.peek()
		if hp.due != lp.due || hp.seq != lp.seq {
			t.Fatalf("peek mismatch: heap (due=%v seq=%d), ladder (due=%v seq=%d)", hp.due, hp.seq, lp.due, lp.seq)
		}
		he, le := heap.pop(), ladder.pop()
		if he.due != le.due || he.seq != le.seq {
			t.Fatalf("pop mismatch: heap (due=%v seq=%d), ladder (due=%v seq=%d)", he.due, he.seq, le.due, le.seq)
		}
	}
	if ladder.Len() != 0 {
		t.Fatalf("ladder retains %d events after heap drained", ladder.Len())
	}
}

// TestLadderMatchesHeapRegimes feeds the same randomized schedule into
// the heap and the ladder under the workload regimes that stress
// different tiers, interleaving pushes with pops (as the simulator
// does) and asserting the drains are bit-for-bit identical. CI runs
// the whole suite under -race as well.
func TestLadderMatchesHeapRegimes(t *testing.T) {
	regimes := []struct {
		name  string
		seed  uint64
		delta func(x *xorshift64) Time
		burst int // max extra same-instant events per push
	}{
		{"uniform", 1, func(x *xorshift64) Time { return x.float01() * 100 }, 0},
		{"heavy-ties", 2, func(x *xorshift64) Time { return Time(x.next() % 8) }, 0},
		{"same-instant-bursts", 3, func(x *xorshift64) Time { return 0.003 * Time(1+x.next()%4) }, 24},
		{"hop-timing", 4, func(x *xorshift64) Time {
			// The wormhole mix: hop delay, flit drain, startup.
			d := []Time{0.003, 0.003, 0.003, 0.192, 1.5, 3.0}
			return d[x.next()%uint64(len(d))]
		}, 12},
		{"wide-range", 5, func(x *xorshift64) Time { return math.Exp2(float64(x.next()%64)) * x.float01() }, 0},
		{"tiny-spans", 6, func(x *xorshift64) Time { return 1e-12 * Time(x.next()%16) }, 8},
		{"zero-delta", 7, func(x *xorshift64) Time { return Time(x.next()%3) * 0.5 }, 4},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			rng := xorshift64(rg.seed)
			heap := calendar(&eventQueue{})
			ladder := calendar(newLadderQueue())
			now := Time(0)
			var seq uint64
			push := func(due Time) {
				heap.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
				ladder.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
				seq++
			}
			for step := 0; step < 60000; step++ {
				switch {
				case rng.next()%10 < 4 && heap.Len() > 0:
					he, le := heap.pop(), ladder.pop()
					if he.due != le.due || he.seq != le.seq {
						t.Fatalf("step %d: heap popped (due=%v seq=%d), ladder (due=%v seq=%d)",
							step, he.due, he.seq, le.due, le.seq)
					}
					now = he.due
				default:
					due := now + rg.delta(&rng)
					push(due)
					if rg.burst > 0 {
						for k := uint64(0); k < rng.next()%uint64(rg.burst+1); k++ {
							push(due)
						}
					}
				}
			}
			drainMatches(t, heap, ladder)
		})
	}
}

// TestLadderMatchesHeapQuick drives both calendars with arbitrary
// time lists from testing/quick, pushing everything then draining —
// the pure priority-queue contract.
func TestLadderMatchesHeapQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		heap := calendar(&eventQueue{})
		ladder := calendar(newLadderQueue())
		for i, v := range raw {
			// Map the fuzz value onto a mix of magnitudes and repeats.
			due := Time(v%97) * math.Exp2(float64(v%11)-5)
			e := event{due: due, seq: uint64(i), fn: func(*Env, any) {}}
			heap.push(e)
			ladder.push(e)
		}
		for heap.Len() > 0 {
			he, le := heap.pop(), ladder.pop()
			if he.due != le.due || he.seq != le.seq {
				return false
			}
		}
		return ladder.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLadderBottomSpill forces the out-of-order insert budget over
// ladderBottomMax so the bottom spills into a fresh rung, and checks
// order is preserved through the spill.
func TestLadderBottomSpill(t *testing.T) {
	heap := calendar(&eventQueue{})
	ladder := calendar(newLadderQueue())
	var seq uint64
	push := func(due Time) {
		heap.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
		ladder.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
		seq++
	}
	// A big far-future block lands in top, converts to a wide bottom
	// window on the first pop...
	for i := 0; i < 2*ladderBottomMax; i++ {
		push(1000 + Time(i)/7)
	}
	he, le := heap.pop(), ladder.pop()
	if he.seq != le.seq {
		t.Fatalf("first pop diverged: heap seq %d, ladder seq %d", he.seq, le.seq)
	}
	// ...then a stream of earlier-and-earlier events forces repeated
	// out-of-order inserts until the spill threshold trips.
	for i := 0; i < 4*ladderBottomMax; i++ {
		push(1000 + Time(4*ladderBottomMax-i)/29)
	}
	drainMatches(t, heap, ladder)
}

// TestLadderDeepRecursion drains 10⁵ events packed into a narrow
// window, exercising rung-spawn recursion well past one level, plus a
// same-instant block too large for any threshold.
func TestLadderDeepRecursion(t *testing.T) {
	heap := calendar(&eventQueue{})
	ladder := calendar(newLadderQueue())
	rng := xorshift64(99)
	var seq uint64
	push := func(due Time) {
		heap.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
		ladder.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
		seq++
	}
	for i := 0; i < 100000; i++ {
		push(5 + rng.float01())
	}
	for i := 0; i < 3000; i++ {
		push(5.5) // one instant, far over every threshold: must stay FIFO
	}
	drainMatches(t, heap, ladder)
}

// TestLadderExtremeTimes covers the float edge cases the bucket maps
// must route monotonically: subnormal spans, huge magnitudes, +Inf.
func TestLadderExtremeTimes(t *testing.T) {
	heap := calendar(&eventQueue{})
	ladder := calendar(newLadderQueue())
	times := []Time{
		0, math.SmallestNonzeroFloat64, 2 * math.SmallestNonzeroFloat64,
		1e-300, 1e300, math.MaxFloat64, math.Inf(1),
		1.5, 1.5, 0.003, 3.0000000000000004, 3.0000000000000004,
	}
	for i, due := range times {
		e := event{due: due, seq: uint64(i), fn: func(*Env, any) {}}
		heap.push(e)
		ladder.push(e)
	}
	// Interleave pops with more pushes at popped times (legal: == now).
	for k := 0; k < 4; k++ {
		he, le := heap.pop(), ladder.pop()
		if he.due != le.due || he.seq != le.seq {
			t.Fatalf("pop %d mismatch: heap (due=%v seq=%d), ladder (due=%v seq=%d)", k, he.due, he.seq, le.due, le.seq)
		}
		e := event{due: he.due, seq: uint64(len(times) + k), fn: func(*Env, any) {}}
		heap.push(e)
		ladder.push(e)
	}
	drainMatches(t, heap, ladder)
}

// TestLadderEmptyPanics pins the misuse panics on the ladder, matching
// the heap's text exactly.
func TestLadderEmptyPanics(t *testing.T) {
	q := newLadderQueue()
	mustPanicWith(t, "sim: pop from empty calendar", func() { q.pop() })
	mustPanicWith(t, "sim: peek at empty calendar", func() { q.peek() })
}

// TestCalendarNames pins the CLI names of the calendar knob.
func TestCalendarNames(t *testing.T) {
	for _, c := range []Calendar{Ladder, Heap} {
		got, err := ParseCalendar(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCalendar(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if _, err := ParseCalendar("btree"); err == nil {
		t.Fatal("ParseCalendar accepted an unknown name")
	}
	if Calendar(42).String() == "" {
		t.Fatal("unknown Calendar stringer returned empty")
	}
}

// TestDefaultCalendarKnob checks the process-wide default switches
// what New builds, and that NewWithCalendar reports its kind.
func TestDefaultCalendarKnob(t *testing.T) {
	defer SetDefaultCalendar(Ladder)
	if New().Calendar() != Ladder {
		t.Fatal("default calendar is not the ladder")
	}
	SetDefaultCalendar(Heap)
	if New().Calendar() != Heap {
		t.Fatal("SetDefaultCalendar(Heap) did not take")
	}
	if NewWithCalendar(Ladder).Calendar() != Ladder {
		t.Fatal("NewWithCalendar(Ladder) mislabeled")
	}
	mustPanicWith(t, "sim: unknown calendar 42", func() { NewWithCalendar(Calendar(42)) })
}

// TestSimulatorsAgreeAcrossCalendars runs the same self-scheduling
// workload on a heap simulator and a ladder simulator and compares
// clocks, event counts and execution traces — the kernel-level version
// of the golden byte-identity the scenario tests pin.
func TestSimulatorsAgreeAcrossCalendars(t *testing.T) {
	run := func(c Calendar) (trace []Time, fired uint64) {
		s := NewWithCalendar(c)
		rng := xorshift64(7)
		var grow Func
		grow = func(_ *Env, arg any) {
			depth := arg.(int)
			trace = append(trace, s.Now())
			if depth >= 12 {
				return
			}
			fan := 1 + int(rng.next()%3)
			for i := 0; i < fan; i++ {
				s.AfterCall(Time(rng.next()%5)*0.25, grow, depth+1)
			}
		}
		for i := 0; i < 8; i++ {
			s.AtCall(Time(i)*0.5, grow, 0)
		}
		s.Run()
		return trace, s.Fired()
	}
	ht, hf := run(Heap)
	lt, lf := run(Ladder)
	if hf != lf {
		t.Fatalf("fired: heap %d, ladder %d", hf, lf)
	}
	for i := range ht {
		if ht[i] != lt[i] {
			t.Fatalf("trace diverges at event %d: heap t=%v, ladder t=%v", i, ht[i], lt[i])
		}
	}
}
