package sim

import "math"

// RNG is a small, fast, seedable PCG-XSH-RR 64/32 generator. Two RNGs
// created with the same seed and stream produce identical sequences,
// which keeps every experiment in this module reproducible. The
// original study relied on CSIM's uniform stream for source selection;
// this plays the same role.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// NewRNG returns a generator seeded with seed on stream stream.
// Distinct streams yield statistically independent sequences.
func NewRNG(seed, stream uint64) *RNG {
	r := &RNG{inc: (stream << 1) | 1}
	r.state = 0
	r.Uint32()
	r.state += seed
	r.Uint32()
	return r
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.Uint32())
	lo := uint64(r.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire-style rejection keeps the distribution exactly uniform.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	bound := uint32(n)
	threshold := -bound % bound
	for {
		v := r.Uint32()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// It panics on a non-positive mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: Exp with non-positive mean")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n) using
// Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives a new independent generator from r, advancing r. It is
// the cheap way to give each replication of an experiment its own
// stream without correlating them — but the result depends on how many
// times r has been used, so it cannot be reproduced out of order. For
// parallel replications use Substream instead.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64(), r.Uint64())
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators"): a bijective
// avalanche mix that turns a counter into a well-distributed 64-bit
// value. It is the standard tool for deriving independent seeds from
// structured keys.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Substream returns the generator for replication rep of the
// experiment seeded with seed. Unlike Split, the derivation is a pure
// function of (seed, rep): replication 17 draws the same sequence
// whether it runs first, last, or concurrently with every other
// replication, which is what makes parallel experiment execution
// bit-identical to serial execution. Distinct (seed, rep) pairs yield
// statistically independent streams via two rounds of SplitMix64
// mixing.
func Substream(seed, rep uint64) *RNG {
	s := splitmix64(seed)
	s = splitmix64(s ^ (rep + 0x9E3779B97F4A7C15))
	return NewRNG(s, splitmix64(s))
}
