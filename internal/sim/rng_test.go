package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 1)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGStreamsDiffer(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 agree on %d/100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7, 3)
	f := func(n uint8) bool {
		bound := int(n%100) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11, 5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		ratio := float64(c) / (draws / n)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("value %d drawn %d times, >10%% off uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1, 1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3, 9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(5, 13)
	const mean, draws = 4.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	got := sum / draws
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewRNG(1, 1).Exp(0)
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(17, 19)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23, 29)
	f := func(n uint8) bool {
		size := int(n % 64)
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(31, 37)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint32() == child.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split child agree on %d/100 draws", same)
	}
}

func TestSubstreamIsPureFunctionOfKey(t *testing.T) {
	a := Substream(2005, 17)
	b := Substream(2005, 17)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-key substreams diverged at step %d", i)
		}
	}
}

func TestSubstreamsIndependentAcrossReps(t *testing.T) {
	// Adjacent replication indices must not yield correlated draws —
	// that is the whole point of the SplitMix derivation over the
	// raw counter.
	for rep := uint64(0); rep < 8; rep++ {
		a, b := Substream(42, rep), Substream(42, rep+1)
		same := 0
		for i := 0; i < 100; i++ {
			if a.Uint32() == b.Uint32() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("reps %d and %d agree on %d/100 draws", rep, rep+1, same)
		}
	}
}

func TestSubstreamsIndependentAcrossSeeds(t *testing.T) {
	a, b := Substream(1, 0), Substream(2, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/100 draws at rep 0", same)
	}
}

func TestSubstreamFirstDrawsDistinct(t *testing.T) {
	// A cheap collision check over a block of replications: the
	// first Uint64 of each of 4096 substreams must be unique.
	seen := make(map[uint64]uint64, 4096)
	for rep := uint64(0); rep < 4096; rep++ {
		v := Substream(2005, rep).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("reps %d and %d share first draw %#x", prev, rep, v)
		}
		seen[v] = rep
	}
}
