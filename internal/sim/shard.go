package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Conservative-parallel (PDES) sharded kernel.
//
// A sharded simulator partitions its pending events across K
// shard-local ladder calendars plus the serial calendar the Simulator
// always had. Events are classified at scheduling time:
//
//   - serial-class events (shard < 0) — workload closures, injection
//     ports, completions, deliveries, statistics callbacks, fault
//     machinery — execute on the coordinator thread in exact global
//     (due, seq) order, exactly as the serial kernel would run them;
//   - shard-class events (shard in [0, K)) — the network's header
//     advances and channel releases, which touch only state owned by
//     one shard — live in that shard's calendar and may execute on a
//     worker thread during a parallel segment.
//
// The coordinator repeatedly takes the globally least pending key.
// When it belongs to the serial calendar the event runs inline; when
// it belongs to a shard, the coordinator opens a parallel segment: a
// (due, seq) bound no later than the earliest serial key and no more
// than one lookahead window W past the least shard due. Every shard
// drains its events below the bound concurrently, in local key
// order. This is safe because (a) shard-class events touch only
// shard-owned state, and (b) any cross-shard event a worker schedules
// is at least W in the future (W is the network's per-hop channel
// delay, the hard lookahead), so it lands at or beyond the bound and
// cannot be missed by a shard that already drained the segment —
// workers enforce the invariant with a panic.
//
// Determinism. The serial kernel breaks due ties by seq, which is
// assigned in scheduling order; scheduling order during an interval
// is execution order of the parents times per-parent child order. No
// event scheduled during a segment can also execute during it (its
// due is at or beyond the bound), so the serial kernel would schedule
// the segment's children in exactly (parent due, parent seq, child
// index) order. The barrier therefore merges the workers' child
// buffers in that order and assigns seqs from the global counter,
// reproducing the serial assignment bit for bit; execution order —
// and with it every statistic the simulation emits — is identical to
// the serial kernel at any shard count.
//
// Degraded mode. A network that has seen a fault loses its lookahead
// (a dropped worm releases its whole held chain instantly, across
// shards), so Degrade switches the kernel to coordinator-only
// execution: events stay in their shard calendars, but the
// coordinator drains all calendars in global key order on one
// thread. Output is unchanged — only the parallelism is gone.

// childRec is one event scheduled by a worker during a parallel
// segment, buffered until the barrier assigns its global seq. The
// (pdue, pseq, idx) triple is the serial kernel's scheduling order:
// parent execution order, then per-parent child order.
type childRec struct {
	due   Time
	pdue  Time
	pseq  uint64
	idx   uint32
	shard int32 // destination shard; -1 = serial calendar
	fn    Func
	arg   any
}

// Env is the execution context handed to every event body. It names
// the current simulated time and carries the scheduling entry points;
// on the coordinator (and in a plain serial simulator) it schedules
// directly with globally ordered seqs, on a shard worker it buffers
// children for the deterministic barrier merge.
//
// Exactly one Env exists per execution context: the simulator's root
// context for serial execution, one per shard worker. Event bodies
// must not retain it past the call.
type Env struct {
	now   Time
	shard int32        // scratch-slot index: -1 root/serial, else shard
	s     *Simulator   // owning simulator (always non-nil)
	w     *shardWorker // non-nil iff this is a worker context
}

// Now returns the current simulated time in this context.
func (e *Env) Now() Time {
	if e.w != nil {
		return e.now
	}
	return e.s.now
}

// Shard returns the executing shard index, or -1 on the coordinator.
// The network uses it to pick a per-context scratch buffer.
func (e *Env) Shard() int32 { return e.shard }

// Coordinator reports whether this context executes on the
// coordinator thread, where events run in exact global (due, seq)
// order and scheduling assigns final sequence numbers directly.
// Serial simulators are always coordinators.
func (e *Env) Coordinator() bool { return e.w == nil }

// Sim returns the owning simulator. Worker contexts must not touch
// its mutable state; the accessor exists for identity checks.
func (e *Env) Sim() *Simulator { return e.s }

// AtCall schedules a serial-class event at absolute time t.
func (e *Env) AtCall(t Time, fn Func, arg any) { e.AtCallShard(t, fn, arg, -1) }

// AfterCall schedules a serial-class event delay units from now.
func (e *Env) AfterCall(delay Time, fn Func, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtCallShard(e.Now()+delay, fn, arg, -1)
}

// AfterCallShard schedules an event delay units from now on the given
// shard (-1 = serial class).
func (e *Env) AfterCallShard(delay Time, fn Func, arg any, shard int32) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtCallShard(e.Now()+delay, fn, arg, shard)
}

// AtCallShard schedules the action record (fn, arg) at absolute time
// t on the given shard; shard -1 means serial class. On a simulator
// without sharding enabled the shard index is ignored and the call is
// exactly AtCall.
func (e *Env) AtCallShard(t Time, fn Func, arg any, shard int32) {
	if w := e.w; w != nil {
		// Worker context: buffer the child for the barrier merge. The
		// conservative invariant — workers only ever schedule at least
		// one lookahead window ahead — is what makes segment execution
		// safe, so violating it is a loud logic error, not a slow one.
		if fn == nil {
			panic("sim: nil event function scheduled")
		}
		if t < w.segBoundDue {
			panic(fmt.Sprintf("sim: shard %d scheduled into the open segment: t=%v is before bound %v (lookahead violation)",
				w.idx, t, w.segBoundDue))
		}
		if math.IsNaN(t) {
			panic("sim: scheduling at NaN")
		}
		w.kids = append(w.kids, childRec{
			due: t, pdue: w.curDue, pseq: w.curSeq, idx: w.curIdx,
			shard: shard, fn: fn, arg: arg,
		})
		w.curIdx++
		return
	}
	s := e.s
	if fn == nil {
		panic("sim: nil event function scheduled")
	}
	if s.stopped {
		panic("sim: schedule after Stop")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: t=%v is before now=%v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN")
	}
	ev := event{due: t, seq: s.nextSeq, fn: fn, arg: arg}
	s.nextSeq++
	if sh := s.sh; sh != nil && shard >= 0 {
		sh.cals[shard].push(ev)
		return
	}
	if s.lq != nil {
		s.lq.push(ev)
	} else {
		s.queue.push(ev)
	}
}

// shardWorker owns one shard's calendar and runs its share of each
// parallel segment. Workers 1..K-1 run on their own goroutines;
// shard 0 is driven by the coordinator thread between its other
// duties, so a sharded simulator uses exactly K OS threads while a
// segment is open and one otherwise.
type shardWorker struct {
	idx int32
	cal *ladderQueue
	env Env
	s   *Simulator

	// Segment command (written by the coordinator before gen is
	// bumped, read by the worker after it observes the bump).
	segBoundDue Time
	segBoundSeq uint64

	// Segment results (written by the worker before done is bumped,
	// read by the coordinator after it observes the bump).
	kids   []childRec
	nExec  uint64
	maxDue Time

	// Per-event child bookkeeping during a segment.
	curDue Time
	curSeq uint64
	curIdx uint32

	// gen/done carry the segment handshake; parked+wake are the
	// blocking slow path once the spin budget runs out.
	gen    atomic.Uint32
	done   atomic.Uint32
	parked atomic.Bool
	wake   chan struct{}
	quit   atomic.Bool

	// wfBuf is this worker's wavefront scratch; per-worker so segment
	// drains on different shards never share it.
	wfBuf []event
}

// runSegment drains the worker's calendar up to the published bound,
// buffering every scheduled child.
func (w *shardWorker) runSegment() {
	cal := w.cal
	w.kids = w.kids[:0]
	w.nExec = 0
	bd, bs := w.segBoundDue, w.segBoundSeq
	if w.s.wf {
		w.runSegmentWavefronts(bd, bs)
		return
	}
	for cal.n > 0 {
		e := cal.peek()
		if e.due > bd || (e.due == bd && e.seq >= bs) {
			break
		}
		cal.pop()
		w.env.now = e.due
		w.curDue, w.curSeq, w.curIdx = e.due, e.seq, 0
		w.maxDue = e.due
		w.nExec++
		e.fn(&w.env, e.arg)
	}
}

// runSegmentWavefronts is runSegment draining per-shard wavefronts:
// each front equal-due run below the segment bound comes out of the
// calendar in one sweep and executes in (due, seq) order with the
// per-event child bookkeeping unchanged, so the barrier merge sees
// exactly the buffers the one-at-a-time drain would have produced.
// Children a batch schedules land at or beyond the bound (the
// conservative invariant), so they can never join the open segment.
func (w *shardWorker) runSegmentWavefronts(bd Time, bs uint64) {
	cal := w.cal
	s := w.s
	// Executed records' fn/arg references persist in the scratch between
	// batches; release them when the segment closes.
	defer func() { clear(w.wfBuf[:cap(w.wfBuf)]) }()
	for cal.n > 0 {
		wf := cal.popWavefront(w.wfBuf[:0], bd, bs)
		if len(wf) == 0 {
			w.wfBuf = wf
			return
		}
		n := len(wf)
		w.env.now = wf[0].due
		w.maxDue = wf[0].due
		w.nExec += uint64(n)
		batch := n > 1
		if batch && s.wfBegin != nil {
			s.wfBegin(&w.env, n)
		}
		for k := 0; k < n; k++ {
			w.curDue, w.curSeq, w.curIdx = wf[k].due, wf[k].seq, 0
			wf[k].fn(&w.env, wf[k].arg)
		}
		if batch && s.wfEnd != nil {
			s.wfEnd(&w.env)
		}
		w.wfBuf = wf
	}
}

// loop is the body of a worker goroutine: wait for a segment command,
// run it, publish completion. The spin budget keeps barrier latency
// in the tens of nanoseconds while segments are flowing; an idle
// worker parks on its wake channel and costs nothing.
func (w *shardWorker) loop() {
	// last is the last COMPLETED generation, so it must seed from done,
	// not gen: the coordinator may dispatch a segment before this
	// goroutine executes its first instruction, and seeding from gen
	// would mark that segment as already seen — the worker parks
	// forever and the coordinator spins in await.
	last := w.done.Load()
	for {
		const spinBudget = 1 << 14
		spun := 0
		for w.gen.Load() == last {
			if w.quit.Load() {
				return
			}
			spun++
			if spun < spinBudget {
				runtime.Gosched()
				continue
			}
			w.parked.Store(true)
			if w.gen.Load() != last || w.quit.Load() {
				w.parked.Store(false)
				break
			}
			<-w.wake
			w.parked.Store(false)
		}
		if w.quit.Load() {
			return
		}
		last = w.gen.Load()
		w.runSegment()
		w.done.Store(last)
	}
}

// sharded is the kernel state hung off a Simulator by EnableSharding.
type sharded struct {
	k        int
	window   Time // conservative lookahead; 0 until SetLookahead
	cals     []*ladderQueue
	workers  []*shardWorker
	degraded bool
	running  bool

	// gen is the segment generation counter. It lives here — not on a
	// worker — and is never reset, so it stays monotonic across
	// Run/RunUntil calls: a worker's done only ever equals generations
	// that worker actually completed, and a later run can never mistake
	// a previous run's completion for its own (which would skip the
	// segment and re-merge the worker's stale child buffer).
	gen uint32

	// wg tracks live worker goroutines so stopWorkers can join them;
	// without the join a worker that had not yet observed quit could
	// survive into the next run alongside its replacement, racing it
	// on the same shard calendar.
	wg sync.WaitGroup

	// envs[i] is the coordinator-side context for inline execution of
	// shard i's events (scratch slot i, direct scheduling).
	envs []Env

	// merge scratch: per-worker cursor into kids buffers.
	cursors []int
}

// EnableSharding converts the simulator to the sharded kernel with k
// shard calendars. It must be called before any shard-class event is
// scheduled, at most once, and k must be at least 2 (a single shard
// is the serial kernel; callers keep it by simply not enabling
// sharding). The caller must also install the conservative lookahead
// window via SetLookahead before Run; the network does both when its
// configuration asks for shards.
func (s *Simulator) EnableSharding(k int) {
	if k < 2 {
		panic(fmt.Sprintf("sim: EnableSharding with %d shards (want >= 2)", k))
	}
	if s.sh != nil {
		panic("sim: sharding already enabled")
	}
	sh := &sharded{
		k:       k,
		cals:    make([]*ladderQueue, k),
		workers: make([]*shardWorker, k),
		envs:    make([]Env, k),
		cursors: make([]int, k),
	}
	for i := 0; i < k; i++ {
		sh.cals[i] = newLadderQueue()
		w := &shardWorker{idx: int32(i), cal: sh.cals[i], s: s, wake: make(chan struct{}, 1)}
		w.env = Env{shard: int32(i), s: s, w: w}
		sh.workers[i] = w
		sh.envs[i] = Env{shard: int32(i), s: s}
	}
	s.sh = sh
}

// Shards returns the shard count of the sharded kernel, or 1 for a
// serial simulator.
func (s *Simulator) Shards() int {
	if s.sh == nil {
		return 1
	}
	return s.sh.k
}

// SetLookahead installs the conservative window: the minimum delay of
// any cross-shard event a shard-class event can schedule. The network
// sets it to its per-hop channel delay. Scheduling a shard-class
// event on a kernel whose lookahead is zero is still correct — the
// coordinator executes such events inline, one global key at a time —
// but no parallel segment ever opens.
func (s *Simulator) SetLookahead(w Time) {
	if s.sh == nil {
		panic("sim: SetLookahead without sharding enabled")
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("sim: invalid lookahead %v", w))
	}
	s.sh.window = w
}

// Degrade switches a sharded kernel to coordinator-only execution:
// all calendars keep their events but every event now executes on the
// coordinator thread in global (due, seq) order. The network calls it
// when fault state first appears — a degraded network's drop cascades
// release channels across shards at zero delay, so the conservative
// lookahead no longer holds. Degradation is sticky for the rest of
// the run; output is unaffected (the coordinator order IS the serial
// order). Degrading a serial simulator is a no-op.
func (s *Simulator) Degrade() {
	if s.sh != nil {
		s.sh.degraded = true
	}
}

// Degraded reports whether a sharded kernel has fallen back to
// coordinator-only execution.
func (s *Simulator) Degraded() bool { return s.sh != nil && s.sh.degraded }

// Env returns the simulator's root (coordinator) execution context.
// It is valid for code that runs between events or from serial-class
// event bodies — the network's fault entry points use it — never from
// a shard worker.
func (s *Simulator) Env() *Env { return &s.env }

// shardPending sums the events waiting in shard calendars.
func (sh *sharded) pending() int {
	total := 0
	for _, c := range sh.cals {
		total += c.n
	}
	return total
}

// startWorkers spawns goroutines for shards 1..K-1. Shard 0 is driven
// by the coordinator thread.
func (sh *sharded) startWorkers() {
	if sh.running {
		return
	}
	sh.running = true
	for _, w := range sh.workers[1:] {
		w.quit.Store(false)
		sh.wg.Add(1)
		go func() {
			defer sh.wg.Done()
			w.loop()
		}()
	}
}

// stopWorkers terminates the worker goroutines and joins them. Called
// when a run completes so simulators can be dropped without leaking
// goroutines; the join guarantees the next startWorkers never spawns a
// replacement while an old goroutine still services the same worker.
func (sh *sharded) stopWorkers() {
	if !sh.running {
		return
	}
	sh.running = false
	for _, w := range sh.workers[1:] {
		w.quit.Store(true)
		if w.parked.Load() {
			select {
			case w.wake <- struct{}{}:
			default:
			}
		}
	}
	sh.wg.Wait()
}

// dispatch publishes a segment bound to worker w and wakes it.
func (sh *sharded) dispatch(w *shardWorker, boundDue Time, boundSeq uint64, gen uint32) {
	w.segBoundDue, w.segBoundSeq = boundDue, boundSeq
	w.gen.Store(gen)
	if w.parked.Load() {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// await spin-waits for worker w to finish generation gen.
func (sh *sharded) await(w *shardWorker, gen uint32) {
	for w.done.Load() != gen {
		runtime.Gosched()
	}
}

// keyLess reports whether (d1, q1) orders before (d2, q2).
func keyLess(d1 Time, q1 uint64, d2 Time, q2 uint64) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return q1 < q2
}

// mergeChildren routes every child buffered during the segment by the
// active workers, assigning global seqs in (parent due, parent seq,
// child index) order — the order the serial kernel would have
// scheduled them in. Each worker's buffer is already sorted by that
// key (workers execute their parents in key order and buffer children
// in per-parent order), so this is a K-way merge.
func (s *Simulator) mergeChildren(active []*shardWorker) {
	sh := s.sh
	cursors := sh.cursors[:0]
	for range active {
		cursors = append(cursors, 0)
	}
	for {
		best := -1
		for i, w := range active {
			c := cursors[i]
			if c >= len(w.kids) {
				continue
			}
			k := &w.kids[c]
			if best < 0 {
				best = i
				continue
			}
			b := &active[best].kids[cursors[best]]
			if keyLess(k.pdue, k.pseq, b.pdue, b.pseq) ||
				(k.pdue == b.pdue && k.pseq == b.pseq && k.idx < b.idx) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		k := &active[best].kids[cursors[best]]
		cursors[best]++
		ev := event{due: k.due, seq: s.nextSeq, fn: k.fn, arg: k.arg}
		s.nextSeq++
		if k.shard >= 0 {
			sh.cals[k.shard].push(ev)
		} else if s.lq != nil {
			s.lq.push(ev)
		} else {
			s.queue.push(ev)
		}
	}
}

// serialFront reports the serial calendar's least key.
func (s *Simulator) serialFront() (d Time, q uint64, ok bool) {
	if s.lq != nil {
		if s.lq.n == 0 {
			return 0, 0, false
		}
		e := s.lq.peek()
		return e.due, e.seq, true
	}
	if s.queue.Len() == 0 {
		return 0, 0, false
	}
	e := s.queue.peek()
	return e.due, e.seq, true
}

// popSerial removes and returns the serial calendar's least event.
func (s *Simulator) popSerial() event {
	if s.lq != nil {
		return s.lq.pop()
	}
	return s.queue.pop()
}

// stepEventLimit enforces the safety valve outside the plain Run loop.
func (s *Simulator) stepEventLimit() {
	if s.limit > 0 && s.fired >= s.limit {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
	}
}

// runSharded is the coordinator loop: Run and RunUntil of a sharded
// simulator. horizon is +Inf for Run; for RunUntil only events with
// due <= horizon execute.
func (s *Simulator) runSharded(horizon Time) {
	sh := s.sh
	if !sh.degraded {
		sh.startWorkers()
	}
	defer sh.stopWorkers()

	// horizonBound is the exclusive due bound equivalent to the
	// inclusive horizon: due <= horizon  <=>  due < nextafter(horizon).
	horizonBound := math.Inf(1)
	if !math.IsInf(horizon, 1) {
		horizonBound = math.Nextafter(horizon, math.Inf(1))
	}

	for !s.stopped {
		sd, sq, sOk := s.serialFront()
		// Least shard front.
		var pd Time
		var pq uint64
		pShard := -1
		for i, c := range sh.cals {
			if c.n == 0 {
				continue
			}
			e := c.peek()
			if pShard < 0 || keyLess(e.due, e.seq, pd, pq) {
				pShard, pd, pq = i, e.due, e.seq
			}
		}
		if !sOk && pShard < 0 {
			return // all calendars empty
		}

		// Serial event is globally least: run it inline.
		if sOk && (pShard < 0 || keyLess(sd, sq, pd, pq)) {
			if sd > horizon {
				return
			}
			e := s.popSerial()
			s.now = e.due
			s.fired++
			e.fn(&s.env, e.arg)
			s.stepEventLimit()
			continue
		}

		if pd > horizon {
			return
		}

		// Shard event is globally least. Segment bound: no later than
		// the earliest serial key, the horizon, or one lookahead window
		// past the least shard due.
		boundDue := pd + sh.window
		boundSeq := uint64(0)
		if boundDue > horizonBound {
			boundDue, boundSeq = horizonBound, 0
		}
		if sOk && !keyLess(boundDue, boundSeq, sd, sq) {
			boundDue, boundSeq = sd, sq
		}

		if sh.degraded || sh.window <= 0 {
			// Coordinator-only: run the least shard up to the next
			// other-shard front so execution stays in exact global key
			// order across all calendars on one thread.
			limDue, limSeq := boundDue, boundSeq
			for i, c := range sh.cals {
				if i == pShard || c.n == 0 {
					continue
				}
				e := c.peek()
				if keyLess(e.due, e.seq, limDue, limSeq) {
					limDue, limSeq = e.due, e.seq
				}
			}
			s.runShardInline(pShard, limDue, limSeq)
			continue
		}

		// Active shards: all with front below the bound.
		var active []*shardWorker
		for i, c := range sh.cals {
			if c.n == 0 {
				continue
			}
			e := c.peek()
			if keyLess(e.due, e.seq, boundDue, boundSeq) {
				active = append(active, sh.workers[i])
			}
		}
		if len(active) == 1 {
			// One shard below the bound: drain it on the coordinator —
			// same order, none of the barrier cost.
			s.runShardInline(int(active[0].idx), boundDue, boundSeq)
			continue
		}

		// Parallel segment. Workers 1..K-1 get the bound; shard 0 (if
		// active) runs on this thread.
		sh.gen++
		gen := sh.gen
		var self *shardWorker
		for _, w := range active {
			if w.idx == 0 {
				self = w
				w.segBoundDue, w.segBoundSeq = boundDue, boundSeq
				continue
			}
			sh.dispatch(w, boundDue, boundSeq, gen)
		}
		if self != nil {
			self.runSegment()
		}
		maxDue := s.now
		var nExec uint64
		for _, w := range active {
			if w != self {
				sh.await(w, gen)
			}
			if w.nExec > 0 && w.maxDue > maxDue {
				maxDue = w.maxDue
			}
			nExec += w.nExec
		}
		s.now = maxDue
		s.fired += nExec
		s.mergeChildren(active)
		s.stepEventLimit()
	}
}

// runShardInline drains shard i's calendar on the coordinator thread
// while its front key is below (limDue, limSeq). Children are
// scheduled directly with globally ordered seqs — this is serial
// execution that happens to pop from a shard calendar.
func (s *Simulator) runShardInline(i int, limDue Time, limSeq uint64) {
	sh := s.sh
	cal := sh.cals[i]
	env := &sh.envs[i]
	if s.wf && s.limit == 0 {
		s.runShardInlineWavefronts(i, limDue, limSeq)
		return
	}
	for !s.stopped && cal.n > 0 {
		e := cal.peek()
		if !keyLess(e.due, e.seq, limDue, limSeq) {
			return
		}
		cal.pop()
		if e.due < s.now {
			// The drain limit was computed from the calendar fronts when
			// the drain opened; it is only exact because every delay a
			// shard-class event can schedule is at least the lookahead
			// window (network.Config.validate enforces Ts and DeadWait
			// >= the hop delay on sharded runs). A regressing clock here
			// means an event was scheduled below the open limit — a
			// causality violation that must be loud, not a silent
			// divergence from the serial kernel.
			panic(fmt.Sprintf("sim: shard %d clock regression: event due %v before now=%v (scheduled below the open drain limit)",
				i, e.due, s.now))
		}
		s.now = e.due
		s.fired++
		e.fn(env, e.arg)
		s.stepEventLimit()
	}
}

// runShardInlineWavefronts is runShardInline draining wavefronts:
// identical order (the bound test matches keyLess exactly), identical
// clock-regression guard (a run shares one due, so checking its first
// event checks them all), and a Stop mid-batch re-pushes the
// unexecuted tail with original seqs so Pending matches the
// one-at-a-time drain.
func (s *Simulator) runShardInlineWavefronts(i int, limDue Time, limSeq uint64) {
	sh := s.sh
	cal := sh.cals[i]
	env := &sh.envs[i]
	defer func() { clear(s.wfBuf[:cap(s.wfBuf)]) }()
	for !s.stopped && cal.n > 0 {
		wf := cal.popWavefront(s.wfBuf[:0], limDue, limSeq)
		if len(wf) == 0 {
			s.wfBuf = wf
			return
		}
		if wf[0].due < s.now {
			// See runShardInline: an event below the open drain limit is
			// a causality violation and must be loud.
			panic(fmt.Sprintf("sim: shard %d clock regression: event due %v before now=%v (scheduled below the open drain limit)",
				i, wf[0].due, s.now))
		}
		s.now = wf[0].due
		n := len(wf)
		batch := n > 1
		if batch && s.wfBegin != nil {
			s.wfBegin(env, n)
		}
		for k := 0; k < n; k++ {
			if s.stopped {
				for _, e := range wf[k:] {
					cal.push(e)
				}
				break
			}
			s.fired++
			wf[k].fn(env, wf[k].arg)
		}
		if batch && s.wfEnd != nil {
			s.wfEnd(env)
		}
		s.wfBuf = wf
	}
}
