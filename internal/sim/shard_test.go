package sim

import (
	"reflect"
	"testing"
)

// These tests pin the sharded kernel's lifecycle across repeated
// Run/RunUntil calls on ONE simulator. The metrics-level differential
// suite runs each study in a fresh simulator, so it can never see the
// restart bugs this file exists for: a segment-generation counter that
// resets between runs (skipping segments and re-merging a worker's
// stale child buffer) or a worker goroutine surviving into the next
// run alongside its replacement (two goroutines racing on one shard
// calendar — run these under -race).

const (
	rotorShards = 4
	rotorWindow = Time(1.0)
)

// rotorTrace records what a rotor workload executed. perShard[i] is
// appended only by shard i's events (one worker at a time), serial
// only by coordinator-class events, so the sharded kernel can fill it
// without races and the slices compare exactly against a serial run.
type rotorTrace struct {
	perShard [][]Time
	serial   []Time
}

// rotor is a self-perpetuating shard-class event: it records its
// firing, hands itself to the next shard one lookahead window out,
// and every third firing echoes a serial-class event. The schedule it
// generates keeps all four shard fronts inside one window, so every
// segment of a sharded run activates every worker.
type rotor struct {
	tr    *rotorTrace
	shard int32
	n     int
	limit int // stop respawning after this many firings; 0 = forever
}

func rotorEvent(env *Env, arg any) {
	r := arg.(*rotor)
	tr := r.tr
	tr.perShard[r.shard] = append(tr.perShard[r.shard], env.Now())
	r.n++
	if r.limit > 0 && r.n >= r.limit {
		return
	}
	next := (r.shard + 1) % rotorShards
	env.AfterCallShard(rotorWindow, rotorEvent,
		&rotor{tr: tr, shard: next, n: r.n, limit: r.limit}, next)
	if r.n%3 == 0 {
		env.AfterCallShard(rotorWindow, echoEvent, tr, -1)
	}
}

func echoEvent(env *Env, arg any) {
	tr := arg.(*rotorTrace)
	tr.serial = append(tr.serial, env.Now())
}

// startRotors schedules one rotor per shard at staggered offsets past
// the current clock (all within one window) and returns the trace
// they will fill.
func startRotors(s *Simulator, limit int) *rotorTrace {
	tr := &rotorTrace{perShard: make([][]Time, rotorShards)}
	base := s.Now()
	for i := int32(0); i < rotorShards; i++ {
		s.Env().AtCallShard(base+Time(i)*0.25, rotorEvent,
			&rotor{tr: tr, shard: i, limit: limit}, i)
	}
	return tr
}

// newShardedSim returns a simulator running the 4-shard kernel with
// the rotor workload's lookahead window installed.
func newShardedSim() *Simulator {
	s := New()
	s.EnableSharding(rotorShards)
	s.SetLookahead(rotorWindow)
	return s
}

// TestShardedRepeatedRunUntilIdentical steps one sharded simulator
// through many RunUntil horizons — the natural use of RunUntil, and
// the pattern that exposes any kernel state not carried across runs —
// and requires the execution trace, event count and clock to match a
// serial twin exactly.
func TestShardedRepeatedRunUntilIdentical(t *testing.T) {
	drive := func(s *Simulator) *rotorTrace {
		tr := startRotors(s, 0)
		h := Time(0)
		for i := 0; i < 150; i++ {
			h += 0.7
			if err := s.RunUntil(h); err != nil {
				t.Fatalf("RunUntil(%v): %v", h, err)
			}
		}
		return tr
	}
	serial := New()
	want := drive(serial)
	sharded := newShardedSim()
	got := drive(sharded)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("sharded trace diverges from serial across repeated RunUntil calls:\nserial: %+v\nsharded: %+v", want, got)
	}
	if serial.Fired() != sharded.Fired() {
		t.Errorf("fired %d events sharded, want %d", sharded.Fired(), serial.Fired())
	}
	if serial.Now() != sharded.Now() {
		t.Errorf("clock = %v sharded, want %v", sharded.Now(), serial.Now())
	}
}

// TestShardedRepeatedRunIdentical runs one sharded simulator to
// completion twice — a finite rotor batch, Run, a fresh batch, Run
// again — so the second Run starts with workers holding completed
// state from the first.
func TestShardedRepeatedRunIdentical(t *testing.T) {
	drive := func(s *Simulator) []*rotorTrace {
		var traces []*rotorTrace
		for round := 0; round < 3; round++ {
			tr := startRotors(s, 40)
			s.Run()
			traces = append(traces, tr)
		}
		return traces
	}
	serial := New()
	want := drive(serial)
	sharded := newShardedSim()
	got := drive(sharded)

	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("round %d: sharded trace diverges from serial across repeated Run calls:\nserial: %+v\nsharded: %+v", i, *want[i], *got[i])
		}
	}
	if serial.Fired() != sharded.Fired() {
		t.Errorf("fired %d events sharded, want %d", sharded.Fired(), serial.Fired())
	}
}

// TestStepPanicsOnSharded: the single-step debug API pops only the
// serial calendar, so on a sharded kernel it must refuse loudly
// instead of executing events out of global order.
func TestStepPanicsOnSharded(t *testing.T) {
	s := newShardedSim()
	s.At(1, func() {})
	mustPanicWith(t, "sim: Step on a sharded simulator (use Run or RunUntil)", func() {
		s.Step()
	})
}
