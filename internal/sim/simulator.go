package sim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Calendar selects the event-calendar implementation backing a
// Simulator. The default is Ladder, the amortized-O(1) ladder queue;
// Heap is the legacy O(log n) binary heap, kept as a debugging
// reference. Both drain any schedule in the identical (due, seq)
// order, so simulation output is byte-for-byte the same either way —
// only throughput differs.
type Calendar int

const (
	// Ladder is the multi-tier calendar queue (ladder.go): amortized
	// O(1) push and pop, with an O(1) fast path for the same-instant
	// event bursts wormhole hop timing produces. The default.
	Ladder Calendar = iota
	// Heap is the legacy binary-heap calendar (event.go): O(log n)
	// sift per operation. Select it to cross-check a result or to
	// measure the ladder's speedup.
	Heap
)

// String returns the name used by CLI -calendar flags.
func (c Calendar) String() string {
	switch c {
	case Ladder:
		return "ladder"
	case Heap:
		return "heap"
	}
	return fmt.Sprintf("Calendar(%d)", int(c))
}

// ParseCalendar converts a CLI flag value ("ladder" or "heap") into a
// Calendar.
func ParseCalendar(name string) (Calendar, error) {
	switch name {
	case "ladder":
		return Ladder, nil
	case "heap":
		return Heap, nil
	}
	return 0, fmt.Errorf("sim: unknown calendar %q (want ladder or heap)", name)
}

// defaultCalendar is the process-wide kind New uses. It exists so a
// CLI flag can flip every simulator an experiment creates internally;
// atomic because worker pools read it concurrently.
var defaultCalendar atomic.Int32 // zero value == Ladder

// SetDefaultCalendar selects the calendar New returns from now on.
// Call it before starting a run, not during one.
func SetDefaultCalendar(c Calendar) { defaultCalendar.Store(int32(c)) }

// DefaultCalendar reports the calendar New currently uses.
func DefaultCalendar() Calendar { return Calendar(defaultCalendar.Load()) }

// wavefrontOff is the process-wide wavefront-execution knob, inverted
// so the zero value means on — wavefront batching is the default, the
// flag exists for A/B runs and differential tests. Atomic for the
// same reason as defaultCalendar: worker pools read it concurrently.
var wavefrontOff atomic.Bool

// SetDefaultWavefront selects whether simulators created from now on
// execute same-instant runs as batched wavefronts (the default) or
// pop one event at a time. Output is byte-identical either way — the
// knob trades nothing but speed, and exists so CI can diff the two.
func SetDefaultWavefront(on bool) { wavefrontOff.Store(!on) }

// DefaultWavefront reports whether New currently enables wavefront
// batch execution.
func DefaultWavefront() bool { return !wavefrontOff.Load() }

// WavefrontStats is the batch-size census a simulator keeps while
// running with wavefront execution: how many wavefronts it drained,
// how many events they carried, and a log2 histogram of batch sizes
// (Hist[k] counts wavefronts of size in [2^k, 2^(k+1))).
type WavefrontStats struct {
	Batches uint64
	Events  uint64
	Hist    [16]uint64
}

// ErrStalled is returned by RunUntil when the calendar empties before
// the requested horizon. It usually means the workload stopped
// injecting messages, which is normal at the end of a run.
var ErrStalled = errors.New("sim: event calendar empty before horizon")

// Simulator owns the virtual clock and the event calendar.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	queue   calendar
	lq      *ladderQueue // non-nil iff kind == Ladder: devirtualized hot path
	kind    Calendar
	nextSeq uint64
	fired   uint64
	limit   uint64 // safety valve; 0 means no limit
	stopped bool
	// wf enables wavefront batch execution (captured from the process
	// default at New); wfBuf is the caller-owned scratch popWavefront
	// copies runs into, reused across batches. wfBegin/wfEnd are the
	// executor's hooks around a multi-event batch (see
	// SetWavefrontHooks), and wfStats is the batch-size census.
	wf      bool
	wfBuf   []event
	wfBegin func(env *Env, size int)
	wfEnd   func(env *Env)
	wfStats WavefrontStats
	// env is the coordinator execution context handed to every event
	// body that runs on this thread (all of them, on a serial
	// simulator).
	env Env
	// sh is the conservative-parallel kernel state; nil on a serial
	// simulator (see shard.go).
	sh *sharded
}

// New returns an empty simulator with the clock at zero, backed by the
// process default calendar (see SetDefaultCalendar; Ladder unless
// overridden).
func New() *Simulator {
	return NewWithCalendar(DefaultCalendar())
}

// NewWithCalendar returns an empty simulator backed by the given
// calendar implementation.
func NewWithCalendar(c Calendar) *Simulator {
	s := &Simulator{kind: c, wf: DefaultWavefront()}
	s.env = Env{shard: -1, s: s}
	switch c {
	case Ladder:
		s.lq = newLadderQueue()
		s.queue = s.lq
	case Heap:
		s.queue = &eventQueue{}
	default:
		panic(fmt.Sprintf("sim: unknown calendar %d", int(c)))
	}
	return s
}

// Calendar reports which calendar implementation backs the simulator.
func (s *Simulator) Calendar() Calendar { return s.kind }

// Wavefront reports whether this simulator executes same-instant runs
// as batched wavefronts (captured from the process default at New).
func (s *Simulator) Wavefront() bool { return s.wf }

// SetWavefrontHooks installs the executor's callbacks around each
// multi-event wavefront: begin runs before a batch's first event with
// the batch size, end after its last. The network layer uses them to
// pin a struct-of-arrays view of lane state for the batch's duration.
// Hooks only fire around batches of two or more events — a singleton
// run is executed exactly like a plain Step. Either hook may be nil.
func (s *Simulator) SetWavefrontHooks(begin func(env *Env, size int), end func(env *Env)) {
	s.wfBegin, s.wfEnd = begin, end
}

// WavefrontStats returns the batch-size census accumulated so far.
// All counters stay zero when wavefront execution is off or the
// simulator runs sharded (shard segments keep their own drains).
func (s *Simulator) WavefrontStats() WavefrontStats { return s.wfStats }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// SetEventLimit installs a safety limit on the number of events a Run
// call may execute; 0 disables the limit. It guards against runaway
// feedback loops in experimental workloads.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// runClosure adapts the closure-based At/After API onto the record
// calendar. An Action is a single pointer, so boxing it into the
// record's arg is allocation-free; only the closure the caller built
// costs an allocation.
func runClosure(_ *Env, arg any) { arg.(Action)() }

// At schedules action to run at absolute time t. Scheduling in the
// past panics: it is always a logic error in a discrete-event model.
func (s *Simulator) At(t Time, action Action) {
	if action == nil {
		panic("sim: nil action scheduled")
	}
	s.AtCall(t, runClosure, action)
}

// After schedules action to run delay time units from now.
func (s *Simulator) After(delay Time, action Action) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.At(s.now+delay, action)
}

// AtCall schedules the action record (fn, arg) to run at absolute
// time t. This is the allocation-free scheduling path hot loops use:
// fn is a prebuilt function (not a closure) and arg carries its
// state, typically a pointer into the caller's pooled objects.
func (s *Simulator) AtCall(t Time, fn Func, arg any) {
	if fn == nil {
		panic("sim: nil event function scheduled")
	}
	if s.stopped {
		panic("sim: schedule after Stop")
	}
	if t < s.now {
		// Like the schedule-after-Stop guard: a past-due event would
		// execute after events scheduled for later times, silently
		// corrupting causality, so it is named loudly instead.
		panic(fmt.Sprintf("sim: scheduling into the past: t=%v is before now=%v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN")
	}
	e := event{due: t, seq: s.nextSeq, fn: fn, arg: arg}
	if s.lq != nil {
		s.lq.push(e)
	} else {
		s.queue.push(e)
	}
	s.nextSeq++
}

// AfterCall schedules the action record (fn, arg) to run delay time
// units from now.
func (s *Simulator) AfterCall(delay Time, fn Func, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.AtCall(s.now+delay, fn, arg)
}

// Pending reports the number of events waiting on the calendar (all
// shard calendars included on a sharded simulator).
func (s *Simulator) Pending() int {
	p := s.queue.Len()
	if s.sh != nil {
		p += s.sh.pending()
	}
	return p
}

// Stop ends the simulation: the running Run/RunUntil loop exits after
// the current event returns, and any further scheduling panics with a
// descriptive message — an event firing after an experiment tore its
// state down is always a logic error, and the panic names it instead
// of corrupting the next run. Stop is idempotent.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Step executes the earliest pending event, advancing the clock to its
// due time. It reports whether an event was executed. Step is a serial
// debugging entry point: on a sharded simulator it would pop only the
// serial calendar and execute events out of global order, so it panics
// there — drive a sharded kernel with Run or RunUntil.
func (s *Simulator) Step() bool {
	if s.sh != nil {
		panic("sim: Step on a sharded simulator (use Run or RunUntil)")
	}
	if s.stopped {
		return false
	}
	var e event
	if s.lq != nil {
		if s.lq.n == 0 {
			return false
		}
		e = s.lq.pop()
	} else {
		if s.queue.Len() == 0 {
			return false
		}
		e = s.queue.pop()
	}
	s.now = e.due
	s.fired++
	e.fn(&s.env, e.arg)
	return true
}

// Run executes events until the calendar is empty or Stop is called.
// On a sharded simulator (EnableSharding) this is the coordinator of
// the conservative-parallel kernel; worker goroutines live only for
// the duration of the call.
func (s *Simulator) Run() {
	if s.sh != nil {
		s.runSharded(math.Inf(1))
		return
	}
	if s.wf && s.limit == 0 {
		s.runWavefronts(math.Inf(1))
		return
	}
	for s.Step() {
		if s.limit > 0 && s.fired >= s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
	}
}

// RunUntil executes events with due time <= horizon. The clock ends at
// horizon if the calendar still holds later events, or at the last
// executed event otherwise, in which case ErrStalled is returned.
func (s *Simulator) RunUntil(horizon Time) error {
	if s.sh != nil {
		s.runSharded(horizon)
		if s.Pending() == 0 {
			return ErrStalled
		}
		if !s.stopped {
			s.now = horizon
		}
		return nil
	}
	if s.wf && s.limit == 0 {
		s.runWavefronts(horizon)
	} else {
		for !s.stopped && s.queue.Len() > 0 && s.queue.peek().due <= horizon {
			s.Step()
			if s.limit > 0 && s.fired >= s.limit {
				panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
			}
		}
	}
	if s.queue.Len() == 0 {
		return ErrStalled
	}
	if !s.stopped {
		s.now = horizon
	}
	return nil
}

// runWavefronts is the batched serial drain Run and RunUntil use when
// wavefront execution is on (and no event limit is set — the limit
// path keeps the one-at-a-time loop so the limit panic fires at the
// exact same event). Each iteration pops the front equal-due run in
// one calendar sweep and executes it front to back: the run comes
// back in (due, seq) order, events an executing body schedules carry
// seqs larger than everything in the run, and a Stop mid-batch
// re-pushes the unexecuted remainder with their original seqs — so
// the observable schedule is bit-for-bit what repeated Step calls
// produce, only the calendar round trips are amortized.
func (s *Simulator) runWavefronts(horizon Time) {
	bounded := !math.IsInf(horizon, 1)
	// The scratch keeps executed records' fn/arg references between
	// batches (the next pop overwrites them); release them all when the
	// drain hands control back.
	defer func() { clear(s.wfBuf[:cap(s.wfBuf)]) }()
	for !s.stopped && s.queue.Len() > 0 {
		if bounded && s.queue.peek().due > horizon {
			return
		}
		var wf []event
		if s.lq != nil {
			wf = s.lq.popWavefront(s.wfBuf[:0], math.Inf(1), math.MaxUint64)
		} else {
			wf = s.queue.popWavefront(s.wfBuf[:0], math.Inf(1), math.MaxUint64)
		}
		n := len(wf)
		s.now = wf[0].due
		s.wfStats.Batches++
		s.wfStats.Events += uint64(n)
		s.wfStats.Hist[histBucket(n)]++
		batch := n > 1
		if batch && s.wfBegin != nil {
			s.wfBegin(&s.env, n)
		}
		for k := 0; k < n; k++ {
			if s.stopped {
				// Stop landed mid-batch: hand the unexecuted tail
				// back to the calendar (push preserves explicit
				// seqs) so Pending matches the serial loop exactly.
				for _, e := range wf[k:] {
					s.queue.push(e)
				}
				break
			}
			s.fired++
			wf[k].fn(&s.env, wf[k].arg)
		}
		if batch && s.wfEnd != nil {
			s.wfEnd(&s.env)
		}
		s.wfBuf = wf
	}
}

// histBucket maps a batch size to its log2 histogram bucket.
func histBucket(n int) int {
	b := bits.Len(uint(n)) - 1
	if b >= len(WavefrontStats{}.Hist) {
		b = len(WavefrontStats{}.Hist) - 1
	}
	return b
}
