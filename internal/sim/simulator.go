package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStalled is returned by RunUntil when the calendar empties before
// the requested horizon. It usually means the workload stopped
// injecting messages, which is normal at the end of a run.
var ErrStalled = errors.New("sim: event calendar empty before horizon")

// Simulator owns the virtual clock and the event calendar.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	limit   uint64 // safety valve; 0 means no limit
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// SetEventLimit installs a safety limit on the number of events a Run
// call may execute; 0 disables the limit. It guards against runaway
// feedback loops in experimental workloads.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// At schedules action to run at absolute time t. Scheduling in the
// past panics: it is always a logic error in a discrete-event model.
func (s *Simulator) At(t Time, action Action) {
	if action == nil {
		panic("sim: nil action scheduled")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN")
	}
	s.queue.push(event{due: t, seq: s.nextSeq, action: action})
	s.nextSeq++
}

// After schedules action to run delay time units from now.
func (s *Simulator) After(delay Time, action Action) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	s.At(s.now+delay, action)
}

// Pending reports the number of events waiting on the calendar.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Step executes the earliest pending event, advancing the clock to its
// due time. It reports whether an event was executed.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.due
	s.fired++
	e.action()
	return true
}

// Run executes events until the calendar is empty.
func (s *Simulator) Run() {
	for s.Step() {
		if s.limit > 0 && s.fired >= s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
	}
}

// RunUntil executes events with due time <= horizon. The clock ends at
// horizon if the calendar still holds later events, or at the last
// executed event otherwise, in which case ErrStalled is returned.
func (s *Simulator) RunUntil(horizon Time) error {
	for s.queue.Len() > 0 && s.queue.peek().due <= horizon {
		s.Step()
		if s.limit > 0 && s.fired >= s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v", s.limit, s.now))
		}
	}
	if s.queue.Len() == 0 {
		return ErrStalled
	}
	s.now = horizon
	return nil
}
