package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie at index %d broke scheduling order: got %d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestNestedSchedulingDuringRun(t *testing.T) {
	s := New()
	depth := 0
	var grow func()
	grow = func() {
		if depth < 50 {
			depth++
			s.After(1, grow)
		}
	}
	s.At(0, grow)
	s.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
}

// TestSchedulingInPastPanics pins the past-scheduling guard for both
// the closure (At) and record (AtCall) entry points on both
// calendars: a t < now schedule would execute after later-scheduled
// events, silently corrupting causality, so — like the
// schedule-after-Stop guard — the kernel names the misuse instead.
// The panic text is part of the contract.
func TestSchedulingInPastPanics(t *testing.T) {
	for _, c := range []Calendar{Ladder, Heap} {
		t.Run(c.String(), func(t *testing.T) {
			s := NewWithCalendar(c)
			ran := false
			s.At(10, func() {
				ran = true
				mustPanicWith(t, "sim: scheduling into the past: t=5 is before now=10",
					func() { s.At(5, func() {}) })
				mustPanicWith(t, "sim: scheduling into the past: t=9.5 is before now=10",
					func() { s.AtCall(9.5, func(*Env, any) {}, nil) })
				// The boundary is inclusive: scheduling at exactly now
				// is legal and fires after pending same-instant events.
				s.AtCall(10, func(*Env, any) {}, nil)
			})
			s.Run()
			if !ran {
				t.Fatal("driver event never ran")
			}
			if s.Fired() != 2 {
				t.Fatalf("fired %d events, want 2 (the at-now schedule must fire)", s.Fired())
			}
		})
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil action did not panic")
		}
	}()
	New().At(1, nil)
}

func TestNaNTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NaN time did not panic")
		}
	}()
	New().At(math.NaN(), func() {})
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	s := New()
	fired := []Time{}
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(3); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
}

func TestRunUntilReportsStall(t *testing.T) {
	s := New()
	s.At(1, func() {})
	if err := s.RunUntil(100); err != ErrStalled {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	if New().Step() {
		t.Error("Step on empty calendar returned true")
	}
}

func TestFiredCounts(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", s.Fired())
	}
}

// mustPanicWith runs f and asserts it panics with exactly msg — the
// kernel's misuse panics are part of its contract, so the text is
// pinned, not just the fact of panicking.
func mustPanicWith(t *testing.T, msg string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic, want %q", msg)
			return
		}
		if got, ok := r.(string); !ok || got != msg {
			t.Errorf("panic = %v, want %q", r, msg)
		}
	}()
	f()
}

func TestEmptyPopPanicsDescriptively(t *testing.T) {
	var q eventQueue
	mustPanicWith(t, "sim: pop from empty calendar", func() { q.pop() })
	mustPanicWith(t, "sim: peek at empty calendar", func() { q.peek() })
}

func TestScheduleAfterStopPanics(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() { t.Error("event fired after Stop") })
	s.At(1, s.Stop)
	s.Run()
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the post-stop event retained", s.Pending())
	}
	mustPanicWith(t, "sim: schedule after Stop", func() { s.At(3, func() {}) })
	mustPanicWith(t, "sim: schedule after Stop", func() { s.AtCall(3, runClosure, Action(func() {})) })
}

func TestStopHaltsRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++; s.Stop() })
	s.At(2, func() { fired++ })
	if err := s.RunUntil(10); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 1 {
		t.Fatalf("clock = %v, want 1 (not advanced to horizon after Stop)", s.Now())
	}
}

// TestAtCallRecordsFireInOrder exercises the allocation-free record
// path: prebuilt (Func, arg) pairs fire with the right argument, in
// (due, seq) order, interleaved with closure events.
func TestAtCallRecordsFireInOrder(t *testing.T) {
	s := New()
	var order []int
	record := func(_ *Env, arg any) { order = append(order, arg.(int)) }
	s.AtCall(2, record, 2)
	s.At(1, func() { order = append(order, 1) })
	s.AtCall(2, record, 3) // same instant: scheduling order wins
	s.AfterCall(4, record, 4)
	s.Run()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestNilFuncPanics(t *testing.T) {
	mustPanicWith(t, "sim: nil event function scheduled", func() { New().AtCall(1, nil, nil) })
}

// TestScheduleIsAllocationFree pins the kernel contract the network
// hot path relies on: scheduling a prebuilt record costs zero
// allocations once the calendar's backing storage is warm — for the
// ladder that means the arena and tier slices have reached their
// high-water marks, for the heap its backing array.
func TestScheduleIsAllocationFree(t *testing.T) {
	for _, c := range []Calendar{Ladder, Heap} {
		t.Run(c.String(), func(t *testing.T) {
			s := NewWithCalendar(c)
			noop := func(*Env, any) {}
			// Warm the calendar capacity.
			for i := 0; i < 64; i++ {
				s.AtCall(1, noop, nil)
			}
			s.Run()
			avg := testing.AllocsPerRun(100, func() {
				for i := 0; i < 32; i++ {
					s.AtCall(s.Now()+1, noop, s)
				}
				for s.Step() {
				}
			})
			if avg != 0 {
				t.Errorf("AtCall allocates %v per 32-event batch, want 0", avg)
			}
		})
	}
}

// TestHeapProperty feeds random times through the queue and verifies
// events always pop in nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		for _, v := range times {
			s.At(Time(v), func() {})
		}
		last := Time(-1)
		ok := true
		for s.Pending() > 0 {
			s.Step()
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
