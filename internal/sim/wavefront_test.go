package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// The wavefront contract extends the calendar contract the
// heap-vs-ladder differentials pin: popWavefront must yield exactly
// the events repeated pop calls would, in exactly the same (due, seq)
// order, on either calendar and under any bound. These drivers reuse
// the differential regimes from ladder_test.go with wavefront drains
// on one side.

// drainWavefrontMatches drains `batched` via popWavefront and `serial`
// via single pops, asserting the flattened batch stream is identical
// to the pop stream and every batch holds exactly one instant.
func drainWavefrontMatches(t *testing.T, batched, serial calendar) {
	t.Helper()
	var buf []event
	for serial.Len() > 0 {
		wf := batched.popWavefront(buf[:0], math.Inf(1), math.MaxUint64)
		if len(wf) == 0 {
			t.Fatalf("unbounded popWavefront returned empty with %d events pending", batched.Len())
		}
		for i, e := range wf {
			if e.due != wf[0].due {
				t.Fatalf("batch spans instants: event %d due %v, batch due %v", i, e.due, wf[0].due)
			}
			se := serial.pop()
			if se.due != e.due || se.seq != e.seq {
				t.Fatalf("stream mismatch: wavefront (due=%v seq=%d), pop (due=%v seq=%d)",
					e.due, e.seq, se.due, se.seq)
			}
		}
		buf = wf
	}
	if batched.Len() != 0 {
		t.Fatalf("batched calendar retains %d events after serial drained", batched.Len())
	}
}

// TestWavefrontMatchesPopRegimes runs the ladder-vs-heap regime
// schedules with a wavefront drain on one calendar and a plain pop
// drain on the other — for both (ladder, heap) pairings, so each
// calendar's popWavefront is checked against the other's pop.
func TestWavefrontMatchesPopRegimes(t *testing.T) {
	regimes := []struct {
		name  string
		seed  uint64
		delta func(x *xorshift64) Time
		burst int
	}{
		{"uniform", 1, func(x *xorshift64) Time { return x.float01() * 100 }, 0},
		{"heavy-ties", 2, func(x *xorshift64) Time { return Time(x.next() % 8) }, 0},
		{"same-instant-bursts", 3, func(x *xorshift64) Time { return 0.003 * Time(1+x.next()%4) }, 24},
		{"hop-timing", 4, func(x *xorshift64) Time {
			d := []Time{0.003, 0.003, 0.003, 0.192, 1.5, 3.0}
			return d[x.next()%uint64(len(d))]
		}, 12},
		{"zero-delta", 7, func(x *xorshift64) Time { return Time(x.next()%3) * 0.5 }, 4},
	}
	pairs := []struct {
		name            string
		batched, serial func() calendar
	}{
		{"ladder-wavefront-vs-heap-pop", func() calendar { return newLadderQueue() }, func() calendar { return &eventQueue{} }},
		{"heap-wavefront-vs-ladder-pop", func() calendar { return &eventQueue{} }, func() calendar { return newLadderQueue() }},
	}
	for _, pair := range pairs {
		for _, rg := range regimes {
			t.Run(pair.name+"/"+rg.name, func(t *testing.T) {
				rng := xorshift64(rg.seed)
				batched, serial := pair.batched(), pair.serial()
				now := Time(0)
				var seq uint64
				var buf []event
				push := func(due Time) {
					batched.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
					serial.push(event{due: due, seq: seq, fn: func(*Env, any) {}})
					seq++
				}
				for step := 0; step < 30000; step++ {
					switch {
					case rng.next()%10 < 4 && serial.Len() > 0:
						// Interleave batch drains with pushes, as the
						// simulator's drain loop does.
						wf := batched.popWavefront(buf[:0], math.Inf(1), math.MaxUint64)
						for _, e := range wf {
							se := serial.pop()
							if se.due != e.due || se.seq != e.seq {
								t.Fatalf("step %d: wavefront (due=%v seq=%d), pop (due=%v seq=%d)",
									step, e.due, e.seq, se.due, se.seq)
							}
							now = e.due
						}
						buf = wf
					default:
						due := now + rg.delta(&rng)
						push(due)
						if rg.burst > 0 {
							for k := uint64(0); k < rng.next()%uint64(rg.burst+1); k++ {
								push(due)
							}
						}
					}
				}
				drainWavefrontMatches(t, batched, serial)
			})
		}
	}
}

// TestWavefrontBoundQuick checks the exclusive (limDue, limSeq) bound
// — the contract the sharded kernel's conservative segments rely on:
// a bounded wavefront yields exactly the front events strictly below
// the bound, and never splits an instant's order.
func TestWavefrontBoundQuick(t *testing.T) {
	f := func(raw []uint32, limRaw uint32) bool {
		heap := calendar(&eventQueue{})
		ladder := calendar(newLadderQueue())
		for i, v := range raw {
			due := Time(v%97) * math.Exp2(float64(v%11)-5)
			e := event{due: due, seq: uint64(i), fn: func(*Env, any) {}}
			heap.push(e)
			ladder.push(e)
		}
		limDue := Time(limRaw%97) * math.Exp2(float64(limRaw%11)-5)
		limSeq := uint64(limRaw % 7)
		var hbuf, lbuf []event
		for heap.Len() > 0 && ladder.Len() > 0 {
			hwf := heap.popWavefront(hbuf[:0], limDue, limSeq)
			lwf := ladder.popWavefront(lbuf[:0], limDue, limSeq)
			if len(hwf) != len(lwf) {
				return false
			}
			if len(hwf) == 0 {
				break
			}
			for i := range hwf {
				if hwf[i].due != lwf[i].due || hwf[i].seq != lwf[i].seq {
					return false
				}
				// Exclusive bound: nothing at or past (limDue, limSeq)
				// may emerge.
				if hwf[i].due > limDue || (hwf[i].due == limDue && hwf[i].seq >= limSeq) {
					return false
				}
			}
			hbuf, lbuf = hwf, lwf
		}
		// Both calendars must retain exactly the events at or past the
		// bound, in identical order.
		for heap.Len() > 0 {
			he, le := heap.pop(), ladder.pop()
			if he.due != le.due || he.seq != le.seq {
				return false
			}
			if he.due < limDue || (he.due == limDue && he.seq < limSeq) {
				return false
			}
		}
		return ladder.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
