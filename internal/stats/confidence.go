package stats

import "math"

// tTable97p5 holds two-sided 95% (one-sided 97.5%) Student-t critical
// values indexed by degrees of freedom 1..30. Beyond 30 the standard
// table buckets at df 40, 60 and 120 apply, then the normal
// approximation 1.96.
var tTable97p5 = [...]float64{
	0, // unused: 0 degrees of freedom
	12.706, 4.303, 3.182, 2.776, 2.571,
	2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131,
	2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060,
	2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom. The seed dropped straight from the
// df=30 entry to the normal 1.960, understating the half-width of
// every CI in the 31..120 range — including the paper's own 40
// replications (df=39, ~4% narrower than warranted). Between table
// rows the value of the next-LOWER tabled df applies (standard
// conservative bucketing: never understate the interval); beyond 120
// the normal approximation is close enough.
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df < len(tTable97p5):
		return tTable97p5[df]
	case df < 40:
		return 2.042 // df 31..39: t(30)
	case df < 60:
		return 2.021 // df 40..59: t(40)
	case df < 120:
		return 2.000 // df 60..119: t(60)
	case df == 120:
		return 1.980
	default:
		return 1.960
	}
}

// Interval is a symmetric confidence interval around Mean.
type Interval struct {
	Mean     float64
	HalfWide float64 // half-width of the interval
	N        int     // observations behind the estimate
}

// Lo returns the lower bound of the interval.
func (ci Interval) Lo() float64 { return ci.Mean - ci.HalfWide }

// Hi returns the upper bound of the interval.
func (ci Interval) Hi() float64 { return ci.Mean + ci.HalfWide }

// RelativeWidth returns HalfWide/|Mean|, the usual stopping criterion
// for sequential simulation; it returns +Inf for a zero mean.
func (ci Interval) RelativeWidth() float64 {
	if ci.Mean == 0 {
		return math.Inf(1)
	}
	return ci.HalfWide / math.Abs(ci.Mean)
}

// Confidence95 returns the 95% confidence interval for the mean of the
// observations in a.
func (a *Accumulator) Confidence95() Interval {
	if a.n < 2 {
		return Interval{Mean: a.mean, HalfWide: math.Inf(1), N: a.n}
	}
	se := a.StdDev() / math.Sqrt(float64(a.n))
	return Interval{
		Mean:     a.mean,
		HalfWide: TCritical95(a.n-1) * se,
		N:        a.n,
	}
}

// BatchMeans implements the paper's steady-state estimator (§3.3): the
// observation stream is cut into batches batches; the first warmup
// batches are discarded as cold-start transient; the surviving batch
// means feed a Student-t interval.
type BatchMeans struct {
	batchSize int
	batches   int
	warmup    int

	current Accumulator
	means   []float64
}

// NewBatchMeans returns a collector that forms `batches` batches of
// batchSize observations each, discarding the first warmup batches.
// It panics on non-positive sizes or warmup >= batches.
func NewBatchMeans(batchSize, batches, warmup int) *BatchMeans {
	if batchSize <= 0 || batches <= 0 {
		panic("stats: non-positive batch configuration")
	}
	if warmup < 0 || warmup >= batches {
		panic("stats: warmup must be in [0, batches)")
	}
	return &BatchMeans{batchSize: batchSize, batches: batches, warmup: warmup}
}

// Add records one observation. Observations beyond the configured
// number of batches are ignored.
func (b *BatchMeans) Add(x float64) {
	if b.Done() {
		return
	}
	b.current.Add(x)
	if b.current.N() == b.batchSize {
		b.means = append(b.means, b.current.Mean())
		b.current.Reset()
	}
}

// Done reports whether all configured batches are complete.
func (b *BatchMeans) Done() bool { return len(b.means) >= b.batches }

// Completed returns the number of completed batches.
func (b *BatchMeans) Completed() int { return len(b.means) }

// Estimate returns the 95% confidence interval over the post-warmup
// batch means collected so far.
func (b *BatchMeans) Estimate() Interval {
	var a Accumulator
	for i := b.warmup; i < len(b.means); i++ {
		a.Add(b.means[i])
	}
	return a.Confidence95()
}

// Means returns a copy of the completed batch means, including warmup
// batches (useful for diagnostics).
func (b *BatchMeans) Means() []float64 {
	out := make([]float64, len(b.means))
	copy(out, b.means)
	return out
}
