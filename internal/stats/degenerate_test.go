package stats

// Degenerate-variance regressions for the fault studies: a faulted
// replication can record ZERO delivered destinations — a coverage
// accumulator that only ever sees 0 (or, pristine, only 1) — and the
// CI machinery must stay finite and NaN-free on such constant
// streams, pin the half-width at exactly 0, and keep returning +Inf
// (never NaN or a negative t) for intervals no data can support.

import (
	"math"
	"testing"
)

// TestConstantStreamCI: an all-zero coverage stream (every broadcast
// lost everything) and an all-one stream (pristine) have variance 0,
// CV 0 and a zero-width interval — not NaN.
func TestConstantStreamCI(t *testing.T) {
	for _, v := range []float64{0, 1} {
		var a Accumulator
		for i := 0; i < 8; i++ {
			a.Add(v)
		}
		if got := a.Variance(); got != 0 {
			t.Errorf("constant %g stream: variance %v, want 0", v, got)
		}
		if got := a.StdDev(); got != 0 || math.IsNaN(got) {
			t.Errorf("constant %g stream: stddev %v, want 0", v, got)
		}
		if got := a.CV(); got != 0 || math.IsNaN(got) {
			t.Errorf("constant %g stream: CV %v, want 0", v, got)
		}
		ci := a.Confidence95()
		if ci.Mean != v || ci.HalfWide != 0 || ci.N != 8 {
			t.Errorf("constant %g stream: CI %+v, want {Mean:%g HalfWide:0 N:8}", v, ci, v)
		}
	}
}

// TestVarianceClampedAfterMerge: merging many near-constant
// accumulators must never surface a negative variance (float
// cancellation in the Chan cross-term) — StdDev stays real.
func TestVarianceClampedAfterMerge(t *testing.T) {
	const v = 0.1 // not exactly representable: exercises cancellation
	var total Accumulator
	for i := 0; i < 64; i++ {
		var part Accumulator
		for j := 0; j < 3; j++ {
			part.Add(v)
		}
		total.Merge(&part)
	}
	if got := total.Variance(); got < 0 || math.IsNaN(got) {
		t.Fatalf("merged constant stream: variance %v, want >= 0", got)
	}
	if got := total.StdDev(); math.IsNaN(got) {
		t.Fatalf("merged constant stream: stddev is NaN")
	}
}

// TestNoDataIntervals: zero and one observation cannot bound a mean —
// the interval is infinitely wide, and the underlying t critical
// value for df <= 0 is +Inf rather than a panic or a garbage value.
func TestNoDataIntervals(t *testing.T) {
	for _, df := range []int{0, -1} {
		if got := TCritical95(df); !math.IsInf(got, 1) {
			t.Errorf("TCritical95(%d) = %v, want +Inf", df, got)
		}
	}
	var empty Accumulator
	ci := empty.Confidence95()
	if ci.Mean != 0 || !math.IsInf(ci.HalfWide, 1) || ci.N != 0 {
		t.Errorf("empty accumulator CI %+v, want {0 +Inf 0}", ci)
	}
	var one Accumulator
	one.Add(0) // a single replication that delivered nothing
	ci = one.Confidence95()
	if ci.Mean != 0 || !math.IsInf(ci.HalfWide, 1) || ci.N != 1 {
		t.Errorf("single-observation CI %+v, want {0 +Inf 1}", ci)
	}
	if !math.IsInf(ci.RelativeWidth(), 1) {
		t.Errorf("zero-mean relative width %v, want +Inf", ci.RelativeWidth())
	}
}
