// Package stats provides the statistical machinery the broadcast study
// depends on: running moments (Welford), coefficient of variation,
// Student-t confidence intervals, and the batch-means procedure the
// paper uses for steady-state latency estimation (21 batches with the
// first discarded as warm-up).
package stats

import "math"

// Accumulator collects a stream of observations and exposes running
// moments without storing the stream. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll records every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the number of observations recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (n-1 denominator).
// The result is clamped at zero: Welford's update keeps m2
// non-negative analytically, but Merge's cross-term can leave it a
// few ulps below zero on near-constant streams — coverage
// accumulators in fault studies sit at exactly 0 or 1 for entire
// replications — and a negative variance would poison StdDev/CV with
// NaN.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 || a.m2 <= 0 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CV returns the coefficient of variation SD/mean — the paper's
// node-level parallelism metric (§3.2). It returns 0 when the mean is
// zero.
func (a *Accumulator) CV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.StdDev() / a.mean
}

// Merge folds other into a, as if every observation of other had been
// added to a (Chan et al. parallel-variance combination).
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	na, nb := float64(a.n), float64(other.n)
	delta := other.mean - a.mean
	total := na + nb
	a.mean += delta * nb / total
	a.m2 += other.m2 + delta*delta*na*nb/total
	a.n += other.n
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
}

// Reset forgets all recorded observations.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// CVOf computes the coefficient of variation of xs directly.
func CVOf(xs []float64) float64 {
	var a Accumulator
	a.AddAll(xs)
	return a.CV()
}

// MeanOf computes the mean of xs directly.
func MeanOf(xs []float64) float64 {
	var a Accumulator
	a.AddAll(xs)
	return a.Mean()
}

// Improvement returns the paper's percentage-improvement metric used
// in Tables 1 and 2: how much larger the baseline's coefficient of
// variation is than ours, in percent: 100·(baseline−ours)/ours.
func Improvement(ours, baseline float64) float64 {
	if ours == 0 {
		return 0
	}
	return 100 * (baseline - ours) / ours
}
