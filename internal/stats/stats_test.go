package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Known dataset: population SD = 2, sample variance = 32/7.
	if !almost(a.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CV() != 0 {
		t.Error("empty accumulator not all-zero")
	}
	a.Add(5)
	if a.Variance() != 0 {
		t.Error("single observation has nonzero variance")
	}
	if a.Mean() != 5 {
		t.Errorf("mean = %v", a.Mean())
	}
}

func TestCV(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{10, 10, 10})
	if a.CV() != 0 {
		t.Errorf("constant data CV = %v", a.CV())
	}
	if got := CVOf([]float64{1, 2, 3, 4, 5}); !almost(got, math.Sqrt(2.5)/3, 1e-12) {
		t.Errorf("CVOf = %v", got)
	}
}

// TestMergeMatchesSequential is the parallel-combination property:
// merging two accumulators must equal accumulating the concatenation.
func TestMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := make([]float64, 0, len(vs))
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		a.AddAll(xs)
		b.AddAll(ys)
		all.AddAll(append(append([]float64{}, xs...), ys...))
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		return almost(a.Mean(), all.Mean(), tol) &&
			almost(a.Variance(), all.Variance(), 1e-6*(1+all.Variance())) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(0.2, 0.3); !almost(got, 50, 1e-9) {
		t.Errorf("Improvement(0.2, 0.3) = %v, want 50", got)
	}
	if got := Improvement(0, 0.3); got != 0 {
		t.Errorf("Improvement with zero ours = %v", got)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{30, 2.042},
		// Bucketed standard values beyond the exact table: the seed
		// returned 1.960 for every df > 30, understating the paper's
		// 40-replication intervals (df=39). Between rows the
		// next-lower tabled df applies (conservative).
		{31, 2.042},
		{39, 2.042},
		{40, 2.021},
		{59, 2.021},
		{60, 2.000},
		{119, 2.000},
		{120, 1.980},
		{121, 1.96},
		{1000, 1.96},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("t(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("t(0) not infinite")
	}
	// The critical value must never increase with more evidence.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		v := TCritical95(df)
		if v > prev {
			t.Fatalf("t(%d) = %v > t(%d) = %v: not monotone", df, v, df-1, prev)
		}
		prev = v
	}
}

func TestConfidence95KnownCase(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{1, 2, 3, 4, 5})
	ci := a.Confidence95()
	se := a.StdDev() / math.Sqrt(5)
	want := 2.776 * se
	if !almost(ci.HalfWide, want, 1e-12) {
		t.Errorf("half-width = %v, want %v", ci.HalfWide, want)
	}
	if ci.Lo() >= ci.Mean || ci.Hi() <= ci.Mean {
		t.Error("interval does not bracket the mean")
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// With distinct observations the interval must be finite and
	// shrink as n grows.
	var small, large Accumulator
	for i := 0; i < 5; i++ {
		small.Add(float64(i))
	}
	for i := 0; i < 500; i++ {
		large.Add(float64(i % 10))
	}
	if small.Confidence95().HalfWide <= large.Confidence95().HalfWide {
		t.Error("interval did not shrink with more data")
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10, 5, 1)
	for i := 0; i < 100; i++ {
		b.Add(float64(i % 7))
	}
	if !b.Done() {
		t.Fatal("collector not done after enough observations")
	}
	if b.Completed() != 5 {
		t.Fatalf("completed = %d", b.Completed())
	}
	est := b.Estimate()
	if est.N != 4 {
		t.Fatalf("estimate over %d batches, want 4 (warmup discarded)", est.N)
	}
	means := b.Means()
	var manual Accumulator
	for _, m := range means[1:] {
		manual.Add(m)
	}
	if !almost(est.Mean, manual.Mean(), 1e-12) {
		t.Errorf("estimate mean = %v, want %v", est.Mean, manual.Mean())
	}
}

func TestBatchMeansIgnoresOverflow(t *testing.T) {
	b := NewBatchMeans(2, 2, 0)
	for i := 0; i < 100; i++ {
		b.Add(1)
	}
	if b.Completed() != 2 {
		t.Fatalf("completed = %d, want 2", b.Completed())
	}
}

func TestBatchMeansPanicsOnBadConfig(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBatchMeans(0, 5, 1) },
		func() { NewBatchMeans(5, 0, 0) },
		func() { NewBatchMeans(5, 5, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad batch config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRelativeWidth(t *testing.T) {
	ci := Interval{Mean: 10, HalfWide: 1}
	if !almost(ci.RelativeWidth(), 0.1, 1e-12) {
		t.Errorf("relative width = %v", ci.RelativeWidth())
	}
	if !math.IsInf(Interval{}.RelativeWidth(), 1) {
		t.Error("zero-mean relative width not infinite")
	}
}
