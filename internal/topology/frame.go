package topology

// Frame is an unwrap coordinate frame on a torus: a relabelling of
// the nodes so that a chosen origin sits at coordinate zero and every
// other node's coordinate is its modular offset from the origin along
// each wraparound dimension. In the virtual frame the torus looks
// like an ordinary mesh — virtual coordinate v = (physical − origin)
// mod k — while two virtually adjacent nodes are always physically
// adjacent (the wrap link realises the virtual edge from k−1 back to
// 0's neighbour).
//
// The broadcast planners use one fixed frame per source: they run
// their mesh recursions on Virtual() and map the resulting plans back
// with ToPhysical. Dimensions without wrap links (and every dimension
// of a plain mesh) keep origin 0, so on a mesh the frame is the
// identity and the planners' mesh output is bit-for-bit unchanged.
type Frame struct {
	m      *Mesh
	virt   *Mesh
	origin []int
}

// NewFrame returns the unwrap frame of m anchored at node origin: the
// origin's coordinate becomes 0 along every wraparound dimension;
// non-wrap dimensions are left in place. On a plain mesh the frame is
// the identity.
func NewFrame(m *Mesh, origin NodeID) *Frame {
	f := &Frame{m: m, origin: make([]int, m.NDims())}
	for d := range f.origin {
		if m.WrapDim(d) {
			f.origin[d] = m.CoordAxis(origin, d)
		}
	}
	f.virt = m.Unwrapped()
	return f
}

// Virtual returns the unwrapped mesh the frame plans on: same extents
// as the underlying topology, no wraparound links. For a plain mesh
// it is the mesh itself.
func (f *Frame) Virtual() *Mesh { return f.virt }

// Identity reports whether the frame maps every node to itself
// (plain mesh, or an origin already at coordinate zero on every wrap
// dimension).
func (f *Frame) Identity() bool {
	for _, o := range f.origin {
		if o != 0 {
			return false
		}
	}
	return true
}

// ToVirtual maps a physical node into the frame.
func (f *Frame) ToVirtual(p NodeID) NodeID {
	id := 0
	for d, o := range f.origin {
		k := f.m.Dim(d)
		c := f.m.CoordAxis(p, d) - o
		if c < 0 {
			c += k
		}
		id += c * f.m.strides[d]
	}
	return NodeID(id)
}

// ToPhysical maps a virtual-frame node back onto the torus.
func (f *Frame) ToPhysical(v NodeID) NodeID {
	id := 0
	for d, o := range f.origin {
		k := f.m.Dim(d)
		c := f.virt.CoordAxis(v, d) + o
		if c >= k {
			c -= k
		}
		id += c * f.m.strides[d]
	}
	return NodeID(id)
}
