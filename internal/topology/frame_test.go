package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := make([]int, 1+r.Intn(3))
		for i := range dims {
			dims[i] = 2 + r.Intn(4)
		}
		m := NewTorus(dims...)
		f := NewFrame(m, NodeID(r.Intn(m.Nodes())))
		for id := 0; id < m.Nodes(); id++ {
			v := f.ToVirtual(NodeID(id))
			if int(v) < 0 || int(v) >= m.Nodes() {
				t.Logf("%s: virtual id %d out of range", m.Name(), v)
				return false
			}
			if back := f.ToPhysical(v); back != NodeID(id) {
				t.Logf("%s: %d -> %d -> %d", m.Name(), id, v, back)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameAdjacencyPreserved pins the property the planners rely on:
// two nodes adjacent in the virtual mesh are physically adjacent on
// the torus (the wrap links realise the seam).
func TestFrameAdjacencyPreserved(t *testing.T) {
	m := NewTorus(4, 3, 5)
	f := NewFrame(m, m.ID(2, 1, 4))
	virt := f.Virtual()
	if virt.Wrap() {
		t.Fatal("virtual mesh has wrap links")
	}
	for id := 0; id < virt.Nodes(); id++ {
		for _, nb := range virt.Adjacent(NodeID(id)) {
			p, q := f.ToPhysical(NodeID(id)), f.ToPhysical(nb)
			if m.Channel(p, q) == InvalidChannel {
				t.Fatalf("virtual edge %d-%d maps to non-adjacent %d-%d", id, nb, p, q)
			}
		}
	}
}

func TestFrameAnchor(t *testing.T) {
	m := NewTorus(4, 4)
	anchor := m.ID(3, 2)
	f := NewFrame(m, anchor)
	if f.Identity() {
		t.Error("non-zero anchor reported as identity")
	}
	if got := f.ToVirtual(anchor); got != 0 {
		t.Errorf("anchor maps to virtual %d, want 0", got)
	}
	// The zero anchor and every frame on a plain mesh are identities.
	if !NewFrame(m, 0).Identity() {
		t.Error("zero anchor not identity")
	}
	mesh := NewMesh(4, 4)
	f = NewFrame(mesh, mesh.ID(3, 2))
	if !f.Identity() {
		t.Error("mesh frame not identity")
	}
	if f.Virtual() != mesh {
		t.Error("mesh frame built a fresh virtual mesh")
	}
	// Non-wrap dimensions (extent 2) keep origin 0 even on a torus.
	m = NewTorus(2, 4)
	f = NewFrame(m, m.ID(1, 3))
	if got := f.ToVirtual(m.ID(1, 3)); got != m.ID(1, 0) {
		t.Errorf("2-extent dim shifted: anchor maps to %d, want %d", got, m.ID(1, 0))
	}
}

func TestUnwrappedTwinCachedAndShared(t *testing.T) {
	m := NewTorus(4, 4)
	u1, u2 := m.Unwrapped(), m.Unwrapped()
	if u1 != u2 {
		t.Error("Unwrapped rebuilt the twin")
	}
	if u1.Wrap() || u1.Nodes() != m.Nodes() {
		t.Errorf("twin %s is not the wrap-free copy of %s", u1.Name(), m.Name())
	}
	mesh := NewMesh(3, 3)
	if mesh.Unwrapped() != mesh {
		t.Error("mesh twin is not the mesh itself")
	}
}

func TestMeshOnlyMessage(t *testing.T) {
	m := NewTorus(4, 4)
	err := m.MeshOnly("the frobnicator")
	if err == nil {
		t.Fatal("torus passed MeshOnly")
	}
	want := "topology: the frobnicator requires a mesh without wraparound links, got torus 4x4"
	if err.Error() != want {
		t.Errorf("message %q, want %q", err, want)
	}
	if err := NewMesh(4, 4).MeshOnly("anything"); err != nil {
		t.Errorf("mesh failed MeshOnly: %v", err)
	}
	// A torus without actual wrap links is still rejected: the caller
	// asked for the capability, and NewTorus(2,2) advertises Wrap.
	if err := NewTorus(2, 2).MeshOnly("x"); err == nil {
		t.Error("wrapless torus passed MeshOnly")
	}
}
