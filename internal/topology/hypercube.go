package topology

import (
	"fmt"
	"strings"
)

// GeneralizedHypercube is the GH(k_0, …, k_{n-1}) topology from the
// paper's future-work list: nodes are mixed-radix vectors and two
// nodes are adjacent whenever they differ in exactly one coordinate
// (by any amount), i.e. every "row" along every dimension is a clique.
// The binary hypercube is GH(2, 2, …, 2).
type GeneralizedHypercube struct {
	dims    []int
	strides []int
	n       int
	adj     [][]NodeID
	chanIDs []map[NodeID]ChannelID
	slots   int
}

// NewGeneralizedHypercube builds GH(dims...). It panics if no
// dimensions are given or any extent is < 2.
func NewGeneralizedHypercube(dims ...int) *GeneralizedHypercube {
	if len(dims) == 0 {
		panic("topology: hypercube needs at least one dimension")
	}
	g := &GeneralizedHypercube{
		dims:    append([]int(nil), dims...),
		strides: make([]int, len(dims)),
		n:       1,
	}
	for d, k := range dims {
		if k < 2 {
			panic(fmt.Sprintf("topology: hypercube dimension %d has extent %d", d, k))
		}
		g.strides[d] = g.n
		g.n *= k
	}
	g.build()
	return g
}

// NewHypercube builds the binary n-cube with 2^n nodes.
func NewHypercube(n int) *GeneralizedHypercube {
	dims := make([]int, n)
	for i := range dims {
		dims[i] = 2
	}
	return NewGeneralizedHypercube(dims...)
}

func (g *GeneralizedHypercube) build() {
	g.adj = make([][]NodeID, g.n)
	g.chanIDs = make([]map[NodeID]ChannelID, g.n)
	coord := make([]int, len(g.dims))
	next := 0
	for id := 0; id < g.n; id++ {
		g.CoordInto(NodeID(id), coord)
		g.chanIDs[id] = make(map[NodeID]ChannelID)
		for d, k := range g.dims {
			for v := 0; v < k; v++ {
				if v == coord[d] {
					continue
				}
				to := NodeID(int(id) + (v-coord[d])*g.strides[d])
				g.adj[id] = append(g.adj[id], to)
				g.chanIDs[id][to] = ChannelID(next)
				next++
			}
		}
	}
	g.slots = next
}

// Nodes returns the number of nodes.
func (g *GeneralizedHypercube) Nodes() int { return g.n }

// NDims returns the number of dimensions.
func (g *GeneralizedHypercube) NDims() int { return len(g.dims) }

// Dim returns the extent of dimension d.
func (g *GeneralizedHypercube) Dim(d int) int { return g.dims[d] }

// ChannelSlots returns the size of the channel ID space.
func (g *GeneralizedHypercube) ChannelSlots() int { return g.slots }

// Channel returns the directed channel between adjacent nodes, or
// InvalidChannel when the nodes are not adjacent.
func (g *GeneralizedHypercube) Channel(from, to NodeID) ChannelID {
	if c, ok := g.chanIDs[from][to]; ok {
		return c
	}
	return InvalidChannel
}

// Adjacent returns the neighbors of node id; do not modify the slice.
func (g *GeneralizedHypercube) Adjacent(id NodeID) []NodeID { return g.adj[id] }

// Name returns e.g. "ghc 4x4x4".
func (g *GeneralizedHypercube) Name() string {
	parts := make([]string, len(g.dims))
	for i, k := range g.dims {
		parts[i] = fmt.Sprint(k)
	}
	return "ghc " + strings.Join(parts, "x")
}

// ID returns the node at the given coordinates.
func (g *GeneralizedHypercube) ID(coord ...int) NodeID {
	if len(coord) != len(g.dims) {
		panic(fmt.Sprintf("topology: got %d coords for %d dims", len(coord), len(g.dims)))
	}
	id := 0
	for d, v := range coord {
		if v < 0 || v >= g.dims[d] {
			panic(fmt.Sprintf("topology: coord %d out of range in dim %d", v, d))
		}
		id += v * g.strides[d]
	}
	return NodeID(id)
}

// CoordInto writes the coordinates of node id into buf.
func (g *GeneralizedHypercube) CoordInto(id NodeID, buf []int) {
	v := int(id)
	for d, k := range g.dims {
		buf[d] = v % k
		v /= k
	}
}

// Coord returns the coordinates of node id in a fresh slice.
func (g *GeneralizedHypercube) Coord(id NodeID) []int {
	c := make([]int, len(g.dims))
	g.CoordInto(id, c)
	return c
}

// Distance returns the Hamming distance between the coordinate
// vectors, which is the GH shortest-path length.
func (g *GeneralizedHypercube) Distance(a, b NodeID) int {
	total := 0
	va, vb := int(a), int(b)
	for _, k := range g.dims {
		if va%k != vb%k {
			total++
		}
		va /= k
		vb /= k
	}
	return total
}

var (
	_ Topology = (*Mesh)(nil)
	_ Topology = (*GeneralizedHypercube)(nil)
)
