package topology

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestImplicitAdjacencyMatchesDense pins the implicit mesh's one
// contract: AppendNeighbors/Adjacent return exactly the dense table's
// neighbors in exactly its order, on meshes and tori of 1–3
// dimensions.
func TestImplicitAdjacencyMatchesDense(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			dims := make([]int, 1+r.Intn(3))
			for i := range dims {
				dims[i] = 1 + r.Intn(5)
			}
			vals[0] = reflect.ValueOf(dims)
			vals[1] = reflect.ValueOf(r.Intn(2) == 1)
		},
	}
	check := func(dims []int, wrap bool) bool {
		var dense, impl *Mesh
		if wrap {
			dense, impl = NewTorus(dims...), NewTorusImplicit(dims...)
		} else {
			dense, impl = NewMesh(dims...), NewMeshImplicit(dims...)
		}
		if !impl.Implicit() || dense.Implicit() {
			t.Errorf("dims %v wrap %v: Implicit() flags wrong", dims, wrap)
			return false
		}
		buf := make([]NodeID, 0, 8)
		for id := 0; id < dense.Nodes(); id++ {
			want := dense.Adjacent(NodeID(id))
			got := impl.Adjacent(NodeID(id))
			if len(want) != len(got) {
				t.Errorf("dims %v wrap %v node %d: dense %v, implicit %v", dims, wrap, id, want, got)
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					t.Errorf("dims %v wrap %v node %d: dense %v, implicit %v", dims, wrap, id, want, got)
					return false
				}
			}
			buf = impl.AppendNeighbors(NodeID(id), buf[:0])
			for i := range want {
				if buf[i] != want[i] {
					t.Errorf("dims %v wrap %v node %d: AppendNeighbors %v, dense %v", dims, wrap, id, buf, want)
					return false
				}
			}
			// The dense mesh's own AppendNeighbors must agree with its
			// table — one arithmetic source of truth for both modes.
			buf = dense.AppendNeighbors(NodeID(id), buf[:0])
			for i := range want {
				if buf[i] != want[i] {
					t.Errorf("dims %v wrap %v node %d: dense AppendNeighbors %v, table %v", dims, wrap, id, buf, want)
					return false
				}
			}
		}
		// Channel numbering and distances are arithmetic and must be
		// unaffected by the storage mode.
		for id := 0; id < dense.Nodes(); id++ {
			for _, nb := range dense.Adjacent(NodeID(id)) {
				if dense.Channel(NodeID(id), nb) != impl.Channel(NodeID(id), nb) {
					t.Errorf("dims %v wrap %v: channel %d->%d differs", dims, wrap, id, nb)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestImplicitConstructionAllocs pins the point of the implicit mesh:
// construction cost must not scale with the node count.
func TestImplicitConstructionAllocs(t *testing.T) {
	small := testing.AllocsPerRun(10, func() { NewMeshImplicit(4, 4) })
	big := testing.AllocsPerRun(10, func() { NewMeshImplicit(64, 64, 16) })
	if big != small {
		t.Fatalf("implicit construction allocations scale with size: %v (16 nodes) vs %v (65536 nodes)", small, big)
	}
}

// TestImplicitUnwrappedStaysImplicit pins that the canonical-frame
// unwrap twin of an implicit torus does not materialize adjacency.
func TestImplicitUnwrappedStaysImplicit(t *testing.T) {
	tor := NewTorusImplicit(4, 4)
	if !tor.Unwrapped().Implicit() {
		t.Fatal("unwrapped twin of an implicit torus is dense")
	}
	dense := NewTorus(4, 4)
	if dense.Unwrapped().Implicit() {
		t.Fatal("unwrapped twin of a dense torus is implicit")
	}
	// Frames on the implicit torus plan identically to dense ones.
	f := NewFrame(tor, tor.ID(2, 3))
	fd := NewFrame(dense, dense.ID(2, 3))
	for id := 0; id < tor.Nodes(); id++ {
		if f.ToVirtual(NodeID(id)) != fd.ToVirtual(NodeID(id)) {
			t.Fatalf("frame ToVirtual(%d) differs between implicit and dense", id)
		}
		if f.ToPhysical(NodeID(id)) != fd.ToPhysical(NodeID(id)) {
			t.Fatalf("frame ToPhysical(%d) differs between implicit and dense", id)
		}
	}
}
