// Package topology models the direct interconnection networks of the
// study: the k-ary n-dimensional mesh (the paper's subject), the torus
// (k-ary n-cube) and the generalised hypercube (the paper's §4 future
// work). Nodes are dense integer IDs; channels are directed links with
// dense integer IDs so the network simulator can index per-channel
// state with slices instead of maps.
package topology

import (
	"fmt"
	"strings"
	"sync"
)

// NodeID identifies a node. IDs are dense in [0, Nodes()).
type NodeID int

// ChannelID identifies a directed channel. IDs are dense per topology
// in [0, ChannelSlots()); some slots may be invalid at mesh edges.
type ChannelID int

// InvalidChannel is returned when two nodes are not adjacent.
const InvalidChannel ChannelID = -1

// Topology is what the network simulator needs from an interconnect:
// a node set, a directed-channel numbering, and adjacency.
type Topology interface {
	// Nodes returns the number of nodes.
	Nodes() int
	// ChannelSlots returns an upper bound for channel IDs; every
	// valid ChannelID is less than this.
	ChannelSlots() int
	// Channel returns the directed channel from one node to an
	// adjacent node, or InvalidChannel if they are not adjacent.
	Channel(from, to NodeID) ChannelID
	// Adjacent returns the neighbors of a node. The returned slice
	// must not be modified.
	Adjacent(n NodeID) []NodeID
	// Name returns a short description such as "mesh 8x8x8".
	Name() string
}

// NeighborAppender is the implicit-adjacency capability: a topology
// that can enumerate a node's neighbors into a caller-supplied buffer
// without materializing (or even owning) an adjacency table. Callers
// that would otherwise hold Adjacent's shared slice across reentrant
// calls — or that run on million-node substrates where a dense table
// is the dominant allocation — should prefer this form when the
// topology offers it. The neighbor order is identical to Adjacent's.
type NeighborAppender interface {
	AppendNeighbors(id NodeID, buf []NodeID) []NodeID
}

// AppendNeighborsOf enumerates id's neighbors through t's
// NeighborAppender capability when present, falling back to Adjacent.
// The result is appended to buf and returned.
func AppendNeighborsOf(t Topology, id NodeID, buf []NodeID) []NodeID {
	if na, ok := t.(NeighborAppender); ok {
		return na.AppendNeighbors(id, buf)
	}
	return append(buf, t.Adjacent(id)...)
}

// Mesh is a k-ary n-dimensional mesh or, when Wrap is set, a torus
// (k-ary n-cube). Dimension 0 varies fastest in the ID encoding.
type Mesh struct {
	dims    []int
	strides []int
	n       int
	wrap    bool
	// implicit suppresses the materialized adjacency table: neighbors
	// are computed from coordinates on demand (see AppendNeighbors).
	// The dense table costs one slice header plus one small allocation
	// per node, which is the dominant construction cost at million-node
	// scale; an implicit mesh allocates O(dims) regardless of n.
	implicit bool
	adj      [][]NodeID

	// unwrapped lazily caches the wrap-free twin (same extents, no
	// wraparound links) that unwrap frames plan on; building it costs
	// a full adjacency table, so it is shared by every Frame over this
	// mesh. Guarded by unwrapOnce: topologies are read shared across
	// the experiment pool's workers.
	unwrapOnce sync.Once
	unwrapped  *Mesh
}

// NewMesh returns a mesh with the given per-dimension extents.
// It panics if no dimensions are given or any extent is < 1.
func NewMesh(dims ...int) *Mesh { return newMesh(false, false, dims) }

// NewTorus returns a torus (k-ary n-cube) with the given extents.
// Wraparound links are only created along dimensions of extent >= 3,
// since a 2-extent wraparound would duplicate the existing link.
func NewTorus(dims ...int) *Mesh { return newMesh(true, false, dims) }

// NewMeshImplicit returns a mesh whose adjacency is computed from
// coordinates on demand instead of stored: construction is O(dims)
// regardless of node count, which is what makes million-node
// substrates affordable. It is interchangeable with NewMesh — same
// IDs, channels, routes and neighbor order — except that Adjacent
// allocates a fresh slice per call; hot paths should use
// AppendNeighbors with a reused buffer.
func NewMeshImplicit(dims ...int) *Mesh { return newMesh(false, true, dims) }

// NewTorusImplicit is NewTorus with on-demand adjacency; see
// NewMeshImplicit.
func NewTorusImplicit(dims ...int) *Mesh { return newMesh(true, true, dims) }

func newMesh(wrap, implicit bool, dims []int) *Mesh {
	if len(dims) == 0 {
		panic("topology: mesh needs at least one dimension")
	}
	m := &Mesh{
		dims:     append([]int(nil), dims...),
		strides:  make([]int, len(dims)),
		n:        1,
		wrap:     wrap,
		implicit: implicit,
	}
	for d, k := range dims {
		if k < 1 {
			panic(fmt.Sprintf("topology: dimension %d has extent %d", d, k))
		}
		m.strides[d] = m.n
		m.n *= k
	}
	if !implicit {
		m.buildAdjacency()
	}
	return m
}

func (m *Mesh) buildAdjacency() {
	m.adj = make([][]NodeID, m.n)
	for id := 0; id < m.n; id++ {
		m.adj[id] = m.AppendNeighbors(NodeID(id), nil)
	}
}

// AppendNeighbors appends the neighbors of node id to buf and returns
// the extended slice, computing them from coordinates — no adjacency
// table is consulted or required, and with adequate buf capacity the
// call does not allocate. The order is the dense table's: per
// dimension ascending, +1 direction before -1.
func (m *Mesh) AppendNeighbors(id NodeID, buf []NodeID) []NodeID {
	v := int(id)
	if v < 0 || v >= m.n {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", v, m.n))
	}
	for d, k := range m.dims {
		c := (v / m.strides[d]) % k
		wrapD := m.wrap && k >= 3
		if c+1 < k {
			buf = append(buf, id+NodeID(m.strides[d]))
		} else if wrapD {
			buf = append(buf, id-NodeID(c*m.strides[d]))
		}
		if c-1 >= 0 {
			buf = append(buf, id-NodeID(m.strides[d]))
		} else if wrapD {
			buf = append(buf, id+NodeID((k-1)*m.strides[d]))
		}
	}
	return buf
}

// Implicit reports whether the mesh computes adjacency on demand
// instead of storing it.
func (m *Mesh) Implicit() bool { return m.implicit }

// Nodes returns the number of nodes in the mesh.
func (m *Mesh) Nodes() int { return m.n }

// NDims returns the number of dimensions.
func (m *Mesh) NDims() int { return len(m.dims) }

// Dim returns the extent of dimension d.
func (m *Mesh) Dim(d int) int { return m.dims[d] }

// Dims returns a copy of the per-dimension extents.
func (m *Mesh) Dims() []int { return append([]int(nil), m.dims...) }

// Wrap reports whether the mesh has wraparound (torus) links.
func (m *Mesh) Wrap() bool { return m.wrap }

// WrapDim reports whether dimension d actually carries wraparound
// links: the topology is a torus AND the extent is at least 3 (a
// 2-extent wraparound would duplicate the existing link, so none is
// created — see NewTorus).
func (m *Mesh) WrapDim(d int) bool { return m.wrap && m.dims[d] >= 3 }

// HasWrapLinks reports whether any dimension carries wraparound
// links. A NewTorus(2, 2) has none and behaves exactly like a mesh.
func (m *Mesh) HasWrapLinks() bool {
	for d := range m.dims {
		if m.WrapDim(d) {
			return true
		}
	}
	return false
}

// Unwrapped returns the wrap-free twin of the mesh: same extents, no
// wraparound links. For a plain mesh it is the mesh itself. The twin
// is built once and cached — unwrap frames (topology.Frame) plan on
// it for every source, so per-plan rebuilds would dominate planning
// cost on tori.
func (m *Mesh) Unwrapped() *Mesh {
	if !m.wrap {
		return m
	}
	// The twin inherits implicitness: unwrapping a million-node torus
	// must not materialize the adjacency the torus itself avoided.
	m.unwrapOnce.Do(func() { m.unwrapped = newMesh(false, m.implicit, m.dims) })
	return m.unwrapped
}

// MeshOnly is the shared capability check for entry points whose
// correctness argument genuinely needs a mesh without wraparound
// links (e.g. the mesh turn-model constructors: their deadlock proofs
// break on a wrapped ring). It returns nil on a mesh and a consistent
// error naming the operation otherwise, so every rejection reads the
// same and tests can pin one message.
func (m *Mesh) MeshOnly(op string) error {
	if m.wrap {
		return fmt.Errorf("topology: %s requires a mesh without wraparound links, got %s", op, m.Name())
	}
	return nil
}

// Name returns e.g. "mesh 8x8x8" or "torus 4x4x4".
func (m *Mesh) Name() string {
	parts := make([]string, len(m.dims))
	for i, k := range m.dims {
		parts[i] = fmt.Sprint(k)
	}
	kind := "mesh"
	if m.wrap {
		kind = "torus"
	}
	return kind + " " + strings.Join(parts, "x")
}

// ID returns the node at the given coordinates. It panics if the
// coordinate count or any value is out of range.
func (m *Mesh) ID(coord ...int) NodeID {
	if len(coord) != len(m.dims) {
		panic(fmt.Sprintf("topology: got %d coords for %d dims", len(coord), len(m.dims)))
	}
	id := 0
	for d, v := range coord {
		if v < 0 || v >= m.dims[d] {
			panic(fmt.Sprintf("topology: coord %d out of range [0,%d) in dim %d", v, m.dims[d], d))
		}
		id += v * m.strides[d]
	}
	return NodeID(id)
}

// Coord returns the coordinates of node id in a fresh slice.
func (m *Mesh) Coord(id NodeID) []int {
	c := make([]int, len(m.dims))
	m.CoordInto(id, c)
	return c
}

// CoordInto writes the coordinates of node id into buf, which must
// have length NDims.
func (m *Mesh) CoordInto(id NodeID, buf []int) {
	v := int(id)
	if v < 0 || v >= m.n {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", v, m.n))
	}
	for d, k := range m.dims {
		buf[d] = v % k
		v /= k
	}
}

// CoordAxis returns coordinate d of node id without allocating.
func (m *Mesh) CoordAxis(id NodeID, d int) int {
	return (int(id) / m.strides[d]) % m.dims[d]
}

// Adjacent returns the neighbors of node id. The slice is shared; do
// not modify it. On an implicit mesh each call computes a fresh slice
// (safe for nested iteration, but allocating); hot paths there should
// use AppendNeighbors with a reused buffer.
func (m *Mesh) Adjacent(id NodeID) []NodeID {
	if m.implicit {
		return m.AppendNeighbors(id, nil)
	}
	return m.adj[id]
}

// Step returns the node one hop from id along dimension d in
// direction delta (±1), wrapping on a torus with at least three
// nodes in that dimension. Unlike Coord/ID round-trips it does not
// allocate, which matters to routing functions on the simulation's
// innermost loop. It panics if the move leaves the mesh.
func (m *Mesh) Step(id NodeID, d, delta int) NodeID {
	c := (int(id) / m.strides[d]) % m.dims[d]
	nc := c + delta
	if m.wrap && m.dims[d] >= 3 {
		nc = (nc + m.dims[d]) % m.dims[d]
	}
	if nc < 0 || nc >= m.dims[d] {
		panic(fmt.Sprintf("topology: step %+d leaves dim %d of %s from node %d", delta, d, m.Name(), id))
	}
	return id + NodeID((nc-c)*m.strides[d])
}

// ChannelSlots returns the size of the channel ID space:
// nodes × dims × 2 directions. Edge slots without a physical link are
// never returned by Channel.
func (m *Mesh) ChannelSlots() int { return m.n * len(m.dims) * 2 }

// Channel returns the directed channel from one node to an adjacent
// node, or InvalidChannel if they are not adjacent. The encoding is
// (from·NDims + dim)·2 + dir with dir 0 for the positive direction.
func (m *Mesh) Channel(from, to NodeID) ChannelID {
	if from == to {
		return InvalidChannel
	}
	for d := range m.dims {
		cf := m.CoordAxis(from, d)
		ct := m.CoordAxis(to, d)
		if cf == ct {
			continue
		}
		// All other axes must match.
		if !m.sameExcept(from, to, d) {
			return InvalidChannel
		}
		k := m.dims[d]
		switch {
		case ct == cf+1:
			return m.channelID(from, d, 0)
		case ct == cf-1:
			return m.channelID(from, d, 1)
		case m.wrap && k >= 3 && cf == k-1 && ct == 0:
			return m.channelID(from, d, 0)
		case m.wrap && k >= 3 && cf == 0 && ct == k-1:
			return m.channelID(from, d, 1)
		default:
			return InvalidChannel
		}
	}
	return InvalidChannel
}

func (m *Mesh) channelID(from NodeID, dim, dir int) ChannelID {
	return ChannelID((int(from)*len(m.dims)+dim)*2 + dir)
}

// DirChannel returns the directed channel leaving from along
// dimension d in direction dir (0 positive, 1 negative) — the same ID
// Channel(from, Step(from, d, ±1)) yields, including the torus wrap
// hops, without re-deriving dimension and direction from the endpoint
// pair. Routing fast paths use it to emit each candidate's channel
// during the coordinate walk they already perform.
func (m *Mesh) DirChannel(from NodeID, d, dir int) ChannelID {
	return m.channelID(from, d, dir)
}

// sameExcept reports whether a and b agree on every axis except d.
func (m *Mesh) sameExcept(a, b NodeID, d int) bool {
	for i := range m.dims {
		if i == d {
			continue
		}
		if m.CoordAxis(a, i) != m.CoordAxis(b, i) {
			return false
		}
	}
	return true
}

// Distance returns the minimal hop count between two nodes, honoring
// wraparound when present.
func (m *Mesh) Distance(a, b NodeID) int {
	total := 0
	for d, k := range m.dims {
		diff := m.CoordAxis(a, d) - m.CoordAxis(b, d)
		if diff < 0 {
			diff = -diff
		}
		if m.wrap && k >= 3 && k-diff < diff {
			diff = k - diff
		}
		total += diff
	}
	return total
}

// Diameter returns the maximum shortest-path distance in the mesh.
func (m *Mesh) Diameter() int {
	total := 0
	for _, k := range m.dims {
		d := k - 1
		if m.wrap && k >= 3 {
			d = k / 2
		}
		total += d
	}
	return total
}
