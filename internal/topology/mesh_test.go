package topology

import (
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m := NewMesh(4, 3, 2)
	if m.Nodes() != 24 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	if m.NDims() != 3 || m.Dim(0) != 4 || m.Dim(1) != 3 || m.Dim(2) != 2 {
		t.Fatal("dims wrong")
	}
	if m.Name() != "mesh 4x3x2" {
		t.Fatalf("name = %q", m.Name())
	}
	if m.Wrap() {
		t.Fatal("mesh reports wraparound")
	}
}

func TestCoordRoundTrip(t *testing.T) {
	m := NewMesh(5, 7, 3)
	for id := 0; id < m.Nodes(); id++ {
		c := m.Coord(NodeID(id))
		if got := m.ID(c...); got != NodeID(id) {
			t.Fatalf("round trip %d -> %v -> %d", id, c, got)
		}
		for d := 0; d < 3; d++ {
			if m.CoordAxis(NodeID(id), d) != c[d] {
				t.Fatalf("CoordAxis(%d, %d) = %d, want %d", id, d, m.CoordAxis(NodeID(id), d), c[d])
			}
		}
	}
}

func TestDimZeroVariesFastest(t *testing.T) {
	m := NewMesh(4, 4, 4)
	if m.ID(1, 0, 0) != 1 {
		t.Errorf("ID(1,0,0) = %d", m.ID(1, 0, 0))
	}
	if m.ID(0, 1, 0) != 4 {
		t.Errorf("ID(0,1,0) = %d", m.ID(0, 1, 0))
	}
	if m.ID(0, 0, 1) != 16 {
		t.Errorf("ID(0,0,1) = %d", m.ID(0, 0, 1))
	}
}

func TestAdjacencyMesh(t *testing.T) {
	m := NewMesh(3, 3)
	center := m.ID(1, 1)
	if got := len(m.Adjacent(center)); got != 4 {
		t.Errorf("center degree = %d, want 4", got)
	}
	corner := m.ID(0, 0)
	if got := len(m.Adjacent(corner)); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	// Adjacency is symmetric.
	for id := 0; id < m.Nodes(); id++ {
		for _, nb := range m.Adjacent(NodeID(id)) {
			found := false
			for _, back := range m.Adjacent(nb) {
				if back == NodeID(id) {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", id, nb)
			}
		}
	}
}

func TestChannelBetweenNeighbors(t *testing.T) {
	m := NewMesh(4, 4, 4)
	seen := map[ChannelID]bool{}
	for id := 0; id < m.Nodes(); id++ {
		for _, nb := range m.Adjacent(NodeID(id)) {
			ch := m.Channel(NodeID(id), nb)
			if ch == InvalidChannel {
				t.Fatalf("no channel between neighbors %d and %d", id, nb)
			}
			if int(ch) >= m.ChannelSlots() {
				t.Fatalf("channel %d beyond slots %d", ch, m.ChannelSlots())
			}
			if seen[ch] {
				t.Fatalf("channel %d assigned twice", ch)
			}
			seen[ch] = true
			// Opposite direction must be a different channel.
			if back := m.Channel(nb, NodeID(id)); back == ch || back == InvalidChannel {
				t.Fatalf("reverse channel of %d->%d broken", id, nb)
			}
		}
	}
}

func TestChannelInvalidForNonNeighbors(t *testing.T) {
	m := NewMesh(4, 4)
	if m.Channel(m.ID(0, 0), m.ID(2, 0)) != InvalidChannel {
		t.Error("channel exists for distance-2 pair")
	}
	if m.Channel(m.ID(0, 0), m.ID(1, 1)) != InvalidChannel {
		t.Error("channel exists for diagonal pair")
	}
	if m.Channel(m.ID(0, 0), m.ID(0, 0)) != InvalidChannel {
		t.Error("channel exists for self")
	}
}

func TestDistanceAndDiameter(t *testing.T) {
	m := NewMesh(4, 4, 4)
	if d := m.Distance(m.ID(0, 0, 0), m.ID(3, 3, 3)); d != 9 {
		t.Errorf("distance = %d, want 9", d)
	}
	if m.Diameter() != 9 {
		t.Errorf("diameter = %d, want 9", m.Diameter())
	}
}

func TestTorusWraparound(t *testing.T) {
	tor := NewTorus(4, 4)
	a, b := tor.ID(0, 0), tor.ID(3, 0)
	if ch := tor.Channel(a, b); ch == InvalidChannel {
		t.Error("no wraparound channel on torus")
	}
	if d := tor.Distance(a, b); d != 1 {
		t.Errorf("torus wrap distance = %d, want 1", d)
	}
	if tor.Diameter() != 4 {
		t.Errorf("torus diameter = %d, want 4", tor.Diameter())
	}
	if got := len(tor.Adjacent(a)); got != 4 {
		t.Errorf("torus corner degree = %d, want 4", got)
	}
}

func TestTorusExtentTwoHasNoDuplicateLinks(t *testing.T) {
	tor := NewTorus(2, 4)
	if got := len(tor.Adjacent(tor.ID(0, 0))); got != 3 {
		t.Errorf("degree = %d, want 3 (no duplicated 2-extent wrap)", got)
	}
}

func TestMeshPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewMesh() },
		func() { NewMesh(0, 4) },
		func() { NewMesh(4).ID(5) },
		func() { NewMesh(4).ID(1, 1) },
		func() { NewMesh(4, 4).Coord(NodeID(99)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestDistanceIsAMetric property-checks symmetry and triangle
// inequality on a fixed mesh.
func TestDistanceIsAMetric(t *testing.T) {
	m := NewMesh(5, 4, 3)
	n := m.Nodes()
	f := func(a, b, c uint16) bool {
		x, y, z := NodeID(int(a)%n), NodeID(int(b)%n), NodeID(int(c)%n)
		if m.Distance(x, y) != m.Distance(y, x) {
			return false
		}
		if (m.Distance(x, y) == 0) != (x == y) {
			return false
		}
		return m.Distance(x, z) <= m.Distance(x, y)+m.Distance(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralizedHypercube(t *testing.T) {
	g := NewGeneralizedHypercube(3, 3)
	if g.Nodes() != 9 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	// Every node is adjacent to the 2 others in its row and the 2 in
	// its column.
	for id := 0; id < g.Nodes(); id++ {
		if got := len(g.Adjacent(NodeID(id))); got != 4 {
			t.Fatalf("degree of %d = %d, want 4", id, got)
		}
	}
	// Distance is the Hamming distance of coordinates.
	if d := g.Distance(g.ID(0, 0), g.ID(2, 2)); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
	if d := g.Distance(g.ID(0, 0), g.ID(2, 0)); d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
}

func TestBinaryHypercube(t *testing.T) {
	h := NewHypercube(4)
	if h.Nodes() != 16 {
		t.Fatalf("nodes = %d", h.Nodes())
	}
	for id := 0; id < h.Nodes(); id++ {
		if got := len(h.Adjacent(NodeID(id))); got != 4 {
			t.Fatalf("degree = %d, want 4", got)
		}
	}
}

func TestHypercubeChannels(t *testing.T) {
	g := NewGeneralizedHypercube(3, 2)
	seen := map[ChannelID]bool{}
	count := 0
	for id := 0; id < g.Nodes(); id++ {
		for _, nb := range g.Adjacent(NodeID(id)) {
			ch := g.Channel(NodeID(id), nb)
			if ch == InvalidChannel || seen[ch] {
				t.Fatalf("bad channel %d -> %d", id, nb)
			}
			seen[ch] = true
			count++
		}
	}
	if count != g.ChannelSlots() {
		t.Fatalf("used %d channels, slots %d", count, g.ChannelSlots())
	}
	if g.Channel(0, 0) != InvalidChannel {
		t.Error("self channel exists")
	}
}
