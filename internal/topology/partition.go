package topology

import "fmt"

// The broadcast algorithms of the paper carve the mesh into rows,
// columns, planes and corner nodes. These helpers provide that
// vocabulary.

// Line returns the nodes obtained by fixing every coordinate of base
// except dimension d, which sweeps its full extent in increasing
// order. It is a "row" or "column" generalised to n dimensions.
func (m *Mesh) Line(base NodeID, d int) []NodeID {
	coord := m.Coord(base)
	out := make([]NodeID, m.dims[d])
	for v := 0; v < m.dims[d]; v++ {
		coord[d] = v
		out[v] = m.ID(coord...)
	}
	return out
}

// Plane returns all nodes whose coordinate along dimension d equals v,
// in increasing node-ID order. For a 3D mesh, Plane(2, z) is the z-th
// XY plane the AB algorithm treats as a 2D sub-mesh.
func (m *Mesh) Plane(d, v int) []NodeID {
	if v < 0 || v >= m.dims[d] {
		panic(fmt.Sprintf("topology: plane index %d out of range in dim %d", v, d))
	}
	out := make([]NodeID, 0, m.n/m.dims[d])
	for id := 0; id < m.n; id++ {
		if m.CoordAxis(NodeID(id), d) == v {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// CornerMask selects a corner: bit d set means coordinate d takes its
// maximum value, clear means zero.
type CornerMask uint

// Corner returns the corner node selected by mask.
func (m *Mesh) Corner(mask CornerMask) NodeID {
	coord := make([]int, len(m.dims))
	for d := range m.dims {
		if mask&(1<<uint(d)) != 0 {
			coord[d] = m.dims[d] - 1
		}
	}
	return m.ID(coord...)
}

// Corners returns all 2^NDims corner nodes, indexed by CornerMask.
func (m *Mesh) Corners() []NodeID {
	out := make([]NodeID, 1<<uint(len(m.dims)))
	for mask := range out {
		out[mask] = m.Corner(CornerMask(mask))
	}
	return out
}

// NearestCornerInPlane returns the corner of the (d0,d1) plane through
// node id closest to id (Manhattan distance within the plane), and the
// opposite corner of that plane. The AB algorithm's first step routes
// to exactly these two nodes.
func (m *Mesh) NearestCornerInPlane(id NodeID, d0, d1 int) (nearest, opposite NodeID) {
	coord := m.Coord(id)
	c0, c1 := coord[d0], coord[d1]
	lo0 := c0 < m.dims[d0]-c0 // closer to 0 along d0?
	lo1 := c1 < m.dims[d1]-c1

	near := append([]int(nil), coord...)
	opp := append([]int(nil), coord...)
	if lo0 {
		near[d0], opp[d0] = 0, m.dims[d0]-1
	} else {
		near[d0], opp[d0] = m.dims[d0]-1, 0
	}
	if lo1 {
		near[d1], opp[d1] = 0, m.dims[d1]-1
	} else {
		near[d1], opp[d1] = m.dims[d1]-1, 0
	}
	return m.ID(near...), m.ID(opp...)
}

// HalfSpace partitions the nodes of ids by coordinate d: nodes with
// coordinate < split go to lo, the rest to hi.
func (m *Mesh) HalfSpace(ids []NodeID, d, split int) (lo, hi []NodeID) {
	for _, id := range ids {
		if m.CoordAxis(id, d) < split {
			lo = append(lo, id)
		} else {
			hi = append(hi, id)
		}
	}
	return lo, hi
}
