package topology

import "fmt"

// The broadcast algorithms of the paper carve the mesh into rows,
// columns, planes and corner nodes. These helpers provide that
// vocabulary.

// Line returns the nodes obtained by fixing every coordinate of base
// except dimension d, which sweeps its full extent in increasing
// order. It is a "row" or "column" generalised to n dimensions.
func (m *Mesh) Line(base NodeID, d int) []NodeID {
	coord := m.Coord(base)
	out := make([]NodeID, m.dims[d])
	for v := 0; v < m.dims[d]; v++ {
		coord[d] = v
		out[v] = m.ID(coord...)
	}
	return out
}

// Plane returns all nodes whose coordinate along dimension d equals v,
// in increasing node-ID order. For a 3D mesh, Plane(2, z) is the z-th
// XY plane the AB algorithm treats as a 2D sub-mesh.
func (m *Mesh) Plane(d, v int) []NodeID {
	if v < 0 || v >= m.dims[d] {
		panic(fmt.Sprintf("topology: plane index %d out of range in dim %d", v, d))
	}
	out := make([]NodeID, 0, m.n/m.dims[d])
	for id := 0; id < m.n; id++ {
		if m.CoordAxis(NodeID(id), d) == v {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// CornerMask selects a corner: bit d set means coordinate d takes its
// maximum value, clear means zero.
type CornerMask uint

// Corner returns the corner node selected by mask.
func (m *Mesh) Corner(mask CornerMask) NodeID {
	coord := make([]int, len(m.dims))
	for d := range m.dims {
		if mask&(1<<uint(d)) != 0 {
			coord[d] = m.dims[d] - 1
		}
	}
	return m.ID(coord...)
}

// Corners returns all 2^NDims corner nodes, indexed by CornerMask.
func (m *Mesh) Corners() []NodeID {
	out := make([]NodeID, 1<<uint(len(m.dims)))
	for mask := range out {
		out[mask] = m.Corner(CornerMask(mask))
	}
	return out
}

// NearestCornerInPlane returns the corner of the (d0,d1) plane through
// node id closest to id (Manhattan distance within the plane), and the
// opposite corner of that plane. The AB algorithm's first step routes
// to exactly these two nodes.
func (m *Mesh) NearestCornerInPlane(id NodeID, d0, d1 int) (nearest, opposite NodeID) {
	coord := m.Coord(id)
	c0, c1 := coord[d0], coord[d1]
	lo0 := c0 < m.dims[d0]-c0 // closer to 0 along d0?
	lo1 := c1 < m.dims[d1]-c1

	near := append([]int(nil), coord...)
	opp := append([]int(nil), coord...)
	if lo0 {
		near[d0], opp[d0] = 0, m.dims[d0]-1
	} else {
		near[d0], opp[d0] = m.dims[d0]-1, 0
	}
	if lo1 {
		near[d1], opp[d1] = 0, m.dims[d1]-1
	} else {
		near[d1], opp[d1] = m.dims[d1]-1, 0
	}
	return m.ID(near...), m.ID(opp...)
}

// Partition divides a mesh's nodes into k contiguous shards for the
// conservative-parallel simulation kernel. The split is a slab
// decomposition along the axis with the largest extent that can hold
// k slabs: contiguous coordinate ranges minimize the channels crossing
// shard boundaries (the cut), which is what bounds cross-shard event
// traffic. A mesh whose every extent is smaller than k falls back to
// contiguous node-ID blocks — still contiguous in memory, still
// balanced within one node.
//
// Owner is pure arithmetic (no per-node table), so a partition of an
// implicit million-node mesh costs nothing to build or hold.
type Partition struct {
	m    *Mesh
	k    int
	axis int // slab axis; -1 = flat node-ID blocks
}

// NewPartition builds a k-way partition of m. k is clamped to
// [1, Nodes()].
func NewPartition(m *Mesh, k int) *Partition {
	if k < 1 {
		k = 1
	}
	if k > m.Nodes() {
		k = m.Nodes()
	}
	axis := -1
	best := 0
	for d := 0; d < m.NDims(); d++ {
		if ext := m.Dim(d); ext >= k && ext > best {
			axis, best = d, ext
		}
	}
	return &Partition{m: m, k: k, axis: axis}
}

// Shards returns the shard count.
func (p *Partition) Shards() int { return p.k }

// Axis returns the slab axis, or -1 when the partition fell back to
// flat node-ID blocks.
func (p *Partition) Axis() int { return p.axis }

// Owner returns the shard owning node id, in [0, Shards()).
func (p *Partition) Owner(id NodeID) int {
	if p.axis >= 0 {
		return p.m.CoordAxis(id, p.axis) * p.k / p.m.Dim(p.axis)
	}
	return int(id) * p.k / p.m.Nodes()
}

// Sizes returns the node count of each shard.
func (p *Partition) Sizes() []int {
	out := make([]int, p.k)
	for id := 0; id < p.m.Nodes(); id++ {
		out[p.Owner(NodeID(id))]++
	}
	return out
}

// CutChannels counts the directed channels whose endpoints live in
// different shards — the partition-quality metric: every such channel
// is a potential cross-shard event hand-off.
func (p *Partition) CutChannels() int {
	cut := 0
	var buf []NodeID
	for id := 0; id < p.m.Nodes(); id++ {
		from := NodeID(id)
		o := p.Owner(from)
		buf = p.m.AppendNeighbors(from, buf[:0])
		for _, nb := range buf {
			if p.Owner(nb) != o {
				cut++
			}
		}
	}
	return cut
}

// HalfSpace partitions the nodes of ids by coordinate d: nodes with
// coordinate < split go to lo, the rest to hi.
func (m *Mesh) HalfSpace(ids []NodeID, d, split int) (lo, hi []NodeID) {
	for _, id := range ids {
		if m.CoordAxis(id, d) < split {
			lo = append(lo, id)
		} else {
			hi = append(hi, id)
		}
	}
	return lo, hi
}
