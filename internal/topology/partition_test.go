package topology

import (
	"reflect"
	"testing"
)

// The partition helpers are pure coordinate arithmetic: they must not
// care whether the substrate is a mesh or a torus, materialized or
// implicit. Each test therefore runs on all four flavours of one
// shape.

func partitionSubstrates(dims ...int) map[string]*Mesh {
	return map[string]*Mesh{
		"mesh":           NewMesh(dims...),
		"mesh-implicit":  NewMeshImplicit(dims...),
		"torus":          NewTorus(dims...),
		"torus-implicit": NewTorusImplicit(dims...),
	}
}

func TestLine(t *testing.T) {
	for name, m := range partitionSubstrates(4, 3, 2) {
		// A line through (1,2,1) along dim 0 sweeps x = 0..3 with
		// y=2, z=1 fixed.
		base := m.ID(1, 2, 1)
		got := m.Line(base, 0)
		want := []NodeID{m.ID(0, 2, 1), m.ID(1, 2, 1), m.ID(2, 2, 1), m.ID(3, 2, 1)}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Line(%d, 0) = %v, want %v", name, base, got, want)
		}
		// Every line along d has length Dim(d) and includes its base.
		for d := 0; d < m.NDims(); d++ {
			line := m.Line(base, d)
			if len(line) != m.Dim(d) {
				t.Errorf("%s: Line dim %d has %d nodes, want %d", name, d, len(line), m.Dim(d))
			}
			found := false
			for _, id := range line {
				if id == base {
					found = true
				}
				if m.CoordAxis(id, (d+1)%m.NDims()) != m.CoordAxis(base, (d+1)%m.NDims()) {
					t.Errorf("%s: Line dim %d node %d strays off the line", name, d, id)
				}
			}
			if !found {
				t.Errorf("%s: Line dim %d misses its base node", name, d)
			}
		}
	}
}

func TestPlane(t *testing.T) {
	for name, m := range partitionSubstrates(3, 4, 2) {
		// Planes along one dimension tile the node set exactly.
		for d := 0; d < m.NDims(); d++ {
			seen := make(map[NodeID]bool, m.Nodes())
			for v := 0; v < m.Dim(d); v++ {
				plane := m.Plane(d, v)
				if len(plane) != m.Nodes()/m.Dim(d) {
					t.Errorf("%s: Plane(%d,%d) has %d nodes, want %d", name, d, v, len(plane), m.Nodes()/m.Dim(d))
				}
				for i, id := range plane {
					if m.CoordAxis(id, d) != v {
						t.Errorf("%s: Plane(%d,%d) contains %d with coord %d", name, d, v, id, m.CoordAxis(id, d))
					}
					if i > 0 && plane[i-1] >= id {
						t.Errorf("%s: Plane(%d,%d) not in increasing ID order at %d", name, d, v, i)
					}
					if seen[id] {
						t.Errorf("%s: node %d in two planes along dim %d", name, id, d)
					}
					seen[id] = true
				}
			}
			if len(seen) != m.Nodes() {
				t.Errorf("%s: planes along dim %d cover %d of %d nodes", name, d, len(seen), m.Nodes())
			}
		}
	}
}

func TestPlaneOutOfRangePanics(t *testing.T) {
	m := NewMesh(3, 3)
	for _, v := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Plane(0, %d) did not panic", v)
				}
			}()
			m.Plane(0, v)
		}()
	}
}

func TestCorners(t *testing.T) {
	for name, m := range partitionSubstrates(4, 3, 2) {
		corners := m.Corners()
		if len(corners) != 1<<uint(m.NDims()) {
			t.Fatalf("%s: %d corners, want %d", name, len(corners), 1<<uint(m.NDims()))
		}
		if corners[0] != m.ID(0, 0, 0) {
			t.Errorf("%s: corner 0 = %d, want origin", name, corners[0])
		}
		all := CornerMask(1<<uint(m.NDims()) - 1)
		if corners[all] != m.ID(3, 2, 1) {
			t.Errorf("%s: corner %b = %d, want far corner", name, all, corners[all])
		}
		// Each corner's coordinates are extremal per its mask bits,
		// and all corners are distinct.
		seen := make(map[NodeID]bool)
		for mask, id := range corners {
			for d := 0; d < m.NDims(); d++ {
				want := 0
				if mask&(1<<uint(d)) != 0 {
					want = m.Dim(d) - 1
				}
				if got := m.CoordAxis(id, d); got != want {
					t.Errorf("%s: corner %b coord %d = %d, want %d", name, mask, d, got, want)
				}
			}
			if seen[id] {
				t.Errorf("%s: corner %b duplicates node %d", name, mask, id)
			}
			seen[id] = true
		}
	}
}

func TestNearestCornerInPlane(t *testing.T) {
	for name, m := range partitionSubstrates(5, 4, 3) {
		// (1,3,2): x=1 is nearer 0 than 4; y=3 is nearer 3 than 0.
		near, opp := m.NearestCornerInPlane(m.ID(1, 3, 2), 0, 1)
		if want := m.ID(0, 3, 2); near != want {
			t.Errorf("%s: nearest = %d (%v), want %d", name, near, m.Coord(near), want)
		}
		if want := m.ID(4, 0, 2); opp != want {
			t.Errorf("%s: opposite = %d (%v), want %d", name, opp, m.Coord(opp), want)
		}
		// Nearest and opposite disagree in both plane coordinates and
		// share every off-plane coordinate, for every node.
		for id := 0; id < m.Nodes(); id++ {
			n, o := m.NearestCornerInPlane(NodeID(id), 0, 1)
			for _, d := range []int{0, 1} {
				cn, co := m.CoordAxis(n, d), m.CoordAxis(o, d)
				if cn != 0 && cn != m.Dim(d)-1 {
					t.Fatalf("%s: node %d nearest coord %d = %d, not extremal", name, id, d, cn)
				}
				if co != m.Dim(d)-1-cn {
					t.Fatalf("%s: node %d corners not opposite in dim %d", name, id, d)
				}
			}
			if m.CoordAxis(n, 2) != m.CoordAxis(NodeID(id), 2) || m.CoordAxis(o, 2) != m.CoordAxis(NodeID(id), 2) {
				t.Fatalf("%s: node %d corners left the plane", name, id)
			}
			if d := m.Unwrapped().Distance(NodeID(id), n); d > (m.Dim(0)-1+m.Dim(1)-1)/2+1 {
				t.Fatalf("%s: node %d nearest corner at mesh distance %d, not nearest", name, id, d)
			}
		}
	}
}

func TestHalfSpace(t *testing.T) {
	for name, m := range partitionSubstrates(4, 3) {
		ids := m.Plane(1, 1) // the y=1 row: 4 nodes
		lo, hi := m.HalfSpace(ids, 0, 2)
		if len(lo) != 2 || len(hi) != 2 {
			t.Fatalf("%s: HalfSpace split %d/%d, want 2/2", name, len(lo), len(hi))
		}
		for _, id := range lo {
			if m.CoordAxis(id, 0) >= 2 {
				t.Errorf("%s: lo contains %d with x=%d", name, id, m.CoordAxis(id, 0))
			}
		}
		for _, id := range hi {
			if m.CoordAxis(id, 0) < 2 {
				t.Errorf("%s: hi contains %d with x=%d", name, id, m.CoordAxis(id, 0))
			}
		}
		// Degenerate splits keep everything on one side.
		lo, hi = m.HalfSpace(ids, 0, 0)
		if len(lo) != 0 || len(hi) != len(ids) {
			t.Errorf("%s: split 0 gave %d/%d", name, len(lo), len(hi))
		}
		lo, hi = m.HalfSpace(ids, 0, m.Dim(0))
		if len(lo) != len(ids) || len(hi) != 0 {
			t.Errorf("%s: split max gave %d/%d", name, len(lo), len(hi))
		}
	}
}

// TestPartitionSubstrateAgreement sweeps every helper across all four
// substrates of one shape and requires identical answers: partitions
// are defined by coordinates alone.
func TestPartitionSubstrateAgreement(t *testing.T) {
	subs := partitionSubstrates(4, 3, 3)
	ref := subs["mesh"]
	for name, m := range subs {
		if name == "mesh" {
			continue
		}
		if got, want := m.Corners(), ref.Corners(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Corners = %v, want %v", name, got, want)
		}
		for id := 0; id < ref.Nodes(); id += 7 {
			for d := 0; d < ref.NDims(); d++ {
				if got, want := m.Line(NodeID(id), d), ref.Line(NodeID(id), d); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: Line(%d,%d) = %v, want %v", name, id, d, got, want)
				}
				if got, want := m.Plane(d, id%ref.Dim(d)), ref.Plane(d, id%ref.Dim(d)); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: Plane(%d,%d) differs", name, d, id%ref.Dim(d))
				}
			}
			n0, o0 := ref.NearestCornerInPlane(NodeID(id), 0, 1)
			n1, o1 := m.NearestCornerInPlane(NodeID(id), 0, 1)
			if n0 != n1 || o0 != o1 {
				t.Errorf("%s: NearestCornerInPlane(%d) = (%d,%d), want (%d,%d)", name, id, n1, o1, n0, o0)
			}
		}
	}
}
