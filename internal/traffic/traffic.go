// Package traffic generates the workloads of the paper's evaluation:
// single-source broadcasts over an idle network (§3.1–3.2) and the
// mixed open-loop workload of §3.3, in which every node generates
// messages with exponentially distributed inter-arrival times, 90%
// unicast to uniformly random destinations and 10% broadcast.
//
// Latency is estimated with the paper's batch-means procedure, but
// batches are formed over a window of *injected* messages (injection
// order), not the first completions: under heavy load the earliest
// completions are the quick uncongested unicasts, and sampling them
// would hide saturation entirely. Injection continues while the
// measured window drains so the background load stays in place.
package traffic

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/broadcast"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Unicast destination patterns of the mixed workload. Every non-
// uniform pattern gates its extra work (and any extra random draw)
// behind its own activation, so a uniform run consumes exactly the
// historical random stream and reproduces byte-identically.
const (
	// PatternUniform draws every unicast destination uniformly from
	// the other nodes — the paper's model and the default ("" means
	// the same).
	PatternUniform = "uniform"
	// PatternTranspose sends every unicast from coordinate
	// (a₀,…,aₖ₋₁) to its reversal (aₖ₋₁,…,a₀) — the classic matrix-
	// transpose permutation (on a 2D mesh: (x,y)→(y,x)). It needs a
	// palindromic shape (dims[i] == dims[k-1-i]); a diagonal node,
	// whose transpose is itself, falls back to one uniform draw.
	PatternTranspose = "transpose"
	// PatternBitReversal sends node i to the node whose index is i's
	// bit reversal in ⌈log₂ n⌉ bits — the FFT communication
	// permutation. Palindromic indices, and reversals landing outside
	// a non-power-of-two node count, fall back to one uniform draw.
	PatternBitReversal = "bit-reversal"
)

// MixedConfig parameterises the unicast+broadcast workload.
type MixedConfig struct {
	// Rate is the per-node message generation rate in messages/µs
	// (the paper's axis is messages/ms; divide by 1000).
	Rate float64
	// BroadcastFraction is the probability a generated message is a
	// broadcast (paper: 0.10).
	BroadcastFraction float64
	// Length is the message length in flits (paper: 32 for §3.3).
	Length int
	// Algorithm plans the broadcasts; may be nil when
	// BroadcastFraction is zero.
	Algorithm broadcast.Algorithm
	// Unicast routes the unicast background; nil means
	// dimension-order. The AB scenario passes the west-first
	// selector here so the whole system benefits from adaptivity,
	// matching the paper's attribution of AB's advantage.
	Unicast routing.Selector
	// Pattern selects the unicast destination distribution: "" or
	// PatternUniform (the default), PatternTranspose, or
	// PatternBitReversal. The deterministic patterns cannot combine
	// with HotspotFraction.
	Pattern string
	// HotspotFraction is the probability a unicast targets the
	// Hotspot node instead of a uniformly random destination — the
	// classic contended-memory-module pattern. Zero (the default)
	// keeps the paper's uniform destinations and draws no extra
	// random numbers, so existing seeds reproduce byte-identically.
	HotspotFraction float64
	// Hotspot is the hotspot destination node; only consulted when
	// HotspotFraction is positive. A hotspot-bound message generated
	// AT the hotspot falls back to a uniform destination.
	Hotspot topology.NodeID
	// Adaptive routes broadcast sends marked adaptive; nil means
	// dimension-order.
	Adaptive routing.Selector
	// Seed drives all randomness (sources, destinations, arrivals).
	Seed uint64
	// BatchSize and Batches configure the batch-means estimator;
	// Warmup batches are discarded (paper: 21 batches, first
	// discarded). The measured window is Batches×BatchSize messages
	// in injection order.
	BatchSize, Batches, Warmup int
	// MaxTime aborts a run whose measured window has not drained by
	// this simulated time; unfinished measured messages are floored
	// at their age, so a saturated point reports a diverging mean.
	// Zero means 5e6 µs.
	MaxTime sim.Time
	// MaxInjected bounds the total number of injected messages; a
	// run whose measured window is still in flight after this many
	// injections is saturated (the backlog grows without bound) and
	// is cut off rather than simulated forever. Zero means 10× the
	// measured window.
	MaxInjected int
}

// DefaultMaxInjected returns the injected-message cap the mixed-
// traffic drivers use when the caller sets none: 10× the measured
// window, dropping to 3× on meshes above 1024 nodes — a saturated RD
// point on 16×16×8 otherwise simulates millions of worms for no
// extra information. Shared by the scenario run loop and the legacy
// Fig. 3/4 driver so both cut saturated runs at the same place.
func DefaultMaxInjected(nodes, window int) int {
	if nodes > 1024 {
		return 3 * window
	}
	return 10 * window
}

// MixedResult reports a mixed-traffic run.
type MixedResult struct {
	// MeanLatency is the batch-means point estimate of message
	// latency in µs (unicast and broadcast samples combined;
	// a broadcast completes when its last destination receives).
	MeanLatency float64
	// CI is the 95% confidence interval behind MeanLatency.
	CI stats.Interval
	// Unicast and Broadcast break completed-message latency down by
	// class (measured window only).
	Unicast, Broadcast stats.Accumulator
	// Injected and Completed count all messages, measured or not.
	Injected, Completed int
	// Duration is the simulated time consumed.
	Duration sim.Time
	// Saturated reports that the run hit MaxTime with measured
	// messages still in flight — the network could not sustain the
	// offered load.
	Saturated bool
	// Throughput is completed messages per µs of simulated time.
	Throughput float64
}

// CIValid reports whether the confidence interval rests on at least
// two batches and has a finite width.
func (r *MixedResult) CIValid() bool {
	return r.CI.N >= 2 && r.CI.HalfWide >= 0 && !math.IsInf(r.CI.HalfWide, 0) && !math.IsNaN(r.CI.HalfWide)
}

// RunMixed executes the mixed workload on a fresh network over m with
// the paper's timing constants and returns the latency statistics.
func RunMixed(m *topology.Mesh, cfg MixedConfig) (*MixedResult, error) {
	ncfg := network.DefaultConfig()
	if cfg.Algorithm != nil {
		ncfg.Ports = cfg.Algorithm.Ports()
	}
	return RunMixedWith(m, ncfg, cfg)
}

// RunMixedWith is RunMixed with a caller-supplied network
// configuration, used by the sensitivity ablations.
func RunMixedWith(m *topology.Mesh, ncfg network.Config, cfg MixedConfig) (*MixedResult, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("traffic: non-positive rate %v", cfg.Rate)
	}
	if cfg.Length <= 0 {
		return nil, fmt.Errorf("traffic: non-positive length %d", cfg.Length)
	}
	if cfg.BroadcastFraction < 0 || cfg.BroadcastFraction > 1 {
		return nil, fmt.Errorf("traffic: broadcast fraction %v outside [0,1]", cfg.BroadcastFraction)
	}
	if cfg.BroadcastFraction > 0 && cfg.Algorithm == nil {
		return nil, fmt.Errorf("traffic: broadcast fraction %v with no algorithm", cfg.BroadcastFraction)
	}
	if cfg.HotspotFraction < 0 || cfg.HotspotFraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", cfg.HotspotFraction)
	}
	if cfg.HotspotFraction > 0 && (cfg.Hotspot < 0 || int(cfg.Hotspot) >= m.Nodes()) {
		return nil, fmt.Errorf("traffic: hotspot node %d outside [0,%d)", cfg.Hotspot, m.Nodes())
	}
	switch cfg.Pattern {
	case "", PatternUniform:
	case PatternTranspose:
		for i, j := 0, m.NDims()-1; i < j; i, j = i+1, j-1 {
			if m.Dim(i) != m.Dim(j) {
				return nil, fmt.Errorf("traffic: the transpose pattern needs a palindromic shape, got %s", m.Name())
			}
		}
		fallthrough
	case PatternBitReversal:
		if cfg.HotspotFraction > 0 {
			return nil, fmt.Errorf("traffic: pattern %q cannot combine with a hotspot fraction", cfg.Pattern)
		}
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (want %s, %s or %s)",
			cfg.Pattern, PatternUniform, PatternTranspose, PatternBitReversal)
	}
	if m.Nodes() < 2 {
		return nil, fmt.Errorf("traffic: mixed workload needs at least two nodes")
	}
	s := sim.New()
	net, err := network.New(s, m, ncfg)
	if err != nil {
		return nil, err
	}
	return runMixedOn(s, net, m, cfg)
}

func runMixedOn(s *sim.Simulator, net *network.Network, m *topology.Mesh, cfg MixedConfig) (*MixedResult, error) {
	batchSize, batches, warmup := cfg.BatchSize, cfg.Batches, cfg.Warmup
	if batchSize <= 0 {
		batchSize = 100
	}
	if batches <= 0 {
		batches = 21
		warmup = 1
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = 5e6
	}
	window := batches * batchSize
	maxInjected := cfg.MaxInjected
	if maxInjected <= 0 {
		// Route the fallback through the shared default: the scenario
		// run loop already resolves it this way, and a hard-coded
		// 10×window here silently overrode the 3×window large-mesh cap
		// for every legacy RunMixed caller (the Fig. 4 driver on
		// 16×16×8 simulated over three times the intended backlog at
		// saturated points).
		maxInjected = DefaultMaxInjected(m.Nodes(), window)
	}

	res := &MixedResult{}
	rng := sim.NewRNG(cfg.Seed, 11)
	n := m.Nodes()

	// patDst maps a source to its deterministic pattern destination,
	// or to itself when the permutation has no valid image (a diagonal
	// node under transpose, an out-of-range reversal on a non-power-
	// of-two network) — the caller treats self as "fall back to one
	// uniform draw". nil for the uniform and hotspot patterns, whose
	// random streams stay exactly historical.
	var patDst func(topology.NodeID) topology.NodeID
	switch cfg.Pattern {
	case PatternTranspose:
		nd := m.NDims()
		coords := make([]int, nd)
		rev := make([]int, nd)
		patDst = func(src topology.NodeID) topology.NodeID {
			m.CoordInto(src, coords)
			for i, c := range coords {
				rev[nd-1-i] = c
			}
			return m.ID(rev...)
		}
	case PatternBitReversal:
		b := bits.Len(uint(n - 1))
		patDst = func(src topology.NodeID) topology.NodeID {
			r := topology.NodeID(bits.Reverse64(uint64(src)) >> (64 - b))
			if int(r) >= n {
				return src
			}
			return r
		}
	}

	planCache := make(map[topology.NodeID]*broadcast.Plan)
	planFor := func(src topology.NodeID) (*broadcast.Plan, error) {
		if p, ok := planCache[src]; ok {
			return p, nil
		}
		p, err := cfg.Algorithm.Plan(m, src)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(m); err != nil {
			return nil, err
		}
		planCache[src] = p
		return p, nil
	}

	// Measured window state: latencies indexed by injection order;
	// negative means still in flight.
	latencies := make([]sim.Time, window)
	injectTimes := make([]sim.Time, window)
	for i := range latencies {
		latencies[i] = -1
	}
	measuredLeft := window
	stopInjecting := false

	complete := func(class *stats.Accumulator, idx int, injectedAt sim.Time) {
		lat := s.Now() - injectedAt
		res.Completed++
		if idx >= 0 {
			latencies[idx] = lat
			class.Add(lat)
			measuredLeft--
			if measuredLeft == 0 {
				stopInjecting = true
			}
		}
	}

	var injectErr error
	var schedule func(node topology.NodeID, rng *sim.RNG)
	schedule = func(node topology.NodeID, rng *sim.RNG) {
		s.After(rng.Exp(1/cfg.Rate), func() {
			if stopInjecting || injectErr != nil {
				return
			}
			if s.Now() > maxTime || res.Injected >= maxInjected {
				res.Saturated = true
				stopInjecting = true
				return
			}
			at := s.Now()
			idx := -1
			if res.Injected < window {
				idx = res.Injected
				injectTimes[idx] = at
			}
			res.Injected++
			if rng.Float64() < cfg.BroadcastFraction {
				plan, err := planFor(node)
				if err != nil {
					injectErr = err
					return
				}
				_, err = broadcast.Execute(net, plan, broadcast.Options{
					Start:    at,
					Length:   cfg.Length,
					Adaptive: cfg.Adaptive,
					Tag:      "mixed",
					OnComplete: func(*broadcast.Result) {
						complete(&res.Broadcast, idx, at)
					},
				})
				if err != nil {
					injectErr = err
					return
				}
			} else {
				dst := topology.NodeID(-1)
				// The hotspot draw happens only under an active hotspot
				// pattern, so uniform-pattern runs consume exactly the
				// historical random stream.
				if cfg.HotspotFraction > 0 && rng.Float64() < cfg.HotspotFraction && node != cfg.Hotspot {
					dst = cfg.Hotspot
				}
				if dst < 0 && patDst != nil {
					// Deterministic permutation patterns: no draw at all
					// unless the node maps to itself.
					if d := patDst(node); d != node {
						dst = d
					}
				}
				if dst < 0 {
					dst = topology.NodeID(rng.Intn(n - 1))
					if dst >= node {
						dst++
					}
				}
				t := &network.Transfer{
					Source:    node,
					Waypoints: []topology.NodeID{dst},
					Length:    cfg.Length,
					Selector:  cfg.Unicast,
					Tag:       "unicast",
					OnDeliver: func(_ topology.NodeID, _ sim.Time) {
						complete(&res.Unicast, idx, at)
					},
				}
				if err := net.Send(at, t); err != nil {
					injectErr = err
					return
				}
			}
			schedule(node, rng)
		})
	}

	for node := 0; node < n; node++ {
		schedule(topology.NodeID(node), rng.Split())
	}

	s.Run()
	if injectErr != nil {
		return nil, injectErr
	}
	if net.InFlight() > 0 {
		return nil, fmt.Errorf("traffic: simulated deadlock with %d worms in flight: %v",
			net.InFlight(), net.Stuck())
	}

	res.Duration = s.Now()

	// Feed the measured window into the batch-means estimator in
	// injection order. Messages the saturated run never finished are
	// floored at their age when injection stopped, so the estimate
	// diverges rather than silently dropping the slowest messages.
	collector := stats.NewBatchMeans(batchSize, batches, warmup)
	injectedWindow := window
	if res.Injected < window {
		injectedWindow = res.Injected
	}
	fed := 0
	for i := 0; i < injectedWindow; i++ {
		lat := latencies[i]
		if lat < 0 {
			if !res.Saturated {
				return nil, fmt.Errorf("traffic: measured message %d never completed in a non-saturated run", i)
			}
			lat = res.Duration - injectTimes[i]
		}
		collector.Add(lat)
		fed++
	}
	if fed < window && !res.Saturated {
		return nil, fmt.Errorf("traffic: only %d/%d measured messages injected", fed, window)
	}
	ci := collector.Estimate()
	res.MeanLatency = ci.Mean
	res.CI = ci
	if res.Duration > 0 {
		res.Throughput = float64(res.Completed) / res.Duration
	}
	return res, nil
}
