package traffic

import (
	"math"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/routing"
	"repro/internal/topology"
)

func quickCfg(algo broadcast.Algorithm) MixedConfig {
	return MixedConfig{
		Rate:              0.002, // 2 msg/ms per node
		BroadcastFraction: 0.10,
		Length:            32,
		Algorithm:         algo,
		Seed:              9,
		BatchSize:         20,
		Batches:           5,
		Warmup:            1,
	}
}

func TestRunMixedBasics(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	res, err := RunMixed(m, quickCfg(broadcast.NewDB()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("light load reported saturated")
	}
	if res.MeanLatency <= 0 {
		t.Errorf("mean latency = %v", res.MeanLatency)
	}
	if res.Completed < 100 {
		t.Errorf("completed = %d, want >= window of 100", res.Completed)
	}
	if res.Unicast.N() == 0 || res.Broadcast.N() == 0 {
		t.Errorf("class counts: unicast %d broadcast %d", res.Unicast.N(), res.Broadcast.N())
	}
	// Broadcast latency must exceed unicast latency: a broadcast only
	// completes when its slowest destination arrives.
	if res.Broadcast.Mean() <= res.Unicast.Mean() {
		t.Errorf("broadcast mean %v not above unicast mean %v", res.Broadcast.Mean(), res.Unicast.Mean())
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

func TestRunMixedDeterminism(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	a, err := RunMixed(m, quickCfg(broadcast.NewAB()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMixed(m, quickCfg(broadcast.NewAB()))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.Injected != b.Injected || a.Duration != b.Duration {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, b)
	}
	c := quickCfg(broadcast.NewAB())
	c.Seed = 10
	d, err := RunMixed(m, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanLatency == a.MeanLatency && d.Injected == a.Injected {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunMixedPureUnicast(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := quickCfg(nil)
	cfg.BroadcastFraction = 0
	cfg.Algorithm = nil
	res, err := RunMixed(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Broadcast.N() != 0 {
		t.Errorf("pure-unicast run delivered %d broadcasts", res.Broadcast.N())
	}
	// Uncontended unicast latency must sit near Ts + D·β + L·β.
	if res.MeanLatency < 1.5 || res.MeanLatency > 3 {
		t.Errorf("unicast mean latency = %v, expected ~1.6 µs", res.MeanLatency)
	}
}

func TestRunMixedAdaptiveUnicast(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	cfg := quickCfg(broadcast.NewAB())
	wf := routing.NewWestFirst(m)
	cfg.Unicast, cfg.Adaptive = wf, wf
	res, err := RunMixed(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CIValid() {
		t.Errorf("confidence interval invalid: %+v", res.CI)
	}
}

func TestRunMixedSaturationCutoff(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	cfg := quickCfg(broadcast.NewRD())
	cfg.Rate = 0.5 // 500 msg/ms per node: far beyond saturation
	cfg.MaxInjected = 2000
	res, err := RunMixed(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("overload not reported as saturated")
	}
	// The diverging estimate must clearly exceed the ~2 µs
	// uncontended latency.
	if res.MeanLatency < 6 {
		t.Errorf("saturated mean latency = %v, expected several times the uncontended 2 µs", res.MeanLatency)
	}
}

func TestRunMixedValidation(t *testing.T) {
	m := topology.NewMesh(4, 4)
	bad := []MixedConfig{
		{Rate: 0, Length: 32, Algorithm: broadcast.NewDB()},
		{Rate: 0.001, Length: 0, Algorithm: broadcast.NewDB()},
		{Rate: 0.001, Length: 32, BroadcastFraction: 1.5, Algorithm: broadcast.NewDB()},
		{Rate: 0.001, Length: 32, BroadcastFraction: 0.1, Algorithm: nil},
	}
	for i, cfg := range bad {
		if _, err := RunMixed(m, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := RunMixed(topology.NewMesh(1), quickCfg(broadcast.NewDB())); err == nil {
		t.Error("single-node mesh accepted")
	}
}

func TestLatencyFinite(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	for _, algo := range []broadcast.Algorithm{broadcast.NewRD(), broadcast.NewEDN(), broadcast.NewDB(), broadcast.NewAB()} {
		res, err := RunMixed(m, quickCfg(algo))
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if math.IsNaN(res.MeanLatency) || math.IsInf(res.MeanLatency, 0) {
			t.Errorf("%s: latency %v", algo.Name(), res.MeanLatency)
		}
	}
}

// TestPatternValidation rejects unknown spellings, non-palindromic
// transpose shapes, and pattern+hotspot combinations.
func TestPatternValidation(t *testing.T) {
	m := topology.NewMesh(4, 4)
	bad := func(mut func(*MixedConfig)) MixedConfig {
		cfg := quickCfg(broadcast.NewDB())
		mut(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		m    *topology.Mesh
		cfg  MixedConfig
	}{
		{"unknown pattern", m, bad(func(c *MixedConfig) { c.Pattern = "butterfly" })},
		{"non-palindromic transpose", topology.NewMesh(4, 8), bad(func(c *MixedConfig) { c.Pattern = PatternTranspose })},
		{"transpose+hotspot", m, bad(func(c *MixedConfig) { c.Pattern = PatternTranspose; c.HotspotFraction = 0.1; c.Hotspot = 3 })},
		{"bit-reversal+hotspot", m, bad(func(c *MixedConfig) { c.Pattern = PatternBitReversal; c.HotspotFraction = 0.1; c.Hotspot = 3 })},
	}
	for _, tc := range cases {
		if _, err := RunMixed(tc.m, tc.cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// The explicit uniform spelling and the palindromic transpose both
	// pass validation.
	for _, cfg := range []MixedConfig{
		bad(func(c *MixedConfig) { c.Pattern = PatternUniform }),
		bad(func(c *MixedConfig) { c.Pattern = PatternTranspose }),
		bad(func(c *MixedConfig) { c.Pattern = PatternBitReversal }),
	} {
		if _, err := RunMixed(m, cfg); err != nil {
			t.Errorf("pattern %q rejected: %v", cfg.Pattern, err)
		}
	}
}

// TestPatternRunsDiffer pins that each active pattern changes the
// workload: same seed, same shape, different destination streams.
func TestPatternRunsDiffer(t *testing.T) {
	m := topology.NewMesh(4, 4)
	run := func(pattern string) *MixedResult {
		cfg := quickCfg(broadcast.NewRD())
		cfg.Pattern = pattern
		res, err := RunMixed(m, cfg)
		if err != nil {
			t.Fatalf("pattern %q: %v", pattern, err)
		}
		return res
	}
	uni := run("")
	explicit := run(PatternUniform)
	// "" and "uniform" are the same pattern byte for byte.
	if uni.MeanLatency != explicit.MeanLatency || uni.Duration != explicit.Duration {
		t.Error(`"" and "uniform" diverge`)
	}
	if tr := run(PatternTranspose); tr.Duration == uni.Duration && tr.MeanLatency == uni.MeanLatency {
		t.Error("transpose matched uniform exactly; pattern appears inactive")
	}
	if br := run(PatternBitReversal); br.Duration == uni.Duration && br.MeanLatency == uni.MeanLatency {
		t.Error("bit-reversal matched uniform exactly; pattern appears inactive")
	}
}

// TestPatternDeterminism: the deterministic patterns are as
// reproducible as the uniform one.
func TestPatternDeterminism(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for _, pattern := range []string{PatternTranspose, PatternBitReversal} {
		cfg := quickCfg(broadcast.NewRD())
		cfg.Pattern = pattern
		a, err := RunMixed(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunMixed(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.MeanLatency != b.MeanLatency || a.Injected != b.Injected || a.Duration != b.Duration {
			t.Errorf("pattern %q not deterministic", pattern)
		}
	}
}

// TestDefaultInjectionCapFallback is the regression test for the run
// loop's fallback cap: with MaxInjected unset it must route through
// DefaultMaxInjected, which drops from 10× to 3× the measured window
// above 1024 nodes. The loop used to hard-code 10×window, so legacy
// RunMixed callers (the Fig. 4 driver's 16×16×8 mesh) simulated over
// three times the intended backlog at saturated points.
func TestDefaultInjectionCapFallback(t *testing.T) {
	saturating := func(maxInjected int) MixedConfig {
		return MixedConfig{
			Rate:      0.5, // far beyond saturation: the cap decides when to stop
			Length:    32,
			Seed:      7,
			BatchSize: 5,
			Batches:   2,
			// Unicast-only keeps the >1024-node run cheap.
			BroadcastFraction: 0,
			MaxInjected:       maxInjected,
		}
	}

	t.Run("small mesh keeps 10x", func(t *testing.T) {
		m := topology.NewMesh(8, 8) // 64 nodes
		window := 2 * 5
		def, err := RunMixed(m, saturating(0))
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := RunMixed(m, saturating(DefaultMaxInjected(m.Nodes(), window)))
		if err != nil {
			t.Fatal(err)
		}
		if DefaultMaxInjected(m.Nodes(), window) != 10*window {
			t.Fatalf("default cap for %d nodes = %d, want %d", m.Nodes(), DefaultMaxInjected(m.Nodes(), window), 10*window)
		}
		if def.Injected != explicit.Injected || def.MeanLatency != explicit.MeanLatency || def.Duration != explicit.Duration {
			t.Errorf("unset cap diverged from explicit default: %+v vs %+v", def, explicit)
		}
	})

	t.Run("large mesh drops to 3x", func(t *testing.T) {
		m := topology.NewMesh(16, 16, 5) // 1280 nodes
		window := 2 * 5
		def, err := RunMixed(m, saturating(0))
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := RunMixed(m, saturating(3*window))
		if err != nil {
			t.Fatal(err)
		}
		if def.Injected != explicit.Injected || def.MeanLatency != explicit.MeanLatency || def.Duration != explicit.Duration {
			t.Errorf("unset cap diverged from DefaultMaxInjected: %+v vs %+v", def, explicit)
		}
		// And it must differ from the old hard-coded 10×window run —
		// otherwise this test would pass against the bug.
		old, err := RunMixed(m, saturating(10*window))
		if err != nil {
			t.Fatal(err)
		}
		if old.Injected <= def.Injected {
			t.Errorf("10x cap injected %d, not above the 3x cap's %d; saturation assumption broken", old.Injected, def.Injected)
		}
	})
}
