// Package wormsim is a discrete-event simulator for broadcast
// communication in wormhole-switched interconnection networks. It
// reproduces the system of Al-Dubai & Ould-Khaoua, "On the
// Performance of Broadcast Algorithms in Interconnection Networks"
// (ICPP Workshops 2005): a flit-level-approximate wormhole mesh model
// with single-queue channels, the Coded-Path Routing (CPR) substrate,
// and the four broadcast algorithms the paper compares — Recursive
// Doubling (RD), Extended Dominating Nodes (EDN), Deterministic
// Broadcast (DB) and Adaptive Broadcast (AB) — together with the
// workload generators and statistics needed to regenerate every
// figure and table of the paper's evaluation.
//
// # Quick start
//
//	m := wormsim.NewMesh(8, 8, 8)
//	r, err := wormsim.RunBroadcast(m, wormsim.NewAB(), m.ID(3, 4, 2), wormsim.DefaultConfig(), 100)
//	if err != nil { ... }
//	fmt.Println("latency:", r.Latency(), "µs")
//
// The package is a facade: the implementation lives in internal
// packages (topology, routing, core, network, broadcast, traffic,
// metrics, experiments), re-exported here as type aliases so the
// whole system is reachable through one import.
package wormsim

import (
	"context"

	"repro/internal/broadcast"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Topology types.
type (
	// NodeID identifies a node; IDs are dense in [0, Nodes()).
	NodeID = topology.NodeID
	// ChannelID identifies a directed channel.
	ChannelID = topology.ChannelID
	// Mesh is a k-ary n-dimensional mesh or torus.
	Mesh = topology.Mesh
	// Topology is the abstract interconnect interface.
	Topology = topology.Topology
	// GeneralizedHypercube is the GH(k0,…,kn-1) topology.
	GeneralizedHypercube = topology.GeneralizedHypercube
)

// NewMesh returns a mesh with the given per-dimension extents.
func NewMesh(dims ...int) *Mesh { return topology.NewMesh(dims...) }

// NewTorus returns a torus (k-ary n-cube) with the given extents.
func NewTorus(dims ...int) *Mesh { return topology.NewTorus(dims...) }

// NewMeshImplicit returns a mesh whose adjacency is computed from
// coordinates on demand instead of stored per node — O(dims) memory
// regardless of node count, interchangeable with NewMesh (same IDs,
// channels, routes and neighbor order). Build million-node substrates
// with this and Config.Store = StoreLazy.
func NewMeshImplicit(dims ...int) *Mesh { return topology.NewMeshImplicit(dims...) }

// NewTorusImplicit is NewTorus with on-demand adjacency; see
// NewMeshImplicit.
func NewTorusImplicit(dims ...int) *Mesh { return topology.NewTorusImplicit(dims...) }

// NewGeneralizedHypercube builds GH(dims...).
func NewGeneralizedHypercube(dims ...int) *GeneralizedHypercube {
	return topology.NewGeneralizedHypercube(dims...)
}

// NewHypercube builds the binary n-cube with 2^n nodes.
func NewHypercube(n int) *GeneralizedHypercube { return topology.NewHypercube(n) }

// Routing.
type (
	// Selector is a minimal routing function.
	Selector = routing.Selector
)

// NewDOR returns deterministic dimension-order routing over m.
func NewDOR(m *Mesh, order ...int) Selector { return routing.NewDOR(m, order...) }

// NewWestFirst returns the west-first turn-model adaptive routing
// function over m (generalised to negative-first in 3D). It panics on
// a torus — use NewTorusWestFirst or WestFirstFor there.
func NewWestFirst(m *Mesh) Selector { return routing.NewWestFirst(m) }

// NewOddEven returns Chiu's odd-even turn-model adaptive routing. It
// panics on a torus — use NewTorusOddEven or OddEvenFor there.
func NewOddEven(m *Mesh) Selector { return routing.NewOddEven(m) }

// NewDatelineDOR returns dimension-order routing with dateline
// virtual channels: deadlock-free minimal routing on tori when the
// network runs two or more VCs (Config.VCs). It is the router a
// torus network installs by default.
func NewDatelineDOR(m *Mesh, order ...int) Selector { return routing.NewDatelineDOR(m, order...) }

// NewTorusWestFirst returns the torus-capable west-first turn model:
// minimal dateline routing along wraparound dimensions, west-first
// adaptivity on the rest.
func NewTorusWestFirst(m *Mesh) Selector { return routing.NewTorusWestFirst(m) }

// NewTorusOddEven returns the torus-capable odd-even turn model.
func NewTorusOddEven(m *Mesh) Selector { return routing.NewTorusOddEven(m) }

// WestFirstFor returns the west-first routing function appropriate
// for m: the mesh turn model on a mesh, the torus-capable variant on
// a torus.
func WestFirstFor(m *Mesh) Selector { return routing.WestFirstFor(m) }

// OddEvenFor returns the odd-even routing function appropriate for m.
func OddEvenFor(m *Mesh) Selector { return routing.OddEvenFor(m) }

// Network simulation.
type (
	// Config carries the network timing and port parameters.
	Config = network.Config
	// Network is the simulated wormhole interconnect.
	Network = network.Network
	// Transfer describes one worm to inject.
	Transfer = network.Transfer
	// Simulator is the discrete-event kernel.
	Simulator = sim.Simulator
	// Time is simulated time in microseconds.
	Time = sim.Time
)

// DefaultConfig returns the paper's baseline timing: Ts=1.5 µs,
// β=0.003 µs/flit, one injection port.
func DefaultConfig() Config { return network.DefaultConfig() }

// StoreMode selects the network's state-allocation model (see
// Config.Store): dense up-front slices, a paged
// allocate-on-first-contention store, or an automatic choice by node
// count. The stores are observationally equivalent.
type StoreMode = network.StoreMode

const (
	// StoreAuto (the default) picks dense below LazyStoreThreshold
	// nodes and lazy at or above it.
	StoreAuto = network.StoreAuto
	// StoreDense forces the historical dense store.
	StoreDense = network.StoreDense
	// StoreLazy forces the paged lazy store.
	StoreLazy = network.StoreLazy
	// LazyStoreThreshold is StoreAuto's switchover node count.
	LazyStoreThreshold = network.LazyStoreThreshold
)

// Calendar selects the event-calendar implementation backing a
// simulator: CalendarLadder (the default amortized-O(1) ladder queue)
// or CalendarHeap (the legacy binary heap, kept as a cross-checking
// reference). Both execute any schedule in the identical order;
// only throughput differs.
type Calendar = sim.Calendar

const (
	// CalendarLadder is the default ladder-queue calendar.
	CalendarLadder = sim.Ladder
	// CalendarHeap is the legacy binary-heap calendar.
	CalendarHeap = sim.Heap
)

// ParseCalendar converts a -calendar flag value ("ladder" or "heap")
// into a Calendar.
func ParseCalendar(name string) (Calendar, error) { return sim.ParseCalendar(name) }

// SetDefaultCalendar selects the calendar every subsequently created
// simulator uses — including the ones experiments and scenarios build
// internally. Call it before starting a run, not during one.
func SetDefaultCalendar(c Calendar) { sim.SetDefaultCalendar(c) }

// DefaultCalendar reports the calendar NewSimulator currently uses.
func DefaultCalendar() Calendar { return sim.DefaultCalendar() }

// SetDefaultWavefront selects whether every subsequently created
// simulator executes same-instant event runs as batched wavefronts
// (the default) or pops one event at a time. Output is byte-identical
// either way — the knob exists for A/B speed runs and differential
// tests (cmd/paperbench and cmd/sweep expose it as -wavefront).
func SetDefaultWavefront(on bool) { sim.SetDefaultWavefront(on) }

// DefaultWavefront reports whether NewSimulator currently enables
// wavefront batch execution.
func DefaultWavefront() bool { return sim.DefaultWavefront() }

// WavefrontStats is a simulator's wavefront batch-size census:
// batches drained, events they carried, and a log2 size histogram.
type WavefrontStats = sim.WavefrontStats

// NewSimulator returns an empty discrete-event simulator backed by
// the process default calendar.
func NewSimulator() *Simulator { return sim.New() }

// NewSimulatorWithCalendar returns an empty discrete-event simulator
// backed by the given calendar implementation.
func NewSimulatorWithCalendar(c Calendar) *Simulator { return sim.NewWithCalendar(c) }

// NewNetwork builds a wormhole network over topo driven by s.
func NewNetwork(s *Simulator, topo Topology, cfg Config) (*Network, error) {
	return network.New(s, topo, cfg)
}

// Broadcast algorithms.
type (
	// Algorithm plans broadcasts on a mesh.
	Algorithm = broadcast.Algorithm
	// Plan is a broadcast schedule.
	Plan = broadcast.Plan
	// Result reports one executed broadcast.
	Result = broadcast.Result
	// ExecOptions configures plan execution on a network.
	ExecOptions = broadcast.Options
)

// NewRD returns the Recursive Doubling planner (Barnett et al.).
func NewRD() Algorithm { return broadcast.NewRD() }

// NewEDN returns the Extended Dominating Node planner (Tsai & McKinley).
func NewEDN() Algorithm { return broadcast.NewEDN() }

// NewDB returns the paper's Deterministic Broadcast planner.
func NewDB() Algorithm { return broadcast.NewDB() }

// NewAB returns the paper's Adaptive Broadcast planner.
func NewAB() Algorithm { return broadcast.NewAB() }

// Algorithms returns all four planners in the paper's order.
func Algorithms() []Algorithm { return experiments.PaperAlgorithms() }

// RunBroadcast executes one single-source broadcast of length flits
// from src on an idle network over m and returns the per-node arrival
// results.
func RunBroadcast(m *Mesh, algo Algorithm, src NodeID, cfg Config, length int) (*Result, error) {
	return broadcast.RunSingle(m, algo, src, cfg, length)
}

// StepStats summarises the arrivals of one message-passing step.
type StepStats = broadcast.StepStats

// StepBreakdown attributes each destination's arrival to the plan
// step that covered it — the quantitative form of the paper's
// node-level parallelism argument.
func StepBreakdown(m *Mesh, r *Result) []StepStats { return broadcast.StepBreakdown(m, r) }

// FormatBreakdown renders a step breakdown as an aligned text table.
func FormatBreakdown(algo string, breakdown []StepStats) string {
	return broadcast.FormatBreakdown(algo, breakdown)
}

// ExecuteBroadcast wires a validated plan into an existing network;
// the result fills in as the caller advances the simulator. Use this
// to overlap several broadcasts in one simulation.
func ExecuteBroadcast(net *Network, plan *Plan, opt ExecOptions) (*Result, error) {
	return broadcast.Execute(net, plan, opt)
}

// Statistics and studies.
type (
	// Accumulator collects running moments.
	Accumulator = stats.Accumulator
	// Interval is a confidence interval.
	Interval = stats.Interval
	// SingleSourceStats aggregates replicated broadcast studies.
	SingleSourceStats = metrics.SingleSourceStats
	// ContendedConfig parameterises the node-level CV study.
	ContendedConfig = metrics.ContendedConfig
	// MixedConfig parameterises the 90/10 unicast/broadcast workload.
	MixedConfig = traffic.MixedConfig
	// MixedResult reports a mixed-traffic run.
	MixedResult = traffic.MixedResult
	// DegradedConfig parameterises the fault-degraded CV study.
	DegradedConfig = metrics.DegradedConfig
	// DegradationStats aggregates a degraded study's coverage,
	// latency and drop outcomes.
	DegradationStats = metrics.DegradationStats
	// FaultPlan is a validated schedule of link/node fault events.
	FaultPlan = fault.Plan
)

// Parallel experiment orchestration.
type (
	// Pool is the deterministic worker pool experiments fan their
	// replications out on; see internal/runner.
	Pool = runner.Pool
	// Progress is a concurrency-safe completed-of-total counter for
	// live progress reporting.
	Progress = runner.Progress
)

// NewPool returns a pool running at most procs jobs concurrently;
// procs <= 0 means one worker per available core. Experiment output
// never depends on the worker count.
func NewPool(procs int) *Pool { return runner.New(procs) }

// NewProgress returns a counter expecting total completions that
// reports each one to fn (nil fn merely counts).
func NewProgress(total int, fn func(done, total int)) *Progress {
	return runner.NewProgress(total, fn)
}

// Substream returns the deterministic RNG for replication rep of the
// experiment seeded with seed — a pure function of (seed, rep), so
// any execution order (or worker count) reproduces the same stream.
func Substream(seed, rep uint64) *RNG { return sim.Substream(seed, rep) }

// RNG is the reproducible PCG generator driving all randomness.
type RNG = sim.RNG

// SingleSourceStudy runs reps uncontended broadcasts from random
// sources and aggregates latency and arrival-time CV, fanning the
// replications out across all cores; use SingleSourceStudyOn to
// bound the worker count. Output is identical either way.
func SingleSourceStudy(m *Mesh, algo Algorithm, cfg Config, length, reps int, seed uint64) (*SingleSourceStats, error) {
	return metrics.SingleSourceStudy(m, algo, cfg, length, reps, seed)
}

// SingleSourceStudyOn is SingleSourceStudy on the caller's pool.
func SingleSourceStudyOn(p *Pool, m *Mesh, algo Algorithm, cfg Config, length, reps int, seed uint64) (*SingleSourceStats, error) {
	return metrics.SingleSourceStudyOn(p, m, algo, cfg, length, reps, seed)
}

// ContendedCVStudy runs overlapping broadcasts from random sources on
// one shared network — the paper's §3.2 node-level study.
func ContendedCVStudy(m *Mesh, algo Algorithm, cfg ContendedConfig) (*SingleSourceStats, error) {
	return metrics.ContendedCVStudy(m, algo, cfg)
}

// DegradedStudy is ContendedCVStudy on a network running a fault
// plan: same traffic schedule at the same seed, plus coverage and
// drop accounting — the paired-twin comparison behind the fault
// figures (cmd/meshsim's -faults flag goes through here).
func DegradedStudy(m *Mesh, algo Algorithm, cfg DegradedConfig) (*DegradationStats, error) {
	return metrics.DegradedStudy(m, algo, cfg)
}

// RandomLinkFaults returns a deterministic plan failing the first k
// links of the seed-determined permutation of m's undirected links
// (both directions) at time at. Plans of the same (m, seed) nest.
func RandomLinkFaults(m *Mesh, seed uint64, k int, at Time) (*FaultPlan, error) {
	return fault.RandomLinks(m, seed, k, at)
}

// SaturationConfig returns the Fig. 2-style saturation workload the
// performance benchmarks (BenchmarkFig2Saturation and paperbench
// -benchjson) track the simulator's perf trajectory on.
func SaturationConfig(seed uint64) ContendedConfig { return metrics.SaturationConfig(seed) }

// SaturationDims is the mesh the saturation benchmark runs on.
func SaturationDims() []int { return metrics.SaturationDims() }

// RunMixed executes the §3.3 mixed unicast/broadcast workload.
func RunMixed(m *Mesh, cfg MixedConfig) (*MixedResult, error) {
	return traffic.RunMixed(m, cfg)
}

// RunMixedWith is RunMixed with a caller-supplied network
// configuration — the entry point when the workload needs a
// non-default store, virtual-channel count, or timing constants
// (cmd/meshsim's -store/-topo flags go through here).
func RunMixedWith(m *Mesh, ncfg Config, cfg MixedConfig) (*MixedResult, error) {
	return traffic.RunMixedWith(m, ncfg, cfg)
}

// Scenario API: one declarative spec, a registry of every experiment,
// and one run loop. This is how new code runs studies; the per-figure
// config types below are kept as deprecated wrappers.
type (
	// Scenario is the declarative spec of one experiment: topology,
	// algorithm set, workload, sweep axis, replication and
	// orchestration knobs.
	Scenario = scenario.Spec
	// ScenarioOption customises a registered scenario (WithMesh,
	// WithReps, …).
	ScenarioOption = scenario.Option
	// ScenarioResult carries a run's figure and, for contended runs
	// over the paper's four algorithms, the Table 1–2 projections.
	ScenarioResult = scenario.Result
	// ScenarioSink receives finished results (text, JSON, CSV).
	ScenarioSink = scenario.Sink
	// Workload selects a scenario's traffic pattern.
	Workload = scenario.Workload
	// Axis selects what a scenario sweeps.
	Axis = scenario.Axis
)

// NewScenario builds a registered scenario by name with the given
// options applied:
//
//	spec, err := wormsim.NewScenario("fig2", wormsim.WithMesh(16, 16, 8), wormsim.WithReps(40))
//	res, err := wormsim.Run(ctx, spec)
//
// Scenarios() lists the available names.
func NewScenario(name string, opts ...ScenarioOption) (Scenario, error) {
	return scenario.Build(name, opts...)
}

// Run executes a scenario spec: it fans the workload's independent
// simulations out over a worker pool (Spec.Procs, 0 = all cores),
// honours ctx cancellation, and aggregates in replication order, so
// output is bit-identical for any worker count.
func Run(ctx context.Context, spec Scenario) (*ScenarioResult, error) {
	return scenario.Run(ctx, spec)
}

// RunScenario is NewScenario followed by Run.
func RunScenario(ctx context.Context, name string, opts ...ScenarioOption) (*ScenarioResult, error) {
	spec, err := scenario.Build(name, opts...)
	if err != nil {
		return nil, err
	}
	return scenario.Run(ctx, spec)
}

// RunScenarioTo is RunScenario streaming the result into sinks.
func RunScenarioTo(ctx context.Context, name string, sinks []ScenarioSink, opts ...ScenarioOption) (*ScenarioResult, error) {
	spec, err := scenario.Build(name, opts...)
	if err != nil {
		return nil, err
	}
	return scenario.RunTo(ctx, spec, sinks...)
}

// Scenarios returns every registered scenario name, sorted. Register
// adds one.
func Scenarios() []string { return scenario.Names() }

// RegisterScenario adds a named scenario to the process-wide
// registry, making it runnable by name here and in cmd/sweep.
func RegisterScenario(name, summary string, spec func() Scenario) {
	scenario.Register(scenario.Definition{Name: name, Summary: summary, New: spec})
}

// Functional options for NewScenario.
var (
	// WithMesh fixes the scenario to one topology shape.
	WithMesh = scenario.WithMesh
	// WithSizes replaces a size-axis sweep's shapes.
	WithSizes = scenario.WithSizes
	// WithTopology selects "mesh" or "torus".
	WithTopology = scenario.WithTopology
	// WithVCs sets the virtual channels per physical channel
	// (<= 0 keeps the topology default: 1 on meshes, 2 on tori).
	WithVCs = scenario.WithVCs
	// WithAlgorithms replaces the algorithm set (RD, EDN, DB, AB).
	WithAlgorithms = scenario.WithAlgorithms
	// WithReps sets the replication count (<= 0 keeps the default).
	WithReps = scenario.WithReps
	// WithSeed sets the root random seed.
	WithSeed = scenario.WithSeed
	// WithProcs caps the worker count (0 = one per core).
	WithProcs = scenario.WithProcs
	// WithProgress wires a live (done, total) reporter.
	WithProgress = scenario.WithProgress
	// WithLength sets the message length in flits.
	WithLength = scenario.WithLength
	// WithTs sets the startup latency in µs.
	WithTs = scenario.WithTs
	// WithXs replaces the scalar sweep values of the spec's axis.
	WithXs = scenario.WithXs
	// WithLoads replaces a mixed scenario's offered-load sweep.
	WithLoads = scenario.WithLoads
	// WithLoadScale sets the mixed injected-rate multiplier.
	WithLoadScale = scenario.WithLoadScale
	// WithBatches configures the mixed batch-means estimator.
	WithBatches = scenario.WithBatches
	// WithInterarrival sets the contended mean injection gap in µs.
	WithInterarrival = scenario.WithInterarrival
	// WithMetric selects the contended y value ("cv", "latency", or —
	// under fault injection — "coverage" / "inflation").
	WithMetric = scenario.WithMetric
	// WithFaults fails n random undirected links in every cell of a
	// contended scenario (<= 0 keeps the registered fault plan).
	WithFaults = scenario.WithFaults
	// WithStore selects the substrate memory model: "auto" (default),
	// "dense", or "lazy" ("" keeps the registered mode).
	WithStore = scenario.WithStore
	// WithShards partitions each simulation across k shard calendars
	// of the conservative-parallel kernel (<= 1 keeps the serial
	// kernel); output is bit-identical at every shard count.
	WithShards = scenario.WithShards
)

// FaultSpec declares a scenario's deterministic fault injection:
// failed links/nodes, onset and heal timings, churn waves, and the
// dead-ended worm grace period. See Scenario.Faults.
type FaultSpec = scenario.FaultSpec

// NewTextSink returns a sink rendering results in the paper's
// aligned-table layout.
var NewTextSink = scenario.NewTextSink

// NewJSONSink returns a sink emitting results as indented JSON.
var NewJSONSink = scenario.NewJSONSink

// NewCSVSink returns a sink writing the primary artifact as CSV.
var NewCSVSink = export.NewCSVSink

// Paper experiments.
type (
	// Figure is a reproduced paper figure.
	Figure = experiments.Figure
	// CVTable is a reproduced paper table (Tables 1 and 2).
	CVTable = experiments.CVTable
	// Fig1Config parameterises the Fig. 1 sweep.
	Fig1Config = experiments.Fig1Config
	// Fig2Config parameterises Fig. 2 and Tables 1–2.
	Fig2Config = experiments.Fig2Config
	// Fig34Config parameterises Figs. 3 and 4.
	Fig34Config = experiments.Fig34Config
)

// Fig1 reproduces Fig. 1 (latency vs network size).
//
// Deprecated: use RunScenario(ctx, "fig1", ...).
func Fig1(cfg Fig1Config) (*Figure, error) { return experiments.Fig1(cfg) }

// Fig1StartupLatency reproduces §3.1's Ts=0.15 µs sensitivity sweep.
//
// Deprecated: use RunScenario(ctx, "fig1b", ...).
func Fig1StartupLatency(cfg Fig1Config) (*Figure, error) {
	return experiments.Fig1StartupLatency(cfg)
}

// Fig2 reproduces Fig. 2 (arrival-time CV vs network size).
//
// Deprecated: use RunScenario(ctx, "fig2", ...).
func Fig2(cfg Fig2Config) (*Figure, error) { return experiments.Fig2(cfg) }

// Tables reproduces Tables 1 and 2 (CV and improvement percentages).
//
// Deprecated: use RunScenario(ctx, "fig2", ...); the result carries
// both tables.
func Tables(cfg Fig2Config) (*CVTable, *CVTable, error) { return experiments.Tables(cfg) }

// Fig2AndTables computes the shared (algorithm, mesh) study grid once
// and projects it into Fig. 2 and Tables 1–2.
//
// Deprecated: use RunScenario(ctx, "fig2", ...); every contended run
// carries the figure and both tables from one grid.
func Fig2AndTables(cfg Fig2Config) (*Figure, *CVTable, *CVTable, error) {
	return experiments.Fig2AndTables(cfg)
}

// Fig34 reproduces Fig. 3 (8×8×8) or Fig. 4 (16×16×8) mixed-traffic
// latency curves, selected by cfg.Dims.
//
// Deprecated: use RunScenario(ctx, "fig3" / "fig4", ...).
func Fig34(cfg Fig34Config) (*Figure, error) { return experiments.Fig34(cfg) }
