package wormsim_test

import (
	"context"
	"strings"
	"testing"

	"repro"
)

// TestFacadeRoundTrip exercises the public API end to end the way
// README's quick start does.
func TestFacadeRoundTrip(t *testing.T) {
	m := wormsim.NewMesh(4, 4, 4)
	for _, algo := range wormsim.Algorithms() {
		r, err := wormsim.RunBroadcast(m, algo, m.ID(1, 2, 3), wormsim.DefaultConfig(), 64)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !r.Done || r.Latency() <= 0 {
			t.Fatalf("%s: bad result %+v", algo.Name(), r)
		}
	}
}

func TestFacadeTopologies(t *testing.T) {
	if n := wormsim.NewTorus(4, 4).Nodes(); n != 16 {
		t.Errorf("torus nodes = %d", n)
	}
	if n := wormsim.NewHypercube(5).Nodes(); n != 32 {
		t.Errorf("hypercube nodes = %d", n)
	}
	if n := wormsim.NewGeneralizedHypercube(3, 4).Nodes(); n != 12 {
		t.Errorf("ghc nodes = %d", n)
	}
}

func TestFacadeSelectors(t *testing.T) {
	m := wormsim.NewMesh(4, 4)
	for _, sel := range []wormsim.Selector{
		wormsim.NewDOR(m),
		wormsim.NewWestFirst(m),
		wormsim.NewOddEven(m),
	} {
		hops := sel.NextHops(m.ID(0, 0), m.ID(3, 3))
		if len(hops) == 0 {
			t.Errorf("%s returned no candidates", sel.Name())
		}
	}
}

// TestFacadeManualNetwork drives the low-level API: build a network,
// inject a transfer, run the simulator.
func TestFacadeManualNetwork(t *testing.T) {
	m := wormsim.NewMesh(4, 4)
	s := wormsim.NewSimulator()
	net, err := wormsim.NewNetwork(s, m, wormsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	err = net.Send(0, &wormsim.Transfer{
		Source:    m.ID(0, 0),
		Waypoints: []wormsim.NodeID{m.ID(3, 3)},
		Length:    32,
		OnDeliver: func(_ wormsim.NodeID, _ wormsim.Time) { delivered = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !delivered {
		t.Fatal("transfer not delivered")
	}
	if net.MeanUtilization() <= 0 {
		t.Error("utilization accounting empty")
	}
}

// TestFacadeExecutePlan overlaps two broadcasts on one network.
func TestFacadeExecutePlan(t *testing.T) {
	m := wormsim.NewMesh(4, 4, 4)
	s := wormsim.NewSimulator()
	cfg := wormsim.DefaultConfig()
	net, err := wormsim.NewNetwork(s, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var results []*wormsim.Result
	for i, src := range []wormsim.NodeID{0, 63} {
		plan, err := wormsim.NewDB().Plan(m, src)
		if err != nil {
			t.Fatal(err)
		}
		r, err := wormsim.ExecuteBroadcast(net, plan, wormsim.ExecOptions{
			Start:  wormsim.Time(i) * 2,
			Length: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	s.Run()
	for i, r := range results {
		if !r.Done {
			t.Fatalf("broadcast %d incomplete", i)
		}
	}
}

func TestFacadeStudies(t *testing.T) {
	m := wormsim.NewMesh(4, 4, 4)
	st, err := wormsim.SingleSourceStudy(m, wormsim.NewAB(), wormsim.DefaultConfig(), 32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.N() != 4 {
		t.Errorf("study samples = %d", st.Latency.N())
	}
	cst, err := wormsim.ContendedCVStudy(m, wormsim.NewDB(), wormsim.ContendedConfig{
		Net: wormsim.DefaultConfig(), Length: 32, Broadcasts: 4, Interarrival: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cst.CV.Mean() <= 0 {
		t.Errorf("contended CV = %v", cst.CV.Mean())
	}
	mr, err := wormsim.RunMixed(m, wormsim.MixedConfig{
		Rate: 0.002, BroadcastFraction: 0.1, Length: 32,
		Algorithm: wormsim.NewAB(), Seed: 3, BatchSize: 10, Batches: 4, Warmup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mr.MeanLatency <= 0 {
		t.Errorf("mixed latency = %v", mr.MeanLatency)
	}
}

// TestScenarioFacade exercises the scenario API end to end: registry
// listing, option-driven spec construction, the one run loop, and the
// sinks — the way the README's "Scenario API" section does.
func TestScenarioFacade(t *testing.T) {
	names := wormsim.Scenarios()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"fig1", "fig1b", "fig2", "fig3", "fig4", "table1", "table2",
		"ablation-length", "ablation-hop", "ablation-substrate", "ablation-ports"} {
		if !found[want] {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}

	spec, err := wormsim.NewScenario("fig2",
		wormsim.WithMesh(4, 4, 4), wormsim.WithReps(5), wormsim.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	var text, csv strings.Builder
	res, err := wormsim.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := wormsim.NewTextSink(&text).Emit(res); err != nil {
		t.Fatal(err)
	}
	if err := wormsim.NewCSVSink(&csv).Emit(res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text.String(), "Fig.2: ") {
		t.Errorf("text sink output %q", text.String())
	}
	if !strings.HasPrefix(csv.String(), "figure,series,nodes,CV") {
		t.Errorf("csv sink header %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if res.Table1 == nil || res.Table2 == nil {
		t.Error("contended scenario result missing table projections")
	}
	if len(res.Figure.Series) != 4 {
		t.Errorf("figure has %d series, want 4", len(res.Figure.Series))
	}
}
